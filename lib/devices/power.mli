(** Power models for energy-efficiency comparisons.

    E3 (the system behind case study #3) is an {e energy-efficient}
    Microservice platform: its headline metric is requests per joule,
    SmartNIC cores being ~an order of magnitude cheaper per cycle than
    host cores. These figures let the reproduction report that axis
    too. Numbers follow the E3 paper's device class: a wimpy cnMIPS
    core draws ~1.2 W busy, a Xeon core ~12 W, plus per-device base
    draw. *)

val nic_core_active : float
(** Watts per busy cnMIPS core. *)

val nic_base : float
(** SmartNIC base draw (memory, MACs, fabric), watts. *)

val host_core_active : float
(** Watts per busy Xeon core (amortized share of package power). *)

val host_base : float
(** Host share attributable to keeping cores available, watts. *)

val nic_power : busy_cores:float -> float
(** Total SmartNIC draw with the given mean number of busy cores. *)

val host_power : busy_cores:float -> float

val efficiency : requests_per_s:float -> watts:float -> float
(** Requests per joule. *)
