(** The NVIDIA/Mellanox BlueField-2 DPU model (§4.1, §4.5).

    An off-path Multicore-SoC card: 100 GbE, 8 × 2.5 GHz ARM A72
    cores, 16 GB DRAM, plus hardware-accelerated Crypto, RegEx, Hashing
    and Connection-Tracking blocks reachable over the SoC interconnect.

    §4.5 deploys a network-middlebox chain of five network functions —
    firewall (FW) → L4 load balancer (LB) → deep packet inspection
    (DPI) → NAT → packet encryption (PE) — where every NF except DPI can
    run either on the ARM cluster or on a matching accelerator. Placing
    an NF off-chip buys compute throughput but pays the interconnect
    crossing (α per hop) and the per-call transfer overhead O, so the
    best placement flips with packet size — the effect Figs 13/14 plot. *)

type nf = Fw | Lb | Dpi | Nat | Pe
type placement = On_arm | On_accel

val nf_name : nf -> string
val chain : nf list
(** The middlebox service chain in order. *)

val line_rate : float
(** 100 Gbps. *)

val total_cores : int
val core_frequency : float
val hardware : Lognic.Params.hardware
(** interface = SoC interconnect, memory = DRAM controllers. The
    resource vector names the ARM cluster's shared LLC ([llc]) and the
    PCIe DMA engines ([pcie-dma]) for the contention layer. *)

val has_accelerator : nf -> bool
(** False only for DPI. *)

val arm_cycles : nf -> packet_size:float -> float
(** Per-packet ARM cost of the NF's software implementation. *)

val accel_issue_cycles : nf -> float
(** ARM cycles to drive one accelerator call (submission + completion
    shepherding). Raises [Invalid_argument] for DPI. *)

val accel_rate : nf -> packet_size:float -> float
(** Accelerator throughput in bytes/s: min of its packet-rate and
    byte-rate limits. Raises [Invalid_argument] for DPI. *)

val accel_overhead : nf -> float
(** O — seconds of computation-transfer overhead per call. *)

val crossing_alpha : float
(** Interface fraction charged per direction of an accelerator hop. *)

val chain_graph :
  ?cores:int ->
  placement_of:(nf -> placement) ->
  packet_size:float ->
  unit ->
  Lognic.Graph.t
(** Builds the execution graph of the chain under a placement. ARM NFs
    (and the shepherd stages of accelerated NFs) are virtual IPs of the
    core cluster, partitioned in proportion to their per-packet cost so
    the cluster's cycles are work-balanced. Accelerated NFs appear as
    shepherd → accelerator vertex pairs whose edges cross the
    interconnect. *)

val placements : unit -> (nf -> placement) list
(** All 16 valid placements (DPI pinned to ARM), for exhaustive
    placement search. *)
