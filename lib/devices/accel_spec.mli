(** The LiquidIO-II CN2360 accelerator catalog (§4.2, Figure 8).

    Peak operation rates are reverse-engineered from the paper's own
    plots: Fig 5 reports that at 16 KB access granularity CRC, 3DES,
    MD5 and HFA reach 13.6 %, 17.3 %, 21.2 % and 25.8 % of their
    maxima. With the stated medium bandwidths (CMI 50 Gbps for on-chip
    crypto units, I/O interconnect 40 Gbps for off-chip engines) the
    16 KB ceiling is BW/16384 ops/s, which pins the peaks at ≈ 2.8, 2.2,
    1.8 and 1.18 MOPS. Fig 9's saturation knees (9/8/11 cores for
    MD5/KASUMI/HFA) pin the per-NIC-core issue rates, which differ per
    engine because each has a different computation-transfer overhead
    O_IP1. *)

type medium =
  | Cmi  (** coherent memory interconnect — modeled as the memory medium *)
  | Io_interconnect  (** off-chip I/O fabric — modeled as the interface *)

type t = {
  name : string;
  peak_ops : float;  (** accelerator operations per second *)
  medium : medium;
  core_issue_ops : float;
      (** operation issue rate of one dedicated NIC core driving this
          engine (includes the per-call overhead O_IP1); in the §4.2
          setup each core splits between submission and completion, so
          a cluster of n cores sustains n·core_issue_ops/2 calls/s *)
  issue_overhead : float;
      (** O_IP1 — seconds of core-side preparation per call *)
}

val crc : t
val des3 : t
val md5 : t
val aes : t
val sha1 : t
val sms4 : t
val kasumi : t
val hfa : t
val zip : t

val all : t list

val find : string -> t option
(** Case-insensitive lookup by name. *)
