module G = Lognic.Graph
module U = Lognic.Units

let line_rate = 100. *. U.gbps

let hardware =
  Lognic.Params.hardware ~bw_interface:(800. *. U.gbps) ~bw_memory:(600. *. U.gbps)

let rate_of ~c_pp ~unit_bw ~packet_size =
  packet_size /. (c_pp +. (packet_size /. unit_bw))

let rmt_rate ~packet_size = rate_of ~c_pp:3.3e-9 ~unit_bw:(400. *. U.gbps) ~packet_size
(* 300 Mpps RMT pipeline: never the binding constraint in our sweeps. *)

let scheduler_rate ~packet_size =
  rate_of ~c_pp:4e-9 ~unit_bw:(400. *. U.gbps) ~packet_size

let unit_rate ?(parallelism = 1) ~c_pp ~unit_bw ~packet_size () =
  float_of_int parallelism *. rate_of ~c_pp ~unit_bw ~packet_size

(* The prototype's ingress aggregates dual 100G MACs plus the PCIe
   path, so the port engine itself is never the queueing hotspot the
   scenarios probe. *)
let port_service = G.service ~throughput:(2.5 *. line_rate) ~queue_capacity:256 ()

let infra_vertices g =
  let g, ingress = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:port_service g in
  let g, rmt =
    G.add_vertex ~kind:G.Ip ~label:"rmt"
      ~service:(G.service ~throughput:(300. *. U.gbps) ~queue_capacity:128 ())
      g
  in
  let g, sched =
    G.add_vertex ~kind:G.Ip ~label:"sched"
      ~service:(G.service ~throughput:(250. *. U.gbps) ~queue_capacity:128 ())
      g
  in
  (g, ingress, rmt, sched)

(* Model 1 compute units: a parse-heavy unit and a crypto-class unit.
   The per-packet cost term makes small-packet-heavy profiles utilize
   them harder, which is what differentiates the credit requirements of
   the Fig 15 traffic profiles. *)
let unit_a_params = (5.0e-9, 31.3e9)
let unit_b_params = (2.0e-9, 60e9)

(* Under a weighted size mix, a unit whose per-packet time is
   c_pp + s/bw serves offered bytes at the effective rate
   1/(c_pp * E[1/s] + 1/bw): the harmonic-mean packet size drives the
   per-packet cost's contribution. A single-class traffic at the mix's
   mean size against this rate reproduces the unit's aggregate
   utilization exactly. *)
let effective_unit_rate (c_pp, unit_bw) ~sizes =
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0. sizes in
  let inv_size_mean =
    List.fold_left (fun acc (s, w) -> acc +. (w /. s)) 0. sizes /. total_w
  in
  1. /. ((c_pp *. inv_size_mean) +. (1. /. unit_bw))

let pipelined_graph ?(credits = 8) ~sizes () =
  let g, ingress, rmt, sched = infra_vertices G.empty in
  let unit label params g =
    G.add_vertex ~kind:G.Ip ~label
      ~service:
        (G.service
           ~throughput:(effective_unit_rate params ~sizes)
           ~queue_capacity:credits ())
      g
  in
  let g, unit_a = unit "unitA" unit_a_params g in
  let g, unit_b = unit "unitB" unit_b_params g in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port_service g in
  let g = G.add_edge ~delta:1. ~src:ingress ~dst:rmt g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:rmt ~dst:sched g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:sched ~dst:unit_a g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:unit_a ~dst:unit_b g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:unit_b ~dst:egress g in
  g

(* Scenario 2: three accelerators with computing-throughput ratio
   4:7:3, 8 Gbps per ratio unit. *)
let a_ratio_unit = 8. *. U.gbps

let parallelized_graph ?(credits = 8) ~split ~packet_size () =
  let s1, s2, s3 = split in
  if s1 < 0. || s2 < 0. || s3 < 0. || s1 +. s2 +. s3 <= 0. then
    invalid_arg "Panic.parallelized_graph: bad split";
  let total = s1 +. s2 +. s3 in
  let f1 = s1 /. total and f2 = s2 /. total and f3 = s3 /. total in
  let g, ingress, rmt, sched = infra_vertices G.empty in
  let accel label ratio g =
    G.add_vertex ~kind:G.Ip ~label
      ~service:
        (G.service
           ~throughput:(ratio *. a_ratio_unit)
           ~queue_capacity:credits ())
      g
  in
  let g, a1 = accel "A1" 4. g in
  let g, a2 = accel "A2" 7. g in
  let g, a3 = accel "A3" 3. g in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port_service g in
  let g = G.add_edge ~delta:1. ~src:ingress ~dst:rmt g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:rmt ~dst:sched g in
  let g = G.add_edge ~delta:f1 ~alpha:f1 ~src:sched ~dst:a1 g in
  let g = G.add_edge ~delta:f2 ~alpha:f2 ~src:sched ~dst:a2 g in
  let g = G.add_edge ~delta:f3 ~alpha:f3 ~src:sched ~dst:a3 g in
  let g = G.add_edge ~delta:f1 ~alpha:f1 ~src:a1 ~dst:egress g in
  let g = G.add_edge ~delta:f2 ~alpha:f2 ~src:a2 ~dst:egress g in
  let g = G.add_edge ~delta:f3 ~alpha:f3 ~src:a3 ~dst:egress g in
  ignore packet_size;
  g

let ip4_engine_rate = 11.5 *. U.gbps

let hybrid_graph ?(credits = 32) ?(ip4_parallelism = 1) ~ip1_split ~packet_size () =
  let to_ip3, to_ip4 = ip1_split in
  if to_ip3 < 0. || to_ip4 < 0. || to_ip3 +. to_ip4 <= 0. then
    invalid_arg "Panic.hybrid_graph: bad ip1_split";
  let total = to_ip3 +. to_ip4 in
  let f3 = to_ip3 /. total and f4 = to_ip4 /. total in
  (* Ingress splits 70/30 between the two first-stage units. *)
  let w1 = 0.7 and w2 = 0.3 in
  let g, ingress, rmt, sched = infra_vertices G.empty in
  let unit label rate ~credits g =
    G.add_vertex ~kind:G.Ip ~label
      ~service:(G.service ~throughput:rate ~queue_capacity:credits ())
      g
  in
  let g, ip1 = unit "IP1" (80. *. U.gbps) ~credits g in
  let g, ip2 = unit "IP2" (40. *. U.gbps) ~credits g in
  let g, ip3 = unit "IP3" (46. *. U.gbps) ~credits g in
  let g, ip4 =
    G.add_vertex ~kind:G.Ip ~label:"IP4"
      ~service:
        (G.service
           ~throughput:(float_of_int ip4_parallelism *. ip4_engine_rate)
           ~parallelism:ip4_parallelism ~queue_capacity:credits ())
      g
  in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port_service g in
  let g = G.add_edge ~delta:1. ~src:ingress ~dst:rmt g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:rmt ~dst:sched g in
  let g = G.add_edge ~delta:w1 ~alpha:w1 ~src:sched ~dst:ip1 g in
  let g = G.add_edge ~delta:w2 ~alpha:w2 ~src:sched ~dst:ip2 g in
  let g = G.add_edge ~delta:(w1 *. f3) ~alpha:(w1 *. f3) ~src:ip1 ~dst:ip3 g in
  let g = G.add_edge ~delta:(w1 *. f4) ~alpha:(w1 *. f4) ~src:ip1 ~dst:ip4 g in
  let g = G.add_edge ~delta:w2 ~alpha:w2 ~src:ip2 ~dst:ip4 g in
  let g = G.add_edge ~delta:(w1 *. f3) ~alpha:(w1 *. f3) ~src:ip3 ~dst:egress g in
  let g =
    G.add_edge
      ~delta:((w1 *. f4) +. w2)
      ~alpha:((w1 *. f4) +. w2)
      ~src:ip4 ~dst:egress g
  in
  ignore packet_size;
  g
