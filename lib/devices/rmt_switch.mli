(** A programmable RMT switch (Tofino-class) — the §5.3 generalization.

    The paper closes its related-work discussion with "we believe the
    LogNIC model can support programmable switches by designing a new
    set of system interfaces". This device model provides that
    interface set:

    - the match-action {e pipeline} is a single packet-rate-bound IP
      (a packet occupies one pipeline slot per pass, whatever its
      size), with its deep pipelining expressed through the parallelism
      degree D so per-packet latency is the full pipeline depth while
      throughput stays one packet per clock;
    - on-chip {e register/SRAM} accesses are charged to the memory
      medium via β (bytes of stateful access per packet);
    - {e recirculation} — a packet re-entering the pipeline for more
      computation — would create a cycle, so it is unrolled: a second
      pipeline vertex processes the recirculated fraction δ_r, sharing
      the physical pipeline through the γ partition parameter. *)

val line_rate : float
(** 3.2 Tbps aggregate switching capacity. *)

val pipeline_pps : float
(** Packets per second through one pipeline pass (1.2 Gpps class). *)

val pipeline_depth : float
(** Seconds a packet spends traversing the pipeline (ns-scale,
    independent of load). *)

val hardware : Lognic.Params.hardware
(** interface = the switching crossbar; memory = the register/SRAM
    subsystem. *)

val register_bandwidth : float
(** Aggregate stateful-memory access bandwidth, bytes/s. *)

val pipeline_service :
  ?partition:float -> packet_size:float -> unit -> Lognic.Graph.service
(** The pipeline as a graph vertex for the given packet size:
    throughput = pps × size (packet-rate bound), D sized so service
    time equals {!pipeline_depth}. *)

val forwarding_graph :
  ?recirculate:float ->
  ?register_bytes_per_packet:float ->
  packet_size:float ->
  unit ->
  Lognic.Graph.t
(** Plain L2/L3 forwarding: ingress → pipeline → egress, with an
    optional recirculated fraction taking a second (unrolled) pass and
    per-packet register traffic on the memory medium. Raises
    [Invalid_argument] if [recirculate] is outside [0, 1). *)
