type gc_mode = Gc_none | Gc_realistic | Gc_worst_case

type io = { io_size : float; read_fraction : float; sequential : bool }

type t = {
  read_access : float;
  write_access : float;
  stream_bandwidth : float;
  internal_bandwidth : float;
  parallelism : int;
  gc_amplification : float;
}

let default =
  {
    read_access = 85e-6;
    write_access = 20e-6;
    stream_bandwidth = 400e6;
    internal_bandwidth = 3.2e9;
    parallelism = 64;
    gc_amplification = 1.0;
  }

type effective = { service_time : float; bus_bandwidth : float; capacity : float }

let effective t ~io ~gc =
  if io.read_fraction < 0. || io.read_fraction > 1. then
    invalid_arg "Ssd.effective: read_fraction outside [0, 1]";
  let write_fraction = 1. -. io.read_fraction in
  (* GC only hits random writes on a fragmented drive. Realistic mode
     scales the write penalty with write intensity (background GC
     absorbs the rest); worst-case charges the full amplification to
     every write — the assumption a 100%-write characterization bakes
     into calibrated parameters. *)
  let gc_factor =
    if io.sequential || write_fraction = 0. then 0.
    else
      match gc with
      | Gc_none -> 0.
      | Gc_realistic -> t.gc_amplification *. write_fraction
      | Gc_worst_case -> t.gc_amplification
  in
  let transfer = io.io_size /. t.stream_bandwidth in
  let read_service = t.read_access +. transfer in
  let write_service = (t.write_access +. transfer) *. (1. +. gc_factor) in
  let service_time =
    (io.read_fraction *. read_service) +. (write_fraction *. write_service)
  in
  let bus_bandwidth =
    (* GC traffic also competes for the internal bus. *)
    t.internal_bandwidth /. (1. +. (gc_factor *. write_fraction))
  in
  let iops_capacity =
    float_of_int t.parallelism *. io.io_size /. service_time
  in
  { service_time; bus_bandwidth; capacity = Float.min iops_capacity bus_bandwidth }

let rrd_4k = { io_size = 4. *. Lognic.Units.kib; read_fraction = 1.; sequential = false }

let rrd_128k =
  { io_size = 128. *. Lognic.Units.kib; read_fraction = 1.; sequential = false }

let swr_4k = { io_size = 4. *. Lognic.Units.kib; read_fraction = 0.; sequential = true }

let mixed_4k ~read_fraction =
  { io_size = 4. *. Lognic.Units.kib; read_fraction; sequential = false }
