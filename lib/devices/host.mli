(** The host side of a SmartNIC-equipped server (§2.1's PCIe path,
    §4.4's E3 migration target).

    E3's orchestrator migrates Microservices from the NIC to host cores
    when the SmartNIC overloads. The host offers faster cores but the
    crossing costs PCIe bandwidth and latency, and host cores are the
    expensive resource the SmartNIC exists to offload — so only a small
    budget of them is available to rescued stages. *)

val available_cores : int
(** Host cores the orchestrator may draw on (4 — the rest run the
    actual application). *)

val core_frequency : float
(** 2.4 GHz Xeon-class. *)

val cycle_efficiency : float
(** Cycles a host core needs per cnMIPS cycle of work (0.8: wider
    issue, bigger caches). *)

val pcie_bandwidth : float
(** Effective PCIe 3.0 x16 data rate, bytes/s. *)

val pcie_latency : float
(** One-way PCIe + driver crossing latency, seconds. *)

val stage_rate : cost_cycles:float -> cores:int -> float
(** Requests/s of [cores] host cores running a stage whose cnMIPS cost
    is [cost_cycles]. *)

val stage_service : cost_cycles:float -> cores:int -> request_size:float -> Lognic.Graph.service
(** A graph vertex for a host-resident stage. *)
