(** The Broadcom Stingray PS1100R device model (§4.1, §4.3).

    An off-path SmartNIC JBOF head: 8 × 3.0 GHz ARM A72 cores, 8 GB
    DDR4-2400, a 100 GbE NetXtreme NIC, and NVMe SSDs behind PCIe. The
    NVMe-oF (NVMe-over-RDMA) target process runs on the NIC cores:
    RDMA stack processing and NVMe command fabrication on the
    submission path (IP1), SSD access (IP2), completion handling and
    response-packet construction (IP3) — the execution graph of
    Figure 2(c). *)

val line_rate : float
(** 100 Gbps in bytes/s. *)

val total_cores : int
(** 8 ARM A72 cores. *)

val soc_interconnect : float
(** SoC interconnect bandwidth backing the model's interface medium. *)

val dram_bandwidth : float
(** DDR4-2400 channel bandwidth backing the memory medium. *)

val hardware : Lognic.Params.hardware

val submission_cost : float
(** Core seconds per I/O on the submission path (RDMA receive + NVMe
    command fabrication). *)

val completion_cost : float
(** Core seconds per I/O on the completion path. *)

val nvme_of_graph :
  ?ssd:Ssd.t -> ?gc:Ssd.gc_mode -> io:Ssd.io -> unit -> Lognic.Graph.t
(** Figure 2(c)'s graph for the given I/O profile: ingress → IP1
    (submission cores) → IP2 (SSD) → IP3 (completion cores) → egress.
    Edges 1/4 cross the SoC interconnect (α); edges 2/3 cross the
    interconnect and DRAM (α and β); the core↔SSD hop also rides the
    SSD's internal bus, modeled as a dedicated-bandwidth edge. The
    "packet" granularity of this graph is the I/O size. *)
