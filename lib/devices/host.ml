module G = Lognic.Graph
module U = Lognic.Units

let available_cores = 4
let core_frequency = 2.4e9
let cycle_efficiency = 0.8
let pcie_bandwidth = 128. *. U.gbps
let pcie_latency = 1.5e-6

let stage_rate ~cost_cycles ~cores =
  if cost_cycles <= 0. then invalid_arg "Host.stage_rate: cost must be > 0";
  if cores < 1 || cores > available_cores then
    invalid_arg "Host.stage_rate: cores outside the migration budget";
  float_of_int cores *. core_frequency /. (cycle_efficiency *. cost_cycles)

let stage_service ~cost_cycles ~cores ~request_size =
  G.service
    ~throughput:(stage_rate ~cost_cycles ~cores *. request_size)
    ~parallelism:cores ~queue_capacity:64 ()
