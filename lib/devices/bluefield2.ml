module G = Lognic.Graph
module U = Lognic.Units

type nf = Fw | Lb | Dpi | Nat | Pe
type placement = On_arm | On_accel

let nf_name = function
  | Fw -> "FW"
  | Lb -> "LB"
  | Dpi -> "DPI"
  | Nat -> "NAT"
  | Pe -> "PE"

let chain = [ Fw; Lb; Dpi; Nat; Pe ]
let line_rate = 100. *. U.gbps
let total_cores = 8
let core_frequency = 2.5e9

let hardware =
  (* The ARM cluster's shared LLC and the PCIe DMA engines are the
     cross-graph choke points the contention layer models. *)
  Lognic.Params.with_resources
    (Lognic.Params.hardware ~bw_interface:(200. *. U.gbps)
       ~bw_memory:(120. *. U.gbps))
    [ ("llc", 60. *. U.gbps); ("pcie-dma", 128.e9) ]

let has_accelerator = function Dpi -> false | Fw | Lb | Nat | Pe -> true

(* Software costs: fixed per-packet cycles plus per-byte cycles. DPI and
   PE are byte-heavy (pattern matching, encryption); the others are
   header-dominated. *)
let arm_cost = function
  | Fw -> (300., 0.25)
  | Lb -> (250., 0.15)
  | Dpi -> (800., 2.5)
  | Nat -> (280., 0.2)
  | Pe -> (400., 3.5)

let arm_cycles nf ~packet_size =
  let per_packet, per_byte = arm_cost nf in
  per_packet +. (per_byte *. packet_size)

let require_accel nf =
  if not (has_accelerator nf) then
    invalid_arg (nf_name nf ^ " has no hardware accelerator")

(* (packet rate, byte rate, issue cycles, transfer overhead) *)
let accel_spec = function
  | Fw -> (12e6, 80. *. U.gbps, 120., 1.0e-6)
  | Lb -> (15e6, 90. *. U.gbps, 100., 0.8e-6)
  | Nat -> (12e6, 80. *. U.gbps, 120., 1.0e-6)
  | Pe -> (8e6, 60. *. U.gbps, 150., 1.2e-6)
  | Dpi -> invalid_arg "DPI has no hardware accelerator"

let accel_issue_cycles nf =
  require_accel nf;
  let _, _, issue, _ = accel_spec nf in
  issue

let accel_rate nf ~packet_size =
  require_accel nf;
  let pps, bytes, _, _ = accel_spec nf in
  Float.min (pps *. packet_size) bytes

let accel_overhead nf =
  require_accel nf;
  let _, _, _, o = accel_spec nf in
  o

let crossing_alpha = 0.9

let placements () =
  (* Every subset of the four accelerable NFs. *)
  let accelerable = [ Fw; Lb; Nat; Pe ] in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let tails = subsets rest in
      tails @ List.map (fun s -> x :: s) tails
  in
  List.map
    (fun on_accel nf ->
      if has_accelerator nf && List.mem nf on_accel then On_accel else On_arm)
    (subsets accelerable)

let chain_graph ?(cores = total_cores) ~placement_of ~packet_size () =
  if cores < 1 || cores > total_cores then
    invalid_arg "Bluefield2.chain_graph: cores out of range";
  let cluster_cycles = float_of_int cores *. core_frequency in
  (* Core-side cost per packet of each chain stage: the NF itself when
     on ARM, the shepherd cost when its work is offloaded. *)
  let core_cost nf =
    match placement_of nf with
    | On_arm -> arm_cycles nf ~packet_size
    | On_accel -> accel_issue_cycles nf
  in
  let total_core_cost = List.fold_left (fun acc nf -> acc +. core_cost nf) 0. chain in
  (* Each core-side stage is a virtual IP of the cluster with gamma
     proportional to its cost, so P_eff is identical across stages and
     equals the cluster's run-to-completion rate for the whole chain. *)
  let core_service nf ~overhead =
    let cost = core_cost nf in
    let gamma = Float.max 1e-6 (cost /. total_core_cost) in
    let full_rate = cluster_cycles /. cost *. packet_size in
    (* D tracks the stage's share of physical cores so per-request
       service time stays one core's stage time (Eq 7). *)
    let engines = max 1 (int_of_float (Float.round (gamma *. float_of_int cores))) in
    G.service ~throughput:full_rate ~partition:gamma ~parallelism:engines
      ~overhead ~queue_capacity:64 ()
  in
  let g = G.empty in
  let port = G.service ~throughput:line_rate ~queue_capacity:256 () in
  let g, ingress = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:port g in
  let add_stage (g, prev, prev_alpha) nf =
    match placement_of nf with
    | On_arm ->
      let g, v =
        G.add_vertex ~kind:G.Ip
          ~label:(nf_name nf ^ ".arm")
          ~service:(core_service nf ~overhead:0.)
          g
      in
      let g = G.add_edge ~delta:1. ~alpha:prev_alpha ~src:prev ~dst:v g in
      (g, v, 0.)
    | On_accel ->
      let g, shepherd =
        G.add_vertex ~kind:G.Ip
          ~label:(nf_name nf ^ ".issue")
          ~service:(core_service nf ~overhead:(accel_overhead nf))
          g
      in
      let accel_service =
        G.service
          ~throughput:(accel_rate nf ~packet_size)
          ~parallelism:4 ~queue_capacity:32 ()
      in
      let g, accel =
        G.add_vertex ~kind:G.Ip
          ~label:(nf_name nf ^ ".accel")
          ~service:accel_service g
      in
      let g = G.add_edge ~delta:1. ~alpha:prev_alpha ~src:prev ~dst:shepherd g in
      let g =
        G.add_edge ~delta:1. ~alpha:crossing_alpha ~src:shepherd ~dst:accel g
      in
      (* The return crossing is charged on the accelerator's out-edge. *)
      (g, accel, crossing_alpha)
  in
  let g, last, last_alpha = List.fold_left add_stage (g, ingress, 0.) chain in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port g in
  let g = G.add_edge ~delta:1. ~alpha:last_alpha ~src:last ~dst:egress g in
  g
