(** The Marvell LiquidIO-II CN2360 device model (§4.1, Figure 8).

    An on-path Multicore-SoC SmartNIC: 25 GbE ports, 16 × 1.5 GHz
    cnMIPS cores, 4 GB DRAM, on-chip crypto units behind the coherent
    memory interconnect (CMI, 50 Gbps) and off-chip HFA/ZIP engines
    behind the I/O interconnect (40 Gbps).

    Medium mapping: the I/O interconnect is the model's shared
    {e interface}; the CMI is the {e memory} medium. *)

val line_rate : float
(** 25 Gbps in bytes/s. *)

val total_cores : int
(** 16 cnMIPS cores. *)

val cmi_bandwidth : float
(** 50 Gbps. *)

val io_bandwidth : float
(** 40 Gbps. *)

val hardware : Lognic.Params.hardware
(** interface = I/O interconnect, memory = CMI. The resource vector
    names the L2 fill path ([l2-fill]) and the DDR3 channel ([dram])
    for the multi-resource contention layer. *)

val core_rate_bytes :
  spec:Accel_spec.t -> cores:int -> packet_size:float -> float
(** P (bytes/s of consumed traffic) of a NIC-core cluster of [cores]
    cores driving the given accelerator at the given packet size. *)

val accel_rate_bytes : spec:Accel_spec.t -> packet_size:float -> float
(** P of the accelerator itself: one operation per packet. *)

val inline_accel_graph :
  ?cores:int ->
  ?granularity:float ->
  spec:Accel_spec.t ->
  packet_size:float ->
  unit ->
  Lognic.Graph.t
(** The §4.2 bump-in-the-wire execution graph:
    ingress → IP1 (NIC cores) → IP2 (accelerator) → IP3 (NIC cores) →
    egress, where IP3 mirrors IP1's parallelism (the paper's experiments
    run submission and completion on the same cores; IP1/IP3 each get a
    γ = 0.5 share of the cluster).  [cores] defaults to all 16;
    [granularity] (default [packet_size]) is the accelerator's
    data-access size per operation — the Fig 5 knob — and sets the α or
    β of the core→accelerator and accelerator→core edges depending on
    the engine's medium. *)

val microservice_core_rate : cost_cycles:float -> cores:int -> float
(** Requests/s of a [cores]-core cluster running a Microservice stage
    that costs [cost_cycles] cycles per request (1.5 GHz cnMIPS). *)
