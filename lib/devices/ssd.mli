(** An NVMe SSD modeled as an opaque IP (§4.3).

    The paper treats the SSD as a black box: internal command queues,
    write cache and garbage collection are invisible, so LogNIC's
    parameters are obtained by characterize-and-curve-fit. Our model
    mirrors the internals a real drive exhibits so that the
    characterization step has something real to fit:

    - per-IO latency = fixed medium access time + transfer over a
      per-stream bandwidth,
    - [parallelism] concurrent in-flight IOs (NVMe queue depth the
      firmware can sustain),
    - a shared internal bus bounding aggregate bandwidth,
    - garbage collection on a {e fragmented} (write-preconditioned)
      drive: each random write carries extra background work that
      scales with the workload's write intensity. A mostly-read mix
      leaves idle time for background GC, so the per-write penalty
      shrinks — exactly the behaviour §4.3 reports LogNIC cannot
      capture, producing its ≈14.6 % underestimate on mixed traffic
      (Fig 7). *)

type gc_mode =
  | Gc_none  (** freshly formatted drive / sequential writes *)
  | Gc_realistic
      (** fragmented drive, penalty ∝ write intensity — what the
          simulated "hardware" does *)
  | Gc_worst_case
      (** fragmented drive, full penalty on every write regardless of
          mix — what a characterization-time calibration on a 100%%
          write workload bakes into the model *)

type io = {
  io_size : float;  (** bytes *)
  read_fraction : float;  (** 0 = all writes, 1 = all reads *)
  sequential : bool;
}

type t = {
  read_access : float;  (** fixed read latency component, seconds *)
  write_access : float;  (** fixed (cached) write latency, seconds *)
  stream_bandwidth : float;  (** per-IO transfer bandwidth, bytes/s *)
  internal_bandwidth : float;  (** shared aggregate bus, bytes/s *)
  parallelism : int;  (** sustained in-flight IOs *)
  gc_amplification : float;
      (** extra work per random-write byte on a fragmented drive *)
}

val default : t
(** A 3.2 GB/s-class datacenter NVMe drive: 85 µs reads, 20 µs cached
    writes, queue depth 64, GC write amplification 1.0. *)

type effective = {
  service_time : float;  (** mean per-IO service time, seconds *)
  bus_bandwidth : float;  (** effective shared-bus bandwidth, bytes/s *)
  capacity : float;
      (** min(parallelism·io_size/service, bus) — bytes/s *)
}

val effective : t -> io:io -> gc:gc_mode -> effective
(** Blended read/write behaviour of the drive under the given mix. *)

val rrd_4k : io
val rrd_128k : io
val swr_4k : io
(** The three §4.3 I/O profiles: 4 KB random read, 128 KB random read,
    4 KB sequential write. *)

val mixed_4k : read_fraction:float -> io
(** The Fig 7 mixed random 4 KB workload. *)
