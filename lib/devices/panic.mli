(** The PANIC programmable-NIC model (§4.6, after Lin et al. OSDI'20).

    PANIC's architecture: an RMT pipeline producing per-packet offload
    descriptors, a switching fabric interconnecting everything, a
    central credit-based scheduler, and a pool of compute units the
    scheduler chains packets through. Configurable knobs we expose —
    matching the paper's three design-exploration scenarios — are the
    per-unit credit count (its request-queue capacity), the scheduler's
    traffic-steering split, and the per-unit hardware parallelism.

    The three §4.6 execution-graph templates come from PANIC's own
    evaluation models: Model 1 "Pipelined Chain" (units in series),
    Model 2 "Parallelized Chain" (units in parallel behind the
    scheduler) and Model 3 "Hybrid Chain". *)

val line_rate : float
(** 100 Gbps. *)

val hardware : Lognic.Params.hardware
(** interface = the switching fabric; memory = on-chip packet buffer. *)

val rmt_rate : packet_size:float -> float
(** RMT pipeline throughput (packet-rate bound). *)

val scheduler_rate : packet_size:float -> float

val unit_rate :
  ?parallelism:int -> c_pp:float -> unit_bw:float -> packet_size:float -> unit -> float
(** Compute-unit throughput in bytes/s:
    [parallelism · size / (c_pp + size/unit_bw)] — a fixed per-packet
    cost plus a per-byte pipeline term, so small packets utilize the
    unit harder (the effect behind Fig 15's per-profile credit needs). *)

val unit_a_params : float * float
(** (per-packet seconds, byte bandwidth) of Model 1's first compute
    unit — exposed for the M/G/1 service-variability analysis. *)

val unit_b_params : float * float

val effective_unit_rate : float * float -> sizes:(float * float) list -> float
(** [effective_unit_rate (c_pp, bw) ~sizes] is a compute unit's
    aggregate serving rate (bytes/s) under a weighted packet-size mix:
    [1/(c_pp · E(1/s) + 1/bw)]. The harmonic-mean packet size drives
    the per-packet term, which is why small-packet-heavy profiles need
    more credits in Fig 15. *)

val pipelined_graph :
  ?credits:int -> sizes:(float * float) list -> unit -> Lognic.Graph.t
(** Model 1: ingress → RMT → scheduler → unit A → unit B → egress, with
    each compute unit's queue capacity set to [credits] (default 8, the
    PANIC paper's default provisioning) and unit throughputs set to
    their effective rates under the given size mix. *)

val parallelized_graph :
  ?credits:int ->
  split:float * float * float ->
  packet_size:float ->
  unit ->
  Lognic.Graph.t
(** Model 2: scheduler fans out to A1/A2/A3 whose computing-throughput
    ratio is 4:7:3 (§4.6 scenario 2), with the given traffic split
    (normalized). *)

val hybrid_graph :
  ?credits:int ->
  ?ip4_parallelism:int ->
  ip1_split:float * float ->
  packet_size:float ->
  unit ->
  Lognic.Graph.t
(** Model 3 (modified, §4.6 scenario 3): ingress traffic splits 70/30
    to IP1/IP2; IP1 fans out to IP3/IP4 by [ip1_split]; IP2 feeds IP4;
    IP3 and IP4 merge into egress. [ip4_parallelism] (default 1) scales
    IP4's engine count — the Fig 18/19 knob. *)

val ip4_engine_rate : float
(** Per-engine throughput of IP4, bytes/s (11.5 Gbps). *)
