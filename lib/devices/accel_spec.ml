type medium = Cmi | Io_interconnect

type t = {
  name : string;
  peak_ops : float;
  medium : medium;
  core_issue_ops : float;
  issue_overhead : float;
}

let mops = Lognic.Units.mops

(* Per-core issue rates follow Fig 9's knees: each core splits evenly
   between submission (IP1) and completion (IP3) work, so an engine with
   peak P that needs n cores to saturate sees a dedicated core issue at
   2P/n calls/s. The issue rate is inclusive of the per-call preparation
   overhead O_IP1 (that is what differentiates the engines); O_IP1
   itself is also exposed for the latency model's transfer-overhead
   term, taken as 35% of the per-call budget. *)
let make name peak medium cores_to_saturate =
  let peak_ops = peak *. mops in
  let core_issue_ops = 2. *. peak_ops /. cores_to_saturate in
  {
    name;
    peak_ops;
    medium;
    core_issue_ops;
    issue_overhead = 1. /. core_issue_ops *. 0.35;
  }

let crc = make "CRC" 2.8 Cmi 8.
let des3 = make "3DES" 2.2 Cmi 9.
let md5 = make "MD5" 1.8 Cmi 9.
let aes = make "AES" 2.0 Cmi 9.
let sha1 = make "SHA-1" 1.5 Cmi 9.
let sms4 = make "SMS4" 1.3 Cmi 10.
let kasumi = make "KASUMI" 1.76 Cmi 8.
let hfa = make "HFA" 1.18 Io_interconnect 11.
let zip = make "ZIP" 0.8 Io_interconnect 10.

let all = [ crc; des3; md5; aes; sha1; sms4; kasumi; hfa; zip ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun t -> String.lowercase_ascii t.name = lower) all
