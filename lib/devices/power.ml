let nic_core_active = 1.2
let nic_base = 8.
let host_core_active = 12.
let host_base = 20.

let nic_power ~busy_cores =
  if busy_cores < 0. then invalid_arg "Power.nic_power: negative cores";
  nic_base +. (nic_core_active *. busy_cores)

let host_power ~busy_cores =
  if busy_cores < 0. then invalid_arg "Power.host_power: negative cores";
  host_base +. (host_core_active *. busy_cores)

let efficiency ~requests_per_s ~watts =
  if watts <= 0. then invalid_arg "Power.efficiency: watts must be > 0";
  requests_per_s /. watts
