module G = Lognic.Graph
module U = Lognic.Units

let line_rate = 3200. *. U.gbps
let pipeline_pps = 1.2e9
let pipeline_depth = 400e-9
let register_bandwidth = 400e9 (* bytes/s of stateful SRAM access *)

let hardware =
  Lognic.Params.hardware ~bw_interface:(2. *. line_rate) ~bw_memory:register_bandwidth

let pipeline_service ?(partition = 1.) ~packet_size () =
  (* One packet per pipeline slot: byte throughput scales with size.
     D = depth x pps makes the Eq 7 service time equal the physical
     traversal time while the aggregate rate stays pps-bound. *)
  let throughput = pipeline_pps *. packet_size in
  let stages = max 1 (int_of_float (Float.round (pipeline_depth *. pipeline_pps))) in
  G.service ~throughput ~parallelism:stages ~partition ~queue_capacity:512 ()

let forwarding_graph ?(recirculate = 0.) ?(register_bytes_per_packet = 32.)
    ~packet_size () =
  if recirculate < 0. || recirculate >= 1. then
    invalid_arg "Rmt_switch.forwarding_graph: recirculate outside [0, 1)";
  let beta = register_bytes_per_packet /. packet_size in
  let port = G.service ~throughput:line_rate ~queue_capacity:1024 () in
  let g = G.empty in
  let g, ingress = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:port g in
  (* When packets recirculate, the two passes share the physical
     pipeline: pass 1 serves everything, pass 2 the recirculated
     fraction, partitioned by their work shares. *)
  let share1 = 1. /. (1. +. recirculate) in
  let g, pass1 =
    G.add_vertex ~kind:G.Ip ~label:"pipeline.pass1"
      ~service:(pipeline_service ~partition:share1 ~packet_size ())
      g
  in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port g in
  let g = G.add_edge ~delta:1. ~beta ~src:ingress ~dst:pass1 g in
  if recirculate = 0. then G.add_edge ~delta:1. ~src:pass1 ~dst:egress g
  else begin
    let g, pass2 =
      G.add_vertex ~kind:G.Ip ~label:"pipeline.pass2"
        ~service:(pipeline_service ~partition:(1. -. share1) ~packet_size ())
        g
    in
    let g = G.add_edge ~delta:(1. -. recirculate) ~src:pass1 ~dst:egress g in
    let g =
      G.add_edge ~delta:recirculate ~beta:(beta *. recirculate) ~src:pass1
        ~dst:pass2 g
    in
    G.add_edge ~delta:recirculate ~src:pass2 ~dst:egress g
  end
