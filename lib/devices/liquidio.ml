module G = Lognic.Graph
module U = Lognic.Units

let line_rate = 25. *. U.gbps
let total_cores = 16
let cmi_bandwidth = 50. *. U.gbps
let io_bandwidth = 40. *. U.gbps
let core_frequency = 1.5e9

let l2_fill_bandwidth = 30. *. U.gbps
let dram_bandwidth = 25.6e9

let hardware =
  (* Beyond the two modeled media, co-located graphs contend for the
     shared L2 fill path and the single DDR3 channel; the contention
     layer prices those through the resource vector. *)
  Lognic.Params.with_resources
    (Lognic.Params.hardware ~bw_interface:io_bandwidth ~bw_memory:cmi_bandwidth)
    [ ("l2-fill", l2_fill_bandwidth); ("dram", dram_bandwidth) ]

let core_rate_bytes ~(spec : Accel_spec.t) ~cores ~packet_size =
  float_of_int cores *. spec.core_issue_ops *. packet_size

let accel_rate_bytes ~(spec : Accel_spec.t) ~packet_size =
  spec.peak_ops *. packet_size

let inline_accel_graph ?(cores = total_cores) ?granularity ~(spec : Accel_spec.t)
    ~packet_size () =
  if cores < 1 || cores > total_cores then
    invalid_arg "Liquidio.inline_accel_graph: cores out of range";
  let granularity = Option.value granularity ~default:packet_size in
  (* Fraction of W each accelerator call moves over its medium: g_acc
     bytes per packet of size g_in. *)
  let medium_fraction = granularity /. packet_size in
  let alpha, beta =
    match spec.medium with
    | Accel_spec.Io_interconnect -> (medium_fraction, 0.)
    | Accel_spec.Cmi -> (0., medium_fraction)
  in
  let port_service = G.service ~throughput:line_rate ~queue_capacity:128 () in
  (* Submission and completion run on the same cores (paper §4.2 note:
     IP3 holds the same parallelism as IP1), so each side owns half the
     cluster via the partition parameter; the parallelism degree D is
     the core count so per-request service time reflects one core's
     issue latency (Eq 7). *)
  let core_service =
    G.service
      ~throughput:(core_rate_bytes ~spec ~cores ~packet_size)
      ~partition:0.5 ~parallelism:cores ~overhead:spec.issue_overhead
      ~queue_capacity:64 ()
  in
  let accel_work_rate =
    (* The engine consumes [granularity] bytes per op, so in units of
       packet traffic its rate stays peak_ops * packet_size but the
       medium ceilings (alpha/beta) tighten as granularity grows. *)
    accel_rate_bytes ~spec ~packet_size
  in
  let accel_service =
    G.service ~throughput:accel_work_rate ~queue_capacity:32 ()
  in
  let g = G.empty in
  let g, ingress = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:port_service g in
  let g, ip1 = G.add_vertex ~kind:G.Ip ~label:"ip1.cores" ~service:core_service g in
  let g, ip2 =
    G.add_vertex ~kind:G.Ip ~label:("ip2." ^ spec.name) ~service:accel_service g
  in
  let g, ip3 = G.add_vertex ~kind:G.Ip ~label:"ip3.cores" ~service:core_service g in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port_service g in
  (* Only the submission edge moves the [granularity]-sized fetch over
     the engine's medium; the completion side returns a digest /
     descriptor whose cost is folded into O_IP1 (this is what makes the
     Fig 5 ratios land where the paper reports them). *)
  let g = G.add_edge ~delta:1. ~src:ingress ~dst:ip1 g in
  let g = G.add_edge ~delta:1. ~alpha ~beta ~src:ip1 ~dst:ip2 g in
  let g = G.add_edge ~delta:1. ~src:ip2 ~dst:ip3 g in
  let g = G.add_edge ~delta:1. ~src:ip3 ~dst:egress g in
  g

let microservice_core_rate ~cost_cycles ~cores =
  if cost_cycles <= 0. then
    invalid_arg "Liquidio.microservice_core_rate: cost must be > 0";
  float_of_int cores *. core_frequency /. cost_cycles
