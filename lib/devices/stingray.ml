module G = Lognic.Graph
module U = Lognic.Units

let line_rate = 100. *. U.gbps
let total_cores = 8
let core_frequency = 3.0e9
let soc_interconnect = 150. *. U.gbps
let dram_bandwidth = 19.2e9 (* DDR4-2400 single channel, bytes/s *)

let hardware =
  Lognic.Params.hardware ~bw_interface:soc_interconnect ~bw_memory:dram_bandwidth

(* ~6.6k cycles of RDMA + NVMe protocol work to submit an I/O, ~4.5k to
   complete one; at 3 GHz that is 2.2 us and 1.5 us per I/O. *)
let submission_cost = 6600. /. core_frequency
let completion_cost = 4500. /. core_frequency

let nvme_of_graph ?(ssd = Ssd.default) ?(gc = Ssd.Gc_none) ~(io : Ssd.io) () =
  let eff = Ssd.effective ssd ~io ~gc in
  let io_size = io.Ssd.io_size in
  let port_service = G.service ~throughput:line_rate ~queue_capacity:256 () in
  (* Submission and completion paths share the 8-core cluster equally. *)
  let core_rate cost = float_of_int total_cores *. io_size /. cost in
  let submission_service =
    G.service
      ~throughput:(core_rate submission_cost)
      ~partition:0.5 ~parallelism:total_cores ~overhead:0.5e-6
      ~queue_capacity:128 ()
  in
  let completion_service =
    G.service
      ~throughput:(core_rate completion_cost)
      ~partition:0.5 ~parallelism:total_cores ~overhead:0.5e-6
      ~queue_capacity:128 ()
  in
  let ssd_rate_per_stream =
    (* Per in-flight IO the drive serves io_size bytes in service_time;
       D = parallelism streams share the aggregate. *)
    io_size /. eff.Ssd.service_time
  in
  let ssd_service =
    G.service
      ~throughput:(ssd_rate_per_stream *. float_of_int ssd.Ssd.parallelism)
      ~parallelism:ssd.Ssd.parallelism ~queue_capacity:256 ()
  in
  (* The drive's shared internal bus is itself a serialization point
     with its own queueing near saturation (visible in the 128KB
     profiles), so it appears as an IP vertex rather than a bare
     bandwidth annotation. *)
  let bus_service =
    G.service ~throughput:eff.Ssd.bus_bandwidth ~queue_capacity:128 ()
  in
  let g = G.empty in
  let g, ingress = G.add_vertex ~kind:G.Ingress ~label:"eth.rx" ~service:port_service g in
  let g, ip1 =
    G.add_vertex ~kind:G.Ip ~label:"ip1.submission" ~service:submission_service g
  in
  let g, bus = G.add_vertex ~kind:G.Ip ~label:"ip2.ssd.bus" ~service:bus_service g in
  let g, ip2 = G.add_vertex ~kind:G.Ip ~label:"ip2.ssd" ~service:ssd_service g in
  let g, ip3 =
    G.add_vertex ~kind:G.Ip ~label:"ip3.completion" ~service:completion_service g
  in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"eth.tx" ~service:port_service g in
  (* Figure 2(c): edges 1/4 via SoC interconnect; edges 2/3 via
     interconnect + DRAM. *)
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:ingress ~dst:ip1 g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~beta:1. ~src:ip1 ~dst:bus g in
  let g = G.add_edge ~delta:1. ~src:bus ~dst:ip2 g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~beta:1. ~src:ip2 ~dst:ip3 g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:ip3 ~dst:egress g in
  g
