(** An in-network key-value cache on an RMT switch — exercising the
    §5.3 programmable-switch generalization (after NetCache, SOSP'17).

    Read requests for hot keys are answered directly from the switch's
    register memory (the {e hit} path: one extra register access, no
    server involvement); the rest travel to a storage server behind the
    switch and back (the {e miss} path: a second switch pass on the way
    out). As the cache hit ratio grows, server load falls and the
    system's sustainable request rate rises — the classic NetCache
    curve, produced here by the LogNIC model and cross-checked by the
    simulator. *)

type config = {
  request_size : float;  (** bytes per query/response packet *)
  value_bytes : float;  (** register bytes touched per cache hit *)
  server_rate : float;  (** server KV lookup capacity, requests/s *)
  server_think : float;  (** per-request server service time floor, s *)
}

val default : config
(** 128 B requests, 128 B values, a 4 M req/s server at 8 µs per
    lookup. *)

val graph : ?hit_ratio:float -> config -> Lognic.Graph.t
(** The two-path execution graph for a given hit ratio in [0, 1]. *)

type point = {
  hit_ratio : float;
  model_rps : float;  (** sustainable requests/s, analytic *)
  measured_rps : float;  (** simulator goodput at saturating load *)
  model_latency : float;  (** mean at 70% of sustainable load *)
  server_share : float;  (** fraction of requests reaching the server *)
}

val hit_ratio_sweep :
  ?duration:float ->
  ?seed:int ->
  ?jobs:int ->
  ?ratios:float list ->
  config ->
  point list
(** The NetCache headline sweep ({!Study} entry-point conventions:
    [?duration] / [?seed] / [?jobs]; point [i] simulates with seed
    [seed + i]). *)

val speedup_at : hit_ratio:float -> config -> float
(** Sustainable-rate gain over the no-cache baseline. *)
