let sim_config ?seed ?(warmup_fraction = 0.1) duration =
  let base = Lognic_sim.Netsim.default_config in
  let seed = Option.value seed ~default:base.Lognic_sim.Netsim.seed in
  {
    base with
    Lognic_sim.Netsim.seed;
    duration;
    warmup = duration *. warmup_fraction;
  }

let header ppf title columns =
  Fmt.pf ppf "== %s ==@.%s@." title (String.concat "  " columns)

let model_vs_measured ppf ~x ~model ~measured =
  let gap =
    if measured = 0. then 0. else 100. *. (measured -. model) /. measured
  in
  Fmt.pf ppf "%-12s  %12.4g  %12.4g  %6.1f%%@." x model measured gap
