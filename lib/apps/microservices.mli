(** Case study #3 — Microservice parallelism tuning on E3 / LiquidIO
    (§4.4; Figs 11, 12).

    E3 runs each Microservice as a multi-threaded stage of a service
    chain on the SmartNIC's 16 cnMIPS cores. Its default scheduler
    forwards each request to an available core round-robin and runs the
    whole chain to completion there, paying a locality penalty for
    hopping between heterogeneous stage code on one core. The
    alternatives partition cores per stage: either equally, or — with
    the LogNIC optimizer — proportionally to each stage's measured
    working set, which is what yields the paper's ≈35 % throughput and
    ≈22 % latency gains. *)

type workload = {
  name : string;
  stages : (string * float) list;  (** stage label, cycles per request *)
  request_size : float;  (** bytes handed between stages *)
}

val nfv_fin : workload
(** Flow monitoring. *)

val nfv_din : workload
(** Intrusion detection. *)

val rta_sf : workload
(** Spam filter. *)

val rta_shm : workload
(** Server health monitoring. *)

val iot_dh : workload
(** IoT data hub. *)

val all : workload list

type scheme = Round_robin | Equal_partition | Lognic_opt

val scheme_name : scheme -> string

val run_to_completion_penalty : float
(** Multiplier on a request's total cycles when one core executes every
    stage back-to-back (instruction-cache and context thrashing across
    heterogeneous stage code; E3's own motivation). 1.45. *)

val allocation : scheme -> workload -> int list
(** Cores per stage under the scheme (total ≤ 16). [Round_robin]
    returns a single entry — the undivided pool. [Lognic_opt]
    exhaustively searches stage-core compositions through the model. *)

val graph : scheme -> workload -> Lognic.Graph.t
(** The workload's execution graph under the scheme's allocation. *)

type outcome = {
  scheme : scheme;
  throughput : float;  (** requests/s carried under saturating load *)
  latency : float;  (** model mean latency at the 80%-load point, seconds *)
}

val evaluate : ?load:float -> workload -> scheme -> outcome
(** Throughput is measured under saturating offered load (Fig 11);
    latency at [load] (default 0.8, the paper's "80%% traffic load") of
    the weakest scheme's capacity, the same absolute rate for every
    scheme (Fig 12). *)

val compare_schemes : ?load:float -> workload -> outcome list
(** All three schemes on one workload. *)

(** {1 NIC/host hybrid placement}

    §4.4's E3 migrates overloaded Microservices to the host. The hybrid
    placement keeps a chain prefix on the NIC cores and moves the
    suffix across PCIe onto a small budget of host cores
    ({!Lognic_devices.Host}); a single crossing point keeps the PCIe
    tax to one traversal. *)

val hybrid_graph : workload -> split_at:int -> Lognic.Graph.t
(** Stages with index < [split_at] stay on the 16 NIC cores (allocated
    cost-proportionally); the rest run on the host behind a PCIe edge.
    [split_at = stage count] is NIC-only; [split_at = 0] moves
    everything. Raises [Invalid_argument] outside [0, stages]. *)

val best_hybrid_split : workload -> int
(** The capacity-maximizing crossing point (model search). *)

val hybrid_gain : workload -> float
(** Capacity of the best hybrid over the NIC-only LogNIC-opt
    allocation: > 1 when migration helps. *)

(** {1 Energy efficiency}

    E3's headline axis: requests per joule. NIC cores are an order of
    magnitude cheaper per cycle than host cores
    ({!Lognic_devices.Power}), which is why offloading wins even when a
    host-only deployment has higher raw capacity. *)

type energy_report = {
  placement : string;  (** "nic", "host", or "hybrid" *)
  capacity_rps : float;
  watts : float;  (** at saturation (all allocated cores busy) *)
  rps_per_watt : float;
}

val energy_comparison : workload -> energy_report list
(** NIC-only (LogNIC-opt allocation), host-only (same chain on
    {!Lognic_devices.Host.available_cores} host cores), and the best
    hybrid — each at its own saturated capacity. *)
