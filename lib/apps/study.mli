(** Shared plumbing for the case-study modules: every sweep in this
    library builds its simulator config and prints its result table the
    same way, so the conventions live here once.

    {b Entry-point conventions} (every sweep in [lognic.apps] follows
    them): [?duration] is the simulated horizon per point in seconds,
    [?seed] the base rng seed (points at index [i] derive [seed + i] so
    replications stay independent yet reproducible), and [?jobs] the
    domain count handed to {!Lognic_sim.Parallel.map} — results are
    bit-identical at every value. *)

val sim_config :
  ?seed:int -> ?warmup_fraction:float -> float -> Lognic_sim.Netsim.config
(** [sim_config ?seed ?warmup_fraction duration] is
    {!Lognic_sim.Netsim.default_config} with the given horizon, a warmup
    of [warmup_fraction] (default 0.1) of it, and the seed (default:
    the stock config's). *)

val header : Format.formatter -> string -> string list -> unit
(** [header ppf title columns] prints the standard study table header:
    a [== title ==] banner followed by the column names. *)

val model_vs_measured :
  Format.formatter -> x:string -> model:float -> measured:float -> unit
(** One standard result row: the swept point's label, the analytic
    value, the simulated value, and their relative gap in percent. *)
