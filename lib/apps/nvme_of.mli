(** Case study #2 — NVMe-oF target on the Broadcom Stingray JBOF
    (§4.3; Figs 6, 7).

    The target-side NVMe-over-RDMA process: NIC cores handle RDMA +
    NVMe submission (IP1), the SSD is an opaque IP (IP2), completion
    cores fabricate responses (IP3). "Measured" numbers come from the
    simulator running the SSD's realistic behaviour (including
    fragmented-drive garbage collection); "model" numbers come from the
    analytic estimate whose SSD parameters a characterization pass
    would produce — worst-case GC baked in, which is what makes the
    model under-predict mixed read/write bandwidth (Fig 7)'s measured
    curve by ≈ 15 %.

    All sweeps follow the {!Study} entry-point conventions
    ([?duration] / [?seed] / [?jobs]); points at index [i] simulate
    with seed [seed + i]. *)

type point = {
  offered : float;  (** offered load, bytes/s *)
  model_latency : float;
  measured_latency : float;
  model_throughput : float;
  measured_throughput : float;
}

val fig6_profile_sweep :
  ?duration:float ->
  ?seed:int ->
  ?jobs:int ->
  ?points:int ->
  io:Lognic_devices.Ssd.io ->
  unit ->
  point list
(** Latency vs throughput as the ingress rate rises toward the
    profile's saturation: the Fig 6 curves for 4KB-RRD / 128KB-RRD /
    4KB-SWR. *)

val fig6_error_rate : point list -> float
(** Mean relative latency error of the model against the measurement
    over the sweep's stable region (the "<1% error" §4.3 claim). *)

type mixed_point = {
  read_ratio : float;
  measured_bandwidth : float;  (** bytes/s from the GC-aware simulator *)
  model_bandwidth : float;  (** bytes/s from the worst-case-GC model *)
}

val fig7_read_ratio_sweep :
  ?duration:float ->
  ?seed:int ->
  ?jobs:int ->
  ?ratios:float list ->
  unit ->
  mixed_point list
(** 4 KB random mixed I/O on a fragmented (write-preconditioned) drive
    as the read ratio sweeps 0..100 %. *)

val calibration_demo :
  ?duration:float ->
  ?seed:int ->
  io:Lognic_devices.Ssd.io ->
  unit ->
  Lognic.Calibrate.opaque_ip
(** Runs the §4.3 characterize-and-curve-fit procedure against the
    simulated drive: sweep the load, measure (rate, latency), fit the
    open-queue latency curve, return the recovered parameters. *)
