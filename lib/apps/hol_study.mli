(** Head-of-line blocking study — probing the virtual-shared-queue
    abstraction (§3.6).

    LogNIC concatenates an IP's [m] input queues into one virtual
    shared queue before applying M/M/1/N. That merge is exact for a
    single traffic class but hides {e head-of-line blocking} when small
    and large requests share an IP: in a single FIFO, mice packets wait
    behind elephants; with per-class queues and a weighted round-robin
    scheduler (the hardware §3.2 actually describes) the mice are
    isolated.

    This study runs the same two-class load through both queue
    organizations of a simulated IP block and reports per-class
    latency, quantifying when the paper's abstraction is safe (single
    class, or homogeneous sizes) and how much it can hide (mice
    latency under FIFO grows with the elephant size). *)

type config = {
  rate : float;  (** IP processing rate, bytes/s *)
  mice_size : float;  (** bytes *)
  elephant_size : float;
  mice_load : float;  (** offered bytes/s of mice *)
  elephant_load : float;
  entries : int;  (** queue entries (per queue in WRR mode) *)
  mice_weight : int;  (** WRR weight of the mice queue (elephants get 1) *)
  engines : int;
      (** parallel engines sharing [rate]; isolation needs > 1 (a
          non-preemptive engine serving an elephant blocks mice no
          matter the queue organization) *)
}

val default : config
(** 64 B mice (25 %% load) vs 16 KiB elephants (50 %% load) on a
    4-engine 10 Gbps IP, 256 entries per queue, mice weight 256
    (byte-proportional: one elephant dequeue carries 256 mice worth of
    work, so a smaller weight starves the mice whenever the elephant
    queue is backlogged). *)

type outcome = {
  mice_mean : float;  (** seconds *)
  mice_p99 : float;
  elephant_mean : float;
  elephant_p99 : float;
  loss_rate : float;
}

val run_shared_fifo :
  ?seed:int -> ?duration:float -> config -> outcome
(** Both classes through one FIFO queue — the model's virtual shared
    queue made concrete. *)

val run_wrr :
  ?seed:int -> ?duration:float -> config -> outcome
(** Per-class queues under weighted round-robin. *)

val model_mean_latency : config -> float
(** What the LogNIC abstraction predicts for the {e class-blind} mean
    sojourn at this IP (M/M/1/N on the blended service time). Falls
    between the two classes' actual means; the study shows how far the
    per-class truth spreads around it. *)
