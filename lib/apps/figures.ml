module U = Lognic.Units
module D = Lognic_devices

type speed = Quick | Full

let duration = function Quick -> 0.01 | Full -> 0.02

(* High-pps PANIC mixes: tens of Mpps make even short horizons
   statistically dense. *)
let panic_duration = function Quick -> 0.003 | Full -> 0.008
let long_duration = function Quick -> 0.1 | Full -> 0.3

let header = Study.header

let fig5 ?(speed = Full) ppf =
  header ppf
    "Figure 5: accelerator throughput (MOPS) vs data access granularity (1KB traffic)"
    [ "accel"; "granularity(B)"; "model"; "measured"; "%of-peak" ];
  List.iter
    (fun spec ->
      let points =
        Inline_accel.fig5_granularity_sweep ~duration:(duration speed) ~spec ()
      in
      let peak =
        List.fold_left (fun acc (p : Inline_accel.point) -> Float.max acc p.model) 0. points
      in
      List.iter
        (fun (p : Inline_accel.point) ->
          Fmt.pf ppf "%-5s %8.0f  %6.3f  %6.3f  %5.1f%%@."
            spec.D.Accel_spec.name p.x (U.to_mops p.model) (U.to_mops p.measured)
            (100. *. p.model /. peak))
        points)
    [ D.Accel_spec.crc; D.Accel_spec.des3; D.Accel_spec.md5; D.Accel_spec.hfa ]

let fig6 ?(speed = Full) ppf =
  header ppf "Figure 6: NVMe-oF latency (us) vs throughput (GB/s)"
    [ "profile"; "offered(GB/s)"; "model(us)"; "measured(us)" ];
  List.iter
    (fun (name, io) ->
      let points =
        Nvme_of.fig6_profile_sweep ~duration:(long_duration speed) ~points:8
          ~io ()
      in
      List.iter
        (fun (p : Nvme_of.point) ->
          Fmt.pf ppf "%-9s %7.2f  %8.1f  %8.1f@." name (p.offered /. 1e9)
            (U.to_usec p.model_latency)
            (U.to_usec p.measured_latency))
        points;
      Fmt.pf ppf "%-9s mean latency error: %.2f%%@." name
        (100. *. Nvme_of.fig6_error_rate points))
    [
      ("4KB-RRD", D.Ssd.rrd_4k);
      ("128KB-RRD", D.Ssd.rrd_128k);
      ("4KB-SWR", D.Ssd.swr_4k);
    ]

let fig7 ?(speed = Full) ppf =
  header ppf "Figure 7: 4KB random mixed I/O bandwidth (MB/s) vs read ratio"
    [ "read%"; "measured(MB/s)"; "model(MB/s)"; "gap%" ];
  List.iter
    (fun (p : Nvme_of.mixed_point) ->
      Fmt.pf ppf "%5.0f  %8.0f  %8.0f  %5.1f%%@."
        (100. *. p.read_ratio)
        (U.to_mbytes_per_s p.measured_bandwidth)
        (U.to_mbytes_per_s p.model_bandwidth)
        (100. *. (p.measured_bandwidth -. p.model_bandwidth)
        /. p.measured_bandwidth))
    (Nvme_of.fig7_read_ratio_sweep ~duration:(long_duration speed) ())

let fig9 ?(speed = Full) ppf =
  header ppf "Figure 9: throughput (MOPS) vs IP1 parallelism (MTU line rate)"
    [ "accel"; "cores"; "model"; "measured" ];
  List.iter
    (fun spec ->
      List.iter
        (fun (p : Inline_accel.point) ->
          Fmt.pf ppf "%-7s %4.0f  %6.3f  %6.3f@." spec.D.Accel_spec.name p.x
            (U.to_mops p.model) (U.to_mops p.measured))
        (Inline_accel.fig9_parallelism_sweep ~duration:(duration speed) ~spec ());
      Fmt.pf ppf "%-7s cores to saturate: %d@." spec.D.Accel_spec.name
        (Inline_accel.required_cores ~spec))
    [ D.Accel_spec.md5; D.Accel_spec.kasumi; D.Accel_spec.hfa ]

let fig10 ?(speed = Full) ppf =
  header ppf "Figure 10: achieved bandwidth (Gbps) vs packet size (line rate)"
    [ "accel"; "size(B)"; "model(Gbps)"; "measured(Gbps)" ];
  List.iter
    (fun spec ->
      List.iter
        (fun (p : Inline_accel.point) ->
          Fmt.pf ppf "%-6s %5.0f  %6.2f  %6.2f@." spec.D.Accel_spec.name p.x
            (U.to_gbps p.model) (U.to_gbps p.measured))
        (Inline_accel.fig10_packet_size_sweep ~duration:(duration speed) ~spec ()))
    [
      D.Accel_spec.crc;
      D.Accel_spec.aes;
      D.Accel_spec.md5;
      D.Accel_spec.sha1;
      D.Accel_spec.sms4;
      D.Accel_spec.hfa;
    ]

let microservice_rows ppf value =
  List.iter
    (fun workload ->
      let outcomes = Microservices.compare_schemes workload in
      Fmt.pf ppf "%-8s" workload.Microservices.name;
      List.iter
        (fun (o : Microservices.outcome) ->
          Fmt.pf ppf "  %s=%s" (Microservices.scheme_name o.scheme) (value o))
        outcomes;
      Fmt.pf ppf "@.")
    Microservices.all

let fig11 ppf =
  header ppf "Figure 11: Microservice throughput (MRPS) per allocation scheme" [];
  microservice_rows ppf (fun o ->
      Printf.sprintf "%.3f" (o.Microservices.throughput /. 1e6))

let fig12 ppf =
  header ppf "Figure 12: Microservice average latency (us) per allocation scheme" [];
  microservice_rows ppf (fun o ->
      Printf.sprintf "%.1f" (U.to_usec o.Microservices.latency))

let nf_rows ppf value =
  let outcomes = Nf_chain.sweep () in
  List.iter
    (fun (o : Nf_chain.outcome) ->
      Fmt.pf ppf "%5.0fB  %-16s %s@." o.packet_size (Nf_chain.scheme_name o.scheme)
        (value o))
    outcomes

let fig13 ppf =
  header ppf "Figure 13: NF chain throughput (Gbps) vs packet size" [];
  nf_rows ppf (fun o -> Printf.sprintf "%6.2f" (U.to_gbps o.Nf_chain.throughput));
  List.iter
    (fun size ->
      Fmt.pf ppf "opt placement @%4.0fB: %s@." size
        (Nf_chain.describe_placement ~packet_size:size))
    [ 64.; 512.; U.mtu ]

let fig14 ppf =
  header ppf "Figure 14: NF chain average latency (us) vs packet size" [];
  nf_rows ppf (fun o -> Printf.sprintf "%6.1f" (U.to_usec o.Nf_chain.latency))

let fig15 ?(speed = Full) ppf =
  header ppf "Figure 15: PANIC bandwidth (Gbps) vs provisioned credits"
    [ "profile"; "credits"; "measured"; "model" ];
  List.iter
    (fun profile ->
      List.iter
        (fun (p : Panic_scenarios.credit_point) ->
          Fmt.pf ppf "%-9s %3d  %6.1f  %6.1f@." profile.Panic_scenarios.pname
            p.credits
            (U.to_gbps p.measured_bandwidth)
            (U.to_gbps p.model_bandwidth))
        (Panic_scenarios.fig15_credit_sweep ~duration:(panic_duration speed) ~profile ());
      Fmt.pf ppf "%-9s suggested credits: %d (latency drop vs 8: %.1f%%)@."
        profile.Panic_scenarios.pname
        (Panic_scenarios.suggest_credits ~profile ())
        (100. *. Panic_scenarios.latency_drop_vs_default ~profile ()))
    Panic_scenarios.profiles

let steering_rows ppf value =
  List.iter
    (fun (name, size) ->
      List.iter
        (fun (s : Panic_scenarios.steering_point) ->
          Fmt.pf ppf "%-10s %-7s (X=%4.1f)  %s@." name s.split_label s.x_percent
            (value s))
        (Panic_scenarios.fig16_17_steering ~packet_size:size ()))
    [ ("TP1(64B)", 64.); ("TP2(512B)", 512.); ("TP3(MTU)", U.mtu) ]

let fig16 ppf =
  header ppf "Figure 16: PANIC steering latency (us), static vs LogNIC split" [];
  steering_rows ppf (fun s ->
      Printf.sprintf "%6.2f" (U.to_usec s.Panic_scenarios.latency))

let fig17 ppf =
  header ppf "Figure 17: PANIC steering throughput (Gbps), static vs LogNIC split" [];
  steering_rows ppf (fun s ->
      Printf.sprintf "%6.1f" (U.to_gbps s.Panic_scenarios.throughput))

let parallelism_rows ppf value =
  List.iter
    (fun split ->
      let a, b = split in
      List.iter
        (fun (p : Panic_scenarios.parallelism_point) ->
          Fmt.pf ppf "split %2.0f/%2.0f  degree=%d  %s@." a b p.degree (value p))
        (Panic_scenarios.fig18_19_parallelism ~split ());
      Fmt.pf ppf "split %2.0f/%2.0f  suggested degree: %d@." a b
        (Panic_scenarios.suggest_parallelism ~split ()))
    [ (50., 50.); (80., 20.) ]

let fig18 ppf =
  header ppf "Figure 18: PANIC latency (us) vs IP4 parallel degree" [];
  parallelism_rows ppf (fun p ->
      Printf.sprintf "%6.2f" (U.to_usec p.Panic_scenarios.p_latency))

let fig19 ppf =
  header ppf "Figure 19: PANIC throughput (Gbps) vs IP4 parallel degree" [];
  parallelism_rows ppf (fun p ->
      Printf.sprintf "%6.1f" (U.to_gbps p.Panic_scenarios.p_throughput))

let table2 ppf =
  header ppf "Table 2: LogNIC model parameters" [];
  List.iter
    (fun entry -> Fmt.pf ppf "%a@." Lognic.Params.pp_entry entry)
    Lognic.Params.table2

(* --- extensions beyond the paper (see EXPERIMENTS.md, ablations) --- *)

let validation_chain () =
  let module G = Lognic.Graph in
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:(G.service ~throughput:(4. *. U.gbps) ~queue_capacity:32 ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~src:w ~dst:e g in
  g

let validation_hw =
  Lognic.Params.hardware ~bw_interface:(50. *. U.gbps) ~bw_memory:(60. *. U.gbps)

let ext_tail ?(speed = Full) ppf =
  header ppf
    "Extension: tail-latency estimation (model p50/p99 vs simulator, validation chain)"
    [ "load"; "model-p50"; "sim-p50"; "model-p99"; "sim-p99 (us)" ];
  let g = validation_chain () in
  let duration = match speed with Quick -> 0.1 | Full -> 0.5 in
  (* The four load points are independent simulations; compute them in
     parallel and print the rows afterwards in load order. *)
  List.iter
    (fun (load, q, (summary : Lognic_sim.Telemetry.summary)) ->
      Fmt.pf ppf "%4.2f  %8.2f  %8.2f  %8.2f  %8.2f@." load
        (U.to_usec q.Lognic.Tail.p50)
        (U.to_usec summary.Lognic_sim.Telemetry.p50_latency)
        (U.to_usec q.Lognic.Tail.p99)
        (U.to_usec summary.Lognic_sim.Telemetry.p99_latency))
    (Lognic_sim.Parallel.map
       (fun load ->
         let traffic =
           Lognic.Traffic.make ~rate:(load *. 4. *. U.gbps) ~packet_size:U.mtu
         in
         let q =
           Lognic.Tail.overall (Lognic.Tail.evaluate g ~hw:validation_hw ~traffic)
         in
         let m =
           Lognic_sim.Netsim.run_single
             ~config:
               Lognic_sim.Netsim.Config.(default |> with_horizon duration)
             g ~hw:validation_hw ~traffic
         in
         (load, q, m.summary))
       [ 0.3; 0.5; 0.7; 0.9 ])

let ext_hol ?(speed = Full) ppf =
  header ppf
    "Extension: head-of-line blocking (64B mice vs 16KiB elephants, one IP)"
    [ "organization"; "mice mean/p99"; "elephant mean/p99 (us)"; "loss" ];
  let duration = match speed with Quick -> 0.5 | Full -> 2. in
  let c = Hol_study.default in
  let row name (o : Hol_study.outcome) =
    Fmt.pf ppf "%-12s  %6.1f /%7.1f  %6.1f /%7.1f  %.4f@." name
      (U.to_usec o.mice_mean) (U.to_usec o.mice_p99)
      (U.to_usec o.elephant_mean)
      (U.to_usec o.elephant_p99)
      o.loss_rate
  in
  row "shared-fifo" (Hol_study.run_shared_fifo ~duration c);
  row "wrr" (Hol_study.run_wrr ~duration c);
  Fmt.pf ppf "virtual-shared-queue (model, class-blind) mean: %.1f us@."
    (U.to_usec (Hol_study.model_mean_latency c))

let ext_queue_models ppf =
  header ppf
    "Ablation: latency under the four queueing models (validation chain)"
    [ "load"; "no-queueing"; "mm1n (Eq 12)"; "mmcn"; "mm1 (us)" ];
  let g = validation_chain () in
  List.iter
    (fun load ->
      let traffic =
        Lognic.Traffic.make ~rate:(load *. 4. *. U.gbps) ~packet_size:U.mtu
      in
      let mean model =
        (Lognic.Latency.evaluate ~model g ~hw:validation_hw ~traffic)
          .Lognic.Latency.mean
      in
      let show v = if Float.is_finite v then Fmt.str "%8.2f" (U.to_usec v) else "     inf" in
      Fmt.pf ppf "%4.2f  %s  %s  %s  %s@." load
        (show (mean Lognic.Latency.No_queueing))
        (show (mean Lognic.Latency.Mm1n_model))
        (show (mean Lognic.Latency.Mmcn_model))
        (show (mean Lognic.Latency.Mm1_model)))
    [ 0.3; 0.7; 0.9; 1.05 ]

let ext_netcache ?(speed = Full) ppf =
  header ppf
    "Extension (§5.3): in-network KV cache on an RMT switch"
    [ "hit%"; "model MRPS"; "measured MRPS"; "latency@70% (us)" ];
  let duration = match speed with Quick -> 0.01 | Full -> 0.02 in
  List.iter
    (fun (p : Netcache.point) ->
      Fmt.pf ppf "%4.0f  %9.2f  %9.2f  %8.2f@." (100. *. p.hit_ratio)
        (p.model_rps /. 1e6) (p.measured_rps /. 1e6)
        (U.to_usec p.model_latency))
    (Netcache.hit_ratio_sweep ~duration Netcache.default)

let ext_hybrid ppf =
  header ppf
    "Extension (§4.4): E3 NIC/host hybrid migration"
    [ "workload"; "best split (NIC stages)"; "capacity gain over NIC-only" ];
  List.iter
    (fun w ->
      Fmt.pf ppf "%-8s  %d of %d stages on the NIC  %.2fx@."
        w.Microservices.name
        (Microservices.best_hybrid_split w)
        (List.length w.Microservices.stages)
        (Microservices.hybrid_gain w))
    Microservices.all;
  (* the M/G/1 view of why measured PANIC blocking exceeds Eq 12's:
     bimodal service times have scv > 1 *)
  let profile = List.hd Panic_scenarios.profiles in
  let rate = Lognic_devices.Panic.effective_unit_rate
      Lognic_devices.Panic.unit_a_params ~sizes:profile.Panic_scenarios.sizes in
  let services =
    (* weight each size class by its packet rate: equal byte shares mean
       the small class dominates the packet stream *)
    List.map
      (fun (size, w) -> (size /. rate, w /. size))
      profile.Panic_scenarios.sizes
  in
  Fmt.pf ppf "energy (E3's headline axis, requests per watt at saturation):@.";
  List.iter
    (fun w ->
      Fmt.pf ppf "  %-8s" w.Microservices.name;
      List.iter
        (fun (r : Microservices.energy_report) ->
          Fmt.pf ppf "  %s %.0f KRPS/W" r.placement (r.rps_per_watt /. 1e3))
        (Microservices.energy_comparison w);
      Fmt.pf ppf "@.")
    Microservices.all;
  let q = Lognic_queueing.Mg1.of_service_mix ~lambda:1. ~services in
  Fmt.pf ppf
    "M/G/1 note: PANIC profile1's bimodal per-packet service has scv %.2f, so an exponential-service model underestimates its queueing by %.2fx (one root of Fig 15's model-vs-sim goodput gap).@."
    q.Lognic_queueing.Mg1.scv
    (Lognic_queueing.Mg1.mm1_underestimate q)

let ext_observability ?(speed = Full) ppf =
  header ppf
    "Extension: per-entity observability (drop sites and Eq 2 latency terms, \
     validation chain)"
    [ "load"; "queueing"; "service"; "wire"; "overhead (us)"; "loss"; "top drop site" ];
  let module Tel = Lognic_sim.Telemetry in
  let g = validation_chain () in
  let duration = match speed with Quick -> 0.02 | Full -> 0.1 in
  List.iter
    (fun (load, (m : Lognic_sim.Netsim.measurement)) ->
      let s = m.summary in
      let t = s.Tel.latency_terms in
      let top =
        match m.drop_breakdown with
        | [] -> "-"
        | (site, n) :: _ -> Fmt.str "%s (%d)" (Tel.drop_site_name site) n
      in
      Fmt.pf ppf "%4.2f  %8.2f  %7.2f  %6.2f  %8.2f  %.3f  %s@." load
        (U.to_usec t.Tel.queueing) (U.to_usec t.Tel.service)
        (U.to_usec t.Tel.wire) (U.to_usec t.Tel.overhead)
        s.Tel.loss_rate top)
    (Lognic_sim.Parallel.map
       (fun load ->
         let traffic =
           Lognic.Traffic.make ~rate:(load *. 4. *. U.gbps) ~packet_size:U.mtu
         in
         let m =
           Lognic_sim.Netsim.run_single
             ~config:
               Lognic_sim.Netsim.Config.(default |> with_horizon duration)
             g ~hw:validation_hw ~traffic
         in
         (load, m))
       [ 0.5; 0.9; 1.5 ]);
  (* peak sampled queue depth at the bottleneck, from the ring traces *)
  let m =
    Lognic_sim.Netsim.run_single
      ~config:
        Lognic_sim.Netsim.Config.(
          default |> with_horizon duration |> with_sampling (duration /. 100.))
      g ~hw:validation_hw
      ~traffic:(Lognic.Traffic.make ~rate:(1.5 *. 4. *. U.gbps) ~packet_size:U.mtu)
  in
  List.iter
    (fun series ->
      if Tel.Series.label series = "ip.depth" then
        let peak =
          Array.fold_left
            (fun acc (_, v) -> Float.max acc v)
            0.
            (Tel.Series.to_array series)
        in
        Fmt.pf ppf "bottleneck peak sampled depth at 1.5x load: %.0f@." peak)
    m.series

let ext_offpath ppf =
  header ppf
    "Extension (§2.1): on-path vs off-path deployment"
    [ "compute%"; "on-cap"; "off-cap (Gbps)"; "on-lat"; "off-lat (us)" ];
  List.iter
    (fun (p : Offpath_study.point) ->
      Fmt.pf ppf "%5.0f  %7.1f  %7.1f  %7.2f  %7.2f@."
        (100. *. p.compute_fraction)
        (U.to_gbps p.on_path_capacity)
        (U.to_gbps p.off_path_capacity)
        (U.to_usec p.on_path_latency)
        (U.to_usec p.off_path_latency))
    (Offpath_study.sweep Offpath_study.default);
  (match Offpath_study.crossover Offpath_study.default with
  | Some f -> Fmt.pf ppf "bypass advantage ends at compute fraction %.2f@." f
  | None -> Fmt.pf ppf "no crossover within the sweep@.")

let registry ?speed () =
  [
    ("fig5", fun ppf -> fig5 ?speed ppf);
    ("fig6", fun ppf -> fig6 ?speed ppf);
    ("fig7", fun ppf -> fig7 ?speed ppf);
    ("fig9", fun ppf -> fig9 ?speed ppf);
    ("fig10", fun ppf -> fig10 ?speed ppf);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fun ppf -> fig15 ?speed ppf);
    ("fig16", fig16);
    ("fig17", fig17);
    ("fig18", fig18);
    ("fig19", fig19);
    ("table2", table2);
    ("ext-tail", fun ppf -> ext_tail ?speed ppf);
    ("ext-hol", fun ppf -> ext_hol ?speed ppf);
    ("ext-queue-models", ext_queue_models);
    ("ext-netcache", fun ppf -> ext_netcache ?speed ppf);
    ("ext-offpath", ext_offpath);
    ("ext-hybrid", ext_hybrid);
    ("ext-observability", fun ppf -> ext_observability ?speed ppf);
  ]

let names = List.map fst (registry ())

let render ?speed name ppf =
  match List.assoc_opt name (registry ?speed ()) with
  | Some f ->
    f ppf;
    Ok ()
  | None -> Error (Printf.sprintf "unknown figure %S (try: %s)" name (String.concat ", " names))

let all ?speed ?jobs ppf =
  (* Figures only share the output formatter, so render each one into
     its own buffer on the domain pool and emit the buffers in registry
     order. The printed bytes are identical to a sequential [all]. *)
  List.iter
    (fun contents -> Fmt.pf ppf "%s" contents)
    (Lognic_sim.Parallel.map ?jobs
       (fun (_, f) ->
         let buf = Buffer.create 4096 in
         let bppf = Format.formatter_of_buffer buf in
         f bppf;
         Format.pp_print_flush bppf ();
         Buffer.contents buf)
       (registry ?speed ()))
