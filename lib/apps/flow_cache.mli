(** The flow-cache offload scenario (ROADMAP item 3's "millions of
    users" datapath): an OVS-style EMC → megaflow → slow-path
    classification pipeline on the LiquidIO cores, built for the
    state-dependent split machinery ({!Lognic.Flowcache} on the model
    side, [Lognic_sim.Flow_cache] in the simulator).

    Graph shape (labels fixed so both sides find the cache vertices):

    {v rx ─→ emc ─hit──────────────────→ tx
              └miss→ megaflow ─hit─────→ tx
                       └miss→ slowpath ─→ tx v}

    At each cache vertex the {e hit} route is the first out-edge added
    and the miss route the second — the convention the per-packet
    lookup and the fixed-point solver both rely on. *)

type config = {
  packet_size : float;  (** bytes per packet *)
  emc_cores : int;  (** cnMIPS cores running exact-match lookups *)
  megaflow_cores : int;  (** cores running the tuple-space search *)
  slowpath_cores : int;  (** cores running full classification *)
  emc_cost_cycles : float;  (** cycles per EMC probe *)
  megaflow_cost_cycles : float;  (** cycles per megaflow search *)
  slowpath_cost_cycles : float;  (** cycles per slow-path upcall *)
  slowpath_overhead : float;
      (** seconds of computation-transfer overhead per slow-path packet
          (the host round trip, per the off-path characterization
          study) *)
}

val default : config
(** 512 B packets; 4/8/4 cores at 300/1500/20000 cycles; a 20 µs
    slow-path round trip. *)

val graph : ?emc_hit:float -> ?megaflow_hit:float -> config -> Lognic.Graph.t
(** Build the datapath with initial split fractions ([0.5] each by
    default — the fixed point rewrites them, and the simulator's
    per-packet routing ignores δ at cache vertices). [megaflow_hit] is
    conditional on an EMC miss. Raises [Invalid_argument] outside
    [0, 1]. *)

val hardware : Lognic.Params.hardware
(** {!Lognic_devices.Liquidio.hardware}. *)

val traffic : ?load:float -> config -> Lognic.Traffic.t
(** Offered load as a fraction of the 25 GbE line rate (default 0.5).
    Raises [Invalid_argument] on a non-positive load. *)
