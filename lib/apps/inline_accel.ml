module G = Lognic.Graph
module U = Lognic.Units
module D = Lognic_devices

type point = { x : float; model : float; measured : float }

let line_traffic ~packet_size =
  Lognic.Traffic.make ~rate:D.Liquidio.line_rate ~packet_size

(* Operations per second = delivered packet rate (one accelerator call
   per packet). *)
let ops_of_bytes ~packet_size bytes_per_s = bytes_per_s /. packet_size

let default_granularities =
  [ 512.; 1024.; 2048.; 4096.; 8192.; 16384. ]

let fig5_granularity_sweep ?(duration = 0.05) ?seed ?jobs ?granularities ~spec
    () =
  let granularities = Option.value granularities ~default:default_granularities in
  let packet_size = 1024. in
  let traffic = line_traffic ~packet_size in
  (* Each point runs an independent fixed-seed simulation; fan the
     sweep out over the domain pool (order and results unchanged). *)
  Lognic_sim.Parallel.map ?jobs
    (fun granularity ->
      let g =
        D.Liquidio.inline_accel_graph ~granularity ~spec ~packet_size ()
      in
      let report = Lognic.Estimate.run g ~hw:D.Liquidio.hardware ~traffic in
      let m =
        Lognic_sim.Netsim.run_single
          ~config:(Study.sim_config ?seed duration)
          g ~hw:D.Liquidio.hardware ~traffic
      in
      {
        x = granularity;
        model = ops_of_bytes ~packet_size report.throughput.Lognic.Throughput.attained;
        measured = ops_of_bytes ~packet_size m.summary.Lognic_sim.Telemetry.throughput;
      })
    granularities

let fig9_parallelism_sweep ?(duration = 0.05) ?seed ?jobs ?cores ~spec () =
  let cores = Option.value cores ~default:(List.init 16 (fun i -> i + 1)) in
  let packet_size = U.mtu in
  let traffic = line_traffic ~packet_size in
  Lognic_sim.Parallel.map ?jobs
    (fun n ->
      let g = D.Liquidio.inline_accel_graph ~cores:n ~spec ~packet_size () in
      let report = Lognic.Estimate.run g ~hw:D.Liquidio.hardware ~traffic in
      let m =
        Lognic_sim.Netsim.run_single
          ~config:(Study.sim_config ?seed duration)
          g ~hw:D.Liquidio.hardware ~traffic
      in
      {
        x = float_of_int n;
        model = ops_of_bytes ~packet_size report.throughput.Lognic.Throughput.attained;
        measured = ops_of_bytes ~packet_size m.summary.Lognic_sim.Telemetry.throughput;
      })
    cores

let required_cores ~spec =
  let packet_size = U.mtu in
  let traffic = line_traffic ~packet_size in
  let attained n =
    let g = D.Liquidio.inline_accel_graph ~cores:n ~spec ~packet_size () in
    (Lognic.Throughput.evaluate g ~hw:D.Liquidio.hardware ~traffic)
      .Lognic.Throughput.attained
  in
  let saturation = attained D.Liquidio.total_cores in
  let rec scan n =
    if n >= D.Liquidio.total_cores then n
    else if attained n >= 0.99 *. saturation then n
    else scan (n + 1)
  in
  scan 1

let default_sizes = [ 64.; 128.; 256.; 512.; 1024.; U.mtu ]

let fig10_packet_size_sweep ?(duration = 0.05) ?seed ?jobs ?sizes ~spec () =
  let sizes = Option.value sizes ~default:default_sizes in
  Lognic_sim.Parallel.map ?jobs
    (fun packet_size ->
      let traffic = line_traffic ~packet_size in
      let g = D.Liquidio.inline_accel_graph ~spec ~packet_size () in
      let report = Lognic.Estimate.run g ~hw:D.Liquidio.hardware ~traffic in
      let m =
        Lognic_sim.Netsim.run_single
          ~config:(Study.sim_config ?seed duration)
          g ~hw:D.Liquidio.hardware ~traffic
      in
      {
        x = packet_size;
        model = report.throughput.Lognic.Throughput.attained;
        measured = m.summary.Lognic_sim.Telemetry.throughput;
      })
    sizes

let bottleneck_at ~spec ~packet_size ~cores =
  let g = D.Liquidio.inline_accel_graph ~cores ~spec ~packet_size () in
  let traffic = line_traffic ~packet_size in
  let result = Lognic.Throughput.evaluate g ~hw:D.Liquidio.hardware ~traffic in
  Fmt.str "%a" (Lognic.Throughput.pp_bound g) result.Lognic.Throughput.bottleneck
