module S = Lognic_sim
module N = Lognic_numerics
module U = Lognic.Units

type config = {
  rate : float;
  mice_size : float;
  elephant_size : float;
  mice_load : float;
  elephant_load : float;
  entries : int;
  mice_weight : int;
  engines : int;
}

let default =
  {
    rate = 10. *. U.gbps;
    mice_size = 64.;
    elephant_size = 16. *. U.kib;
    mice_load = 2.5 *. U.gbps;
    elephant_load = 5. *. U.gbps;
    entries = 256;
    mice_weight = 256;
    engines = 4;
  }

type outcome = {
  mice_mean : float;
  mice_p99 : float;
  elephant_mean : float;
  elephant_p99 : float;
  loss_rate : float;
}

type organization = Shared_fifo | Wrr

let run organization ?(seed = 17) ?(duration = 2.) config =
  let engine = S.Engine.create () in
  let rng = N.Rng.create ~seed in
  let node =
    match organization with
    | Shared_fifo ->
      S.Ip_node.create engine ~rng:(N.Rng.split rng) ~label:"ip"
        ~engines:config.engines
        ~rate_per_engine:(config.rate /. float_of_int config.engines)
        ~queue_capacity:(2 * config.entries)
        ~service_dist:S.Ip_node.Exponential
    | Wrr ->
      S.Ip_node.create_multiqueue engine ~rng:(N.Rng.split rng) ~label:"ip"
        ~engines:config.engines
        ~rate_per_engine:(config.rate /. float_of_int config.engines)
        ~entries_per_queue:config.entries
        ~weights:[| config.mice_weight; 1 |]
        ~service_dist:S.Ip_node.Exponential
  in
  let mice = N.Stats.Online.create () and elephants = N.Stats.Online.create () in
  let mice_samples = ref [] and elephant_samples = ref [] in
  let offered = ref 0 and dropped = ref 0 in
  let arrival_rng = N.Rng.split rng in
  let warmup = duration /. 10. in
  let submit ~klass ~size =
    incr offered;
    let born = S.Engine.now engine in
    let queue = match organization with Shared_fifo -> 0 | Wrr -> klass in
    let accepted =
      S.Ip_node.submit ~queue node ~work:size (fun () ->
          if born >= warmup then begin
            let sojourn = S.Engine.now engine -. born in
            let online, samples =
              if klass = 0 then (mice, mice_samples) else (elephants, elephant_samples)
            in
            N.Stats.Online.add online sojourn;
            samples := sojourn :: !samples
          end)
    in
    if not accepted then incr dropped
  in
  let schedule_stream ~klass ~size ~pps =
    let rec arrive () =
      submit ~klass ~size;
      let gap = N.Dist.sample (N.Dist.exponential ~rate:pps) arrival_rng in
      let next = S.Engine.now engine +. gap in
      if next < duration then S.Engine.schedule engine ~at:next arrive
    in
    S.Engine.schedule engine
      ~at:(N.Dist.sample (N.Dist.exponential ~rate:pps) arrival_rng)
      arrive
  in
  schedule_stream ~klass:0 ~size:config.mice_size
    ~pps:(config.mice_load /. config.mice_size);
  schedule_stream ~klass:1 ~size:config.elephant_size
    ~pps:(config.elephant_load /. config.elephant_size);
  S.Engine.run ~until:duration engine;
  let p99 samples =
    match !samples with
    | [] -> 0.
    | xs -> N.Stats.percentile (Array.of_list xs) 99.
  in
  {
    mice_mean = N.Stats.Online.mean mice;
    mice_p99 = p99 mice_samples;
    elephant_mean = N.Stats.Online.mean elephants;
    elephant_p99 = p99 elephant_samples;
    loss_rate =
      (if !offered = 0 then 0. else float_of_int !dropped /. float_of_int !offered);
  }

let run_shared_fifo ?seed ?duration config = run Shared_fifo ?seed ?duration config
let run_wrr ?seed ?duration config = run Wrr ?seed ?duration config

let model_mean_latency config =
  (* The virtual-shared-queue view: one M/M/1/N whose mean service time
     blends the classes by packet share. *)
  let mice_pps = config.mice_load /. config.mice_size in
  let elephant_pps = config.elephant_load /. config.elephant_size in
  let lambda = mice_pps +. elephant_pps in
  let mean_service =
    ((mice_pps *. config.mice_size) +. (elephant_pps *. config.elephant_size))
    /. lambda /. config.rate
  in
  let queue =
    Lognic_queueing.Mm1n.create ~lambda ~mu:(1. /. mean_service)
      ~capacity:(2 * config.entries)
  in
  Lognic_queueing.Mm1n.mean_time_in_system queue
