module G = Lognic.Graph
module U = Lognic.Units

type config = {
  line : float;
  soc_rate : float;
  soc_cores : int;
  switch_rate : float;
  soc_transit : float;
  packet_size : float;
}

let default =
  {
    line = 100. *. U.gbps;
    soc_rate = 40. *. U.gbps;
    soc_cores = 8;
    switch_rate = 200. *. U.gbps;
    soc_transit = 2e-6;
    packet_size = U.mtu;
  }

let hw = Lognic.Params.hardware ~bw_interface:(200. *. U.gbps) ~bw_memory:(150. *. U.gbps)

let check_fraction f =
  if f < 0.01 || f > 1. then
    invalid_arg "Offpath_study: compute_fraction outside [0.01, 1]"

(* On the fast path the SoC cores only shuffle descriptors: ~10x
   cheaper than the full computation. *)
let fast_path_rate config = 10. *. config.soc_rate

let port config = G.service ~throughput:config.line ~queue_capacity:256 ()

let soc_service config ~rate ~share =
  G.service ~throughput:rate ~parallelism:config.soc_cores
    ~partition:(Float.max 0.001 (Float.min 0.999 share))
    ~overhead:config.soc_transit ~queue_capacity:128 ()

let on_path_graph ~compute_fraction config =
  check_fraction compute_fraction;
  let f = compute_fraction in
  (* the physical SoC splits between heavy compute and fast forwarding,
     partitioned by their work shares *)
  let heavy_work = f /. config.soc_rate in
  let fast_work = (1. -. f) /. fast_path_rate config in
  let heavy_share = heavy_work /. (heavy_work +. fast_work) in
  let g = G.empty in
  let g, rx = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:(port config) g in
  let g, heavy =
    G.add_vertex ~kind:G.Ip ~label:"soc.compute"
      ~service:(soc_service config ~rate:config.soc_rate ~share:heavy_share)
      g
  in
  let g, fast =
    G.add_vertex ~kind:G.Ip ~label:"soc.forward"
      ~service:
        (soc_service config ~rate:(fast_path_rate config) ~share:(1. -. heavy_share))
      g
  in
  let g, tx = G.add_vertex ~kind:G.Egress ~label:"host" ~service:(port config) g in
  let g = G.add_edge ~delta:f ~alpha:f ~src:rx ~dst:heavy g in
  let g = G.add_edge ~delta:(1. -. f) ~alpha:(1. -. f) ~src:rx ~dst:fast g in
  let g = G.add_edge ~delta:f ~alpha:f ~src:heavy ~dst:tx g in
  let g = G.add_edge ~delta:(1. -. f) ~alpha:(1. -. f) ~src:fast ~dst:tx g in
  g

let off_path_graph ~compute_fraction config =
  check_fraction compute_fraction;
  let f = compute_fraction in
  let g = G.empty in
  let g, rx = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:(port config) g in
  let g, switch =
    G.add_vertex ~kind:G.Ip ~label:"nic.switch"
      ~service:(G.service ~throughput:config.switch_rate ~queue_capacity:256 ())
      g
  in
  let g, soc =
    G.add_vertex ~kind:G.Ip ~label:"soc.compute"
      ~service:(soc_service config ~rate:config.soc_rate ~share:0.999)
      g
  in
  let g, tx = G.add_vertex ~kind:G.Egress ~label:"host" ~service:(port config) g in
  let g = G.add_edge ~delta:1. ~src:rx ~dst:switch g in
  (* bypass: straight to the host; compute share detours through the SoC *)
  let g = G.add_edge ~delta:(1. -. f) ~src:switch ~dst:tx g in
  let g = G.add_edge ~delta:f ~alpha:f ~src:switch ~dst:soc g in
  let g = G.add_edge ~delta:f ~alpha:f ~src:soc ~dst:tx g in
  g

type point = {
  compute_fraction : float;
  on_path_capacity : float;
  off_path_capacity : float;
  on_path_latency : float;
  off_path_latency : float;
}

let sweep ?fractions config =
  let fractions =
    Option.value fractions ~default:[ 0.05; 0.1; 0.2; 0.4; 0.6; 0.8; 1.0 ]
  in
  List.map
    (fun f ->
      let on = on_path_graph ~compute_fraction:f config in
      let off = off_path_graph ~compute_fraction:f config in
      let cap g = Lognic.Throughput.capacity g ~hw in
      let on_cap = cap on and off_cap = cap off in
      let probe = 0.6 *. Float.min config.line (Float.max on_cap off_cap) in
      let latency g =
        (Lognic.Latency.evaluate ~model:Lognic.Latency.Mmcn_model g ~hw
           ~traffic:(Lognic.Traffic.make ~rate:probe ~packet_size:config.packet_size))
          .Lognic.Latency.mean
      in
      {
        compute_fraction = f;
        on_path_capacity = on_cap;
        off_path_capacity = off_cap;
        on_path_latency = latency on;
        off_path_latency = latency off;
      })
    fractions

let crossover ?(tolerance = 0.05) config =
  (* the smallest compute fraction from which the bypass advantage stays
     below [tolerance] for every larger fraction (at tiny fractions both
     deployments sit at line rate, so scanning from the top avoids
     declaring a spurious early crossover) *)
  let points = List.rev (sweep config) in
  let rec scan best = function
    | [] -> best
    | p :: rest ->
      if p.on_path_capacity >= (1. -. tolerance) *. p.off_path_capacity then
        scan (Some p.compute_fraction) rest
      else best
  in
  scan None points
