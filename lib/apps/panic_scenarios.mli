(** Case study #5 — guiding SmartNIC hardware design on PANIC (§4.6;
    Figs 15–19).

    Three design-space explorations on the PANIC prototype:
    credit (queue) sizing for a compute unit, accelerator-aware traffic
    steering at the central scheduler, and per-unit hardware
    parallelism. *)

(** {1 Scenario 1 — sizing the request queue (Fig 15)} *)

type traffic_profile = { pname : string; sizes : (float * float) list }
(** A bandwidth-equal mix of flow sizes (§4.6: "splits bandwidth across
    different-sized flows equally"). *)

val profiles : traffic_profile list
(** The four §4.6 mixes: 64/512, 64/512/1024, 64/256/512/1500,
    64/128/256/1024/1500. *)

type credit_point = {
  credits : int;
  measured_bandwidth : float;  (** simulator goodput, bytes/s *)
  model_bandwidth : float;  (** model carried rate, bytes/s *)
  model_latency : float;
}

val fig15_credit_sweep :
  ?duration:float ->
  ?seed:int ->
  ?jobs:int ->
  ?offered:float ->
  profile:traffic_profile ->
  unit ->
  credit_point list
(** Goodput as the per-unit credit count sweeps 1..8, offered
    90 Gbps by default ({!Study} entry-point conventions; the point
    with [credits] simulates with seed [seed + credits]). *)

val suggest_credits : ?offered:float -> profile:traffic_profile -> unit -> int
(** The LogNIC suggestion: the fewest credits whose model goodput is
    within 1%% of the 8-credit goodput (5/4/4/4 in the paper). *)

val latency_drop_vs_default :
  ?offered:float -> profile:traffic_profile -> unit -> float
(** Relative model-latency reduction of the suggested credits against
    the 8-credit default (the "21.8%% latency drop" §4.6 reports for
    profile 1). *)

(** {1 Scenario 2 — steering traffic at the scheduler (Figs 16, 17)} *)

type steering_point = {
  split_label : string;
  x_percent : float;  (** share routed to A2, out of the 80% split pool *)
  latency : float;
  throughput : float;
}

val static_splits : float list
(** The four §4.6 hand-tuned X values: 10, 30, 50, 70. *)

val optimal_split : packet_size:float -> offered:float -> float
(** LogNIC-suggested X (golden-section search on the model's mean
    latency over X ∈ (0, 80)). *)

val fig16_17_steering :
  ?offered:float -> packet_size:float -> unit -> steering_point list
(** Latency and throughput of the four static splits plus the LogNIC
    one, at the given packet size (64 B / 512 B / MTU in the paper). *)

(** {1 Scenario 3 — configuring hardware parallelism (Figs 18, 19)} *)

type parallelism_point = {
  degree : int;
  p_latency : float;
  p_throughput : float;
}

val fig18_19_parallelism :
  ?offered:float ->
  ?jobs:int ->
  split:float * float ->
  unit ->
  parallelism_point list
(** Latency/throughput as IP4's parallel degree sweeps 1..8, for an
    IP1→IP3 / IP1→IP4 split of 50/50 or 80/20. *)

val suggest_parallelism : ?offered:float -> split:float * float -> unit -> int
(** The optimizer's degree: fewest engines within 1%% of the best
    throughput and 5%% of the best latency (6 and 4 in the paper). *)
