(** Case study #1 — inline (bump-in-the-wire) acceleration on the
    LiquidIO-II CN2360 (§4.2; Figs 5, 9, 10).

    A UDP-echo server extended with an accelerator call per packet:
    NIC cores (IP1) pull packets, run L3/L4 processing and trigger the
    engine (IP2); completion-side cores (IP3) fabricate the response.
    "Measured" numbers come from the packet-level simulator; "model"
    numbers from the analytical estimate on the same graph.

    All sweeps follow the {!Study} entry-point conventions:
    [?duration] / [?seed] / [?jobs]. *)

type point = {
  x : float;  (** the swept quantity (granularity, cores, or bytes) *)
  model : float;  (** analytic estimate *)
  measured : float;  (** simulator measurement *)
}

val fig5_granularity_sweep :
  ?duration:float ->
  ?seed:int ->
  ?jobs:int ->
  ?granularities:float list ->
  spec:Lognic_devices.Accel_spec.t ->
  unit ->
  point list
(** Accelerator operation rate (ops/s) with 1 KB traffic at line rate as
    the per-call data-access granularity grows from 512 B to 16 KB
    (default sweep). The drop past a few KB is the medium-bandwidth
    ceiling (CMI or I/O interconnect). *)

val fig9_parallelism_sweep :
  ?duration:float ->
  ?seed:int ->
  ?jobs:int ->
  ?cores:int list ->
  spec:Lognic_devices.Accel_spec.t ->
  unit ->
  point list
(** Achieved operation rate under MTU line rate as the NIC-core count
    allocated to IP1/IP3 grows (default 1..16). *)

val required_cores : spec:Lognic_devices.Accel_spec.t -> int
(** The model-predicted knee of Fig 9: the fewest cores that reach 99%
    of the engine's saturation rate (9/8/11 for MD5/KASUMI/HFA). *)

val fig10_packet_size_sweep :
  ?duration:float ->
  ?seed:int ->
  ?jobs:int ->
  ?sizes:float list ->
  spec:Lognic_devices.Accel_spec.t ->
  unit ->
  point list
(** Achieved bandwidth (bytes/s) under line-rate offered load as packet
    size grows from 64 B to MTU, with all 16 cores: the
    min(P_IP2 · pktsize, line rate) law of §4.2. *)

val bottleneck_at :
  spec:Lognic_devices.Accel_spec.t ->
  packet_size:float ->
  cores:int ->
  string
(** Human-readable binding constraint for a configuration (used by the
    examples to echo §4.2's bottleneck attribution). *)
