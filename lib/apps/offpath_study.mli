(** On-path vs off-path SmartNIC deployment (§2.1).

    On-path SmartNICs (LiquidIO, Agilio, Pensando, Fungible) put the
    execution engines on the communication path: every packet pays the
    SoC transit. Off-path SmartNICs (BlueField, Stingray) expose a NIC
    switch with a {e bypass path}: flows matching forwarding rules go
    straight from the traffic manager to the host, only the rest enter
    the SoC. This study models both deployments of the same workload —
    a fraction [f] of traffic needs SoC computation, the rest is pure
    forwarding — and sweeps [f] to find the crossover the §2.1
    taxonomy implies: off-path wins when most traffic can bypass;
    on-path's single data path is simpler and no worse once everything
    needs computing anyway. *)

type config = {
  line : float;  (** port rate, bytes/s *)
  soc_rate : float;  (** SoC processing capacity, bytes/s *)
  soc_cores : int;
  switch_rate : float;  (** NIC-switch / traffic-manager rate, bytes/s *)
  soc_transit : float;  (** per-packet SoC handling overhead O, seconds *)
  packet_size : float;
}

val default : config
(** A 100 GbE card with a 40 Gbps 8-core SoC and a 200 Gbps NIC
    switch. *)

val on_path_graph : compute_fraction:float -> config -> Lognic.Graph.t
(** Everything transits the SoC; only [compute_fraction] of it incurs
    the heavy processing (the rest is fast-path forwarding on the SoC
    cores). *)

val off_path_graph : compute_fraction:float -> config -> Lognic.Graph.t
(** The NIC switch forwards [1 - compute_fraction] directly (bypass);
    only the compute share enters the SoC. *)

type point = {
  compute_fraction : float;
  on_path_capacity : float;  (** bytes/s *)
  off_path_capacity : float;
  on_path_latency : float;  (** mean at 60% of the better capacity *)
  off_path_latency : float;
}

val sweep : ?fractions:float list -> config -> point list

val crossover : ?tolerance:float -> config -> float option
(** The smallest swept compute fraction from which on-path's capacity
    stays within [tolerance] (default 5%%) of off-path's for all larger
    fractions — where the bypass advantage has evaporated for good.
    [None] if off-path keeps a material advantage through f = 1. *)
