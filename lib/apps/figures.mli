(** Regeneration of every evaluation figure in the paper (§4).

    Each [figN] function prints the figure's rows/series to the given
    formatter — same quantities and units as the paper plots — using
    the analytical model for "LogNIC" series and the packet-level
    simulator for "Measured" series. [all] runs the complete set.

    [quick] trades simulation time for speed (shorter sim horizons);
    the default durations target stable steady-state measurements. *)

type speed = Quick | Full

val fig5 : ?speed:speed -> Format.formatter -> unit
(** Accelerator throughput vs data-access granularity. *)

val fig6 : ?speed:speed -> Format.formatter -> unit
(** NVMe-oF latency vs throughput for the three I/O profiles. *)

val fig7 : ?speed:speed -> Format.formatter -> unit
(** Mixed 4 KB random I/O bandwidth vs read ratio. *)

val fig9 : ?speed:speed -> Format.formatter -> unit
(** Throughput vs IP1 parallelism under line rate. *)

val fig10 : ?speed:speed -> Format.formatter -> unit
(** Achieved bandwidth vs packet size under line rate. *)

val fig11 : Format.formatter -> unit
(** Microservice throughput across allocation schemes. *)

val fig12 : Format.formatter -> unit
(** Microservice average latency across allocation schemes. *)

val fig13 : Format.formatter -> unit
(** NF-chain throughput vs packet size across placements. *)

val fig14 : Format.formatter -> unit
(** NF-chain latency vs packet size across placements. *)

val fig15 : ?speed:speed -> Format.formatter -> unit
(** PANIC bandwidth vs credits for the four traffic profiles. *)

val fig16 : Format.formatter -> unit
(** PANIC steering latency: static splits vs the LogNIC split. *)

val fig17 : Format.formatter -> unit
(** PANIC steering throughput. *)

val fig18 : Format.formatter -> unit
(** PANIC latency vs IP4 parallel degree. *)

val fig19 : Format.formatter -> unit
(** PANIC throughput vs IP4 parallel degree. *)

val table2 : Format.formatter -> unit
(** The model-parameter glossary. *)

val ext_tail : ?speed:speed -> Format.formatter -> unit
(** Extension: model tail-latency percentiles validated against the
    simulator (see {!Lognic.Tail}). *)

val ext_hol : ?speed:speed -> Format.formatter -> unit
(** Extension: the head-of-line blocking study
    (see {!Hol_study}). *)

val ext_queue_models : Format.formatter -> unit
(** Ablation: mean latency under the four queueing models. *)

val ext_hybrid : Format.formatter -> unit
(** Extension: E3's NIC/host hybrid migration (§4.4) — best crossing
    point and capacity gain per workload, plus the M/G/1 view of the
    Fig 15 model-vs-sim gap. *)

val ext_offpath : Format.formatter -> unit
(** Extension: the §2.1 on-path/off-path deployment comparison
    (see {!Offpath_study}). *)

val ext_netcache : ?speed:speed -> Format.formatter -> unit
(** Extension: the §5.3 programmable-switch generalization — an
    in-network KV cache hit-ratio sweep (see {!Netcache}). *)

val ext_observability : ?speed:speed -> Format.formatter -> unit
(** Extension: the simulator's observability layer on the validation
    chain — Eq 2 latency decomposition (queueing / service / wire /
    overhead), loss and top drop site per load, and the bottleneck's
    peak sampled queue depth from the {!Lognic_sim.Telemetry.Series}
    traces. *)

val names : string list
(** All renderable ids: "fig5".."fig19", "table2", and the extension
    sections "ext-tail", "ext-hol", "ext-queue-models",
    "ext-netcache", "ext-offpath", "ext-hybrid". *)

val render : ?speed:speed -> string -> Format.formatter -> (unit, string) result
(** Render one figure by id. *)

val all : ?speed:speed -> ?jobs:int -> Format.formatter -> unit
(** Render every figure. [jobs] (default
    {!Lognic_numerics.Parallel.default_jobs}) renders figures
    concurrently into per-figure buffers; the emitted text is
    byte-identical to a sequential run. *)
