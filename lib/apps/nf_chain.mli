(** Case study #4 — computation placement on the BlueField-2 (§4.5;
    Figs 13, 14).

    The five-NF middlebox chain (FW→LB→DPI→NAT→PE) can place each NF
    (except DPI) on the ARM cluster or on its matching hardware
    accelerator. The LogNIC optimizer enumerates the 16 placements per
    packet size and keeps the best-throughput one that does not
    oversubscribe the hardware, which flips decisions with packet size:
    off-chip crossings dominate small packets, ARM per-byte cost
    dominates large ones. *)

type scheme = Arm_only | Accel_only | Lognic_opt

val scheme_name : scheme -> string

val placement_for :
  scheme -> packet_size:float -> Lognic_devices.Bluefield2.nf -> Lognic_devices.Bluefield2.placement
(** The placement function each scheme uses at this packet size.
    [Lognic_opt] searches all placements through the model. *)

val describe_placement : packet_size:float -> string
(** Human-readable LogNIC-opt placement at a packet size, e.g.
    ["FW:accel LB:accel DPI:arm NAT:arm PE:accel"]. *)

type outcome = {
  scheme : scheme;
  packet_size : float;
  throughput : float;  (** carried bytes/s under saturating load *)
  latency : float;  (** mean latency at the 80%-load point, seconds *)
}

val evaluate : ?load:float -> packet_size:float -> scheme -> outcome

val sweep : ?load:float -> ?sizes:float list -> unit -> outcome list
(** Figs 13/14: all three schemes across 64 B..MTU (grouped by size,
    scheme order ARM, Accel, LogNIC-opt). *)
