module P = Lognic_devices.Panic
module U = Lognic.Units
module T = Lognic.Traffic

type traffic_profile = { pname : string; sizes : (float * float) list }

let equal_mix sizes = List.map (fun s -> (s, 1.)) sizes

let profiles =
  [
    { pname = "profile1"; sizes = equal_mix [ 64.; 512. ] };
    { pname = "profile2"; sizes = equal_mix [ 64.; 512.; 1024. ] };
    { pname = "profile3"; sizes = equal_mix [ 64.; 256.; 512.; 1500. ] };
    { pname = "profile4"; sizes = equal_mix [ 64.; 128.; 256.; 1024.; 1500. ] };
  ]

type credit_point = {
  credits : int;
  measured_bandwidth : float;
  model_bandwidth : float;
  model_latency : float;
}

let default_offered = 85. *. U.gbps

(* Model goodput and latency for one credit setting. The mixed profile
   is folded into the units' effective rates (harmonic-mean packet
   size; see Panic.effective_unit_rate), so a single-class evaluation
   at the mix's mean size reproduces the per-unit utilization exactly —
   the μ-accommodation Extension #2 prescribes for mixed traffic. *)
let model_point ~offered ~profile ~credits =
  let mix = T.mix_of_sizes ~rate:offered ~sizes:profile.sizes in
  let g = P.pipelined_graph ~credits ~sizes:profile.sizes () in
  let traffic =
    T.make ~rate:offered ~packet_size:(T.mean_packet_size_by_packets mix)
  in
  let report = Lognic.Latency.evaluate g ~hw:P.hardware ~traffic in
  (report.Lognic.Latency.carried_rate, report.Lognic.Latency.mean)

let fig15_credit_sweep ?(duration = 0.03) ?(seed = 11) ?jobs
    ?(offered = default_offered) ~profile () =
  (* One independent fixed-seed simulation per credit setting; fan the
     sweep over the domain pool (order and results unchanged). *)
  Lognic_sim.Parallel.map ?jobs
    (fun i ->
      let credits = i + 1 in
      let mix = T.mix_of_sizes ~rate:offered ~sizes:profile.sizes in
      let g = P.pipelined_graph ~credits ~sizes:profile.sizes () in
      let m =
        Lognic_sim.Netsim.run
          ~config:(Study.sim_config ~seed:(seed + credits) duration)
          g ~hw:P.hardware ~mix
      in
      let model_bandwidth, model_latency = model_point ~offered ~profile ~credits in
      {
        credits;
        measured_bandwidth = m.summary.Lognic_sim.Telemetry.throughput;
        model_bandwidth;
        model_latency;
      })
    (List.init 8 Fun.id)

let suggest_credits ?(offered = default_offered) ~profile () =
  (* Fewest credits whose goodput stays within 7% of the 8-credit
     default's. The unit operates near saturation in this scenario, so
     M/M/1/N blocking decays slowly in N and a plateau slack tighter
     than a few percent would never admit a smaller queue. *)
  let goodput credits = fst (model_point ~offered ~profile ~credits) in
  let reference = goodput 8 in
  let rec scan credits =
    if credits >= 8 then 8
    else if goodput credits >= 0.93 *. reference then credits
    else scan (credits + 1)
  in
  scan 1

let latency_drop_vs_default ?(offered = default_offered) ~profile () =
  let suggested = suggest_credits ~offered ~profile () in
  let _, lat_suggested = model_point ~offered ~profile ~credits:suggested in
  let _, lat_default = model_point ~offered ~profile ~credits:8 in
  if lat_default <= 0. then 0. else 1. -. (lat_suggested /. lat_default)

type steering_point = {
  split_label : string;
  x_percent : float;
  latency : float;
  throughput : float;
}

let static_splits = [ 10.; 30.; 50.; 70. ]
let steering_offered = 80. *. U.gbps

let steering_eval ~offered ~packet_size x =
  let g =
    P.parallelized_graph ~split:(20., x, 80. -. x) ~packet_size ()
  in
  let traffic = T.make ~rate:offered ~packet_size in
  let report = Lognic.Estimate.run g ~hw:P.hardware ~traffic in
  ( report.latency.Lognic.Latency.mean,
    Float.min report.latency.Lognic.Latency.carried_rate
      report.throughput.Lognic.Throughput.attained )

let optimal_split ~packet_size ~offered =
  let objective x = fst (steering_eval ~offered ~packet_size x) in
  let x, _ =
    Lognic_numerics.Golden.minimize ~tol:0.05 ~f:objective ~lo:1. ~hi:79. ()
  in
  x

let fig16_17_steering ?(offered = steering_offered) ~packet_size () =
  let static =
    List.map
      (fun x ->
        let latency, throughput = steering_eval ~offered ~packet_size x in
        {
          split_label = Printf.sprintf "%.0f/%.0f" x (80. -. x);
          x_percent = x;
          latency;
          throughput;
        })
      static_splits
  in
  let x = optimal_split ~packet_size ~offered in
  let latency, throughput = steering_eval ~offered ~packet_size x in
  static
  @ [ { split_label = "LogNIC"; x_percent = x; latency; throughput } ]

type parallelism_point = { degree : int; p_latency : float; p_throughput : float }

let parallelism_offered = 95. *. U.gbps
let mtu_traffic offered = T.make ~rate:offered ~packet_size:U.mtu

let fig18_19_parallelism ?(offered = parallelism_offered) ?jobs ~split () =
  Lognic_sim.Parallel.map ?jobs
    (fun i ->
      let degree = i + 1 in
      let g = P.hybrid_graph ~ip4_parallelism:degree ~ip1_split:split ~packet_size:U.mtu () in
      let report =
        Lognic.Estimate.run g ~hw:P.hardware ~traffic:(mtu_traffic offered)
      in
      {
        degree;
        p_latency = report.latency.Lognic.Latency.mean;
        p_throughput =
          Float.min
            report.latency.Lognic.Latency.carried_rate
            report.throughput.Lognic.Throughput.attained;
      })
    (List.init 8 Fun.id)

let suggest_parallelism ?(offered = parallelism_offered) ~split () =
  let points = fig18_19_parallelism ~offered ~split () in
  let best_tp =
    List.fold_left (fun acc p -> Float.max acc p.p_throughput) 0. points
  in
  let best_lat =
    List.fold_left (fun acc p -> Float.min acc p.p_latency) infinity points
  in
  ignore best_lat;
  (* The goal is performance maximization (§4.6): the fewest engines
     within 1% of the achievable throughput. *)
  let ok p = p.p_throughput >= 0.99 *. best_tp in
  match List.find_opt ok points with
  | Some p -> p.degree
  | None -> 8
