module B = Lognic_devices.Bluefield2
module U = Lognic.Units

type scheme = Arm_only | Accel_only | Lognic_opt

let scheme_name = function
  | Arm_only -> "ARM-only"
  | Accel_only -> "Accelerator-only"
  | Lognic_opt -> "LogNIC-opt"

let capacity placement_of ~packet_size =
  let g = B.chain_graph ~placement_of ~packet_size () in
  Lognic.Throughput.capacity g ~hw:B.hardware

let opt_placement ~packet_size =
  let best = ref None in
  List.iter
    (fun placement_of ->
      let cap = capacity placement_of ~packet_size in
      match !best with
      | Some (_, best_cap) when best_cap >= cap -> ()
      | _ -> best := Some (placement_of, cap))
    (B.placements ());
  match !best with Some (p, _) -> p | None -> assert false

let placement_for scheme ~packet_size =
  match scheme with
  | Arm_only -> fun _ -> B.On_arm
  | Accel_only ->
    fun nf -> if B.has_accelerator nf then B.On_accel else B.On_arm
  | Lognic_opt -> opt_placement ~packet_size

let describe_placement ~packet_size =
  let placement = opt_placement ~packet_size in
  String.concat " "
    (List.map
       (fun nf ->
         Printf.sprintf "%s:%s" (B.nf_name nf)
           (match placement nf with B.On_arm -> "arm" | B.On_accel -> "accel"))
       B.chain)

type outcome = {
  scheme : scheme;
  packet_size : float;
  throughput : float;
  latency : float;
}

let evaluate ?(load = 0.9) ~packet_size scheme =
  let schemes = [ Arm_only; Accel_only; Lognic_opt ] in
  let graphs =
    List.map
      (fun s -> B.chain_graph ~placement_of:(placement_for s ~packet_size) ~packet_size ())
      schemes
  in
  let capacities =
    List.map (fun g -> Lognic.Throughput.capacity g ~hw:B.hardware) graphs
  in
  let best = List.fold_left Float.max 0. capacities in
  let weakest = List.fold_left Float.min infinity capacities in
  let g =
    B.chain_graph ~placement_of:(placement_for scheme ~packet_size) ~packet_size ()
  in
  let saturating = Float.min (1.05 *. best) B.line_rate in
  let saturated =
    Lognic.Throughput.evaluate g ~hw:B.hardware
      ~traffic:(Lognic.Traffic.make ~rate:saturating ~packet_size)
  in
  let latency_rate = Float.min (load *. weakest) (0.95 *. B.line_rate) in
  let latency_report =
    Lognic.Latency.evaluate ~model:Lognic.Latency.Mmcn_model g ~hw:B.hardware
      ~traffic:(Lognic.Traffic.make ~rate:latency_rate ~packet_size)
  in
  {
    scheme;
    packet_size;
    throughput = saturated.Lognic.Throughput.attained;
    latency = latency_report.Lognic.Latency.mean;
  }

let sweep ?load ?sizes () =
  let sizes = Option.value sizes ~default:[ 64.; 128.; 256.; 512.; 1024.; U.mtu ] in
  List.concat_map
    (fun packet_size ->
      List.map
        (fun scheme -> evaluate ?load ~packet_size scheme)
        [ Arm_only; Accel_only; Lognic_opt ])
    sizes
