module G = Lognic.Graph
module D = Lognic_devices

type workload = {
  name : string;
  stages : (string * float) list;
  request_size : float;
}

let nfv_fin =
  {
    name = "NFV-FIN";
    stages =
      [ ("parse", 2400.); ("flow-lookup", 3600.); ("stats", 2800.); ("export", 2000.) ];
    request_size = 512.;
  }

let nfv_din =
  {
    name = "NFV-DIN";
    stages =
      [
        ("parse", 2400.); ("reassembly", 4800.); ("detect", 6000.); ("alert", 1600.);
      ];
    request_size = 1024.;
  }

let rta_sf =
  {
    name = "RTA-SF";
    stages =
      [
        ("parse", 2000.); ("tokenize", 5600.); ("classify", 6400.); ("verdict", 1200.);
      ];
    request_size = 1024.;
  }

let rta_shm =
  {
    name = "RTA-SHM";
    stages = [ ("ingest", 1600.); ("aggregate", 3200.); ("threshold", 2400.) ];
    request_size = 256.;
  }

let iot_dh =
  {
    name = "IOT-DH";
    stages =
      [ ("auth", 3600.); ("transform", 4400.); ("store", 4000.); ("ack", 1200.) ];
    request_size = 512.;
  }

let all = [ nfv_fin; nfv_din; rta_sf; rta_shm; iot_dh ]

type scheme = Round_robin | Equal_partition | Lognic_opt

let scheme_name = function
  | Round_robin -> "Round-Robin"
  | Equal_partition -> "Equal-Partition"
  | Lognic_opt -> "LogNIC-Opt"

let run_to_completion_penalty = 1.45
let total_cores = D.Liquidio.total_cores
let line_rate = D.Liquidio.line_rate

(* All ways of splitting [cores] across [k] stages with >= 1 core each. *)
let compositions cores k =
  let rec go cores k =
    if k = 1 then [ [ cores ] ]
    else
      List.concat_map
        (fun first ->
          List.map (fun rest -> first :: rest) (go (cores - first) (k - 1)))
        (List.init (cores - k + 1) (fun i -> i + 1))
  in
  if k < 1 || cores < k then invalid_arg "Microservices: bad composition"
  else go cores k

let stage_service ~cycles ~cores ~request_size =
  let rate =
    D.Liquidio.microservice_core_rate ~cost_cycles:cycles ~cores *. request_size
  in
  G.service ~throughput:rate ~parallelism:cores ~queue_capacity:64 ()

let pipeline_graph workload cores_per_stage =
  let port = G.service ~throughput:line_rate ~queue_capacity:256 () in
  let g = G.empty in
  let g, ingress = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:port g in
  let g, last =
    List.fold_left2
      (fun (g, prev) (label, cycles) cores ->
        let g, v =
          G.add_vertex ~kind:G.Ip ~label
            ~service:(stage_service ~cycles ~cores ~request_size:workload.request_size)
            g
        in
        let g = G.add_edge ~delta:1. ~alpha:0.2 ~src:prev ~dst:v g in
        (g, v))
      (g, ingress) workload.stages cores_per_stage
  in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port g in
  G.add_edge ~delta:1. ~src:last ~dst:egress g

let rtc_graph workload =
  (* One undivided pool running whole requests, paying the
     run-to-completion locality penalty. *)
  let total_cycles =
    List.fold_left (fun acc (_, c) -> acc +. c) 0. workload.stages
    *. run_to_completion_penalty
  in
  let port = G.service ~throughput:line_rate ~queue_capacity:256 () in
  let g = G.empty in
  let g, ingress = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:port g in
  let g, pool =
    G.add_vertex ~kind:G.Ip ~label:"core-pool"
      ~service:
        (stage_service ~cycles:total_cycles ~cores:total_cores
           ~request_size:workload.request_size)
      g
  in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port g in
  let g = G.add_edge ~delta:1. ~alpha:0.2 ~src:ingress ~dst:pool g in
  G.add_edge ~delta:1. ~src:pool ~dst:egress g

let traffic_for workload rate =
  Lognic.Traffic.make ~rate ~packet_size:workload.request_size

let capacity_of g =
  Lognic.Throughput.capacity g ~hw:D.Liquidio.hardware

let opt_allocation workload =
  let k = List.length workload.stages in
  let best = ref None in
  List.iter
    (fun alloc ->
      let cap = capacity_of (pipeline_graph workload alloc) in
      match !best with
      | Some (_, best_cap) when best_cap >= cap -> ()
      | _ -> best := Some (alloc, cap))
    (compositions total_cores k);
  match !best with Some (alloc, _) -> alloc | None -> assert false

let allocation scheme workload =
  match scheme with
  | Round_robin -> [ total_cores ]
  | Equal_partition ->
    let k = List.length workload.stages in
    let base = total_cores / k and extra = total_cores mod k in
    List.init k (fun i -> if i < extra then base + 1 else base)
  | Lognic_opt -> opt_allocation workload

let graph scheme workload =
  match scheme with
  | Round_robin -> rtc_graph workload
  | Equal_partition | Lognic_opt ->
    pipeline_graph workload (allocation scheme workload)

type outcome = { scheme : scheme; throughput : float; latency : float }

let evaluate ?(load = 0.8) workload scheme =
  (* Throughput (Fig 11) is each scheme's carried rate under saturating
     offered load; latency (Fig 12) is measured at [load] x the weakest
     scheme's capacity, the same absolute traffic for everyone, so no
     scheme is pushed past saturation into pure drop-bounded numbers. *)
  let capacities =
    List.map
      (fun s -> capacity_of (graph s workload))
      [ Round_robin; Equal_partition; Lognic_opt ]
  in
  let best = List.fold_left Float.max 0. capacities in
  let weakest = List.fold_left Float.min infinity capacities in
  let g = graph scheme workload in
  let saturated =
    Lognic.Throughput.evaluate g ~hw:D.Liquidio.hardware
      ~traffic:(traffic_for workload (1.05 *. best))
  in
  let latency_report =
    Lognic.Latency.evaluate ~model:Lognic.Latency.Mmcn_model g
      ~hw:D.Liquidio.hardware
      ~traffic:(traffic_for workload (load *. weakest))
  in
  {
    scheme;
    throughput = saturated.Lognic.Throughput.attained /. workload.request_size;
    latency = latency_report.Lognic.Latency.mean;
  }

let compare_schemes ?load workload =
  List.map (evaluate ?load workload) [ Round_robin; Equal_partition; Lognic_opt ]

(* NIC/host hybrid placement (§4.4's migration path). *)

let hybrid_graph workload ~split_at =
  let stages = workload.stages in
  let k = List.length stages in
  if split_at < 0 || split_at > k then
    invalid_arg "Microservices.hybrid_graph: split_at outside [0, stages]";
  let nic_stages = List.filteri (fun i _ -> i < split_at) stages in
  let host_stages = List.filteri (fun i _ -> i >= split_at) stages in
  let port = G.service ~throughput:line_rate ~queue_capacity:256 () in
  let g = G.empty in
  let g, ingress = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:port g in
  (* NIC prefix: each stage is a virtual IP of the 16-core cluster with
     a cost-proportional gamma, so the prefix capacity is exactly the
     cluster's pipelined rate over the prefix cost. *)
  let nic_total = List.fold_left (fun acc (_, c) -> acc +. c) 0. nic_stages in
  let g, nic_last =
    List.fold_left
      (fun (g, prev) (label, cycles) ->
        let gamma = Float.max 1e-3 (Float.min 0.999 (cycles /. nic_total)) in
        let engines =
          max 1 (int_of_float (Float.round (gamma *. float_of_int total_cores)))
        in
        let full_rate =
          D.Liquidio.microservice_core_rate ~cost_cycles:cycles ~cores:total_cores
          *. workload.request_size
        in
        let g, v =
          G.add_vertex ~kind:G.Ip ~label:("nic." ^ label)
            ~service:
              (G.service ~throughput:full_rate ~partition:gamma
                 ~parallelism:engines ~queue_capacity:64 ())
            g
        in
        (G.add_edge ~delta:1. ~alpha:0.2 ~src:prev ~dst:v g, v))
      (g, ingress) nic_stages
  in
  (* the PCIe crossing: a dedicated link plus the driver latency as O *)
  let g, nic_last =
    if host_stages = [] then (g, nic_last)
    else begin
      let g =
        G.update_service g nic_last (fun s ->
            { s with G.overhead = s.G.overhead +. D.Host.pcie_latency })
      in
      (g, nic_last)
    end
  in
  (* host suffix: the migration budget split cost-proportionally *)
  let host_total = List.fold_left (fun acc (_, c) -> acc +. c) 0. host_stages in
  let g, last, crossing =
    List.fold_left
      (fun (g, prev, crossing) (label, cycles) ->
        let cores =
          max 1
            (int_of_float
               (Float.round
                  (float_of_int D.Host.available_cores *. cycles /. host_total)))
        in
        let cores = min cores D.Host.available_cores in
        let g, v =
          G.add_vertex ~kind:G.Ip ~label:("host." ^ label)
            ~service:
              (D.Host.stage_service ~cost_cycles:cycles ~cores
                 ~request_size:workload.request_size)
            g
        in
        let g =
          if crossing then
            G.add_edge ~delta:1. ~bandwidth:D.Host.pcie_bandwidth ~src:prev
              ~dst:v g
          else G.add_edge ~delta:1. ~src:prev ~dst:v g
        in
        (g, v, false))
      (g, nic_last, host_stages <> []) host_stages
  in
  ignore crossing;
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port g in
  G.add_edge ~delta:1. ~src:last ~dst:egress g

let hybrid_capacity workload ~split_at =
  capacity_of (hybrid_graph workload ~split_at)

let best_hybrid_split workload =
  let k = List.length workload.stages in
  (* split_at = k is NIC-only; 0 moves the whole chain to the host *)
  let best, _ =
    Lognic_numerics.Grid.maximize_int
      ~f:(fun s -> hybrid_capacity workload ~split_at:s)
      ~lo:0 ~hi:k ()
  in
  best

let hybrid_gain workload =
  let nic_only = capacity_of (graph Lognic_opt workload) in
  hybrid_capacity workload ~split_at:(best_hybrid_split workload) /. nic_only

(* Energy efficiency (E3's headline axis). *)

type energy_report = {
  placement : string;
  capacity_rps : float;
  watts : float;
  rps_per_watt : float;
}

let energy_comparison workload =
  let rps_of_capacity bytes = bytes /. workload.request_size in
  let report placement capacity_bytes watts =
    let capacity_rps = rps_of_capacity capacity_bytes in
    {
      placement;
      capacity_rps;
      watts;
      rps_per_watt = D.Power.efficiency ~requests_per_s:capacity_rps ~watts;
    }
  in
  let nic_capacity = capacity_of (graph Lognic_opt workload) in
  let nic =
    report "nic" nic_capacity
      (D.Power.nic_power ~busy_cores:(float_of_int total_cores))
  in
  let host_capacity = hybrid_capacity workload ~split_at:0 in
  let host =
    report "host" host_capacity
      (D.Power.host_power ~busy_cores:(float_of_int D.Host.available_cores))
  in
  let split = best_hybrid_split workload in
  let hybrid_capacity_bytes = hybrid_capacity workload ~split_at:split in
  let host_share =
    if split >= List.length workload.stages then 0.
    else float_of_int D.Host.available_cores
  in
  let hybrid =
    report "hybrid" hybrid_capacity_bytes
      (D.Power.nic_power ~busy_cores:(float_of_int total_cores)
      +. (if host_share > 0. then D.Power.host_power ~busy_cores:host_share else 0.))
  in
  [ nic; host; hybrid ]
