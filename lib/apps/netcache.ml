module G = Lognic.Graph
module U = Lognic.Units
module Sw = Lognic_devices.Rmt_switch

type config = {
  request_size : float;
  value_bytes : float;
  server_rate : float;
  server_think : float;
}

let default =
  {
    request_size = 128.;
    value_bytes = 128.;
    server_rate = 4e6;
    server_think = 8e-6;
  }

let graph ?(hit_ratio = 0.5) config =
  if hit_ratio < 0. || hit_ratio > 1. then
    invalid_arg "Netcache.graph: hit_ratio outside [0, 1]";
  let size = config.request_size in
  let port = G.service ~throughput:Sw.line_rate ~queue_capacity:1024 () in
  (* Misses traverse the pipeline twice (query in, response out), hits
     once; the physical pipeline is partitioned by work share. *)
  let miss = 1. -. hit_ratio in
  (* shares are clamped away from the {0, 1} endpoints so the
     degenerate all-hit graph still type-checks as a partition *)
  let pass1_share = Float.min 0.999 (1. /. (1. +. miss)) in
  let g = G.empty in
  let g, ingress = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:port g in
  let g, lookup =
    G.add_vertex ~kind:G.Ip ~label:"switch.lookup"
      ~service:(Sw.pipeline_service ~partition:pass1_share ~packet_size:size ())
      g
  in
  let g, server =
    G.add_vertex ~kind:G.Ip ~label:"server"
      ~service:
        (G.service
           ~throughput:(config.server_rate *. size)
           ~parallelism:
             (max 1
                (int_of_float
                   (Float.round (config.server_rate *. config.server_think))))
           ~queue_capacity:512 ()
           )
      g
  in
  let g, reply_pass =
    G.add_vertex ~kind:G.Ip ~label:"switch.reply"
      ~service:(Sw.pipeline_service ~partition:(1. -. pass1_share) ~packet_size:size ())
      g
  in
  let g, egress = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port g in
  (* every request reads the cache index; hits also read the value *)
  let index_beta = 16. /. size in
  let hit_beta = hit_ratio *. (config.value_bytes /. size) in
  let g = G.add_edge ~delta:1. ~beta:(index_beta +. hit_beta) ~src:ingress ~dst:lookup g in
  (* hit path: straight back out *)
  let g =
    if hit_ratio > 0. then G.add_edge ~delta:hit_ratio ~src:lookup ~dst:egress g
    else g
  in
  (* miss path: server, then the reply pass *)
  if miss > 0. then begin
    let g = G.add_edge ~delta:miss ~alpha:miss ~src:lookup ~dst:server g in
    let g = G.add_edge ~delta:miss ~alpha:miss ~src:server ~dst:reply_pass g in
    G.add_edge ~delta:miss ~src:reply_pass ~dst:egress g
  end
  else begin
    (* degenerate all-hit case: keep the reply pass reachable *)
    let g = G.add_edge ~delta:1e-9 ~src:lookup ~dst:server g in
    let g = G.add_edge ~delta:1e-9 ~src:server ~dst:reply_pass g in
    G.add_edge ~delta:1e-9 ~src:reply_pass ~dst:egress g
  end

type point = {
  hit_ratio : float;
  model_rps : float;
  measured_rps : float;
  model_latency : float;
  server_share : float;
}

let sustainable_rps ?hit_ratio config =
  let g = graph ?hit_ratio config in
  Lognic.Throughput.capacity g ~hw:Sw.hardware /. config.request_size

let hit_ratio_sweep ?(duration = 0.02) ?(seed = 71) ?jobs ?ratios config =
  let ratios = Option.value ratios ~default:[ 0.; 0.25; 0.5; 0.75; 0.9; 0.99 ] in
  Lognic_sim.Parallel.map ?jobs
    (fun (i, hit_ratio) ->
      let g = graph ~hit_ratio config in
      let capacity_rps = sustainable_rps ~hit_ratio config in
      let saturating =
        Lognic.Traffic.make
          ~rate:(1.1 *. capacity_rps *. config.request_size)
          ~packet_size:config.request_size
      in
      let m =
        Lognic_sim.Netsim.run
          ~config:(Study.sim_config ~seed:(seed + i) duration)
          g ~hw:Sw.hardware
          ~mix:[ (saturating, 1.) ]
      in
      let comfortable =
        Lognic.Traffic.make
          ~rate:(0.7 *. capacity_rps *. config.request_size)
          ~packet_size:config.request_size
      in
      let latency =
        (Lognic.Latency.evaluate ~model:Lognic.Latency.Mmcn_model g
           ~hw:Sw.hardware ~traffic:comfortable)
          .Lognic.Latency.mean
      in
      {
        hit_ratio;
        model_rps = capacity_rps;
        measured_rps =
          m.summary.Lognic_sim.Telemetry.throughput /. config.request_size;
        model_latency = latency;
        server_share = 1. -. hit_ratio;
      })
    (List.mapi (fun i r -> (i, r)) ratios)

let speedup_at ~hit_ratio config =
  sustainable_rps ~hit_ratio config /. sustainable_rps ~hit_ratio:0. config
