module G = Lognic.Graph
module L = Lognic_devices.Liquidio

type config = {
  packet_size : float;
  emc_cores : int;
  megaflow_cores : int;
  slowpath_cores : int;
  emc_cost_cycles : float;
  megaflow_cost_cycles : float;
  slowpath_cost_cycles : float;
  slowpath_overhead : float;
}

let default =
  {
    packet_size = 512.;
    emc_cores = 4;
    megaflow_cores = 8;
    slowpath_cores = 4;
    (* hash + one cache-line compare; tuple-space search over a handful
       of masks; full OpenFlow classification plus upcall marshalling *)
    emc_cost_cycles = 300.;
    megaflow_cost_cycles = 1500.;
    slowpath_cost_cycles = 20000.;
    slowpath_overhead = 20e-6;
  }

let stage_service ~cores ~cost_cycles ~queue_capacity ~packet_size ?overhead ()
    =
  G.service
    ~throughput:
      (L.microservice_core_rate ~cost_cycles ~cores *. packet_size)
    ~parallelism:cores ~queue_capacity ?overhead ()

let graph ?(emc_hit = 0.5) ?(megaflow_hit = 0.5) config =
  let in_unit x name =
    if not (Float.is_finite x && x >= 0. && x <= 1.) then
      invalid_arg (Printf.sprintf "Flow_cache.graph: %s outside [0, 1]" name)
  in
  in_unit emc_hit "emc_hit";
  in_unit megaflow_hit "megaflow_hit";
  let size = config.packet_size in
  let port = G.service ~throughput:L.line_rate ~queue_capacity:1024 () in
  let g = G.empty in
  let g, rx = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:port g in
  let g, emc =
    G.add_vertex ~kind:G.Ip ~label:"emc"
      ~service:
        (stage_service ~cores:config.emc_cores
           ~cost_cycles:config.emc_cost_cycles ~queue_capacity:512
           ~packet_size:size ())
      g
  in
  let g, mega =
    G.add_vertex ~kind:G.Ip ~label:"megaflow"
      ~service:
        (stage_service ~cores:config.megaflow_cores
           ~cost_cycles:config.megaflow_cost_cycles ~queue_capacity:512
           ~packet_size:size ())
      g
  in
  let g, slow =
    G.add_vertex ~kind:G.Ip ~label:"slowpath"
      ~service:
        (stage_service ~cores:config.slowpath_cores
           ~cost_cycles:config.slowpath_cost_cycles ~queue_capacity:256
           ~packet_size:size ~overhead:config.slowpath_overhead ())
      g
  in
  let g, tx = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:port g in
  let emc_miss = 1. -. emc_hit in
  let mega_hit = emc_miss *. megaflow_hit in
  let mega_miss = emc_miss *. (1. -. megaflow_hit) in
  (* every packet hashes into the EMC: one 64 B bucket probe over CMI *)
  let g = G.add_edge ~delta:1. ~beta:(64. /. size) ~src:rx ~dst:emc g in
  (* cache-vertex convention: the HIT route is the first out-edge added,
     the miss route the second — Flowcache.evaluate and the simulator's
     per-packet lookup both route by that order, not by δ *)
  let g = G.add_edge ~delta:emc_hit ~src:emc ~dst:tx g in
  (* a tuple-space search walks ~4 subtable masks of 64 B each *)
  let g =
    G.add_edge ~delta:emc_miss
      ~beta:(emc_miss *. (256. /. size))
      ~src:emc ~dst:mega g
  in
  let g = G.add_edge ~delta:mega_hit ~src:mega ~dst:tx g in
  (* the slow-path round trip crosses the I/O interconnect both ways *)
  let g =
    G.add_edge ~delta:mega_miss ~alpha:(2. *. mega_miss) ~src:mega ~dst:slow g
  in
  G.add_edge ~delta:mega_miss ~src:slow ~dst:tx g

let hardware = L.hardware

let traffic ?(load = 0.5) config =
  if not (Float.is_finite load && load > 0.) then
    invalid_arg "Flow_cache.traffic: load must be > 0";
  Lognic.Traffic.make
    ~rate:(load *. L.line_rate)
    ~packet_size:config.packet_size
