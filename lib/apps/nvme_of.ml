module U = Lognic.Units
module D = Lognic_devices

type point = {
  offered : float;
  model_latency : float;
  measured_latency : float;
  model_throughput : float;
  measured_throughput : float;
}

let sim_config ~seed duration = Study.sim_config ~seed ~warmup_fraction:0.2 duration

(* The measured side keeps the drive's realistic behaviour; single-type
   profiles (all-read or sequential-write) incur no GC either way, so
   Fig 6's model and measurement share SSD parameters and the remaining
   error is the model's queueing approximation. *)
let fig6_profile_sweep ?(duration = 0.4) ?(seed = 7) ?jobs ?(points = 10) ~io
    () =
  let eff = D.Ssd.effective D.Ssd.default ~io ~gc:D.Ssd.Gc_realistic in
  let graph = D.Stingray.nvme_of_graph ~gc:D.Ssd.Gc_realistic ~io () in
  let max_rate = 0.9 *. eff.D.Ssd.capacity in
  Lognic_sim.Parallel.map ?jobs
    (fun i ->
      let offered = max_rate *. float_of_int (i + 1) /. float_of_int points in
      let traffic = Lognic.Traffic.make ~rate:offered ~packet_size:io.D.Ssd.io_size in
      (* Mmcn_model is the calibration-equivalent of §4.3's curve fit:
         the SSD's D = 64 in-flight commands make Eq 12's single-queue
         abstraction overstate queueing (see Latency.queue_model). *)
      let report =
        Lognic.Estimate.run ~queue_model:Lognic.Latency.Mmcn_model graph
          ~hw:D.Stingray.hardware ~traffic
      in
      let m =
        Lognic_sim.Netsim.run_single
          ~config:(sim_config ~seed:(seed + i) duration)
          graph ~hw:D.Stingray.hardware ~traffic
      in
      {
        offered;
        model_latency = report.latency.Lognic.Latency.mean;
        measured_latency = m.summary.Lognic_sim.Telemetry.mean_latency;
        model_throughput = report.throughput.Lognic.Throughput.attained;
        measured_throughput = m.summary.Lognic_sim.Telemetry.throughput;
      })
    (List.init points Fun.id)

let fig6_error_rate points =
  let errors =
    List.filter_map
      (fun p ->
        if p.measured_latency > 0. then
          Some
            (Lognic_numerics.Stats.relative_error ~actual:p.model_latency
               ~expected:p.measured_latency)
        else None)
      points
  in
  match errors with
  | [] -> 0.
  | _ -> Lognic_numerics.Stats.mean (Array.of_list errors)

type mixed_point = {
  read_ratio : float;
  measured_bandwidth : float;
  model_bandwidth : float;
}

let fig7_read_ratio_sweep ?(duration = 0.4) ?(seed = 31) ?jobs ?ratios () =
  let ratios =
    Option.value ratios ~default:[ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]
  in
  Lognic_sim.Parallel.map ?jobs
    (fun (i, read_ratio) ->
      let io = D.Ssd.mixed_4k ~read_fraction:read_ratio in
      (* Drive the drive into saturation so bandwidth, not offered load,
         is measured. *)
      let realistic =
        D.Ssd.effective D.Ssd.default ~io ~gc:D.Ssd.Gc_realistic
      in
      let offered = 1.3 *. realistic.D.Ssd.capacity in
      let traffic = Lognic.Traffic.make ~rate:offered ~packet_size:io.D.Ssd.io_size in
      let measured_graph = D.Stingray.nvme_of_graph ~gc:D.Ssd.Gc_realistic ~io () in
      let model_graph = D.Stingray.nvme_of_graph ~gc:D.Ssd.Gc_worst_case ~io () in
      let m =
        Lognic_sim.Netsim.run_single
          ~config:(sim_config ~seed:(seed + i) duration)
          measured_graph ~hw:D.Stingray.hardware ~traffic
      in
      let report = Lognic.Estimate.run model_graph ~hw:D.Stingray.hardware ~traffic in
      {
        read_ratio;
        measured_bandwidth = m.summary.Lognic_sim.Telemetry.throughput;
        model_bandwidth = report.throughput.Lognic.Throughput.attained;
      })
    (List.mapi (fun i r -> (i, r)) ratios)

let calibration_demo ?(duration = 0.2) ?(seed = 53) ~io () =
  let eff = D.Ssd.effective D.Ssd.default ~io ~gc:D.Ssd.Gc_realistic in
  let graph = D.Stingray.nvme_of_graph ~gc:D.Ssd.Gc_realistic ~io () in
  let sweep =
    (* Sample through and beyond the saturation knee; the x-axis is the
       *achieved* throughput (as in Fig 6), so post-saturation points
       cluster at the capacity asymptote and pin the fit. *)
    List.init 10 (fun i ->
        let rate = eff.D.Ssd.capacity *. (0.3 +. (0.095 *. float_of_int i)) in
        let traffic = Lognic.Traffic.make ~rate ~packet_size:io.D.Ssd.io_size in
        let m =
          Lognic_sim.Netsim.run_single
            ~config:(sim_config ~seed:(seed + i) duration)
            graph ~hw:D.Stingray.hardware ~traffic
        in
        ( m.summary.Lognic_sim.Telemetry.throughput,
          m.summary.Lognic_sim.Telemetry.mean_latency ))
  in
  Lognic.Calibrate.fit_opaque_ip ~data:(Array.of_list sweep)
