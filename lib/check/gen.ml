(* QCheck generators for random-but-valid LogNIC inputs: execution
   graphs, hardware parameters, traffic, simulator configs, fault
   plans. Every float is drawn from a short-decimal-literal list, so a
   generated value survives the DSL printer's [%g] rendering and
   [Quantity.parse] bit-exactly — the round-trip property can demand
   string equality instead of approximate value equality. *)

module G = Lognic.Graph
module QGen = QCheck.Gen

type scenario = {
  label : string;
  graph : G.t;
  hw : Lognic.Params.hardware;
  mix : Lognic.Traffic.mix;
}

(* ---- scalar pools ---------------------------------------------------- *)

let throughputs = [ 1e9; 2e9; 4e9; 5e9 ]
let bandwidths = [ 1.25e9; 1e10; 1.25e10 ]
let packet_sizes = [ 64.; 256.; 1000.; 1500. ]
let deltas = [ 0.5; 1.; 2. ]
let alphas = [ 0.; 0.5; 1. ]
let overheads = [ 0.; 1e-6; 2e-6 ]
let accels = [ 0.5; 1.; 2. ]
let partitions = [ 0.5; 1. ]

let service st =
  G.service
    ~throughput:(QGen.oneofl throughputs st)
    ~parallelism:(QGen.int_range 1 4 st)
    ~queue_capacity:(QGen.int_range 4 64 st)
    ~overhead:(QGen.oneofl overheads st)
    ~accel:(QGen.oneofl accels st)
    ~partition:(QGen.oneofl partitions st)
    ()

(* A restrained service for properties that need the sim to agree with
   the closed-form model sharply: defaults that keep per-node service
   time well under the paced inter-arrival gap at the rates below. *)
let tame_service st =
  G.service
    ~throughput:(QGen.oneofl throughputs st)
    ~parallelism:(QGen.int_range 1 2 st)
    ~queue_capacity:(QGen.int_range 16 64 st)
    ~overhead:(QGen.oneofl overheads st)
    ()

(* ---- graphs ---------------------------------------------------------- *)

(* ingress -> ip_1 -> ... -> ip_n -> egress, every edge delta = 1 so
   reach probabilities and W-fractions are trivially 1. *)
let chain_graph ?(edge_alpha = true) () st =
  let n = QGen.int_range 1 3 st in
  let g, ingress =
    G.add_vertex ~kind:G.Ingress ~label:"in" ~service:G.default_service G.empty
  in
  let g, last =
    List.fold_left
      (fun (g, prev) i ->
        let g, id =
          G.add_vertex ~kind:G.Ip
            ~label:(Printf.sprintf "ip%d" i)
            ~service:(tame_service st) g
        in
        let alpha = if edge_alpha then QGen.oneofl alphas st else 0. in
        let beta = if edge_alpha then QGen.oneofl alphas st else 0. in
        (G.add_edge ~delta:1. ~alpha ~beta ~src:prev ~dst:id g, id))
      (g, ingress)
      (List.init n (fun i -> i))
  in
  let g, egress =
    G.add_vertex ~kind:G.Egress ~label:"out" ~service:G.default_service g
  in
  G.add_edge ~delta:1. ~src:last ~dst:egress g

(* A single-IP chain with no wire or overhead terms: end-to-end latency
   is exactly the node sojourn, which is what Little's-law and
   queueing-limit properties need to isolate. *)
let single_node_graph ~parallelism ~queue_capacity ~throughput =
  let g, ingress =
    G.add_vertex ~kind:G.Ingress ~label:"in" ~service:G.default_service G.empty
  in
  let g, ip =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:(G.service ~throughput ~parallelism ~queue_capacity ())
      g
  in
  let g, egress =
    G.add_vertex ~kind:G.Egress ~label:"out" ~service:G.default_service g
  in
  let g = G.add_edge ~delta:1. ~src:ingress ~dst:ip g in
  G.add_edge ~delta:1. ~src:ip ~dst:egress g

(* Layered DAG: 1-3 stages of width 1-2, consecutive stages completely
   connected — every ingress->egress walk exists, so validation always
   passes, while fan-out/fan-in still exercises routing, per-edge
   scaling, and multi-path telemetry. *)
let layered_graph st =
  let stages = QGen.int_range 1 3 st in
  let g, ingress =
    G.add_vertex ~kind:G.Ingress ~label:"in" ~service:G.default_service G.empty
  in
  let g, layers, _ =
    List.fold_left
      (fun (g, prev_layer, idx) _ ->
        let width = QGen.int_range 1 2 st in
        let g, layer =
          List.fold_left
            (fun (g, acc) w ->
              let g, id =
                G.add_vertex ~kind:G.Ip
                  ~label:(Printf.sprintf "ip%d_%d" idx w)
                  ~service:(service st) g
              in
              (g, id :: acc))
            (g, [])
            (List.init width (fun w -> w))
        in
        let layer = List.rev layer in
        let g =
          List.fold_left
            (fun g src ->
              List.fold_left
                (fun g dst ->
                  G.add_edge
                    ~delta:(QGen.oneofl deltas st)
                    ~alpha:(QGen.oneofl alphas st)
                    ~beta:(QGen.oneofl alphas st)
                    ~src ~dst g)
                g layer)
            g prev_layer
        in
        (g, layer, idx + 1))
      (g, [ ingress ], 0)
      (List.init stages (fun s -> s))
  in
  let g, egress =
    G.add_vertex ~kind:G.Egress ~label:"out" ~service:G.default_service g
  in
  List.fold_left
    (fun g src -> G.add_edge ~delta:1. ~src ~dst:egress g)
    g layers

(* ---- hardware and traffic ------------------------------------------- *)

let hardware st =
  Lognic.Params.hardware
    ~bw_interface:(QGen.oneofl bandwidths st)
    ~bw_memory:(QGen.oneofl bandwidths st)

let traffic ?(rates = [ 1e7; 2.5e7; 5e7 ]) () st =
  Lognic.Traffic.make ~rate:(QGen.oneofl rates st)
    ~packet_size:(QGen.oneofl packet_sizes st)

let mix ?rates () st =
  let classes = QGen.int_range 1 2 st in
  Lognic.Traffic.mix
    (List.init classes (fun _ -> (traffic ?rates () st, QGen.oneofl [ 0.5; 1.; 2. ] st)))

(* ---- scenarios ------------------------------------------------------- *)

(* Low-load chain: the sharp model-vs-sim regime. *)
let low_load_chain st =
  {
    label = "low-load-chain";
    graph = chain_graph () st;
    hw = hardware st;
    mix = [ (traffic () st, 1.) ];
  }

(* Anything-goes: arbitrary layered graph under light-to-overload
   traffic; the regime for invariant-conformance fuzzing. *)
let wild st =
  {
    label = "wild";
    graph = layered_graph st;
    hw = hardware st;
    mix = mix ~rates:[ 2.5e7; 2.5e8; 1e9; 4e9 ] () st;
  }

(* Two classes at a low fixed per-class rate on a tame chain: combined
   packet gaps stay well above the largest service time, so per-class
   model-vs-sim latency agreement is sharp (the mix analogue of
   [low_load_chain]). *)
let low_load_mix_chain st =
  let cls () =
    Lognic.Traffic.make ~rate:1e7 ~packet_size:(QGen.oneofl packet_sizes st)
  in
  {
    label = "low-load-mix-chain";
    graph = chain_graph () st;
    hw = hardware st;
    mix = Lognic.Traffic.mix [ (cls (), 1.); (cls (), 1.) ];
  }

let arrival st =
  QGen.oneofl
    [
      Lognic_sim.Traffic_gen.Poisson;
      Lognic_sim.Traffic_gen.Paced;
      Lognic_sim.Traffic_gen.Bursty { burstiness = 4.; mean_on = 1e-4 };
    ]
    st

let service_dist st =
  QGen.oneofl [ Lognic_sim.Ip_node.Exponential; Lognic_sim.Ip_node.Deterministic ] st

(* A small fault plan whose targets exist in every generated graph:
   the shared media and the drop-burst need no entity at all, and an
   [ip0_0] vertex exists in every layered graph. *)
let fault_plan ~duration st =
  match QGen.int_range 0 3 st with
  | 0 -> Lognic_sim.Faults.empty
  | 1 ->
    [
      Lognic_sim.Faults.drop_burst ~probability:0.3 ~start:(duration /. 4.)
        ~stop:(duration /. 2.);
    ]
  | 2 ->
    [
      Lognic_sim.Faults.medium_degraded ~medium:"interface" ~factor:0.5
        ~start:(duration /. 4.)
        ~stop:(3. *. duration /. 4.);
    ]
  | _ ->
    [
      Lognic_sim.Faults.queue_shrunk ~vertex:"ip0_0" ~capacity:2
        ~start:(duration /. 4.)
        ~stop:(duration /. 2.);
    ]

(* ---- tenants --------------------------------------------------------- *)

let tenant_names =
  [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot"; "golf"; "hotel" |]

(* 2-6 distinct tenants with small random weights/shares and an
   occasional SLO, returned in a {e random} order — never name-sorted —
   so order-invariance properties exercise the canonicalization in
   [Tenant.set] rather than a pre-sorted fixed point. Shares come from
   the short-decimal pool for the same bit-exactness reason as every
   other float here. *)
let tenant_specs st =
  let keyed =
    Array.map (fun name -> (QGen.int_range 0 1_000_000 st, name)) tenant_names
  in
  Array.sort compare keyed;
  let n = QGen.int_range 2 6 st in
  List.init n (fun i ->
      let _, name = keyed.(i) in
      let weight = QGen.int_range 1 8 st in
      let share = QGen.oneofl [ 0.5; 1.; 2.; 4. ] st in
      let slo_p99 =
        if QGen.bool st then Some (QGen.oneofl [ 1e-3; 1e-2 ] st) else None
      in
      Lognic_sim.Tenant.spec ~weight ~share ?slo_p99 name)

(* ---- DSL documents --------------------------------------------------- *)

let document st =
  let graph =
    if QGen.bool st then layered_graph st else chain_graph () st
  in
  {
    Lognic_dsl.Parser.graph;
    hardware = (if QGen.bool st then Some (hardware st) else None);
    traffic = (if QGen.bool st then Some (traffic ~rates:[ 1e8; 2.5e8 ] () st) else None);
    mix = (if QGen.bool st then Some (mix ~rates:[ 1e8; 2.5e8 ] () st) else None);
  }
