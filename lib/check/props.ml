(* The differential property suite: each property cross-checks two
   independent implementations of the same quantity — closed-form model
   vs discrete-event sim, sequential vs domain-parallel execution,
   printer vs parser, one queueing formula vs another — so a bug in
   either side surfaces as a disagreement without needing an oracle. *)

module G = Lognic.Graph
module Sim = Lognic_sim
module Q = Lognic_queueing

let close ~tol a b =
  Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let fail_close ~tol ~what expected actual =
  if close ~tol expected actual then true
  else
    QCheck.Test.fail_reportf "%s: expected %.12g, got %.12g (tol %g)" what
      expected actual tol

let arb ?print gen = QCheck.make ?print gen

(* ---- model vs sim --------------------------------------------------- *)

(* At low load with paced arrivals and deterministic service nothing
   ever queues, so every packet walks the chain in the same constant
   time and the sim's mean latency/throughput must agree sharply with
   the no-queueing closed form. *)
let low_load_config =
  Sim.Netsim.Config.(
    default |> with_horizon 0.01
    |> with_service_dist Sim.Ip_node.Deterministic
    |> with_arrival Sim.Traffic_gen.Paced)

let model_vs_sim_latency ~count =
  QCheck.Test.make ~count ~name:"model-vs-sim: low-load latency agrees"
    (arb Gen.low_load_chain ~print:(fun s -> s.Gen.label))
    (fun sc ->
      let traffic = fst (List.hd sc.Gen.mix) in
      let model =
        (Lognic.Latency.evaluate ~model:Lognic.Latency.No_queueing sc.Gen.graph
           ~hw:sc.Gen.hw ~traffic)
          .Lognic.Latency.mean
      in
      let m =
        Sim.Netsim.execute
          (Sim.Netsim.Run.make ~config:low_load_config sc.Gen.graph
             ~hw:sc.Gen.hw ~mix:sc.Gen.mix)
      in
      let sim = m.Sim.Netsim.summary.Sim.Telemetry.mean_latency in
      m.Sim.Netsim.summary.Sim.Telemetry.delivered_packets > 0
      && fail_close ~tol:1e-6 ~what:"mean latency" model sim)

let model_vs_sim_throughput ~count =
  QCheck.Test.make ~count ~name:"model-vs-sim: low-load throughput agrees"
    (arb Gen.low_load_chain ~print:(fun s -> s.Gen.label))
    (fun sc ->
      let traffic = fst (List.hd sc.Gen.mix) in
      let m =
        Sim.Netsim.execute
          (Sim.Netsim.Run.make ~config:low_load_config sc.Gen.graph
             ~hw:sc.Gen.hw ~mix:sc.Gen.mix)
      in
      (* in-flight packets at the horizon leave the delivered-bytes
         window a couple of packets short: loose bound *)
      fail_close ~tol:0.05 ~what:"throughput" traffic.Lognic.Traffic.rate
        m.Sim.Netsim.summary.Sim.Telemetry.throughput)

(* ---- parallel execution --------------------------------------------- *)

let jobs_bit_identical ~count =
  QCheck.Test.make ~count
    ~name:"parallel: --jobs 1 and --jobs 4 are bit-identical"
    (arb Gen.wild ~print:(fun s -> s.Gen.label))
    (fun sc ->
      let config =
        Sim.Netsim.Config.(default |> with_horizon 2e-3)
      in
      let spec =
        Sim.Netsim.Run.make ~config sc.Gen.graph ~hw:sc.Gen.hw ~mix:sc.Gen.mix
      in
      let a = Sim.Parallel.execute_replicated ~jobs:1 ~runs:3 spec in
      let b = Sim.Parallel.execute_replicated ~jobs:4 ~runs:3 spec in
      a = b || QCheck.Test.fail_reportf "replicated results diverge across jobs")

(* ---- DSL round trip -------------------------------------------------- *)

let dsl_round_trip ~count =
  QCheck.Test.make ~count ~name:"dsl: printer . parser = id"
    (arb Gen.document ~print:Lognic_dsl.Printer.document_to_string)
    (fun doc ->
      let s = Lognic_dsl.Printer.document_to_string doc in
      match Lognic_dsl.Parser.parse_string s with
      | Error e -> QCheck.Test.fail_reportf "printed doc does not parse: %s" e
      | Ok doc' ->
        let s' = Lognic_dsl.Printer.document_to_string doc' in
        s = s'
        || QCheck.Test.fail_reportf
             "round trip changed the document:\n%s\nvs\n%s" s s')

(* ---- queueing laws --------------------------------------------------- *)

let lambdas = [ 0.3e6; 0.5e6; 0.7e6 ]
let mus = [ 1e6; 2e6 ]

let mm1n_limit_is_mm1 ~count =
  QCheck.Test.make ~count ~name:"queueing: Mm1n -> Mm1 as capacity -> inf"
    (arb (QCheck.Gen.pair (QCheck.Gen.oneofl lambdas) (QCheck.Gen.oneofl mus)))
    (fun (lambda, mu) ->
      (* rho <= 0.7, so the mass beyond 200 entries is < 0.7^200 *)
      let finite = Q.Mm1n.create ~lambda ~mu ~capacity:200 in
      let infinite = Q.Mm1.create ~lambda ~mu in
      fail_close ~tol:1e-3 ~what:"waiting time"
        (Q.Mm1.mean_waiting_time infinite)
        (Q.Mm1n.mean_waiting_time finite))

let mg1_exponential_is_mm1 ~count =
  QCheck.Test.make ~count ~name:"queueing: Mg1 at scv=1 equals Mm1"
    (arb (QCheck.Gen.pair (QCheck.Gen.oneofl lambdas) (QCheck.Gen.oneofl mus)))
    (fun (lambda, mu) ->
      fail_close ~tol:1e-9 ~what:"waiting time"
        (Q.Mm1.mean_waiting_time (Q.Mm1.create ~lambda ~mu))
        (Q.Mg1.mean_waiting_time (Q.Mg1.create ~lambda ~mu ~scv:1.)))

(* Satellite of the Mm1n single-vector-build change: the algebraic
   Eq. 12 form and the state-vector computation must keep agreeing in
   the numerically hostile rho ~ 1 region. *)
let mm1n_closed_form_near_saturation ~count =
  QCheck.Test.make ~count ~name:"queueing: Mm1n closed form agrees near rho=1"
    (arb
       (QCheck.Gen.triple (QCheck.Gen.oneofl mus)
          (QCheck.Gen.oneofl [ -1e-6; -1e-8; 0.; 1e-8; 1e-6 ])
          (QCheck.Gen.int_range 1 64)))
    (fun (mu, eps, capacity) ->
      let queue = Q.Mm1n.create ~lambda:(mu *. (1. +. eps)) ~mu ~capacity in
      fail_close ~tol:1e-6 ~what:"waiting time near saturation"
        (Q.Mm1n.mean_waiting_time queue)
        (Q.Mm1n.waiting_time_closed_form queue))

(* Little's law, sim vs analytics: a single queueing node with no wire
   or overhead terms, so end-to-end latency is exactly the node
   sojourn. N-bar comes from the periodic in-system samples. *)
let littles_law_vs_sim ~count =
  QCheck.Test.make ~count ~name:"queueing: Little's law holds in sim telemetry"
    (arb
       (QCheck.Gen.pair
          (QCheck.Gen.oneofl [ 0.3; 0.5; 0.7 ])
          (QCheck.Gen.oneofl [ 500.; 1000. ])))
    (fun (rho, size) ->
      let throughput = 1e9 in
      let graph =
        Gen.single_node_graph ~parallelism:1 ~queue_capacity:64 ~throughput
      in
      let hw = Lognic.Params.hardware ~bw_interface:1e12 ~bw_memory:1e12 in
      let traffic =
        Lognic.Traffic.make ~rate:(rho *. throughput) ~packet_size:size
      in
      let config =
        Sim.Netsim.Config.(
          default |> with_horizon 0.02 |> with_sampling 1e-5)
      in
      let m = Sim.Netsim.execute (Sim.Netsim.Run.single ~config graph ~hw ~traffic) in
      let summary = m.Sim.Netsim.summary in
      let depth_series =
        List.find
          (fun s -> Sim.Telemetry.Series.label s = "ip.depth")
          m.Sim.Netsim.series
      in
      let samples = Sim.Telemetry.Series.to_array depth_series in
      let n_bar =
        Array.fold_left (fun acc (_, v) -> acc +. v) 0. samples
        /. float_of_int (Array.length samples)
      in
      Q.Littles.consistent ~tol:0.2
        ~arrival_rate:summary.Sim.Telemetry.packet_rate
        ~time_in_system:summary.Sim.Telemetry.mean_latency
        ~number_in_system:n_bar ()
      || QCheck.Test.fail_reportf
           "L=lambda.W violated: lambda=%g W=%g N=%g (lambda.W=%g)"
           summary.Sim.Telemetry.packet_rate summary.Sim.Telemetry.mean_latency
           n_bar
           (summary.Sim.Telemetry.packet_rate
          *. summary.Sim.Telemetry.mean_latency))

(* Sim sojourn vs the Mm1n closed form the paper assigns to the node:
   loose agreement (the sim is a finite stochastic sample). *)
let mm1n_vs_sim_sojourn ~count =
  QCheck.Test.make ~count ~name:"model-vs-sim: Mm1n sojourn within 30%"
    (arb (QCheck.Gen.oneofl [ 0.3; 0.5; 0.7 ]))
    (fun rho ->
      let throughput = 1e9 and size = 1000. in
      let graph =
        Gen.single_node_graph ~parallelism:1 ~queue_capacity:64 ~throughput
      in
      let hw = Lognic.Params.hardware ~bw_interface:1e12 ~bw_memory:1e12 in
      let traffic =
        Lognic.Traffic.make ~rate:(rho *. throughput) ~packet_size:size
      in
      let config =
        Sim.Netsim.Config.(default |> with_horizon 0.02)
      in
      let m = Sim.Netsim.execute (Sim.Netsim.Run.single ~config graph ~hw ~traffic) in
      let mu = throughput /. size in
      let queue = Q.Mm1n.create ~lambda:(rho *. mu) ~mu ~capacity:64 in
      fail_close ~tol:0.3 ~what:"mean sojourn"
        (Q.Mm1n.mean_time_in_system queue)
        m.Sim.Netsim.summary.Sim.Telemetry.mean_latency)

(* ---- wrapper equivalence --------------------------------------------- *)

let run_wrapper_equivalence ~count =
  QCheck.Test.make ~count ~name:"netsim: run wrapper equals Run.make + execute"
    (arb Gen.wild ~print:(fun s -> s.Gen.label))
    (fun sc ->
      let config =
        Sim.Netsim.Config.(default |> with_horizon 2e-3)
      in
      let via_wrapper =
        Sim.Netsim.run ~config sc.Gen.graph ~hw:sc.Gen.hw ~mix:sc.Gen.mix
      in
      let via_spec =
        Sim.Netsim.execute
          (Sim.Netsim.Run.make ~config sc.Gen.graph ~hw:sc.Gen.hw ~mix:sc.Gen.mix)
      in
      let json m =
        Sim.Telemetry.Json.to_string (Sim.Netsim.measurement_to_json m)
      in
      json via_wrapper = json via_spec
      || QCheck.Test.fail_reportf "wrapper and spec measurements diverge")

(* ---- invariant conformance ------------------------------------------- *)

(* The tentpole closing the loop on itself: every run the fuzzer can
   construct — any graph shape, arrival process, service distribution,
   fault plan — must satisfy every conservation law, and turning the
   checker on must not change the measurement. *)
let invariants_hold_everywhere ~count =
  QCheck.Test.make ~count
    ~name:"invariants: every fuzzed run satisfies every law"
    (arb
       (QCheck.Gen.triple Gen.wild
          (QCheck.Gen.pair Gen.arrival Gen.service_dist)
          (Gen.fault_plan ~duration:2e-3))
       ~print:(fun (s, _, faults) ->
         Printf.sprintf "%s (%d fault(s))" s.Gen.label (List.length faults)))
    (fun (sc, (arrival, service_dist), faults) ->
      let config =
        Sim.Netsim.Config.(
          default |> with_horizon 2e-3 |> with_arrival arrival
          |> with_service_dist service_dist
          |> with_invariants true)
      in
      let spec =
        Sim.Netsim.Run.make ~config ~faults sc.Gen.graph ~hw:sc.Gen.hw
          ~mix:sc.Gen.mix
      in
      let checked = Sim.Netsim.execute spec in
      let plain =
        Sim.Netsim.execute
          (Sim.Netsim.Run.with_config spec
             { config with check_invariants = false })
      in
      let json m =
        Sim.Telemetry.Json.to_string (Sim.Netsim.measurement_to_json m)
      in
      (match checked.Sim.Netsim.invariants with
      | None -> QCheck.Test.fail_reportf "checker was on but report is missing"
      | Some report ->
        Sim.Invariants.ok report
        ||
        let v = List.hd report.Sim.Invariants.violations in
        QCheck.Test.fail_reportf "%d violation(s), first: %s"
          report.Sim.Invariants.total_violations
          (Format.asprintf "%a" Sim.Invariants.pp_violation v))
      && (json checked = json plain
         || QCheck.Test.fail_reportf "checking changed the measurement JSON"))

(* ---- routing residual mass ------------------------------------------- *)

(* Audit property for the per-packet routing draw: fraction vectors
   whose cumulative float sums misbehave — subnormals next to 1.0,
   zero branches, sums that need rounding — must never let a draw fall
   off the end of the cumulative table. Every packet keeps a real
   route (all conservation laws hold with the checker on) and no NaN
   leaks into the measurement. *)
let pathological_fractions =
  [
    [ 1e-300; 1e-300; 1.0 ];
    [ 1.0; 1e-300 ];
    [ 0.; 1e-300; 1.0 ];
    [ 0.1; 0.1; 0.1 ];
    [ 1e-17; 1.0; 1e-17 ];
    [ 0.3; 0.3; 0.4 ];
    [ 4e-324; 1.0 ];
  ]

let routing_residual_mass ~count =
  QCheck.Test.make ~count
    ~name:"netsim: routing draw never falls off the cumulative table"
    (arb
       (QCheck.Gen.pair
          (QCheck.Gen.oneofl pathological_fractions)
          (QCheck.Gen.int_range 1 1000))
       ~print:(fun (fs, seed) ->
         Printf.sprintf "seed %d [%s]" seed
           (String.concat "; " (List.map (Printf.sprintf "%h") fs))))
    (fun (fractions, seed) ->
      let svc t = G.service ~throughput:t () in
      let g = G.empty in
      let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc 25e9) g in
      let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc 25e9) g in
      let g, _ =
        List.fold_left
          (fun (g, k) delta ->
            let g, v =
              G.add_vertex ~kind:G.Ip
                ~label:(Printf.sprintf "branch%d" k)
                ~service:(svc 5e9) g
            in
            let g = G.add_edge ~delta ~src:i ~dst:v g in
            (G.add_edge ~src:v ~dst:e g, k + 1))
          (g, 0) fractions
      in
      let hw = Lognic.Params.hardware ~bw_interface:1e12 ~bw_memory:1e12 in
      let traffic = Lognic.Traffic.make ~rate:1e9 ~packet_size:1000. in
      let config =
        Sim.Netsim.Config.(
          default |> with_seed seed |> with_horizon 2e-3
          |> with_invariants true)
      in
      let m = Sim.Netsim.execute (Sim.Netsim.Run.single ~config g ~hw ~traffic) in
      let invariants_ok =
        match m.Sim.Netsim.invariants with
        | None -> QCheck.Test.fail_reportf "checker was on but report is missing"
        | Some report ->
          Sim.Invariants.ok report
          ||
          let v = List.hd report.Sim.Invariants.violations in
          QCheck.Test.fail_reportf "%d violation(s), first: %s"
            report.Sim.Invariants.total_violations
            (Format.asprintf "%a" Sim.Invariants.pp_violation v)
      in
      let rec all_finite = function
        | Sim.Telemetry.Json.Num x -> Float.is_finite x
        | Sim.Telemetry.Json.Obj kvs ->
          List.for_all (fun (_, v) -> all_finite v) kvs
        | Sim.Telemetry.Json.Arr vs -> List.for_all all_finite vs
        | _ -> true
      in
      invariants_ok
      && (m.Sim.Netsim.summary.Sim.Telemetry.delivered_packets > 0
         || QCheck.Test.fail_reportf "no packet survived the split")
      && (all_finite (Sim.Netsim.measurement_to_json m)
         || QCheck.Test.fail_reportf
              "non-finite number leaked into the measurement JSON"))

(* ---- traffic mixes and contention ------------------------------------ *)

let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let fail_bits ~what expected actual =
  same_bits expected actual
  || QCheck.Test.fail_reportf "%s: expected %h, got %h (not bit-identical)"
       what expected actual

(* Tentpole regression guard: pushing one class through the joint
   multi-class machinery is the single-class model, bit for bit — the
   shares all collapse to exactly 1 and every scaling step is skipped. *)
let mix_single_class_limit ~count =
  QCheck.Test.make ~count
    ~name:"mix: one-class mix is bit-identical to the single-class model"
    (arb Gen.wild ~print:(fun s -> s.Gen.label))
    (fun sc ->
      let traffic = fst (List.hd sc.Gen.mix) in
      let solo = Lognic.Estimate.run sc.Gen.graph ~hw:sc.Gen.hw ~traffic in
      let joint =
        Lognic.Estimate.run_mix sc.Gen.graph ~hw:sc.Gen.hw
          ~mix:[ (traffic, 1.) ]
      in
      let _, _, tp, lat = List.hd joint.Lognic.Extensions.classes in
      fail_bits ~what:"capacity" solo.Lognic.Estimate.throughput.Lognic.Throughput.capacity
        tp.Lognic.Throughput.capacity
      && fail_bits ~what:"attained" solo.Lognic.Estimate.throughput.Lognic.Throughput.attained
           tp.Lognic.Throughput.attained
      && fail_bits ~what:"mean latency" solo.Lognic.Estimate.latency.Lognic.Latency.mean
           lat.Lognic.Latency.mean
      && fail_bits ~what:"carried rate" solo.Lognic.Estimate.latency.Lognic.Latency.carried_rate
           lat.Lognic.Latency.carried_rate
      && fail_bits ~what:"aggregate throughput"
           solo.Lognic.Estimate.throughput.Lognic.Throughput.attained
           joint.Lognic.Extensions.throughput
      && fail_bits ~what:"aggregate latency" solo.Lognic.Estimate.latency.Lognic.Latency.mean
           joint.Lognic.Extensions.latency)

(* Drop the per-class summary field — the only place the class split
   is allowed to show — and demand the rest of the measurement byte
   over byte. *)
let rec strip_per_class = function
  | Sim.Telemetry.Json.Obj kvs ->
    Sim.Telemetry.Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "per_class" then None else Some (k, strip_per_class v))
         kvs)
  | Sim.Telemetry.Json.Arr vs -> Sim.Telemetry.Json.Arr (List.map strip_per_class vs)
  | other -> other

(* Splitting one class into two identical copies at rate/2 changes
   which class index each packet carries and nothing else: the
   generator draws the same arrival stream (r/2 + r/2 = r is exact)
   and every packet has the same size, so the measurement JSON minus
   [per_class] must be byte-identical — at any jobs count — and the
   model aggregates must collapse bit-exactly.  (Only the halving
   split is float-exact end to end: r/N for N not a power of two
   rounds, and even N = 4 hits 3/4·r partial sums whose significand
   needs two extra bits.) *)
let mix_identical_classes_collapse ~count =
  QCheck.Test.make ~count
    ~name:"mix: two identical half-rate classes are byte-identical to the merged class"
    (arb Gen.low_load_chain ~print:(fun s -> Printf.sprintf "%s halved" s.Gen.label))
    (fun sc ->
      let merged = fst (List.hd sc.Gen.mix) in
      let part =
        { merged with Lognic.Traffic.rate = merged.Lognic.Traffic.rate /. 2. }
      in
      let split = [ (part, 1.); (part, 1.) ] in
      (* model side: aggregates collapse bit-exactly *)
      let a = Lognic.Estimate.run_mix sc.Gen.graph ~hw:sc.Gen.hw ~mix:[ (merged, 1.) ] in
      let b = Lognic.Estimate.run_mix sc.Gen.graph ~hw:sc.Gen.hw ~mix:split in
      fail_bits ~what:"aggregate throughput" a.Lognic.Extensions.throughput
        b.Lognic.Extensions.throughput
      && fail_bits ~what:"aggregate latency" a.Lognic.Extensions.latency
           b.Lognic.Extensions.latency
      &&
      (* sim side: identical event stream, so the stripped measurement
         JSON is byte-identical *)
      let config =
        Sim.Netsim.Config.(default |> with_horizon 2e-3)
      in
      let json mix =
        Sim.Telemetry.Json.to_string
          (strip_per_class
             (Sim.Netsim.measurement_to_json
                (Sim.Netsim.run ~config sc.Gen.graph ~hw:sc.Gen.hw ~mix)))
      in
      (json [ (merged, 1.) ] = json split
      || QCheck.Test.fail_reportf "split mix changed the measurement JSON")
      &&
      (* and the split spec stays bit-identical across jobs counts *)
      let spec =
        Sim.Netsim.Run.make ~config sc.Gen.graph ~hw:sc.Gen.hw ~mix:split
      in
      Sim.Parallel.execute_replicated ~jobs:1 ~runs:2 spec
      = Sim.Parallel.execute_replicated ~jobs:4 ~runs:2 spec
      || QCheck.Test.fail_reportf "split mix diverges across jobs")

(* The joint evaluation must not care how the class list is ordered:
   same classes, same weights, permuted — same per-class results and
   (up to summation order) the same aggregates. *)
let mix_permutation_invariant ~count =
  QCheck.Test.make ~count
    ~name:"mix: class order does not change the joint evaluation"
    (arb Gen.low_load_mix_chain ~print:(fun s -> s.Gen.label))
    (fun sc ->
      let rev = List.rev sc.Gen.mix in
      let a = Lognic.Estimate.run_mix sc.Gen.graph ~hw:sc.Gen.hw ~mix:sc.Gen.mix in
      let b = Lognic.Estimate.run_mix sc.Gen.graph ~hw:sc.Gen.hw ~mix:rev in
      let tol = 1e-9 in
      fail_close ~tol ~what:"aggregate throughput" a.Lognic.Extensions.throughput
        b.Lognic.Extensions.throughput
      && fail_close ~tol ~what:"aggregate latency" a.Lognic.Extensions.latency
           b.Lognic.Extensions.latency
      && List.for_all2
           (fun (_, _, tp1, lat1) (_, _, tp2, lat2) ->
             fail_close ~tol ~what:"class capacity" tp1.Lognic.Throughput.capacity
               tp2.Lognic.Throughput.capacity
             && fail_close ~tol ~what:"class latency" lat1.Lognic.Latency.mean
                  lat2.Lognic.Latency.mean)
           a.Lognic.Extensions.classes
           (List.rev b.Lognic.Extensions.classes))

(* Contention monotonicity: a co-located aggressor can only take shared
   bytes and add slowdown — the victim's capacity and attained rate
   never improve over running alone. *)
let contention_monotonic ~count =
  QCheck.Test.make ~count
    ~name:"contention: adding a class never raises another's capacity"
    (arb
       (QCheck.Gen.quad Gen.low_load_mix_chain
          (QCheck.Gen.oneofl [ 0.5; 1.; 2. ])
          (QCheck.Gen.oneofl [ 0.5; 1.; 2. ])
          (QCheck.Gen.oneofl [ 0.; 0.5; 1. ]))
       ~print:(fun (s, d0, d1, m) ->
         Printf.sprintf "%s d0=%g d1=%g M01=%g" s.Gen.label d0 d1 m))
    (fun (sc, d0, d1, m01) ->
      let hw = Lognic.Params.with_resources sc.Gen.hw [ ("shared", 5e7) ] in
      let victim, aggressor =
        match sc.Gen.mix with
        | [ a; b ] -> (a, b)
        | _ -> assert false
      in
      let solo =
        Lognic.Estimate.run_mix sc.Gen.graph ~hw
          ~contention:
            (Lognic.Extensions.contention
               ~demands:[ [ ("shared", d0) ] ]
               ~interference:[| [| 0. |] |])
          ~mix:[ victim ]
      in
      let pair =
        Lognic.Estimate.run_mix sc.Gen.graph ~hw
          ~contention:
            (Lognic.Extensions.contention
               ~demands:[ [ ("shared", d0) ]; [ ("shared", d1) ] ]
               ~interference:[| [| 0.; m01 |]; [| 0.; 0. |] |])
          ~mix:[ victim; aggressor ]
      in
      let cap r =
        let _, _, tp, _ = List.hd r.Lognic.Extensions.classes in
        (tp.Lognic.Throughput.capacity, tp.Lognic.Throughput.attained)
      in
      let solo_cap, solo_att = cap solo and pair_cap, pair_att = cap pair in
      (pair_cap <= solo_cap
      || QCheck.Test.fail_reportf "capacity rose: alone %.12g, contended %.12g"
           solo_cap pair_cap)
      && (pair_att <= solo_att
         || QCheck.Test.fail_reportf
              "attained rose: alone %.12g, contended %.12g" solo_att pair_att))

(* The acceptance bar for the joint model: at low load, per-class mean
   latency from the joint evaluation tracks the simulator's per-class
   measurement within 5%. *)
let mix_low_load_latency ~count =
  QCheck.Test.make ~count
    ~name:"model-vs-sim: two-class low-load per-class latency within 5%"
    (arb Gen.low_load_mix_chain ~print:(fun s -> s.Gen.label))
    (fun sc ->
      let model =
        Lognic.Estimate.run_mix ~queue_model:Lognic.Latency.No_queueing
          sc.Gen.graph ~hw:sc.Gen.hw ~mix:sc.Gen.mix
      in
      let m =
        Sim.Netsim.run ~config:low_load_config sc.Gen.graph ~hw:sc.Gen.hw
          ~mix:sc.Gen.mix
      in
      let per_class = m.Sim.Netsim.summary.Sim.Telemetry.per_class in
      List.for_all2
        (fun (_, _, _, lat) (klass, delivered, sim_mean) ->
          delivered > 0
          && fail_close ~tol:0.05
               ~what:(Printf.sprintf "class %d mean latency" klass)
               lat.Lognic.Latency.mean sim_mean)
        model.Lognic.Extensions.classes per_class)

(* ---- multi-tenant SR-IOV --------------------------------------------- *)

module T = Sim.Tenant

let tenant_print specs =
  String.concat ","
    (List.map
       (fun (s : T.spec) ->
         Printf.sprintf "%s:%d:%g%s" s.T.name s.T.weight s.T.share
           (match s.T.slo_p99 with
           | None -> ""
           | Some x -> Printf.sprintf ":%g" x))
       specs)

let scenario_and_tenants =
  arb
    (QCheck.Gen.pair Gen.wild Gen.tenant_specs)
    ~print:(fun (sc, specs) -> sc.Gen.label ^ " [" ^ tenant_print specs ^ "]")

let tenant_config tset =
  Sim.Netsim.Config.(
    default |> with_horizon ~warmup:2e-4 2e-3 |> with_tenants tset)

let tenant_measure sc config =
  Sim.Netsim.execute
    (Sim.Netsim.Run.make ~config sc.Gen.graph ~hw:sc.Gen.hw ~mix:sc.Gen.mix)

let measurement_json m =
  Sim.Telemetry.Json.to_string (Sim.Netsim.measurement_to_json m)

let tenants_json m =
  match m.Sim.Netsim.tenants with
  | None -> "ABSENT"
  | Some stats -> Sim.Telemetry.Json.to_string (T.stats_to_json stats)

(* [Tenant.set] canonicalizes by name, so two permutations of the same
   tenant list must configure byte-identical runs — measurement JSON
   and per-tenant stats JSON both. *)
let tenant_order_invariant ~count =
  QCheck.Test.make ~count ~name:"tenants: spec order never changes results"
    scenario_and_tenants
    (fun (sc, specs) ->
      let run specs =
        let m = tenant_measure sc (tenant_config (T.set specs)) in
        (measurement_json m, tenants_json m)
      in
      run specs = run (List.rev specs)
      || QCheck.Test.fail_reportf "permuted tenant specs changed the run")

(* One tenant means no arbitration decisions to make: the run must be
   byte-identical to the untenanted baseline (the tenanted scheduler
   and the tenant rng split both switch on at two tenants). *)
let tenant_single_identity ~count =
  QCheck.Test.make ~count
    ~name:"tenants: single tenant is byte-identical to untenanted"
    scenario_and_tenants
    (fun (sc, specs) ->
      let solo = tenant_config (T.set [ List.hd specs ]) in
      let bare = Sim.Netsim.Config.(default |> with_horizon ~warmup:2e-4 2e-3) in
      measurement_json (tenant_measure sc solo)
      = measurement_json (tenant_measure sc bare)
      || QCheck.Test.fail_reportf
           "single-tenant measurement JSON diverged from the untenanted run")

(* Saturate one node with equal offered shares and random weights:
   every tenant stays backlogged, so the stage-1 WRR must deliver
   packets in proportion to weight, and the weighted max-min index must
   sit near 1. Delivery is counted by birth time, so the window must
   dwarf the slowest tenant's queue sojourn (its last-born in-window
   packets complete after the horizon otherwise): 16 queued packets at
   the minimum weighted rate ≈ 0.8 ms against a 19 ms window keeps
   that truncation bias under the tolerance. *)
let tenant_wrr_fairness ~count =
  QCheck.Test.make ~count
    ~name:"tenants: saturated WRR delivers weight-proportional shares"
    (arb Gen.tenant_specs ~print:tenant_print)
    (fun specs ->
      let specs =
        List.map (fun (s : T.spec) -> T.spec ~weight:s.T.weight s.T.name) specs
      in
      let tset = T.set specs in
      let graph =
        Gen.single_node_graph ~parallelism:1 ~queue_capacity:16 ~throughput:1e9
      in
      let hw = Lognic.Params.hardware ~bw_interface:1e12 ~bw_memory:1e12 in
      let traffic = Lognic.Traffic.make ~rate:3e9 ~packet_size:1000. in
      let config =
        Sim.Netsim.Config.(
          default |> with_horizon ~warmup:1e-3 2e-2 |> with_tenants tset)
      in
      let m = Sim.Netsim.run_single ~config graph ~hw ~traffic in
      match m.Sim.Netsim.tenants with
      | None -> QCheck.Test.fail_reportf "tenanted run reported no tenant stats"
      | Some stats ->
        let per_weight =
          Array.map
            (fun (r : T.row) ->
              float_of_int r.T.r_delivered /. float_of_int r.T.r_weight)
            stats.T.rows
        in
        let mx = Array.fold_left Float.max 0. per_weight in
        let mn = Array.fold_left Float.min infinity per_weight in
        let spread = (mx -. mn) /. mx in
        let maxmin = stats.T.t_fairness.T.maxmin_ratio in
        (spread <= 0.15 && maxmin >= 0.85)
        || QCheck.Test.fail_reportf
             "unfair at saturation: weight-normalized delivery spread %.1f%%, \
              max-min ratio %.3f"
             (spread *. 100.) maxmin)

(* The tenanted scheduler and attribution must preserve the determinism
   contract that domain-parallel replication relies on. *)
let tenant_jobs_bit_identical ~count =
  QCheck.Test.make ~count
    ~name:"tenants: --jobs 1 and --jobs 4 are bit-identical"
    scenario_and_tenants
    (fun (sc, specs) ->
      let spec =
        Sim.Netsim.Run.make
          ~config:(tenant_config (T.set specs))
          sc.Gen.graph ~hw:sc.Gen.hw ~mix:sc.Gen.mix
      in
      let a = Sim.Parallel.execute_replicated ~jobs:1 ~runs:3 spec in
      let b = Sim.Parallel.execute_replicated ~jobs:4 ~runs:3 spec in
      a = b
      || QCheck.Test.fail_reportf
           "tenanted replicated results diverge across jobs")

(* ---- flow-cache feedback splits -------------------------------------- *)

module FC = Lognic.Flowcache
module FApp = Lognic_apps.Flow_cache

(* Small cache/population sizes: the sim's cold-start fill time scales
   with table capacity, so tiny tables reach steady state within the
   short horizons a property suite can afford. *)
let fc_spec_gen st =
  let flows = QCheck.Gen.int_range 512 4096 st in
  let zipf = QCheck.Gen.float_range 0.2 1.3 st in
  let emc = QCheck.Gen.int_range 16 128 st in
  let megaflow = QCheck.Gen.int_range 128 1024 st in
  let ttl =
    if QCheck.Gen.bool st then Some (QCheck.Gen.float_range 1e-5 1e-2 st)
    else None
  in
  FC.spec ?ttl ~zipf ~emc_entries:emc ~megaflow_entries:megaflow ~flows ()

let fc_spec_print (s : FC.spec) =
  Printf.sprintf "flows=%d zipf=%g emc=%d mega=%d ttl=%s" s.FC.flows s.FC.zipf
    s.FC.emc_entries s.FC.megaflow_entries
    (match s.FC.ttl with None -> "-" | Some t -> Printf.sprintf "%g" t)

(* The damped fixed point must land on the same hit ratios from any
   interior starting guess — if two starts disagree, the "solution" is
   an artifact of the seed, not a fixed point. *)
let flowcache_fixed_point_converges ~count =
  QCheck.Test.make ~count
    ~name:"flowcache: fixed point converges from any start"
    (arb
       (QCheck.Gen.pair fc_spec_gen
          (QCheck.Gen.pair
             (QCheck.Gen.float_range 0.01 0.99)
             (QCheck.Gen.float_range 0.01 0.99)))
       ~print:(fun (s, (a, b)) ->
         Printf.sprintf "%s init=[%g;%g]" (fc_spec_print s) a b))
    (fun (spec, (i0, i1)) ->
      let g = FApp.graph FApp.default in
      let hw = FApp.hardware and traffic = FApp.traffic FApp.default in
      let r = FC.evaluate ~init:[| i0; i1 |] spec g ~hw ~traffic in
      let r' = FC.evaluate spec g ~hw ~traffic in
      (r.FC.converged
      || QCheck.Test.fail_reportf "no convergence from init [%g; %g]" i0 i1)
      && (r'.FC.converged
         || QCheck.Test.fail_reportf "no convergence from the default init")
      && r.FC.emc_hit_ratio >= 0.
      && r.FC.emc_hit_ratio <= 1.
      && r.FC.megaflow_hit_ratio >= 0.
      && r.FC.megaflow_hit_ratio <= 1.
      && fail_close ~tol:1e-6 ~what:"emc hit ratio (init independence)"
           r'.FC.emc_hit_ratio r.FC.emc_hit_ratio
      && fail_close ~tol:1e-6 ~what:"megaflow hit ratio (init independence)"
           r'.FC.megaflow_hit_ratio r.FC.megaflow_hit_ratio)

(* Without a TTL the hit ratios are rate-independent, so the feedback
   machinery must collapse to a plain static split: rewriting the graph
   once with the converged ratios and running the ordinary estimator
   reproduces the fixed point's report bit for bit. *)
let flowcache_collapse_static ~count =
  QCheck.Test.make ~count
    ~name:"flowcache: no-TTL fixed point = static split, bit for bit"
    (arb fc_spec_gen ~print:fc_spec_print)
    (fun spec ->
      let spec = { spec with FC.ttl = None } in
      let g = FApp.graph FApp.default in
      let hw = FApp.hardware and traffic = FApp.traffic FApp.default in
      let r = FC.evaluate spec g ~hw ~traffic in
      let static =
        let v label =
          match G.find_vertex g ~label with
          | Some v -> v.G.id
          | None -> QCheck.Test.fail_reportf "scenario lost vertex %S" label
        in
        let h = r.FC.emc_hit_ratio and hm = r.FC.megaflow_hit_ratio in
        let g = G.scale_out_split g (v spec.FC.emc_label) [ h; 1. -. h ] in
        G.scale_out_split g (v spec.FC.megaflow_label) [ hm; 1. -. hm ]
      in
      let s = Lognic.Estimate.run static ~hw ~traffic in
      fail_bits ~what:"attained throughput"
        s.Lognic.Estimate.throughput.Lognic.Throughput.attained
        r.FC.throughput.Lognic.Throughput.attained
      && fail_bits ~what:"capacity"
           s.Lognic.Estimate.throughput.Lognic.Throughput.capacity
           r.FC.throughput.Lognic.Throughput.capacity
      && fail_bits ~what:"mean latency"
           s.Lognic.Estimate.latency.Lognic.Latency.mean
           r.FC.latency.Lognic.Latency.mean
      && fail_bits ~what:"carried rate"
           s.Lognic.Estimate.latency.Lognic.Latency.carried_rate
           r.FC.latency.Lognic.Latency.carried_rate)

(* Per-packet lookup-driven routing must preserve the determinism
   contract domain-parallel replication relies on. *)
let flowcache_jobs_bit_identical ~count =
  QCheck.Test.make ~count
    ~name:"flowcache: --jobs 1 and --jobs 4 are bit-identical"
    (arb fc_spec_gen ~print:fc_spec_print)
    (fun spec_fc ->
      let config =
        Sim.Netsim.Config.(
          default |> with_horizon ~warmup:2e-4 2e-3 |> with_flow_cache spec_fc)
      in
      let spec =
        Sim.Netsim.Run.make ~config (FApp.graph FApp.default)
          ~hw:FApp.hardware
          ~mix:[ (FApp.traffic FApp.default, 1.) ]
      in
      let a = Sim.Parallel.execute_replicated ~jobs:1 ~runs:3 spec in
      let b = Sim.Parallel.execute_replicated ~jobs:4 ~runs:3 spec in
      a = b
      || QCheck.Test.fail_reportf
           "flow-cache replicated results diverge across jobs")

(* Setting and then clearing the flow cache must leave no residue: the
   round-tripped config runs byte-identical to the untouched baseline
   (the flow rng splits only when the cache is configured, so a clean
   [without_flow_cache] restores every stream). *)
let flowcache_off_identity ~count =
  QCheck.Test.make ~count
    ~name:"flowcache: disabled config is byte-identical to baseline"
    (arb
       (QCheck.Gen.pair Gen.wild fc_spec_gen)
       ~print:(fun (sc, s) -> sc.Gen.label ^ " " ^ fc_spec_print s))
    (fun (sc, spec_fc) ->
      let base =
        Sim.Netsim.Config.(default |> with_horizon ~warmup:2e-4 2e-3)
      in
      let round_trip =
        Sim.Netsim.Config.(base |> with_flow_cache spec_fc |> without_flow_cache)
      in
      measurement_json (tenant_measure sc base)
      = measurement_json (tenant_measure sc round_trip)
      || QCheck.Test.fail_reportf
           "flow-cache round-tripped config perturbed the run")

(* ---- colon-spec grammar round trip ----------------------------------- *)

(* [Spec.render] documents itself as the inverse of [Spec.parse]; check
   it over the tenant grammar's shape (required Str/Int plus optional
   Float tail) with every optional-suffix length. *)
let spec_round_trip ~count =
  let module Sp = Sim.Spec in
  let grammar =
    Sp.grammar ~flag:"tenant"
      [
        Sp.field "NAME" Sp.Str;
        Sp.field "WEIGHT" Sp.Int;
        Sp.field ~optional:true "SHARE" Sp.Float;
        Sp.field ~optional:true "SLO" Sp.Float;
      ]
  in
  let values_gen st =
    let name = QCheck.Gen.oneofl (Array.to_list Gen.tenant_names) st in
    let weight = QCheck.Gen.int_range 1 99 st in
    let fl () = QCheck.Gen.oneofl [ 0.5; 1.; 2.; 4.; 0.125; 1e-3 ] st in
    match QCheck.Gen.int_range 0 2 st with
    | 0 -> [| Sp.S name; Sp.I weight |]
    | 1 -> [| Sp.S name; Sp.I weight; Sp.F (fl ()) |]
    | _ -> [| Sp.S name; Sp.I weight; Sp.F (fl ()); Sp.F (fl ()) |]
  in
  QCheck.Test.make ~count ~name:"spec: render . parse = id"
    (arb values_gen ~print:(fun v -> Sp.render grammar v))
    (fun v ->
      let s = Sp.render grammar v in
      match Sp.parse grammar s with
      | Error e -> QCheck.Test.fail_reportf "rendered spec %S rejected: %s" s e
      | Ok v' ->
        v = v'
        || QCheck.Test.fail_reportf "round trip changed %S to %S" s
             (Sp.render grammar v'))

(* ---- suite ----------------------------------------------------------- *)

(* [scale] multiplies each property's base case count, so callers can
   run a quick smoke (scale < 1) or a deep soak (scale > 1) from the
   same definitions. Sim-heavy properties get smaller bases. *)
(* ---- calendar queue vs reference binary heap ------------------------ *)

(* The calendar queue that now backs [Lognic_sim.Event_queue] must pop
   the exact lexicographic (time, seq) minimum — bit-identical to the
   binary heap it replaced (kept verbatim in [Heap_ref]).  Random op
   sequences mix tie storms (integer times), near-uniform floats, huge
   and negative magnitudes (exercising bucket-index clamping and
   resizes), horizon-bounded pops right on the boundary, and [clear]
   (reuse, vs a fresh heap). *)
let queue_time_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map float_of_int (QCheck.Gen.int_range 0 4);
      QCheck.Gen.map
        (fun i -> float_of_int i *. 0.125)
        (QCheck.Gen.int_range 0 160);
      QCheck.Gen.float_range 0. 1e-3;
      QCheck.Gen.oneofl
        [ 0.; 1e-12; 1.; 1e9; 4.2e15; 1e300; infinity; -1.; -1e9; -1e300 ];
    ]

let queue_op_gen =
  QCheck.Gen.frequency
    [
      (4, QCheck.Gen.map (fun t -> `Push t) queue_time_gen);
      (2, QCheck.Gen.return `Pop);
      (2, QCheck.Gen.map (fun h -> `Pop_before h) queue_time_gen);
      (1, QCheck.Gen.return `Peek);
      (1, QCheck.Gen.return `Clear);
    ]

let queue_ops_gen =
  QCheck.Gen.list_size (QCheck.Gen.int_range 0 500) queue_op_gen

let queue_op_print = function
  | `Push t -> Printf.sprintf "push %h" t
  | `Pop -> "pop"
  | `Pop_before h -> Printf.sprintf "pop_before %h" h
  | `Peek -> "peek"
  | `Clear -> "clear"

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let calendar_matches_heap ~count =
  QCheck.Test.make ~count
    ~name:"event queue: calendar pop order = reference binary heap"
    (arb
       ~print:(fun ops -> String.concat "; " (List.map queue_op_print ops))
       queue_ops_gen)
    (fun ops ->
      let cq = Sim.Event_queue.create () in
      let heap = ref (Heap_ref.create ()) in
      let payload = ref 0 in
      let fail op what =
        QCheck.Test.fail_reportf "%s: calendar %s reference heap"
          (queue_op_print op) what
      in
      let check op a b =
        match (a, b) with
        | None, None -> ()
        | Some (t1, p1), Some (t2, p2) when same_float t1 t2 && p1 = p2 -> ()
        | _, _ -> fail op "disagrees with"
      in
      List.iter
        (fun op ->
          (match op with
          | `Push t ->
            incr payload;
            Sim.Event_queue.push cq ~time:t !payload;
            Heap_ref.push !heap ~time:t !payload
          | `Pop -> check op (Sim.Event_queue.pop cq) (Heap_ref.pop !heap)
          | `Pop_before h ->
            check op
              (Sim.Event_queue.pop_if_before cq ~horizon:h)
              (Heap_ref.pop_if_before !heap ~horizon:h)
          | `Peek ->
            (match
               (Sim.Event_queue.peek_time cq, Heap_ref.peek_time !heap)
             with
            | None, None -> ()
            | Some a, Some b when same_float a b -> ()
            | _ -> fail op "peeks differently from")
          | `Clear ->
            Sim.Event_queue.clear cq;
            heap := Heap_ref.create ());
          if Sim.Event_queue.size cq <> Heap_ref.size !heap then
            fail op "sizes diverge after")
        ops;
      (* drain both completely: every queued event must come out in the
         same order *)
      let rec drain () =
        let a = Sim.Event_queue.pop cq and b = Heap_ref.pop !heap in
        match (a, b) with
        | None, None -> true
        | _ ->
          check `Pop a b;
          drain ()
      in
      drain ())

let suite ?(scale = 1.) () =
  let n base = max 1 (int_of_float (Float.round (float_of_int base *. scale))) in
  [
    dsl_round_trip ~count:(n 500);
    mm1n_limit_is_mm1 ~count:(n 300);
    mg1_exponential_is_mm1 ~count:(n 300);
    mm1n_closed_form_near_saturation ~count:(n 300);
    model_vs_sim_latency ~count:(n 20);
    model_vs_sim_throughput ~count:(n 20);
    jobs_bit_identical ~count:(n 6);
    littles_law_vs_sim ~count:(n 6);
    mm1n_vs_sim_sojourn ~count:(n 6);
    run_wrapper_equivalence ~count:(n 10);
    invariants_hold_everywhere ~count:(n 20);
    routing_residual_mass ~count:(n 20);
    calendar_matches_heap ~count:(n 500);
    mix_single_class_limit ~count:(n 50);
    mix_identical_classes_collapse ~count:(n 6);
    mix_permutation_invariant ~count:(n 100);
    contention_monotonic ~count:(n 100);
    mix_low_load_latency ~count:(n 6);
    tenant_order_invariant ~count:(n 6);
    tenant_single_identity ~count:(n 6);
    tenant_wrr_fairness ~count:(n 6);
    tenant_jobs_bit_identical ~count:(n 4);
    flowcache_fixed_point_converges ~count:(n 20);
    flowcache_collapse_static ~count:(n 20);
    flowcache_jobs_bit_identical ~count:(n 3);
    flowcache_off_identity ~count:(n 4);
    spec_round_trip ~count:(n 300);
  ]
