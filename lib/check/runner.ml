(* Deterministic, embeddable property runner: the CLI and the test
   suite both need to run QCheck tests from a fixed seed and get
   structured outcomes back (not process exits), so this wraps
   [QCheck.Test.check_exn] with its own rng and catches failures. *)

type outcome = {
  name : string;
  passed : bool;
  message : string option;  (** failure report; [None] when passed *)
}

let test_name (QCheck2.Test.Test cell) = QCheck.Test.get_name cell

let run_test ~seed test =
  let name = test_name test in
  match
    QCheck.Test.check_exn ~rand:(Random.State.make [| seed |]) test
  with
  | () -> { name; passed = true; message = None }
  | exception e -> { name; passed = false; message = Some (Printexc.to_string e) }

let run ?(seed = 42) tests = List.map (run_test ~seed) tests

let all_passed outcomes = List.for_all (fun o -> o.passed) outcomes

let outcome_to_json o =
  let module J = Lognic_sim.Telemetry.Json in
  J.Obj
    [
      ("name", J.Str o.name);
      ("passed", J.Bool o.passed);
      ("message", match o.message with None -> J.Null | Some m -> J.Str m);
    ]

let pp_outcome ppf o =
  match o.message with
  | None -> Format.fprintf ppf "PASS %s" o.name
  | Some m -> Format.fprintf ppf "FAIL %s@,  %s" o.name m
