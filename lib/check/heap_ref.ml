(* The pre-overhaul struct-of-arrays binary heap, kept verbatim as the
   differential-testing oracle for the calendar queue that replaced it
   in Lognic_sim.Event_queue: Props checks the two agree event-by-event
   on random workloads (tie storms, horizon boundaries included). *)

(* Struct-of-arrays binary heap: times live in an unboxed float array
   and tie-breaking sequence numbers in an int array, so the sift
   comparisons on the simulator's hottest path never chase a pointer.
   Payloads sit in a parallel ['a option array]; moving the [Some] cell
   itself means one 2-word allocation per push (the cell) and none per
   sift step — the old per-push 4-field entry record is gone. Popped
   and vacated slots are reset to [None] so a completed event's payload
   (often a closure capturing packets and nodes) is collectable
   immediately instead of being retained at [heap.(len)] until the slot
   is overwritten. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : 'a option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

let grow t =
  let capacity = Array.length t.times in
  if t.len = capacity then begin
    let bigger = max 16 (2 * capacity) in
    let times = Array.make bigger 0. in
    let seqs = Array.make bigger 0 in
    let payloads = Array.make bigger None in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.seqs 0 seqs 0 t.len;
    Array.blit t.payloads 0 payloads 0 t.len;
    t.times <- times;
    t.seqs <- seqs;
    t.payloads <- payloads
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let cell = Some payload in
  let times = t.times and seqs = t.seqs and payloads = t.payloads in
  (* Sift up a hole: parents slide down, the new entry is written once. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let placed = ref false in
  while not !placed do
    if !i = 0 then placed := true
    else begin
      let parent = (!i - 1) / 2 in
      if time < times.(parent) || (time = times.(parent) && seq < seqs.(parent))
      then begin
        times.(!i) <- times.(parent);
        seqs.(!i) <- seqs.(parent);
        payloads.(!i) <- payloads.(parent);
        i := parent
      end
      else placed := true
    end
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  payloads.(!i) <- cell

(* Move the last entry into the hole at the root and sift it down. *)
let remove_root t =
  let last = t.len - 1 in
  t.len <- last;
  if last = 0 then t.payloads.(0) <- None
  else begin
    let times = t.times and seqs = t.seqs and payloads = t.payloads in
    let time = times.(last) and seq = seqs.(last) in
    let cell = payloads.(last) in
    payloads.(last) <- None;
    let i = ref 0 in
    let placed = ref false in
    while not !placed do
      let left = (2 * !i) + 1 in
      if left >= last then placed := true
      else begin
        let right = left + 1 in
        let child =
          if
            right < last
            && (times.(right) < times.(left)
               || (times.(right) = times.(left) && seqs.(right) < seqs.(left)))
          then right
          else left
        in
        if
          times.(child) < time || (times.(child) = time && seqs.(child) < seq)
        then begin
          times.(!i) <- times.(child);
          seqs.(!i) <- seqs.(child);
          payloads.(!i) <- payloads.(child);
          i := child
        end
        else placed := true
      end
    done;
    times.(!i) <- time;
    seqs.(!i) <- seq;
    payloads.(!i) <- cell
  end

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    let payload = t.payloads.(0) in
    remove_root t;
    match payload with
    | Some p -> Some (time, p)
    | None -> assert false
  end

let pop_if_before t ~horizon =
  if t.len = 0 || t.times.(0) > horizon then None
  else begin
    let time = t.times.(0) in
    let payload = t.payloads.(0) in
    remove_root t;
    match payload with
    | Some p -> Some (time, p)
    | None -> assert false
  end

let peek_time t = if t.len = 0 then None else Some t.times.(0)
