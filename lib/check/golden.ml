(* Golden byte-identity scenarios for the simulator.

   Each scenario is a fully pinned [Netsim.Run.t] — fixed seed, fixed
   duration, fixed traffic — whose measurement JSON is captured once
   (test/golden/gen.exe writes the fixtures) and asserted byte-equal on
   every test run.  The fixtures in test/golden/*.json were generated
   with the pre-calendar-queue binary-heap engine, so they pin the
   engine overhaul to the exact event ordering, rng stream layout and
   float operation order of the original implementation: any change to
   pop order, draw order or summation order shows up as a one-byte
   diff.

   The set deliberately crosses the feature matrix: arrival processes
   (Poisson / Paced / Bursty), service distributions, multi-class
   mixes, overload (queue and buffer drops), sampling probes, and a
   fault plan (extra rng stream + per-packet bin accounting). *)

module Sim = Lognic_sim
module D = Lognic_devices
module T = Lognic.Traffic
module U = Lognic.Units

let config ?(seed = 7) ?(duration = 2e-3) ?sample_interval
    ?(service_dist = Sim.Ip_node.Exponential)
    ?(arrival = Sim.Traffic_gen.Poisson) () =
  let c =
    Sim.Netsim.Config.(
      default |> with_seed seed |> with_horizon duration
      |> with_service_dist service_dist
      |> with_arrival arrival)
  in
  match sample_interval with
  | None -> c
  | Some dt -> Sim.Netsim.Config.with_sampling dt c

let md5_graph () =
  D.Liquidio.inline_accel_graph ~spec:D.Accel_spec.md5 ~packet_size:U.mtu ()

let md5_traffic = T.make ~rate:D.Liquidio.line_rate ~packet_size:U.mtu

let scenarios () =
  [
    ( "md5-poisson-exp",
      Sim.Netsim.Run.single ~config:(config ()) (md5_graph ())
        ~hw:D.Liquidio.hardware ~traffic:md5_traffic );
    ( "md5-paced-det-sampled",
      Sim.Netsim.Run.single
        ~config:
          (config ~seed:3 ~sample_interval:1e-4
             ~service_dist:Sim.Ip_node.Deterministic
             ~arrival:Sim.Traffic_gen.Paced ())
        (md5_graph ()) ~hw:D.Liquidio.hardware ~traffic:md5_traffic );
    ( "md5-bursty-overload",
      Sim.Netsim.Run.single
        ~config:
          (config ~seed:5
             ~arrival:(Sim.Traffic_gen.Bursty { burstiness = 4.; mean_on = 2e-4 })
             ())
        (md5_graph ()) ~hw:D.Liquidio.hardware
        ~traffic:(T.make ~rate:(2. *. D.Liquidio.line_rate) ~packet_size:U.mtu) );
    ( "nvme-mix",
      Sim.Netsim.Run.make
        ~config:(config ~seed:11 ())
        (D.Stingray.nvme_of_graph ~io:D.Ssd.rrd_4k ())
        ~hw:D.Stingray.hardware
        ~mix:
          [
            (T.make ~rate:1.2e9 ~packet_size:(4. *. U.kib), 0.7);
            (T.make ~rate:3e8 ~packet_size:512., 0.3);
          ] );
    ( "md5-faults",
      Sim.Netsim.Run.single
        ~config:(config ~seed:9 ())
        ~faults:
          [
            Sim.Faults.engine_down ~vertex:"ip2.MD5" ~engines:1 ~start:5e-4
              ~stop:1e-3;
            Sim.Faults.medium_degraded ~medium:"interface" ~factor:0.5
              ~start:4e-4 ~stop:8e-4;
            Sim.Faults.drop_burst ~probability:0.25 ~start:1e-3 ~stop:1.4e-3;
          ]
        (md5_graph ()) ~hw:D.Liquidio.hardware ~traffic:md5_traffic );
  ]

let measurement_string run =
  Sim.Telemetry.Json.to_string
    (Sim.Netsim.measurement_to_json (Sim.Netsim.execute run))

(* Contended two-class workload, pinned end to end: the joint
   multi-class model with the multi-resource interference layer against
   a fixed-seed simulation, captured as the full contention-report JSON
   (per-class residuals, slowdowns, resource ceilings, ranked
   interference).  One fixture pins the model math and the report
   serialization together. *)
(* Pinned metrics stream: a fixed-seed run with the live registry
   ticking every 100 µs and an SLO rule that fires and resolves inside
   the window, captured as the concatenated NDJSON the [on_snapshot]
   sink emits.  The fixture pins the instrument catalog, sampling
   order, delta/rate arithmetic, alert transitions and the streaming
   serializer's byte output in one comparison. *)
let metrics_scenarios () =
  [
    ( "metrics-stream",
      fun () ->
        let buf = Buffer.create 65536 in
        let metrics =
            {
              Sim.Metrics.default_config with
              interval = 1e-4;
              slo =
                [
                  Sim.Metrics.Slo.parse_exn "*.utilization>0.5x2";
                  Sim.Metrics.Slo.parse_exn "run.dropped>0";
                ];
              on_snapshot =
                Some
                  (fun snap ->
                    Sim.Metrics.snapshot_to_buffer buf snap;
                    Buffer.add_char buf '\n');
            }
        in
        let config = Sim.Netsim.Config.with_metrics metrics (config ~seed:21 ()) in
        ignore
          (Sim.Netsim.run_single ~config (md5_graph ())
             ~hw:D.Liquidio.hardware ~traffic:md5_traffic);
        Buffer.contents buf );
  ]

(* Pinned multi-tenant run: 16 VFs — three differentiated tenants
   (weights, skewed shares, SLOs) plus a uniform background population —
   under moderate md5-workload load, captured as the versioned
   [kind:"tenants"] report JSON.  One fixture pins the hierarchical
   two-stage arbiter's grant order, the tenant rng stream layout, the
   per-VF attribution windowing, the fairness indices and the
   per-tenant analytic decomposition in a single byte comparison. *)
let tenant_scenarios () =
  [
    ( "tenants-md5-16vf",
      fun () ->
        let tenants =
          Sim.Tenant.set
            (Sim.Tenant.spec ~weight:8 ~share:4. ~slo_p99:1e-3 "gold"
            :: Sim.Tenant.spec ~weight:4 ~share:2. ~slo_p99:5e-3 "silver"
            :: Sim.Tenant.spec ~weight:2 "bronze"
            :: List.init 13 (fun i ->
                   Sim.Tenant.spec (Printf.sprintf "vf%02d" i)))
        in
        let report =
          Sim.Explain.run_tenants
            ~config:(config ~seed:13 ())
            (md5_graph ()) ~hw:D.Liquidio.hardware
            ~traffic:
              (T.make ~rate:(D.Liquidio.line_rate /. 2.) ~packet_size:U.mtu)
            ~tenants
        in
        Sim.Telemetry.Json.to_string (Sim.Explain.tenants_to_json report) );
  ]

(* Pinned flow-cache run: an OVS-style EMC → megaflow → slow-path
   datapath over a 4096-flow Zipf(1.1) population with tables small
   enough (256/1024 entries) to reach cache steady state inside the
   window, captured as the versioned [kind:"flowcache"] report JSON.
   One fixture pins the alias-method flow sampler, the fixed-capacity
   LRU eviction order, the flow rng stream layout, the per-class
   latency histograms and the model's fixed-point join in a single
   byte comparison. *)
let flowcache_scenarios () =
  [
    ( "flowcache-zipf",
      fun () ->
        let spec =
          Lognic.Flowcache.spec ~zipf:1.1 ~emc_entries:256
            ~megaflow_entries:1024 ~flows:4096 ()
        in
        let app = Lognic_apps.Flow_cache.default in
        let report =
          Sim.Explain.run_flowcache
            ~config:(config ~seed:17 ~duration:5e-3 ())
            spec
            (Lognic_apps.Flow_cache.graph app)
            ~hw:Lognic_apps.Flow_cache.hardware
            ~traffic:(Lognic_apps.Flow_cache.traffic app)
        in
        Sim.Telemetry.Json.to_string (Sim.Explain.flowcache_to_json report) );
  ]

let contention_scenarios () =
  [
    ( "contended-two-class",
      fun () ->
        let mix =
          [
            ( T.make ~rate:(D.Liquidio.line_rate /. 2.) ~packet_size:U.mtu,
              0.6 );
            (T.make ~rate:(D.Liquidio.line_rate /. 4.) ~packet_size:512., 0.4);
          ]
        in
        let contention =
          Lognic.Extensions.contention
            ~demands:
              [ [ ("l2-fill", 1.) ]; [ ("l2-fill", 1.); ("dram", 0.5) ] ]
            ~interference:[| [| 0.; 0.6 |]; [| 0.3; 0. |] |]
        in
        let report =
          Sim.Contention.run
            ~config:(config ~seed:13 ())
            ~contention (md5_graph ()) ~hw:D.Liquidio.hardware ~mix
        in
        Sim.Telemetry.Json.to_string (Sim.Contention.to_json report) );
  ]
