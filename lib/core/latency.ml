type queue_model = Mm1n_model | Mmcn_model | Mm1_model | No_queueing

type vertex_terms = {
  vid : Graph.vertex_id;
  queueing : float;
  service : float;
  utilization : float;
  drop_probability : float;
}

type path_report = {
  path : Graph.vertex_id list;
  weight : float;
  total : float;
  queueing : float;
  service : float;
  overhead : float;
  transfer : float;
}

type result = {
  mean : float;
  per_path : path_report list;
  per_vertex : vertex_terms list;
  carried_rate : float;
}

(* indeg is 0 for ingress vertices; the formulas treat every vertex as fed
   by at least one logical edge. *)
let effective_indegree g id = max 1 (Graph.in_degree g id)

let effective_rate (v : Graph.vertex) =
  v.service.partition *. v.service.accel *. v.service.throughput

let vertex_service_time g ~(traffic : Traffic.t) id =
  let v = Graph.vertex g id in
  if v.service.throughput = infinity then 0.
  else
    let inflow = Throughput.vertex_inflow g id in
    if inflow <= 0. then 0.
    else
      let d = float_of_int v.service.parallelism in
      let indeg = float_of_int (effective_indegree g id) in
      d *. traffic.packet_size *. inflow /. (effective_rate v *. indeg)

let vertex_rates g ~(traffic : Traffic.t) id =
  (* (lambda, mu) of the vertex's virtual shared queue, per Eq 11. *)
  let v = Graph.vertex g id in
  let inflow = Throughput.vertex_inflow g id in
  let d = float_of_int v.service.parallelism in
  let indeg = float_of_int (effective_indegree g id) in
  let lambda = traffic.rate *. indeg /. (d *. traffic.packet_size) in
  let mu =
    effective_rate v *. indeg /. (d *. traffic.packet_size *. inflow)
  in
  (lambda, mu)

(* The queue-model dispatch given a vertex's (lambda, mu): the shared
   tail of [vertex_terms] and of the joint multi-class evaluation, which
   feeds it union arrival rates and mixture service rates instead of the
   single-class Eq 11 values. *)
let terms_of_rates ?(model = Mm1n_model) g id ~service ~lambda ~mu =
  let v = Graph.vertex g id in
  let utilization = lambda /. mu in
  match model with
    | No_queueing ->
      { vid = id; queueing = 0.; service; utilization; drop_probability = 0. }
    | Mm1_model ->
      let q =
        if utilization >= 1. then infinity
        else Lognic_queueing.Mm1.mean_waiting_time (Lognic_queueing.Mm1.create ~lambda ~mu)
      in
      { vid = id; queueing = q; service; utilization; drop_probability = 0. }
    | Mm1n_model ->
      let queue = Lognic_queueing.Mm1n.create ~lambda ~mu ~capacity:v.service.queue_capacity in
      (* One O(N) state-vector build per vertex query: this sits on the
         optimizer's inner loop, so don't pay for it twice via the
         per-call convenience accessors. *)
      let capacity = v.service.queue_capacity in
      let probs = Lognic_queueing.Mm1n.state_probabilities queue in
      let blocking = probs.(capacity) in
      let effective = lambda *. (1. -. blocking) in
      let mean_number = ref 0. in
      Array.iteri
        (fun k p -> mean_number := !mean_number +. (float_of_int k *. p))
        probs;
      let queueing =
        if effective <= 0. then 0.
        else Float.max 0. ((!mean_number /. effective) -. (1. /. mu))
      in
      {
        vid = id;
        queueing;
        service;
        utilization;
        drop_probability = blocking;
      }
    | Mmcn_model ->
      (* Undo Eq 11's division of the arrival stream across D
         per-engine queues: the exact multi-server queue sees the whole
         stream with D servers of rate 1/C each. *)
      let d = float_of_int v.service.parallelism in
      let capacity = max v.service.queue_capacity v.service.parallelism in
      let queue =
        Lognic_queueing.Mmcn.create ~lambda:(lambda *. d) ~mu
          ~servers:v.service.parallelism ~capacity
      in
      {
        vid = id;
        queueing = Lognic_queueing.Mmcn.mean_waiting_time queue;
        service;
        utilization;
        drop_probability = Lognic_queueing.Mmcn.blocking_probability queue;
      }

let vertex_terms ?model g ~traffic id =
  let v = Graph.vertex g id in
  let service = vertex_service_time g ~traffic id in
  if v.service.throughput = infinity || Throughput.vertex_inflow g id <= 0. then
    { vid = id; queueing = 0.; service; utilization = 0.; drop_probability = 0. }
  else
    let lambda, mu = vertex_rates g ~traffic id in
    terms_of_rates ?model g id ~service ~lambda ~mu

let vertex_queueing ?model g ~traffic id = (vertex_terms ?model g ~traffic id).queueing

let edge_transfer_time g ~(hw : Params.hardware) ~(traffic : Traffic.t)
    (e : Graph.edge) =
  ignore g;
  let interface_time = traffic.packet_size *. e.alpha /. hw.bw_interface in
  let memory_time = traffic.packet_size *. e.beta /. hw.bw_memory in
  let link_time =
    match e.bandwidth with
    | Some bw -> traffic.packet_size *. e.delta /. bw
    | None -> 0.
  in
  interface_time +. memory_time +. link_time

let path_weights g =
  let raw =
    List.map
      (fun path ->
        (* weight = product of delta branching fractions at each hop *)
        let rec hop_weight acc = function
          | a :: (b :: _ as rest) ->
            let outs = Graph.out_edges g a in
            let total = List.fold_left (fun s (e : Graph.edge) -> s +. e.delta) 0. outs in
            let frac =
              match Graph.edge g ~src:a ~dst:b with
              | Some e when total > 0. -> e.delta /. total
              | Some _ | None -> 0.
            in
            hop_weight (acc *. frac) rest
          | [ _ ] | [] -> acc
        in
        (path, hop_weight 1. path))
      (* Degrade on combinatorial graphs instead of failing: the first
         10k paths in enumeration order, weights renormalized below, so
         the mean is a top-K approximation rather than an exception. *)
      (fst (Graph.paths_capped g))
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. raw in
  if total <= 0. then raw
  else List.map (fun (p, w) -> (p, w /. total)) raw

let evaluate_with ~term_of:(uncached : Graph.vertex_id -> vertex_terms) g ~hw
    ~(traffic : Traffic.t) =
  (match Graph.validate g with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Latency: invalid graph: " ^ String.concat "; " errors));
  let weighted_paths = path_weights g in
  if weighted_paths = [] then invalid_arg "Latency: no ingress->egress path";
  let terms = Hashtbl.create 16 in
  let term_of id =
    match Hashtbl.find_opt terms id with
    | Some t -> t
    | None ->
      let t = uncached id in
      Hashtbl.add terms id t;
      t
  in
  let report_of_path (path, weight) =
    let rec walk q s o tr = function
      | a :: (b :: _ as rest) ->
        let t = term_of a in
        let overhead = (Graph.vertex g a).service.overhead in
        let transfer =
          match Graph.edge g ~src:a ~dst:b with
          | Some e -> edge_transfer_time g ~hw ~traffic e
          | None -> 0.
        in
        walk (q +. t.queueing) (s +. t.service) (o +. overhead) (tr +. transfer)
          rest
      | [ last ] ->
        let t = term_of last in
        (q +. t.queueing, s +. t.service, o, tr)
      | [] -> (q, s, o, tr)
    in
    let queueing, service, overhead, transfer = walk 0. 0. 0. 0. path in
    {
      path;
      weight;
      total = queueing +. service +. overhead +. transfer;
      queueing;
      service;
      overhead;
      transfer;
    }
  in
  let per_path = List.map report_of_path weighted_paths in
  let mean = List.fold_left (fun acc r -> acc +. (r.weight *. r.total)) 0. per_path in
  let per_vertex =
    List.filter_map
      (fun (v : Graph.vertex) -> Hashtbl.find_opt terms v.id)
      (Graph.vertices g)
  in
  let carried_rate =
    (* survival probability along each path, weighted by path share *)
    let survival =
      List.fold_left
        (fun acc r ->
          let keep =
            List.fold_left
              (fun keep id -> keep *. (1. -. (term_of id).drop_probability))
              1. r.path
          in
          acc +. (r.weight *. keep))
        0. per_path
    in
    traffic.rate *. survival
  in
  { mean; per_path; per_vertex; carried_rate }

let evaluate ?(model = Mm1n_model) g ~hw ~traffic =
  evaluate_with ~term_of:(fun id -> vertex_terms ~model g ~traffic id) g ~hw
    ~traffic

let pp_result ppf r =
  Fmt.pf ppf "@[<v>mean latency: %.2f us@,carried rate: %.3f Gbps"
    (Units.to_usec r.mean)
    (Units.to_gbps r.carried_rate);
  List.iter
    (fun p ->
      Fmt.pf ppf
        "@,path [%a] w=%.3f total=%.2fus (queue %.2f, service %.2f, overhead \
         %.2f, transfer %.2f)"
        Fmt.(list ~sep:(any "->") int)
        p.path p.weight (Units.to_usec p.total) (Units.to_usec p.queueing)
        (Units.to_usec p.service) (Units.to_usec p.overhead)
        (Units.to_usec p.transfer))
    r.per_path;
  Fmt.pf ppf "@]"
