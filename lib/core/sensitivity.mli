(** Parameter sensitivity analysis.

    §2.3 motivates LogNIC with design-space exploration: which knob is
    worth turning? This module answers quantitatively by computing
    {e elasticities} — the percentage change in an output per percent
    change in a parameter, estimated by central finite differences
    through the model. An elasticity of 1.0 for (throughput, P_v3)
    means vertex 3's compute rate is the binding constraint; 0 means
    slack. Latency elasticities are typically negative for capacity
    parameters (more capacity, less queueing).

    Elasticities make bottleneck attribution continuous: where
    {!Throughput.result.bottleneck} names the single binding min-term,
    the elasticity vector also exposes near-ties and the latency side. *)

type parameter =
  | P_vertex of Graph.vertex_id  (** a vertex's P throughput *)
  | Bw_interface
  | Bw_memory
  | Offered_rate  (** BW_in *)

type elasticity = {
  parameter : parameter;
  throughput_elasticity : float;
      (** d ln(carried) / d ln(parameter) — 0 for slack resources, ~1
          for the binding one *)
  latency_elasticity : float;  (** d ln(mean latency) / d ln(parameter) *)
}

val analyze :
  ?step:float ->
  ?queue_model:Latency.queue_model ->
  ?jobs:int ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  elasticity list
(** Elasticities for every finite-throughput vertex plus the two shared
    media and the offered load, via central differences with relative
    [step] (default 2%%). Uses the blocking-discounted carried rate as
    the throughput output. [jobs] (default the global setting) computes
    per-parameter differences in parallel; the row order is unchanged. *)

val most_binding : elasticity list -> parameter
(** The parameter with the largest throughput elasticity — "upgrade
    this first". *)

val pp_parameter : Graph.t -> Format.formatter -> parameter -> unit
