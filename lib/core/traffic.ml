type t = { rate : float; packet_size : float }

let make ~rate ~packet_size =
  if rate <= 0. then invalid_arg "Traffic.make: rate must be > 0";
  if packet_size <= 0. then invalid_arg "Traffic.make: packet_size must be > 0";
  { rate; packet_size }

let packet_rate t = t.rate /. t.packet_size

type mix = (t * float) list

let mix classes =
  if classes = [] then invalid_arg "Traffic.mix: empty";
  if List.exists (fun (_, w) -> w < 0.) classes then
    invalid_arg "Traffic.mix: negative weight";
  if List.fold_left (fun acc (_, w) -> acc +. w) 0. classes <= 0. then
    invalid_arg "Traffic.mix: zero total weight";
  classes

let mix_of_sizes ~rate ~sizes =
  if rate <= 0. then invalid_arg "Traffic.mix_of_sizes: rate must be > 0";
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. sizes in
  if total <= 0. then invalid_arg "Traffic.mix_of_sizes: zero total weight";
  mix
    (List.map
       (fun (size, w) ->
         (make ~rate:(rate *. w /. total) ~packet_size:size, w /. total))
       sizes)

let normalize_weights classes =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. classes in
  List.map (fun (c, w) -> (c, w /. total)) classes

let mean_packet_size classes =
  let normalized = normalize_weights classes in
  List.fold_left (fun acc (c, w) -> acc +. (c.packet_size *. w)) 0. normalized

let total_rate classes = List.fold_left (fun acc (c, _) -> acc +. c.rate) 0. classes

let total_packet_rate classes =
  List.fold_left (fun acc (c, _) -> acc +. packet_rate c) 0. classes

let mean_packet_size_by_packets classes =
  (* Harmonic in the byte weights: total bytes/s over total packets/s is
     the size of the average *packet*, which is what packet-rate
     conversions (lambda = rate / size) need. The byte-weighted
     [mean_packet_size] systematically overweights large packets there:
     a 50/50-byte split of 64B and 1500B packets averages 782 B/packet
     by bytes but only ~123 B/packet by packets. *)
  total_rate classes /. total_packet_rate classes

let pp ppf t =
  Fmt.pf ppf "%.2f Gbps of %gB packets" (Units.to_gbps t.rate) t.packet_size
