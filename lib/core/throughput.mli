(** Throughput modeling (§3.5, Eqs 1–4).

    For a workload of W bytes entering the SmartNIC, each hardware
    entity needs a certain time to pass its share:

    - IP vertex [i]:   T = W·Σδ_ji / (γ·A·P_vi)  (Eq 1, incoming edges j;
      the γ partition and A acceleration factors scale the physical
      rate as in the latency model)
    - dedicated edge:  T = W·δ_ij / BW_ij
    - interface:       T = W·Σα_ij / BW_INTF    (Eq 2)
    - memory:          T = W·Σβ_ij / BW_MEM     (Eq 2)

    The attainable throughput is W over the largest of these (Eq 3),
    which W cancels out of (Eq 4). Every term is reported so callers can
    attribute the bottleneck, and the offered load BW_in caps the
    carried rate. *)

type bound =
  | Vertex_bound of Graph.vertex_id
  | Edge_bound of Graph.vertex_id * Graph.vertex_id
  | Interface_bound
  | Memory_bound
  | Resource_bound of string
      (** a named shared resource from {!Params.hardware.resources}
          binds — only produced by the multi-resource contention layer
          ({!Extensions.mixed_traffic}); the single-class evaluation
          never emits it *)
  | Offered_load  (** the ingress rate itself is the binding constraint *)

type result = {
  capacity : float;
      (** Eq 4 — the device-side ceiling in bytes/s, independent of the
          offered load *)
  attained : float;  (** min(capacity, BW_in): the carried rate *)
  bottleneck : bound;
      (** which term binds [attained]; ties break toward the first term
          in the order vertex, edge, interface, memory, offered load *)
  vertex_caps : (Graph.vertex_id * float) list;
      (** per-vertex ceiling γ·A·P/Σδ (vertices with no incoming flow and
          infinite-throughput vertices are omitted) *)
  edge_caps : ((Graph.vertex_id * Graph.vertex_id) * float) list;
      (** per-dedicated-edge ceiling BW/δ *)
  interface_cap : float;  (** BW_INTF / Σα (infinite when Σα = 0) *)
  memory_cap : float;  (** BW_MEM / Σβ *)
}

val vertex_inflow : Graph.t -> Graph.vertex_id -> float
(** Σδ over incoming edges; by convention 1 for an ingress vertex (all
    of W enters through it). *)

val evaluate : Graph.t -> hw:Params.hardware -> traffic:Traffic.t -> result
(** Raises [Invalid_argument] if the graph fails {!Graph.validate}. *)

val capacity : Graph.t -> hw:Params.hardware -> float
(** Just Eq 4, for optimizer objectives (offered load ignored). *)

val pp_bound : Graph.t -> Format.formatter -> bound -> unit
val pp_result : Graph.t -> Format.formatter -> result -> unit
