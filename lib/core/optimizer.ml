module N = Lognic_numerics

type knob =
  | Vertex_throughput of Graph.vertex_id * float array
  | Queue_capacity of Graph.vertex_id * int * int
  | Out_split of Graph.vertex_id
  | Partition of Graph.vertex_id * float * float
  | Accel of Graph.vertex_id * float array
  | Ingress_rate of float * float

type objective =
  | Maximize_throughput
  | Minimize_latency
  | Minimize_latency_min_throughput of float
  | Maximize_throughput_max_latency of float

type assignment =
  | Set_throughput of Graph.vertex_id * float
  | Set_queue_capacity of Graph.vertex_id * int
  | Set_split of Graph.vertex_id * float list
  | Set_partition of Graph.vertex_id * float
  | Set_accel of Graph.vertex_id * float
  | Set_ingress_rate of float

type solution = {
  graph : Graph.t;
  assignment : assignment list;
  report : Estimate.report;
  feasible : bool;
}

let apply_assignment g assignment =
  List.fold_left
    (fun g -> function
      | Set_throughput (id, p) ->
        Graph.update_service g id (fun s -> { s with Graph.throughput = p })
      | Set_queue_capacity (id, n) ->
        Graph.update_service g id (fun s -> { s with Graph.queue_capacity = n })
      | Set_split (id, fractions) -> Graph.scale_out_split g id fractions
      | Set_partition (id, gamma) ->
        Graph.update_service g id (fun s -> { s with Graph.partition = gamma })
      | Set_accel (id, a) ->
        Graph.update_service g id (fun s -> { s with Graph.accel = a })
      | Set_ingress_rate _ -> g)
    g assignment

let apply_traffic traffic assignment =
  List.fold_left
    (fun (t : Traffic.t) -> function
      | Set_ingress_rate rate -> { t with Traffic.rate }
      | Set_throughput _ | Set_queue_capacity _ | Set_split _ | Set_partition _
      | Set_accel _ ->
        t)
    traffic assignment

(* A large-but-finite constraint penalty: big enough to dominate any
   realistic latency (seconds) or negated throughput (-bytes/s). *)
let constraint_penalty = 1e15

(* Goals are judged on the carried rate: the Eq 4 ceiling further
   discounted by finite-queue blocking, so a configuration cannot "meet"
   a throughput bound by dropping packets. *)
let carried (report : Estimate.report) =
  Float.min report.throughput.Throughput.attained
    report.latency.Latency.carried_rate

let score ?queue_model objective (report : Estimate.report) =
  let attained = carried report in
  let latency = report.latency.Latency.mean in
  ignore queue_model;
  match objective with
  | Maximize_throughput -> -.attained
  | Minimize_latency -> latency
  | Minimize_latency_min_throughput bound ->
    let gap = Float.max 0. ((bound -. attained) /. bound) in
    latency +. (constraint_penalty *. gap)
  | Maximize_throughput_max_latency bound ->
    let excess = Float.max 0. ((latency -. bound) /. bound) in
    -.attained +. (constraint_penalty *. excess)

let feasible objective (report : Estimate.report) =
  match objective with
  | Maximize_throughput | Minimize_latency -> true
  | Minimize_latency_min_throughput bound -> carried report >= bound *. (1. -. 1e-6)
  | Maximize_throughput_max_latency bound ->
    report.latency.Latency.mean <= bound *. (1. +. 1e-6)

let validate_knobs g knobs =
  if knobs = [] then invalid_arg "Optimizer.optimize: no knobs";
  List.iter
    (function
      | Vertex_throughput (id, candidates) ->
        ignore (Graph.vertex g id);
        if Array.length candidates = 0 then
          invalid_arg "Optimizer: empty candidate array"
      | Queue_capacity (id, lo, hi) ->
        ignore (Graph.vertex g id);
        if lo < 1 || lo > hi then invalid_arg "Optimizer: bad capacity range"
      | Out_split id ->
        ignore (Graph.vertex g id);
        if List.length (Graph.out_edges g id) < 2 then
          invalid_arg "Optimizer: Out_split needs >= 2 out-edges"
      | Partition (id, lo, hi) ->
        ignore (Graph.vertex g id);
        if lo <= 0. || hi > 1. || lo > hi then
          invalid_arg "Optimizer: partition range outside (0, 1]"
      | Accel (id, candidates) ->
        ignore (Graph.vertex g id);
        if Array.length candidates = 0 then
          invalid_arg "Optimizer: empty accel candidates";
        if Array.exists (fun a -> a <= 0.) candidates then
          invalid_arg "Optimizer: accel candidates must be > 0"
      | Ingress_rate (lo, hi) ->
        if lo <= 0. || lo > hi then invalid_arg "Optimizer: bad ingress range")
    knobs

(* Continuous knobs map onto a flat vector; each knob owns a slice. *)
type slice = {
  knob_index : int;
  offset : int;
  width : int;
  lower : float;
  upper : float;
}

let continuous_layout knobs g =
  let slices = ref [] and offset = ref 0 in
  List.iteri
    (fun i -> function
      | Out_split id ->
        let width = List.length (Graph.out_edges g id) in
        slices :=
          { knob_index = i; offset = !offset; width; lower = 0.01; upper = 1. }
          :: !slices;
        offset := !offset + width
      | Partition (_, lo, hi) | Ingress_rate (lo, hi) ->
        slices :=
          { knob_index = i; offset = !offset; width = 1; lower = lo; upper = hi }
          :: !slices;
        offset := !offset + 1
      | Vertex_throughput _ | Queue_capacity _ | Accel _ -> ())
    knobs;
  (List.rev !slices, !offset)

let assignment_of_continuous knobs slices x =
  List.map
    (fun s ->
      match List.nth knobs s.knob_index with
      | Out_split id ->
        Set_split (id, Array.to_list (Array.sub x s.offset s.width))
      | Partition (id, _, _) -> Set_partition (id, x.(s.offset))
      | Ingress_rate _ -> Set_ingress_rate x.(s.offset)
      | Vertex_throughput _ | Queue_capacity _ | Accel _ -> assert false)
    slices

let discrete_axes knobs =
  List.filter_map
    (function
      | Vertex_throughput (id, candidates) ->
        Some (`Throughput (id, candidates), Array.length candidates)
      | Queue_capacity (id, lo, hi) -> Some (`Capacity (id, lo), hi - lo + 1)
      | Accel (id, candidates) -> Some (`Accel (id, candidates), Array.length candidates)
      | Out_split _ | Partition _ | Ingress_rate _ -> None)
    knobs

let assignment_of_discrete axes idx =
  List.mapi
    (fun d (axis, _) ->
      match axis with
      | `Throughput (id, candidates) -> Set_throughput (id, candidates.(idx.(d)))
      | `Capacity (id, lo) -> Set_queue_capacity (id, lo + idx.(d))
      | `Accel (id, candidates) -> Set_accel (id, candidates.(idx.(d))))
    axes

let optimize ?(rng = N.Rng.create ~seed:42) ?queue_model g ~hw ~traffic ~knobs
    objective =
  validate_knobs g knobs;
  let slices, dim = continuous_layout knobs g in
  let axes = discrete_axes knobs in
  let evaluate assignment =
    let g' = apply_assignment g assignment in
    let traffic' = apply_traffic traffic assignment in
    let report = Estimate.run ?queue_model g' ~hw ~traffic:traffic' in
    (score ?queue_model objective report, g', report)
  in
  (* For one discrete choice, settle the continuous knobs (if any). *)
  let solve_continuous discrete_assignment =
    if dim = 0 then
      let s, g', report = evaluate discrete_assignment in
      (s, discrete_assignment, g', report)
    else begin
      let bounds default =
        let a = Array.make dim default in
        List.iter
          (fun s ->
            for i = s.offset to s.offset + s.width - 1 do
              a.(i) <- (if default = 0.01 then s.lower else s.upper)
            done)
          slices;
        a
      in
      let lower = bounds 0.01 and upper = bounds 1. in
      let problem =
        {
          N.Constrained.objective =
            (fun x ->
              (* The simplex may step outside the box; clamp before
                 applying so the graph update stays in-domain (the
                 penalty still discourages the excursion). *)
              let x = N.Vec.clamp ~lo:lower ~hi:upper x in
              let assignment =
                discrete_assignment @ assignment_of_continuous knobs slices x
              in
              let s, _, _ = evaluate assignment in
              s);
          inequality = [];
          lower;
          upper;
        }
      in
      let sol = N.Constrained.multi_start ~rng:(N.Rng.split rng) problem in
      let assignment =
        discrete_assignment @ assignment_of_continuous knobs slices sol.N.Constrained.x
      in
      let s, g', report = evaluate assignment in
      (s, assignment, g', report)
    end
  in
  let best = ref None in
  let consider candidate =
    match !best with
    | None -> best := Some candidate
    | Some (s, _, _, _) ->
      let s', _, _, _ = candidate in
      if s' < s then best := Some candidate
  in
  (if axes = [] then consider (solve_continuous [])
   else begin
     let ranges = Array.of_list (List.map (fun (_, n) -> (0, n - 1)) axes) in
     let objective idx =
       let candidate = solve_continuous (assignment_of_discrete axes idx) in
       consider candidate;
       let s, _, _, _ = candidate in
       s
     in
     ignore (N.Grid.minimize_ints ~f:objective ~ranges ())
   end);
  match !best with
  | None -> assert false
  | Some (_, assignment, graph, report) ->
    { graph; assignment; report; feasible = feasible objective report }

let pareto ?rng ?queue_model ?(points = 8) g ~hw ~traffic ~knobs =
  (* anchor the bound range at the two single-objective extremes *)
  let fastest = optimize ?rng ?queue_model g ~hw ~traffic ~knobs Minimize_latency in
  let widest = optimize ?rng ?queue_model g ~hw ~traffic ~knobs Maximize_throughput in
  let lo = fastest.report.latency.Latency.mean in
  let hi = widest.report.latency.Latency.mean in
  if not (Float.is_finite lo && lo > 0.) then
    invalid_arg "Optimizer.pareto: degenerate latency range";
  let hi = Float.max (lo *. 1.001) (if Float.is_finite hi then hi else lo *. 100.) in
  let bounds =
    List.init points (fun i ->
        let t = float_of_int i /. float_of_int (max 1 (points - 1)) in
        lo *. ((hi /. lo) ** t))
  in
  List.filter_map
    (fun bound ->
      let s =
        optimize ?rng ?queue_model g ~hw ~traffic ~knobs
          (Maximize_throughput_max_latency bound)
      in
      if s.feasible then Some (bound, s) else None)
    bounds

let pp_assignment ppf = function
  | Set_throughput (id, p) -> Fmt.pf ppf "vertex %d: P <- %.4g B/s" id p
  | Set_queue_capacity (id, n) -> Fmt.pf ppf "vertex %d: N <- %d" id n
  | Set_split (id, fs) ->
    let total = List.fold_left ( +. ) 0. fs in
    Fmt.pf ppf "vertex %d: split <- [%a]" id
      Fmt.(list ~sep:(any "; ") (fun ppf f -> Fmt.pf ppf "%.3f" (f /. total)))
      fs
  | Set_partition (id, gamma) -> Fmt.pf ppf "vertex %d: gamma <- %.3f" id gamma
  | Set_accel (id, a) -> Fmt.pf ppf "vertex %d: A <- %.3f" id a
  | Set_ingress_rate rate -> Fmt.pf ppf "BW_in <- %.4g B/s" rate
