module N = Lognic_numerics

type knob =
  | Vertex_throughput of Graph.vertex_id * float array
  | Queue_capacity of Graph.vertex_id * int * int
  | Out_split of Graph.vertex_id
  | Partition of Graph.vertex_id * float * float
  | Accel of Graph.vertex_id * float array
  | Ingress_rate of float * float

type objective =
  | Maximize_throughput
  | Minimize_latency
  | Minimize_latency_min_throughput of float
  | Maximize_throughput_max_latency of float

type assignment =
  | Set_throughput of Graph.vertex_id * float
  | Set_queue_capacity of Graph.vertex_id * int
  | Set_split of Graph.vertex_id * float list
  | Set_partition of Graph.vertex_id * float
  | Set_accel of Graph.vertex_id * float
  | Set_ingress_rate of float

type search_stats = { evaluations : int; memo_hits : int }

type observation = {
  sequence : int;
  candidate : assignment list;
  score : float;
  cache_hit : bool;
}

type solution = {
  graph : Graph.t;
  assignment : assignment list;
  report : Estimate.report;
  feasible : bool;
  stats : search_stats;
}

let apply_assignment g assignment =
  List.fold_left
    (fun g -> function
      | Set_throughput (id, p) ->
        Graph.update_service g id (fun s -> { s with Graph.throughput = p })
      | Set_queue_capacity (id, n) ->
        Graph.update_service g id (fun s -> { s with Graph.queue_capacity = n })
      | Set_split (id, fractions) -> Graph.scale_out_split g id fractions
      | Set_partition (id, gamma) ->
        Graph.update_service g id (fun s -> { s with Graph.partition = gamma })
      | Set_accel (id, a) ->
        Graph.update_service g id (fun s -> { s with Graph.accel = a })
      | Set_ingress_rate _ -> g)
    g assignment

let apply_traffic traffic assignment =
  List.fold_left
    (fun (t : Traffic.t) -> function
      | Set_ingress_rate rate -> { t with Traffic.rate }
      | Set_throughput _ | Set_queue_capacity _ | Set_split _ | Set_partition _
      | Set_accel _ ->
        t)
    traffic assignment

(* A large-but-finite constraint penalty: big enough to dominate any
   realistic latency (seconds) or negated throughput (-bytes/s). *)
let constraint_penalty = 1e15

(* Goals are judged on the carried rate: the Eq 4 ceiling further
   discounted by finite-queue blocking, so a configuration cannot "meet"
   a throughput bound by dropping packets. *)
let carried (report : Estimate.report) =
  Float.min report.throughput.Throughput.attained
    report.latency.Latency.carried_rate

let score ?queue_model objective (report : Estimate.report) =
  let attained = carried report in
  let latency = report.latency.Latency.mean in
  ignore queue_model;
  match objective with
  | Maximize_throughput -> -.attained
  | Minimize_latency -> latency
  | Minimize_latency_min_throughput bound ->
    let gap = Float.max 0. ((bound -. attained) /. bound) in
    latency +. (constraint_penalty *. gap)
  | Maximize_throughput_max_latency bound ->
    let excess = Float.max 0. ((latency -. bound) /. bound) in
    -.attained +. (constraint_penalty *. excess)

let feasible objective (report : Estimate.report) =
  match objective with
  | Maximize_throughput | Minimize_latency -> true
  | Minimize_latency_min_throughput bound -> carried report >= bound *. (1. -. 1e-6)
  | Maximize_throughput_max_latency bound ->
    report.latency.Latency.mean <= bound *. (1. +. 1e-6)

let validate_knobs g knobs =
  if knobs = [] then invalid_arg "Optimizer.optimize: no knobs";
  List.iter
    (function
      | Vertex_throughput (id, candidates) ->
        ignore (Graph.vertex g id);
        if Array.length candidates = 0 then
          invalid_arg "Optimizer: empty candidate array"
      | Queue_capacity (id, lo, hi) ->
        ignore (Graph.vertex g id);
        if lo < 1 || lo > hi then invalid_arg "Optimizer: bad capacity range"
      | Out_split id ->
        ignore (Graph.vertex g id);
        if List.length (Graph.out_edges g id) < 2 then
          invalid_arg "Optimizer: Out_split needs >= 2 out-edges"
      | Partition (id, lo, hi) ->
        ignore (Graph.vertex g id);
        if lo <= 0. || hi > 1. || lo > hi then
          invalid_arg "Optimizer: partition range outside (0, 1]"
      | Accel (id, candidates) ->
        ignore (Graph.vertex g id);
        if Array.length candidates = 0 then
          invalid_arg "Optimizer: empty accel candidates";
        if Array.exists (fun a -> a <= 0.) candidates then
          invalid_arg "Optimizer: accel candidates must be > 0"
      | Ingress_rate (lo, hi) ->
        if lo <= 0. || lo > hi then invalid_arg "Optimizer: bad ingress range")
    knobs

(* Continuous knobs map onto a flat vector; each knob owns a slice. *)
type slice = {
  knob_index : int;
  offset : int;
  width : int;
  lower : float;
  upper : float;
}

let continuous_layout knobs g =
  let slices = ref [] and offset = ref 0 in
  List.iteri
    (fun i -> function
      | Out_split id ->
        let width = List.length (Graph.out_edges g id) in
        slices :=
          { knob_index = i; offset = !offset; width; lower = 0.01; upper = 1. }
          :: !slices;
        offset := !offset + width
      | Partition (_, lo, hi) | Ingress_rate (lo, hi) ->
        slices :=
          { knob_index = i; offset = !offset; width = 1; lower = lo; upper = hi }
          :: !slices;
        offset := !offset + 1
      | Vertex_throughput _ | Queue_capacity _ | Accel _ -> ())
    knobs;
  (List.rev !slices, !offset)

let assignment_of_continuous knobs slices x =
  List.map
    (fun s ->
      match List.nth knobs s.knob_index with
      | Out_split id ->
        Set_split (id, Array.to_list (Array.sub x s.offset s.width))
      | Partition (id, _, _) -> Set_partition (id, x.(s.offset))
      | Ingress_rate _ -> Set_ingress_rate x.(s.offset)
      | Vertex_throughput _ | Queue_capacity _ | Accel _ -> assert false)
    slices

let discrete_axes knobs =
  List.filter_map
    (function
      | Vertex_throughput (id, candidates) ->
        Some (`Throughput (id, candidates), Array.length candidates)
      | Queue_capacity (id, lo, hi) -> Some (`Capacity (id, lo), hi - lo + 1)
      | Accel (id, candidates) -> Some (`Accel (id, candidates), Array.length candidates)
      | Out_split _ | Partition _ | Ingress_rate _ -> None)
    knobs

let assignment_of_discrete axes idx =
  List.mapi
    (fun d (axis, _) ->
      match axis with
      | `Throughput (id, candidates) -> Set_throughput (id, candidates.(idx.(d)))
      | `Capacity (id, lo) -> Set_queue_capacity (id, lo + idx.(d))
      | `Accel (id, candidates) -> Set_accel (id, candidates.(idx.(d))))
    axes

(* Canonical memo key: assignments sorted by (kind, vertex) and floats
   serialized by their IEEE bit pattern, so two assignments collide iff
   they produce the same graph and traffic. Nelder–Mead and
   golden-section refinement revisit configurations exactly (clamped
   boundary points, the final re-evaluation of the winning simplex
   vertex, duplicate discrete candidates), and each hit skips a full
   [Throughput.evaluate]/[Latency.evaluate] pass. *)
let memo_key assignment =
  let rank = function
    | Set_throughput _ -> 0
    | Set_queue_capacity _ -> 1
    | Set_split _ -> 2
    | Set_partition _ -> 3
    | Set_accel _ -> 4
    | Set_ingress_rate _ -> 5
  in
  let vid = function
    | Set_throughput (id, _)
    | Set_queue_capacity (id, _)
    | Set_split (id, _)
    | Set_partition (id, _)
    | Set_accel (id, _) ->
      id
    | Set_ingress_rate _ -> -1
  in
  let cmp a b = compare (rank a, vid a) (rank b, vid b) in
  let b = Buffer.create 64 in
  let flt x =
    Buffer.add_string b (Int64.to_string (Int64.bits_of_float x));
    Buffer.add_char b ','
  in
  let tag a =
    Buffer.add_char b (Char.chr (Char.code '0' + rank a));
    Buffer.add_char b ':';
    Buffer.add_string b (string_of_int (vid a));
    Buffer.add_char b '='
  in
  List.iter
    (fun a ->
      tag a;
      match a with
      | Set_throughput (_, p) -> flt p
      | Set_queue_capacity (_, n) ->
        Buffer.add_string b (string_of_int n);
        Buffer.add_char b ','
      | Set_split (_, fs) -> List.iter flt fs
      | Set_partition (_, gamma) -> flt gamma
      | Set_accel (_, a) -> flt a
      | Set_ingress_rate r -> flt r)
    (List.sort cmp assignment);
  Buffer.contents b

let optimize ?(rng = N.Rng.create ~seed:42) ?queue_model ?jobs ?observer g ~hw
    ~traffic ~knobs objective =
  validate_knobs g knobs;
  let slices, dim = continuous_layout knobs g in
  let axes = discrete_axes knobs in
  (* The memo is shared by every candidate of this search (including
     across domains when the discrete grid is evaluated in parallel —
     hence the mutex); hit/evaluation counts surface in the solution's
     [stats]. *)
  let memo = N.Lru.create ~capacity:4096 in
  let memo_mutex = Mutex.create () in
  let evaluations = Atomic.make 0 and memo_hits = Atomic.make 0 in
  let observe ~sequence ~candidate ~score ~cache_hit =
    match observer with
    | None -> ()
    | Some f -> f { sequence; candidate; score; cache_hit }
  in
  let evaluate assignment =
    let sequence = Atomic.fetch_and_add evaluations 1 in
    let key = memo_key assignment in
    match Mutex.protect memo_mutex (fun () -> N.Lru.find_opt memo key) with
    | Some ((s, _, _) as result) ->
      Atomic.incr memo_hits;
      observe ~sequence ~candidate:assignment ~score:s ~cache_hit:true;
      result
    | None ->
      let g' = apply_assignment g assignment in
      let traffic' = apply_traffic traffic assignment in
      let report = Estimate.run ?queue_model g' ~hw ~traffic:traffic' in
      let result = (score ?queue_model objective report, g', report) in
      Mutex.protect memo_mutex (fun () -> N.Lru.add memo key result);
      let s, _, _ = result in
      observe ~sequence ~candidate:assignment ~score:s ~cache_hit:false;
      result
  in
  (* For one discrete choice, settle the continuous knobs (if any).
     [mrng] is that grid point's pre-split multi-start rng — split in
     enumeration order by the caller so parallel evaluation draws the
     exact sequence the sequential walk did. *)
  let solve_continuous mrng discrete_assignment =
    if dim = 0 then
      let s, g', report = evaluate discrete_assignment in
      (s, discrete_assignment, g', report)
    else begin
      let bounds default =
        let a = Array.make dim default in
        List.iter
          (fun s ->
            for i = s.offset to s.offset + s.width - 1 do
              a.(i) <- (if default = 0.01 then s.lower else s.upper)
            done)
          slices;
        a
      in
      let lower = bounds 0.01 and upper = bounds 1. in
      let problem =
        {
          N.Constrained.objective =
            (fun x ->
              (* The simplex may step outside the box; clamp before
                 applying so the graph update stays in-domain (the
                 penalty still discourages the excursion). *)
              let x = N.Vec.clamp ~lo:lower ~hi:upper x in
              let assignment =
                discrete_assignment @ assignment_of_continuous knobs slices x
              in
              let s, _, _ = evaluate assignment in
              s);
          inequality = [];
          lower;
          upper;
        }
      in
      let mrng =
        match mrng with Some r -> r | None -> assert false
      in
      let sol = N.Constrained.multi_start ~rng:mrng problem in
      let assignment =
        discrete_assignment @ assignment_of_continuous knobs slices sol.N.Constrained.x
      in
      let s, g', report = evaluate assignment in
      (s, assignment, g', report)
    end
  in
  let split_for_point () = if dim = 0 then None else Some (N.Rng.split rng) in
  let best = ref None in
  let consider candidate =
    match !best with
    | None -> best := Some candidate
    | Some (s, _, _, _) ->
      let s', _, _, _ = candidate in
      if s' < s then best := Some candidate
  in
  (if axes = [] then consider (solve_continuous (split_for_point ()) [])
   else begin
     (* Exhaustive grid over the discrete axes, evaluated [jobs]-wide:
        grid points are enumerated in odometer order (chunked so huge
        spaces never materialize at once), mapped in parallel, and
        folded in order with a strict [<] — the same winner the
        sequential [Grid.minimize_ints] walk picked. *)
     let ranges = Array.of_list (List.map (fun (_, n) -> (0, n - 1)) axes) in
     let total =
       Array.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 ranges
     in
     if total > 10_000_000 then
       invalid_arg "Optimizer.optimize: discrete search space too large";
     let n_axes = Array.length ranges in
     let current = Array.map fst ranges in
     let advance () =
       let rec go i =
         if i < 0 then false
         else begin
           let _, hi = ranges.(i) in
           if current.(i) < hi then begin
             current.(i) <- current.(i) + 1;
             true
           end
           else begin
             current.(i) <- fst ranges.(i);
             go (i - 1)
           end
         end
       in
       go (n_axes - 1)
     in
     let exhausted = ref false in
     while not !exhausted do
       let chunk = ref [] and filled = ref 0 in
       while (not !exhausted) && !filled < 1024 do
         chunk := (Array.copy current, split_for_point ()) :: !chunk;
         incr filled;
         if not (advance ()) then exhausted := true
       done;
       List.iter consider
         (N.Parallel.map ?jobs
            (fun (idx, mrng) ->
              solve_continuous mrng (assignment_of_discrete axes idx))
            (List.rev !chunk))
     done
   end);
  match !best with
  | None -> assert false
  | Some (_, assignment, graph, report) ->
    {
      graph;
      assignment;
      report;
      feasible = feasible objective report;
      stats =
        {
          evaluations = Atomic.get evaluations;
          memo_hits = Atomic.get memo_hits;
        };
    }

let pareto ?rng ?queue_model ?jobs ?observer ?(points = 8) g ~hw ~traffic
    ~knobs =
  (* anchor the bound range at the two single-objective extremes *)
  let fastest =
    optimize ?rng ?queue_model ?jobs ?observer g ~hw ~traffic ~knobs
      Minimize_latency
  in
  let widest =
    optimize ?rng ?queue_model ?jobs ?observer g ~hw ~traffic ~knobs
      Maximize_throughput
  in
  let lo = fastest.report.latency.Latency.mean in
  let hi = widest.report.latency.Latency.mean in
  if not (Float.is_finite lo && lo > 0.) then
    invalid_arg "Optimizer.pareto: degenerate latency range";
  let hi = Float.max (lo *. 1.001) (if Float.is_finite hi then hi else lo *. 100.) in
  let bounds =
    List.init points (fun i ->
        let t = float_of_int i /. float_of_int (max 1 (points - 1)) in
        lo *. ((hi /. lo) ** t))
  in
  List.filter_map
    (fun bound ->
      let s =
        optimize ?rng ?queue_model ?jobs ?observer g ~hw ~traffic ~knobs
          (Maximize_throughput_max_latency bound)
      in
      if s.feasible then Some (bound, s) else None)
    bounds

let pp_assignment ppf = function
  | Set_throughput (id, p) -> Fmt.pf ppf "vertex %d: P <- %.4g B/s" id p
  | Set_queue_capacity (id, n) -> Fmt.pf ppf "vertex %d: N <- %d" id n
  | Set_split (id, fs) ->
    let total = List.fold_left ( +. ) 0. fs in
    Fmt.pf ppf "vertex %d: split <- [%a]" id
      Fmt.(list ~sep:(any "; ") (fun ppf f -> Fmt.pf ppf "%.3f" (f /. total)))
      fs
  | Set_partition (id, gamma) -> Fmt.pf ppf "vertex %d: gamma <- %.3f" id gamma
  | Set_accel (id, a) -> Fmt.pf ppf "vertex %d: A <- %.3f" id a
  | Set_ingress_rate rate -> Fmt.pf ppf "BW_in <- %.4g B/s" rate
