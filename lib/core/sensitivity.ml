type parameter =
  | P_vertex of Graph.vertex_id
  | Bw_interface
  | Bw_memory
  | Offered_rate

type elasticity = {
  parameter : parameter;
  throughput_elasticity : float;
  latency_elasticity : float;
}

let scaled_inputs parameter factor g (hw : Params.hardware) (traffic : Traffic.t) =
  match parameter with
  | P_vertex id ->
    let g =
      Graph.update_service g id (fun s ->
          { s with Graph.throughput = s.Graph.throughput *. factor })
    in
    (g, hw, traffic)
  | Bw_interface ->
    (g, Params.hardware ~bw_interface:(hw.bw_interface *. factor) ~bw_memory:hw.bw_memory, traffic)
  | Bw_memory ->
    (g, Params.hardware ~bw_interface:hw.bw_interface ~bw_memory:(hw.bw_memory *. factor), traffic)
  | Offered_rate -> (g, hw, { traffic with Traffic.rate = traffic.Traffic.rate *. factor })

let outputs ?queue_model g ~hw ~traffic =
  let report = Estimate.run ?queue_model g ~hw ~traffic in
  let carried =
    Float.min report.throughput.Throughput.attained
      report.latency.Latency.carried_rate
  in
  (carried, report.latency.Latency.mean)

let elasticity_of ?step:(h = 0.02) ?queue_model g ~hw ~traffic parameter =
  let eval factor =
    let g, hw, traffic = scaled_inputs parameter factor g hw traffic in
    outputs ?queue_model g ~hw ~traffic
  in
  let up_t, up_l = eval (1. +. h) in
  let down_t, down_l = eval (1. -. h) in
  (* central difference of ln(output) w.r.t. ln(parameter) *)
  let log_slope up down =
    if up <= 0. || down <= 0. || not (Float.is_finite up && Float.is_finite down)
    then 0.
    else (log up -. log down) /. (log (1. +. h) -. log (1. -. h))
  in
  {
    parameter;
    throughput_elasticity = log_slope up_t down_t;
    latency_elasticity = log_slope up_l down_l;
  }

let analyze ?step ?queue_model ?jobs g ~hw ~traffic =
  (match Graph.validate g with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Sensitivity: invalid graph: " ^ String.concat "; " errors));
  let vertex_params =
    List.filter_map
      (fun (v : Graph.vertex) ->
        if v.service.throughput < infinity then Some (P_vertex v.id) else None)
      (Graph.vertices g)
  in
  (* Each parameter's two model evaluations are independent; fan them
     out over the domain pool (order-preserving, so the report rows
     stay stable). *)
  Lognic_numerics.Parallel.map ?jobs
    (elasticity_of ?step ?queue_model g ~hw ~traffic)
    (vertex_params @ [ Bw_interface; Bw_memory; Offered_rate ])

let most_binding elasticities =
  match
    List.fold_left
      (fun best e ->
        match best with
        | None -> Some e
        | Some b ->
          if e.throughput_elasticity > b.throughput_elasticity then Some e else best)
      None elasticities
  with
  | Some e -> e.parameter
  | None -> invalid_arg "Sensitivity.most_binding: empty list"

let pp_parameter g ppf = function
  | P_vertex id -> Fmt.pf ppf "P[%s]" (Graph.vertex g id).label
  | Bw_interface -> Fmt.string ppf "BW_INTF"
  | Bw_memory -> Fmt.string ppf "BW_MEM"
  | Offered_rate -> Fmt.string ppf "BW_in"
