(** Software execution graphs (§3.3).

    A SmartNIC-offloaded program is a directed acyclic graph whose
    vertices are hardware entities a packet visits — the ingress engine,
    IP blocks (NIC cores, accelerators, opaque devices like an SSD), and
    the egress engine — and whose edges are data movements between them
    over the interface and/or the memory subsystem.

    Per-edge parameters (Table 2):
    - [delta] (δ): fraction of the total ingress workload W that crosses
      this edge;
    - [alpha] (α): fraction of W this edge pushes over the shared SoC
      {e interface};
    - [beta] (β): fraction of W this edge pushes through the {e memory}
      subsystem;
    - [bandwidth]: optional dedicated IP-IP link capacity (BW_mn), for
      point-to-point fabrics characterized separately.

    Per-vertex parameters live in {!type:service}. *)

type vertex_id = int

type kind =
  | Ingress  (** wire/PCIe entry engine *)
  | Egress  (** wire/PCIe exit engine *)
  | Ip  (** an IP block: CPU cluster, accelerator, DSP, opaque device *)

type service = {
  throughput : float;
      (** P_vi — aggregate computing throughput of the (physical) IP in
          bytes/s of consumed traffic. For ingress/egress this is the
          port line rate. *)
  parallelism : int;
      (** D_vi — number of requests concurrently sharing the IP; scales
          the per-request service time in the latency model (Eq 7). *)
  queue_capacity : int;
      (** N_vi — virtual shared queue capacity (entries) for the M/M/1/N
          queueing term (Eq 12). *)
  overhead : float;
      (** O_i — computation-transfer overhead in seconds paid when this
          vertex hands work to the next one (Eq 5). *)
  accel : float;
      (** A_i — kernel acceleration factor dividing the compute term
          (≥ 1 speeds the IP up; default 1). *)
  partition : float;
      (** γ_vi ∈ (0, 1] — share of the physical IP this (virtual) vertex
          owns under multiplexing (Extension #1). *)
}

val default_service : service
(** Infinite throughput, parallelism 1, queue capacity 64, no overhead,
    accel 1, full partition — a transparent vertex. *)

val service :
  ?parallelism:int ->
  ?queue_capacity:int ->
  ?overhead:float ->
  ?accel:float ->
  ?partition:float ->
  throughput:float ->
  unit ->
  service
(** Builder with defaults from {!default_service}; raises
    [Invalid_argument] on out-of-domain values. *)

type vertex = private {
  id : vertex_id;
  kind : kind;
  label : string;
  service : service;
}

type edge = private {
  src : vertex_id;
  dst : vertex_id;
  delta : float;
  alpha : float;
  beta : float;
  bandwidth : float option;
}

type t

val empty : t

val add_vertex : kind:kind -> label:string -> service:service -> t -> t * vertex_id
(** Vertex ids are assigned densely from 0 in insertion order. *)

val add_edge :
  ?delta:float ->
  ?alpha:float ->
  ?beta:float ->
  ?bandwidth:float ->
  src:vertex_id ->
  dst:vertex_id ->
  t ->
  t
(** [delta] defaults to 1 (the full workload crosses), [alpha]/[beta] to
    0 (no shared-medium usage). Raises [Invalid_argument] on unknown
    vertices, self loops, negative parameters, or a duplicate
    (src, dst) pair. *)

(** {1 Accessors} *)

val vertex : t -> vertex_id -> vertex
(** Raises [Invalid_argument] on an unknown id. *)

val vertices : t -> vertex list
(** In id order. *)

val edges : t -> edge list
val edge : t -> src:vertex_id -> dst:vertex_id -> edge option
val in_edges : t -> vertex_id -> edge list
val out_edges : t -> vertex_id -> edge list
val in_degree : t -> vertex_id -> int
val ingress_vertices : t -> vertex list
val egress_vertices : t -> vertex list
val vertex_count : t -> int

val find_vertex : t -> label:string -> vertex option
(** First vertex with the given label, if any. *)

(** {1 Mutation (functional)} *)

val set_service : t -> vertex_id -> service -> t

val update_service : t -> vertex_id -> (service -> service) -> t

val set_edge_params :
  ?delta:float -> ?alpha:float -> ?beta:float -> ?bandwidth:float option ->
  src:vertex_id -> dst:vertex_id -> t -> t
(** Replace selected parameters of an existing edge. Raises
    [Invalid_argument] if the edge does not exist. *)

val remove_edge : src:vertex_id -> dst:vertex_id -> t -> t
(** Raises [Invalid_argument] if the edge does not exist. *)

val scale_out_split : t -> vertex_id -> float list -> t
(** [scale_out_split g v fractions] reassigns the δ/α/β of [v]'s
    out-edges (in {!out_edges} order) so that they keep their current
    total but are split according to [fractions] (which are normalized
    first). Each edge's α and β are rescaled proportionally to its new
    δ, preserving the per-edge medium mix. Raises [Invalid_argument] on
    a length mismatch, or — naming the vertex — on negative, NaN,
    infinite, or all-zero fractions (an all-zero list would otherwise
    divide by zero and poison every out-edge with NaN δ/α/β). *)

(** {1 Analysis} *)

val topological_order : t -> vertex_id list option
(** [None] when the graph has a cycle. *)

val is_dag : t -> bool

exception Path_limit_exceeded of int
(** Raised by {!paths} when a graph has more ingress→egress paths than
    the enumeration limit; carries that limit. *)

val paths : ?limit:int -> t -> vertex_id list list
(** All ingress→egress paths as vertex-id sequences, in a deterministic
    order. Raises {!Path_limit_exceeded} if more than [limit] (default
    10_000) paths exist — execution graphs are small by construction.
    Callers that would rather degrade than fail use {!paths_capped}. *)

val paths_capped :
  ?limit:int -> t -> vertex_id list list * [ `Complete | `Truncated ]
(** Like {!paths} but total: on a path explosion it returns the first
    [limit] paths in enumeration order tagged [`Truncated] instead of
    raising — how {!Latency} (and the explain engine on top of it)
    degrades to a top-K path approximation on combinatorial graphs. *)

val validate : t -> (unit, string list) result
(** Structural checks: at least one ingress and one egress, acyclicity,
    and every IP vertex reachable from an ingress and co-reachable to an
    egress. Note that an edge's [alpha + beta] may legitimately exceed
    its [delta]: §4.7 folds an IP's internal interface/memory accesses
    (data-structure traversals, oversized accelerator fetches) into its
    edge's medium-usage parameters. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump (used by the CLI's [validate]). *)
