(** Estimation-mode façade (§3.8, Figure 4-a): one call that runs both
    model threads — throughput and latency — for an offloaded program
    under a traffic profile. *)

type report = {
  throughput : Throughput.result;
  latency : Latency.result;
  traffic : Traffic.t;
}

val run :
  ?queue_model:Latency.queue_model ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  report

val run_mix :
  ?queue_model:Latency.queue_model ->
  ?contention:Extensions.contention ->
  Graph.t ->
  hw:Params.hardware ->
  mix:Traffic.mix ->
  Extensions.mixed_report
(** Joint multi-class evaluation ({!Extensions.mixed_traffic}) with a
    size-independent graph; [?contention] adds the multi-resource
    interference layer. *)

val run_flowcache :
  ?queue_model:Latency.queue_model ->
  ?damping:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?init:float array ->
  Flowcache.spec ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  Flowcache.result
(** State-dependent traffic splits ({!Flowcache.evaluate}): the cache
    vertices' split fractions are solved to the fixed point where they
    equal the steady-state hit ratios they induce. *)

val saturation_sweep :
  ?points:int ->
  ?queue_model:Latency.queue_model ->
  Graph.t ->
  hw:Params.hardware ->
  packet_size:float ->
  max_rate:float ->
  (float * float * float) list
(** [(offered rate, attained rate, mean latency)] at [points]
    (default 20) offered loads from [max_rate/points] to [max_rate] —
    the latency-vs-throughput curves of Fig 6. *)

val pp_report : Graph.t -> Format.formatter -> report -> unit
