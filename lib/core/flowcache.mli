(** State-dependent (feedback) traffic splits: the flow-cache offload
    scenario at production rule scale.

    An OVS-style datapath classifies each packet through an exact-match
    cache (EMC), falling back to a megaflow table and finally a
    slow-path round trip. The split fractions at the cache vertices are
    not free parameters — they {e are} the caches' steady-state hit
    ratios, which in turn depend on the per-stage arrival rates the
    splits produce. This module closes that loop: it iterates split
    fractions → per-stage rates → steady-state hit ratios to a damped
    fixed point ({!Extensions.fixed_point}) and evaluates the converged
    graph with the ordinary throughput/latency/tail machinery.

    Hit ratios come from Che's approximation for an LRU cache under the
    independent reference model: the characteristic time T solves
    Σᵢ (1 − exp(−rᵢT)) = C for per-flow reference rates rᵢ and capacity
    C entries, and flow i then hits with probability 1 − exp(−rᵢT).
    Pure-LRU hit ratios are timescale invariant (substitute u = rT), so
    without a TTL the fixed point converges after the first evaluation;
    an optional TTL θ (the OVS flow idle-timeout analogue) caps the
    characteristic time at θ and makes the hit ratio genuinely
    rate-dependent. The flow population is Zipf(s)-distributed —
    pᵢ ∝ 1/iˢ — matching the simulator's sampler
    ([Lognic_sim.Flow_cache]). *)

type spec = {
  flows : int;  (** flow population size (millions are fine) *)
  zipf : float;  (** Zipf skew s ≥ 0 (0 = uniform) *)
  emc_entries : int;  (** EMC capacity, entries *)
  megaflow_entries : int;  (** megaflow-table capacity, entries *)
  ttl : float option;
      (** optional idle timeout θ in seconds; entries idle longer than
          θ count as misses. [None] models pure LRU. *)
  emc_label : string;  (** label of the EMC vertex (default "emc") *)
  megaflow_label : string;
      (** label of the megaflow vertex (default "megaflow") *)
}

val spec :
  ?ttl:float ->
  ?emc_label:string ->
  ?megaflow_label:string ->
  ?zipf:float ->
  ?emc_entries:int ->
  ?megaflow_entries:int ->
  flows:int ->
  unit ->
  spec
(** Defaults: zipf 1.0, emc 8192 entries, megaflow 65536 entries, no
    TTL. Raises [Invalid_argument] on out-of-domain values (flows and
    capacities ≥ 1, zipf ≥ 0 and finite, ttl > 0 and finite). *)

val zipf_weights : flows:int -> s:float -> float array
(** Normalized Zipf popularity vector: pᵢ ∝ 1/(i+1)ˢ, descending. *)

val che_characteristic_time : rates:float array -> capacity:int -> float
(** The T solving Σᵢ (1 − exp(−rᵢT)) = C (Newton, monotone from
    below). [infinity] when the population fits ([n ≤ C]) or no flow
    has a positive rate. *)

val hit_ratios :
  ?ttl:float -> rates:float array -> capacity:int -> unit -> float array
(** Per-flow steady-state LRU hit probabilities 1 − exp(−rᵢ·T_eff),
    where T_eff is {!che_characteristic_time} capped at [ttl]. *)

type class_report = {
  klass : string;  (** ["hot"], ["warm"] or ["cold"] *)
  share : float;  (** fraction of delivered packets in this class *)
  class_mean : float;  (** mean end-to-end latency, seconds *)
  class_p99 : float;  (** p99 end-to-end latency, seconds *)
}

type result = {
  graph : Graph.t;  (** input graph with the converged split fractions *)
  emc_hit_ratio : float;  (** fraction of all packets hitting the EMC *)
  megaflow_hit_ratio : float;
      (** conditional: fraction of EMC misses hitting the megaflow *)
  overall_hit_ratio : float;  (** 1 − slow-path share *)
  iterations : int;
  converged : bool;
  throughput : Throughput.result;  (** plain evaluation of [graph] *)
  latency : Latency.result;
  classes : class_report list;  (** hot, warm, cold — in that order *)
}

val evaluate :
  ?queue_model:Latency.queue_model ->
  ?damping:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?init:float array ->
  spec ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  result
(** Fixed-point evaluation of the feedback splits. The graph must
    contain a vertex labelled [spec.emc_label] and one labelled
    [spec.megaflow_label], each with exactly two out-edges; by
    convention the {e first} out-edge (in {!Graph.out_edges} insertion
    order) is the hit route and the second the miss route. Each
    iteration rewrites both splits with {!Graph.scale_out_split},
    re-evaluates the latency model to obtain the per-stage packet rates
    (path-reach probability × upstream blocking survival × offered
    packet rate), and resolves the Che hit ratios at those rates; the
    megaflow's reference stream is the EMC-miss stream
    (qᵢ ∝ pᵢ·(1 − hᵢᵉᵐᶜ)) rescaled to the megaflow stage rate.
    [init] (default [[|0.5; 0.5|]]) seeds [emc; megaflow] hit ratios;
    damping/termination as in {!Extensions.fixed_point}.

    The final report comes from one plain {!Throughput.evaluate} +
    {!Latency.evaluate} on the converged graph, so a degenerate
    configuration whose hit ratios do not depend on the rates (no TTL)
    reproduces the static {!Graph.scale_out_split} +
    [Estimate.run] answer bit for bit. Per-class rows classify
    ingress→egress paths by membership: paths through the megaflow's
    miss successor are cold, other paths through the megaflow vertex
    are warm, the rest are hot; on the canonical EMC → megaflow →
    slow-path chain each class is a single path, making the per-class
    p99 (from {!Tail.evaluate}) exact rather than a mixture
    approximation.

    Raises [Invalid_argument] if a cache vertex is missing or lacks
    exactly two out-edges. *)

val pp_result : Format.formatter -> result -> unit
