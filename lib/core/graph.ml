type vertex_id = int
type kind = Ingress | Egress | Ip

type service = {
  throughput : float;
  parallelism : int;
  queue_capacity : int;
  overhead : float;
  accel : float;
  partition : float;
}

let default_service =
  {
    throughput = infinity;
    parallelism = 1;
    queue_capacity = 64;
    overhead = 0.;
    accel = 1.;
    partition = 1.;
  }

let service ?(parallelism = 1) ?(queue_capacity = 64) ?(overhead = 0.)
    ?(accel = 1.) ?(partition = 1.) ~throughput () =
  if throughput <= 0. then invalid_arg "Graph.service: throughput must be > 0";
  if parallelism < 1 then invalid_arg "Graph.service: parallelism must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Graph.service: queue_capacity must be >= 1";
  if overhead < 0. then invalid_arg "Graph.service: overhead must be >= 0";
  if accel <= 0. then invalid_arg "Graph.service: accel must be > 0";
  if partition <= 0. || partition > 1. then
    invalid_arg "Graph.service: partition must be in (0, 1]";
  { throughput; parallelism; queue_capacity; overhead; accel; partition }

type vertex = { id : vertex_id; kind : kind; label : string; service : service }

type edge = {
  src : vertex_id;
  dst : vertex_id;
  delta : float;
  alpha : float;
  beta : float;
  bandwidth : float option;
}

type t = { verts : vertex list; edgs : edge list }
(* Both lists are kept in insertion order; graphs have at most tens of
   vertices, so lists beat the bookkeeping of maps here. *)

let empty = { verts = []; edgs = [] }

let add_vertex ~kind ~label ~service g =
  let id = List.length g.verts in
  ({ g with verts = g.verts @ [ { id; kind; label; service } ] }, id)

let vertex g id =
  match List.find_opt (fun v -> v.id = id) g.verts with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Graph.vertex: unknown id %d" id)

let mem_vertex g id = List.exists (fun v -> v.id = id) g.verts

let add_edge ?(delta = 1.) ?(alpha = 0.) ?(beta = 0.) ?bandwidth ~src ~dst g =
  if not (mem_vertex g src) then invalid_arg "Graph.add_edge: unknown src";
  if not (mem_vertex g dst) then invalid_arg "Graph.add_edge: unknown dst";
  if src = dst then invalid_arg "Graph.add_edge: self loop";
  if delta < 0. || alpha < 0. || beta < 0. then
    invalid_arg "Graph.add_edge: negative parameter";
  (match bandwidth with
  | Some bw when bw <= 0. -> invalid_arg "Graph.add_edge: bandwidth must be > 0"
  | _ -> ());
  if List.exists (fun e -> e.src = src && e.dst = dst) g.edgs then
    invalid_arg "Graph.add_edge: duplicate edge";
  { g with edgs = g.edgs @ [ { src; dst; delta; alpha; beta; bandwidth } ] }

let vertices g = g.verts
let edges g = g.edgs
let edge g ~src ~dst = List.find_opt (fun e -> e.src = src && e.dst = dst) g.edgs
let in_edges g id = List.filter (fun e -> e.dst = id) g.edgs
let out_edges g id = List.filter (fun e -> e.src = id) g.edgs
let in_degree g id = List.length (in_edges g id)
let ingress_vertices g = List.filter (fun v -> v.kind = Ingress) g.verts
let egress_vertices g = List.filter (fun v -> v.kind = Egress) g.verts
let vertex_count g = List.length g.verts
let find_vertex g ~label = List.find_opt (fun v -> v.label = label) g.verts

let set_service g id service =
  ignore (vertex g id);
  {
    g with
    verts = List.map (fun v -> if v.id = id then { v with service } else v) g.verts;
  }

let update_service g id f = set_service g id (f (vertex g id).service)

let set_edge_params ?delta ?alpha ?beta ?bandwidth ~src ~dst g =
  match edge g ~src ~dst with
  | None -> invalid_arg "Graph.set_edge_params: no such edge"
  | Some _ ->
    let update e =
      if e.src = src && e.dst = dst then
        {
          e with
          delta = Option.value delta ~default:e.delta;
          alpha = Option.value alpha ~default:e.alpha;
          beta = Option.value beta ~default:e.beta;
          bandwidth = Option.value bandwidth ~default:e.bandwidth;
        }
      else e
    in
    { g with edgs = List.map update g.edgs }

let remove_edge ~src ~dst g =
  match edge g ~src ~dst with
  | None -> invalid_arg "Graph.remove_edge: no such edge"
  | Some _ ->
    { g with edgs = List.filter (fun e -> not (e.src = src && e.dst = dst)) g.edgs }

let scale_out_split g id fractions =
  let outs = out_edges g id in
  if List.length outs <> List.length fractions then
    invalid_arg "Graph.scale_out_split: length mismatch";
  (* Degenerate fraction vectors would otherwise reach the division by
     [total_fraction] below and poison every out-edge with NaN δ/α/β
     (NaN passes both the [f < 0.] and [total <= 0.] tests). Name the
     vertex in every rejection so the caller can find the offending
     split — the feedback-split iteration feeds computed fractions in
     here, and "zero split" alone does not say where. *)
  let at () =
    match List.find_opt (fun v -> v.id = id) g.verts with
    | Some v -> Printf.sprintf "%S (vertex %d)" v.label id
    | None -> Printf.sprintf "vertex %d" id
  in
  if List.exists (fun f -> not (Float.is_finite f)) fractions then
    invalid_arg
      (Printf.sprintf "Graph.scale_out_split: non-finite fraction at %s"
         (at ()));
  if List.exists (fun f -> f < 0.) fractions then
    invalid_arg
      (Printf.sprintf "Graph.scale_out_split: negative fraction at %s" (at ()));
  let total_fraction = List.fold_left ( +. ) 0. fractions in
  if total_fraction <= 0. then
    invalid_arg
      (Printf.sprintf "Graph.scale_out_split: all-zero fractions at %s" (at ()));
  let total_delta = List.fold_left (fun acc e -> acc +. e.delta) 0. outs in
  let assignments =
    List.map2
      (fun e f ->
        let new_delta = total_delta *. f /. total_fraction in
        (* preserve the edge's medium mix: alpha/beta stay proportional
           to delta *)
        let ratio = if e.delta > 0. then new_delta /. e.delta else 0. in
        (e, new_delta, e.alpha *. ratio, e.beta *. ratio))
      outs fractions
  in
  let update e =
    match
      List.find_opt (fun (e', _, _, _) -> e'.src = e.src && e'.dst = e.dst) assignments
    with
    | Some (_, d, a, b) -> { e with delta = d; alpha = a; beta = b }
    | None -> e
  in
  { g with edgs = List.map update g.edgs }

let topological_order g =
  let in_deg = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace in_deg v.id (in_degree g v.id)) g.verts;
  let ready =
    List.filter_map (fun v -> if in_degree g v.id = 0 then Some v.id else None) g.verts
  in
  let rec loop ready acc =
    match ready with
    | [] -> List.rev acc
    | id :: rest ->
      let next =
        List.fold_left
          (fun ready e ->
            let d = Hashtbl.find in_deg e.dst - 1 in
            Hashtbl.replace in_deg e.dst d;
            if d = 0 then ready @ [ e.dst ] else ready)
          rest (out_edges g id)
      in
      loop next (id :: acc)
  in
  let order = loop ready [] in
  if List.length order = vertex_count g then Some order else None

let is_dag g = Option.is_some (topological_order g)

exception Path_limit_exceeded of int

(* Shared DFS under both path entry points: collects up to [limit]
   ingress→egress paths, then either stops quietly or signals the
   caller, depending on [on_limit]. *)
let enumerate_paths ~limit ~on_limit g =
  let exception Stop in
  let count = ref 0 in
  let truncated = ref false in
  let results = ref [] in
  let rec walk v acc =
    let vx = vertex g v in
    if vx.kind = Egress then begin
      if !count >= limit then begin
        truncated := true;
        on_limit ();
        raise Stop
      end;
      incr count;
      results := List.rev (v :: acc) :: !results
    end
    else
      List.iter (fun e -> walk e.dst (v :: acc)) (out_edges g v)
  in
  (try List.iter (fun v -> walk v.id []) (ingress_vertices g)
   with Stop -> ());
  (List.rev !results, if !truncated then `Truncated else `Complete)

let paths ?(limit = 10_000) g =
  fst
    (enumerate_paths ~limit
       ~on_limit:(fun () -> raise (Path_limit_exceeded limit))
       g)

let paths_capped ?(limit = 10_000) g =
  enumerate_paths ~limit ~on_limit:(fun () -> ()) g

let reachable_from g seeds =
  let visited = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      List.iter (fun e -> go e.dst) (out_edges g id)
    end
  in
  List.iter go seeds;
  visited

let coreachable_to g seeds =
  let visited = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      List.iter (fun e -> go e.src) (in_edges g id)
    end
  in
  List.iter go seeds;
  visited

let validate g =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let ingresses = ingress_vertices g and egresses = egress_vertices g in
  if ingresses = [] then err "graph has no ingress vertex";
  if egresses = [] then err "graph has no egress vertex";
  if not (is_dag g) then err "graph has a cycle";
  if ingresses <> [] && egresses <> [] && is_dag g then begin
    let fwd = reachable_from g (List.map (fun v -> v.id) ingresses) in
    let bwd = coreachable_to g (List.map (fun v -> v.id) egresses) in
    List.iter
      (fun v ->
        if v.kind = Ip then begin
          if not (Hashtbl.mem fwd v.id) then
            err "vertex %d (%s) unreachable from any ingress" v.id v.label;
          if not (Hashtbl.mem bwd v.id) then
            err "vertex %d (%s) cannot reach any egress" v.id v.label
        end)
      g.verts
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_kind ppf = function
  | Ingress -> Fmt.string ppf "ingress"
  | Egress -> Fmt.string ppf "egress"
  | Ip -> Fmt.string ppf "ip"

let pp ppf g =
  Fmt.pf ppf "@[<v>graph (%d vertices, %d edges)" (vertex_count g)
    (List.length g.edgs);
  List.iter
    (fun v ->
      Fmt.pf ppf "@,  v%d %a %S P=%g D=%d N=%d O=%g A=%g gamma=%g" v.id pp_kind
        v.kind v.label v.service.throughput v.service.parallelism
        v.service.queue_capacity v.service.overhead v.service.accel
        v.service.partition)
    g.verts;
  List.iter
    (fun (e : edge) ->
      Fmt.pf ppf "@,  e %d->%d delta=%g alpha=%g beta=%g%a" e.src e.dst e.delta
        e.alpha e.beta
        Fmt.(option (fun ppf bw -> Fmt.pf ppf " bw=%g" bw))
        e.bandwidth)
    g.edgs;
  Fmt.pf ppf "@]"
