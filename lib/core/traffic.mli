(** Traffic profiles (Table 2: BW_in, g_in, dist_size).

    A {e single-class} profile is fixed-size packets offered at a given
    byte rate — the assumption §3.5/§3.6 derive under. A {e mix}
    (Extension #2) is a weighted set of single-class profiles, evaluated
    per class and averaged by weight. *)

type t = {
  rate : float;  (** BW_in — offered load in bytes/s *)
  packet_size : float;  (** g_in — bytes per packet (transfer granule) *)
}

val make : rate:float -> packet_size:float -> t
(** Raises [Invalid_argument] on non-positive values. *)

val packet_rate : t -> float
(** Packets per second: rate / packet_size. *)

type mix = (t * float) list
(** Weighted classes; weights need not be normalized. *)

val mix : (t * float) list -> mix
(** Validates: non-empty, non-negative weights, positive weight sum. *)

val mix_of_sizes : rate:float -> sizes:(float * float) list -> mix
(** [mix_of_sizes ~rate ~sizes] splits one aggregate byte rate across
    packet-size classes [(size, weight)] — the "split bandwidth across
    different-sized flows" construction of §4.6 scenario 1. Each class
    carries [rate * w/Σw] bytes/s of its own size. *)

val normalize_weights : mix -> (t * float) list
(** Same classes with weights summing to 1. *)

val mean_packet_size : mix -> float
(** Byte-weighted mean of per-class packet sizes — the size of the
    average {e byte}'s packet. Use {!mean_packet_size_by_packets} when
    converting an aggregate byte rate to a packet rate. *)

val mean_packet_size_by_packets : mix -> float
(** Packet-weighted (harmonic-in-bytes) mean packet size:
    [total_rate / total_packet_rate]. Dividing the aggregate byte rate
    by this value yields the mix's true aggregate packet rate, which
    the byte-weighted mean does not. *)

val total_rate : mix -> float

val total_packet_rate : mix -> float
(** Aggregate packets per second across all classes. *)

val pp : Format.formatter -> t -> unit
