type spec = {
  flows : int;
  zipf : float;
  emc_entries : int;
  megaflow_entries : int;
  ttl : float option;
  emc_label : string;
  megaflow_label : string;
}

let spec ?ttl ?(emc_label = "emc") ?(megaflow_label = "megaflow") ?(zipf = 1.0)
    ?(emc_entries = 8192) ?(megaflow_entries = 65536) ~flows () =
  if flows < 1 then invalid_arg "Flowcache.spec: flows must be >= 1";
  if not (Float.is_finite zipf && zipf >= 0.) then
    invalid_arg "Flowcache.spec: zipf must be finite and >= 0";
  if emc_entries < 1 then
    invalid_arg "Flowcache.spec: emc_entries must be >= 1";
  if megaflow_entries < 1 then
    invalid_arg "Flowcache.spec: megaflow_entries must be >= 1";
  (match ttl with
  | Some t when not (Float.is_finite t && t > 0.) ->
    invalid_arg "Flowcache.spec: ttl must be finite and > 0"
  | _ -> ());
  { flows; zipf; emc_entries; megaflow_entries; ttl; emc_label; megaflow_label }

let zipf_weights ~flows ~s =
  if flows < 1 then invalid_arg "Flowcache.zipf_weights: flows must be >= 1";
  let w = Array.init flows (fun i -> float_of_int (i + 1) ** -.s) in
  let z = Array.fold_left ( +. ) 0. w in
  Array.map (fun x -> x /. z) w

(* Newton on f(T) = Σ(1 − exp(−rᵢT)) − C. f is increasing and concave,
   so starting from T₀ = C/Σrᵢ (where f ≤ 0, since 1 − e⁻ᵘ ≤ u) the
   iterates approach the root monotonically from below and never
   overshoot. Quadratic convergence: ~10 passes even at 10⁶ flows. *)
let che_characteristic_time ~rates ~capacity =
  if capacity < 1 then
    invalid_arg "Flowcache.che_characteristic_time: capacity must be >= 1";
  let n = Array.length rates in
  let total = Array.fold_left ( +. ) 0. rates in
  if n <= capacity || total <= 0. then infinity
  else begin
    let c = float_of_int capacity in
    let t = ref (c /. total) in
    (try
       for _ = 1 to 60 do
         let f = ref (-.c) and d = ref 0. in
         Array.iter
           (fun r ->
             let e = exp (-.r *. !t) in
             f := !f +. (1. -. e);
             d := !d +. (r *. e))
           rates;
         if Float.abs !f <= 1e-12 *. c || !d <= 0. then raise Exit;
         t := !t -. (!f /. !d)
       done
     with Exit -> ());
    !t
  end

let hit_ratios ?ttl ~rates ~capacity () =
  let t = che_characteristic_time ~rates ~capacity in
  let t_eff = match ttl with None -> t | Some theta -> Float.min t theta in
  if t_eff = infinity then Array.map (fun r -> if r > 0. then 1. else 0.) rates
  else Array.map (fun r -> 1. -. exp (-.r *. t_eff)) rates

type class_report = {
  klass : string;
  share : float;
  class_mean : float;
  class_p99 : float;
}

type result = {
  graph : Graph.t;
  emc_hit_ratio : float;
  megaflow_hit_ratio : float;
  overall_hit_ratio : float;
  iterations : int;
  converged : bool;
  throughput : Throughput.result;
  latency : Latency.result;
  classes : class_report list;
}

let cache_vertex g label =
  match Graph.find_vertex g ~label with
  | None ->
    invalid_arg
      (Printf.sprintf "Flowcache.evaluate: no vertex labelled %S" label)
  | Some v ->
    (match Graph.out_edges g v.Graph.id with
    | [ hit; miss ] -> (v.Graph.id, hit.Graph.dst, miss.Graph.dst)
    | outs ->
      invalid_arg
        (Printf.sprintf
           "Flowcache.evaluate: cache vertex %S needs exactly 2 out-edges \
            (hit then miss), found %d"
           label (List.length outs)))

(* Effective packet arrival rate at [vid]: offered packet rate × Σ over
   paths through [vid] of the path weight times the blocking survival
   Π(1 − Pro_N) of the vertices crossed before [vid]. *)
let stage_packet_rate (lat : Latency.result) ~packet_rate vid =
  let drop =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (t : Latency.vertex_terms) ->
        Hashtbl.replace tbl t.Latency.vid t.Latency.drop_probability)
      lat.Latency.per_vertex;
    fun id -> match Hashtbl.find_opt tbl id with Some p -> p | None -> 0.
  in
  let reach =
    List.fold_left
      (fun acc (p : Latency.path_report) ->
        let rec walk survival = function
          | [] -> 0.
          | u :: rest ->
            if u = vid then survival
            else walk (survival *. (1. -. drop u)) rest
        in
        acc +. (p.Latency.weight *. walk 1. p.Latency.path))
      0. lat.Latency.per_path
  in
  packet_rate *. reach

let evaluate ?queue_model ?damping ?tol ?max_iter ?init sp g ~hw ~traffic =
  let emc_v, _, _ = cache_vertex g sp.emc_label in
  let mega_v, _, mega_miss_dst = cache_vertex g sp.megaflow_label in
  let p = zipf_weights ~flows:sp.flows ~s:sp.zipf in
  let packet_rate = Traffic.packet_rate traffic in
  let apply g x =
    let g = Graph.scale_out_split g emc_v [ x.(0); 1. -. x.(0) ] in
    Graph.scale_out_split g mega_v [ x.(1); 1. -. x.(1) ]
  in
  (* Without a TTL the hit ratios are timescale invariant (u = rT), so
     the per-stage rates scale out of the Che solve entirely: resolve
     once and let the fixed point settle on the constant target. *)
  let solve ~r_emc ~r_mega =
    let emc_rates = Array.map (fun pi -> r_emc *. pi) p in
    let h_emc =
      hit_ratios ?ttl:sp.ttl ~rates:emc_rates ~capacity:sp.emc_entries ()
    in
    let agg_emc = ref 0. and miss_mass = ref 0. in
    let miss = Array.make sp.flows 0. in
    Array.iteri
      (fun i pi ->
        agg_emc := !agg_emc +. (pi *. h_emc.(i));
        let m = pi *. (1. -. h_emc.(i)) in
        miss.(i) <- m;
        miss_mass := !miss_mass +. m)
      p;
    let agg_mega =
      if !miss_mass <= 0. then 0.
      else begin
        let mega_rates =
          Array.map (fun m -> r_mega *. m /. !miss_mass) miss
        in
        let h_mega =
          hit_ratios ?ttl:sp.ttl ~rates:mega_rates
            ~capacity:sp.megaflow_entries ()
        in
        let acc = ref 0. in
        Array.iteri
          (fun i m -> acc := !acc +. (m /. !miss_mass *. h_mega.(i)))
          miss;
        !acc
      end
    in
    [| !agg_emc; agg_mega |]
  in
  let cached_static = ref None in
  let update x =
    match (sp.ttl, !cached_static) with
    | None, Some h -> h
    | _ ->
      let g' = apply g x in
      let lat = Latency.evaluate ?model:queue_model g' ~hw ~traffic in
      let r_emc = stage_packet_rate lat ~packet_rate emc_v in
      let r_mega = stage_packet_rate lat ~packet_rate mega_v in
      (* scale-invariance needs a strictly positive rate for the solve;
         the value is arbitrary in the no-TTL case *)
      let r_emc = if r_emc > 0. then r_emc else packet_rate in
      let r_mega = if r_mega > 0. then r_mega else packet_rate in
      let h = solve ~r_emc ~r_mega in
      if sp.ttl = None then cached_static := Some h;
      h
  in
  let x0 = match init with Some x -> x | None -> [| 0.5; 0.5 |] in
  if Array.length x0 <> 2 then
    invalid_arg "Flowcache.evaluate: init must have exactly 2 components";
  Array.iter
    (fun v ->
      if not (Float.is_finite v && v >= 0. && v <= 1.) then
        invalid_arg "Flowcache.evaluate: init components must lie in [0, 1]")
    x0;
  let fp = Extensions.fixed_point ?damping ?tol ?max_iter ~update x0 in
  let h_emc = fp.Extensions.value.(0) and h_mega = fp.Extensions.value.(1) in
  (* One plain evaluation of the converged graph produces the report —
     the same calls a static split would get, so the no-feedback case
     collapses to Estimate.run bit for bit. *)
  let g_final = apply g fp.Extensions.value in
  let throughput = Throughput.evaluate g_final ~hw ~traffic in
  let latency = Latency.evaluate ?model:queue_model g_final ~hw ~traffic in
  let tail = Tail.evaluate ?model:queue_model g_final ~hw ~traffic in
  let class_of path =
    if List.mem mega_miss_dst path then `Cold
    else if List.mem mega_v path then `Warm
    else `Hot
  in
  let p99_of =
    let tails = Tail.per_path tail in
    fun path ->
      match
        List.find_opt (fun (t : Tail.path_tail) -> t.Tail.tpath = path) tails
      with
      | Some t -> t.Tail.tq.Tail.p99
      | None -> nan
  in
  let classes =
    List.map
      (fun (name, tag) ->
        let members =
          List.filter
            (fun (pr : Latency.path_report) -> class_of pr.Latency.path = tag)
            latency.Latency.per_path
        in
        let share =
          List.fold_left
            (fun acc (pr : Latency.path_report) -> acc +. pr.Latency.weight)
            0. members
        in
        let wavg f =
          if share <= 0. then 0.
          else
            List.fold_left
              (fun acc (pr : Latency.path_report) ->
                acc +. (pr.Latency.weight *. f pr))
              0. members
            /. share
        in
        {
          klass = name;
          share;
          class_mean = wavg (fun pr -> pr.Latency.total);
          class_p99 = wavg (fun pr -> p99_of pr.Latency.path);
        })
      [ ("hot", `Hot); ("warm", `Warm); ("cold", `Cold) ]
  in
  {
    graph = g_final;
    emc_hit_ratio = h_emc;
    megaflow_hit_ratio = h_mega;
    overall_hit_ratio = h_emc +. ((1. -. h_emc) *. h_mega);
    iterations = fp.Extensions.iterations;
    converged = fp.Extensions.fp_converged;
    throughput;
    latency;
    classes;
  }

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>flow-cache fixed point: %s in %d iteration(s)@,\
     hit ratios: emc %.4f, megaflow %.4f (cond), overall %.4f@,\
     attained %.4g B/s, mean latency %.4g s"
    (if r.converged then "converged" else "NOT CONVERGED")
    r.iterations r.emc_hit_ratio r.megaflow_hit_ratio r.overall_hit_ratio
    r.throughput.Throughput.attained r.latency.Latency.mean;
  List.iter
    (fun c ->
      Fmt.pf ppf "@,  %-4s share %.4f  mean %.4g s  p99 %.4g s" c.klass
        c.share c.class_mean c.class_p99)
    r.classes;
  Fmt.pf ppf "@]"
