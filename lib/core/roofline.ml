type ceiling = { name : string; bandwidth : float }
type t = { label : string; peak_ops : float; ceilings : ceiling list }

let create ~label ~peak_ops ~ceilings =
  if peak_ops <= 0. then invalid_arg "Roofline.create: peak_ops must be > 0";
  if ceilings = [] then invalid_arg "Roofline.create: needs >= 1 ceiling";
  List.iter
    (fun c ->
      if c.bandwidth <= 0. then
        invalid_arg "Roofline.create: ceiling bandwidth must be > 0")
    ceilings;
  { label; peak_ops; ceilings }

let check_intensity intensity =
  if intensity <= 0. then invalid_arg "Roofline: intensity must be > 0"

let min_bw t =
  List.fold_left (fun acc c -> Float.min acc c.bandwidth) infinity t.ceilings

let attainable_ops t ~intensity =
  check_intensity intensity;
  Float.min t.peak_ops (min_bw t *. intensity)

let attainable_bytes t ~intensity = attainable_ops t ~intensity /. intensity

let compute_bound t ~intensity =
  check_intensity intensity;
  t.peak_ops <= min_bw t *. intensity

let knee t = t.peak_ops /. min_bw t

let binding_ceiling t ~intensity =
  if compute_bound t ~intensity then "compute"
  else
    let best =
      List.fold_left
        (fun acc c ->
          match acc with
          | None -> Some c
          | Some best -> if c.bandwidth < best.bandwidth then Some c else acc)
        None t.ceilings
    in
    match best with Some c -> c.name | None -> assert false

let ops_per_packet ~ops ~packet_size =
  if packet_size <= 0. then invalid_arg "Roofline.ops_per_packet: packet_size";
  ops /. packet_size

let of_vertex g ~(hw : Params.hardware) ~packet_size id =
  let v = Graph.vertex g id in
  if v.service.throughput = infinity then None
  else begin
    let peak_ops =
      v.service.partition *. v.service.accel *. v.service.throughput
      /. packet_size
    in
    let incoming = Graph.in_edges g id in
    let sum f = List.fold_left (fun acc e -> acc +. f e) 0. incoming in
    let sum_alpha = sum (fun (e : Graph.edge) -> e.alpha) in
    let sum_beta = sum (fun (e : Graph.edge) -> e.beta) in
    let ceilings =
      (if sum_alpha > 0. then
         [ { name = "interface"; bandwidth = hw.bw_interface /. sum_alpha } ]
       else [])
      @ (if sum_beta > 0. then
           [ { name = "memory"; bandwidth = hw.bw_memory /. sum_beta } ]
         else [])
      @ List.filter_map
          (fun (e : Graph.edge) ->
            match e.bandwidth with
            | Some bw when e.delta > 0. ->
              Some
                {
                  name = Printf.sprintf "link-%d-%d" e.src e.dst;
                  bandwidth = bw /. e.delta;
                }
            | Some _ | None -> None)
          incoming
    in
    (* an unconstrained vertex still gets a roofline: cap it with its
       own compute roof expressed as a ceiling *)
    let ceilings =
      if ceilings = [] then
        [ { name = "unconstrained"; bandwidth = peak_ops *. packet_size *. 1e3 } ]
      else ceilings
    in
    Some (create ~label:v.label ~peak_ops ~ceilings)
  end

let pp ppf t =
  Fmt.pf ppf "@[<v>roofline %S: peak=%.3g ops/s" t.label t.peak_ops;
  List.iter
    (fun c -> Fmt.pf ppf "@,  ceiling %S: %.3g B/s" c.name c.bandwidth)
    t.ceilings;
  Fmt.pf ppf "@,  knee intensity: %.3g ops/B@]" (knee t)
