type report = {
  throughput : Throughput.result;
  latency : Latency.result;
  traffic : Traffic.t;
}

let run ?queue_model g ~hw ~traffic =
  {
    throughput = Throughput.evaluate g ~hw ~traffic;
    latency = Latency.evaluate ?model:queue_model g ~hw ~traffic;
    traffic;
  }

let run_mix ?queue_model ?contention g ~hw ~mix =
  Extensions.mixed_traffic ?queue_model ?contention ~hw
    ~graph_for:(fun _ -> g)
    mix

let run_flowcache ?queue_model ?damping ?tol ?max_iter ?init spec g ~hw
    ~traffic =
  Flowcache.evaluate ?queue_model ?damping ?tol ?max_iter ?init spec g ~hw
    ~traffic

let saturation_sweep ?(points = 20) ?queue_model g ~hw ~packet_size ~max_rate =
  List.init points (fun i ->
      let rate = max_rate *. float_of_int (i + 1) /. float_of_int points in
      let traffic = Traffic.make ~rate ~packet_size in
      let r = run ?queue_model g ~hw ~traffic in
      (rate, r.throughput.Throughput.attained, r.latency.Latency.mean))

let pp_report g ppf r =
  Fmt.pf ppf "@[<v>traffic: %a@,%a@,%a@]" Traffic.pp r.traffic
    (Throughput.pp_result g) r.throughput Latency.pp_result r.latency
