(** Model generalizations (§3.7).

    {b Extension #1 — consolidated execution graphs.} Multiple tenants
    offload different programs concurrently. Each tenant's graph is
    evaluated with its own traffic share; shared physical IPs are
    virtualized through the γ partition parameter, and shared-medium
    usage (α/β) aggregates across tenants, so one tenant's interface
    pressure degrades another's ceiling.

    {b Extension #2 — diverse traffic profiles.} When the application
    consumes several packet sizes, per-size execution graphs (C, δ and O
    vary with size) are evaluated independently and the outputs combined
    as the dist_size-weighted averages of Eqs 3 and 8.

    {b Extension #3 — non-work-conserving IPs.} A rate-limiter vertex —
    an enqueue/dequeue-only IP with a fixed-size queue — is inserted in
    front of the IP on its incoming edge; the queue captures the
    resource idleness. *)

type tenant = {
  name : string;
  graph : Graph.t;
  traffic : Traffic.t;  (** this tenant's own offered load and size *)
}

type tenant_report = {
  tenant : string;
  throughput : Throughput.result;
  latency : Latency.result;
}

type consolidated = {
  tenants : tenant_report list;
  total_attained : float;  (** Σ per-tenant carried bytes/s *)
  mean_latency : float;  (** traffic-weighted across tenants *)
  interface_utilization : float;
      (** Σ tenant α-bytes/s over BW_INTF; > 1 means the shared
          interface is oversubscribed *)
  memory_utilization : float;
}

val consolidate : hw:Params.hardware -> tenant list -> consolidated
(** Evaluates every tenant against shared media whose effective
    bandwidth is scaled down by the other tenants' α/β pressure.
    Raises [Invalid_argument] on an empty tenant list. *)

type class_contention = {
  slowdown : float;
      (** service-time dilation from co-located classes' pressure,
          ≥ 1; applied as A/slowdown on every finite vertex *)
  pressure : (string * float) list;
      (** this class's own per-resource pressure: rate·demand/capacity *)
  resource_caps : (string * float) list;
      (** this class's byte/s ceiling on each resource it demands:
          share·capacity/demand, where share is the offered-byte share *)
}

type contention = {
  demands : (string * float) list list;
      (** per class (mix order): (resource name, demand per offered
          byte). Resources must exist in {!Params.hardware.resources}. *)
  interference : float array array;
      (** M with zero diagonal; slowdown_i = 1 + Σ_{j≠i} M_ij ·
          pressure_j, so adding a co-located class can only slow the
          others down (monotone by construction) *)
}

val contention :
  demands:(string * float) list list ->
  interference:float array array ->
  contention
(** Validating constructor: one demand vector per class, an n×n matrix
    with zero diagonal and finite non-negative entries, finite
    non-negative demands with non-empty resource names. Raises
    [Invalid_argument] otherwise. *)

type mixed_report = {
  classes : (Traffic.t * float * Throughput.result * Latency.result) list;
      (** per class: normalized weight, capacity split by byte share
          (plus any contention resource cap), latency on the union
          queues *)
  throughput : float;  (** Σ per-class attained bytes/s *)
  latency : float;  (** Σ dist_size · T_attainable *)
  contention : class_contention list option;
      (** per-class slowdown/pressure report, [Some] iff a contention
          spec was supplied *)
}

val mixed_traffic :
  ?queue_model:Latency.queue_model ->
  ?contention:contention ->
  hw:Params.hardware ->
  graph_for:(Traffic.t -> Graph.t) ->
  Traffic.mix ->
  mixed_report
(** Joint multi-class evaluation (Extension #2 done properly): classes
    are evaluated against {e shared} entities, not private device
    copies. Entities are matched across the per-class graphs by vertex
    label / (src,dst) label pair / the two device media; each entity's
    capacity is split across its sharing classes by offered-byte share
    (weighted multi-class processor sharing), and each class's
    throughput ceiling is {!Throughput.evaluate} on its share-scaled
    graph. Latency feeds every shared vertex the {e union} of class
    arrival streams: λ = Σ λ_j and a packet-size-mixture service rate
    (λ-weighted harmonic mean of the per-class μ_j, with an M/G/1
    (1+SCV)/2 waiting inflation when the μ_j differ), via
    {!Latency.terms_of_rates}. The aggregate throughput is the {e sum}
    of per-class attained rates (the weight-averaged number the old
    behavior reported is recoverable as Σ wᵢ·attainedᵢ).

    A class that is the only user of an entity gets share 1 exactly, so
    a single-class mix is bit-for-bit identical to
    {!Throughput.evaluate} + {!Latency.evaluate} on the plain graph.

    With [?contention], co-located classes additionally dilate each
    other's service times (slowdown from the interference matrix and
    resource pressures) and each class's capacity is min'd with its
    share of every named resource ({!Throughput.Resource_bound}).
    Raises [Invalid_argument] on a demand-vector arity mismatch or a
    resource name absent from [hw.resources]. *)

val mixed_traffic_independent :
  hw:Params.hardware ->
  graph_for:(Traffic.t -> Graph.t) ->
  Traffic.mix ->
  mixed_report
(** The pre-joint behavior, kept for comparison and ablation: each
    class is evaluated on a private copy of the device and the
    aggregates are weight-averaged per-class results. Structurally
    optimistic whenever classes actually share hardware — see the
    "Mixed traffic" section of MODEL.md for the delta. [contention] is
    always [None]. *)

val mixed_tail :
  ?model:Latency.queue_model ->
  ?contention:contention ->
  hw:Params.hardware ->
  graph_for:(Traffic.t -> Graph.t) ->
  Traffic.mix ->
  (Traffic.t * Tail.result) list
(** Per-class tail-latency analysis under the same joint evaluation:
    each class's sojourn moments are computed with the union-queue
    (λ, μ) of every shared vertex threaded through
    {!Tail.evaluate}'s [rates_for] hook. *)

type fixed_point_result = {
  value : float array;  (** the final (possibly unconverged) iterate *)
  iterations : int;  (** damped steps actually taken *)
  fp_converged : bool;
      (** the sup-norm step fell to [tol] within [max_iter] iterations *)
}

val fixed_point :
  ?damping:float ->
  ?tol:float ->
  ?max_iter:int ->
  update:(float array -> float array) ->
  float array ->
  fixed_point_result
(** [fixed_point ~update x0] iterates the damped map
    x ← (1 − d)·x + d·update(x) from [x0] until the sup-norm step is
    ≤ [tol] (default 1e-9) or [max_iter] (default 200) steps elapse.
    [damping] d ∈ (0, 1] defaults to 0.5 — a contraction keeps its
    fixed points under damping and oscillating maps (a cache whose hit
    ratio rises when its arrival rate falls, and vice versa) are pulled
    back toward convergence. The state-dependent traffic-split solver
    ({!Flowcache.evaluate}) iterates split fractions → per-stage rates
    → steady-state hit ratios through this. Raises [Invalid_argument]
    on out-of-domain parameters, a dimension change, or a non-finite
    update component. *)

val insert_rate_limiter :
  Graph.t ->
  before:Graph.vertex_id ->
  rate:float ->
  queue_capacity:int ->
  Graph.t * Graph.vertex_id
(** [insert_rate_limiter g ~before ~rate ~queue_capacity] splices a
    rate-limiter IP onto every incoming edge of [before]: incoming edges
    are re-pointed at the new vertex and one edge (inheriting the summed
    δ and zero shared-media use) connects it to [before]. Returns the
    rewritten graph and the limiter's id. Raises [Invalid_argument] if
    [before] has no incoming edges or is not an IP vertex. *)
