(** Model generalizations (§3.7).

    {b Extension #1 — consolidated execution graphs.} Multiple tenants
    offload different programs concurrently. Each tenant's graph is
    evaluated with its own traffic share; shared physical IPs are
    virtualized through the γ partition parameter, and shared-medium
    usage (α/β) aggregates across tenants, so one tenant's interface
    pressure degrades another's ceiling.

    {b Extension #2 — diverse traffic profiles.} When the application
    consumes several packet sizes, per-size execution graphs (C, δ and O
    vary with size) are evaluated independently and the outputs combined
    as the dist_size-weighted averages of Eqs 3 and 8.

    {b Extension #3 — non-work-conserving IPs.} A rate-limiter vertex —
    an enqueue/dequeue-only IP with a fixed-size queue — is inserted in
    front of the IP on its incoming edge; the queue captures the
    resource idleness. *)

type tenant = {
  name : string;
  graph : Graph.t;
  traffic : Traffic.t;  (** this tenant's own offered load and size *)
}

type tenant_report = {
  tenant : string;
  throughput : Throughput.result;
  latency : Latency.result;
}

type consolidated = {
  tenants : tenant_report list;
  total_attained : float;  (** Σ per-tenant carried bytes/s *)
  mean_latency : float;  (** traffic-weighted across tenants *)
  interface_utilization : float;
      (** Σ tenant α-bytes/s over BW_INTF; > 1 means the shared
          interface is oversubscribed *)
  memory_utilization : float;
}

val consolidate : hw:Params.hardware -> tenant list -> consolidated
(** Evaluates every tenant against shared media whose effective
    bandwidth is scaled down by the other tenants' α/β pressure.
    Raises [Invalid_argument] on an empty tenant list. *)

type mixed_report = {
  classes : (Traffic.t * float * Throughput.result * Latency.result) list;
  throughput : float;  (** Σ dist_size · P_attainable *)
  latency : float;  (** Σ dist_size · T_attainable *)
}

val mixed_traffic :
  hw:Params.hardware ->
  graph_for:(Traffic.t -> Graph.t) ->
  Traffic.mix ->
  mixed_report
(** [mixed_traffic ~hw ~graph_for mix] evaluates [graph_for cls] for
    each class (letting δ, O, C vary with packet size, as Extension #2
    requires) and averages by the normalized weights. *)

val insert_rate_limiter :
  Graph.t ->
  before:Graph.vertex_id ->
  rate:float ->
  queue_capacity:int ->
  Graph.t * Graph.vertex_id
(** [insert_rate_limiter g ~before ~rate ~queue_capacity] splices a
    rate-limiter IP onto every incoming edge of [before]: incoming edges
    are re-pointed at the new vertex and one edge (inheriting the summed
    δ and zero shared-media use) connects it to [before]. Returns the
    rewritten graph and the limiter's id. Raises [Invalid_argument] if
    [before] has no incoming edges or is not an IP vertex. *)
