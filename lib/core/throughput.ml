type bound =
  | Vertex_bound of Graph.vertex_id
  | Edge_bound of Graph.vertex_id * Graph.vertex_id
  | Interface_bound
  | Memory_bound
  | Resource_bound of string
  | Offered_load

type result = {
  capacity : float;
  attained : float;
  bottleneck : bound;
  vertex_caps : (Graph.vertex_id * float) list;
  edge_caps : ((Graph.vertex_id * Graph.vertex_id) * float) list;
  interface_cap : float;
  memory_cap : float;
}

let vertex_inflow g id =
  match (Graph.vertex g id).kind with
  | Graph.Ingress -> 1.
  | Graph.Egress | Graph.Ip ->
    List.fold_left (fun acc (e : Graph.edge) -> acc +. e.delta) 0. (Graph.in_edges g id)

let require_valid g =
  match Graph.validate g with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Throughput: invalid graph: " ^ String.concat "; " errors)

let compute_caps g ~(hw : Params.hardware) =
  let vertex_caps =
    List.filter_map
      (fun (v : Graph.vertex) ->
        let inflow = vertex_inflow g v.id in
        if inflow <= 0. || v.service.throughput = infinity then None
        else
          let effective =
            v.service.partition *. v.service.accel *. v.service.throughput
          in
          Some (v.id, effective /. inflow))
      (Graph.vertices g)
  in
  let edge_caps =
    List.filter_map
      (fun (e : Graph.edge) ->
        match e.bandwidth with
        | Some bw when e.delta > 0. -> Some ((e.src, e.dst), bw /. e.delta)
        | Some _ | None -> None)
      (Graph.edges g)
  in
  let sum_alpha =
    List.fold_left (fun acc (e : Graph.edge) -> acc +. e.alpha) 0. (Graph.edges g)
  in
  let sum_beta =
    List.fold_left (fun acc (e : Graph.edge) -> acc +. e.beta) 0. (Graph.edges g)
  in
  let interface_cap =
    if sum_alpha > 0. then hw.bw_interface /. sum_alpha else infinity
  in
  let memory_cap = if sum_beta > 0. then hw.bw_memory /. sum_beta else infinity in
  (vertex_caps, edge_caps, interface_cap, memory_cap)

let evaluate g ~hw ~(traffic : Traffic.t) =
  require_valid g;
  let vertex_caps, edge_caps, interface_cap, memory_cap = compute_caps g ~hw in
  (* Enumerate every candidate bound in priority order; the fold keeps
     the first strictly-smaller one, so ties resolve deterministically. *)
  let candidates =
    List.map (fun (id, c) -> (Vertex_bound id, c)) vertex_caps
    @ List.map (fun ((s, d), c) -> (Edge_bound (s, d), c)) edge_caps
    @ [ (Interface_bound, interface_cap); (Memory_bound, memory_cap) ]
  in
  let capacity =
    List.fold_left (fun acc (_, c) -> Float.min acc c) infinity candidates
  in
  let attained = Float.min capacity traffic.rate in
  let bottleneck =
    if capacity <= traffic.rate then
      match List.find_opt (fun (_, c) -> c <= capacity) candidates with
      | Some (b, _) -> b
      | None -> Offered_load
    else Offered_load
  in
  {
    capacity;
    attained;
    bottleneck;
    vertex_caps;
    edge_caps;
    interface_cap;
    memory_cap;
  }

let capacity g ~hw =
  require_valid g;
  let vertex_caps, edge_caps, interface_cap, memory_cap = compute_caps g ~hw in
  List.fold_left
    (fun acc (_, c) -> Float.min acc c)
    (Float.min interface_cap memory_cap)
    (List.map (fun (_, c) -> ((), c)) vertex_caps
    @ List.map (fun (_, c) -> ((), c)) edge_caps)

let pp_bound g ppf = function
  | Vertex_bound id ->
    Fmt.pf ppf "vertex %d (%s)" id (Graph.vertex g id).label
  | Edge_bound (s, d) -> Fmt.pf ppf "edge %d->%d" s d
  | Interface_bound -> Fmt.string ppf "shared interface bandwidth"
  | Memory_bound -> Fmt.string ppf "memory bandwidth"
  | Resource_bound name -> Fmt.pf ppf "shared resource %s" name
  | Offered_load -> Fmt.string ppf "offered load (ingress rate)"

let pp_result g ppf r =
  Fmt.pf ppf "@[<v>capacity: %.3f Gbps@,attained: %.3f Gbps@,bottleneck: %a"
    (Units.to_gbps r.capacity) (Units.to_gbps r.attained) (pp_bound g)
    r.bottleneck;
  List.iter
    (fun (id, c) ->
      Fmt.pf ppf "@,  vertex %d (%s) cap: %.3f Gbps" id (Graph.vertex g id).label
        (Units.to_gbps c))
    r.vertex_caps;
  List.iter
    (fun ((s, d), c) ->
      Fmt.pf ppf "@,  edge %d->%d cap: %.3f Gbps" s d (Units.to_gbps c))
    r.edge_caps;
  if r.interface_cap < infinity then
    Fmt.pf ppf "@,  interface cap: %.3f Gbps" (Units.to_gbps r.interface_cap);
  if r.memory_cap < infinity then
    Fmt.pf ppf "@,  memory cap: %.3f Gbps" (Units.to_gbps r.memory_cap);
  Fmt.pf ppf "@]"
