(** Model parameters (paper Table 2).

    Per-vertex software parameters (P, D, N, O, A, γ) live on the graph
    itself ({!Graph.service}); per-edge parameters (δ, α, β, BW_mn) on
    the edges. This module holds what remains: the device-wide hardware
    parameters and a glossary used by the CLI to print Table 2. *)

type hardware = {
  bw_interface : float;
      (** BW_INTF — aggregate SoC interface bandwidth shared by all
          α-traffic, bytes/s *)
  bw_memory : float;
      (** BW_MEM — memory-subsystem bandwidth shared by all β-traffic,
          bytes/s *)
  resources : (string * float) list;
      (** Named shared-resource capacities beyond the two modeled media —
          e.g. [("cache", bytes/s of LLC fill bandwidth)] — consumed by
          the multi-resource contention layer
          ({!Extensions.mixed_traffic}). Empty means no contention
          modeling; the base model ignores this field entirely. *)
}

val hardware : bw_interface:float -> bw_memory:float -> hardware
(** Raises [Invalid_argument] on non-positive bandwidths. [resources]
    starts empty; attach capacities with {!with_resources}. *)

val with_resources : hardware -> (string * float) list -> hardware
(** Replaces the named shared-resource capacities. Raises
    [Invalid_argument] on an empty name, a non-positive capacity, or a
    duplicate name. *)

val resource_capacity : hardware -> string -> float option

type source = Spec | Characterization | Configurable
(** Where a parameter's value comes from (Table 2's SPEC/CHAR/CONF
    column). *)

type entry = {
  symbol : string;
  name : string;
  description : string;
  source : source;
}

val table2 : entry list
(** The parameter glossary exactly as the paper's Table 2 lists it. *)

val pp_source : Format.formatter -> source -> unit
val pp_entry : Format.formatter -> entry -> unit
