(** Extended Roofline of an IP (§3.2).

    LogNIC repurposes the Roofline model with two changes: (1) several
    bandwidth ceilings, one per data source feeding the IP (SoC
    interconnect, memory hierarchy, dedicated fabric); (2) {e packet
    intensity} — IP-specific operations per byte of packet transmission —
    replaces arithmetic intensity. The attainable operation rate is

    [min(peak_ops, min_i (bw_i * intensity))].  *)

type ceiling = { name : string; bandwidth : float (** bytes/s *) }

type t = {
  label : string;
  peak_ops : float;  (** ops/s at full parallelism *)
  ceilings : ceiling list;
}

val create : label:string -> peak_ops:float -> ceilings:ceiling list -> t
(** Raises [Invalid_argument] unless [peak_ops > 0], every ceiling
    bandwidth is positive, and at least one ceiling is given. *)

val attainable_ops : t -> intensity:float -> float
(** Attainable operation rate (ops/s) at the given packet intensity
    (ops per byte, > 0). *)

val attainable_bytes : t -> intensity:float -> float
(** Same bound expressed as consumable traffic (bytes/s):
    [attainable_ops / intensity]. *)

val compute_bound : t -> intensity:float -> bool
(** True when the peak-ops roof (not a bandwidth ceiling) is binding. *)

val knee : t -> float
(** The packet intensity at which the binding constraint switches from
    the tightest bandwidth ceiling to the compute roof:
    [peak_ops / min_bw]. Below the knee the IP is I/O-bound. *)

val binding_ceiling : t -> intensity:float -> string
(** Name of the binding constraint: a ceiling name, or ["compute"]. *)

val ops_per_packet : ops:float -> packet_size:float -> float
(** Converts the paper's per-packet operation counts into the per-byte
    intensity used here. *)

val of_vertex :
  Graph.t ->
  hw:Params.hardware ->
  packet_size:float ->
  Graph.vertex_id ->
  t option
(** The roofline of a graph vertex at a packet size, in {e packet
    traffic} units: the compute roof is γ·A·P/g packets/s (one
    IP-operation per packet), and each ceiling is a medium's
    packet-traffic capacity — BW_INTF/Σα, BW_MEM/Σβ, BW_link/δ over the
    vertex's incoming edges. Evaluate with [~intensity:(1. /.
    packet_size)]; [attainable_bytes] then reproduces the vertex's
    {!Throughput} cap restricted to its own media. [None] for
    infinite-throughput vertices. *)

val pp : Format.formatter -> t -> unit
