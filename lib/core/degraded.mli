(** Degraded-mode analytic evaluation: what the LogNIC model predicts
    when hardware entities {e partially fail}.

    The throughput/latency threads (§3.5–3.6) assume every entity runs
    at its nameplate capability. Real SmartNIC deployments spend a
    surprising share of their life outside that regime — accelerator
    engines stall, links flap, queues are shrunk by firmware, ingress
    sheds bursts — and the characterization literature shows those
    intervals dominate tail behavior. This module re-evaluates the model
    under a piecewise-constant degradation profile:

    - D′: engines offline on a vertex scale its aggregate throughput by
      (D − down)/D and its parallelism to D − down (the per-engine rate
      is unchanged);
    - B′: a medium factor f ∈ (0, 1] scales the interface, memory, or a
      dedicated link bandwidth to f·B;
    - N′: a queue override caps a vertex's queue capacity at
      min(N, override);
    - an ingress drop probability p discounts the offered load to
      (1 − p)·BW_in before it reaches the device.

    Each interval is evaluated with the unmodified machinery
    ({!Throughput.evaluate} / {!Latency.evaluate}) on the modified graph
    and hardware, then composed into time-weighted throughput, a
    delivery-weighted latency, and an availability figure against an
    SLO. The interval decomposition itself typically comes from
    [Lognic_sim.Faults.modifiers], which lowers a simulator fault plan
    into this module's representation. *)

type modifier = {
  engines_down : (string * int) list;
      (** vertex label → engines offline (summed if repeated; ≥ D means
          the vertex is fully failed) *)
  media_factors : (string * float) list;
      (** medium label ("interface", "memory", or "link-SRC-DST") →
          bandwidth factor in (0, 1] (multiplied if repeated) *)
  queue_caps : (string * int) list;
      (** vertex label → temporary queue capacity (min-combined with the
          vertex's own N) *)
  ingress_drop : float;  (** probability in [0, 1] *)
}

val no_modifier : modifier
(** Nothing degraded: evaluation under it equals the nominal model. *)

val is_degraded : modifier -> bool

val apply_modifier :
  Graph.t ->
  hw:Params.hardware ->
  modifier ->
  Graph.t * Params.hardware * Graph.vertex_id option
(** The modified graph and hardware an interval is evaluated under, plus
    the first fully-failed vertex (all engines down) if any — in that
    case the returned graph simply omits that vertex's D′ = 0 scaling
    and the caller must treat the interval as delivering nothing.
    Unknown labels are ignored here; [Lognic_sim.Faults] validates names
    against the realized entities before anything reaches this point.
    Exposed for tests. *)

type interval_report = {
  d_start : float;
  d_stop : float;
  degraded : bool;  (** false on healthy stretches between faults *)
  capacity : float;  (** P′_attainable: the device ceiling under D′/B′ *)
  carried : float;
      (** min(capacity, (1 − p)·BW_in) — the model's goodput for the
          interval; 0 when a vertex is fully failed *)
  latency : float;
      (** T′_attainable under the modifier ([infinity] when fully
          failed) *)
  bottleneck : Throughput.bound;
  slo_ok : bool;  (** interval meets the SLO (see {!type:slo}) *)
}

type slo = {
  min_throughput_fraction : float;
      (** an interval violates when carried < fraction · nominal carried
          (default 0.9) *)
  max_latency_factor : float;
      (** … or when latency > factor · nominal latency (default 2) *)
}

val default_slo : slo

type report = {
  intervals : interval_report list;  (** chronological, tiling [0, horizon] *)
  nominal_throughput : float;  (** fault-free attained rate *)
  nominal_latency : float;
  degraded_throughput : float;
      (** time-weighted mean carried rate over the horizon *)
  degraded_latency : float;
      (** delivery-weighted mean latency (weights carried·Δt; intervals
          delivering nothing contribute nothing) *)
  availability : float;
      (** fraction of the horizon spent in SLO-meeting intervals *)
  worst : interval_report option;
      (** the degraded interval with the lowest carried rate *)
  slo : slo;
}

val evaluate :
  ?queue_model:Latency.queue_model ->
  ?slo:slo ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  intervals:(float * float * modifier) list ->
  report
(** Evaluate the model once per interval and compose. [intervals] must
    be chronological and non-overlapping (as produced by
    [Lognic_sim.Faults.modifiers]); raises [Invalid_argument] when
    empty, on a non-positive interval, or if the graph fails
    validation. *)

val pp : Graph.t -> Format.formatter -> report -> unit
