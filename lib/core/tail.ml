module Q = Lognic_queueing
module N = Lognic_numerics

type quantiles = { q_mean : float; p50 : float; p90 : float; p99 : float }
type path_tail = { tpath : Graph.vertex_id list; tweight : float; tq : quantiles }

(* First two sojourn moments of an accepted arrival, from the
   see-k-on-arrival mixture (PASTA conditioned on acceptance). *)
let mm1n_moments ~lambda ~mu ~capacity =
  let queue = Q.Mm1n.create ~lambda ~mu ~capacity in
  let probs = Q.Mm1n.state_probabilities queue in
  let admit = 1. -. probs.(capacity) in
  if admit <= 0. then (0., 0.)
  else begin
    let m1 = ref 0. and m2 = ref 0. in
    for k = 0 to capacity - 1 do
      let q_k = probs.(k) /. admit in
      let stages = float_of_int (k + 1) in
      (* Erlang(k+1, mu): E[T] = (k+1)/mu, E[T^2] = (k+1)(k+2)/mu^2 *)
      m1 := !m1 +. (q_k *. stages /. mu);
      m2 := !m2 +. (q_k *. stages *. (stages +. 1.) /. (mu *. mu))
    done;
    (!m1, Float.max 0. (!m2 -. (!m1 *. !m1)))
  end

let mmcn_moments ~lambda ~mu ~servers ~capacity =
  let queue = Q.Mmcn.create ~lambda ~mu ~servers ~capacity in
  let probs = Q.Mmcn.state_probabilities queue in
  let admit = 1. -. probs.(capacity) in
  if admit <= 0. then (0., 0.)
  else begin
    let c = float_of_int servers in
    let m1 = ref 0. and m2 = ref 0. in
    for k = 0 to capacity - 1 do
      let q_k = probs.(k) /. admit in
      if k < servers then begin
        (* immediate service: Exp(mu) *)
        m1 := !m1 +. (q_k /. mu);
        m2 := !m2 +. (q_k *. 2. /. (mu *. mu))
      end
      else begin
        (* Erlang(k-c+1, c mu) wait plus Exp(mu) service, independent *)
        let stages = float_of_int (k - servers + 1) in
        let wait_mean = stages /. (c *. mu) in
        let wait_var = stages /. ((c *. mu) ** 2.) in
        let mean = wait_mean +. (1. /. mu) in
        let var = wait_var +. (1. /. (mu *. mu)) in
        m1 := !m1 +. (q_k *. mean);
        m2 := !m2 +. (q_k *. (var +. (mean *. mean)))
      end
    done;
    (!m1, Float.max 0. (!m2 -. (!m1 *. !m1)))
  end

let vertex_sojourn_moments ?(model = Latency.Mm1n_model) ?rates_for g ~traffic
    id =
  let v = Graph.vertex g id in
  if v.service.throughput = infinity || Throughput.vertex_inflow g id <= 0. then
    (0., 0.)
  else begin
    let lambda, mu =
      match rates_for with
      | Some f -> (
        match f id with
        | Some rates -> rates
        | None -> Latency.vertex_rates g ~traffic id)
      | None -> Latency.vertex_rates g ~traffic id
    in
    match model with
    | Latency.Mmcn_model ->
      (* undo Eq 11's per-engine arrival split, as Latency does *)
      let d = float_of_int v.service.parallelism in
      let capacity = max v.service.queue_capacity v.service.parallelism in
      mmcn_moments ~lambda:(lambda *. d) ~mu ~servers:v.service.parallelism
        ~capacity
    | Latency.Mm1n_model | Latency.Mm1_model | Latency.No_queueing ->
      mm1n_moments ~lambda ~mu ~capacity:v.service.queue_capacity
  end

(* Per-path decomposition: random gamma part (vertex sojourns) plus a
   deterministic shift (overheads + data movement). *)
type path_shape = {
  shift : float;
  gamma : (float * float) option;  (* (shape, scale), None if variance 0 *)
  random_mean : float;
}

let path_shape ?model ?rates_for g ~hw ~traffic path =
  let rec walk mean var shift = function
    | a :: (b :: _ as rest) ->
      let m, v = vertex_sojourn_moments ?model ?rates_for g ~traffic a in
      let overhead = (Graph.vertex g a).Graph.service.overhead in
      let transfer =
        match Graph.edge g ~src:a ~dst:b with
        | Some e -> Latency.edge_transfer_time g ~hw ~traffic e
        | None -> 0.
      in
      walk (mean +. m) (var +. v) (shift +. overhead +. transfer) rest
    | [ last ] ->
      let m, v = vertex_sojourn_moments ?model ?rates_for g ~traffic last in
      (mean +. m, var +. v, shift)
    | [] -> (mean, var, shift)
  in
  let mean, var, shift = walk 0. 0. 0. path in
  { shift; gamma = N.Gamma.of_moments ~mean ~variance:var; random_mean = mean }

let shape_cdf shape x =
  if x < shape.shift then 0.
  else
    match shape.gamma with
    | None -> if x >= shape.shift +. shape.random_mean then 1. else 0.
    | Some (a, scale) -> N.Gamma.cdf ~shape:a ~scale (x -. shape.shift)

let shape_quantile shape p =
  match shape.gamma with
  | None -> shape.shift +. shape.random_mean
  | Some (a, scale) -> shape.shift +. N.Gamma.quantile ~shape:a ~scale p

let quantiles_of_shape shape =
  {
    q_mean = shape.shift +. shape.random_mean;
    p50 = shape_quantile shape 0.5;
    p90 = shape_quantile shape 0.9;
    p99 = shape_quantile shape 0.99;
  }

type result = {
  overall_q : quantiles;
  tails : path_tail list;
  mixture : (path_shape * float) list;
}

let overall r = r.overall_q
let per_path r = r.tails

let mixture_quantile shapes_weights p =
  let cdf x =
    List.fold_left (fun acc (s, w) -> acc +. (w *. shape_cdf s x)) 0. shapes_weights
  in
  (* bracket: the largest per-path p-quantile is an upper bound *)
  let hi =
    List.fold_left
      (fun acc (s, _) -> Float.max acc (shape_quantile s (Float.max p 0.5)))
      1e-12 shapes_weights
  in
  let lo = ref 0. and hi = ref (hi *. 2.) in
  while cdf !hi < p do
    hi := !hi *. 2.
  done;
  for _ = 1 to 100 do
    let mid = 0.5 *. (!lo +. !hi) in
    if cdf mid < p then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let evaluate ?model ?rates_for g ~hw ~traffic =
  (match Graph.validate g with
  | Ok () -> ()
  | Error errors -> invalid_arg ("Tail: invalid graph: " ^ String.concat "; " errors));
  let weighted_paths = Latency.path_weights g in
  if weighted_paths = [] then invalid_arg "Tail: no ingress->egress path";
  let shapes =
    List.map
      (fun (p, w) -> (path_shape ?model ?rates_for g ~hw ~traffic p, p, w))
      weighted_paths
  in
  let tails =
    List.map (fun (s, p, w) -> { tpath = p; tweight = w; tq = quantiles_of_shape s }) shapes
  in
  let mixture = List.map (fun (s, _, w) -> (s, w)) shapes in
  let overall_q =
    {
      q_mean =
        List.fold_left
          (fun acc (s, _, w) -> acc +. (w *. (s.shift +. s.random_mean)))
          0. shapes;
      p50 = mixture_quantile mixture 0.5;
      p90 = mixture_quantile mixture 0.9;
      p99 = mixture_quantile mixture 0.99;
    }
  in
  { overall_q; tails; mixture }

let quantile r p =
  if p <= 0. || p >= 1. then invalid_arg "Tail.quantile: p outside (0, 1)";
  mixture_quantile r.mixture p
