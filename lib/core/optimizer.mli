(** Optimizer mode (§3.8, Figure 4-b).

    The optimizer searches LogNIC's configurable parameters (Table 2's
    CONF rows) for an assignment meeting a performance goal, evaluating
    candidates through the analytical model. Discrete knobs (candidate
    IP throughputs — e.g. "how many NIC cores", queue credits) are
    enumerated exhaustively; continuous knobs (traffic splits, node
    partitions) run through the penalty-constrained Nelder–Mead of
    {!Lognic_numerics.Constrained} with multi-start. This mirrors the
    paper's SLSQP-based solver at the fidelity our case studies need;
    like the paper's, the result may be a local optimum for non-convex
    continuous landscapes. *)

type knob =
  | Vertex_throughput of Graph.vertex_id * float array
      (** candidate values for P_vi, e.g. achievable core allocations *)
  | Queue_capacity of Graph.vertex_id * int * int
      (** inclusive credit range for N_vi *)
  | Out_split of Graph.vertex_id
      (** re-balance the δ (and proportional α/β) of the vertex's
          out-edges — traffic steering *)
  | Partition of Graph.vertex_id * float * float
      (** γ_vi within the given inclusive range *)
  | Accel of Graph.vertex_id * float array
      (** candidate kernel-acceleration factors A_i (Eq 5's tunable
          "what if we optimized this kernel" parameter) *)
  | Ingress_rate of float * float
      (** admissible BW_in range — e.g. find the highest offered load
          meeting a latency bound (admission control) *)

type objective =
  | Maximize_throughput
  | Minimize_latency
  | Minimize_latency_min_throughput of float
      (** minimize mean latency subject to attained ≥ the bound *)
  | Maximize_throughput_max_latency of float
      (** maximize attained subject to mean latency ≤ the bound *)

type assignment =
  | Set_throughput of Graph.vertex_id * float
  | Set_queue_capacity of Graph.vertex_id * int
  | Set_split of Graph.vertex_id * float list
  | Set_partition of Graph.vertex_id * float
  | Set_accel of Graph.vertex_id * float
  | Set_ingress_rate of float

type search_stats = {
  evaluations : int;  (** model evaluations requested by the search *)
  memo_hits : int;
      (** of those, served from the LRU memo of canonicalized knob
          assignments instead of re-running
          [Throughput.evaluate]/[Latency.evaluate] *)
}

type solution = {
  graph : Graph.t;  (** the base graph with the assignment applied *)
  assignment : assignment list;
  report : Estimate.report;  (** model outputs on the optimized graph *)
  feasible : bool;  (** constraint (if any) met *)
  stats : search_stats;  (** search effort and memo hit-rate *)
}

type observation = {
  sequence : int;
      (** 0-based evaluation index (the value of the [evaluations]
          counter when this candidate was requested); dense but not
          necessarily delivered in order under parallel grid
          evaluation *)
  candidate : assignment list;  (** the knob assignment evaluated *)
  score : float;  (** objective value (lower is better, as searched) *)
  cache_hit : bool;  (** served from the memo, no model run *)
}

val apply_assignment : Graph.t -> assignment list -> Graph.t
(** Graph-side effects of an assignment ([Set_ingress_rate] entries are
    ignored here — see {!apply_traffic}). *)

val apply_traffic : Traffic.t -> assignment list -> Traffic.t
(** Traffic-side effects ([Set_ingress_rate]). *)

val optimize :
  ?rng:Lognic_numerics.Rng.t ->
  ?queue_model:Latency.queue_model ->
  ?jobs:int ->
  ?observer:(observation -> unit) ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  knobs:knob list ->
  objective ->
  solution
(** Raises [Invalid_argument] on an empty knob list, an empty candidate
    array, or knobs referring to unknown vertices. The [rng] (default
    seed 42) only affects the continuous multi-start. [jobs] (default:
    {!Lognic_numerics.Parallel.default_jobs}) evaluates the exhaustive
    discrete grid that many domains wide; the result is identical at
    every job count (grid points are independent, folded in enumeration
    order, and the multi-start rngs are pre-split in that same order).

    [observer] fires once per candidate evaluation — memo hits
    included — with the candidate, its objective score, its cache-hit
    status, and a dense sequence index; {!Lognic_sim.Search_log} folds
    these into a convergence log. Under parallel grid evaluation the
    observer is called concurrently from worker domains: it must be
    thread-safe, and observation order is not the sequence order. The
    observer never influences the search result. *)

val pareto :
  ?rng:Lognic_numerics.Rng.t ->
  ?queue_model:Latency.queue_model ->
  ?jobs:int ->
  ?observer:(observation -> unit) ->
  ?points:int ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  knobs:knob list ->
  (float * solution) list
(** Figure 4-b's relax-the-goal loop, automated: solve
    [Maximize_throughput_max_latency bound] for [points] (default 8)
    latency bounds spaced geometrically between the
    minimum-achievable latency and the unconstrained
    maximum-throughput latency, returning [(bound, solution)] pairs in
    increasing-bound order. Infeasible bounds are dropped; carried
    throughput is non-decreasing along the returned frontier. *)

val pp_assignment : Format.formatter -> assignment -> unit
