type tenant = { name : string; graph : Graph.t; traffic : Traffic.t }

type tenant_report = {
  tenant : string;
  throughput : Throughput.result;
  latency : Latency.result;
}

type consolidated = {
  tenants : tenant_report list;
  total_attained : float;
  mean_latency : float;
  interface_utilization : float;
  memory_utilization : float;
}

let sum_alpha g =
  List.fold_left (fun acc (e : Graph.edge) -> acc +. e.alpha) 0. (Graph.edges g)

let sum_beta g =
  List.fold_left (fun acc (e : Graph.edge) -> acc +. e.beta) 0. (Graph.edges g)

let consolidate ~(hw : Params.hardware) tenants =
  if tenants = [] then invalid_arg "Extensions.consolidate: no tenants";
  (* Per-tenant demand on the shared media, in bytes/s. *)
  let media_demand t =
    ( t.traffic.Traffic.rate *. sum_alpha t.graph,
      t.traffic.Traffic.rate *. sum_beta t.graph )
  in
  let total_intf_demand =
    List.fold_left (fun acc t -> acc +. fst (media_demand t)) 0. tenants
  in
  let total_mem_demand =
    List.fold_left (fun acc t -> acc +. snd (media_demand t)) 0. tenants
  in
  let interface_utilization = total_intf_demand /. hw.bw_interface in
  let memory_utilization = total_mem_demand /. hw.bw_memory in
  (* Each tenant sees the shared medium minus the others' demand
     (clamped to a sliver so evaluation stays defined even when
     oversubscribed — the per-tenant cap then reflects starvation). *)
  let hw_for t =
    let intf_d, mem_d = media_demand t in
    let available total own other_total =
      Float.max (total *. 0.01) (total -. (other_total -. own))
    in
    Params.hardware
      ~bw_interface:(available hw.bw_interface intf_d total_intf_demand)
      ~bw_memory:(available hw.bw_memory mem_d total_mem_demand)
  in
  let reports =
    List.map
      (fun t ->
        let hw' = hw_for t in
        {
          tenant = t.name;
          throughput = Throughput.evaluate t.graph ~hw:hw' ~traffic:t.traffic;
          latency = Latency.evaluate t.graph ~hw:hw' ~traffic:t.traffic;
        })
      tenants
  in
  let total_attained =
    List.fold_left (fun acc r -> acc +. r.throughput.Throughput.attained) 0. reports
  in
  let rate_weighted =
    List.map2
      (fun t r -> (r.latency.Latency.mean, t.traffic.Traffic.rate))
      tenants reports
  in
  let mean_latency = Lognic_numerics.Stats.weighted_mean rate_weighted in
  {
    tenants = reports;
    total_attained;
    mean_latency;
    interface_utilization;
    memory_utilization;
  }

type mixed_report = {
  classes : (Traffic.t * float * Throughput.result * Latency.result) list;
  throughput : float;
  latency : float;
}

let mixed_traffic ~hw ~graph_for mix =
  let classes = Traffic.normalize_weights mix in
  let evaluated =
    List.map
      (fun ((cls : Traffic.t), w) ->
        let g = graph_for cls in
        ( cls,
          w,
          Throughput.evaluate g ~hw ~traffic:cls,
          Latency.evaluate g ~hw ~traffic:cls ))
      classes
  in
  let throughput =
    List.fold_left
      (fun acc (_, w, (tp : Throughput.result), _) -> acc +. (w *. tp.attained))
      0. evaluated
  in
  let latency =
    List.fold_left
      (fun acc (_, w, _, (lat : Latency.result)) -> acc +. (w *. lat.mean))
      0. evaluated
  in
  { classes = evaluated; throughput; latency }

let insert_rate_limiter g ~before ~rate ~queue_capacity =
  let target = Graph.vertex g before in
  if target.kind <> Graph.Ip then
    invalid_arg "Extensions.insert_rate_limiter: target must be an IP vertex";
  let incoming = Graph.in_edges g before in
  if incoming = [] then
    invalid_arg "Extensions.insert_rate_limiter: target has no incoming edge";
  let service =
    Graph.service ~queue_capacity ~throughput:rate ()
  in
  let g, limiter =
    Graph.add_vertex ~kind:Graph.Ip
      ~label:(target.label ^ ".rate_limiter")
      ~service g
  in
  let total_delta =
    List.fold_left (fun acc (e : Graph.edge) -> acc +. e.delta) 0. incoming
  in
  (* Re-point each incoming edge at the limiter, keeping its parameters,
     then connect the limiter to the target with the aggregate delta.
     The limiter only enqueues/dequeues, so its outgoing edge adds no
     shared-media traffic. *)
  let g =
    List.fold_left
      (fun g (e : Graph.edge) ->
        let g = Graph.remove_edge ~src:e.src ~dst:e.dst g in
        Graph.add_edge ~delta:e.delta ~alpha:e.alpha ~beta:e.beta
          ?bandwidth:e.bandwidth ~src:e.src ~dst:limiter g)
      g incoming
  in
  let g = Graph.add_edge ~delta:total_delta ~src:limiter ~dst:before g in
  (g, limiter)
