type tenant = { name : string; graph : Graph.t; traffic : Traffic.t }

type tenant_report = {
  tenant : string;
  throughput : Throughput.result;
  latency : Latency.result;
}

type consolidated = {
  tenants : tenant_report list;
  total_attained : float;
  mean_latency : float;
  interface_utilization : float;
  memory_utilization : float;
}

let sum_alpha g =
  List.fold_left (fun acc (e : Graph.edge) -> acc +. e.alpha) 0. (Graph.edges g)

let sum_beta g =
  List.fold_left (fun acc (e : Graph.edge) -> acc +. e.beta) 0. (Graph.edges g)

let consolidate ~(hw : Params.hardware) tenants =
  if tenants = [] then invalid_arg "Extensions.consolidate: no tenants";
  (* Per-tenant demand on the shared media, in bytes/s. *)
  let media_demand t =
    ( t.traffic.Traffic.rate *. sum_alpha t.graph,
      t.traffic.Traffic.rate *. sum_beta t.graph )
  in
  let total_intf_demand =
    List.fold_left (fun acc t -> acc +. fst (media_demand t)) 0. tenants
  in
  let total_mem_demand =
    List.fold_left (fun acc t -> acc +. snd (media_demand t)) 0. tenants
  in
  let interface_utilization = total_intf_demand /. hw.bw_interface in
  let memory_utilization = total_mem_demand /. hw.bw_memory in
  (* Each tenant sees the shared medium minus the others' demand
     (clamped to a sliver so evaluation stays defined even when
     oversubscribed — the per-tenant cap then reflects starvation). *)
  let hw_for t =
    let intf_d, mem_d = media_demand t in
    let available total own other_total =
      Float.max (total *. 0.01) (total -. (other_total -. own))
    in
    Params.hardware
      ~bw_interface:(available hw.bw_interface intf_d total_intf_demand)
      ~bw_memory:(available hw.bw_memory mem_d total_mem_demand)
  in
  let reports =
    List.map
      (fun t ->
        let hw' = hw_for t in
        {
          tenant = t.name;
          throughput = Throughput.evaluate t.graph ~hw:hw' ~traffic:t.traffic;
          latency = Latency.evaluate t.graph ~hw:hw' ~traffic:t.traffic;
        })
      tenants
  in
  let total_attained =
    List.fold_left (fun acc r -> acc +. r.throughput.Throughput.attained) 0. reports
  in
  let rate_weighted =
    List.map2
      (fun t r -> (r.latency.Latency.mean, t.traffic.Traffic.rate))
      tenants reports
  in
  let mean_latency = Lognic_numerics.Stats.weighted_mean rate_weighted in
  {
    tenants = reports;
    total_attained;
    mean_latency;
    interface_utilization;
    memory_utilization;
  }

type class_contention = {
  slowdown : float;
  pressure : (string * float) list;
  resource_caps : (string * float) list;
}

type contention = {
  demands : (string * float) list list;
  interference : float array array;
}

let contention ~demands ~interference =
  let n = List.length demands in
  if n = 0 then invalid_arg "Extensions.contention: empty demand list";
  if Array.length interference <> n then
    invalid_arg "Extensions.contention: interference matrix must be n x n";
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg "Extensions.contention: interference matrix must be n x n";
      if row.(i) <> 0. then
        invalid_arg "Extensions.contention: interference diagonal must be 0";
      Array.iter
        (fun m ->
          if m < 0. || not (Float.is_finite m) then
            invalid_arg "Extensions.contention: interference must be finite >= 0")
        row)
    interference;
  List.iter
    (List.iter (fun (name, d) ->
         if name = "" then invalid_arg "Extensions.contention: empty resource name";
         if d < 0. || not (Float.is_finite d) then
           invalid_arg "Extensions.contention: demand must be finite >= 0"))
    demands;
  { demands; interference }

type mixed_report = {
  classes : (Traffic.t * float * Throughput.result * Latency.result) list;
  throughput : float;
  latency : float;
  contention : class_contention list option;
}

(* The pre-joint-evaluation behavior, kept for comparison: every class
   sees a private copy of the whole device and the aggregate is the
   weight-averaged per-class result. Structurally optimistic on any
   contended mix — the simulator interleaves classes into shared
   queues — which is exactly the delta the joint [mixed_traffic]
   closes (see MODEL.md). *)
let mixed_traffic_independent ~hw ~graph_for mix =
  let classes = Traffic.normalize_weights mix in
  let evaluated =
    List.map
      (fun ((cls : Traffic.t), w) ->
        let g = graph_for cls in
        ( cls,
          w,
          Throughput.evaluate g ~hw ~traffic:cls,
          Latency.evaluate g ~hw ~traffic:cls ))
      classes
  in
  let throughput =
    List.fold_left
      (fun acc (_, w, (tp : Throughput.result), _) -> acc +. (w *. tp.attained))
      0. evaluated
  in
  let latency =
    List.fold_left
      (fun acc (_, w, _, (lat : Latency.result)) -> acc +. (w *. lat.mean))
      0. evaluated
  in
  { classes = evaluated; throughput; latency; contention = None }

(* ---- joint multi-class evaluation ----------------------------------- *)

(* Shared entities are matched across class graphs by identity: vertex
   label, (src label, dst label) for dedicated links, and the two
   device-wide media. Byte demand per class on an entity is what the
   class offers through it; each entity's capacity is split across the
   classes by offered-byte share (weighted multi-class service). *)
type entity_key =
  | K_vertex of string
  | K_edge of string * string
  | K_interface
  | K_memory

type joint_class = {
  jc_cls : Traffic.t;
  jc_weight : float;  (* normalized *)
  jc_slow : Graph.t;  (* contention slowdown applied, capacities unsplit *)
  jc_scaled : Graph.t;  (* slowdown + byte-share capacity split *)
  jc_hw : Params.hardware;  (* media capacities split by byte share *)
  jc_slowdown : float;
  jc_pressure : (string * float) list;
  jc_resource_caps : (string * float) list;
}

let entity_totals pairs =
  let totals = Hashtbl.create 32 in
  let add key d =
    if d > 0. then
      let cur = Option.value (Hashtbl.find_opt totals key) ~default:0. in
      Hashtbl.replace totals key (cur +. d)
  in
  List.iter
    (fun ((cls : Traffic.t), g) ->
      List.iter
        (fun (v : Graph.vertex) ->
          if v.service.throughput < infinity then begin
            let inflow = Throughput.vertex_inflow g v.id in
            if inflow > 0. then add (K_vertex v.label) (cls.rate *. inflow)
          end)
        (Graph.vertices g);
      List.iter
        (fun (e : Graph.edge) ->
          match e.bandwidth with
          | Some _ when e.delta > 0. ->
            add
              (K_edge ((Graph.vertex g e.src).label, (Graph.vertex g e.dst).label))
              (cls.rate *. e.delta)
          | Some _ | None -> ())
        (Graph.edges g);
      add K_interface (cls.rate *. sum_alpha g);
      add K_memory (cls.rate *. sum_beta g))
    pairs;
  totals

(* A class that places no demand on an entity is not constrained by it
   (share 1 = keep the full capacity); the sole user of an entity gets
   share d/d = 1 exactly, so uncontended classes are never rescaled. *)
let share_of totals key own =
  if own <= 0. then 1.
  else
    match Hashtbl.find_opt totals key with
    | None -> 1.
    | Some total -> if total <= 0. then 1. else own /. total

let scale_class ~totals ~slowdown ((cls : Traffic.t), g) =
  let slow_g =
    if slowdown = 1. then g
    else
      List.fold_left
        (fun acc (v : Graph.vertex) ->
          if v.service.throughput = infinity then acc
          else
            Graph.update_service acc v.id (fun s ->
                { s with Graph.accel = s.Graph.accel /. slowdown }))
        g (Graph.vertices g)
  in
  let scaled =
    List.fold_left
      (fun acc (v : Graph.vertex) ->
        if v.service.throughput = infinity then acc
        else
          let inflow = Throughput.vertex_inflow g v.id in
          if inflow <= 0. then acc
          else
            let share = share_of totals (K_vertex v.label) (cls.rate *. inflow) in
            if share = 1. then acc
            else
              Graph.update_service acc v.id (fun s ->
                  { s with Graph.partition = s.Graph.partition *. share }))
      slow_g (Graph.vertices slow_g)
  in
  let scaled =
    List.fold_left
      (fun acc (e : Graph.edge) ->
        match e.bandwidth with
        | Some bw when e.delta > 0. ->
          let key =
            K_edge ((Graph.vertex g e.src).label, (Graph.vertex g e.dst).label)
          in
          let share = share_of totals key (cls.rate *. e.delta) in
          if share = 1. then acc
          else
            Graph.set_edge_params ~bandwidth:(Some (bw *. share)) ~src:e.src
              ~dst:e.dst acc
        | Some _ | None -> acc)
      scaled (Graph.edges scaled)
  in
  (slow_g, scaled)

let hw_for ~totals ~(hw : Params.hardware) ((cls : Traffic.t), g) =
  let sa = share_of totals K_interface (cls.rate *. sum_alpha g) in
  let sb = share_of totals K_memory (cls.rate *. sum_beta g) in
  if sa = 1. && sb = 1. then hw
  else
    {
      hw with
      Params.bw_interface = hw.bw_interface *. sa;
      bw_memory = hw.bw_memory *. sb;
    }

let build_joint ?contention:(spec : contention option) ~(hw : Params.hardware)
    ~graph_for mix =
  let classes = Traffic.normalize_weights mix in
  let pairs =
    List.map (fun ((cls : Traffic.t), w) -> (cls, w, graph_for cls)) classes
  in
  let n = List.length pairs in
  (match spec with
  | Some s when List.length s.demands <> n ->
    invalid_arg "Extensions.mixed_traffic: one demand vector per class required"
  | Some _ | None -> ());
  let totals =
    entity_totals (List.map (fun (cls, _, g) -> (cls, g)) pairs)
  in
  (* pressure_jr = class j's offered bytes through resource r over the
     resource capacity; slowdown_i = 1 + sum_{j<>i} M_ij . pressure_j *)
  let capacity_of name =
    match Params.resource_capacity hw name with
    | Some c -> c
    | None ->
      invalid_arg
        ("Extensions.mixed_traffic: resource " ^ name
       ^ " not in Params.hardware.resources")
  in
  let pressures =
    match spec with
    | None -> Array.make (max n 1) []
    | Some s ->
      Array.of_list
        (List.map2
           (fun (cls, _, _) demands ->
             List.map
               (fun (name, per_byte) ->
                 (name, (cls : Traffic.t).rate *. per_byte /. capacity_of name))
               demands)
           pairs s.demands)
  in
  let slowdowns =
    Array.init n (fun i ->
        match spec with
        | None -> 1.
        | Some s ->
          let acc = ref 0. in
          for j = 0 to n - 1 do
            if j <> i then
              List.iter
                (fun (_, p) -> acc := !acc +. (s.interference.(i).(j) *. p))
                pressures.(j)
          done;
          if !acc = 0. then 1. else 1. +. !acc)
  in
  let resource_caps =
    match spec with
    | None -> Array.make (max n 1) []
    | Some s ->
      (* resource capacity split by offered-byte share, like any other
         shared entity: cap_ir = share_ir . capacity_r / demand_ir *)
      let totals_r = Hashtbl.create 8 in
      List.iter2
        (fun ((cls : Traffic.t), _, _) demands ->
          List.iter
            (fun (name, per_byte) ->
              if per_byte > 0. then
                let cur =
                  Option.value (Hashtbl.find_opt totals_r name) ~default:0.
                in
                Hashtbl.replace totals_r name (cur +. (cls.rate *. per_byte)))
            demands)
        pairs s.demands;
      Array.of_list
        (List.map2
           (fun ((cls : Traffic.t), _, _) demands ->
             List.filter_map
               (fun (name, per_byte) ->
                 if per_byte <= 0. then None
                 else
                   let own = cls.rate *. per_byte in
                   let total =
                     Option.value (Hashtbl.find_opt totals_r name) ~default:own
                   in
                   let share = if total <= 0. then 1. else own /. total in
                   Some (name, share *. capacity_of name /. per_byte))
               demands)
           pairs s.demands)
  in
  List.mapi
    (fun i (cls, w, g) ->
      let slow_g, scaled_g =
        scale_class ~totals ~slowdown:slowdowns.(i) (cls, g)
      in
      {
        jc_cls = cls;
        jc_weight = w;
        jc_slow = slow_g;
        jc_scaled = scaled_g;
        jc_hw = hw_for ~totals ~hw (cls, g);
        jc_slowdown = slowdowns.(i);
        jc_pressure = pressures.(i);
        jc_resource_caps = resource_caps.(i);
      })
    pairs

(* (lambda, mu, scv) of the union queue a vertex serves, [None] when the
   class has the entity to itself (single-class limit: fall back to the
   exact Eq 11 evaluation, bit-for-bit). When every sharing class sees
   the same service rate the mixture collapses exactly (scv = 1, no
   correction is applied); otherwise the effective rate is the
   lambda-weighted harmonic mean and the hyperexponential service
   variability inflates waiting by the M/G/1 factor (1 + scv) / 2. *)
let joint_rates jcs (jc : joint_class) id =
  let v = Graph.vertex jc.jc_slow id in
  if
    v.service.throughput = infinity
    || Throughput.vertex_inflow jc.jc_slow id <= 0.
  then None
  else
    let rates =
      List.filter_map
        (fun other ->
          match Graph.find_vertex other.jc_slow ~label:v.label with
          | Some ov
            when ov.service.throughput < infinity
                 && Throughput.vertex_inflow other.jc_slow ov.id > 0. ->
            Some (Latency.vertex_rates other.jc_slow ~traffic:other.jc_cls ov.id)
          | Some _ | None -> None)
        jcs
    in
    match rates with
    | [] | [ _ ] -> None
    | rates ->
      let lambda = List.fold_left (fun acc (l, _) -> acc +. l) 0. rates in
      if lambda <= 0. then None
      else
        let mu0 = snd (List.hd rates) in
        let same_bits a b =
          Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
        in
        if List.for_all (fun (_, m) -> same_bits m mu0) rates then
          Some (lambda, mu0, 1.)
        else begin
          let m1 =
            List.fold_left (fun acc (l, m) -> acc +. (l /. lambda /. m)) 0. rates
          in
          let m2 =
            List.fold_left
              (fun acc (l, m) -> acc +. (l /. lambda *. 2. /. (m *. m)))
              0. rates
          in
          let scv = Float.max 0. ((m2 -. (m1 *. m1)) /. (m1 *. m1)) in
          Some (lambda, 1. /. m1, scv)
        end

let joint_term_of ?model jcs (jc : joint_class) id =
  match joint_rates jcs jc id with
  | None -> Latency.vertex_terms ?model jc.jc_slow ~traffic:jc.jc_cls id
  | Some (lambda, mu, scv) ->
    let service = Latency.vertex_service_time jc.jc_slow ~traffic:jc.jc_cls id in
    let t = Latency.terms_of_rates ?model jc.jc_slow id ~service ~lambda ~mu in
    if scv = 1. then t
    else { t with Latency.queueing = t.Latency.queueing *. ((1. +. scv) /. 2.) }

let apply_resource_caps caps (cls : Traffic.t) (tp : Throughput.result) =
  List.fold_left
    (fun (tp : Throughput.result) (name, cap) ->
      if cap < tp.capacity then
        {
          tp with
          capacity = cap;
          attained = Float.min cap cls.rate;
          bottleneck =
            (if cap <= cls.rate then Throughput.Resource_bound name
             else tp.bottleneck);
        }
      else tp)
    tp caps

let mixed_traffic ?queue_model ?contention ~hw ~graph_for mix =
  let jcs = build_joint ?contention ~hw ~graph_for mix in
  let evaluated =
    List.map
      (fun jc ->
        let tp = Throughput.evaluate jc.jc_scaled ~hw:jc.jc_hw ~traffic:jc.jc_cls in
        let tp = apply_resource_caps jc.jc_resource_caps jc.jc_cls tp in
        let lat =
          Latency.evaluate_with
            ~term_of:(joint_term_of ?model:queue_model jcs jc)
            jc.jc_slow ~hw ~traffic:jc.jc_cls
        in
        (jc.jc_cls, jc.jc_weight, tp, lat))
      jcs
  in
  let throughput =
    List.fold_left
      (fun acc (_, _, (tp : Throughput.result), _) -> acc +. tp.attained)
      0. evaluated
  in
  let latency =
    List.fold_left
      (fun acc (_, w, _, (lat : Latency.result)) -> acc +. (w *. lat.mean))
      0. evaluated
  in
  let contention =
    match contention with
    | None -> None
    | Some _ ->
      Some
        (List.map
           (fun jc ->
             {
               slowdown = jc.jc_slowdown;
               pressure = jc.jc_pressure;
               resource_caps = jc.jc_resource_caps;
             })
           jcs)
  in
  { classes = evaluated; throughput; latency; contention }

let mixed_tail ?model ?contention ~hw ~graph_for mix =
  let jcs = build_joint ?contention ~hw ~graph_for mix in
  List.map
    (fun jc ->
      let rates_for id =
        Option.map (fun (l, m, _) -> (l, m)) (joint_rates jcs jc id)
      in
      (jc.jc_cls, Tail.evaluate ?model ~rates_for jc.jc_slow ~hw ~traffic:jc.jc_cls))
    jcs

let insert_rate_limiter g ~before ~rate ~queue_capacity =
  let target = Graph.vertex g before in
  if target.kind <> Graph.Ip then
    invalid_arg "Extensions.insert_rate_limiter: target must be an IP vertex";
  let incoming = Graph.in_edges g before in
  if incoming = [] then
    invalid_arg "Extensions.insert_rate_limiter: target has no incoming edge";
  let service =
    Graph.service ~queue_capacity ~throughput:rate ()
  in
  let g, limiter =
    Graph.add_vertex ~kind:Graph.Ip
      ~label:(target.label ^ ".rate_limiter")
      ~service g
  in
  let total_delta =
    List.fold_left (fun acc (e : Graph.edge) -> acc +. e.delta) 0. incoming
  in
  (* Re-point each incoming edge at the limiter, keeping its parameters,
     then connect the limiter to the target with the aggregate delta.
     The limiter only enqueues/dequeues, so its outgoing edge adds no
     shared-media traffic. *)
  let g =
    List.fold_left
      (fun g (e : Graph.edge) ->
        let g = Graph.remove_edge ~src:e.src ~dst:e.dst g in
        Graph.add_edge ~delta:e.delta ~alpha:e.alpha ~beta:e.beta
          ?bandwidth:e.bandwidth ~src:e.src ~dst:limiter g)
      g incoming
  in
  let g = Graph.add_edge ~delta:total_delta ~src:limiter ~dst:before g in
  (g, limiter)

(* ---- damped fixed-point iteration ----------------------------------- *)

type fixed_point_result = {
  value : float array;
  iterations : int;
  fp_converged : bool;
}

let fixed_point ?(damping = 0.5) ?(tol = 1e-9) ?(max_iter = 200) ~update x0 =
  if (not (Float.is_finite damping)) || damping <= 0. || damping > 1. then
    invalid_arg "Extensions.fixed_point: damping must be in (0, 1]";
  if not (Float.is_finite tol && tol > 0.) then
    invalid_arg "Extensions.fixed_point: tol must be > 0";
  if max_iter < 1 then
    invalid_arg "Extensions.fixed_point: max_iter must be >= 1";
  let n = Array.length x0 in
  let x = Array.copy x0 in
  let rec go i =
    if i >= max_iter then { value = x; iterations = i; fp_converged = false }
    else begin
      (* hand [update] its own copy so a mutating callee cannot corrupt
         the iterate mid-step *)
      let fx = update (Array.copy x) in
      if Array.length fx <> n then
        invalid_arg "Extensions.fixed_point: update changed the dimension";
      let step = ref 0. in
      for k = 0 to n - 1 do
        if not (Float.is_finite fx.(k)) then
          invalid_arg "Extensions.fixed_point: update produced a non-finite value";
        let xk = ((1. -. damping) *. x.(k)) +. (damping *. fx.(k)) in
        step := Float.max !step (Float.abs (xk -. x.(k)));
        x.(k) <- xk
      done;
      if !step <= tol then { value = x; iterations = i + 1; fp_converged = true }
      else go (i + 1)
    end
  in
  go 0
