module N = Lognic_numerics

type opaque_ip = { service_time : float; capacity : float; r_squared : float }

let saturation_throughput sweep =
  if Array.length sweep = 0 then
    invalid_arg "Calibrate.saturation_throughput: empty sweep";
  Array.fold_left (fun acc (_, y) -> Float.max acc y) neg_infinity sweep

let knee_point sweep =
  let sat = saturation_throughput sweep in
  let sorted = Array.copy sweep in
  Array.sort (fun (a, _) (b, _) -> compare a b) sorted;
  let rec scan i =
    if i >= Array.length sorted then fst sorted.(Array.length sorted - 1)
    else
      let x, y = sorted.(i) in
      if y >= 0.99 *. sat then x else scan (i + 1)
  in
  scan 0

let fit_opaque_ip ~data =
  if Array.length data < 2 then invalid_arg "Calibrate.fit_opaque_ip: need >= 2 points";
  let max_rate = Array.fold_left (fun acc (r, _) -> Float.max acc r) 0. data in
  let min_latency =
    Array.fold_left (fun acc (_, l) -> Float.min acc l) infinity data
  in
  let p0 = [| min_latency; max_rate *. 1.5 |] in
  let fit =
    N.Curve_fit.fit ~model:N.Curve_fit.mm1_latency_model ~data ~p0 ()
  in
  {
    service_time = fit.N.Curve_fit.params.(0);
    capacity = fit.N.Curve_fit.params.(1);
    r_squared = fit.N.Curve_fit.r_squared;
  }

let opaque_ip_latency ip ~rate =
  N.Curve_fit.mm1_latency_model [| ip.service_time; ip.capacity |] rate

let opaque_ip_service ip = Graph.service ~throughput:ip.capacity ()

let overhead_from_intercept ~data =
  let slope, intercept = N.Curve_fit.linear ~data in
  (slope, Float.max 0. intercept)
