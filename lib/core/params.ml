type hardware = {
  bw_interface : float;
  bw_memory : float;
  resources : (string * float) list;
}

let hardware ~bw_interface ~bw_memory =
  if bw_interface <= 0. || bw_memory <= 0. then
    invalid_arg "Params.hardware: bandwidths must be > 0";
  { bw_interface; bw_memory; resources = [] }

let with_resources hw resources =
  List.iter
    (fun (name, capacity) ->
      if name = "" then invalid_arg "Params.with_resources: empty resource name";
      if capacity <= 0. then
        invalid_arg
          ("Params.with_resources: resource " ^ name ^ " capacity must be > 0"))
    resources;
  let rec dup = function
    | [] -> ()
    | (name, _) :: rest ->
      if List.mem_assoc name rest then
        invalid_arg ("Params.with_resources: duplicate resource " ^ name);
      dup rest
  in
  dup resources;
  { hw with resources }

let resource_capacity hw name = List.assoc_opt name hw.resources

type source = Spec | Characterization | Configurable

type entry = {
  symbol : string;
  name : string;
  description : string;
  source : source;
}

let table2 =
  [
    {
      symbol = "BW_INTF";
      name = "Interface bandwidth";
      description = "The maximum communication bandwidth over an interface";
      source = Spec;
    };
    {
      symbol = "BW_MEM";
      name = "Memory bandwidth";
      description = "The maximum data transfer rate over a memory hierarchy";
      source = Spec;
    };
    {
      symbol = "BW_mn";
      name = "IP-IP bandwidth";
      description = "The communication bandwidth between two IPs";
      source = Characterization;
    };
    {
      symbol = "delta_eij";
      name = "Data transfer ratio";
      description = "The relative data transfer percentage across an edge";
      source = Configurable;
    };
    {
      symbol = "alpha/beta_eij";
      name = "Edge medium usage";
      description = "The bandwidth usage over an edge via interface/memory";
      source = Configurable;
    };
    {
      symbol = "g_in";
      name = "Ingress granularity";
      description = "The data transfer granularity at an ingress engine";
      source = Configurable;
    };
    {
      symbol = "O_i";
      name = "Overhead";
      description = "The computation transfer overhead from a node to the next";
      source = Characterization;
    };
    {
      symbol = "gamma_vi";
      name = "Node partition";
      description = "The multiplexing percentage of an execution engine";
      source = Configurable;
    };
    {
      symbol = "P_vi";
      name = "IP throughput";
      description = "The computing throughput of a physical IP node";
      source = Characterization;
    };
    {
      symbol = "D_vi";
      name = "IP parallelism degree";
      description = "The parallelism of a (virtual) IP node in the graph";
      source = Configurable;
    };
    {
      symbol = "N_vi";
      name = "IP queue capacity";
      description = "The queue capacity of a (virtual) IP node in the graph";
      source = Configurable;
    };
    {
      symbol = "BW_in";
      name = "Ingress bandwidth";
      description = "The data serving rate to the SmartNIC";
      source = Configurable;
    };
    {
      symbol = "dist_size";
      name = "Packet size distribution";
      description = "The packet size distribution of the incoming traffic";
      source = Configurable;
    };
  ]

let pp_source ppf = function
  | Spec -> Fmt.string ppf "SPEC"
  | Characterization -> Fmt.string ppf "CHAR"
  | Configurable -> Fmt.string ppf "CONF"

let pp_entry ppf e =
  Fmt.pf ppf "%-14s %-26s %a  %s" e.symbol e.name pp_source e.source
    e.description
