(** Parameter calibration from measurements (§3.4 "CHAR" parameters,
    §4.3's curve-fitting remedy for opaque IPs).

    Hardware parameters marked CHAR in Table 2 come from offline
    microbenchmark characterization. This module turns measured sweeps —
    from a real device or from our simulator — into model parameters:

    - {!saturation_throughput} reads P_vi off a load sweep;
    - {!fit_opaque_ip} recovers an equivalent (service time, capacity)
      pair for an IP whose internals are hidden (the SSD case), exactly
      the latency-vs-throughput curve-fitting technique §4.3 describes;
    - {!overhead_from_intercept} extracts the per-request transfer
      overhead O_i from a latency-vs-size linear fit. *)

type opaque_ip = {
  service_time : float;  (** zero-load per-request latency, seconds *)
  capacity : float;  (** saturation rate, requests or bytes per second *)
  r_squared : float;  (** goodness of the fit *)
}

val saturation_throughput : (float * float) array -> float
(** [saturation_throughput sweep] takes [(offered, achieved)] points and
    returns the plateau — the maximum achieved value. Raises
    [Invalid_argument] on empty input. *)

val knee_point : (float * float) array -> float
(** The smallest offered load achieving ≥ 99% of the saturation value —
    used to report "how many cores max out the accelerator" (Fig 9). *)

val fit_opaque_ip : data:(float * float) array -> opaque_ip
(** [fit_opaque_ip ~data] fits latency = t0 / (1 − rate/capacity) to
    [(rate, latency)] measurements (two or more points; rates must stay
    below the fitted capacity). *)

val opaque_ip_latency : opaque_ip -> rate:float -> float
(** Evaluate the fitted curve; [infinity] at or beyond capacity. *)

val opaque_ip_service : opaque_ip -> Graph.service
(** A {!Graph.service} for the fitted IP: throughput = capacity,
    defaults elsewhere. When the data was measured in requests/s the
    caller must scale to bytes/s first. *)

val overhead_from_intercept : data:(float * float) array -> float * float
(** [(per_byte_time, fixed_overhead)] from a linear fit of latency
    against transfer size: the intercept is O_i, the slope the inverse
    effective bandwidth. *)
