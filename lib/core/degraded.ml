type modifier = {
  engines_down : (string * int) list;
  media_factors : (string * float) list;
  queue_caps : (string * int) list;
  ingress_drop : float;
}

let no_modifier =
  { engines_down = []; media_factors = []; queue_caps = []; ingress_drop = 0. }

let is_degraded m =
  m.engines_down <> [] || m.media_factors <> [] || m.queue_caps <> []
  || m.ingress_drop > 0.

(* Fold duplicate targets into one entry each: offline engines add up,
   bandwidth factors multiply, capacity overrides take the tightest. *)
let combine merge entries =
  List.fold_left
    (fun acc (key, v) ->
      match List.assoc_opt key acc with
      | None -> acc @ [ (key, v) ]
      | Some prev ->
        List.map (fun (k, x) -> if k = key then (k, merge prev v) else (k, x)) acc)
    [] entries

let link_endpoints label =
  match String.split_on_char '-' label with
  | [ "link"; s; d ] -> (
    match (int_of_string_opt s, int_of_string_opt d) with
    | Some s, Some d -> Some (s, d)
    | _ -> None)
  | _ -> None

let apply_modifier g ~(hw : Params.hardware) m =
  let failed = ref None in
  let g =
    List.fold_left
      (fun g (label, down) ->
        match Graph.find_vertex g ~label with
        | None -> g
        | Some v ->
          let d = v.Graph.service.parallelism in
          if down >= d then begin
            if !failed = None then failed := Some v.Graph.id;
            g
          end
          else
            let keep = float_of_int (d - down) /. float_of_int d in
            Graph.update_service g v.Graph.id (fun s ->
                {
                  s with
                  Graph.throughput = s.Graph.throughput *. keep;
                  parallelism = d - down;
                }))
      g
      (combine ( + ) m.engines_down)
  in
  let g =
    List.fold_left
      (fun g (label, cap) ->
        match Graph.find_vertex g ~label with
        | None -> g
        | Some v ->
          Graph.update_service g v.Graph.id (fun s ->
              { s with Graph.queue_capacity = min s.Graph.queue_capacity cap }))
      g
      (combine min m.queue_caps)
  in
  let g, hw =
    List.fold_left
      (fun (g, hw) (label, factor) ->
        match label with
        | "interface" ->
          (g, { hw with Params.bw_interface = hw.Params.bw_interface *. factor })
        | "memory" ->
          (g, { hw with Params.bw_memory = hw.Params.bw_memory *. factor })
        | label -> (
          match link_endpoints label with
          | None -> (g, hw)
          | Some (src, dst) -> (
            match Graph.edge g ~src ~dst with
            | Some { Graph.bandwidth = Some bw; _ } ->
              ( Graph.set_edge_params ~bandwidth:(Some (bw *. factor)) ~src ~dst g,
                hw )
            | Some _ | None -> (g, hw))))
      (g, hw)
      (combine ( *. ) m.media_factors)
  in
  (g, hw, !failed)

type interval_report = {
  d_start : float;
  d_stop : float;
  degraded : bool;
  capacity : float;
  carried : float;
  latency : float;
  bottleneck : Throughput.bound;
  slo_ok : bool;
}

type slo = { min_throughput_fraction : float; max_latency_factor : float }

let default_slo = { min_throughput_fraction = 0.9; max_latency_factor = 2. }

type report = {
  intervals : interval_report list;
  nominal_throughput : float;
  nominal_latency : float;
  degraded_throughput : float;
  degraded_latency : float;
  availability : float;
  worst : interval_report option;
  slo : slo;
}

let evaluate ?queue_model ?(slo = default_slo) g ~hw ~(traffic : Traffic.t)
    ~intervals =
  if intervals = [] then invalid_arg "Degraded.evaluate: no intervals";
  List.iter
    (fun (a, b, _) ->
      if b <= a || a < 0. then
        invalid_arg "Degraded.evaluate: intervals must have positive length")
    intervals;
  let nominal_tp = Throughput.evaluate g ~hw ~traffic in
  let nominal_throughput = nominal_tp.Throughput.attained in
  let nominal_latency =
    (Latency.evaluate ?model:queue_model g ~hw ~traffic).Latency.mean
  in
  let meets_slo ~carried ~latency =
    carried >= slo.min_throughput_fraction *. nominal_throughput
    && ((not (Float.is_finite nominal_latency))
       || latency <= slo.max_latency_factor *. nominal_latency)
  in
  let rows =
    List.map
      (fun (d_start, d_stop, m) ->
        let g', hw', failed = apply_modifier g ~hw m in
        match failed with
        | Some vid ->
          {
            d_start;
            d_stop;
            degraded = true;
            capacity = 0.;
            carried = 0.;
            latency = infinity;
            bottleneck = Throughput.Vertex_bound vid;
            slo_ok = false;
          }
        | None ->
          let traffic' =
            { traffic with Traffic.rate = traffic.rate *. (1. -. m.ingress_drop) }
          in
          let tp = Throughput.evaluate g' ~hw:hw' ~traffic:traffic' in
          let latency =
            (Latency.evaluate ?model:queue_model g' ~hw:hw' ~traffic:traffic')
              .Latency.mean
          in
          let carried = tp.Throughput.attained in
          {
            d_start;
            d_stop;
            degraded = is_degraded m;
            capacity = tp.Throughput.capacity;
            carried;
            latency;
            bottleneck = tp.Throughput.bottleneck;
            slo_ok = meets_slo ~carried ~latency;
          })
      intervals
  in
  let horizon =
    List.fold_left (fun acc r -> acc +. (r.d_stop -. r.d_start)) 0. rows
  in
  let weighted f =
    List.fold_left (fun acc r -> acc +. (f r *. (r.d_stop -. r.d_start))) 0. rows
  in
  let degraded_throughput =
    if horizon > 0. then weighted (fun r -> r.carried) /. horizon else 0.
  in
  (* Weight each interval's latency by the traffic it actually delivers
     (carried · Δt): a dead interval drags availability, not the latency
     of the packets that do get through. *)
  let delivered = weighted (fun r -> r.carried) in
  let degraded_latency =
    if delivered > 0. then
      List.fold_left
        (fun acc r ->
          if r.carried > 0. && Float.is_finite r.latency then
            acc +. (r.latency *. r.carried *. (r.d_stop -. r.d_start))
          else acc)
        0. rows
      /. delivered
    else 0.
  in
  let availability =
    if horizon > 0. then
      weighted (fun r -> if r.slo_ok then 1. else 0.) /. horizon
    else 1.
  in
  let worst =
    List.fold_left
      (fun acc r ->
        if not r.degraded then acc
        else
          match acc with
          | Some w when w.carried <= r.carried -> acc
          | _ -> Some r)
      None rows
  in
  {
    intervals = rows;
    nominal_throughput;
    nominal_latency;
    degraded_throughput;
    degraded_latency;
    availability;
    worst;
    slo;
  }

let pp g ppf r =
  Fmt.pf ppf "degraded mode: nominal %.4g B/s, %.4g s@." r.nominal_throughput
    r.nominal_latency;
  Fmt.pf ppf "  %-20s %-8s %12s %12s %10s %s@." "interval(s)" "state"
    "capacity" "carried" "latency" "bottleneck";
  List.iter
    (fun row ->
      Fmt.pf ppf "  [%8.4f, %8.4f) %-8s %12.4g %12.4g %10.3g %a%s@."
        row.d_start row.d_stop
        (if row.degraded then "faulted" else "healthy")
        row.capacity row.carried row.latency (Throughput.pp_bound g)
        row.bottleneck
        (if row.slo_ok then "" else "  [SLO-violating]"))
    r.intervals;
  Fmt.pf ppf
    "  time-weighted throughput %.4g B/s (%.1f%% of nominal), latency %.4g s, \
     availability %.1f%%@."
    r.degraded_throughput
    (if r.nominal_throughput > 0. then
       100. *. r.degraded_throughput /. r.nominal_throughput
     else 0.)
    r.degraded_latency (100. *. r.availability)
