(** Tail-latency estimation — an extension beyond the paper.

    §4.7 lists as a LogNIC limitation that "the model optimizer cannot
    take the tail latency as the optimization goal or constraint since
    the model is unable to estimate the tail behavior". This module
    closes that gap under the model's own assumptions (Poisson
    arrivals, exponential service, M/M/D/N vertices):

    - an accepted arrival that finds [k] requests in an M/M/1/N system
      sojourns for an Erlang(k+1, μ) time, so the sojourn's first two
      moments follow from the state distribution (PASTA conditioned on
      acceptance); the M/M/c/N case splits into a no-wait branch
      (k < c) and an Erlang wait at rate cμ;
    - a path's random sojourn is the independent sum over its vertices,
      so means and variances add; deterministic terms (overheads, data
      movement) shift the distribution;
    - the sum is approximated by a moment-matched gamma distribution,
      and the whole-graph quantile inverts the path-weighted CDF
      mixture.

    Estimates are validated against the simulator's measured p50/p99 in
    the test suite. Accuracy degrades with heavy per-vertex blocking
    (the acceptance conditioning skews higher moments). *)

type quantiles = {
  q_mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type path_tail = {
  tpath : Graph.vertex_id list;
  tweight : float;
  tq : quantiles;
}

type result
(** Holds the per-path distributions so arbitrary quantiles stay
    invertible. *)

val overall : result -> quantiles
val per_path : result -> path_tail list

val vertex_sojourn_moments :
  ?model:Latency.queue_model ->
  ?rates_for:(Graph.vertex_id -> (float * float) option) ->
  Graph.t ->
  traffic:Traffic.t ->
  Graph.vertex_id ->
  float * float
(** (mean, variance) of the vertex's sojourn (queueing + service) for
    an accepted request; (0, 0) for transparent vertices. Only
    [Mm1n_model] and [Mmcn_model] are meaningful; the ablation models
    fall back to Mm1n. [rates_for] overrides the Eq 11 (λ, μ) per
    vertex ([None] falls back) — the hook {!Extensions.mixed_tail}
    uses to thread union-queue rates through the tail analysis. *)

val evaluate :
  ?model:Latency.queue_model ->
  ?rates_for:(Graph.vertex_id -> (float * float) option) ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  result
(** Raises [Invalid_argument] on an invalid graph (same contract as
    {!Latency.evaluate}). The overall [q_mean] agrees with
    {!Latency.evaluate}'s mean by construction (same per-vertex
    queueing assumptions). *)

val quantile : result -> float -> float
(** [quantile r p] inverts the weighted path mixture at an arbitrary
    p ∈ (0, 1). Raises [Invalid_argument] outside that interval. *)
