(** Latency modeling (§3.6, Eqs 5–12).

    A request's time at an IP is queueing (Q) plus service (C/A); moving
    to the next IP adds the computation-transfer overhead (O) and the
    data-movement time over the traversed media (Eq 5). A path's latency
    accumulates these along its edges, plus the final vertex's Q and C/A
    (Eq 6); the graph latency is the weighted average over all
    ingress→egress paths (Eq 8), weighted by the δ-derived branching
    probabilities.

    Queueing uses the virtual-shared-queue abstraction with an M/M/1/N
    model per vertex (Eqs 9–12), parameterized from Eq 11:

    - λ_i = BW_in · indeg(v_i) / (D_vi · g_in)
    - μ_i = γ·A·P_vi · indeg(v_i) / (D_vi · g_in · Σδ_ji)

    so that ρ_i = BW_in·Σδ_ji / (γ·A·P_vi), the vertex's utilization.
    Vertices with infinite throughput are transparent (Q = C = 0). *)

type queue_model =
  | Mm1n_model  (** the paper's finite-queue model, Eq 12 (default) *)
  | Mmcn_model
      (** exact multi-server M/M/D/N per vertex. Identical to
          [Mm1n_model] when D = 1; for high-parallelism opaque IPs
          (e.g. an SSD with dozens of in-flight commands) this is the
          parameter-free equivalent of the paper's curve-fitting
          remedy (§4.3) — Eq 12's per-engine-queue abstraction
          overstates their queueing *)
  | Mm1_model
      (** infinite-buffer ablation; diverges at ρ ≥ 1 (reported as
          [infinity]) *)
  | No_queueing  (** ablation: Q_i = 0 everywhere *)

type vertex_terms = {
  vid : Graph.vertex_id;
  queueing : float;  (** Q_i, seconds *)
  service : float;  (** C_i/A_i, seconds *)
  utilization : float;  (** ρ_i *)
  drop_probability : float;
      (** M/M/1/N blocking probability Pro_N (0 under the other queue
          models) *)
}

type path_report = {
  path : Graph.vertex_id list;
  weight : float;  (** w_Pk, normalized over all paths *)
  total : float;  (** T_Pk, seconds *)
  queueing : float;
  service : float;
  overhead : float;
  transfer : float;  (** data movement over interface/memory/links *)
}

type result = {
  mean : float;  (** T_attainable (Eq 8), seconds *)
  per_path : path_report list;
  per_vertex : vertex_terms list;
  carried_rate : float;
      (** BW_in discounted by the path-weighted blocking along the way —
          the model's goodput estimate under finite queues, bytes/s *)
}

val vertex_service_time :
  Graph.t -> traffic:Traffic.t -> Graph.vertex_id -> float
(** C_i/A_i per Eq 7. 0 for infinite-throughput vertices. *)

val vertex_queueing :
  ?model:queue_model -> Graph.t -> traffic:Traffic.t -> Graph.vertex_id -> float
(** Q_i per Eq 12 (or the selected ablation). *)

val vertex_rates : Graph.t -> traffic:Traffic.t -> Graph.vertex_id -> float * float
(** (λ, μ) of the vertex's virtual shared queue per Eq 11 — the inputs
    to the queueing term, exposed for the tail-latency extension. *)

val vertex_terms :
  ?model:queue_model -> Graph.t -> traffic:Traffic.t -> Graph.vertex_id -> vertex_terms
(** The full single-class per-vertex evaluation: Eq 11 rates fed to the
    selected queue model, zero terms for transparent vertices. *)

val terms_of_rates :
  ?model:queue_model ->
  Graph.t ->
  Graph.vertex_id ->
  service:float ->
  lambda:float ->
  mu:float ->
  vertex_terms
(** The queue-model dispatch of {!vertex_terms} with caller-supplied
    (λ, μ) and service time — the hook the joint multi-class evaluation
    ({!Extensions.mixed_traffic}) uses to feed a vertex the union of
    class arrival streams and a packet-size-mixture service rate.
    Queue capacity and parallelism still come from the vertex. *)

val edge_transfer_time :
  Graph.t -> hw:Params.hardware -> traffic:Traffic.t -> Graph.edge -> float
(** g_in·α/BW_INTF + g_in·β/BW_MEM (+ g_in·δ/BW_mn on a dedicated
    link) — Eq 7, first line. *)

val path_weights : Graph.t -> (Graph.vertex_id list * float) list
(** All ingress→egress paths with normalized δ-branching weights. On a
    combinatorial graph this degrades to the first 10_000 paths
    ({!Graph.paths_capped}), weights renormalized over that subset,
    rather than raising. *)

val evaluate :
  ?model:queue_model ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  result
(** Raises [Invalid_argument] if the graph fails {!Graph.validate} or
    has no ingress→egress path. *)

val evaluate_with :
  term_of:(Graph.vertex_id -> vertex_terms) ->
  Graph.t ->
  hw:Params.hardware ->
  traffic:Traffic.t ->
  result
(** {!evaluate} with the per-vertex queueing terms supplied by
    [term_of] (memoized per vertex, called at most once per id) instead
    of the single-class Eq 11 derivation. [traffic] still scopes the
    edge-transfer times (packet size) and the carried-rate discount
    (offered rate). [evaluate] is [evaluate_with] over
    {!vertex_terms}. *)

val pp_result : Format.formatter -> result -> unit
