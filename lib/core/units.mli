(** Unit conventions and conversions.

    Internally the model works in SI base units:
    - data sizes in {b bytes},
    - time in {b seconds},
    - data rates in {b bytes per second},
    - operation rates in {b operations per second}.

    These helpers convert to and from the units the paper plots in
    (Gbps, MB/s, MOPS, µs, ...). A value like [25. *. gbps] reads as
    "25 gigabits per second expressed in bytes/s". *)

val kb : float
(** 1 kB = 1000 bytes (decimal, matching NIC datasheets). *)

val kib : float
(** 1 KiB = 1024 bytes (binary, matching I/O block sizes: "4KB" I/Os). *)

val mb : float
val mib : float
val gb : float

val gbps : float
(** 1 Gbit/s in bytes/s (= 1.25e8). *)

val mbps : float
(** 1 Mbit/s in bytes/s. *)

val mbytes_per_s : float
(** 1 MB/s in bytes/s. *)

val gbytes_per_s : float

val mops : float
(** 1 million operations per second. *)

val usec : float
(** 1 µs in seconds. *)

val msec : float

val to_gbps : float -> float
(** bytes/s -> Gbit/s. *)

val to_mbps : float -> float
val to_mbytes_per_s : float -> float
val to_mops : float -> float
val to_usec : float -> float
val to_msec : float -> float

val mtu : float
(** Standard Ethernet MTU payload size used throughout the paper's
    figures: 1500 bytes. *)
