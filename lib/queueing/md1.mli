(** The M/D/1 queue — Poisson arrivals, deterministic service. The
    Pollaczek–Khinchine mean for zero service variance: queueing delay
    is exactly half of M/M/1's. Backs the simulator's [Deterministic]
    service ablation analytically. *)

type t = { lambda : float; mu : float }

val create : lambda:float -> mu:float -> t
(** [mu] is 1 / service time. Raises [Invalid_argument] on non-positive
    rates. *)

val utilization : t -> float
val stable : t -> bool

val mean_waiting_time : t -> float
(** Wq = ρ / (2μ(1−ρ)); infinite when unstable. *)

val mean_time_in_system : t -> float
(** W = Wq + 1/μ. *)

val mean_number_in_system : t -> float
(** L = λW. *)
