(** The M/M/1/N queue — Poisson arrivals, exponential service, at most
    [capacity] requests in the system (arrivals finding it full are
    dropped). This is the queueing discipline the LogNIC latency model
    assigns to every IP block (paper Eqs 9–12): the IP's input queues are
    concatenated into one virtual shared queue whose capacity is the
    queue-entry provision (e.g. PANIC "credits").

    Unlike M/M/1, the system is well-defined for any ρ, including ρ ≥ 1:
    the finite buffer sheds load instead of diverging. *)

type t = { lambda : float; mu : float; capacity : int }

val create : lambda:float -> mu:float -> capacity:int -> t
(** Raises [Invalid_argument] unless rates are positive and
    [capacity >= 1]. *)

val utilization : t -> float
(** ρ = λ/μ (offered, not carried, load). *)

val state_probability : t -> int -> float
(** [state_probability t k] is Pro_k, the steady-state probability of [k]
    requests in the system (paper Eq 10); 0 outside [0..capacity]. *)

val state_probabilities : t -> float array
(** The full normalized vector [Pro_0 .. Pro_N] in one O(N) pass. Loop
    callers (e.g. tail-latency summation) should use this instead of
    calling [state_probability] per state, which rebuilds the vector on
    every call. *)

val blocking_probability : t -> float
(** Pro_N — the packet drop rate of the IP. *)

val mean_number_in_system : t -> float
(** L = Σ k·Pro_k. *)

val effective_arrival_rate : t -> float
(** λe = λ(1 − Pro_N): the admitted-traffic rate. *)

val throughput : t -> float
(** Carried rate — equal to [effective_arrival_rate] in steady state. *)

val mean_time_in_system : t -> float
(** W = L/λe (Little's law over admitted requests). *)

val mean_waiting_time : t -> float
(** Q = L/λe − 1/μ — paper Eq 9/12, the queueing delay that enters the
    per-IP latency term. Never negative (clamped against rounding). *)

val waiting_time_closed_form : t -> float
(** Paper Eq 12's algebraic form
    (1/μ)·(ρ/(1−ρ) − Nρ^N/(1−ρ^N)), with the ρ→1 limit handled.
    Kept separate so tests can confirm it agrees with
    [mean_waiting_time]. *)
