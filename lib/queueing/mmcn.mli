(** The M/M/c/N queue — [servers] parallel exponential servers, at most
    [capacity] requests in the system (queued + in service), Poisson
    arrivals, arrivals finding the system full are dropped.

    This is exactly the behaviour of a simulated IP block with [c]
    engines and an [N]-entry virtual shared queue. The LogNIC paper's
    Eq 12 collapses an IP to M/M/1/N (per-engine queues); for
    high-parallelism opaque IPs (an SSD sustaining dozens of in-flight
    commands) that overstates queueing, which the paper compensates for
    by curve-fitting the IP's parameters (§4.3). We expose the exact
    multi-server queue instead so the same correction is parameter-free
    (see {!Lognic.Latency.queue_model}). *)

type t = { lambda : float; mu : float; servers : int; capacity : int }

val create : lambda:float -> mu:float -> servers:int -> capacity:int -> t
(** [mu] is the per-server rate. Raises [Invalid_argument] unless rates
    are positive and [1 <= servers <= capacity]. *)

val utilization : t -> float
(** ρ = λ/(cμ), offered. *)

val state_probabilities : t -> float array
(** Steady-state distribution over [0..capacity] requests in system. *)

val blocking_probability : t -> float
val mean_number_in_system : t -> float
val effective_arrival_rate : t -> float

val mean_time_in_system : t -> float
(** W = L/λe. *)

val mean_waiting_time : t -> float
(** Q = W − 1/μ, clamped non-negative. *)
