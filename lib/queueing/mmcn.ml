type t = { lambda : float; mu : float; servers : int; capacity : int }

let create ~lambda ~mu ~servers ~capacity =
  if lambda <= 0. || mu <= 0. then invalid_arg "Mmcn.create: rates must be > 0";
  if servers < 1 then invalid_arg "Mmcn.create: servers must be >= 1";
  if capacity < servers then invalid_arg "Mmcn.create: capacity must be >= servers";
  { lambda; mu; servers; capacity }

let utilization t = t.lambda /. (float_of_int t.servers *. t.mu)

(* Birth-death chain: service rate at state k is min(k, c)·mu. The
   unnormalized weights are built multiplicatively in log-free form with
   running normalization to stay finite for any load. *)
let state_probabilities t =
  let raw = Array.make (t.capacity + 1) 0. in
  raw.(0) <- 1.;
  for k = 1 to t.capacity do
    let service_rate = float_of_int (min k t.servers) *. t.mu in
    raw.(k) <- raw.(k - 1) *. t.lambda /. service_rate;
    (* Rescale on overflow risk; relative weights are all that matter. *)
    if raw.(k) > 1e250 then
      for j = 0 to k do
        raw.(j) <- raw.(j) /. 1e250
      done
  done;
  let total = Array.fold_left ( +. ) 0. raw in
  Array.map (fun p -> p /. total) raw

let blocking_probability t = (state_probabilities t).(t.capacity)

let mean_number_in_system t =
  let probs = state_probabilities t in
  let acc = ref 0. in
  Array.iteri (fun k p -> acc := !acc +. (float_of_int k *. p)) probs;
  !acc

let effective_arrival_rate t = t.lambda *. (1. -. blocking_probability t)
let mean_time_in_system t = mean_number_in_system t /. effective_arrival_rate t

let mean_waiting_time t =
  Float.max 0. (mean_time_in_system t -. (1. /. t.mu))
