(** The M/M/c queue — [servers] parallel exponential servers fed by one
    Poisson stream. Used to sanity-check the simulator's multi-engine IP
    blocks and as an alternative service model in ablations. *)

type t = { lambda : float; mu : float; servers : int }

val create : lambda:float -> mu:float -> servers:int -> t
(** [mu] is the per-server rate. Raises [Invalid_argument] unless rates
    are positive and [servers >= 1]. *)

val utilization : t -> float
(** ρ = λ/(cμ). *)

val stable : t -> bool

val erlang_c : t -> float
(** Probability an arrival has to wait (all servers busy). Requires
    stability. *)

val mean_waiting_time : t -> float
(** Wq = C(c, λ/μ) / (cμ − λ); infinite when unstable. *)

val mean_time_in_system : t -> float
(** W = Wq + 1/μ. *)

val mean_number_in_system : t -> float
(** L = λW. *)
