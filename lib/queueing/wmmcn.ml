let weighted_shares ~capacity ~weights ~demands =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Wmmcn.weighted_shares: no classes";
  if Array.length demands <> n then
    invalid_arg "Wmmcn.weighted_shares: weights/demands length mismatch";
  if capacity <= 0. then
    invalid_arg "Wmmcn.weighted_shares: capacity must be > 0";
  Array.iter
    (fun w ->
      if w <= 0. then invalid_arg "Wmmcn.weighted_shares: weights must be > 0")
    weights;
  Array.iter
    (fun d ->
      if d < 0. then invalid_arg "Wmmcn.weighted_shares: negative demand")
    demands;
  let alloc = Array.make n 0. in
  let satisfied = Array.make n false in
  (* Water-filling: cap satisfied classes at their demand and
     redistribute the surplus among the rest by weight, until a round
     caps nobody (at most n rounds, each in index order, so the
     computation is deterministic). *)
  let remaining = ref capacity in
  let progress = ref true in
  while !progress do
    progress := false;
    let active_w = ref 0. in
    for i = 0 to n - 1 do
      if not satisfied.(i) then active_w := !active_w +. weights.(i)
    done;
    if !active_w > 0. then
      for i = 0 to n - 1 do
        if not satisfied.(i) then begin
          let entitlement = !remaining *. weights.(i) /. !active_w in
          if demands.(i) <= entitlement then begin
            alloc.(i) <- demands.(i);
            satisfied.(i) <- true;
            progress := true
          end
        end
      done;
    if !progress then begin
      let used = ref 0. in
      for i = 0 to n - 1 do
        if satisfied.(i) then used := !used +. alloc.(i)
      done;
      remaining := capacity -. !used
    end
  done;
  (* Unsatisfied classes split the remaining capacity by weight. *)
  let active_w = ref 0. in
  for i = 0 to n - 1 do
    if not satisfied.(i) then active_w := !active_w +. weights.(i)
  done;
  if !active_w > 0. then
    for i = 0 to n - 1 do
      if not satisfied.(i) then
        alloc.(i) <- !remaining *. weights.(i) /. !active_w
    done
  else begin
    (* Everybody is satisfied: hand the idle headroom back in weight
       proportion so shares reflect the work-conserving scheduler. *)
    let total_w = Array.fold_left ( +. ) 0. weights in
    let used = Array.fold_left ( +. ) 0. alloc in
    let headroom = Float.max 0. (capacity -. used) in
    for i = 0 to n - 1 do
      alloc.(i) <- alloc.(i) +. (headroom *. weights.(i) /. total_w)
    done
  end;
  alloc

type class_result = {
  share : float;
  rho : float;
  blocking : float;
  sojourn : float;
  waiting : float;
}

let evaluate ~lambda ~mu ~servers ~capacity ~weights =
  let n = Array.length lambda in
  if n = 0 then invalid_arg "Wmmcn.evaluate: no classes";
  if Array.length weights <> n then
    invalid_arg "Wmmcn.evaluate: lambda/weights length mismatch";
  if mu <= 0. then invalid_arg "Wmmcn.evaluate: mu must be > 0";
  if servers < 1 then invalid_arg "Wmmcn.evaluate: servers must be >= 1";
  if capacity < servers then
    invalid_arg "Wmmcn.evaluate: capacity must be >= servers";
  Array.iter
    (fun l -> if l < 0. then invalid_arg "Wmmcn.evaluate: negative rate")
    lambda;
  let pool = float_of_int servers *. mu in
  let demands = Array.map (fun l -> l /. pool) lambda in
  let shares = weighted_shares ~capacity:1. ~weights ~demands in
  Array.init n (fun i ->
      let share = shares.(i) in
      let mu_i = share *. mu in
      if lambda.(i) <= 0. || mu_i <= 0. then
        {
          share;
          rho = 0.;
          blocking = 0.;
          sojourn = (if mu_i > 0. then 1. /. mu_i else 0.);
          waiting = 0.;
        }
      else
        let q =
          Mmcn.create ~lambda:lambda.(i) ~mu:mu_i ~servers ~capacity
        in
        {
          share;
          rho = Mmcn.utilization q;
          blocking = Mmcn.blocking_probability q;
          sojourn = Mmcn.mean_time_in_system q;
          waiting = Mmcn.mean_waiting_time q;
        })
