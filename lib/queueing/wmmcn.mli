(** Weighted multi-class M/M/c/N service — the analytic counterpart of
    the simulator's hierarchical (tenant → queue) weighted-round-robin
    dispatcher.

    A WRR scheduler over a shared engine pool gives each backlogged
    class a service share proportional to its weight, while classes
    that demand less than their entitlement return the surplus to the
    others (it is work conserving). The classical fluid limit of that
    discipline is {e weighted max-min fairness}: allocations are
    computed by water-filling ({!weighted_shares}).

    For per-class queueing we use the standard reduced-service-rate
    decomposition: class [i] with allocated capacity fraction [phi_i]
    of a [c]-server pool behaves as its own M/M/c/N system whose
    per-server rate is [phi_i * mu] ({!evaluate}). This is exact for
    the fluid share and a first-order approximation for the queueing
    terms — the same compromise LogNIC's Eq 12 makes when collapsing an
    IP's queues into one virtual shared queue. *)

val weighted_shares :
  capacity:float -> weights:float array -> demands:float array -> float array
(** [weighted_shares ~capacity ~weights ~demands] is the weighted
    max-min fair allocation of [capacity] across the classes:
    repeatedly grant every unsatisfied class its weight-proportional
    share of the remaining capacity, cap classes at their demand, and
    redistribute the surplus. Any capacity left once every demand is
    met (the underloaded case) is handed back in weight proportion, so
    each class sees its guaranteed share {e plus} its share of the idle
    headroom — the work-conserving WRR behaviour.

    The result sums to [min capacity (sum demands)] plus the
    distributed headroom, and every class receives at least
    [min demand (capacity * w_i / sum w)] (its guarantee). Raises
    [Invalid_argument] on mismatched lengths, an empty class set, a
    non-positive capacity or weight, or a negative demand. *)

(** Per-class steady-state results of the reduced-rate decomposition. *)
type class_result = {
  share : float;
      (** allocated capacity fraction [phi_i] of the pool (sums to ≤ 1,
          = 1 when any class is backlogged) *)
  rho : float;  (** class utilization of its allocation, λ_i/(φ_i·c·μ) *)
  blocking : float;  (** P(arrival finds the class's system full) *)
  sojourn : float;  (** mean time in system W_i, seconds *)
  waiting : float;  (** mean queueing delay Q_i = W_i − 1/(φ_i·μ) *)
}

val evaluate :
  lambda:float array ->
  mu:float ->
  servers:int ->
  capacity:int ->
  weights:float array ->
  class_result array
(** [evaluate ~lambda ~mu ~servers ~capacity ~weights] decomposes a
    [servers]-engine pool (per-server rate [mu], at most [capacity]
    requests in system per class) shared under WRR [weights] among
    classes with Poisson arrival rates [lambda]: shares come from
    {!weighted_shares} over the per-class demands [λ_i/(c·μ)], and each
    class is then evaluated as M/M/c/N with per-server rate
    [share_i · mu]. A class with [λ_i = 0] reports its idle share,
    zero blocking and the pure service time. Raises [Invalid_argument]
    on mismatched array lengths, an empty class set, non-positive
    [mu]/[servers]/[capacity]/weights, or a negative rate. *)
