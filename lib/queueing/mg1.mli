(** The M/G/1 queue — Poisson arrivals, general service times — via the
    Pollaczek–Khinchine formula. Parameterized by the service time's
    squared coefficient of variation (scv = Var/Mean²):
    scv = 1 recovers M/M/1, scv = 0 recovers M/D/1.

    This quantifies a real LogNIC gap our Fig 15 reproduction exposes:
    bimodal packet-size mixes give service scv > 1, so the measured
    system queues (and blocks) more than the M/M/1/N model predicts. *)

type t = {
  lambda : float;
  mu : float;  (** 1 / mean service time *)
  scv : float;  (** squared coefficient of variation of service, ≥ 0 *)
}

val create : lambda:float -> mu:float -> scv:float -> t

val of_service_mix : lambda:float -> services:(float * float) list -> t
(** [of_service_mix ~lambda ~services] builds the queue for a workload
    whose service time is a mixture of [(seconds, weight)] point
    masses — e.g. per-packet-size service times weighted by packet
    share. *)

val utilization : t -> float
val stable : t -> bool

val mean_waiting_time : t -> float
(** Wq = ρ(1 + scv) / (2μ(1 − ρ)); infinite when unstable. *)

val mean_time_in_system : t -> float
val mean_number_in_system : t -> float

val mm1_underestimate : t -> float
(** Wq(M/G/1) / Wq(M/M/1) = (1 + scv)/2 — how far an exponential
    assumption underestimates (scv > 1) or overestimates (scv < 1) the
    queueing of this workload. *)
