(** The M/M/1 queue: Poisson arrivals at rate [lambda], exponential
    service at rate [mu], infinite buffer. This is the [N -> infinity]
    limit of {!Mm1n} and is used as a cross-check in tests and as the
    "infinite queue" ablation of the LogNIC latency model. *)

type t = { lambda : float; mu : float }

val create : lambda:float -> mu:float -> t
(** Raises [Invalid_argument] unless both rates are positive. *)

val utilization : t -> float
(** ρ = λ/μ. *)

val stable : t -> bool
(** ρ < 1; the closed forms below require stability. *)

val mean_number_in_system : t -> float
(** L = ρ/(1−ρ). Infinite when unstable. *)

val mean_number_in_queue : t -> float
(** Lq = ρ²/(1−ρ). *)

val mean_time_in_system : t -> float
(** W = 1/(μ−λ). *)

val mean_waiting_time : t -> float
(** Wq = ρ/(μ−λ) — time spent queueing, excluding service. *)
