type t = { lambda : float; mu : float }

let create ~lambda ~mu =
  if lambda <= 0. || mu <= 0. then invalid_arg "Md1.create: rates must be > 0";
  { lambda; mu }

let utilization t = t.lambda /. t.mu
let stable t = utilization t < 1.

let mean_waiting_time t =
  let rho = utilization t in
  if rho >= 1. then infinity else rho /. (2. *. t.mu *. (1. -. rho))

let mean_time_in_system t = mean_waiting_time t +. (1. /. t.mu)

let mean_number_in_system t =
  if stable t then t.lambda *. mean_time_in_system t else infinity
