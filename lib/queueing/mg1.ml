type t = { lambda : float; mu : float; scv : float }

let create ~lambda ~mu ~scv =
  if lambda <= 0. || mu <= 0. then invalid_arg "Mg1.create: rates must be > 0";
  if scv < 0. then invalid_arg "Mg1.create: scv must be >= 0";
  { lambda; mu; scv }

let of_service_mix ~lambda ~services =
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0. services in
  if total_w <= 0. then invalid_arg "Mg1.of_service_mix: zero total weight";
  if List.exists (fun (s, w) -> s <= 0. || w < 0.) services then
    invalid_arg "Mg1.of_service_mix: services must be positive, weights >= 0";
  let mean =
    List.fold_left (fun acc (s, w) -> acc +. (s *. w)) 0. services /. total_w
  in
  let second =
    List.fold_left (fun acc (s, w) -> acc +. (s *. s *. w)) 0. services /. total_w
  in
  let variance = Float.max 0. (second -. (mean *. mean)) in
  create ~lambda ~mu:(1. /. mean) ~scv:(variance /. (mean *. mean))

let utilization t = t.lambda /. t.mu
let stable t = utilization t < 1.

let mean_waiting_time t =
  let rho = utilization t in
  if rho >= 1. then infinity
  else rho *. (1. +. t.scv) /. (2. *. t.mu *. (1. -. rho))

let mean_time_in_system t = mean_waiting_time t +. (1. /. t.mu)

let mean_number_in_system t =
  if stable t then t.lambda *. mean_time_in_system t else infinity

let mm1_underestimate t = (1. +. t.scv) /. 2.
