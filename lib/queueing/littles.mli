(** Little's-law helpers (L = λW), used by telemetry cross-checks. *)

val number_in_system : arrival_rate:float -> time_in_system:float -> float
val time_in_system : arrival_rate:float -> number_in_system:float -> float
val arrival_rate : number_in_system:float -> time_in_system:float -> float

val consistent :
  ?tol:float ->
  arrival_rate:float ->
  time_in_system:float ->
  number_in_system:float ->
  unit ->
  bool
(** Checks L ≈ λW within relative tolerance [tol] (default 5%); useful as
    an invariant over simulator measurements. *)
