type t = { lambda : float; mu : float; capacity : int }

let create ~lambda ~mu ~capacity =
  if lambda <= 0. || mu <= 0. then invalid_arg "Mm1n.create: rates must be > 0";
  if capacity < 1 then invalid_arg "Mm1n.create: capacity must be >= 1";
  { lambda; mu; capacity }

let utilization t = t.lambda /. t.mu

(* The state distribution is geometric truncated at N. Computing it as an
   explicit normalized vector is O(N), exact at rho = 1, and numerically
   stable for any utilization — capacities here are queue credits, so N is
   small. *)
let probabilities t =
  let rho = utilization t in
  let raw = Array.init (t.capacity + 1) (fun k -> rho ** float_of_int k) in
  let total = Array.fold_left ( +. ) 0. raw in
  Array.map (fun p -> p /. total) raw

let state_probability t k =
  if k < 0 || k > t.capacity then 0. else (probabilities t).(k)

let blocking_probability t = (probabilities t).(t.capacity)

let mean_number_in_system t =
  let probs = probabilities t in
  let acc = ref 0. in
  Array.iteri (fun k p -> acc := !acc +. (float_of_int k *. p)) probs;
  !acc

let effective_arrival_rate t = t.lambda *. (1. -. blocking_probability t)
let throughput = effective_arrival_rate
let mean_time_in_system t = mean_number_in_system t /. effective_arrival_rate t

let mean_waiting_time t =
  Float.max 0. (mean_time_in_system t -. (1. /. t.mu))

let waiting_time_closed_form t =
  let rho = utilization t in
  let n = float_of_int t.capacity in
  let inner =
    if abs_float (rho -. 1.) < 1e-9 then
      (* lim_{rho->1} rho/(1-rho) - N rho^N/(1-rho^N) = (N-1)/2 *)
      (n -. 1.) /. 2.
    else (rho /. (1. -. rho)) -. (n *. (rho ** n) /. (1. -. (rho ** n)))
  in
  Float.max 0. (inner /. t.mu)
