type t = { lambda : float; mu : float; capacity : int }

let create ~lambda ~mu ~capacity =
  if lambda <= 0. || mu <= 0. then invalid_arg "Mm1n.create: rates must be > 0";
  if capacity < 1 then invalid_arg "Mm1n.create: capacity must be >= 1";
  { lambda; mu; capacity }

let utilization t = t.lambda /. t.mu

(* The state distribution is geometric truncated at N. Computing it as an
   explicit normalized vector is O(N), exact at rho = 1, and numerically
   stable for any utilization — capacities here are queue credits, so N is
   small. *)
let probabilities t =
  let rho = utilization t in
  let raw = Array.init (t.capacity + 1) (fun k -> rho ** float_of_int k) in
  let total = Array.fold_left ( +. ) 0. raw in
  Array.map (fun p -> p /. total) raw

let state_probabilities = probabilities

(* Each public query builds the O(N) vector exactly once: these sit on the
   optimizer's inner loop, where the old one-vector-per-call pattern
   rebuilt it up to three times per [mean_time_in_system]. *)
let mean_number_of probs =
  let acc = ref 0. in
  Array.iteri (fun k p -> acc := !acc +. (float_of_int k *. p)) probs;
  !acc

let effective_arrival_of t probs =
  t.lambda *. (1. -. probs.(t.capacity))

let state_probability t k =
  if k < 0 || k > t.capacity then 0. else (probabilities t).(k)

let blocking_probability t = (probabilities t).(t.capacity)
let mean_number_in_system t = mean_number_of (probabilities t)

let effective_arrival_rate t =
  let probs = probabilities t in
  effective_arrival_of t probs

let throughput = effective_arrival_rate

let mean_time_in_system t =
  let probs = probabilities t in
  mean_number_of probs /. effective_arrival_of t probs

let mean_waiting_time t =
  Float.max 0. (mean_time_in_system t -. (1. /. t.mu))

let waiting_time_closed_form t =
  let rho = utilization t in
  let n = float_of_int t.capacity in
  let h = rho -. 1. in
  let inner =
    if abs_float h < 1e-6 then
      (* rho = 1 is a removable singularity: both geometric terms blow
         up as 1/h and their difference cancels catastrophically (the
         naive formula is off by ~1e-4 already at h = 1e-7). Taylor:
         rho/(1-rho) - N rho^N/(1-rho^N)
           = (N-1)/2 + (N^2-1)/12 (rho-1) + O(N^3 (rho-1)^2). *)
      ((n -. 1.) /. 2.) +. (((n *. n) -. 1.) /. 12. *. h)
    else
      (* rho^N - 1 via expm1/log1p keeps full relative precision in the
         denominator even when rho^N is within an ulp of 1. *)
      let geom = Float.expm1 (n *. Float.log1p h) in
      (n *. (geom +. 1.) /. geom) -. (rho /. h)
  in
  Float.max 0. (inner /. t.mu)
