let number_in_system ~arrival_rate ~time_in_system = arrival_rate *. time_in_system
let time_in_system ~arrival_rate ~number_in_system = number_in_system /. arrival_rate
let arrival_rate ~number_in_system ~time_in_system = number_in_system /. time_in_system

let consistent ?(tol = 0.05) ~arrival_rate ~time_in_system ~number_in_system () =
  let expected = arrival_rate *. time_in_system in
  if expected = 0. then number_in_system = 0.
  else abs_float (number_in_system -. expected) /. expected <= tol
