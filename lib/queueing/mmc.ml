type t = { lambda : float; mu : float; servers : int }

let create ~lambda ~mu ~servers =
  if lambda <= 0. || mu <= 0. then invalid_arg "Mmc.create: rates must be > 0";
  if servers < 1 then invalid_arg "Mmc.create: servers must be >= 1";
  { lambda; mu; servers }

let utilization t = t.lambda /. (float_of_int t.servers *. t.mu)
let stable t = utilization t < 1.

(* Erlang C computed via the numerically stable recurrence on the Erlang B
   blocking formula: B(0,a) = 1, B(k,a) = a*B(k-1,a) / (k + a*B(k-1,a));
   then C = B / (1 - rho*(1-B)). *)
let erlang_c t =
  let a = t.lambda /. t.mu in
  let c = t.servers in
  let b = ref 1. in
  for k = 1 to c do
    b := a *. !b /. (float_of_int k +. (a *. !b))
  done;
  let rho = utilization t in
  !b /. (1. -. (rho *. (1. -. !b)))

let mean_waiting_time t =
  if not (stable t) then infinity
  else erlang_c t /. ((float_of_int t.servers *. t.mu) -. t.lambda)

let mean_time_in_system t = mean_waiting_time t +. (1. /. t.mu)
let mean_number_in_system t = t.lambda *. mean_time_in_system t
