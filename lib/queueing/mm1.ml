type t = { lambda : float; mu : float }

let create ~lambda ~mu =
  if lambda <= 0. || mu <= 0. then invalid_arg "Mm1.create: rates must be > 0";
  { lambda; mu }

let utilization t = t.lambda /. t.mu
let stable t = utilization t < 1.

let mean_number_in_system t =
  let rho = utilization t in
  if rho >= 1. then infinity else rho /. (1. -. rho)

let mean_number_in_queue t =
  let rho = utilization t in
  if rho >= 1. then infinity else rho *. rho /. (1. -. rho)

let mean_time_in_system t =
  if stable t then 1. /. (t.mu -. t.lambda) else infinity

let mean_waiting_time t =
  if stable t then utilization t /. (t.mu -. t.lambda) else infinity
