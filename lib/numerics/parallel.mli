(** A fixed-size domain pool for embarrassingly parallel sweeps.

    Built on stdlib [Domain] (OCaml 5): a lazily-spawned pool of worker
    domains shared by the whole process, fed through a queue of runner
    thunks; each [map] batch drains a private atomic work index, so
    element order and results are independent of scheduling. Any [f]
    that is deterministic per element therefore yields results
    bit-identical to [List.map f] at every job count. Exceptions are
    re-raised in the caller — the one thrown by the smallest input
    index wins, deterministically. A caller waiting on its batch helps
    execute queued work, so nested [map] calls cannot deadlock. *)

val default_jobs : unit -> int
(** The default parallelism, initially
    [Domain.recommended_domain_count ()] (so 1 on a single-core
    machine: everything stays sequential unless asked). *)

val set_default_jobs : int -> unit
(** Set the default parallelism (clamped to [>= 1]), e.g. from a
    [--jobs] flag. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] evaluated by up to [jobs]
    domains, the caller included. [jobs] defaults to {!default_jobs};
    [jobs <= 1] or a short list runs sequentially in the caller. *)

val sweep : ?jobs:int -> f:('a -> 'b) -> 'a list -> ('a * 'b) list
(** [sweep ~f points] tags each grid point with its result —
    [List.map (fun x -> (x, f x)) points] in parallel, order
    preserved. *)
