(** Small dense float vectors for the optimizers. *)

type t = float array

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y = a*x + y] elementwise. *)

val dot : t -> t -> float
val norm2 : t -> float

val dist : t -> t -> float
(** Euclidean distance. *)

val centroid : t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val map2 : (float -> float -> float) -> t -> t -> t

val clamp : lo:t -> hi:t -> t -> t
(** Project elementwise into the box [\[lo, hi\]]. *)

val linspace : float -> float -> int -> t
(** [linspace a b n] gives [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val pp : Format.formatter -> t -> unit
