(** Least-squares curve fitting.

    §4.3 of the paper calibrates opaque IPs (the NVMe SSD) by measuring a
    latency-vs-throughput curve and curve-fitting model parameters. This
    module provides that capability: fit an arbitrary parametric model by
    minimizing the sum of squared residuals with {!Nelder_mead}, plus a
    closed-form linear regression for the affine special case. *)

type fit = {
  params : Vec.t;
  residual : float;  (** sum of squared residuals at [params] *)
  r_squared : float;  (** 1 - SS_res / SS_tot; 1.0 for a perfect fit *)
}

val fit :
  ?options:Nelder_mead.options ->
  model:(Vec.t -> float -> float) ->
  data:(float * float) array ->
  p0:Vec.t ->
  unit ->
  fit
(** [fit ~model ~data ~p0 ()] minimizes
    [sum_i (model p x_i - y_i)^2] starting from [p0]. The model may
    return non-finite values for out-of-domain parameters; such
    parameter vectors are rejected ([p0] must be in-domain). Requires at
    least one data point. *)

val linear : data:(float * float) array -> float * float
(** [linear ~data] returns [(slope, intercept)] of the ordinary
    least-squares line. Requires two or more points with distinct x. *)

val mm1_latency_model : Vec.t -> float -> float
(** [mm1_latency_model [|t0; cap|] rate] is the canonical open-queue
    latency curve [t0 / (1 - rate/cap)] used to fit SSD behaviour:
    service time [t0] at zero load, diverging as [rate] approaches
    capacity [cap]. Returns [infinity] at or beyond capacity. *)
