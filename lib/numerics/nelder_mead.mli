(** Nelder–Mead downhill-simplex minimization.

    This is the local solver behind the LogNIC optimizer (§3.8). The paper
    uses SciPy's SLSQP; §3.8 explicitly names Nelder–Mead as an acceptable
    local alternative, which is what we implement (SciPy is unavailable —
    see DESIGN.md substitutions). Constraints are handled by
    {!Constrained} via penalties. *)

type options = {
  max_iter : int;  (** iteration budget (default 2000) *)
  f_tol : float;
      (** stop when the simplex's value spread falls below this fraction
          of the best value's magnitude (default 1e-9) *)
  x_tol : float;
      (** stop when the simplex diameter falls below this fraction of
          (1 + ||best point||) (default 1e-9) *)
  initial_step : float;
      (** relative perturbation used to seed the simplex (default 0.05) *)
}

val default_options : options

type result = {
  x : Vec.t;  (** best point found *)
  f : float;  (** objective value at [x] *)
  iterations : int;
  converged : bool;  (** false when the iteration budget ran out *)
}

val minimize : ?options:options -> f:(Vec.t -> float) -> x0:Vec.t -> unit -> result
(** [minimize ~f ~x0 ()] runs the simplex from [x0]. [f] may return
    [infinity] to reject a point (used for penalty constraints); [x0]
    itself must evaluate finite. The dimension is [Array.length x0 >= 1]. *)
