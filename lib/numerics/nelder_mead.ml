type options = {
  max_iter : int;
  f_tol : float;
  x_tol : float;
  initial_step : float;
}

let default_options =
  { max_iter = 2000; f_tol = 1e-9; x_tol = 1e-9; initial_step = 0.05 }

type result = { x : Vec.t; f : float; iterations : int; converged : bool }

(* Standard coefficients: reflection 1, expansion 2, contraction 1/2,
   shrink 1/2. *)
let alpha = 1.0
let gamma = 2.0
let rho = 0.5
let sigma = 0.5

let initial_simplex ~step x0 =
  let n = Array.length x0 in
  let vertex i =
    if i = 0 then Array.copy x0
    else
      let v = Array.copy x0 in
      let j = i - 1 in
      let delta = if v.(j) = 0. then step else step *. abs_float v.(j) in
      v.(j) <- v.(j) +. delta;
      v
  in
  Array.init (n + 1) vertex

let minimize ?(options = default_options) ~f ~x0 () =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Nelder_mead.minimize: empty x0";
  let pts = initial_simplex ~step:options.initial_step x0 in
  let vals = Array.map f pts in
  if not (Float.is_finite vals.(0)) then
    invalid_arg "Nelder_mead.minimize: f(x0) must be finite";
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun i j -> compare vals.(i) vals.(j)) idx;
    let pts' = Array.map (fun i -> pts.(i)) idx in
    let vals' = Array.map (fun i -> vals.(i)) idx in
    Array.blit pts' 0 pts 0 (n + 1);
    Array.blit vals' 0 vals 0 (n + 1)
  in
  let centroid_excluding_worst () =
    Vec.centroid (Array.to_list (Array.sub pts 0 n))
  in
  (* Tolerances are relative to the incumbent's scale so that
     objectives and parameters spanning many orders of magnitude
     converge neither prematurely nor never. *)
  let spread_converged () =
    abs_float (vals.(n) -. vals.(0))
    <= options.f_tol *. Float.max (abs_float vals.(0)) 1e-30
  in
  let diameter_converged () =
    let diameter =
      Array.fold_left (fun acc p -> Float.max acc (Vec.dist p pts.(0))) 0. pts
    in
    diameter <= options.x_tol *. (1. +. Vec.norm2 pts.(0))
  in
  let rec loop iter =
    order ();
    if spread_converged () || diameter_converged () then
      { x = pts.(0); f = vals.(0); iterations = iter; converged = true }
    else if iter >= options.max_iter then
      { x = pts.(0); f = vals.(0); iterations = iter; converged = false }
    else begin
      let c = centroid_excluding_worst () in
      let worst = pts.(n) in
      let reflected = Vec.axpy (1. +. alpha) c (Vec.scale (-.alpha) worst) in
      let f_r = f reflected in
      if f_r < vals.(0) then begin
        (* Try to expand past the reflected point. *)
        let expanded = Vec.axpy (1. +. gamma) c (Vec.scale (-.gamma) worst) in
        let f_e = f expanded in
        if f_e < f_r then begin
          pts.(n) <- expanded;
          vals.(n) <- f_e
        end
        else begin
          pts.(n) <- reflected;
          vals.(n) <- f_r
        end;
        loop (iter + 1)
      end
      else if f_r < vals.(n - 1) then begin
        pts.(n) <- reflected;
        vals.(n) <- f_r;
        loop (iter + 1)
      end
      else begin
        let contracted =
          if f_r < vals.(n) then
            (* outside contraction, towards the reflected point *)
            Vec.axpy (1. -. rho) c (Vec.scale rho reflected)
          else Vec.axpy (1. -. rho) c (Vec.scale rho worst)
        in
        let f_c = f contracted in
        let bar = Float.min f_r vals.(n) in
        if f_c < bar then begin
          pts.(n) <- contracted;
          vals.(n) <- f_c;
          loop (iter + 1)
        end
        else begin
          (* Shrink everything towards the best vertex. *)
          for i = 1 to n do
            pts.(i) <- Vec.axpy (1. -. sigma) pts.(0) (Vec.scale sigma pts.(i));
            vals.(i) <- f pts.(i)
          done;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0
