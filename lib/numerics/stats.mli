(** Descriptive statistics for telemetry and model validation. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton input.
    Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation
    between order statistics. Does not mutate [xs]. *)

val median : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val relative_error : actual:float -> expected:float -> float
(** [|actual - expected| / |expected|]; infinite when [expected = 0] and
    [actual <> 0], 0 when both are 0. Used throughout the experiment
    harness to report paper-vs-measured gaps. *)

val geometric_mean : float array -> float
(** Raises [Invalid_argument] on empty input or non-positive entries. *)

val weighted_mean : (float * float) list -> float
(** [(value, weight)] pairs; raises [Invalid_argument] when the weight sum
    is not positive. *)

(** Streaming mean/variance accumulator (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end

(** Fixed-bin histogram over a closed range; out-of-range samples are
    clamped into the edge bins so mass is never lost. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  val counts : t -> int array
  val total : t -> int

  val bin_mid : t -> int -> float
  (** Midpoint value of bin [i]. *)
end
