(** Descriptive statistics for telemetry and model validation. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton input.
    Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation
    between order statistics. Does not mutate [xs]. NaN samples are
    ignored; the result is NaN only when every sample is NaN.
    Sorts a copy of [xs] on every call — when extracting several order
    statistics from one sample, sort once with {!Sorted.of_array}. *)

val sort_floats : float array -> unit
(** In-place, allocation-free sort in exactly the [Float.compare] total
    order (NaNs first, [-0.] before [0.], then increasing). Heapsort
    over direct float comparisons: [Array.sort Float.compare] boxes two
    floats per comparison, which dominated the per-run summary's
    allocation when sorting latency samples. *)

(** Sort once, query many: the percentile/median/minimum/maximum family
    over one shared sorted copy. Byte-identical results to the
    top-level functions, minus the repeated sorts. *)
module Sorted : sig
  type t

  val of_array : float array -> t
  (** Sorts a copy ([xs] is not mutated). Raises [Invalid_argument] on
      an empty array. *)

  val count : t -> int
  (** Number of non-NaN samples. *)

  val percentile : t -> float -> float
  val median : t -> float
  val minimum : t -> float
  val maximum : t -> float
end

val median : float array -> float

val minimum : float array -> float
(** Smallest non-NaN sample; NaN when every sample is NaN. Shares the
    NaN-ignoring policy of [percentile] so the same array can never
    report a NaN minimum alongside a finite median. *)

val maximum : float array -> float
(** Largest non-NaN sample; NaN when every sample is NaN. *)

val relative_error : actual:float -> expected:float -> float
(** [|actual - expected| / |expected|]; infinite when [expected = 0] and
    [actual <> 0], 0 when both are 0. Used throughout the experiment
    harness to report paper-vs-measured gaps. *)

val geometric_mean : float array -> float
(** Raises [Invalid_argument] on empty input or non-positive entries. *)

val weighted_mean : (float * float) list -> float
(** [(value, weight)] pairs; raises [Invalid_argument] when the weight sum
    is not positive. *)

(** Streaming mean/variance accumulator (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end

(** Fixed-bin histogram over the closed range [\[lo, hi\]].
    Out-of-range and NaN samples are tallied in dedicated counters
    instead of being clamped into the edge bins, so the binned shape is
    never distorted and no sample is silently lost. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t

  val add : t -> float -> unit
  (** Record one sample. Samples inside [\[lo, hi\]] land in their bin
      ([hi] itself falls in the last bin); samples below [lo], above
      [hi], or NaN increment [underflow], [overflow], or [nan_count]
      respectively and leave the bins untouched. *)

  val counts : t -> int array

  val total : t -> int
  (** Every sample ever passed to [add], including out-of-range and
      NaN ones: [total t = in_range t + underflow t + overflow t +
      nan_count t]. *)

  val underflow : t -> int
  (** Samples strictly below [lo]. *)

  val overflow : t -> int
  (** Samples strictly above [hi]. *)

  val nan_count : t -> int
  (** NaN samples. *)

  val in_range : t -> int
  (** Samples that landed in a bin; equals the sum of [counts]. *)

  val bin_mid : t -> int -> float
  (** Midpoint value of bin [i]. *)
end
