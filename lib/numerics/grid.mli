(** Exhaustive grid and integer search.

    The LogNIC optimizer's discrete knobs (core counts, queue credits,
    parallelism degrees) span small spaces, so exhaustive search is both
    exact and cheap; it also serves as the oracle that the continuous
    solvers are tested against. *)

val minimize_int :
  f:(int -> float) -> lo:int -> hi:int -> unit -> int * float
(** Scan the inclusive range, returning the argmin (first one on ties).
    Raises [Invalid_argument] unless [lo <= hi]. *)

val maximize_int :
  f:(int -> float) -> lo:int -> hi:int -> unit -> int * float

val minimize_ints :
  f:(int array -> float) -> ranges:(int * int) array -> unit -> int array * float
(** Full Cartesian product over inclusive per-dimension ranges. The space
    size must not exceed [10_000_000]. *)

val minimize_floats :
  f:(float array -> float) ->
  axes:float array array ->
  unit ->
  float array * float
(** Cartesian product over explicit per-dimension value lists. *)

val argmin_smallest_within :
  f:(int -> float) -> lo:int -> hi:int -> slack:float -> unit -> int
(** [argmin_smallest_within ~f ~lo ~hi ~slack ()] treats [f] as a cost and
    returns the {e smallest} index whose cost is within [slack]
    (relative) of the global minimum over the range — the "minimal
    resource that does not hurt performance" rule used for PANIC credit
    sizing (§4.6 scenario 1, with [f = fun n -> -. throughput n]). *)
