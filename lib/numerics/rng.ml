type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x10619c; seed lxor 0x5f3759df |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; Random.State.bits t |]

(* Inlinable so [bound] reaches the stdlib draw without boxing at this
   wrapper's call sites; the boxed int64 inside [Random.State.float]
   itself is the simulator's per-draw allocation floor. *)
let[@inline] float t bound =
  assert (bound > 0.);
  Random.State.float t bound

let[@inline] int t bound =
  assert (bound > 0);
  Random.State.int t bound

let[@inline] bits t = Random.State.bits t

let bool t = Random.State.bool t
let copy t = Random.State.copy t
