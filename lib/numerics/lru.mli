(** A bounded least-recently-used cache (hashtable + intrusive doubly
    linked recency list), used to memoize expensive pure evaluations —
    e.g. the optimizer's model reports keyed by canonicalized knob
    assignments. Not thread-safe: guard with a mutex when shared
    across domains. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Marks the entry most-recently used on a hit. Hits and misses are
    counted (see {!hits}/{!misses}). *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts (or refreshes) a binding, evicting the least-recently-used
    entry when over capacity. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
