(** Deterministic pseudo-random number generation.

    All stochastic code in this project draws through an explicit [Rng.t]
    so that simulations and property tests are reproducible from a seed.
    The implementation wraps [Random.State] (xoshiro under OCaml 5). *)

type t

val create : seed:int -> t
(** [create ~seed] returns a generator whose stream is a pure function of
    [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use one split per simulator component so that adding draws to one
    component does not perturb the streams of the others. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val bits : t -> int
(** [bits t] draws 30 uniform bits — the allocation-free draw for hot
    paths where [float]'s boxed intermediate would show up in the
    per-event allocation budget. *)

val bool : t -> bool

val copy : t -> t
(** [copy t] snapshots the generator state. *)
