let default = Atomic.make (max 1 (Domain.recommended_domain_count ()))
let default_jobs () = Atomic.get default
let set_default_jobs n = Atomic.set default (max 1 n)

(* The shared pool: a queue of runner thunks under a mutex, drained by
   worker domains spawned lazily up to the largest parallelism ever
   requested (the OCaml runtime tops out at 128 domains; stay well
   under). Workers never exit — they die with the process. *)

let hard_cap = 120

type pool = {
  mutex : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable spawned : int;
}

let pool =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    spawned = 0;
  }

let rec worker () =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue do
    Condition.wait pool.work pool.mutex
  done;
  let thunk = Queue.pop pool.queue in
  Mutex.unlock pool.mutex;
  thunk ();
  worker ()

let submit ~workers_wanted thunks =
  Mutex.lock pool.mutex;
  List.iter (fun t -> Queue.push t pool.queue) thunks;
  let target = min workers_wanted hard_cap in
  while pool.spawned < target do
    pool.spawned <- pool.spawned + 1;
    ignore (Domain.spawn worker : unit Domain.t)
  done;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex

let try_pop () =
  Mutex.lock pool.mutex;
  let t = if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue) in
  Mutex.unlock pool.mutex;
  t

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  match xs with
  | ([] | [ _ ]) as xs -> List.map f xs
  | xs when jobs <= 1 -> List.map f xs
  | xs ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    let finished = Mutex.create () in
    let all_done = Condition.create () in
    let run_one i =
      let r =
        try Ok (f input.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r;
      (* The release write on [remaining] publishes [results.(i)] to
         whoever observes the decrement. *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock finished;
        Condition.broadcast all_done;
        Mutex.unlock finished
      end
    in
    let rec runner () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_one i;
        runner ()
      end
    in
    let runners = min (jobs - 1) (n - 1) in
    submit ~workers_wanted:runners (List.init runners (fun _ -> runner));
    (* The caller is the [jobs]-th runner. Once this batch's index is
       exhausted it helps with other queued work (nested batches),
       then sleeps until the last in-flight task completes. *)
    runner ();
    let rec wait () =
      if Atomic.get remaining > 0 then
        match try_pop () with
        | Some thunk ->
          thunk ();
          wait ()
        | None ->
          Mutex.lock finished;
          while Atomic.get remaining > 0 do
            Condition.wait all_done finished
          done;
          Mutex.unlock finished
    in
    wait ();
    (* Propagate the failure of the smallest input index, so the raised
       exception does not depend on scheduling. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) -> ()
        | None -> assert false)
      results;
    Array.to_list
      (Array.map
         (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
         results)

let sweep ?jobs ~f points = map ?jobs (fun x -> (x, f x)) points
