(** Piecewise-linear interpolation over tabulated curves, used for
    characterized device parameters (e.g. per-packet-size accelerator
    throughput tables). *)

type t

val of_points : (float * float) list -> t
(** Builds an interpolator from [(x, y)] samples. Points are sorted by
    [x]; raises [Invalid_argument] on fewer than one point or duplicate
    [x] values. *)

val eval : t -> float -> float
(** Linear interpolation between neighbours; clamps to the edge values
    outside the tabulated range (device curves saturate rather than
    extrapolate). *)

val domain : t -> float * float
(** Smallest and largest tabulated [x]. *)

val points : t -> (float * float) list
