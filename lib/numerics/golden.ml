let inv_phi = (sqrt 5. -. 1.) /. 2.

let minimize ?(tol = 1e-8) ?(max_iter = 200) ~f ~lo ~hi () =
  if not (lo < hi) then invalid_arg "Golden.minimize: requires lo < hi";
  let rec loop a b c d fc fd iter =
    if b -. a <= tol || iter >= max_iter then
      let x = (a +. b) /. 2. in
      (x, f x)
    else if fc < fd then
      let b = d in
      let d = c in
      let c = b -. (inv_phi *. (b -. a)) in
      loop a b c d (f c) fc (iter + 1)
    else
      let a = c in
      let c = d in
      let d = a +. (inv_phi *. (b -. a)) in
      loop a b c d fd (f d) (iter + 1)
  in
  let c = hi -. (inv_phi *. (hi -. lo)) in
  let d = lo +. (inv_phi *. (hi -. lo)) in
  loop lo hi c d (f c) (f d) 0
