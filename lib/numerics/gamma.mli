(** The gamma function and gamma distribution, used by the tail-latency
    extension: a path's sojourn time is approximated by a gamma
    distribution with matched mean and variance, whose quantiles give
    p50/p90/p99 estimates. *)

val log_gamma : float -> float
(** ln Γ(x) for x > 0 (Lanczos approximation, ~1e-10 relative). *)

val regularized_lower : a:float -> x:float -> float
(** P(a, x) = γ(a, x)/Γ(a), the CDF of a Gamma(shape a, scale 1) at x.
    Requires [a > 0] and [x >= 0]. Series expansion for x < a+1,
    continued fraction otherwise. *)

val cdf : shape:float -> scale:float -> float -> float
(** Gamma(shape, scale) CDF. *)

val quantile : shape:float -> scale:float -> float -> float
(** [quantile ~shape ~scale p] inverts the CDF for p in (0, 1) by
    bracketed bisection (~1e-10 relative). *)

val of_moments : mean:float -> variance:float -> (float * float) option
(** [(shape, scale)] matching the given positive moments; [None] when
    mean or variance is non-positive (degenerate distribution). *)
