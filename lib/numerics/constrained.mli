(** Constrained minimization on top of {!Nelder_mead}.

    Constraints are expressed as inequality residuals [g x <= 0] and box
    bounds; violations are folded into the objective as quadratic
    penalties with an escalating weight, the textbook exterior-penalty
    scheme. [multi_start] restarts from several points to escape the
    local minima a single simplex can get stuck in (the paper makes the
    same caveat about Nelder–Mead in §3.8). *)

type problem = {
  objective : Vec.t -> float;
  inequality : (Vec.t -> float) list;
      (** each [g] is satisfied when [g x <= 0] *)
  lower : Vec.t;
  upper : Vec.t;
}

type solution = {
  x : Vec.t;
  f : float;  (** raw objective at [x], penalties excluded *)
  feasible : bool;  (** all inequalities within [1e-6] and inside the box *)
}

val minimize : ?rounds:int -> ?options:Nelder_mead.options -> problem -> Vec.t -> solution
(** [minimize problem x0] runs [rounds] (default 4) penalty escalations,
    each warm-started from the previous solution. [x0] is clamped into
    the box first. *)

val multi_start :
  ?starts:int -> ?rounds:int -> ?options:Nelder_mead.options ->
  rng:Rng.t -> problem -> solution
(** [multi_start ~rng problem] seeds [starts] (default 8) random points in
    the box plus the box centre, and returns the best feasible solution
    found (or the least-infeasible one when none is feasible). *)
