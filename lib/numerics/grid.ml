let minimize_int ~f ~lo ~hi () =
  if lo > hi then invalid_arg "Grid.minimize_int: requires lo <= hi";
  let best = ref lo and best_v = ref (f lo) in
  for i = lo + 1 to hi do
    let v = f i in
    if v < !best_v then begin
      best := i;
      best_v := v
    end
  done;
  (!best, !best_v)

let maximize_int ~f ~lo ~hi () =
  let x, v = minimize_int ~f:(fun i -> -.f i) ~lo ~hi () in
  (x, -.v)

let space_size ranges =
  Array.fold_left
    (fun acc (lo, hi) ->
      if lo > hi then invalid_arg "Grid.minimize_ints: requires lo <= hi";
      acc * (hi - lo + 1))
    1 ranges

let minimize_ints ~f ~ranges () =
  let n = Array.length ranges in
  if n = 0 then invalid_arg "Grid.minimize_ints: empty ranges";
  if space_size ranges > 10_000_000 then
    invalid_arg "Grid.minimize_ints: search space too large";
  let current = Array.map fst ranges in
  let best = ref (Array.copy current) and best_v = ref (f current) in
  (* Odometer enumeration of the Cartesian product. *)
  let rec advance i =
    if i < 0 then false
    else
      let _, hi = ranges.(i) in
      if current.(i) < hi then begin
        current.(i) <- current.(i) + 1;
        true
      end
      else begin
        current.(i) <- fst ranges.(i);
        advance (i - 1)
      end
  in
  let continue = ref (advance (n - 1)) in
  while !continue do
    let v = f current in
    if v < !best_v then begin
      best := Array.copy current;
      best_v := v
    end;
    continue := advance (n - 1)
  done;
  (!best, !best_v)

let minimize_floats ~f ~axes () =
  let n = Array.length axes in
  if n = 0 then invalid_arg "Grid.minimize_floats: empty axes";
  Array.iter
    (fun axis ->
      if Array.length axis = 0 then invalid_arg "Grid.minimize_floats: empty axis")
    axes;
  let ranges = Array.map (fun axis -> (0, Array.length axis - 1)) axes in
  let eval idx = f (Array.mapi (fun d i -> axes.(d).(i)) idx) in
  let idx, v = minimize_ints ~f:eval ~ranges () in
  (Array.mapi (fun d i -> axes.(d).(i)) idx, v)

let argmin_smallest_within ~f ~lo ~hi ~slack () =
  let _, best_v = minimize_int ~f ~lo ~hi () in
  let tolerance = abs_float best_v *. slack in
  let rec scan i =
    if i > hi then hi
    else if f i <= best_v +. tolerance then i
    else scan (i + 1)
  in
  scan lo
