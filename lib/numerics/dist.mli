(** Probability distributions used by traffic generators and service-time
    models.

    Each distribution offers [sample] (a draw through an {!Rng.t}) and,
    where meaningful, closed-form [mean]. The traffic model of LogNIC
    (§3.6) assumes Poisson arrivals and exponential service times; the
    simulator also supports deterministic, uniform, lognormal and
    empirical distributions for sensitivity experiments. *)

type t =
  | Constant of float  (** always the given value *)
  | Uniform of float * float  (** inclusive lower bound, exclusive upper *)
  | Exponential of float  (** rate λ > 0; mean 1/λ *)
  | Lognormal of float * float  (** [mu], [sigma] of the underlying normal *)
  | Empirical of (float * float) array
      (** weighted point masses [(value, weight)]; weights need not be
          normalized but must be non-negative with positive sum *)

val constant : float -> t
val uniform : lo:float -> hi:float -> t
val exponential : rate:float -> t
val lognormal : mu:float -> sigma:float -> t

val empirical : (float * float) list -> t
(** [empirical points] builds a discrete distribution from
    [(value, weight)] pairs. Raises [Invalid_argument] on an empty list,
    a negative weight, or an all-zero weight sum. *)

val mean : t -> float
(** Closed-form expectation. *)

val sample : t -> Rng.t -> float

val sample_exponential : rate:float -> Rng.t -> float
(** Exactly [sample (exponential ~rate)] — same draw, same float
    operations — without constructing the distribution value; the
    simulator's per-service/per-arrival fast path. *)

val sample_poisson : rate:float -> Rng.t -> int
(** [sample_poisson ~rate rng] draws a Poisson-distributed count with the
    given mean, via inversion for small rates and
    normal approximation above 500. *)

val validate : t -> (unit, string) result
(** Checks parameter domains (positive rates, ordered bounds, ...). *)

val pp : Format.formatter -> t -> unit
