type problem = {
  objective : Vec.t -> float;
  inequality : (Vec.t -> float) list;
  lower : Vec.t;
  upper : Vec.t;
}

type solution = { x : Vec.t; f : float; feasible : bool }

let violation problem x =
  let box =
    let acc = ref 0. in
    Array.iteri
      (fun i xi ->
        acc := !acc +. Float.max 0. (problem.lower.(i) -. xi);
        acc := !acc +. Float.max 0. (xi -. problem.upper.(i)))
      x;
    !acc
  in
  List.fold_left (fun acc g -> acc +. Float.max 0. (g x)) box problem.inequality

let penalized problem ~weight x =
  let v = violation problem x in
  problem.objective x +. (weight *. v *. v)

let is_feasible problem x = violation problem x <= 1e-6

let minimize ?(rounds = 4) ?options problem x0 =
  let x0 = Vec.clamp ~lo:problem.lower ~hi:problem.upper x0 in
  let rec escalate round x =
    if round >= rounds then x
    else
      let weight = 1e3 *. (100. ** float_of_int round) in
      let result =
        Nelder_mead.minimize ?options ~f:(penalized problem ~weight) ~x0:x ()
      in
      escalate (round + 1) result.x
  in
  let x = escalate 0 x0 in
  let x = Vec.clamp ~lo:problem.lower ~hi:problem.upper x in
  { x; f = problem.objective x; feasible = is_feasible problem x }

let multi_start ?(starts = 8) ?rounds ?options ~rng problem =
  let n = Array.length problem.lower in
  let random_point () =
    Array.init n (fun i ->
        let lo = problem.lower.(i) and hi = problem.upper.(i) in
        if hi > lo then lo +. Rng.float rng (hi -. lo) else lo)
  in
  let centre =
    Array.init n (fun i -> (problem.lower.(i) +. problem.upper.(i)) /. 2.)
  in
  let seeds = centre :: List.init starts (fun _ -> random_point ()) in
  let candidates = List.map (minimize ?rounds ?options problem) seeds in
  let better a b =
    match (a.feasible, b.feasible) with
    | true, false -> a
    | false, true -> b
    | _ -> if a.f <= b.f then a else b
  in
  match candidates with
  | [] -> assert false
  | first :: rest -> List.fold_left better first rest
