type t = { xs : float array; ys : float array }

let of_points points =
  match points with
  | [] -> invalid_arg "Interp.of_points: empty"
  | _ ->
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) points in
    let xs = Array.of_list (List.map fst sorted) in
    let ys = Array.of_list (List.map snd sorted) in
    for i = 1 to Array.length xs - 1 do
      if xs.(i) = xs.(i - 1) then invalid_arg "Interp.of_points: duplicate x"
    done;
    { xs; ys }

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    (* binary search for the segment containing x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = t.xs.(!lo) and x1 = t.xs.(!hi) in
    let y0 = t.ys.(!lo) and y1 = t.ys.(!hi) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

let points t =
  Array.to_list (Array.mapi (fun i x -> (x, t.ys.(i))) t.xs)
