type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* toward most-recent *)
  mutable next : ('k, 'v) node option;  (* toward least-recent *)
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable newest : ('k, 'v) node option;
  mutable oldest : ('k, 'v) node option;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    cap = capacity;
    table = Hashtbl.create (min capacity 64);
    newest = None;
    oldest = None;
    hit_count = 0;
    miss_count = 0;
  }

let length t = Hashtbl.length t.table
let capacity t = t.cap
let hits t = t.hit_count
let misses t = t.miss_count

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.newest <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.oldest <- n.prev);
  n.prev <- None;
  n.next <- None

let push_newest t n =
  n.next <- t.newest;
  (match t.newest with Some f -> f.prev <- Some n | None -> t.oldest <- Some n);
  t.newest <- Some n

let find_opt t k =
  match Hashtbl.find_opt t.table k with
  | None ->
    t.miss_count <- t.miss_count + 1;
    None
  | Some n ->
    t.hit_count <- t.hit_count + 1;
    unlink t n;
    push_newest t n;
    Some n.value

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    unlink t n;
    push_newest t n
  | None ->
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_newest t n;
    if Hashtbl.length t.table > t.cap then (
      match t.oldest with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.key
      | None -> assert false)
