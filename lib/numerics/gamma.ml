(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Gamma.log_gamma: requires x > 0"
  else if x < 0.5 then
    (* reflection: Γ(x)Γ(1-x) = π/sin(πx) *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t +. log !acc
  end

(* Series for P(a,x), converges fast for x < a + 1. *)
let lower_series ~a ~x =
  let rec go n term sum =
    if abs_float term < abs_float sum *. 1e-15 || n > 500 then sum
    else
      let term = term *. x /. (a +. float_of_int n) in
      go (n + 1) term (sum +. term)
  in
  let first = 1. /. a in
  let sum = go 1 first first in
  sum *. exp ((a *. log x) -. x -. log_gamma a)

(* Lentz continued fraction for Q(a,x) = 1 - P(a,x), for x >= a + 1. *)
let upper_cf ~a ~x =
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (try
     for i = 1 to 500 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if abs_float !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if abs_float !c < tiny then c := tiny;
       d := 1. /. !d;
       let delta = !d *. !c in
       h := !h *. delta;
       if abs_float (delta -. 1.) < 1e-15 then raise Exit
     done
   with Exit -> ());
  !h *. exp ((a *. log x) -. x -. log_gamma a)

let regularized_lower ~a ~x =
  if a <= 0. then invalid_arg "Gamma.regularized_lower: requires a > 0";
  if x < 0. then invalid_arg "Gamma.regularized_lower: requires x >= 0";
  if x = 0. then 0.
  else if x < a +. 1. then Float.min 1. (lower_series ~a ~x)
  else Float.max 0. (1. -. upper_cf ~a ~x)

let cdf ~shape ~scale x =
  if scale <= 0. then invalid_arg "Gamma.cdf: scale must be > 0";
  if x <= 0. then 0. else regularized_lower ~a:shape ~x:(x /. scale)

let quantile ~shape ~scale p =
  if p <= 0. || p >= 1. then invalid_arg "Gamma.quantile: p outside (0, 1)";
  if scale <= 0. then invalid_arg "Gamma.quantile: scale must be > 0";
  (* bracket then bisect on the CDF *)
  let mean = shape *. scale in
  let hi = ref (Float.max mean (scale *. 2.)) in
  while cdf ~shape ~scale !hi < p do
    hi := !hi *. 2.
  done;
  let lo = ref 0. and hi = ref !hi in
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if cdf ~shape ~scale mid < p then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let of_moments ~mean ~variance =
  if mean <= 0. || variance <= 0. then None
  else
    let shape = mean *. mean /. variance in
    let scale = variance /. mean in
    Some (shape, scale)
