let require_nonempty xs name =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  require_nonempty xs "Stats.mean";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty xs "Stats.variance";
  let n = Array.length xs in
  if n = 1 then 0.
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    ss /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let percentile xs p =
  require_nonempty xs "Stats.percentile";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: unboxed comparisons on the
     latency hot path, and a total order in the presence of NaN. *)
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.

let minimum xs =
  require_nonempty xs "Stats.minimum";
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  require_nonempty xs "Stats.maximum";
  Array.fold_left Float.max xs.(0) xs

let relative_error ~actual ~expected =
  if expected = 0. then if actual = 0. then 0. else infinity
  else abs_float (actual -. expected) /. abs_float expected

let geometric_mean xs =
  require_nonempty xs "Stats.geometric_mean";
  if Array.exists (fun x -> x <= 0.) xs then
    invalid_arg "Stats.geometric_mean: non-positive entry";
  let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0. xs in
  exp (log_sum /. float_of_int (Array.length xs))

let weighted_mean pairs =
  let wsum = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  if wsum <= 0. then invalid_arg "Stats.weighted_mean: weight sum must be > 0";
  List.fold_left (fun acc (v, w) -> acc +. (v *. w)) 0. pairs /. wsum

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if not (lo < hi) then invalid_arg "Histogram.create: requires lo < hi";
    if bins <= 0 then invalid_arg "Histogram.create: requires bins > 0";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let add t x =
    let bins = Array.length t.counts in
    let raw =
      int_of_float (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    let i = max 0 (min (bins - 1) raw) in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let counts t = Array.copy t.counts
  let total t = t.total

  let bin_mid t i =
    let bins = Array.length t.counts in
    if i < 0 || i >= bins then invalid_arg "Histogram.bin_mid: index";
    let width = (t.hi -. t.lo) /. float_of_int bins in
    t.lo +. (width *. (float_of_int i +. 0.5))
end
