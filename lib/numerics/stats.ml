let require_nonempty xs name =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  require_nonempty xs "Stats.mean";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty xs "Stats.variance";
  let n = Array.length xs in
  if n = 1 then 0.
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    ss /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

(* NaN policy for order statistics: NaN samples carry no ordering
   information, so [percentile]/[median]/[minimum]/[maximum] all ignore
   them. An input consisting only of NaN yields NaN. [mean]/[variance]
   keep IEEE propagation (a poisoned sum is a signal, not a sample to
   discard). *)

(* Heapsort sift-down over a.(lo..lo+len-1), root at offset [root].
   Int arguments and unhoisted float reads only: the comparisons stay
   in float registers, where [Array.sort Float.compare] would box two
   floats per comparison — ~1M minor words to sort one run's 17k
   latency samples. *)
let rec sift_down (a : float array) lo len root =
  let child = (2 * root) + 1 in
  if child < len then begin
    let child =
      if child + 1 < len && a.(lo + child) < a.(lo + child + 1) then child + 1
      else child
    in
    if a.(lo + root) < a.(lo + child) then begin
      let tmp = a.(lo + root) in
      a.(lo + root) <- a.(lo + child);
      a.(lo + child) <- tmp;
      sift_down a lo len child
    end
  end

(* In-place, allocation-free sort in exactly [Float.compare] order:
   NaNs first (their mutual order is irrelevant — [Array.sort] is
   unstable and [Float.compare] equates all NaNs), then [-0.] before
   [0.], then increasing. For NaN-free input every slot of the result
   is bit-identical to what [Array.sort Float.compare] produces, which
   is what keeps measurement JSON byte-stable across the swap. *)
let sort_floats a =
  let n = Array.length a in
  (* compact NaNs to the front *)
  let nans = ref 0 in
  for i = 0 to n - 1 do
    let x = a.(i) in
    if x <> x then begin
      a.(i) <- a.(!nans);
      a.(!nans) <- x;
      incr nans
    end
  done;
  let lo = !nans in
  let m = n - lo in
  (* heapsort the non-NaN suffix: NaN-free direct [<] is a total order *)
  for root = (m / 2) - 1 downto 0 do
    sift_down a lo m root
  done;
  for last = m - 1 downto 1 do
    let tmp = a.(lo) in
    a.(lo) <- a.(lo + last);
    a.(lo + last) <- tmp;
    sift_down a lo last 0
  done;
  (* [<] equates -0. and 0., so the zero run is mixed: rewrite it with
     the -0.s first, completing the [Float.compare] order *)
  let i = ref lo in
  while !i < n && a.(!i) < 0. do
    incr i
  done;
  let j = ref !i in
  let neg = ref 0 in
  while !j < n && a.(!j) = 0. do
    if 1. /. a.(!j) < 0. then incr neg;
    incr j
  done;
  for k = !i to !i + !neg - 1 do
    a.(k) <- -0.
  done;
  for k = !i + !neg to !j - 1 do
    a.(k) <- 0.
  done

(* Sort once, query many: every order statistic in the family reads the
   same sorted copy, so a summary computing p50/p99/min/max pays for
   one sort instead of one per call (the old [percentile] re-sorted its
   input every time). *)
module Sorted = struct
  type t = { data : float array; first : int }

  let of_array xs =
    require_nonempty xs "Stats.Sorted.of_array";
    let data = Array.copy xs in
    (* [sort_floats] reproduces the [Float.compare] total order without
       boxing: NaN sorts before every float, so non-NaN samples occupy
       a suffix. *)
    sort_floats data;
    let n = Array.length data in
    let first = ref 0 in
    while
      !first < n
      &&
      let x = data.(!first) in
      x <> x
    do
      incr first
    done;
    { data; first = !first }

  let count t = Array.length t.data - t.first

  let percentile t p =
    if p < 0. || p > 100. then
      invalid_arg "Stats.percentile: p outside [0,100]";
    let n = Array.length t.data in
    let first = t.first in
    if first = n then Float.nan
    else
      let n = n - first in
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = first + int_of_float (floor rank) in
      let hi = first + int_of_float (ceil rank) in
      if lo = hi then t.data.(lo)
      else
        let frac = rank -. float_of_int (lo - first) in
        t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))

  let median t = percentile t 50.

  (* First/last non-NaN of the total order = the Float.min/Float.max
     folds of the old implementation (Float.compare orders -0 below +0,
     matching Float.min/max's signed-zero treatment). *)
  let minimum t =
    if t.first = Array.length t.data then Float.nan else t.data.(t.first)

  let maximum t =
    let n = Array.length t.data in
    if t.first = n then Float.nan else t.data.(n - 1)
end

let percentile xs p =
  require_nonempty xs "Stats.percentile";
  Sorted.percentile (Sorted.of_array xs) p

let median xs = percentile xs 50.

let fold_ignoring_nan better name xs =
  require_nonempty xs name;
  Array.fold_left
    (fun acc x ->
      if Float.is_nan x then acc
      else if Float.is_nan acc then x
      else better acc x)
    Float.nan xs

let minimum xs = fold_ignoring_nan Float.min "Stats.minimum" xs
let maximum xs = fold_ignoring_nan Float.max "Stats.maximum" xs

let relative_error ~actual ~expected =
  if expected = 0. then if actual = 0. then 0. else infinity
  else abs_float (actual -. expected) /. abs_float expected

let geometric_mean xs =
  require_nonempty xs "Stats.geometric_mean";
  if Array.exists (fun x -> x <= 0.) xs then
    invalid_arg "Stats.geometric_mean: non-positive entry";
  let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0. xs in
  exp (log_sum /. float_of_int (Array.length xs))

let weighted_mean pairs =
  let wsum = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  if wsum <= 0. then invalid_arg "Stats.weighted_mean: weight sum must be > 0";
  List.fold_left (fun acc (v, w) -> acc +. (v *. w)) 0. pairs /. wsum

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable total : int;
    mutable underflow : int;
    mutable overflow : int;
    mutable nan_count : int;
  }

  let create ~lo ~hi ~bins =
    if not (lo < hi) then invalid_arg "Histogram.create: requires lo < hi";
    if bins <= 0 then invalid_arg "Histogram.create: requires bins > 0";
    {
      lo;
      hi;
      counts = Array.make bins 0;
      total = 0;
      underflow = 0;
      overflow = 0;
      nan_count = 0;
    }

  let add t x =
    (* NaN first: any range comparison against NaN is false, and
       [int_of_float nan] is unspecified — it must never reach the bin
       index computation. Out-of-range samples are tallied separately
       instead of being clamped into the edge bins, which used to distort
       exported latency distributions. *)
    t.total <- t.total + 1;
    if Float.is_nan x then t.nan_count <- t.nan_count + 1
    else if x < t.lo then t.underflow <- t.underflow + 1
    else if x > t.hi then t.overflow <- t.overflow + 1
    else begin
      let bins = Array.length t.counts in
      let raw =
        int_of_float (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo))
      in
      (* x = hi maps to bins, folded into the last (closed-range) bin. *)
      let i = min (bins - 1) raw in
      t.counts.(i) <- t.counts.(i) + 1
    end

  let counts t = Array.copy t.counts
  let total t = t.total
  let underflow t = t.underflow
  let overflow t = t.overflow
  let nan_count t = t.nan_count
  let in_range t = t.total - t.underflow - t.overflow - t.nan_count

  let bin_mid t i =
    let bins = Array.length t.counts in
    if i < 0 || i >= bins then invalid_arg "Histogram.bin_mid: index";
    let width = (t.hi -. t.lo) /. float_of_int bins in
    t.lo +. (width *. (float_of_int i +. 0.5))
end
