type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Lognormal of float * float
  | Empirical of (float * float) array

let constant v = Constant v
let uniform ~lo ~hi = Uniform (lo, hi)
let exponential ~rate = Exponential rate
let lognormal ~mu ~sigma = Lognormal (mu, sigma)

let empirical points =
  match points with
  | [] -> invalid_arg "Dist.empirical: empty support"
  | _ ->
    let arr = Array.of_list points in
    let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. arr in
    if Array.exists (fun (_, w) -> w < 0.) arr then
      invalid_arg "Dist.empirical: negative weight"
    else if total <= 0. then invalid_arg "Dist.empirical: zero total weight"
    else Empirical arr

let mean = function
  | Constant v -> v
  | Uniform (lo, hi) -> (lo +. hi) /. 2.
  | Exponential rate -> 1. /. rate
  | Lognormal (mu, sigma) -> exp (mu +. (sigma *. sigma /. 2.))
  | Empirical arr ->
    let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. arr in
    Array.fold_left (fun acc (v, w) -> acc +. (v *. w)) 0. arr /. total

(* Box-Muller; one variate per call keeps the generator stream simple to
   reason about in tests even though it discards half the transform. *)
let sample_normal rng =
  let u1 = max 1e-300 (Rng.float rng 1.) in
  let u2 = Rng.float rng 1. in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

(* The Exponential branch of [sample] without constructing the variant:
   the simulator draws one of these per service and per arrival, so the
   hot path skips a 2-word allocation per draw. Inlinable so the rate
   is never boxed either. The float operations are bit-identical to
   [sample (exponential ~rate)]. *)
let[@inline] sample_exponential ~rate rng =
  let d = Rng.float rng 1. in
  (* [max 1e-300 d] spelled out: the polymorphic [max] is a call that
     boxes both floats; this is its exact definition specialized, so
     the result is bit-identical *)
  let u = if 1e-300 >= d then 1e-300 else d in
  -.log u /. rate

let sample t rng =
  match t with
  | Constant v -> v
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Exponential rate -> sample_exponential ~rate rng
  | Lognormal (mu, sigma) -> exp (mu +. (sigma *. sample_normal rng))
  | Empirical arr ->
    let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. arr in
    let target = Rng.float rng total in
    let rec pick i acc =
      if i = Array.length arr - 1 then fst arr.(i)
      else
        let v, w = arr.(i) in
        let acc = acc +. w in
        if target < acc then v else pick (i + 1) acc
    in
    pick 0 0.

let sample_poisson ~rate rng =
  assert (rate >= 0.);
  if rate > 500. then
    (* Normal approximation with continuity correction. *)
    let z = sample_normal rng in
    max 0 (int_of_float (Float.round (rate +. (sqrt rate *. z))))
  else
    let limit = exp (-.rate) in
    let rec loop k p =
      let p = p *. Rng.float rng 1. in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.

let validate = function
  | Constant v when v < 0. -> Error "Constant: negative value"
  | Uniform (lo, hi) when not (lo < hi) -> Error "Uniform: requires lo < hi"
  | Exponential rate when rate <= 0. -> Error "Exponential: rate must be > 0"
  | Lognormal (_, sigma) when sigma < 0. -> Error "Lognormal: sigma must be >= 0"
  | Empirical arr
    when Array.length arr = 0
         || Array.exists (fun (_, w) -> w < 0.) arr
         || Array.fold_left (fun acc (_, w) -> acc +. w) 0. arr <= 0. ->
    Error "Empirical: needs non-negative weights with positive sum"
  | Constant _ | Uniform _ | Exponential _ | Lognormal _ | Empirical _ -> Ok ()

let pp ppf = function
  | Constant v -> Fmt.pf ppf "const(%g)" v
  | Uniform (lo, hi) -> Fmt.pf ppf "uniform(%g, %g)" lo hi
  | Exponential rate -> Fmt.pf ppf "exp(rate=%g)" rate
  | Lognormal (mu, sigma) -> Fmt.pf ppf "lognormal(mu=%g, sigma=%g)" mu sigma
  | Empirical arr ->
    Fmt.pf ppf "empirical(%a)"
      Fmt.(array ~sep:comma (pair ~sep:(any ":") float float))
      arr
