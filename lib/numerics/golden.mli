(** Golden-section search for one-dimensional unimodal minimization.
    Used for single-knob tuning (e.g. one traffic-split fraction). *)

val minimize :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float * float
(** [minimize ~f ~lo ~hi ()] returns [(x_min, f x_min)] for a unimodal [f]
    on [\[lo, hi\]]. [tol] is an absolute interval-width target
    (default 1e-8). Raises [Invalid_argument] unless [lo < hi]. *)
