type fit = { params : Vec.t; residual : float; r_squared : float }

let sum_sq_residuals model data p =
  Array.fold_left
    (fun acc (x, y) ->
      let predicted = model p x in
      if Float.is_finite predicted then acc +. ((predicted -. y) ** 2.)
      else infinity)
    0. data

let fit ?options ~model ~data ~p0 () =
  if Array.length data = 0 then invalid_arg "Curve_fit.fit: no data";
  let objective = sum_sq_residuals model data in
  (* Parameters of physical models often span many orders of magnitude,
     which makes a single simplex run collapse early; restarting from
     the incumbent re-expands the simplex and recovers. *)
  let options =
    Option.value options
      ~default:{ Nelder_mead.default_options with max_iter = 5000 }
  in
  let result =
    let rec restart n best =
      if n = 0 then best
      else
        let next =
          Nelder_mead.minimize ~options ~f:objective ~x0:best.Nelder_mead.x ()
        in
        restart (n - 1) (if next.Nelder_mead.f < best.Nelder_mead.f then next else best)
    in
    restart 3 (Nelder_mead.minimize ~options ~f:objective ~x0:p0 ())
  in
  let ys = Array.map snd data in
  let y_mean = Stats.mean ys in
  let ss_tot = Array.fold_left (fun acc y -> acc +. ((y -. y_mean) ** 2.)) 0. ys in
  let r_squared = if ss_tot = 0. then 1. else 1. -. (result.f /. ss_tot) in
  { params = result.x; residual = result.f; r_squared }

let linear ~data =
  let n = Array.length data in
  if n < 2 then invalid_arg "Curve_fit.linear: needs >= 2 points";
  let xs = Array.map fst data and ys = Array.map snd data in
  let x_mean = Stats.mean xs and y_mean = Stats.mean ys in
  let num = ref 0. and den = ref 0. in
  Array.iter
    (fun (x, y) ->
      num := !num +. ((x -. x_mean) *. (y -. y_mean));
      den := !den +. ((x -. x_mean) ** 2.))
    data;
  if !den = 0. then invalid_arg "Curve_fit.linear: all x identical";
  let slope = !num /. !den in
  (slope, y_mean -. (slope *. x_mean))

let mm1_latency_model p rate =
  let t0 = p.(0) and cap = p.(1) in
  if t0 <= 0. || cap <= 0. || rate >= cap then infinity
  else t0 /. (1. -. (rate /. cap))
