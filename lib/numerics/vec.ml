type t = float array

let check_same_length a b name =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": length mismatch")

let map2 f a b =
  check_same_length a b "Vec.map2";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale k a = Array.map (fun x -> k *. x) a
let axpy k x y = map2 (fun xi yi -> (k *. xi) +. yi) x y

let dot a b =
  check_same_length a b "Vec.dot";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)
let dist a b = norm2 (sub a b)

let centroid = function
  | [] -> invalid_arg "Vec.centroid: empty list"
  | first :: rest ->
    let acc = Array.copy first in
    List.iter
      (fun v ->
        check_same_length acc v "Vec.centroid";
        Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) v)
      rest;
    let n = float_of_int (1 + List.length rest) in
    Array.map (fun x -> x /. n) acc

let clamp ~lo ~hi v =
  check_same_length lo v "Vec.clamp";
  check_same_length hi v "Vec.clamp";
  Array.init (Array.length v) (fun i -> Float.max lo.(i) (Float.min hi.(i) v.(i)))

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: needs n >= 2";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (step *. float_of_int i))

let pp ppf v = Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") float) v
