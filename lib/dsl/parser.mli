(** The plain-text execution-graph format.

    Line-oriented; [#] starts a comment; blank lines are skipped.
    Three statement kinds, in any order as long as vertices precede the
    edges that use them:

    {v
    hardware interface=50Gbps memory=60Gbps
    vertex rx ingress throughput=25Gbps queue=128
    vertex core ip throughput=4Gbps parallelism=4 queue=32 \
           overhead=1us accel=1.0 partition=0.5
    vertex tx egress throughput=25Gbps
    edge rx -> core delta=1.0 alpha=1.0
    edge core -> tx delta=1.0 alpha=1.0 bandwidth=10Gbps
    traffic rate=10Gbps packet=1500B
    class rate=1Gbps packet=64B weight=1
    class rate=9Gbps packet=1500B weight=3
    v}

    [class] lines (zero or more) assemble a multi-class traffic mix
    (Extension #2); [weight] defaults to 1.

    Vertex names are unique identifiers; attribute values accept the
    {!Quantity} suffixes. Omitted vertex attributes default to
    {!Lognic.Graph.default_service} fields (throughput defaults to
    unbounded); omitted edge attributes default to δ = 1, α = β = 0. *)

type document = {
  graph : Lognic.Graph.t;
  hardware : Lognic.Params.hardware option;
  traffic : Lognic.Traffic.t option;
  mix : Lognic.Traffic.mix option;
}

val parse_string : string -> (document, string) result
(** Errors carry a line number and description. *)

val parse_file : string -> (document, string) result

val vertex_id : document -> string -> Lognic.Graph.vertex_id option
(** Look a vertex up by its DSL name. *)
