module G = Lognic.Graph

type document = {
  graph : G.t;
  hardware : Lognic.Params.hardware option;
  traffic : Lognic.Traffic.t option;
  mix : Lognic.Traffic.mix option;
}

exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let split_attr line_no token =
  match String.index_opt token '=' with
  | Some i ->
    ( String.sub token 0 i,
      String.sub token (i + 1) (String.length token - i - 1) )
  | None -> fail line_no "expected key=value, got %S" token

let quantity line_no key value =
  match Quantity.parse value with
  | Ok v -> v
  | Error e -> fail line_no "attribute %s: %s" key e

let parse_vertex_kind line_no = function
  | "ingress" -> G.Ingress
  | "egress" -> G.Egress
  | "ip" -> G.Ip
  | other -> fail line_no "unknown vertex kind %S (ingress|egress|ip)" other

type state = {
  mutable graph : G.t;
  mutable hardware : Lognic.Params.hardware option;
  mutable traffic : Lognic.Traffic.t option;
  mutable classes : (Lognic.Traffic.t * float) list;
  names : (string, G.vertex_id) Hashtbl.t;
}

let parse_vertex state line_no = function
  | name :: kind :: attrs ->
    if Hashtbl.mem state.names name then fail line_no "duplicate vertex %S" name;
    let kind = parse_vertex_kind line_no kind in
    let throughput = ref infinity
    and parallelism = ref 1
    and queue = ref 64
    and overhead = ref 0.
    and accel = ref 1.
    and partition = ref 1. in
    List.iter
      (fun token ->
        let key, value = split_attr line_no token in
        let q () = quantity line_no key value in
        match key with
        | "throughput" -> throughput := q ()
        | "parallelism" -> parallelism := int_of_float (q ())
        | "queue" -> queue := int_of_float (q ())
        | "overhead" -> overhead := q ()
        | "accel" -> accel := q ()
        | "partition" -> partition := q ()
        | other -> fail line_no "unknown vertex attribute %S" other)
      attrs;
    let service =
      if !throughput = infinity then
        { G.default_service with parallelism = !parallelism; queue_capacity = !queue }
      else
        try
          G.service ~throughput:!throughput ~parallelism:!parallelism
            ~queue_capacity:!queue ~overhead:!overhead ~accel:!accel
            ~partition:!partition ()
        with Invalid_argument msg -> fail line_no "%s" msg
    in
    let graph, id = G.add_vertex ~kind ~label:name ~service state.graph in
    state.graph <- graph;
    Hashtbl.add state.names name id
  | _ -> fail line_no "vertex needs a name and a kind"

let parse_edge state line_no = function
  | src :: "->" :: dst :: attrs ->
    let resolve name =
      match Hashtbl.find_opt state.names name with
      | Some id -> id
      | None -> fail line_no "unknown vertex %S" name
    in
    let delta = ref 1. and alpha = ref 0. and beta = ref 0. in
    let bandwidth = ref None in
    List.iter
      (fun token ->
        let key, value = split_attr line_no token in
        let q () = quantity line_no key value in
        match key with
        | "delta" -> delta := q ()
        | "alpha" -> alpha := q ()
        | "beta" -> beta := q ()
        | "bandwidth" -> bandwidth := Some (q ())
        | other -> fail line_no "unknown edge attribute %S" other)
      attrs;
    (try
       state.graph <-
         G.add_edge ~delta:!delta ~alpha:!alpha ~beta:!beta ?bandwidth:!bandwidth
           ~src:(resolve src) ~dst:(resolve dst) state.graph
     with Invalid_argument msg -> fail line_no "%s" msg)
  | _ -> fail line_no "edge syntax: edge <src> -> <dst> [attrs]"

let parse_hardware state line_no attrs =
  let interface = ref None and memory = ref None in
  List.iter
    (fun token ->
      let key, value = split_attr line_no token in
      let q () = quantity line_no key value in
      match key with
      | "interface" -> interface := Some (q ())
      | "memory" -> memory := Some (q ())
      | other -> fail line_no "unknown hardware attribute %S" other)
    attrs;
  match (!interface, !memory) with
  | Some bw_interface, Some bw_memory ->
    (try state.hardware <- Some (Lognic.Params.hardware ~bw_interface ~bw_memory)
     with Invalid_argument msg -> fail line_no "%s" msg)
  | _ -> fail line_no "hardware needs both interface= and memory="

let parse_traffic state line_no attrs =
  let rate = ref None and packet = ref None in
  List.iter
    (fun token ->
      let key, value = split_attr line_no token in
      let q () = quantity line_no key value in
      match key with
      | "rate" -> rate := Some (q ())
      | "packet" -> packet := Some (q ())
      | other -> fail line_no "unknown traffic attribute %S" other)
    attrs;
  match (!rate, !packet) with
  | Some rate, Some packet_size ->
    (try state.traffic <- Some (Lognic.Traffic.make ~rate ~packet_size)
     with Invalid_argument msg -> fail line_no "%s" msg)
  | _ -> fail line_no "traffic needs both rate= and packet="

let parse_class state line_no attrs =
  let rate = ref None and packet = ref None and weight = ref 1. in
  List.iter
    (fun token ->
      let key, value = split_attr line_no token in
      let q () = quantity line_no key value in
      match key with
      | "rate" -> rate := Some (q ())
      | "packet" -> packet := Some (q ())
      | "weight" -> weight := q ()
      | other -> fail line_no "unknown class attribute %S" other)
    attrs;
  match (!rate, !packet) with
  | Some rate, Some packet_size ->
    (try
       state.classes <-
         state.classes @ [ (Lognic.Traffic.make ~rate ~packet_size, !weight) ]
     with Invalid_argument msg -> fail line_no "%s" msg)
  | _ -> fail line_no "class needs both rate= and packet="

let parse_string text =
  let state =
    {
      graph = G.empty;
      hardware = None;
      traffic = None;
      classes = [];
      names = Hashtbl.create 16;
    }
  in
  try
    List.iteri
      (fun i line ->
        let line_no = i + 1 in
        match tokenize (strip_comment line) with
        | [] -> ()
        | "vertex" :: rest -> parse_vertex state line_no rest
        | "edge" :: rest -> parse_edge state line_no rest
        | "hardware" :: rest -> parse_hardware state line_no rest
        | "traffic" :: rest -> parse_traffic state line_no rest
        | "class" :: rest -> parse_class state line_no rest
        | keyword :: _ -> fail line_no "unknown statement %S" keyword)
      (String.split_on_char '\n' text);
    let mix =
      match state.classes with [] -> None | classes -> Some (Lognic.Traffic.mix classes)
    in
    Ok { graph = state.graph; hardware = state.hardware; traffic = state.traffic; mix }
  with Parse_error (line, msg) ->
    (* Quote the offending source line so a CLI user can see the error
       in place (the CLI prepends the file path). *)
    let source =
      match List.nth_opt (String.split_on_char '\n' text) (line - 1) with
      | Some l when String.trim l <> "" ->
        Printf.sprintf "\n  %d | %s" line (String.trim l)
      | Some _ | None -> ""
    in
    Error (Printf.sprintf "line %d: %s%s" line msg source)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error e -> Error e

let vertex_id (doc : document) name =
  List.find_map
    (fun (v : G.vertex) -> if v.label = name then Some v.id else None)
    (G.vertices doc.graph)
