(** Parsing and printing of dimensioned quantities in the graph DSL.

    Accepted suffixes (case-insensitive where unambiguous):
    - data rates: [bps], [Kbps], [Mbps], [Gbps], [B/s], [KB/s], [MB/s],
      [GB/s] — all normalized to bytes/s;
    - sizes: [B], [KB] (1000), [KiB] (1024), [MB], [MiB] — bytes;
    - times: [ns], [us], [ms], [s] — seconds;
    - rates: [ops], [Kops], [Mops] — operations/s;
    - bare numbers pass through unchanged (SI base units). *)

val parse : string -> (float, string) result
(** [parse "25Gbps"] = [Ok 3.125e9]. *)

val parse_exn : string -> float
(** Raises [Invalid_argument] with the parse error, which names the
    offending input (e.g. [Quantity.parse: cannot parse quantity
    "25Gbs"]). *)

val print_rate : float -> string
(** Human-friendly rendering of a bytes/s value, e.g. ["25Gbps"]. *)

val print_size : float -> string
val print_time : float -> string
