module G = Lognic.Graph

let kind_name = function
  | G.Ingress -> "ingress"
  | G.Egress -> "egress"
  | G.Ip -> "ip"

(* Vertex labels are used as DSL names; spaces would break tokenizing. *)
let sanitize label =
  String.map (fun c -> if c = ' ' then '_' else c) label

let vertex_line (v : G.vertex) =
  let buffer = Buffer.create 64 in
  Buffer.add_string buffer
    (Printf.sprintf "vertex %s %s" (sanitize v.label) (kind_name v.kind));
  let s = v.service in
  if s.throughput < infinity then
    Buffer.add_string buffer (Printf.sprintf " throughput=%g" s.throughput);
  if s.parallelism <> 1 then
    Buffer.add_string buffer (Printf.sprintf " parallelism=%d" s.parallelism);
  Buffer.add_string buffer (Printf.sprintf " queue=%d" s.queue_capacity);
  if s.overhead > 0. then
    Buffer.add_string buffer (Printf.sprintf " overhead=%g" s.overhead);
  if s.accel <> 1. then Buffer.add_string buffer (Printf.sprintf " accel=%g" s.accel);
  if s.partition <> 1. then
    Buffer.add_string buffer (Printf.sprintf " partition=%g" s.partition);
  Buffer.contents buffer

let edge_line g (e : G.edge) =
  let name id = sanitize (G.vertex g id).label in
  let buffer = Buffer.create 64 in
  Buffer.add_string buffer
    (Printf.sprintf "edge %s -> %s delta=%g" (name e.src) (name e.dst) e.delta);
  if e.alpha > 0. then Buffer.add_string buffer (Printf.sprintf " alpha=%g" e.alpha);
  if e.beta > 0. then Buffer.add_string buffer (Printf.sprintf " beta=%g" e.beta);
  (match e.bandwidth with
  | Some bw -> Buffer.add_string buffer (Printf.sprintf " bandwidth=%g" bw)
  | None -> ());
  Buffer.contents buffer

let graph_to_string g =
  String.concat "\n"
    (List.map vertex_line (G.vertices g) @ List.map (edge_line g) (G.edges g))
  ^ "\n"

let to_dot g =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer "digraph lognic {\n  rankdir=LR;\n";
  List.iter
    (fun (v : G.vertex) ->
      let shape =
        match v.kind with G.Ingress | G.Egress -> "house" | G.Ip -> "box"
      in
      let label =
        if v.service.throughput = infinity then sanitize v.label
        else
          Printf.sprintf "%s\\nP=%s D=%d N=%d" (sanitize v.label)
            (Quantity.print_rate v.service.throughput)
            v.service.parallelism v.service.queue_capacity
      in
      Buffer.add_string buffer
        (Printf.sprintf "  v%d [shape=%s, label=\"%s\"];\n" v.id shape label))
    (G.vertices g);
  List.iter
    (fun (e : G.edge) ->
      let media = Buffer.create 16 in
      if e.alpha > 0. then
        Buffer.add_string media (Printf.sprintf " a=%g" e.alpha);
      if e.beta > 0. then Buffer.add_string media (Printf.sprintf " b=%g" e.beta);
      (match e.bandwidth with
      | Some bw ->
        Buffer.add_string media
          (Printf.sprintf " link=%s" (Quantity.print_rate bw))
      | None -> ());
      Buffer.add_string buffer
        (Printf.sprintf "  v%d -> v%d [label=\"d=%g%s\"];\n" e.src e.dst e.delta
           (Buffer.contents media)))
    (G.edges g);
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer

let document_to_string (doc : Parser.document) =
  let buffer = Buffer.create 256 in
  (match doc.hardware with
  | Some hw ->
    Buffer.add_string buffer
      (Printf.sprintf "hardware interface=%g memory=%g\n" hw.bw_interface
         hw.bw_memory)
  | None -> ());
  Buffer.add_string buffer (graph_to_string doc.graph);
  (match doc.traffic with
  | Some t ->
    Buffer.add_string buffer
      (Printf.sprintf "traffic rate=%g packet=%g\n" t.rate t.packet_size)
  | None -> ());
  (match doc.mix with
  | Some classes ->
    List.iter
      (fun ((c : Lognic.Traffic.t), w) ->
        Buffer.add_string buffer
          (Printf.sprintf "class rate=%g packet=%g weight=%g\n" c.rate
             c.packet_size w))
      classes
  | None -> ());
  Buffer.contents buffer
