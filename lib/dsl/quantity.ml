let suffixes =
  (* Longest-match-first table of suffix -> multiplier (to SI base). *)
  [
    ("gbps", 1e9 /. 8.);
    ("mbps", 1e6 /. 8.);
    ("kbps", 1e3 /. 8.);
    ("bps", 1. /. 8.);
    ("gb/s", 1e9);
    ("mb/s", 1e6);
    ("kb/s", 1e3);
    ("b/s", 1.);
    ("kib", 1024.);
    ("mib", 1024. *. 1024.);
    ("gib", 1024. *. 1024. *. 1024.);
    ("kb", 1e3);
    ("mb", 1e6);
    ("gb", 1e9);
    ("b", 1.);
    ("ns", 1e-9);
    ("us", 1e-6);
    ("ms", 1e-3);
    ("s", 1.);
    ("kops", 1e3);
    ("mops", 1e6);
    ("ops", 1.);
    (* bare SI count suffixes (flow populations, cache entries); listed
       last so every unit-bearing suffix above wins the longest match *)
    ("k", 1e3);
    ("m", 1e6);
    ("g", 1e9);
  ]

let parse text =
  let text = String.trim text in
  if text = "" then Error "empty quantity"
  else begin
    let lower = String.lowercase_ascii text in
    let matching =
      List.find_opt
        (fun (suffix, _) ->
          String.length lower > String.length suffix
          && Filename.check_suffix lower suffix
          &&
          (* the char before the suffix — skipping optional whitespace, so
             both "10Gbps" and "10 Gbps" parse — must be part of the number *)
          let i = ref (String.length lower - String.length suffix - 1) in
          while !i > 0 && (lower.[!i] = ' ' || lower.[!i] = '\t') do
            decr i
          done;
          let c = lower.[!i] in
          (c >= '0' && c <= '9') || c = '.')
        suffixes
    in
    let number_part, multiplier =
      match matching with
      | Some (suffix, m) ->
        (String.sub text 0 (String.length text - String.length suffix), m)
      | None -> (text, 1.)
    in
    match float_of_string_opt (String.trim number_part) with
    | Some v -> Ok (v *. multiplier)
    | None -> Error (Printf.sprintf "cannot parse quantity %S" text)
  end

let parse_exn text =
  match parse text with
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "Quantity.parse: %s" e)

let print_with units v =
  (* only commit to a rendering that parses back to exactly [v]: a
     magnitude like 1500 B is 1.46484375 KiB, which %g truncates to
     1.46484 — the round trip would silently lose bytes. Fall through
     to a smaller unit (whose magnitude is exact more often) and, as a
     last resort, widen the precision of the bare number. Ulp-level
     slack keeps natural spellings like 5us, where magnitude *
     multiplier lands one rounding away from the original literal. *)
  let exact ~divisor s =
    Float.abs ((float_of_string s *. divisor) -. v) <= Float.abs v *. 1e-15
  in
  let rec pick = function
    | [] ->
      let s = Printf.sprintf "%g" v in
      if exact ~divisor:1. s then s
      else
        let s = Printf.sprintf "%.12g" v in
        if exact ~divisor:1. s then s else Printf.sprintf "%.17g" v
    | (threshold, divisor, suffix) :: rest ->
      if abs_float v >= threshold then
        let s = Printf.sprintf "%g" (v /. divisor) in
        if exact ~divisor s then s ^ suffix else pick rest
      else pick rest
  in
  pick units

let print_rate v =
  print_with
    [
      (1e9 /. 8., 1e9 /. 8., "Gbps");
      (1e6 /. 8., 1e6 /. 8., "Mbps");
      (1., 1. /. 8., "bps");
    ]
    v

let print_size v =
  print_with [ (1024. *. 1024., 1024. *. 1024., "MiB"); (1024., 1024., "KiB"); (1., 1., "B") ] v

let print_time v =
  print_with [ (1., 1., "s"); (1e-3, 1e-3, "ms"); (1e-6, 1e-6, "us"); (1e-9, 1e-9, "ns") ] v
