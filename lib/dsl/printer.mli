(** Rendering graphs back into the DSL format ({!Parser} round-trips
    the output). *)

val document_to_string : Parser.document -> string

val graph_to_string : Lognic.Graph.t -> string
(** Just the vertex/edge statements. *)

val to_dot : Lognic.Graph.t -> string
(** Graphviz rendering: ingress/egress as houses, IPs as boxes labelled
    with their P/D/N, edges labelled with δ and their medium usage.
    Pipe through [dot -Tsvg] to visualize an execution graph. *)
