module Json = Telemetry.Json

type config = { reservoir : int }

let default_config = { reservoir = 64 }

type phase = Queue | Service | Wire | Overhead

let phase_name = function
  | Queue -> "queue"
  | Service -> "service"
  | Wire -> "wire"
  | Overhead -> "overhead"

type span = {
  entity : string;
  lane : int;
  phase : phase;
  start : float;
  duration : float;
}

type fate = Pending | Delivered of float | Dropped of { site : string; time : float }

type record = {
  packet : int;
  born : float;
  size : float;
  klass : int;
  mutable fate : fate;
  mutable rev_spans : span list;
  mutable live : bool;
      (* cleared on eviction: the record is unreachable from the final
         reservoir, so recording further spans for it is wasted work *)
}

type t = {
  capacity : int;
  rng : Lognic_numerics.Rng.t;
  slots : record option array;
  mutable seen : int;
  mutable next : int;  (* generation index of the next sampled packet *)
  mutable weight : float;  (* Algorithm L's running W *)
}

let create ?(config = default_config) ~rng () =
  if config.reservoir < 1 then
    invalid_arg "Trace.create: reservoir must be >= 1";
  {
    capacity = config.reservoir;
    rng;
    slots = Array.make config.reservoir None;
    seen = 0;
    next = 0;
    weight = 1.;
  }

let capacity t = t.capacity
let seen t = t.seen

(* Algorithm L reservoir sampling (Li 1994): instead of one rng draw
   per packet, draw a geometrically distributed skip to the next
   sampled packet — O(k log(n/k)) draws in total, and the unsampled
   fast path is a single integer compare with no allocation. The skip
   sequence is still a pure function of the trace rng and the
   (deterministic) generation order — the property the --jobs
   invariance test pins down. *)
let unit_pos t =
  (* uniform on (0, 1]: safe under log *)
  1. -. Lognic_numerics.Rng.float t.rng 1.

let step t =
  t.weight <-
    t.weight *. Float.exp (Float.log (unit_pos t) /. float_of_int t.capacity);
  let gap = Float.log (unit_pos t) /. Float.log1p (-.t.weight) in
  (* gap >= 0 always; clamp the astronomically rare huge skip so the
     index arithmetic below cannot overflow *)
  let gap = if gap < 1e15 then int_of_float gap else max_int / 4 in
  t.next <- t.next + 1 + gap

let on_packet t ~packet ~born ~size ~klass =
  let n = t.seen in
  t.seen <- n + 1;
  let slot =
    if n < t.capacity then begin
      if n = t.capacity - 1 then begin
        (* reservoir just filled: schedule the first replacement *)
        t.next <- n;
        step t
      end;
      n
    end
    else if n = t.next then begin
      let j = Lognic_numerics.Rng.int t.rng t.capacity in
      step t;
      j
    end
    else -1
  in
  if slot < 0 then None
  else begin
    let r =
      { packet; born; size; klass; fate = Pending; rev_spans = []; live = true }
    in
    (match t.slots.(slot) with Some old -> old.live <- false | None -> ());
    t.slots.(slot) <- Some r;
    Some r
  end

let add_span r ~entity ~lane ~phase ~start ~duration =
  if r.live && duration > 0. then
    r.rev_spans <- { entity; lane; phase; start; duration } :: r.rev_spans

let deliver r ~time = if r.live then r.fate <- Delivered time
let drop r ~site ~time = if r.live then r.fate <- Dropped { site; time }

(* Records still held by the reservoir, in packet-id (= generation)
   order. A record evicted mid-flight is dead ([live = false]): it
   ignores further spans and is no longer reachable from here. *)
let records t =
  Array.to_list t.slots
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> compare a.packet b.packet)

(* The packet's walk is strictly sequential — queueing, service, wire
   and overhead segments tile [born, delivered] with no gaps or overlap
   — so its critical path is simply every recorded span in time order,
   and the durations sum to the end-to-end latency exactly. *)
let critical_path r =
  List.stable_sort
    (fun a b -> Float.compare a.start b.start)
    (List.rev r.rev_spans)

let span_total r =
  (* Sum in recording (= chronological) order so the float rounding of
     the total matches a left-to-right walk of the timeline. *)
  List.fold_left
    (fun acc s -> acc +. s.duration)
    0.
    (List.rev r.rev_spans)

let latency r =
  match r.fate with Delivered at -> Some (at -. r.born) | Pending | Dropped _ -> None

(* --- Chrome trace-event export (catapult JSON, loads in Perfetto) --- *)

let usec t = t *. 1e6

let entities t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem seen s.entity) then begin
            Hashtbl.add seen s.entity ();
            order := s.entity :: !order
          end)
        (List.rev r.rev_spans))
    (records t);
  List.rev !order

let to_chrome_json t =
  let recs = records t in
  let entity_names = entities t in
  (* pid 1 holds the per-packet lifecycle rows (tid = packet id); each
     simulated entity gets its own process from pid 2 up, with tid =
     engine lane. *)
  let packet_pid = 1 in
  let entity_pid =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i name -> Hashtbl.replace tbl name (i + 2)) entity_names;
    fun name -> Hashtbl.find tbl name
  in
  let meta ~pid ~name =
    Json.Obj
      [
        ("ph", Json.Str "M");
        ("name", Json.Str "process_name");
        ("pid", Json.Num (float_of_int pid));
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]
  in
  let complete ~name ~cat ~pid ~tid ~ts ~dur ~packet =
    Json.Obj
      [
        ("ph", Json.Str "X");
        ("name", Json.Str name);
        ("cat", Json.Str cat);
        ("pid", Json.Num (float_of_int pid));
        ("tid", Json.Num (float_of_int tid));
        ("ts", Json.Num (usec ts));
        ("dur", Json.Num (usec dur));
        ("args", Json.Obj [ ("packet", Json.Num (float_of_int packet)) ]);
      ]
  in
  let instant ~name ~pid ~tid ~ts ~args =
    Json.Obj
      [
        ("ph", Json.Str "i");
        ("name", Json.Str name);
        ("s", Json.Str "t");
        ("pid", Json.Num (float_of_int pid));
        ("tid", Json.Num (float_of_int tid));
        ("ts", Json.Num (usec ts));
        ("args", Json.Obj args);
      ]
  in
  let packet_events r =
    let spans =
      List.map
        (fun s ->
          complete
            ~name:(Printf.sprintf "%s %s" (phase_name s.phase) s.entity)
            ~cat:(phase_name s.phase) ~pid:packet_pid ~tid:r.packet
            ~ts:s.start ~dur:s.duration ~packet:r.packet)
        (critical_path r)
    in
    let birth =
      instant ~name:"arrival" ~pid:packet_pid ~tid:r.packet ~ts:r.born
        ~args:[ ("size", Json.Num r.size); ("class", Json.Num (float_of_int r.klass)) ]
    in
    let outcome =
      match r.fate with
      | Pending -> []
      | Delivered at ->
        [
          instant ~name:"delivery" ~pid:packet_pid ~tid:r.packet ~ts:at
            ~args:[ ("latency_us", Json.Num (usec (at -. r.born))) ];
        ]
      | Dropped { site; time } ->
        [
          instant ~name:"drop" ~pid:packet_pid ~tid:r.packet ~ts:time
            ~args:[ ("site", Json.Str site) ];
        ]
    in
    (birth :: spans) @ outcome
  in
  let entity_events r =
    List.filter_map
      (fun s ->
        match s.phase with
        | Service | Wire ->
          Some
            (complete
               ~name:(Printf.sprintf "p%d" r.packet)
               ~cat:(phase_name s.phase) ~pid:(entity_pid s.entity)
               ~tid:s.lane ~ts:s.start ~dur:s.duration ~packet:r.packet)
        | Queue | Overhead -> None)
      (critical_path r)
  in
  let events =
    (meta ~pid:packet_pid ~name:"packets"
    :: List.map (fun name -> meta ~pid:(entity_pid name) ~name) entity_names)
    @ List.concat_map packet_events recs
    @ List.concat_map entity_events recs
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ns");
      ("traceEvents", Json.Arr events);
      (* the Chrome trace-event envelope is fixed by the viewer, so the
         schema stamp rides in the metadata object instead of the root *)
      ( "otherData",
        Json.versioned ~kind:"trace_events"
          [
            ("sampled_packets", Json.Num (float_of_int (List.length recs)));
            ("generated_packets", Json.Num (float_of_int t.seen));
            ("reservoir", Json.Num (float_of_int t.capacity));
          ] );
    ]

let to_chrome_string t = Json.to_string (to_chrome_json t)
