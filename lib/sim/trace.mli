(** Opt-in per-packet lifecycle tracing for the simulator.

    When enabled ({!Netsim.config.trace}), the simulator records every
    segment of a sampled packet's walk through the graph — queue waits,
    per-engine service, per-medium wire time, fixed overheads — plus its
    arrival and its fate (delivery or drop, with the drop site). Memory
    stays bounded however long the run via deterministic reservoir
    sampling (Algorithm L) over packets: the reservoir holds a uniform
    sample of [config.reservoir] packets, and the sampling decisions
    are a pure function of a dedicated rng split from the run seed, so
    traced runs remain bit-identical at any [--jobs] count.

    A packet's walk is strictly sequential, so its recorded spans tile
    [born, delivered] exactly: {!critical_path} is the timeline in
    order, and {!span_total} equals the recorded end-to-end latency.

    {!to_chrome_json} renders the whole trace in Chrome trace-event
    (catapult) JSON, loadable in Perfetto / [chrome://tracing]: one
    process of per-packet lifecycle rows, plus one process per entity
    whose rows are engine lanes. *)

type config = { reservoir : int  (** packets held (default 64) *) }

val default_config : config

type phase =
  | Queue  (** waiting in an IP queue or for medium admission *)
  | Service  (** execution-engine occupancy *)
  | Wire  (** transfer across a medium *)
  | Overhead  (** fixed per-vertex computation-transfer overhead *)

val phase_name : phase -> string

type span = {
  entity : string;  (** vertex label or medium label *)
  lane : int;  (** engine index within the entity (0 for media) *)
  phase : phase;
  start : float;  (** simulated seconds *)
  duration : float;
}

type fate =
  | Pending
  | Delivered of float
  | Dropped of { site : string; time : float }

type record = {
  packet : int;
  born : float;
  size : float;
  klass : int;
  mutable fate : fate;
  mutable rev_spans : span list;  (** newest first; see {!critical_path} *)
  mutable live : bool;
      (** false once evicted from the reservoir; dead records ignore
          further spans (they are unreachable from {!records}) *)
}

type t

val create : ?config:config -> rng:Lognic_numerics.Rng.t -> unit -> t
(** Raises [Invalid_argument] on a reservoir capacity < 1. The [rng]
    must be dedicated to the trace (split from the run seed) so that
    enabling tracing perturbs no other stochastic stream. *)

val capacity : t -> int

val seen : t -> int
(** Packets offered to the reservoir so far. *)

val on_packet :
  t -> packet:int -> born:float -> size:float -> klass:int -> record option
(** Reservoir admission for a freshly generated packet: [Some record]
    if the packet is (currently) sampled — record spans into it — or
    [None] if it lost the draw. Call exactly once per packet, in
    generation order. *)

val add_span :
  record ->
  entity:string ->
  lane:int ->
  phase:phase ->
  start:float ->
  duration:float ->
  unit
(** Zero-duration spans are discarded. *)

val deliver : record -> time:float -> unit
val drop : record -> site:string -> time:float -> unit

val records : t -> record list
(** Records still held by the reservoir, in packet-id order. *)

val critical_path : record -> span list
(** The packet's spans in start-time order — its full timeline. *)

val span_total : record -> float
(** Sum of span durations in chronological order; equals
    [latency record] for a delivered packet (the walk tiles the
    packet's lifetime). *)

val latency : record -> float option
(** End-to-end latency for a delivered packet, [None] otherwise. *)

val to_chrome_json : t -> Telemetry.Json.t
(** Chrome trace-event JSON ([ts]/[dur] in microseconds):
    process "packets" has one row per sampled packet (all phases plus
    arrival / delivery / drop instants); each entity is its own process
    whose rows are engine lanes carrying service / wire slices. *)

val to_chrome_string : t -> string
