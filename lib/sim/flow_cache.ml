(* Per-packet flow identity and the two-level flow cache (EMC →
   megaflow → slow path) behind the simulator's state-dependent routing.

   Everything on the per-packet path is O(1) and allocation-free: the
   flow draw is a Walker alias lookup on one [Rng.bits] draw (the
   tenant sampler's construction, scaled to flow populations in the
   millions — masses are n·Δbits ≤ 2^50, comfortably inside 63-bit
   ints), and each cache is a fixed-capacity int-array LRU (doubly
   linked recency list + chained hash buckets, lazy TTL expiry), so the
   steady-state hot loop never allocates per flow. *)

module N = Lognic_numerics
module FC = Lognic.Flowcache

let classes = 3
let class_names = [| "hot"; "warm"; "cold" |]

(* ---- Zipf alias sampler --------------------------------------------- *)

let bits_range = 1 lsl 30

type sampler = { s_n : int; s_prob : int array; s_alias : int array }

let sampler ~flows ~zipf =
  let p = FC.zipf_weights ~flows ~s:zipf in
  let n = flows in
  let cum_bits = Array.make n 0 in
  let running = ref 0. in
  Array.iteri
    (fun i pi ->
      running := !running +. pi;
      cum_bits.(i) <- int_of_float (!running *. float_of_int bits_range))
    p;
  (* pin the last edge: a 30-bit draw can never fall off the end *)
  cum_bits.(n - 1) <- bits_range;
  let prob = Array.make n bits_range in
  let alias = Array.init n (fun i -> i) in
  let w =
    Array.init n (fun i ->
        n * (cum_bits.(i) - if i = 0 then 0 else cum_bits.(i - 1)))
  in
  (* two-stack split in exact integer arithmetic, array-backed so a
     million-flow build does not cons a million list cells *)
  let small = Array.make n 0 and large = Array.make n 0 in
  let ns = ref 0 and nl = ref 0 in
  for i = 0 to n - 1 do
    if w.(i) < bits_range then begin
      small.(!ns) <- i;
      incr ns
    end
    else begin
      large.(!nl) <- i;
      incr nl
    end
  done;
  while !ns > 0 && !nl > 0 do
    decr ns;
    let l = small.(!ns) in
    let g = large.(!nl - 1) in
    prob.(l) <- w.(l);
    alias.(l) <- g;
    w.(g) <- w.(g) - (bits_range - w.(l));
    if w.(g) < bits_range then begin
      decr nl;
      small.(!ns) <- g;
      incr ns
    end
  done;
  (* leftovers on either stack sit exactly on the mean *)
  { s_n = n; s_prob = prob; s_alias = alias }

let[@inline] sample s u =
  let m = u * s.s_n in
  let j = m lsr 30 in
  if m land (bits_range - 1) < s.s_prob.(j) then j else s.s_alias.(j)

(* ---- fixed-capacity int-array LRU ----------------------------------- *)

(* Slots 0..cap-1; [-1] is the null index throughout. The recency list
   is doubly linked ([l_prev]/[l_next], head = MRU); hash chains are
   singly linked ([h_next]) from power-of-two [buckets]. [stamp] holds
   the last-access time for the lazy TTL check. *)
type lru = {
  cap : int;
  mask : int;
  buckets : int array;
  key : int array;
  h_next : int array;
  l_prev : int array;
  l_next : int array;
  stamp : float array;
  mutable head : int;
  mutable tail : int;
  mutable used : int;
}

let lru_create cap =
  if cap < 1 then invalid_arg "Flow_cache: capacity must be >= 1";
  let size = ref 1 in
  while !size < 2 * cap do
    size := !size * 2
  done;
  {
    cap;
    mask = !size - 1;
    buckets = Array.make !size (-1);
    key = Array.make cap (-1);
    h_next = Array.make cap (-1);
    l_prev = Array.make cap (-1);
    l_next = Array.make cap (-1);
    stamp = Array.make cap 0.;
    head = -1;
    tail = -1;
    used = 0;
  }

let[@inline] hash_of t k = (k * 0x9E3779B1) land t.mask

(* unlink slot [i] from its hash chain (O(chain), expected O(1) at load
   factor <= 1/2) *)
let chain_remove t i =
  let b = hash_of t t.key.(i) in
  if t.buckets.(b) = i then t.buckets.(b) <- t.h_next.(i)
  else begin
    let p = ref t.buckets.(b) in
    while t.h_next.(!p) <> i do
      p := t.h_next.(!p)
    done;
    t.h_next.(!p) <- t.h_next.(i)
  end;
  t.h_next.(i) <- -1

let list_unlink t i =
  let p = t.l_prev.(i) and n = t.l_next.(i) in
  if p >= 0 then t.l_next.(p) <- n else t.head <- n;
  if n >= 0 then t.l_prev.(n) <- p else t.tail <- p;
  t.l_prev.(i) <- -1;
  t.l_next.(i) <- -1

let list_push_front t i =
  t.l_prev.(i) <- -1;
  t.l_next.(i) <- t.head;
  if t.head >= 0 then t.l_prev.(t.head) <- i else t.tail <- i;
  t.head <- i

(* Look [k] up; a hit refreshes recency and the TTL stamp. An entry
   idle past [ttl] is removed and reported as a miss (lazy expiry). *)
let lru_find t ?ttl ~now k =
  let b = hash_of t k in
  let rec walk i =
    if i < 0 then false
    else if t.key.(i) = k then begin
      match ttl with
      | Some theta when now -. t.stamp.(i) > theta ->
        chain_remove t i;
        list_unlink t i;
        t.key.(i) <- -1;
        (* recycle the slot through the recency tail so insert finds it *)
        t.l_next.(i) <- -1;
        t.l_prev.(i) <- t.tail;
        if t.tail >= 0 then t.l_next.(t.tail) <- i else t.head <- i;
        t.tail <- i;
        false
      | _ ->
        t.stamp.(i) <- now;
        if t.head <> i then begin
          list_unlink t i;
          list_push_front t i
        end;
        true
    end
    else walk t.h_next.(i)
  in
  walk t.buckets.(b)

(* Insert [k] (must not be present): reuse a free slot while the table
   is filling, then evict the LRU tail. *)
let lru_insert t ~now k =
  let i =
    if t.used < t.cap then begin
      let i = t.used in
      t.used <- t.used + 1;
      i
    end
    else begin
      let i = t.tail in
      if t.key.(i) >= 0 then chain_remove t i;
      list_unlink t i;
      i
    end
  in
  t.key.(i) <- k;
  t.stamp.(i) <- now;
  let b = hash_of t k in
  t.h_next.(i) <- t.buckets.(b);
  t.buckets.(b) <- i;
  list_push_front t i

(* ---- the runtime state ---------------------------------------------- *)

type t = {
  fc_spec : FC.spec;
  fc_warmup : float;
  fc_sampler : sampler;
  emc : lru;
  mega : lru;
  mutable emc_lookups : int;
  mutable emc_hit_count : int;
  mutable mega_lookups : int;
  mutable mega_hit_count : int;
  c_delivered : int array;
  c_bytes : float array;
  c_lat_sum : float array;
  c_lat_max : float array;
  c_hist : int array;  (* classes x Tenant.hist_buckets, log2 buckets *)
}

let create ~(spec : FC.spec) ~warmup =
  {
    fc_spec = spec;
    fc_warmup = warmup;
    fc_sampler = sampler ~flows:spec.FC.flows ~zipf:spec.FC.zipf;
    emc = lru_create spec.FC.emc_entries;
    mega = lru_create spec.FC.megaflow_entries;
    emc_lookups = 0;
    emc_hit_count = 0;
    mega_lookups = 0;
    mega_hit_count = 0;
    c_delivered = Array.make classes 0;
    c_bytes = Array.make classes 0.;
    c_lat_sum = Array.make classes 0.;
    c_lat_max = Array.make classes 0.;
    c_hist = Array.make (classes * Tenant.hist_buckets) 0;
  }

let[@inline] draw t ~bits = sample t.fc_sampler bits

(* Lookup counters follow the arrival windowing convention: counted by
   the lookup's own time, so the measured hit ratio covers exactly the
   post-warmup reference stream. *)

let emc_lookup t ~now ~flow =
  let hit = lru_find t.emc ?ttl:t.fc_spec.FC.ttl ~now flow in
  if now >= t.fc_warmup then begin
    t.emc_lookups <- t.emc_lookups + 1;
    if hit then t.emc_hit_count <- t.emc_hit_count + 1
  end;
  hit

(* An EMC miss consults the megaflow table. A megaflow hit promotes the
   flow into the EMC; a megaflow miss is a slow-path classification,
   which installs the flow in both tables on its way back. *)
let mega_lookup t ~now ~flow =
  let hit = lru_find t.mega ?ttl:t.fc_spec.FC.ttl ~now flow in
  if now >= t.fc_warmup then begin
    t.mega_lookups <- t.mega_lookups + 1;
    if hit then t.mega_hit_count <- t.mega_hit_count + 1
  end;
  if hit then lru_insert t.emc ~now flow
  else begin
    lru_insert t.mega ~now flow;
    lru_insert t.emc ~now flow
  end;
  hit

let record_completion t ~klass ~fs =
  if klass >= 0 then begin
    let born = fs.(Telemetry.slot_born) in
    if born >= t.fc_warmup then begin
      let lat = fs.(Telemetry.slot_now) -. born in
      t.c_delivered.(klass) <- t.c_delivered.(klass) + 1;
      t.c_bytes.(klass) <- t.c_bytes.(klass) +. fs.(Telemetry.slot_size);
      t.c_lat_sum.(klass) <- t.c_lat_sum.(klass) +. lat;
      if lat > t.c_lat_max.(klass) then t.c_lat_max.(klass) <- lat;
      let b = (klass * Tenant.hist_buckets) + Tenant.bucket_of lat in
      t.c_hist.(b) <- t.c_hist.(b) + 1
    end
  end

(* ---- summaries ------------------------------------------------------- *)

type class_row = {
  c_name : string;
  c_share : float;  (** fraction of classified delivered packets *)
  c_count : int;
  c_throughput : float;  (** bytes/s over the measurement window *)
  c_mean_latency : float;
  c_p99_latency : float;
  c_max_latency : float;
}

type stats = {
  fc_window : float;
  fc_flows : int;
  fc_zipf : float;
  fc_emc_entries : int;
  fc_megaflow_entries : int;
  fc_emc_lookups : int;
  fc_emc_hits : int;
  fc_mega_lookups : int;
  fc_mega_hits : int;
  fc_emc_hit_ratio : float;
  fc_mega_hit_ratio : float;  (** conditional, among EMC misses *)
  fc_overall_hit_ratio : float;
  fc_classes : class_row array;  (** hot, warm, cold *)
}

let summarize t ~horizon =
  let window = Float.max 0. (horizon -. t.fc_warmup) in
  let total = Array.fold_left ( + ) 0 t.c_delivered in
  let rows =
    Array.init classes (fun k ->
        let d = t.c_delivered.(k) in
        {
          c_name = class_names.(k);
          c_share =
            (if total = 0 then 0. else float_of_int d /. float_of_int total);
          c_count = d;
          c_throughput = (if window > 0. then t.c_bytes.(k) /. window else 0.);
          c_mean_latency =
            (if d = 0 then 0. else t.c_lat_sum.(k) /. float_of_int d);
          c_p99_latency = Tenant.p99_of_hist t.c_hist k d t.c_lat_max.(k);
          c_max_latency = t.c_lat_max.(k);
        })
  in
  let ratio hits lookups =
    if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups
  in
  let emc_r = ratio t.emc_hit_count t.emc_lookups in
  let mega_r = ratio t.mega_hit_count t.mega_lookups in
  {
    fc_window = window;
    fc_flows = t.fc_spec.FC.flows;
    fc_zipf = t.fc_spec.FC.zipf;
    fc_emc_entries = t.fc_spec.FC.emc_entries;
    fc_megaflow_entries = t.fc_spec.FC.megaflow_entries;
    fc_emc_lookups = t.emc_lookups;
    fc_emc_hits = t.emc_hit_count;
    fc_mega_lookups = t.mega_lookups;
    fc_mega_hits = t.mega_hit_count;
    fc_emc_hit_ratio = emc_r;
    fc_mega_hit_ratio = mega_r;
    fc_overall_hit_ratio =
      ratio (t.emc_hit_count + t.mega_hit_count) t.emc_lookups;
    fc_classes = rows;
  }

let class_row_to_json r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("name", J.Str r.c_name);
      ("share", J.Num r.c_share);
      ("delivered", J.Num (float_of_int r.c_count));
      ("throughput", J.Num r.c_throughput);
      ("mean_latency", J.Num r.c_mean_latency);
      ("p99_latency", J.Num r.c_p99_latency);
      ("max_latency", J.Num r.c_max_latency);
    ]

let stats_to_json s =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("window", J.Num s.fc_window);
      ("flows", J.Num (float_of_int s.fc_flows));
      ("zipf", J.Num s.fc_zipf);
      ("emc_entries", J.Num (float_of_int s.fc_emc_entries));
      ("megaflow_entries", J.Num (float_of_int s.fc_megaflow_entries));
      ("emc_lookups", J.Num (float_of_int s.fc_emc_lookups));
      ("emc_hits", J.Num (float_of_int s.fc_emc_hits));
      ("mega_lookups", J.Num (float_of_int s.fc_mega_lookups));
      ("mega_hits", J.Num (float_of_int s.fc_mega_hits));
      ("emc_hit_ratio", J.Num s.fc_emc_hit_ratio);
      ("mega_hit_ratio", J.Num s.fc_mega_hit_ratio);
      ("overall_hit_ratio", J.Num s.fc_overall_hit_ratio);
      ( "classes",
        J.Arr (Array.to_list (Array.map class_row_to_json s.fc_classes)) );
    ]
