type violation = {
  law : string;
  entity : string;
  time : float;
  expected : float;
  actual : float;
  detail : string;
}

type report = {
  checks : int;
  total_violations : int;
  violations : violation list;
}

let max_recorded = 100

type t = {
  mutable n_checks : int;
  mutable n_violations : int;
  mutable recorded : violation list;  (* newest first, capped *)
  fates : (int, unit) Hashtbl.t;  (* injected, not yet resolved *)
  mutable n_injected : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable last_event_time : float;
}

let create () =
  {
    n_checks = 0;
    n_violations = 0;
    recorded = [];
    fates = Hashtbl.create 1024;
    n_injected = 0;
    n_delivered = 0;
    n_dropped = 0;
    last_event_time = neg_infinity;
  }

let record t v =
  t.n_violations <- t.n_violations + 1;
  if t.n_violations <= max_recorded then t.recorded <- v :: t.recorded

(* Relative closeness with an absolute floor of 1: laws about
   near-zero quantities (an idle medium's busy time, say) are judged
   at absolute [tol] rather than an impossible relative one. *)
let close ~tol expected actual =
  abs_float (expected -. actual)
  <= tol *. Float.max 1. (Float.max (abs_float expected) (abs_float actual))

let check_close t ~law ~entity ~time ?(tol = 1e-9) ~expected ~actual detail =
  t.n_checks <- t.n_checks + 1;
  let pass =
    (* NaN actual must fail; comparisons involving NaN are false, so
       [close] already treats it as a violation. *)
    close ~tol expected actual
  in
  if not pass then record t { law; entity; time; expected; actual; detail }

let check_count t ~law ~entity ~time ~expected ~actual detail =
  t.n_checks <- t.n_checks + 1;
  if expected <> actual then
    record t
      {
        law;
        entity;
        time;
        expected = float_of_int expected;
        actual = float_of_int actual;
        detail;
      }

let check_bound t ~law ~entity ~time ?(tol = 1e-9) ~limit ~actual detail =
  t.n_checks <- t.n_checks + 1;
  let pass = actual <= limit +. (tol *. Float.max 1. (abs_float limit)) in
  if not pass then record t { law; entity; time; expected = limit; actual; detail }

let check_nonneg t ~law ~entity ~time ~actual detail =
  t.n_checks <- t.n_checks + 1;
  if not (actual >= 0.) then
    record t { law; entity; time; expected = 0.; actual; detail }

let packet_entity id = Printf.sprintf "packet-%d" id

let packet_injected t ~id ~time =
  t.n_checks <- t.n_checks + 1;
  t.n_injected <- t.n_injected + 1;
  if Hashtbl.mem t.fates id then
    record t
      {
        law = "packet-fate";
        entity = packet_entity id;
        time;
        expected = 0.;
        actual = 1.;
        detail = "packet id injected while already in flight";
      }
  else Hashtbl.replace t.fates id ()

let resolve t ~id ~time what =
  t.n_checks <- t.n_checks + 1;
  if Hashtbl.mem t.fates id then Hashtbl.remove t.fates id
  else
    record t
      {
        law = "packet-fate";
        entity = packet_entity id;
        time;
        expected = 1.;
        actual = 0.;
        detail =
          Printf.sprintf "%s without a live injection (double delivery/drop?)"
            what;
      }

let packet_delivered t ~id ~time =
  t.n_delivered <- t.n_delivered + 1;
  resolve t ~id ~time "delivered"

let packet_dropped t ~id ~time =
  t.n_dropped <- t.n_dropped + 1;
  resolve t ~id ~time "dropped"

let injected t = t.n_injected
let delivered t = t.n_delivered
let dropped t = t.n_dropped
let in_flight t = Hashtbl.length t.fates

let check_conservation t ~time ~generated =
  check_count t ~law:"packet-conservation" ~entity:"run" ~time
    ~expected:t.n_injected
    ~actual:(t.n_delivered + t.n_dropped + Hashtbl.length t.fates)
    "injected packets must equal delivered + dropped + in-flight at the horizon";
  check_count t ~law:"packet-conservation" ~entity:"run" ~time
    ~expected:generated ~actual:t.n_injected
    "the traffic generator's count must equal packets seen at ingress"

let observe_event_time t time =
  t.n_checks <- t.n_checks + 1;
  if time < t.last_event_time then
    record t
      {
        law = "event-monotonicity";
        entity = "engine";
        time;
        expected = t.last_event_time;
        actual = time;
        detail = "event queue popped a time earlier than its predecessor";
      };
  t.last_event_time <- time

let check_summary t ~horizon (s : Telemetry.summary) =
  let time = horizon in
  let entity = "summary" in
  check_bound t ~law:"window" ~entity ~time ~limit:horizon
    ~actual:s.Telemetry.window "the measurement window cannot exceed the horizon";
  check_nonneg t ~law:"window" ~entity ~time ~actual:s.window
    "the measurement window cannot be negative";
  check_count t ~law:"drop-breakdown" ~entity ~time ~expected:s.dropped_packets
    ~actual:(List.fold_left (fun acc (_, n) -> acc + n) 0 s.drop_breakdown)
    "per-site drop counts must sum to the aggregate drop counter";
  check_count t ~law:"class-conservation" ~entity ~time
    ~expected:s.delivered_packets
    ~actual:(List.fold_left (fun acc (_, n, _) -> acc + n) 0 s.per_class)
    "per-class delivered counts must sum to delivered packets";
  check_bound t ~law:"loss-rate" ~entity ~time ~limit:1. ~actual:s.loss_rate
    "the loss rate cannot exceed 1";
  check_nonneg t ~law:"loss-rate" ~entity ~time ~actual:s.loss_rate
    "the loss rate cannot be negative";
  if s.delivered_packets > 0 then begin
    (* Mean latency is an average of per-packet sums while the term
       decomposition averages each component separately; they tile the
       same total up to summation-order rounding, so the tolerance is
       looser than the default. *)
    check_close t ~law:"latency-terms" ~entity ~time ~tol:1e-6
      ~expected:s.mean_latency
      ~actual:(Telemetry.terms_total s.latency_terms)
      "mean queueing + service + wire + overhead must equal the mean latency";
    check_bound t ~law:"latency-order" ~entity ~time ~limit:s.p99_latency
      ~actual:s.p50_latency "p50 latency cannot exceed p99";
    check_bound t ~law:"latency-order" ~entity ~time ~limit:s.max_latency
      ~actual:s.p99_latency "p99 latency cannot exceed the maximum";
    check_bound t ~law:"latency-order" ~entity ~time ~limit:s.max_latency
      ~actual:s.mean_latency "mean latency cannot exceed the maximum"
  end;
  if s.window > 0. then begin
    check_close t ~law:"throughput" ~entity ~time
      ~expected:(s.delivered_bytes /. s.window)
      ~actual:s.throughput "throughput must be delivered bytes over the window";
    check_close t ~law:"packet-rate" ~entity ~time
      ~expected:(float_of_int s.delivered_packets /. s.window)
      ~actual:s.packet_rate
      "packet rate must be delivered packets over the window"
  end

let report t =
  {
    checks = t.n_checks;
    total_violations = t.n_violations;
    violations = List.rev t.recorded;
  }

let ok r = r.total_violations = 0

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s at t=%g: %s (expected %g, got %g)" v.law v.entity
    v.time v.detail v.expected v.actual

let violation_to_json v =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("law", J.Str v.law);
      ("entity", J.Str v.entity);
      ("time", J.Num v.time);
      ("expected", J.Num v.expected);
      ("actual", J.Num v.actual);
      ("detail", J.Str v.detail);
    ]

let report_to_json r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("checks", J.Num (float_of_int r.checks));
      ("violations", J.Num (float_of_int r.total_violations));
      ("recorded", J.Arr (List.map violation_to_json r.violations));
    ]
