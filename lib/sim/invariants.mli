(** Runtime conservation-law checking for simulation runs.

    The simulator's quantities obey a family of exact or near-exact laws:
    every injected packet is eventually delivered, dropped, or still in
    flight at the horizon; the per-site drop breakdown sums to the
    aggregate drop counter; the four {!Telemetry.latency_terms}
    components tile each delivered packet's end-to-end latency; no
    entity is ever more than 100% utilized; bounded queues never hold
    more than their capacity; the event queue pops times in
    non-decreasing order. A checker ([t]) accumulates structured
    violation records for any law that fails, so a broken invariant
    points at the entity and simulated time where the books stopped
    balancing instead of surfacing later as a subtly-wrong summary.

    Checking is opt-in ({!Netsim.config.check_invariants}); the disabled
    path adds no work to the simulator hot loop (enforced by the
    [bench/main.exe --invariant-overhead] gate). *)

type violation = {
  law : string;  (** stable kebab-case law name, e.g. ["packet-conservation"] *)
  entity : string;  (** vertex/medium label, ["run"], or ["packet-<id>"] *)
  time : float;  (** simulated seconds when the check ran *)
  expected : float;
  actual : float;
  detail : string;  (** human-readable statement of the law *)
}

type report = {
  checks : int;  (** individual law evaluations performed *)
  total_violations : int;
  violations : violation list;
      (** first {!max_recorded} violations in detection order; the
          count above is not capped *)
}

val max_recorded : int
(** Violations kept verbatim in a report (100); a systemically broken
    run can fail millions of per-packet checks and the report should
    not grow with it. *)

type t
(** A mutable checker accumulating violations over one run. *)

val create : unit -> t

(** {1 Generic checks}

    Every check increments [checks] and records a violation on failure.
    Closeness is relative-with-floor: values pass when
    [|expected - actual| <= tol * max 1. (max |expected| |actual|)],
    so laws about quantities near zero are not held to impossible
    absolute precision. A non-finite [actual] always fails. *)

val check_close :
  t ->
  law:string ->
  entity:string ->
  time:float ->
  ?tol:float ->
  expected:float ->
  actual:float ->
  string ->
  unit
(** [tol] defaults to [1e-9]. *)

val check_count :
  t ->
  law:string ->
  entity:string ->
  time:float ->
  expected:int ->
  actual:int ->
  string ->
  unit
(** Exact integer equality. *)

val check_bound :
  t ->
  law:string ->
  entity:string ->
  time:float ->
  ?tol:float ->
  limit:float ->
  actual:float ->
  string ->
  unit
(** Passes when [actual <= limit] up to the relative tolerance
    ([tol] defaults to [1e-9]); the violation stores [limit] as
    [expected]. *)

val check_nonneg :
  t -> law:string -> entity:string -> time:float -> actual:float -> string -> unit

(** {1 Packet-fate ledger}

    Every packet id must be injected exactly once and resolved
    (delivered or dropped) at most once; ids resolved without a live
    injection record a ["packet-fate"] violation — the signature of a
    double delivery or double drop. *)

val packet_injected : t -> id:int -> time:float -> unit
val packet_delivered : t -> id:int -> time:float -> unit
val packet_dropped : t -> id:int -> time:float -> unit

val injected : t -> int
val delivered : t -> int
val dropped : t -> int

val in_flight : t -> int
(** Injected packets not yet delivered or dropped. *)

val check_conservation : t -> time:float -> generated:int -> unit
(** The ledger's closing entry: injected = delivered + dropped +
    in-flight, and injected agrees with the traffic generator's own
    count ([generated]). *)

val observe_event_time : t -> float -> unit
(** Feed every popped event time in execution order; times must be
    non-decreasing (["event-monotonicity"]). *)

val check_summary : t -> horizon:float -> Telemetry.summary -> unit
(** The {!Telemetry.summary} self-consistency laws: the drop breakdown
    sums to [dropped_packets], per-class delivered counts sum to
    [delivered_packets], the mean latency-term decomposition tiles
    [mean_latency], [throughput]/[packet_rate] agree with
    delivered bytes/packets over the window, [loss_rate] is in [0, 1],
    the window fits the horizon, and (when anything was delivered)
    p50 ≤ p99 ≤ max and mean ≤ max. *)

(** {1 Reporting} *)

val report : t -> report
(** Snapshot of everything checked so far (violations in detection
    order). *)

val ok : report -> bool
(** No violations. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_to_json : violation -> Telemetry.Json.t

val report_to_json : report -> Telemetry.Json.t
(** [{"checks": n, "violations": n, "recorded": [...]}] — a fragment
    for embedding, not a versioned document. *)
