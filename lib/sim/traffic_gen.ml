type arrival = Poisson | Paced | Bursty of { burstiness : float; mean_on : float }

(* Scratch-float layout: mutable float record fields box on every store
   (no flambda), so the generator's float state lives in [fb]. *)
let fb_phase_until = 0 (* end of the current ON phase (Bursty) *)
let fb_acc = 1 (* class-scan accumulator *)

type t = {
  engine : Engine.t;
  rng : Lognic_numerics.Rng.t;
  arrival : arrival;
  class_rates : float array;  (* packet rate per class *)
  total_pps : float;
  on_arrival : int -> unit;
  mutable count : int;
  mutable cursor : int;  (* class-scan index *)
  fb : float array;
}

let create engine ~rng ~arrival ~mix ~on_arrival =
  let class_rates =
    Array.of_list
      (List.map
         (fun ((c : Lognic.Traffic.t), _) -> Lognic.Traffic.packet_rate c)
         mix)
  in
  let total_pps = Array.fold_left ( +. ) 0. class_rates in
  if total_pps <= 0. then invalid_arg "Traffic_gen.create: zero packet rate";
  (match arrival with
  | Bursty { burstiness; mean_on } ->
    if burstiness <= 1. then
      invalid_arg "Traffic_gen.create: burstiness must be > 1";
    if mean_on <= 0. then invalid_arg "Traffic_gen.create: mean_on must be > 0"
  | Poisson | Paced -> ());
  {
    engine;
    rng;
    arrival;
    class_rates;
    total_pps;
    on_arrival;
    count = 0;
    cursor = 0;
    fb = Array.make 2 0.;
  }

(* Same draw and the same accumulation order as the historical
   recursive scan, as a loop over scratch cells: no boxed accumulator,
   no per-call closure. *)
let pick_class t =
  let target = Lognic_numerics.Rng.float t.rng t.total_pps in
  let n = Array.length t.class_rates in
  t.fb.(fb_acc) <- 0.;
  t.cursor <- 0;
  while
    t.cursor < n - 1
    && (let acc = t.fb.(fb_acc) +. t.class_rates.(t.cursor) in
        t.fb.(fb_acc) <- acc;
        target >= acc)
  do
    t.cursor <- t.cursor + 1
  done;
  t.cursor

(* Next arrival time from [now], Bursty case. Packets are only
   generated inside ON phases; crossing the phase boundary inserts an
   OFF gap and draws a fresh ON phase (memorylessness makes restarting
   the inter-arrival draw at the new phase start exact). *)
let rec bursty_next t ~burstiness ~mean_on now =
  if now >= t.fb.(fb_phase_until) then begin
    (* we are in an OFF gap (or at start): open a new ON phase *)
    let off =
      if t.fb.(fb_phase_until) = 0. && now = 0. then 0.
      else
        Lognic_numerics.Dist.sample_exponential
          ~rate:(1. /. (mean_on *. (burstiness -. 1.)))
          t.rng
    in
    let start = Float.max now t.fb.(fb_phase_until) +. off in
    t.fb.(fb_phase_until) <-
      start +. Lognic_numerics.Dist.sample_exponential ~rate:(1. /. mean_on) t.rng;
    bursty_next t ~burstiness ~mean_on start
  end
  else begin
    let candidate =
      now
      +. Lognic_numerics.Dist.sample_exponential
           ~rate:(t.total_pps *. burstiness)
           t.rng
    in
    if candidate < t.fb.(fb_phase_until) then candidate
    else
      (* the draw crossed the phase end: resume from the boundary,
         where the OFF branch above takes over *)
      bursty_next t ~burstiness ~mean_on t.fb.(fb_phase_until)
  end

(* Inlinable dispatcher so the Poisson/Paced fast paths never box [now]
   at a call boundary; only Bursty pays the recursive helper. *)
let[@inline] next_arrival t now =
  match t.arrival with
  | Paced -> now +. (1. /. t.total_pps)
  | Poisson ->
    now +. Lognic_numerics.Dist.sample_exponential ~rate:t.total_pps t.rng
  | Bursty { burstiness; mean_on } -> bursty_next t ~burstiness ~mean_on now

let start t ~until =
  let rec emit () =
    let now = Engine.now t.engine in
    let klass = pick_class t in
    t.count <- t.count + 1;
    t.on_arrival klass;
    let next = next_arrival t now in
    if next < until then Engine.schedule t.engine ~at:next emit
  in
  let first = next_arrival t (Engine.now t.engine) in
  if first < until then Engine.schedule t.engine ~at:first emit

let generated t = t.count
