type arrival = Poisson | Paced | Bursty of { burstiness : float; mean_on : float }

type t = {
  engine : Engine.t;
  rng : Lognic_numerics.Rng.t;
  arrival : arrival;
  classes : (float * float) array;  (* (size, packet rate) per class *)
  total_pps : float;
  on_packet : Packet.t -> unit;
  mutable count : int;
  mutable phase_until : float;  (* end of the current ON phase (Bursty) *)
}

let create engine ~rng ~arrival ~mix ~on_packet =
  let classes =
    Array.of_list
      (List.map
         (fun ((c : Lognic.Traffic.t), _) ->
           (c.packet_size, Lognic.Traffic.packet_rate c))
         mix)
  in
  let total_pps = Array.fold_left (fun acc (_, r) -> acc +. r) 0. classes in
  if total_pps <= 0. then invalid_arg "Traffic_gen.create: zero packet rate";
  (match arrival with
  | Bursty { burstiness; mean_on } ->
    if burstiness <= 1. then
      invalid_arg "Traffic_gen.create: burstiness must be > 1";
    if mean_on <= 0. then invalid_arg "Traffic_gen.create: mean_on must be > 0"
  | Poisson | Paced -> ());
  { engine; rng; arrival; classes; total_pps; on_packet; count = 0; phase_until = 0. }

let pick_class t =
  let target = Lognic_numerics.Rng.float t.rng t.total_pps in
  let rec scan i acc =
    if i = Array.length t.classes - 1 then i
    else
      let acc = acc +. snd t.classes.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let sample_exp t rate =
  Lognic_numerics.Dist.sample (Lognic_numerics.Dist.exponential ~rate) t.rng

(* Next arrival time from [now]. For Bursty, packets are only generated
   inside ON phases; crossing the phase boundary inserts an OFF gap and
   draws a fresh ON phase (memorylessness makes restarting the
   inter-arrival draw at the new phase start exact). *)
let rec next_arrival t now =
  match t.arrival with
  | Paced -> now +. (1. /. t.total_pps)
  | Poisson -> now +. sample_exp t t.total_pps
  | Bursty { burstiness; mean_on } ->
    if now >= t.phase_until then begin
      (* we are in an OFF gap (or at start): open a new ON phase *)
      let off =
        if t.phase_until = 0. && now = 0. then 0.
        else sample_exp t (1. /. (mean_on *. (burstiness -. 1.)))
      in
      let start = Float.max now t.phase_until +. off in
      t.phase_until <- start +. sample_exp t (1. /. mean_on);
      next_arrival t start
    end
    else begin
      let candidate = now +. sample_exp t (t.total_pps *. burstiness) in
      if candidate < t.phase_until then candidate
      else
        (* the draw crossed the phase end: resume from the boundary,
           where the OFF branch above takes over *)
        next_arrival t t.phase_until
    end

let start t ~until =
  let rec emit () =
    let now = Engine.now t.engine in
    let klass = pick_class t in
    let size, _ = t.classes.(klass) in
    let packet = Packet.make ~id:t.count ~size ~klass ~born:now in
    t.count <- t.count + 1;
    t.on_packet packet;
    let next = next_arrival t now in
    if next < until then Engine.schedule t.engine ~at:next emit
  in
  let first = next_arrival t (Engine.now t.engine) in
  if first < until then Engine.schedule t.engine ~at:first emit

let generated t = t.count
