(** Live streaming metrics, SLO watchdogs, and snapshot exports.

    A registry of per-entity instruments is sampled on a fixed sim-time
    interval, producing delta-encoded {!snapshot}s that stream as
    NDJSON ([schema:"metrics"]) and export cumulatively as OpenMetrics
    text.  SLO {!Slo.rule}s are evaluated against every sampled value
    each interval, with hysteresis, yielding structured {!alert}
    records naming the offending entity.

    Determinism: scalar instruments are read-only probes over state the
    simulator already maintains, so enabling metrics never changes
    simulation results; the histogram's {!observe} allocates nothing.
    Wall-clock/GC numbers from the optional self-{!profiler} are
    exported separately ([schema:"profile"]) and never enter the
    deterministic snapshot stream. *)

(** How a sampled value is presented and evaluated. *)
type kind =
  | Counter  (** cumulative probe; snapshots carry delta and total, SLO
                 rules see the per-interval delta *)
  | Gauge  (** instantaneous level; SLO rules see the level *)
  | Rate
      (** cumulative probe presented as delta/interval — e.g. a busy-
          seconds probe becomes utilization; SLO rules see the rate *)

(** SLO watchdog rules.

    Grammar (one rule per string):
    {v
      [ENTITY.]METRIC>VALUE[xN]   threshold, e.g. *.utilization>0.95
      [ENTITY.]METRIC<VALUE[xN]   lower-bound threshold
      [ENTITY.]METRIC^N           rising for N consecutive intervals
    v}
    [ENTITY] defaults to ["*"] (any entity).  [xN] requires the breach
    to hold for [N] consecutive intervals before the alert fires; the
    same [N] non-breaching intervals clear it (hysteresis). *)
module Slo : sig
  type comparison = Gt | Lt
  type condition = Threshold of comparison * float | Rising

  type rule = {
    r_entity : string;  (** ["*"] matches any entity *)
    r_metric : string;
    r_cond : condition;
    r_for : int;  (** consecutive breaching intervals to fire (>= 1) *)
  }

  val parse : string -> (rule, string) result
  val parse_exn : string -> rule
  val to_string : rule -> string
  (** Round-trips through {!parse}; also the [rule] key in exports. *)

  val matches : rule -> entity:string -> metric:string -> bool
end

type t

type config = {
  interval : float;  (** sim seconds between snapshots (> 0) *)
  slo : Slo.rule list;
  profile : bool;  (** also run the wall-clock self-{!Profile}r *)
  on_snapshot : (snapshot -> unit) option;
      (** called by {!tick} with each completed snapshot *)
}

and snapshot = {
  s_seq : int;  (** 1-based snapshot number *)
  s_time : float;  (** sim time of the tick *)
  s_interval : float;  (** seconds since the previous tick *)
  s_entities : entity_snapshot list;  (** first-registration order *)
  s_alerts : alert_event list;  (** state transitions this interval *)
}

and entity_snapshot = {
  e_name : string;
  e_samples : (string * sample) list;  (** registration order *)
}

and sample =
  | Counter_s of { total : float; delta : float }
  | Gauge_s of { value : float }
  | Rate_s of { value : float; total : float }
  | Hist_s of { count : int; sum : float; p50 : float; p99 : float }
      (** per-interval deltas; [p50]/[p99] are bucket upper bounds of
          the interval's observations *)

and alert_event = {
  ev_rule : string;
  ev_entity : string;
  ev_firing : bool;  (** [true] fired, [false] resolved *)
  ev_value : float;  (** the evaluated value at the transition *)
}

val default_config : config
(** 1 ms interval, no rules, no profiler, no callback. *)

val create : config -> t
(** Raises [Invalid_argument] on a non-positive interval. *)

val config : t -> config

(** {2 Instruments} *)

val register :
  t -> entity:string -> name:string -> kind -> (unit -> float) -> unit
(** Add a scalar instrument backed by a read-only probe. Registration
    order is the deterministic sampling/export order. The probe is
    called once immediately to seed the delta baseline. *)

type histogram

val histogram :
  t -> entity:string -> name:string -> ?bounds:float array -> unit -> histogram
(** A bucketed histogram; [bounds] (default {!default_bounds}) are the
    strictly-increasing finite bucket upper bounds, with a [+inf]
    bucket appended.  Each tick synthesizes [NAME_p50] / [NAME_p99]
    values from the interval's observations for SLO rules to target. *)

val default_bounds : float array
(** Log-spaced, 4 buckets per decade from 100 ns to 1 s. *)

val observe : histogram -> float -> unit
(** Record one observation: unrolled bucket search + integer bump.
    The callee allocates nothing, but without flambda the call itself
    boxes the float argument; on a per-event hot path prefer
    {!observe_span}. *)

val observe_span : histogram -> float array -> from_slot:int -> to_slot:int -> unit
(** [observe_span h fs ~from_slot ~to_slot] records
    [fs.(to_slot) -. fs.(from_slot)]. Only pointers and ints cross the
    call boundary, so the simulator's per-delivery latency hook is
    allocation-free even under the non-flambda compiler. *)

(** {2 Ticks and alerts} *)

val tick : t -> now:float -> snapshot
(** Close the current interval: sample every instrument, compute
    deltas, evaluate SLO rules, invoke [on_snapshot], and (when
    profiling) record a {!Profile} interval row. *)

val snapshots : t -> int
(** Ticks so far. *)

(** Cumulative per-(rule, entity) alert state. *)
type alert = {
  a_rule : Slo.rule;
  a_entity : string;
  mutable a_active : bool;
  mutable a_first_fired : float;  (** sim time; -1 if never fired *)
  mutable a_last_fired : float;  (** last breaching interval while active *)
  mutable a_breaches : int;  (** intervals in breach, fired or not *)
  mutable a_worst : float;  (** most extreme breaching value; nan if none *)
  mutable a_streak : int;
  mutable a_clear_streak : int;
  mutable a_prev : float;
  mutable a_has_prev : bool;
}

val alerts : t -> alert list
(** Every (rule, entity) pair evaluated so far, in first-evaluation
    order — including pairs that never fired. *)

val profiler : t -> Profile.t option
(** The self-profiler owned by this instance when [config.profile]. *)

(** {2 Exports} *)

val snapshot_to_json : snapshot -> Telemetry.Json.t
(** One [schema:"metrics"] document; [Json.to_string] of successive
    snapshots is the NDJSON stream. *)

val snapshot_to_buffer : Buffer.t -> snapshot -> unit
(** Append the snapshot's JSON document to [buf] — byte-identical to
    [Json.to_string (snapshot_to_json s)] but without building the
    tree, which keeps per-tick streaming cost low. *)

val snapshot_to_string : snapshot -> string
(** [snapshot_to_buffer] into a fresh buffer. *)

val alerts_to_json : t -> Telemetry.Json.t
(** [schema:"alerts"] summary of every alert state. *)

val profile_to_json : t -> Telemetry.Json.t option
(** [schema:"profile"] document when profiling is on. *)

val to_openmetrics : t -> string
(** OpenMetrics text exposition of cumulative values at call time
    ([lognic_]-prefixed families, entities as labels, [# EOF]
    terminated). *)
