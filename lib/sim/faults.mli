(** Declarative, deterministic fault injection for simulation runs.

    A plan is a list of timed events over the run horizon — engines
    failing and recovering on a vertex, a medium's bandwidth degrading
    or flapping, a queue being shrunk by firmware, ingress shedding a
    burst — realized inside {!Ip_node}/{!Medium}/{!Netsim} when the run
    executes. Guarantees (enforced by tests and the bench gate):

    - an {e empty} plan is byte-identical to a run that never heard of
      faults: no extra rng stream is split and no per-packet work is
      added;
    - any plan is bit-identical at every [--jobs] setting: the fault rng
      is its own stream (split after the per-node rngs, before the trace
      rng) and is only drawn while a {!Drop_burst} is active.

    The same plan lowers to the analytic side via {!modifiers}, which
    partitions the horizon into maximal constant-fault-set intervals and
    hands each to {!Lognic.Degraded.evaluate} — the basis of the
    [lognic faults] model-vs-sim join. *)

type fault =
  | Engine_down of { vertex : string; engines : int }
      (** [engines] of the vertex's D engines are down; ≥ D means the
          vertex is fully failed *)
  | Medium_degraded of { medium : string; factor : float }
      (** "interface", "memory", or "link-SRC-DST" runs at
          [factor · bandwidth], factor ∈ (0, 1] *)
  | Queue_shrunk of { vertex : string; capacity : int }
      (** the vertex's queue capacity is capped at
          [min capacity N] *)
  | Drop_burst of { probability : float }
      (** each offered packet is shed at ingress with this probability *)

type event = { start : float; stop : float; fault : fault }
(** The fault is active on [\[start, stop)]. *)

type plan = event list
(** Events need not be sorted and may overlap; overlapping faults
    compose (offline engines add, bandwidth factors multiply, capacities
    min-combine, burst survival probabilities multiply). *)

val empty : plan
val is_empty : plan -> bool

val engine_down :
  vertex:string -> engines:int -> start:float -> stop:float -> event

val medium_degraded :
  medium:string -> factor:float -> start:float -> stop:float -> event

val queue_shrunk :
  vertex:string -> capacity:int -> start:float -> stop:float -> event

val drop_burst : probability:float -> start:float -> stop:float -> event
(** Smart constructors; each raises [Invalid_argument] on a bad window
    ([start < 0], [stop ≤ start], non-finite bounds) or an out-of-range
    parameter ([engines < 1], [factor ∉ (0, 1]], [capacity < 1],
    [probability ∉ [0, 1]]). Target names are {e not} checked here —
    the simulator validates them against the realized entities
    ({!Netsim.execute}) and the analytic side ignores unknowns. *)

val fault_label : fault -> string
(** Stable short key used in interval reports: ["engine_down:VERTEX"],
    ["degrade:MEDIUM"], ["queue_shrink:VERTEX"], ["drop_burst"]. *)

val event_to_json : event -> Telemetry.Json.t
val to_json : plan -> Telemetry.Json.t
(** The plan as a JSON array of events (embedded in the [lognic faults]
    report so a result document carries its own scenario). *)

val intervals : duration:float -> plan -> (float * float * event list) list
(** Partition [\[0, duration)] at every (clipped) event boundary into
    maximal intervals whose active-event set is constant, in
    chronological order; each interval carries its active events in plan
    order. The empty plan yields the single healthy interval
    [\[0, duration)]. Raises [Invalid_argument] on a non-positive
    duration. *)

val modifiers :
  duration:float -> plan -> (float * float * Lognic.Degraded.modifier) list
(** {!intervals} lowered for {!Lognic.Degraded.evaluate}: active faults
    of each interval folded into one composed modifier. *)

val pp : Format.formatter -> plan -> unit
