module G = Lognic.Graph
module J = Telemetry.Json

type entity_row = {
  name : string;
  model_utilization : float;
  sim_utilization : float;
  residual : float;
  model_queueing : float option;
  model_queue_depth : float option;
  sim_queue_depth : float option;
  model_drop_probability : float option;
  drops : int;
}

type report = {
  model : Lognic.Estimate.report;
  measurement : Netsim.measurement;
  rows : entity_row list;
  model_bottleneck : string;
  sim_bottleneck : string;
  agree : bool;
  model_throughput : float;
  sim_throughput : float;
  throughput_error : float;
  model_latency : float;
  sim_latency : float;
  latency_error : float;
}

let bound_name g = function
  | Lognic.Throughput.Vertex_bound id -> (G.vertex g id).G.label
  | Lognic.Throughput.Edge_bound (s, d) -> Printf.sprintf "link-%d-%d" s d
  | Lognic.Throughput.Interface_bound -> "interface"
  | Lognic.Throughput.Memory_bound -> "memory"
  | Lognic.Throughput.Offered_load -> "offered-load"

let relative_error ~model ~sim =
  let scale = Float.max (Float.abs sim) (Float.abs model) in
  if scale <= 0. then 0. else Float.abs (model -. sim) /. scale

(* Mean of a sampled series' values; [None] when nothing was sampled. *)
let series_mean series label =
  List.find_opt (fun s -> Telemetry.Series.label s = label) series
  |> Option.map Telemetry.Series.to_array
  |> fun a ->
  match a with
  | Some samples when Array.length samples > 0 ->
    Some (Lognic_numerics.Stats.mean (Array.map snd samples))
  | _ -> None

let run ?config ?queue_model g ~hw ~traffic =
  let model = Lognic.Estimate.run ?queue_model g ~hw ~traffic in
  let config = Option.value config ~default:Netsim.default_config in
  (* The join needs sampled queue depths; default the probe interval to
     a fine grid when the caller didn't pick one. *)
  let config =
    match config.Netsim.sample_interval with
    | Some _ -> config
    | None ->
      { config with Netsim.sample_interval = Some (config.duration /. 256.) }
  in
  let measurement = Netsim.run_single ~config g ~hw ~traffic in
  let tp = model.Lognic.Estimate.throughput in
  let lat = model.Lognic.Estimate.latency in
  let attained = tp.Lognic.Throughput.attained in
  let medium_row label =
    List.find_opt
      (fun (s : Netsim.medium_stats) -> s.mlabel = label)
      measurement.Netsim.medium_stats
  in
  let vertex_rows =
    List.filter_map
      (fun (vid, cap) ->
        let v = G.vertex g vid in
        let stats =
          List.find_opt
            (fun (s : Netsim.vertex_stats) -> s.vid = vid)
            measurement.Netsim.vertex_stats
        in
        match stats with
        | None -> None
        | Some s ->
          let terms =
            List.find_opt
              (fun (t : Lognic.Latency.vertex_terms) -> t.vid = vid)
              lat.Lognic.Latency.per_vertex
          in
          let model_utilization = if cap > 0. then attained /. cap else 0. in
          let model_queueing =
            Option.map (fun (t : Lognic.Latency.vertex_terms) -> t.queueing) terms
          in
          let model_drop_probability =
            Option.map
              (fun (t : Lognic.Latency.vertex_terms) -> t.drop_probability)
              terms
          in
          (* Little's law on the vertex's virtual shared queue: expected
             packets in system = packet arrival rate × (Q + C/A). *)
          let model_queue_depth =
            Option.map
              (fun (t : Lognic.Latency.vertex_terms) ->
                let pkt_rate =
                  traffic.Lognic.Traffic.rate
                  *. Lognic.Throughput.vertex_inflow g vid
                  /. traffic.Lognic.Traffic.packet_size
                in
                pkt_rate *. (t.queueing +. t.service))
              terms
          in
          Some
            {
              name = v.G.label;
              model_utilization;
              sim_utilization = s.utilization;
              residual = s.utilization -. Float.min 1. model_utilization;
              model_queueing;
              model_queue_depth;
              sim_queue_depth =
                series_mean measurement.Netsim.series (v.G.label ^ ".depth");
              model_drop_probability;
              drops = s.drops;
            })
      tp.Lognic.Throughput.vertex_caps
  in
  let shared_medium name cap sim_utilization =
    let drops =
      match medium_row name with
      | Some s -> s.Netsim.m_rejections
      | None -> 0
    in
    let model_utilization =
      if cap > 0. && cap < infinity then attained /. cap else 0.
    in
    {
      name;
      model_utilization;
      sim_utilization;
      residual = sim_utilization -. Float.min 1. model_utilization;
      model_queueing = None;
      model_queue_depth = None;
      sim_queue_depth =
        series_mean measurement.Netsim.series (name ^ ".backlog");
      model_drop_probability = None;
      drops;
    }
  in
  let medium_rows =
    [
      shared_medium "interface" tp.Lognic.Throughput.interface_cap
        measurement.Netsim.interface_utilization;
      shared_medium "memory" tp.Lognic.Throughput.memory_cap
        measurement.Netsim.memory_utilization;
    ]
    @ List.filter_map
        (fun ((s, d), cap) ->
          let name = Printf.sprintf "link-%d-%d" s d in
          Option.map
            (fun (m : Netsim.medium_stats) ->
              shared_medium name cap m.m_utilization)
            (medium_row name))
        tp.Lognic.Throughput.edge_caps
  in
  let rows =
    List.stable_sort
      (fun a b -> Float.compare b.sim_utilization a.sim_utilization)
      (vertex_rows @ medium_rows)
  in
  let model_bottleneck = bound_name g tp.Lognic.Throughput.bottleneck in
  let sim_bottleneck =
    match rows with [] -> "none" | top :: _ -> top.name
  in
  let sim_throughput = measurement.Netsim.summary.Telemetry.throughput in
  let sim_latency = measurement.Netsim.summary.Telemetry.mean_latency in
  let model_latency = lat.Lognic.Latency.mean in
  {
    model;
    measurement;
    rows;
    model_bottleneck;
    sim_bottleneck;
    agree = String.equal model_bottleneck sim_bottleneck;
    model_throughput = attained;
    sim_throughput;
    throughput_error = relative_error ~model:attained ~sim:sim_throughput;
    model_latency;
    sim_latency;
    latency_error = relative_error ~model:model_latency ~sim:sim_latency;
  }

let opt_float = function None -> J.Null | Some x -> J.Num x

let row_to_json rank r =
  J.Obj
    [
      ("rank", J.Num (float_of_int rank));
      ("entity", J.Str r.name);
      ("model_utilization", J.Num r.model_utilization);
      ("sim_utilization", J.Num r.sim_utilization);
      ("residual", J.Num r.residual);
      ("model_queueing_s", opt_float r.model_queueing);
      ("model_queue_depth", opt_float r.model_queue_depth);
      ("sim_queue_depth", opt_float r.sim_queue_depth);
      ("model_drop_probability", opt_float r.model_drop_probability);
      ("drops", J.Num (float_of_int r.drops));
    ]

let to_json t =
  J.versioned ~kind:"explain"
    [
      ( "model",
        J.Obj
          [
            ("throughput", J.Num t.model_throughput);
            ("latency", J.Num t.model_latency);
            ("bottleneck", J.Str t.model_bottleneck);
          ] );
      ( "sim",
        J.Obj
          [
            ("throughput", J.Num t.sim_throughput);
            ("latency", J.Num t.sim_latency);
            ("bottleneck", J.Str t.sim_bottleneck);
          ] );
      ("agree", J.Bool t.agree);
      ("throughput_error", J.Num t.throughput_error);
      ("latency_error", J.Num t.latency_error);
      ("entities", J.Arr (List.mapi (fun i r -> row_to_json (i + 1) r) t.rows));
    ]

let to_string t = J.to_string (to_json t)

let pp ppf t =
  let pct x = 100. *. x in
  Format.fprintf ppf "explain: model vs simulation@\n";
  Format.fprintf ppf
    "  throughput  model %.4g B/s   sim %.4g B/s   error %.1f%%@\n"
    t.model_throughput t.sim_throughput (pct t.throughput_error);
  Format.fprintf ppf
    "  latency     model %.4g s     sim %.4g s     error %.1f%%@\n"
    t.model_latency t.sim_latency (pct t.latency_error);
  Format.fprintf ppf "  bottleneck  model=%s  sim=%s  (%s)@\n"
    t.model_bottleneck t.sim_bottleneck
    (if t.agree then "agree" else "disagree");
  Format.fprintf ppf
    "  %-4s %-16s %9s %9s %9s %11s %9s %6s@\n" "rank" "entity" "model-u"
    "sim-u" "residual" "modelQ(pkt)" "simQ" "drops";
  List.iteri
    (fun i r ->
      let opt = function None -> "-" | Some x -> Printf.sprintf "%.3g" x in
      Format.fprintf ppf "  %-4d %-16s %9.3f %9.3f %+9.3f %11s %9s %6d@\n"
        (i + 1) r.name r.model_utilization r.sim_utilization r.residual
        (opt r.model_queue_depth) (opt r.sim_queue_depth) r.drops)
    t.rows

let to_text t = Format.asprintf "%a" pp t
