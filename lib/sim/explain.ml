module G = Lognic.Graph
module J = Telemetry.Json

type entity_row = {
  name : string;
  model_utilization : float;
  sim_utilization : float;
  residual : float;
  model_queueing : float option;
  model_queue_depth : float option;
  sim_queue_depth : float option;
  model_drop_probability : float option;
  drops : int;
}

type report = {
  model : Lognic.Estimate.report;
  measurement : Netsim.measurement;
  rows : entity_row list;
  model_bottleneck : string;
  sim_bottleneck : string;
  agree : bool;
  model_throughput : float;
  sim_throughput : float;
  throughput_error : float;
  model_latency : float;
  sim_latency : float;
  latency_error : float;
}

let bound_name g = function
  | Lognic.Throughput.Vertex_bound id -> (G.vertex g id).G.label
  | Lognic.Throughput.Edge_bound (s, d) -> Printf.sprintf "link-%d-%d" s d
  | Lognic.Throughput.Interface_bound -> "interface"
  | Lognic.Throughput.Memory_bound -> "memory"
  | Lognic.Throughput.Resource_bound name -> "resource:" ^ name
  | Lognic.Throughput.Offered_load -> "offered-load"

let relative_error ~model ~sim =
  let scale = Float.max (Float.abs sim) (Float.abs model) in
  if scale <= 0. then 0. else Float.abs (model -. sim) /. scale

(* Mean of a sampled series' values; [None] when nothing was sampled. *)
let series_mean series label =
  List.find_opt (fun s -> Telemetry.Series.label s = label) series
  |> Option.map Telemetry.Series.to_array
  |> fun a ->
  match a with
  | Some samples when Array.length samples > 0 ->
    Some (Lognic_numerics.Stats.mean (Array.map snd samples))
  | _ -> None

let run ?config ?queue_model g ~hw ~traffic =
  let model = Lognic.Estimate.run ?queue_model g ~hw ~traffic in
  let config = Option.value config ~default:Netsim.default_config in
  (* The join needs sampled queue depths; default the probe interval to
     a fine grid when the caller didn't pick one. *)
  let config =
    match config.Netsim.sample_interval with
    | Some _ -> config
    | None ->
      { config with Netsim.sample_interval = Some (config.duration /. 256.) }
  in
  let measurement = Netsim.run_single ~config g ~hw ~traffic in
  let tp = model.Lognic.Estimate.throughput in
  let lat = model.Lognic.Estimate.latency in
  let attained = tp.Lognic.Throughput.attained in
  let medium_row label =
    List.find_opt
      (fun (s : Netsim.medium_stats) -> s.mlabel = label)
      measurement.Netsim.medium_stats
  in
  let vertex_rows =
    List.filter_map
      (fun (vid, cap) ->
        let v = G.vertex g vid in
        let stats =
          List.find_opt
            (fun (s : Netsim.vertex_stats) -> s.vid = vid)
            measurement.Netsim.vertex_stats
        in
        match stats with
        | None -> None
        | Some s ->
          let terms =
            List.find_opt
              (fun (t : Lognic.Latency.vertex_terms) -> t.vid = vid)
              lat.Lognic.Latency.per_vertex
          in
          let model_utilization = if cap > 0. then attained /. cap else 0. in
          let model_queueing =
            Option.map (fun (t : Lognic.Latency.vertex_terms) -> t.queueing) terms
          in
          let model_drop_probability =
            Option.map
              (fun (t : Lognic.Latency.vertex_terms) -> t.drop_probability)
              terms
          in
          (* Little's law on the vertex's virtual shared queue: expected
             packets in system = packet arrival rate × (Q + C/A). *)
          let model_queue_depth =
            Option.map
              (fun (t : Lognic.Latency.vertex_terms) ->
                let pkt_rate =
                  traffic.Lognic.Traffic.rate
                  *. Lognic.Throughput.vertex_inflow g vid
                  /. traffic.Lognic.Traffic.packet_size
                in
                pkt_rate *. (t.queueing +. t.service))
              terms
          in
          Some
            {
              name = v.G.label;
              model_utilization;
              sim_utilization = s.utilization;
              residual = s.utilization -. Float.min 1. model_utilization;
              model_queueing;
              model_queue_depth;
              sim_queue_depth =
                series_mean measurement.Netsim.series (v.G.label ^ ".depth");
              model_drop_probability;
              drops = s.drops;
            })
      tp.Lognic.Throughput.vertex_caps
  in
  let shared_medium name cap sim_utilization =
    let drops =
      match medium_row name with
      | Some s -> s.Netsim.m_rejections
      | None -> 0
    in
    let model_utilization =
      if cap > 0. && cap < infinity then attained /. cap else 0.
    in
    {
      name;
      model_utilization;
      sim_utilization;
      residual = sim_utilization -. Float.min 1. model_utilization;
      model_queueing = None;
      model_queue_depth = None;
      sim_queue_depth =
        series_mean measurement.Netsim.series (name ^ ".backlog");
      model_drop_probability = None;
      drops;
    }
  in
  let medium_rows =
    [
      shared_medium "interface" tp.Lognic.Throughput.interface_cap
        measurement.Netsim.interface_utilization;
      shared_medium "memory" tp.Lognic.Throughput.memory_cap
        measurement.Netsim.memory_utilization;
    ]
    @ List.filter_map
        (fun ((s, d), cap) ->
          let name = Printf.sprintf "link-%d-%d" s d in
          Option.map
            (fun (m : Netsim.medium_stats) ->
              shared_medium name cap m.m_utilization)
            (medium_row name))
        tp.Lognic.Throughput.edge_caps
  in
  let rows =
    List.stable_sort
      (fun a b -> Float.compare b.sim_utilization a.sim_utilization)
      (vertex_rows @ medium_rows)
  in
  let model_bottleneck = bound_name g tp.Lognic.Throughput.bottleneck in
  let sim_bottleneck =
    match rows with [] -> "none" | top :: _ -> top.name
  in
  let sim_throughput = measurement.Netsim.summary.Telemetry.throughput in
  let sim_latency = measurement.Netsim.summary.Telemetry.mean_latency in
  let model_latency = lat.Lognic.Latency.mean in
  {
    model;
    measurement;
    rows;
    model_bottleneck;
    sim_bottleneck;
    agree = String.equal model_bottleneck sim_bottleneck;
    model_throughput = attained;
    sim_throughput;
    throughput_error = relative_error ~model:attained ~sim:sim_throughput;
    model_latency;
    sim_latency;
    latency_error = relative_error ~model:model_latency ~sim:sim_latency;
  }

let opt_float = function None -> J.Null | Some x -> J.Num x

let row_to_json rank r =
  J.Obj
    [
      ("rank", J.Num (float_of_int rank));
      ("entity", J.Str r.name);
      ("model_utilization", J.Num r.model_utilization);
      ("sim_utilization", J.Num r.sim_utilization);
      ("residual", J.Num r.residual);
      ("model_queueing_s", opt_float r.model_queueing);
      ("model_queue_depth", opt_float r.model_queue_depth);
      ("sim_queue_depth", opt_float r.sim_queue_depth);
      ("model_drop_probability", opt_float r.model_drop_probability);
      ("drops", J.Num (float_of_int r.drops));
    ]

let to_json t =
  J.versioned ~kind:"explain"
    [
      ( "model",
        J.Obj
          [
            ("throughput", J.Num t.model_throughput);
            ("latency", J.Num t.model_latency);
            ("bottleneck", J.Str t.model_bottleneck);
          ] );
      ( "sim",
        J.Obj
          [
            ("throughput", J.Num t.sim_throughput);
            ("latency", J.Num t.sim_latency);
            ("bottleneck", J.Str t.sim_bottleneck);
          ] );
      ("agree", J.Bool t.agree);
      ("throughput_error", J.Num t.throughput_error);
      ("latency_error", J.Num t.latency_error);
      ("entities", J.Arr (List.mapi (fun i r -> row_to_json (i + 1) r) t.rows));
    ]

let to_string t = J.to_string (to_json t)

let pp ppf t =
  let pct x = 100. *. x in
  Format.fprintf ppf "explain: model vs simulation@\n";
  Format.fprintf ppf
    "  throughput  model %.4g B/s   sim %.4g B/s   error %.1f%%@\n"
    t.model_throughput t.sim_throughput (pct t.throughput_error);
  Format.fprintf ppf
    "  latency     model %.4g s     sim %.4g s     error %.1f%%@\n"
    t.model_latency t.sim_latency (pct t.latency_error);
  Format.fprintf ppf "  bottleneck  model=%s  sim=%s  (%s)@\n"
    t.model_bottleneck t.sim_bottleneck
    (if t.agree then "agree" else "disagree");
  Format.fprintf ppf
    "  %-4s %-16s %9s %9s %9s %11s %9s %6s@\n" "rank" "entity" "model-u"
    "sim-u" "residual" "modelQ(pkt)" "simQ" "drops";
  List.iteri
    (fun i r ->
      let opt = function None -> "-" | Some x -> Printf.sprintf "%.3g" x in
      Format.fprintf ppf "  %-4d %-16s %9.3f %9.3f %+9.3f %11s %9s %6d@\n"
        (i + 1) r.name r.model_utilization r.sim_utilization r.residual
        (opt r.model_queue_depth) (opt r.sim_queue_depth) r.drops)
    t.rows

let to_text t = Format.asprintf "%a" pp t

(* ---- traffic mixes -------------------------------------------------- *)

type class_row = {
  c_traffic : Lognic.Traffic.t;
  c_weight : float;
  c_model_throughput : float;
  c_sim_throughput : float;
  c_throughput_error : float;
  c_model_latency : float;
  c_sim_latency : float option;
  c_latency_error : float option;
  c_model_bottleneck : string;
}

type mix_report = {
  mix_model : Lognic.Extensions.mixed_report;
  mix_measurement : Netsim.measurement;
  class_rows : class_row list;
  mix_rows : entity_row list;
  mix_model_bottleneck : string;
  mix_sim_bottleneck : string;
  mix_agree : bool;
  mix_model_throughput : float;
  mix_sim_throughput : float;
  mix_throughput_error : float;
  mix_model_latency : float;
  mix_sim_latency : float;
  mix_latency_error : float;
}

let run_mix ?config ?queue_model ?contention g ~hw ~mix =
  let model = Lognic.Estimate.run_mix ?queue_model ?contention g ~hw ~mix in
  let config = Option.value config ~default:Netsim.default_config in
  let config =
    match config.Netsim.sample_interval with
    | Some _ -> config
    | None ->
      { config with Netsim.sample_interval = Some (config.duration /. 256.) }
  in
  let measurement = Netsim.run ~config g ~hw ~mix in
  let summary = measurement.Netsim.summary in
  let window = summary.Telemetry.window in
  let classes = model.Lognic.Extensions.classes in
  let class_rows =
    List.mapi
      (fun i ((cls : Lognic.Traffic.t), w, (tp : Lognic.Throughput.result), (lat : Lognic.Latency.result)) ->
        let delivered, sim_mean =
          match
            List.find_opt
              (fun (c, _, _) -> c = i)
              summary.Telemetry.per_class
          with
          | Some (_, d, m) -> (d, m)
          | None -> (0, 0.)
        in
        let c_sim_throughput =
          if window > 0. then
            float_of_int delivered *. cls.packet_size /. window
          else 0.
        in
        let c_sim_latency = if delivered > 0 then Some sim_mean else None in
        {
          c_traffic = cls;
          c_weight = w;
          c_model_throughput = tp.attained;
          c_sim_throughput;
          c_throughput_error =
            relative_error ~model:tp.attained ~sim:c_sim_throughput;
          c_model_latency = lat.mean;
          c_sim_latency;
          c_latency_error =
            Option.map
              (fun sim -> relative_error ~model:lat.mean ~sim)
              c_sim_latency;
          c_model_bottleneck = bound_name g tp.bottleneck;
        })
      classes
  in
  (* Shared-entity view: roofline caps are traffic-independent (Eq 4),
     so one plain evaluation supplies them; the joint utilization is
     the classes' summed carried rate over each cap. Queue depths sum
     per-class Little's-law terms over the union streams. *)
  let first_cls = match classes with (c, _, _, _) :: _ -> c | [] -> assert false in
  let caps = Lognic.Throughput.evaluate g ~hw ~traffic:first_cls in
  let total_attained = model.Lognic.Extensions.throughput in
  let vertex_rows =
    List.filter_map
      (fun (vid, cap) ->
        let v = G.vertex g vid in
        match
          List.find_opt
            (fun (s : Netsim.vertex_stats) -> s.vid = vid)
            measurement.Netsim.vertex_stats
        with
        | None -> None
        | Some s ->
          let per_class_terms =
            List.filter_map
              (fun ((cls : Lognic.Traffic.t), w, _, (lat : Lognic.Latency.result)) ->
                Option.map
                  (fun (t : Lognic.Latency.vertex_terms) -> (cls, w, t))
                  (List.find_opt
                     (fun (t : Lognic.Latency.vertex_terms) -> t.vid = vid)
                     lat.Lognic.Latency.per_vertex))
              classes
          in
          let model_queue_depth =
            match per_class_terms with
            | [] -> None
            | terms ->
              Some
                (List.fold_left
                   (fun acc ((cls : Lognic.Traffic.t), _, (t : Lognic.Latency.vertex_terms)) ->
                     let pkt_rate =
                       cls.rate
                       *. Lognic.Throughput.vertex_inflow g vid
                       /. cls.packet_size
                     in
                     acc +. (pkt_rate *. (t.queueing +. t.service)))
                   0. terms)
          in
          let weighted f =
            match per_class_terms with
            | [] -> None
            | terms ->
              Some (List.fold_left (fun acc (_, w, t) -> acc +. (w *. f t)) 0. terms)
          in
          let model_utilization =
            if cap > 0. then total_attained /. cap else 0.
          in
          Some
            {
              name = v.G.label;
              model_utilization;
              sim_utilization = s.utilization;
              residual = s.utilization -. Float.min 1. model_utilization;
              model_queueing =
                weighted (fun (t : Lognic.Latency.vertex_terms) -> t.queueing);
              model_queue_depth;
              sim_queue_depth =
                series_mean measurement.Netsim.series (v.G.label ^ ".depth");
              model_drop_probability =
                weighted (fun (t : Lognic.Latency.vertex_terms) ->
                    t.drop_probability);
              drops = s.drops;
            })
      caps.Lognic.Throughput.vertex_caps
  in
  let medium_row label =
    List.find_opt
      (fun (s : Netsim.medium_stats) -> s.mlabel = label)
      measurement.Netsim.medium_stats
  in
  let shared_medium name cap sim_utilization =
    let drops =
      match medium_row name with Some s -> s.Netsim.m_rejections | None -> 0
    in
    let model_utilization =
      if cap > 0. && cap < infinity then total_attained /. cap else 0.
    in
    {
      name;
      model_utilization;
      sim_utilization;
      residual = sim_utilization -. Float.min 1. model_utilization;
      model_queueing = None;
      model_queue_depth = None;
      sim_queue_depth = series_mean measurement.Netsim.series (name ^ ".backlog");
      model_drop_probability = None;
      drops;
    }
  in
  let medium_rows =
    [
      shared_medium "interface" caps.Lognic.Throughput.interface_cap
        measurement.Netsim.interface_utilization;
      shared_medium "memory" caps.Lognic.Throughput.memory_cap
        measurement.Netsim.memory_utilization;
    ]
    @ List.filter_map
        (fun ((s, d), cap) ->
          let name = Printf.sprintf "link-%d-%d" s d in
          Option.map
            (fun (m : Netsim.medium_stats) ->
              shared_medium name cap m.m_utilization)
            (medium_row name))
        caps.Lognic.Throughput.edge_caps
  in
  let mix_rows =
    List.stable_sort
      (fun a b -> Float.compare b.sim_utilization a.sim_utilization)
      (vertex_rows @ medium_rows)
  in
  (* the joint model bottleneck: the bound of the class with the
     tightest capacity, the mix-level analogue of [report.model_bottleneck] *)
  let mix_model_bottleneck =
    match
      List.stable_sort
        (fun (_, _, (a : Lognic.Throughput.result), _)
             (_, _, (b : Lognic.Throughput.result), _) ->
          Float.compare a.capacity b.capacity)
        classes
    with
    | (_, _, tp, _) :: _ -> bound_name g tp.Lognic.Throughput.bottleneck
    | [] -> "none"
  in
  let mix_sim_bottleneck =
    match mix_rows with [] -> "none" | top :: _ -> top.name
  in
  let mix_sim_throughput = summary.Telemetry.throughput in
  let mix_sim_latency = summary.Telemetry.mean_latency in
  let mix_model_latency = model.Lognic.Extensions.latency in
  {
    mix_model = model;
    mix_measurement = measurement;
    class_rows;
    mix_rows;
    mix_model_bottleneck;
    mix_sim_bottleneck;
    mix_agree = String.equal mix_model_bottleneck mix_sim_bottleneck;
    mix_model_throughput = total_attained;
    mix_sim_throughput;
    mix_throughput_error =
      relative_error ~model:total_attained ~sim:mix_sim_throughput;
    mix_model_latency;
    mix_sim_latency;
    mix_latency_error =
      relative_error ~model:mix_model_latency ~sim:mix_sim_latency;
  }

let class_row_to_json i r =
  J.Obj
    [
      ("class", J.Num (float_of_int i));
      ("rate", J.Num r.c_traffic.Lognic.Traffic.rate);
      ("packet_size", J.Num r.c_traffic.Lognic.Traffic.packet_size);
      ("weight", J.Num r.c_weight);
      ("model_throughput", J.Num r.c_model_throughput);
      ("sim_throughput", J.Num r.c_sim_throughput);
      ("throughput_error", J.Num r.c_throughput_error);
      ("model_latency", J.Num r.c_model_latency);
      ("sim_latency", opt_float r.c_sim_latency);
      ("latency_error", opt_float r.c_latency_error);
      ("model_bottleneck", J.Str r.c_model_bottleneck);
    ]

let mix_to_json t =
  J.versioned ~kind:"explain"
    [
      ( "model",
        J.Obj
          [
            ("throughput", J.Num t.mix_model_throughput);
            ("latency", J.Num t.mix_model_latency);
            ("bottleneck", J.Str t.mix_model_bottleneck);
          ] );
      ( "sim",
        J.Obj
          [
            ("throughput", J.Num t.mix_sim_throughput);
            ("latency", J.Num t.mix_sim_latency);
            ("bottleneck", J.Str t.mix_sim_bottleneck);
          ] );
      ("agree", J.Bool t.mix_agree);
      ("throughput_error", J.Num t.mix_throughput_error);
      ("latency_error", J.Num t.mix_latency_error);
      ( "classes",
        J.Arr (List.mapi (fun i r -> class_row_to_json i r) t.class_rows) );
      ( "entities",
        J.Arr (List.mapi (fun i r -> row_to_json (i + 1) r) t.mix_rows) );
    ]

let mix_to_string t = J.to_string (mix_to_json t)

let pp_mix ppf t =
  let pct x = 100. *. x in
  Format.fprintf ppf "explain: model vs simulation (%d-class mix)@\n"
    (List.length t.class_rows);
  Format.fprintf ppf
    "  throughput  model %.4g B/s   sim %.4g B/s   error %.1f%%@\n"
    t.mix_model_throughput t.mix_sim_throughput (pct t.mix_throughput_error);
  Format.fprintf ppf
    "  latency     model %.4g s     sim %.4g s     error %.1f%%@\n"
    t.mix_model_latency t.mix_sim_latency (pct t.mix_latency_error);
  Format.fprintf ppf "  bottleneck  model=%s  sim=%s  (%s)@\n"
    t.mix_model_bottleneck t.mix_sim_bottleneck
    (if t.mix_agree then "agree" else "disagree");
  Format.fprintf ppf "  %-5s %9s %7s %12s %12s %8s %12s %12s %8s@\n" "class"
    "size" "weight" "model-tput" "sim-tput" "t-err" "model-lat" "sim-lat"
    "l-err";
  List.iteri
    (fun i r ->
      let opt = function None -> "-" | Some x -> Printf.sprintf "%.4g" x in
      let opt_pct = function
        | None -> "-"
        | Some x -> Printf.sprintf "%.1f%%" (pct x)
      in
      Format.fprintf ppf "  %-5d %9.0f %7.3f %12.4g %12.4g %7.1f%% %12.4g %12s %8s@\n"
        i r.c_traffic.Lognic.Traffic.packet_size r.c_weight
        r.c_model_throughput r.c_sim_throughput
        (pct r.c_throughput_error) r.c_model_latency (opt r.c_sim_latency)
        (opt_pct r.c_latency_error))
    t.class_rows;
  Format.fprintf ppf
    "  %-4s %-16s %9s %9s %9s %11s %9s %6s@\n" "rank" "entity" "model-u"
    "sim-u" "residual" "modelQ(pkt)" "simQ" "drops";
  List.iteri
    (fun i r ->
      let opt = function None -> "-" | Some x -> Printf.sprintf "%.3g" x in
      Format.fprintf ppf "  %-4d %-16s %9.3f %9.3f %+9.3f %11s %9s %6d@\n"
        (i + 1) r.name r.model_utilization r.sim_utilization r.residual
        (opt r.model_queue_depth) (opt r.sim_queue_depth) r.drops)
    t.mix_rows

let mix_to_text t = Format.asprintf "%a" pp_mix t

(* ---- tenants -------------------------------------------------------- *)

type tenant_row = {
  tn_name : string;
  tn_weight : int;
  tn_share : float;
  tn_model_throughput : float;
  tn_sim_throughput : float;
  tn_throughput_error : float;
  tn_model_latency : float;
  tn_sim_latency : float option;
  tn_latency_error : float option;
  tn_model_blocking : float option;
  tn_slo_p99 : float option;
  tn_slo_ok : bool option;
}

type tenant_report = {
  tr_stats : Tenant.stats;
  tr_measurement : Netsim.measurement;
  tr_rows : tenant_row list;
  tr_model_bottleneck : string;
  tr_differentiated : bool;
  tr_model_throughput : float;
  tr_sim_throughput : float;
  tr_throughput_error : float;
  tr_model_latency : float;
  tr_sim_latency : float;
  tr_latency_error : float;
  tr_fairness : Tenant.fairness;
}

let run_tenants ?config ?queue_model g ~hw ~traffic ~tenants =
  let model = Lognic.Estimate.run ?queue_model g ~hw ~traffic in
  let config = Option.value config ~default:Netsim.default_config in
  let config = { config with Netsim.tenants = Some tenants } in
  let measurement = Netsim.run_single ~config g ~hw ~traffic in
  let stats =
    match measurement.Netsim.tenants with
    | Some s -> s
    | None -> assert false (* config carried the tenant set *)
  in
  let tp = model.Lognic.Estimate.throughput in
  let lat = model.Lognic.Estimate.latency in
  let attained = tp.Lognic.Throughput.attained in
  let agg_latency = lat.Lognic.Latency.mean in
  let shares = Tenant.shares tenants in
  let weights = Array.map float_of_int (Tenant.weights tenants) in
  let n = Tenant.count tenants in
  (* The per-tenant analytic decomposition needs a vertex to decompose:
     when the model's bottleneck is an IP vertex, the shared engine
     pool there is evaluated as a weighted multi-class M/M/c/N
     ({!Lognic_queueing.Wmmcn}) with each tenant's arrival stream; any
     other bound (interface / memory / link / offered-load) serves
     tenants indistinguishably, so the model predicts no per-tenant
     differentiation and every tenant gets the aggregate prediction
     scaled by its share. *)
  let per_tenant =
    match tp.Lognic.Throughput.bottleneck with
    | Lognic.Throughput.Vertex_bound vid ->
      let v = G.vertex g vid in
      let cap =
        match List.assoc_opt vid tp.Lognic.Throughput.vertex_caps with
        | Some c -> c
        | None -> 0.
      in
      if cap <= 0. || cap = infinity then None
      else begin
        let size = traffic.Lognic.Traffic.packet_size in
        let servers = v.G.service.G.parallelism in
        let mu = cap /. (float_of_int servers *. size) in
        let lambda_total = traffic.Lognic.Traffic.rate /. size in
        let lambda = Array.map (fun s -> s *. lambda_total) shares in
        let capacity = servers + v.G.service.G.queue_capacity in
        let results =
          Lognic_queueing.Wmmcn.evaluate ~lambda ~mu ~servers ~capacity
            ~weights
        in
        (* the aggregate model's wait at that same vertex, replaced by
           the tenant-specific Wmmcn wait in the per-tenant latency *)
        let agg_wait =
          match
            List.find_opt
              (fun (t : Lognic.Latency.vertex_terms) -> t.vid = vid)
              lat.Lognic.Latency.per_vertex
          with
          | Some t -> t.Lognic.Latency.queueing
          | None -> 0.
        in
        Some
          (Array.init n (fun i ->
               let r = results.(i) in
               let throughput =
                 lambda.(i) *. (1. -. r.Lognic_queueing.Wmmcn.blocking) *. size
               in
               let latency =
                 Float.max 0.
                   (agg_latency -. agg_wait
                   +. r.Lognic_queueing.Wmmcn.waiting)
               in
               (throughput, latency, Some r.Lognic_queueing.Wmmcn.blocking)))
      end
    | _ -> None
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (r : Tenant.row) ->
           let model_throughput, model_latency, model_blocking =
             match per_tenant with
             | Some a -> a.(i)
             | None -> (shares.(i) *. attained, agg_latency, None)
           in
           let sim_latency =
             if r.Tenant.r_delivered > 0 then Some r.Tenant.r_mean_latency
             else None
           in
           {
             tn_name = r.Tenant.r_name;
             tn_weight = r.Tenant.r_weight;
             tn_share = r.Tenant.r_share;
             tn_model_throughput = model_throughput;
             tn_sim_throughput = r.Tenant.r_throughput;
             tn_throughput_error =
               relative_error ~model:model_throughput
                 ~sim:r.Tenant.r_throughput;
             tn_model_latency = model_latency;
             tn_sim_latency = sim_latency;
             tn_latency_error =
               Option.map
                 (fun sim -> relative_error ~model:model_latency ~sim)
                 sim_latency;
             tn_model_blocking = model_blocking;
             tn_slo_p99 = r.Tenant.r_slo_p99;
             tn_slo_ok = r.Tenant.r_slo_ok;
           })
         stats.Tenant.rows)
  in
  let sim_throughput = measurement.Netsim.summary.Telemetry.throughput in
  let sim_latency = measurement.Netsim.summary.Telemetry.mean_latency in
  {
    tr_stats = stats;
    tr_measurement = measurement;
    tr_rows = rows;
    tr_model_bottleneck = bound_name g tp.Lognic.Throughput.bottleneck;
    tr_differentiated = per_tenant <> None;
    tr_model_throughput = attained;
    tr_sim_throughput = sim_throughput;
    tr_throughput_error = relative_error ~model:attained ~sim:sim_throughput;
    tr_model_latency = agg_latency;
    tr_sim_latency = sim_latency;
    tr_latency_error = relative_error ~model:agg_latency ~sim:sim_latency;
    tr_fairness = stats.Tenant.t_fairness;
  }

let opt_bool = function None -> J.Null | Some b -> J.Bool b

let tenant_row_to_json r =
  J.Obj
    [
      ("name", J.Str r.tn_name);
      ("weight", J.Num (float_of_int r.tn_weight));
      ("share", J.Num r.tn_share);
      ("model_throughput", J.Num r.tn_model_throughput);
      ("sim_throughput", J.Num r.tn_sim_throughput);
      ("throughput_error", J.Num r.tn_throughput_error);
      ("model_latency", J.Num r.tn_model_latency);
      ("sim_latency", opt_float r.tn_sim_latency);
      ("latency_error", opt_float r.tn_latency_error);
      ("model_blocking", opt_float r.tn_model_blocking);
      ("slo_p99", opt_float r.tn_slo_p99);
      ("slo_ok", opt_bool r.tn_slo_ok);
    ]

let tenants_to_json t =
  J.versioned ~kind:"tenants"
    [
      ( "model",
        J.Obj
          [
            ("throughput", J.Num t.tr_model_throughput);
            ("latency", J.Num t.tr_model_latency);
            ("bottleneck", J.Str t.tr_model_bottleneck);
            ("differentiated", J.Bool t.tr_differentiated);
          ] );
      ( "sim",
        J.Obj
          [
            ("throughput", J.Num t.tr_sim_throughput);
            ("latency", J.Num t.tr_sim_latency);
          ] );
      ("throughput_error", J.Num t.tr_throughput_error);
      ("latency_error", J.Num t.tr_latency_error);
      ("tenants", J.Arr (List.map tenant_row_to_json t.tr_rows));
      ("sim_detail", Tenant.stats_to_json t.tr_stats);
    ]

let tenants_to_string t = J.to_string (tenants_to_json t)

let pp_tenants ppf t =
  let pct x = 100. *. x in
  Format.fprintf ppf "tenants: model vs simulation (%d tenants)@\n"
    (List.length t.tr_rows);
  Format.fprintf ppf
    "  throughput  model %.4g B/s   sim %.4g B/s   error %.1f%%@\n"
    t.tr_model_throughput t.tr_sim_throughput (pct t.tr_throughput_error);
  Format.fprintf ppf
    "  latency     model %.4g s     sim %.4g s     error %.1f%%@\n"
    t.tr_model_latency t.tr_sim_latency (pct t.tr_latency_error);
  Format.fprintf ppf "  bottleneck  %s (per-tenant model: %s)@\n"
    t.tr_model_bottleneck
    (if t.tr_differentiated then "weighted M/M/c/N" else "undifferentiated");
  Format.fprintf ppf
    "  fairness    maxmin %.3f   jain %.3f   interference %.2f@\n"
    t.tr_fairness.Tenant.maxmin_ratio t.tr_fairness.Tenant.jain
    t.tr_fairness.Tenant.interference;
  Format.fprintf ppf "  %-12s %3s %6s %12s %12s %6s %10s %10s %6s %5s@\n"
    "tenant" "w" "share" "model-tput" "sim-tput" "t-err" "model-lat"
    "sim-lat" "l-err" "slo";
  List.iter
    (fun r ->
      let opt = function None -> "-" | Some x -> Printf.sprintf "%.3g" x in
      let opt_pct = function
        | None -> "-"
        | Some x -> Printf.sprintf "%.0f%%" (pct x)
      in
      let slo =
        match r.tn_slo_ok with
        | None -> "-"
        | Some true -> "ok"
        | Some false -> "MISS"
      in
      Format.fprintf ppf
        "  %-12s %3d %6.3f %12.4g %12.4g %5.0f%% %10.3g %10s %6s %5s@\n"
        r.tn_name r.tn_weight r.tn_share r.tn_model_throughput
        r.tn_sim_throughput (pct r.tn_throughput_error) r.tn_model_latency
        (opt r.tn_sim_latency) (opt_pct r.tn_latency_error) slo)
    t.tr_rows

let tenants_to_text t = Format.asprintf "%a" pp_tenants t

(* ---- flow cache ------------------------------------------------------ *)

type flowcache_class_row = {
  fr_name : string;  (* hot / warm / cold *)
  fr_model_share : float;
  fr_sim_share : float;
  fr_model_mean : float;
  fr_sim_mean : float option;
  fr_mean_error : float option;
  fr_model_p99 : float;
  fr_sim_p99 : float option;
}

type flowcache_report = {
  fc_model : Lognic.Flowcache.result;
  fc_stats : Flow_cache.stats;
  fc_measurement : Netsim.measurement;
  fc_bottleneck : string;
  fc_model_throughput : float;
  fc_sim_throughput : float;
  fc_throughput_error : float;
  fc_model_latency : float;
  fc_sim_latency : float;
  fc_latency_error : float;
  fc_emc_hit_error : float;
  fc_mega_hit_error : float;
  fc_overall_hit_error : float;
  fc_rows : flowcache_class_row list;
}

let run_flowcache ?config ?queue_model spec g ~hw ~traffic =
  let model =
    Lognic.Estimate.run_flowcache ?queue_model spec g ~hw ~traffic
  in
  let config = Option.value config ~default:Netsim.default_config in
  let config = { config with Netsim.flow_cache = Some spec } in
  (* Simulate the *converged* graph: per-packet routing at the cache
     vertices comes from actual lookups either way, but the δs feed the
     reach probabilities that scale per-packet medium bytes, so media
     loads line up with the model's fixed point rather than whatever
     splits the input graph carried. *)
  let measurement =
    Netsim.run_single ~config model.Lognic.Flowcache.graph ~hw ~traffic
  in
  let stats =
    match measurement.Netsim.flow_cache with
    | Some s -> s
    | None -> assert false (* config carried the flow-cache spec *)
  in
  let tp = model.Lognic.Flowcache.throughput in
  let attained = tp.Lognic.Throughput.attained in
  let model_latency = model.Lognic.Flowcache.latency.Lognic.Latency.mean in
  let sim_throughput = measurement.Netsim.summary.Telemetry.throughput in
  let sim_latency = measurement.Netsim.summary.Telemetry.mean_latency in
  let sim_row name =
    Array.to_list stats.Flow_cache.fc_classes
    |> List.find_opt (fun (r : Flow_cache.class_row) ->
           r.Flow_cache.c_name = name)
  in
  let rows =
    List.map
      (fun (c : Lognic.Flowcache.class_report) ->
        let sim = sim_row c.Lognic.Flowcache.klass in
        let sim_mean =
          Option.bind sim (fun (r : Flow_cache.class_row) ->
              if r.Flow_cache.c_count > 0 then Some r.Flow_cache.c_mean_latency
              else None)
        in
        {
          fr_name = c.Lognic.Flowcache.klass;
          fr_model_share = c.Lognic.Flowcache.share;
          fr_sim_share =
            (match sim with
            | Some r -> r.Flow_cache.c_share
            | None -> 0.);
          fr_model_mean = c.Lognic.Flowcache.class_mean;
          fr_sim_mean = sim_mean;
          fr_mean_error =
            Option.map
              (fun sim -> relative_error ~model:c.Lognic.Flowcache.class_mean ~sim)
              sim_mean;
          fr_model_p99 = c.Lognic.Flowcache.class_p99;
          fr_sim_p99 =
            Option.bind sim (fun (r : Flow_cache.class_row) ->
                if r.Flow_cache.c_count > 0 then Some r.Flow_cache.c_p99_latency
                else None);
        })
      model.Lognic.Flowcache.classes
  in
  (* Hit-ratio agreement is reported as absolute differences: the
     ratios live in [0, 1] and a relative error at a near-zero miss
     share would read as alarming when the caches agree to within a
     fraction of a percent of the traffic. *)
  let abs_err model sim = Float.abs (model -. sim) in
  {
    fc_model = model;
    fc_stats = stats;
    fc_measurement = measurement;
    fc_bottleneck = bound_name g tp.Lognic.Throughput.bottleneck;
    fc_model_throughput = attained;
    fc_sim_throughput = sim_throughput;
    fc_throughput_error = relative_error ~model:attained ~sim:sim_throughput;
    fc_model_latency = model_latency;
    fc_sim_latency = sim_latency;
    fc_latency_error = relative_error ~model:model_latency ~sim:sim_latency;
    fc_emc_hit_error =
      abs_err model.Lognic.Flowcache.emc_hit_ratio
        stats.Flow_cache.fc_emc_hit_ratio;
    fc_mega_hit_error =
      abs_err model.Lognic.Flowcache.megaflow_hit_ratio
        stats.Flow_cache.fc_mega_hit_ratio;
    fc_overall_hit_error =
      abs_err model.Lognic.Flowcache.overall_hit_ratio
        stats.Flow_cache.fc_overall_hit_ratio;
    fc_rows = rows;
  }

let flowcache_class_to_json r =
  J.Obj
    [
      ("name", J.Str r.fr_name);
      ("model_share", J.Num r.fr_model_share);
      ("sim_share", J.Num r.fr_sim_share);
      ("model_mean_latency", J.Num r.fr_model_mean);
      ("sim_mean_latency", opt_float r.fr_sim_mean);
      ("mean_latency_error", opt_float r.fr_mean_error);
      ("model_p99_latency", J.Num r.fr_model_p99);
      ("sim_p99_latency", opt_float r.fr_sim_p99);
    ]

let flowcache_to_json t =
  let m = t.fc_model in
  J.versioned ~kind:"flowcache"
    [
      ( "model",
        J.Obj
          [
            ("emc_hit_ratio", J.Num m.Lognic.Flowcache.emc_hit_ratio);
            ("megaflow_hit_ratio", J.Num m.Lognic.Flowcache.megaflow_hit_ratio);
            ("overall_hit_ratio", J.Num m.Lognic.Flowcache.overall_hit_ratio);
            ("iterations", J.Num (float_of_int m.Lognic.Flowcache.iterations));
            ("converged", J.Bool m.Lognic.Flowcache.converged);
            ("throughput", J.Num t.fc_model_throughput);
            ("latency", J.Num t.fc_model_latency);
            ("bottleneck", J.Str t.fc_bottleneck);
          ] );
      ( "sim",
        J.Obj
          [
            ("emc_hit_ratio", J.Num t.fc_stats.Flow_cache.fc_emc_hit_ratio);
            ("megaflow_hit_ratio", J.Num t.fc_stats.Flow_cache.fc_mega_hit_ratio);
            ("overall_hit_ratio", J.Num t.fc_stats.Flow_cache.fc_overall_hit_ratio);
            ("throughput", J.Num t.fc_sim_throughput);
            ("latency", J.Num t.fc_sim_latency);
          ] );
      ("throughput_error", J.Num t.fc_throughput_error);
      ("latency_error", J.Num t.fc_latency_error);
      ("emc_hit_error", J.Num t.fc_emc_hit_error);
      ("megaflow_hit_error", J.Num t.fc_mega_hit_error);
      ("overall_hit_error", J.Num t.fc_overall_hit_error);
      ("classes", J.Arr (List.map flowcache_class_to_json t.fc_rows));
      ("sim_detail", Flow_cache.stats_to_json t.fc_stats);
    ]

let flowcache_to_string t = J.to_string (flowcache_to_json t)

let pp_flowcache ppf t =
  let m = t.fc_model in
  let pct x = 100. *. x in
  Format.fprintf ppf
    "flow cache: model vs simulation (%d flows, zipf %.2f, emc %d, megaflow \
     %d)@\n"
    t.fc_stats.Flow_cache.fc_flows t.fc_stats.Flow_cache.fc_zipf
    t.fc_stats.Flow_cache.fc_emc_entries
    t.fc_stats.Flow_cache.fc_megaflow_entries;
  Format.fprintf ppf "  fixed point %s in %d iterations@\n"
    (if m.Lognic.Flowcache.converged then "converged" else "DID NOT converge")
    m.Lognic.Flowcache.iterations;
  Format.fprintf ppf
    "  hit ratios  emc: model %.4f sim %.4f (Δ %.4f)   megaflow|miss: model \
     %.4f sim %.4f (Δ %.4f)@\n"
    m.Lognic.Flowcache.emc_hit_ratio t.fc_stats.Flow_cache.fc_emc_hit_ratio
    t.fc_emc_hit_error m.Lognic.Flowcache.megaflow_hit_ratio
    t.fc_stats.Flow_cache.fc_mega_hit_ratio t.fc_mega_hit_error;
  Format.fprintf ppf
    "  overall     model %.4f sim %.4f (Δ %.4f; 1 - slow-path share)@\n"
    m.Lognic.Flowcache.overall_hit_ratio
    t.fc_stats.Flow_cache.fc_overall_hit_ratio t.fc_overall_hit_error;
  Format.fprintf ppf
    "  throughput  model %.4g B/s   sim %.4g B/s   error %.1f%%@\n"
    t.fc_model_throughput t.fc_sim_throughput (pct t.fc_throughput_error);
  Format.fprintf ppf
    "  latency     model %.4g s     sim %.4g s     error %.1f%%@\n"
    t.fc_model_latency t.fc_sim_latency (pct t.fc_latency_error);
  Format.fprintf ppf "  bottleneck  %s@\n" t.fc_bottleneck;
  Format.fprintf ppf "  %-6s %11s %9s %11s %9s %6s %11s %9s@\n" "class"
    "model-share" "sim-share" "model-mean" "sim-mean" "m-err" "model-p99"
    "sim-p99";
  List.iter
    (fun r ->
      let opt = function None -> "-" | Some x -> Printf.sprintf "%.3g" x in
      let opt_pct = function
        | None -> "-"
        | Some x -> Printf.sprintf "%.0f%%" (pct x)
      in
      Format.fprintf ppf
        "  %-6s %11.4f %9.4f %11.3g %9s %6s %11.3g %9s@\n" r.fr_name
        r.fr_model_share r.fr_sim_share r.fr_model_mean (opt r.fr_sim_mean)
        (opt_pct r.fr_mean_error) r.fr_model_p99 (opt r.fr_sim_p99))
    t.fc_rows

let flowcache_to_text t = Format.asprintf "%a" pp_flowcache t
