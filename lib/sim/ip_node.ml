type service_dist = Deterministic | Exponential

(* Pending requests live in per-queue ring buffers stored
   struct-of-arrays: work and submission times in unboxed float arrays,
   continuations and observer hooks in parallel pointer arrays. Pushing
   a request is five array stores — no record, no list cell — and the
   rings only ever grow (amortized), so steady state allocates
   nothing. *)
type ring = {
  mutable r_work : float array;
  mutable r_sub : float array;
  mutable r_tally : float array option array;
  mutable r_span : (lane:int -> queued:float -> service:float -> unit) option array;
  mutable r_k : (unit -> unit) array;
  mutable r_head : int;
  mutable r_len : int;
}

let noop () = ()

(* [slots] must be a power of two (the head/tail arithmetic masks with
   [cap - 1]); rings double on demand, so the initial size only sets
   the resident footprint. A single-queue node gets 16 slots up front;
   grouped nodes get 4 per queue — per-tenant queues hold a couple of
   entries outside bursts, and at hundreds of VFs a generous ring per
   queue turns the arbiter's scattered per-tenant accesses into a
   cache-miss tax on every grant. *)
let ring_create slots =
  {
    r_work = Array.make slots 0.;
    r_sub = Array.make slots 0.;
    r_tally = Array.make slots None;
    r_span = Array.make slots None;
    r_k = Array.make slots noop;
    r_head = 0;
    r_len = 0;
  }

let ring_grow r =
  let cap = Array.length r.r_k in
  let bigger = 2 * cap in
  let work = Array.make bigger 0. in
  let sub = Array.make bigger 0. in
  let tally = Array.make bigger None in
  let span = Array.make bigger None in
  let k = Array.make bigger noop in
  for i = 0 to r.r_len - 1 do
    let j = (r.r_head + i) land (cap - 1) in
    work.(i) <- r.r_work.(j);
    sub.(i) <- r.r_sub.(j);
    tally.(i) <- r.r_tally.(j);
    span.(i) <- r.r_span.(j);
    k.(i) <- r.r_k.(j)
  done;
  r.r_work <- work;
  r.r_sub <- sub;
  r.r_tally <- tally;
  r.r_span <- span;
  r.r_k <- k;
  r.r_head <- 0

type t = {
  engine : Engine.t;
  rng : Lognic_numerics.Rng.t;
  label : string;
  engines : int;
  rate_per_engine : float;
  entries_per_queue : int;
  single_queue : bool;
      (* single-queue nodes use the M/M/n/N convention: capacity counts
         queued + in-service requests *)
  service_dist : service_dist;
  queues : ring array;
  mutable queued_total : int;
      (* requests across all rings: the O(1) idle check that lets
         dispatch skip the WRR pattern scan entirely when nothing is
         queued *)
  drops_per_queue : int array;
  pattern : int array;  (* expanded WRR schedule over queue indices *)
  mutable cursor : int;  (* next position in [pattern] *)
  (* Hierarchical (group → queue) scheduling state, the SR-IOV two-stage
     arbiter: queue [g·queues_per_group + c] is group [g]'s class-[c]
     queue. Stage 1 is packet-granular weighted round robin over the
     intrusive doubly-linked ring of {e active} groups (groups with at
     least one queued request): the current group serves up to
     [grp_weight] requests per visit ([grp_credit] counts down), then
     the ring advances. Stage 2 is the per-group expanded-pattern WRR
     over that group's class queues. Both stages are int-array state
     sized at construction, so dispatching with thousands of groups
     costs O(1) per grant and allocates nothing. [groups = 0] means
     flat mode: none of these fields are consulted, and the flat hot
     path pays one integer compare per dispatch/submit. *)
  groups : int;
  queues_per_group : int;
  queue_group : int array;
      (* queue index → owning group, precomputed so the per-submit and
         per-grant paths never pay an integer division *)
  fast_grant : bool;
      (* Whether a submit that finds the node idle (nothing queued, an
         engine free) may start service directly, skipping the queue
         push/pop and scheduler bookkeeping. Only set when the bypass
         is {e exactly} equivalent to enqueue-then-grant: single-queue
         and one-queue nodes (the cursor walk can't be observed), and
         hierarchical nodes with one class queue per group, where
         activating a group and immediately granting its only request
         returns the active ring to empty, leaves the stage-2 cursor
         untouched, and strands a credit value that the next
         activation overwrites — no reachable state differs. Flat
         multi-queue WRR stays ineligible: its cursor advances per
         grant, observably. *)
  grp_weight : int array;
  grp_credit : int array;
  grp_queued : int array;
  grp_next : int array;
  grp_prev : int array;
  mutable grp_cur : int;  (* current active group; -1 when ring empty *)
  grp_pat : int array array;  (* per-group expanded class-WRR pattern *)
  grp_cursor : int array;
  mutable offline : int;
      (* engines held down by fault injection; in-flight services finish
         even when their engine goes offline mid-service *)
  mutable capacity_override : int option;
      (* fault-injection queue shrink, min-combined with the configured
         capacity at admission time *)
  mutable busy_engines : int;
  mutable completions : int;
  fb : float array;  (* unboxed: 0 = cumulative scheduled busy time, 1 = scratch *)
  ifl : float array;
      (* completion times of services still running, newest last — the
         old [in_flight] list with its exact element order (and thus
         the exact float summation order of [busy_within]) replicated
         in a fixed [engines]-slot array *)
  mutable ifl_len : int;
  (* Service-completion slots, pooled per node ([engines] of them, the
     maximum concurrency): each slot carries the finish time, lane and
     downstream continuation of one running service, and [sv_fire] is
     its completion closure built once at node creation — scheduling a
     completion allocates nothing. *)
  sv_finish : float array;
  sv_lane : int array;
  sv_k : (unit -> unit) array;
  sv_fire : (unit -> unit) array;
  sv_free : int array;
  mutable sv_free_top : int;
  free_lanes : int array;
      (* stack of free engine lanes, only maintained when the node was
         created with [track_lanes] (tracing); empty otherwise so the
         untraced path pays nothing *)
  mutable free_top : int;  (* live entries in [free_lanes] *)
  mutable prof : Profile.t option;
      (* self-profiler hook ({!Metrics}); [None] costs one pointer
         compare per dispatch/completion entry *)
}

let expand_pattern weights =
  let total = Array.fold_left ( + ) 0 weights in
  let pattern = Array.make total 0 in
  let pos = ref 0 in
  Array.iteri
    (fun q w ->
      for _ = 1 to w do
        pattern.(!pos) <- q;
        incr pos
      done)
    weights;
  pattern

let validate_common ~engines ~rate_per_engine ~capacity =
  if engines < 1 then invalid_arg "Ip_node.create: engines must be >= 1";
  if rate_per_engine <= 0. then
    invalid_arg "Ip_node.create: rate_per_engine must be > 0";
  if capacity < 1 then invalid_arg "Ip_node.create: queue_capacity must be >= 1"

let make engine ~rng ~label ~engines ~rate_per_engine ~entries_per_queue
    ~weights ~single_queue ~service_dist ~track_lanes ~hier =
  let groups, queues_per_group =
    match hier with
    | None -> (0, 0)
    | Some (gw, cw) -> (Array.length gw, Array.length cw.(0))
  in
  let nqueues =
    match hier with
    | None -> Array.length weights
    | Some _ -> groups * queues_per_group
  in
  let t =
    {
      engine;
      rng;
      label;
      engines;
      rate_per_engine;
      entries_per_queue;
      single_queue;
      service_dist;
      queues =
        (let slots = match hier with None -> 16 | Some _ -> 4 in
         Array.init nqueues (fun _ -> ring_create slots));
      queued_total = 0;
      drops_per_queue = Array.make nqueues 0;
      pattern = expand_pattern weights;
      cursor = 0;
      groups;
      queues_per_group;
      queue_group =
        (match hier with
        | None -> [||]
        | Some _ -> Array.init nqueues (fun q -> q / queues_per_group));
      fast_grant =
        single_queue || nqueues = 1
        || (groups > 0 && queues_per_group = 1);
      grp_weight = (match hier with None -> [||] | Some (gw, _) -> Array.copy gw);
      grp_credit = Array.make (max 1 groups) 0;
      grp_queued = Array.make (max 1 groups) 0;
      grp_next = Array.make (max 1 groups) (-1);
      grp_prev = Array.make (max 1 groups) (-1);
      grp_cur = -1;
      grp_pat =
        (match hier with
        | None -> [||]
        | Some (_, cw) -> Array.map expand_pattern cw);
      grp_cursor = Array.make (max 1 groups) 0;
      offline = 0;
      capacity_override = None;
      busy_engines = 0;
      completions = 0;
      fb = Array.make 2 0.;
      ifl = Array.make engines 0.;
      ifl_len = 0;
      sv_finish = Array.make engines 0.;
      sv_lane = Array.make engines 0;
      sv_k = Array.make engines noop;
      sv_fire = Array.make engines noop;
      (* slot [0] on top of the stack so the first start takes slot 0 *)
      sv_free = Array.init engines (fun i -> engines - 1 - i);
      sv_free_top = engines;
      (* lane [0] on top of the stack so the first claim is lane 0 *)
      free_lanes =
        (if track_lanes then Array.init engines (fun i -> engines - 1 - i)
         else [||]);
      free_top = (if track_lanes then engines else 0);
      prof = None;
    }
  in
  t

let create ?(track_lanes = false) engine ~rng ~label ~engines ~rate_per_engine
    ~queue_capacity ~service_dist =
  validate_common ~engines ~rate_per_engine ~capacity:queue_capacity;
  make engine ~rng ~label ~engines ~rate_per_engine
    ~entries_per_queue:queue_capacity ~weights:[| 1 |] ~single_queue:true
    ~service_dist ~track_lanes ~hier:None

let create_multiqueue ?(track_lanes = false) engine ~rng ~label ~engines
    ~rate_per_engine ~entries_per_queue ~weights ~service_dist =
  validate_common ~engines ~rate_per_engine ~capacity:entries_per_queue;
  if Array.length weights = 0 then
    invalid_arg "Ip_node.create_multiqueue: no queues";
  if Array.exists (fun w -> w < 1) weights then
    invalid_arg "Ip_node.create_multiqueue: weights must be >= 1";
  make engine ~rng ~label ~engines ~rate_per_engine ~entries_per_queue ~weights
    ~single_queue:false ~service_dist ~track_lanes ~hier:None

let create_hierarchical ?(track_lanes = false) engine ~rng ~label ~engines
    ~rate_per_engine ~entries_per_queue ~group_weights ~class_weights
    ~service_dist =
  validate_common ~engines ~rate_per_engine ~capacity:entries_per_queue;
  let groups = Array.length group_weights in
  if groups = 0 then invalid_arg "Ip_node.create_hierarchical: no groups";
  if Array.exists (fun w -> w < 1) group_weights then
    invalid_arg "Ip_node.create_hierarchical: group weights must be >= 1";
  if Array.length class_weights <> groups then
    invalid_arg "Ip_node.create_hierarchical: one class-weight row per group";
  let qpg = Array.length class_weights.(0) in
  if qpg = 0 then invalid_arg "Ip_node.create_hierarchical: no class queues";
  Array.iter
    (fun row ->
      if Array.length row <> qpg then
        invalid_arg "Ip_node.create_hierarchical: ragged class-weight rows";
      if Array.exists (fun w -> w < 1) row then
        invalid_arg "Ip_node.create_hierarchical: class weights must be >= 1")
    class_weights;
  make engine ~rng ~label ~engines ~rate_per_engine ~entries_per_queue
    ~weights:[| 1 |] ~single_queue:false ~service_dist ~track_lanes
    ~hier:(Some (group_weights, class_weights))

let label t = t.label
let engines t = t.engines
let queue_count t = Array.length t.queues
let in_system t = t.busy_engines + t.queued_total

let queue_length t i =
  if i < 0 || i >= Array.length t.queues then
    invalid_arg "Ip_node.queue_length: bad queue index";
  t.queues.(i).r_len

let busy_engines t = t.busy_engines

let drops t = Array.fold_left ( + ) 0 t.drops_per_queue

let drops_of_queue t i =
  if i < 0 || i >= Array.length t.drops_per_queue then
    invalid_arg "Ip_node.drops_of_queue: bad queue index";
  t.drops_per_queue.(i)

let completions t = t.completions
let busy_time t = t.fb.(0)

(* Clip scheduled busy time to the [\[0, until\]] window: every service
   still in flight at query time started at or before the horizon,
   so its overrun past [until] is exactly [end - until]. Without the
   clip, service durations extending past the horizon count fully and
   utilization can exceed 1 for an overloaded node. Newest-first, the
   old list's fold order, so the float rounding matches exactly. *)
let busy_within t ~until =
  let acc = ref t.fb.(0) in
  for i = t.ifl_len - 1 downto 0 do
    acc := !acc -. Float.max 0. (t.ifl.(i) -. until)
  done;
  !acc

let utilization t ~until =
  if until <= 0. then 0.
  else Float.max 0. (busy_within t ~until) /. (float_of_int t.engines *. until)

let[@inline] service_time t work =
  let mean = work /. t.rate_per_engine in
  match t.service_dist with
  | Deterministic -> mean
  | Exponential ->
    if mean <= 0. then 0.
    else Lognic_numerics.Dist.sample_exponential ~rate:(1. /. mean) t.rng

(* Drop the first (newest-first) entry equal to [finish] — the old
   [remove_first] on the cons list, element order preserved. The target
   time rides in the [fb] scratch slot and the scan is a top-level
   recursion over an int index: inlined at the per-completion call
   site, this removes both the boxed [finish] argument and the [ref]
   cell the old while-loop allocated. *)
let rec rif_scan t i =
  if i >= 0 && t.ifl.(i) <> t.fb.(1) then rif_scan t (i - 1) else i

let[@inline] remove_in_flight t finish =
  t.fb.(1) <- finish;
  let i = rif_scan t (t.ifl_len - 1) in
  if i >= 0 then begin
    for j = i to t.ifl_len - 2 do
      t.ifl.(j) <- t.ifl.(j + 1)
    done;
    t.ifl_len <- t.ifl_len - 1
  end

(* Pop a free engine lane; only meaningful when lanes are tracked.
   [busy_engines < engines] before every start, so the stack is never
   empty here. *)
let claim_lane t =
  if t.free_top = 0 then 0
  else begin
    t.free_top <- t.free_top - 1;
    t.free_lanes.(t.free_top)
  end

let release_lane t lane =
  if Array.length t.free_lanes > 0 then begin
    t.free_lanes.(t.free_top) <- lane;
    t.free_top <- t.free_top + 1
  end

(* WRR pull: scan the expanded pattern from the cursor, skipping empty
   queues (work conserving); the [queued_total > 0] guard at the call
   site guarantees a hit within one cycle, with the same cursor walk as
   before. Top-level recursion over ints — the index [ref] this
   replaces allocated once per service start. *)
let rec wrr_pick t n =
  let q = t.pattern.(t.cursor) in
  let nxt = t.cursor + 1 in
  t.cursor <- (if nxt = n then 0 else nxt);
  if t.queues.(q).r_len = 0 then wrr_pick t n else q

(* Stage 1 of the hierarchical arbiter: the current group keeps the
   grant while it has credit; at zero the ring advances and the next
   group's credit is refilled to its weight. The caller guarantees the
   active ring is non-empty ([queued_total > 0] implies some group has
   queued work, and only groups with queued work are on the ring). *)
let[@inline] hier_group t =
  let g = t.grp_cur in
  if t.grp_credit.(g) > 0 then g
  else begin
    let nxt = t.grp_next.(g) in
    t.grp_cur <- nxt;
    t.grp_credit.(nxt) <- t.grp_weight.(nxt);
    nxt
  end

(* Stage 2: per-group class WRR with the same empty-skip walk as
   [wrr_pick]; [grp_queued.(g) > 0] guarantees a hit within one cycle. *)
let rec grp_queue t g pat n =
  let cur = t.grp_cursor.(g) in
  let c = pat.(cur) in
  let nxt = cur + 1 in
  t.grp_cursor.(g) <- (if nxt = n then 0 else nxt);
  let q = (g * t.queues_per_group) + c in
  if t.queues.(q).r_len = 0 then grp_queue t g pat n else q

let[@inline] hier_pick t =
  let g = hier_group t in
  (* single-class groups (one queue each, the common case when the
     traffic has one class) need no stage-2 walk at all *)
  if t.queues_per_group = 1 then g
  else
    let pat = t.grp_pat.(g) in
    grp_queue t g pat (Array.length pat)

(* Group activation: splice an idle group in just before the current
   one — i.e. at the end of the current round — with a fresh credit
   grant, so a newly-backlogged tenant waits at most one full round. *)
let[@inline] hier_enqueued t q =
  let g = t.queue_group.(q) in
  let was = t.grp_queued.(g) in
  t.grp_queued.(g) <- was + 1;
  if was = 0 then
    if t.grp_cur < 0 then begin
      t.grp_cur <- g;
      t.grp_next.(g) <- g;
      t.grp_prev.(g) <- g;
      t.grp_credit.(g) <- t.grp_weight.(g)
    end
    else begin
      let cur = t.grp_cur in
      let prev = t.grp_prev.(cur) in
      t.grp_next.(prev) <- g;
      t.grp_prev.(g) <- prev;
      t.grp_next.(g) <- cur;
      t.grp_prev.(cur) <- g;
      t.grp_credit.(g) <- t.grp_weight.(g)
    end

(* Grant accounting + deactivation. A group that drains mid-grant
   leaves the ring immediately (it must not be picked with empty
   queues); if it held the grant, the grant passes on with a refill. *)
let[@inline] hier_dequeued t q =
  let g = t.queue_group.(q) in
  t.grp_credit.(g) <- t.grp_credit.(g) - 1;
  let left = t.grp_queued.(g) - 1 in
  t.grp_queued.(g) <- left;
  if left = 0 then begin
    let nxt = t.grp_next.(g) in
    if nxt = g then t.grp_cur <- -1
    else begin
      let prev = t.grp_prev.(g) in
      t.grp_next.(prev) <- nxt;
      t.grp_prev.(nxt) <- prev;
      if t.grp_cur = g then begin
        t.grp_cur <- nxt;
        t.grp_credit.(nxt) <- t.grp_weight.(nxt)
      end
    end
  end

(* Service start, shared by the drain loop and the idle-node fast
   grant in [submit_at]: engine accounting, busy-time and in-flight
   bookkeeping, telemetry tallies and the pooled completion slot. *)
let[@inline] start_service t ~work ~submitted ~tally ~span k =
  t.busy_engines <- t.busy_engines + 1;
  let now = Engine.now t.engine in
  let duration = service_time t work in
  let finish = now +. duration in
  t.fb.(0) <- t.fb.(0) +. duration;
  t.ifl.(t.ifl_len) <- finish;
  t.ifl_len <- t.ifl_len + 1;
  let lane = claim_lane t in
  (match tally with
  | Some a ->
    a.(Telemetry.slot_queueing) <-
      a.(Telemetry.slot_queueing) +. (now -. submitted);
    a.(Telemetry.slot_service) <- a.(Telemetry.slot_service) +. duration
  | None -> ());
  (match span with
  | Some f -> f ~lane ~queued:(now -. submitted) ~service:duration
  | None -> ());
  let slot = t.sv_free.(t.sv_free_top - 1) in
  t.sv_free_top <- t.sv_free_top - 1;
  t.sv_finish.(slot) <- finish;
  t.sv_lane.(slot) <- lane;
  t.sv_k.(slot) <- k;
  Engine.schedule_after t.engine ~delay:duration t.sv_fire.(slot)

(* One-pass arbitration: while an engine is free and work is queued,
   pull via the WRR pattern and start service — submit, completion and
   recovery all funnel through this single drain loop, so a burst of
   freed engines resolves in one pass instead of one event round-trip
   each. Grant order is identical to the old one-grant-per-call
   dispatch (each call could only ever free one engine's worth of
   capacity at a time). *)
let rec dispatch_loop t =
  if t.busy_engines < t.engines - t.offline && t.queued_total > 0 then begin
    let q =
      if t.groups = 0 then wrr_pick t (Array.length t.pattern)
      else hier_pick t
    in
    let r = t.queues.(q) in
    let cap = Array.length r.r_k in
    let head = r.r_head in
    let work = r.r_work.(head) in
    let submitted = r.r_sub.(head) in
    let tally = r.r_tally.(head) in
    let span = r.r_span.(head) in
    let k = r.r_k.(head) in
    r.r_tally.(head) <- None;
    r.r_span.(head) <- None;
    r.r_k.(head) <- noop;
    r.r_head <- (head + 1) land (cap - 1);
    r.r_len <- r.r_len - 1;
    t.queued_total <- t.queued_total - 1;
    if t.groups > 0 then hier_dequeued t q;
    start_service t ~work ~submitted ~tally ~span k;
    dispatch_loop t
  end

(* Profiled entry points charge the drain / completion bookkeeping to
   the node-service phase; with no profiler attached each is a single
   pointer compare on top of the original code path. *)
and dispatch t =
  match t.prof with
  | None -> dispatch_loop t
  | Some p ->
    let prev = Profile.enter p Profile.phase_node in
    dispatch_loop t;
    Profile.leave p prev

(* Completion bookkeeping up to (and including) the work-conserving
   re-dispatch; returns the continuation so the profiled wrapper can
   stop the node clock before running downstream work. *)
and fire_steps t slot =
  let finish = t.sv_finish.(slot) in
  let lane = t.sv_lane.(slot) in
  let k = t.sv_k.(slot) in
  t.busy_engines <- t.busy_engines - 1;
  release_lane t lane;
  remove_in_flight t finish;
  t.completions <- t.completions + 1;
  t.sv_k.(slot) <- noop;
  t.sv_free.(t.sv_free_top) <- slot;
  t.sv_free_top <- t.sv_free_top + 1;
  (* Work-conserving: the freed engine immediately pulls the next
     request before the completion continuation runs downstream. *)
  dispatch_loop t;
  k

and fire t slot =
  match t.prof with
  | None -> (fire_steps t slot) ()
  | Some p ->
    let prev = Profile.enter p Profile.phase_node in
    let k = fire_steps t slot in
    Profile.leave p prev;
    k ()

(* Completion closures are per-slot and built once here — after the
   record exists, since they capture it. *)
let make_fires t =
  for slot = 0 to t.engines - 1 do
    t.sv_fire.(slot) <- (fun () -> fire t slot)
  done;
  t

let create ?track_lanes engine ~rng ~label ~engines ~rate_per_engine
    ~queue_capacity ~service_dist =
  make_fires
    (create ?track_lanes engine ~rng ~label ~engines ~rate_per_engine
       ~queue_capacity ~service_dist)

let create_multiqueue ?track_lanes engine ~rng ~label ~engines ~rate_per_engine
    ~entries_per_queue ~weights ~service_dist =
  make_fires
    (create_multiqueue ?track_lanes engine ~rng ~label ~engines
       ~rate_per_engine ~entries_per_queue ~weights ~service_dist)

let create_hierarchical ?track_lanes engine ~rng ~label ~engines
    ~rate_per_engine ~entries_per_queue ~group_weights ~class_weights
    ~service_dist =
  make_fires
    (create_hierarchical ?track_lanes engine ~rng ~label ~engines
       ~rate_per_engine ~entries_per_queue ~group_weights ~class_weights
       ~service_dist)

let offline t = t.offline
let set_profile t p = t.prof <- p

let set_offline t n =
  if n < 0 || n > t.engines then
    invalid_arg "Ip_node.set_offline: count outside [0, engines]";
  t.offline <- n;
  (* Recovery may free several engines at once; the drain loop starts
     as many services as there are freed engines and backlogged
     requests (work conserving). *)
  dispatch t

let capacity_override t = t.capacity_override

let set_capacity_override t cap =
  (match cap with
  | Some c when c < 1 ->
    invalid_arg "Ip_node.set_capacity_override: capacity must be >= 1"
  | _ -> ());
  t.capacity_override <- cap

let effective_capacity t =
  match t.capacity_override with
  | None -> t.entries_per_queue
  | Some c -> min c t.entries_per_queue

let[@inline] submit_at ?tally ?span t ~queue ~work k =
  if queue < 0 || queue >= Array.length t.queues then
    invalid_arg "Ip_node.submit: bad queue index";
  if work < 0. then invalid_arg "Ip_node.submit: negative work";
  (* Fast path: a request needing no engine time completes immediately —
     but only when its queue is empty, otherwise it would overtake
     queued requests and reorder the stream. *)
  if
    (work = 0. || t.rate_per_engine = infinity) && t.queues.(queue).r_len = 0
  then begin
    (match tally with
    | Some a ->
      a.(Telemetry.slot_queueing) <- a.(Telemetry.slot_queueing) +. 0.;
      a.(Telemetry.slot_service) <- a.(Telemetry.slot_service) +. 0.
    | None -> ());
    (match span with Some f -> f ~lane:0 ~queued:0. ~service:0. | None -> ());
    k ();
    true
  end
  else if
    (* Idle-node fast grant: nothing queued and an engine free means
       the arbiter would hand this request the very next grant, so
       eligible nodes ([fast_grant]) start service directly — no ring
       push/pop, no scheduler bookkeeping. The M/M/n/N capacity check
       still applies to single-queue nodes (capacity counts in-service
       requests, so an idle queue can still be full). *)
    t.fast_grant && t.queued_total = 0
    && t.busy_engines < t.engines - t.offline
    && ((not t.single_queue) || in_system t < effective_capacity t)
  then begin
    (match t.prof with
    | None ->
      start_service t ~work ~submitted:(Engine.now t.engine) ~tally ~span k
    | Some p ->
      let prev = Profile.enter p Profile.phase_node in
      start_service t ~work ~submitted:(Engine.now t.engine) ~tally ~span k;
      Profile.leave p prev);
    true
  end
  else begin
    let capacity = effective_capacity t in
    let full =
      if t.single_queue then in_system t >= capacity
      else t.queues.(queue).r_len >= capacity
    in
    if full then begin
      t.drops_per_queue.(queue) <- t.drops_per_queue.(queue) + 1;
      false
    end
    else begin
      let r = t.queues.(queue) in
      let cap = Array.length r.r_k in
      if r.r_len = cap then ring_grow r;
      let cap = Array.length r.r_k in
      let i = (r.r_head + r.r_len) land (cap - 1) in
      r.r_work.(i) <- work;
      r.r_sub.(i) <- Engine.now t.engine;
      r.r_tally.(i) <- tally;
      r.r_span.(i) <- span;
      r.r_k.(i) <- k;
      r.r_len <- r.r_len + 1;
      t.queued_total <- t.queued_total + 1;
      if t.groups > 0 then hier_enqueued t queue;
      dispatch t;
      true
    end
  end

let[@inline] submit ?(queue = 0) ?tally ?span t ~work k =
  submit_at ?tally ?span t ~queue ~work k
