type service_dist = Deterministic | Exponential

type request = {
  work : float;
  submitted : float;
  timing : (queued:float -> service:float -> unit) option;
  span : (lane:int -> queued:float -> service:float -> unit) option;
  k : unit -> unit;
}

type t = {
  engine : Engine.t;
  rng : Lognic_numerics.Rng.t;
  label : string;
  engines : int;
  rate_per_engine : float;
  entries_per_queue : int;
  single_queue : bool;
      (* single-queue nodes use the M/M/n/N convention: capacity counts
         queued + in-service requests *)
  service_dist : service_dist;
  queues : request Queue.t array;
  drops_per_queue : int array;
  pattern : int array;  (* expanded WRR schedule over queue indices *)
  mutable cursor : int;  (* next position in [pattern] *)
  mutable offline : int;
      (* engines held down by fault injection; in-flight services finish
         even when their engine goes offline mid-service *)
  mutable capacity_override : int option;
      (* fault-injection queue shrink, min-combined with the configured
         capacity at admission time *)
  mutable busy_engines : int;
  mutable completions : int;
  mutable busy : float;
  mutable in_flight : float list;
      (* completion times of services still running; what [busy]
         counts beyond the horizon lives entirely in this list *)
  free_lanes : int array;
      (* stack of free engine lanes, only maintained when the node was
         created with [track_lanes] (tracing); empty otherwise so the
         untraced path pays nothing *)
  mutable free_top : int;  (* live entries in [free_lanes] *)
}

let expand_pattern weights =
  let total = Array.fold_left ( + ) 0 weights in
  let pattern = Array.make total 0 in
  let pos = ref 0 in
  Array.iteri
    (fun q w ->
      for _ = 1 to w do
        pattern.(!pos) <- q;
        incr pos
      done)
    weights;
  pattern

let validate_common ~engines ~rate_per_engine ~capacity =
  if engines < 1 then invalid_arg "Ip_node.create: engines must be >= 1";
  if rate_per_engine <= 0. then
    invalid_arg "Ip_node.create: rate_per_engine must be > 0";
  if capacity < 1 then invalid_arg "Ip_node.create: queue_capacity must be >= 1"

let make engine ~rng ~label ~engines ~rate_per_engine ~entries_per_queue
    ~weights ~single_queue ~service_dist ~track_lanes =
  {
    engine;
    rng;
    label;
    engines;
    rate_per_engine;
    entries_per_queue;
    single_queue;
    service_dist;
    queues = Array.init (Array.length weights) (fun _ -> Queue.create ());
    drops_per_queue = Array.make (Array.length weights) 0;
    pattern = expand_pattern weights;
    cursor = 0;
    offline = 0;
    capacity_override = None;
    busy_engines = 0;
    completions = 0;
    busy = 0.;
    in_flight = [];
    (* lane [0] on top of the stack so the first claim is lane 0 *)
    free_lanes =
      (if track_lanes then Array.init engines (fun i -> engines - 1 - i)
       else [||]);
    free_top = (if track_lanes then engines else 0);
  }

let create ?(track_lanes = false) engine ~rng ~label ~engines ~rate_per_engine
    ~queue_capacity ~service_dist =
  validate_common ~engines ~rate_per_engine ~capacity:queue_capacity;
  make engine ~rng ~label ~engines ~rate_per_engine
    ~entries_per_queue:queue_capacity ~weights:[| 1 |] ~single_queue:true
    ~service_dist ~track_lanes

let create_multiqueue ?(track_lanes = false) engine ~rng ~label ~engines
    ~rate_per_engine ~entries_per_queue ~weights ~service_dist =
  validate_common ~engines ~rate_per_engine ~capacity:entries_per_queue;
  if Array.length weights = 0 then
    invalid_arg "Ip_node.create_multiqueue: no queues";
  if Array.exists (fun w -> w < 1) weights then
    invalid_arg "Ip_node.create_multiqueue: weights must be >= 1";
  make engine ~rng ~label ~engines ~rate_per_engine ~entries_per_queue ~weights
    ~single_queue:false ~service_dist ~track_lanes

let label t = t.label
let engines t = t.engines
let queue_count t = Array.length t.queues

let in_system t =
  Array.fold_left (fun acc q -> acc + Queue.length q) t.busy_engines t.queues

let queue_length t i =
  if i < 0 || i >= Array.length t.queues then
    invalid_arg "Ip_node.queue_length: bad queue index";
  Queue.length t.queues.(i)

let busy_engines t = t.busy_engines

let drops t = Array.fold_left ( + ) 0 t.drops_per_queue

let drops_of_queue t i =
  if i < 0 || i >= Array.length t.drops_per_queue then
    invalid_arg "Ip_node.drops_of_queue: bad queue index";
  t.drops_per_queue.(i)

let completions t = t.completions
let busy_time t = t.busy

(* Clip scheduled busy time to the [\[0, until\]] window: every service
   still in [in_flight] at query time started at or before the horizon,
   so its overrun past [until] is exactly [end - until]. Without the
   clip, service durations extending past the horizon count fully and
   utilization can exceed 1 for an overloaded node. *)
let busy_within t ~until =
  List.fold_left
    (fun acc finish -> acc -. Float.max 0. (finish -. until))
    t.busy t.in_flight

let utilization t ~until =
  if until <= 0. then 0.
  else Float.max 0. (busy_within t ~until) /. (float_of_int t.engines *. until)

let service_time t work =
  let mean = work /. t.rate_per_engine in
  match t.service_dist with
  | Deterministic -> mean
  | Exponential ->
    if mean <= 0. then 0.
    else
      Lognic_numerics.Dist.sample
        (Lognic_numerics.Dist.exponential ~rate:(1. /. mean))
        t.rng

(* The WRR pull: scan the expanded pattern from the cursor, skipping
   empty queues (work conserving); at most one full cycle. *)
let next_request t =
  let n = Array.length t.pattern in
  let rec scan tries =
    if tries >= n then None
    else begin
      let q = t.pattern.(t.cursor) in
      t.cursor <- (t.cursor + 1) mod n;
      if Queue.is_empty t.queues.(q) then scan (tries + 1)
      else Some (Queue.pop t.queues.(q))
    end
  in
  scan 0

let rec remove_first x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_first x rest

(* Pop a free engine lane; only meaningful when lanes are tracked.
   [busy_engines < engines] before every start, so the stack is never
   empty here. *)
let claim_lane t =
  if t.free_top = 0 then 0
  else begin
    t.free_top <- t.free_top - 1;
    t.free_lanes.(t.free_top)
  end

let release_lane t lane =
  if Array.length t.free_lanes > 0 then begin
    t.free_lanes.(t.free_top) <- lane;
    t.free_top <- t.free_top + 1
  end

let rec start_service t req =
  t.busy_engines <- t.busy_engines + 1;
  let now = Engine.now t.engine in
  let duration = service_time t req.work in
  let finish = now +. duration in
  t.busy <- t.busy +. duration;
  t.in_flight <- finish :: t.in_flight;
  let lane = claim_lane t in
  (match req.timing with
  | Some f -> f ~queued:(now -. req.submitted) ~service:duration
  | None -> ());
  (match req.span with
  | Some f -> f ~lane ~queued:(now -. req.submitted) ~service:duration
  | None -> ());
  Engine.schedule_after t.engine ~delay:duration (fun () ->
      t.busy_engines <- t.busy_engines - 1;
      release_lane t lane;
      t.in_flight <- remove_first finish t.in_flight;
      t.completions <- t.completions + 1;
      (* Work-conserving: the freed engine immediately pulls the next
         request before the completion continuation runs downstream. *)
      dispatch t;
      req.k ())

and dispatch t =
  if t.busy_engines < t.engines - t.offline then
    match next_request t with
    | Some req -> start_service t req
    | None -> ()

let offline t = t.offline

let set_offline t n =
  if n < 0 || n > t.engines then
    invalid_arg "Ip_node.set_offline: count outside [0, engines]";
  let was = t.offline in
  t.offline <- n;
  (* Recovery may free several engines at once; one dispatch per freed
     engine drains the backlog immediately (work conserving). *)
  if n < was then
    for _ = 1 to was - n do
      dispatch t
    done

let capacity_override t = t.capacity_override

let set_capacity_override t cap =
  (match cap with
  | Some c when c < 1 ->
    invalid_arg "Ip_node.set_capacity_override: capacity must be >= 1"
  | _ -> ());
  t.capacity_override <- cap

let effective_capacity t =
  match t.capacity_override with
  | None -> t.entries_per_queue
  | Some c -> min c t.entries_per_queue

let submit ?(queue = 0) ?timing ?span t ~work k =
  if queue < 0 || queue >= Array.length t.queues then
    invalid_arg "Ip_node.submit: bad queue index";
  if work < 0. then invalid_arg "Ip_node.submit: negative work";
  (* Fast path: a request needing no engine time completes immediately —
     but only when its queue is empty, otherwise it would overtake
     queued requests and reorder the stream. *)
  if
    (work = 0. || t.rate_per_engine = infinity)
    && Queue.is_empty t.queues.(queue)
  then begin
    (match timing with Some f -> f ~queued:0. ~service:0. | None -> ());
    (match span with Some f -> f ~lane:0 ~queued:0. ~service:0. | None -> ());
    k ();
    true
  end
  else begin
    let capacity = effective_capacity t in
    let full =
      if t.single_queue then in_system t >= capacity
      else Queue.length t.queues.(queue) >= capacity
    in
    if full then begin
      t.drops_per_queue.(queue) <- t.drops_per_queue.(queue) + 1;
      false
    end
    else begin
      Queue.push { work; submitted = Engine.now t.engine; timing; span; k }
        t.queues.(queue);
      dispatch t;
      true
    end
  end
