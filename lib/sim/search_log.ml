module O = Lognic.Optimizer
module J = Telemetry.Json

type t = {
  mutex : Mutex.t;
  scores : Telemetry.Series.t;
  best_curve : Telemetry.Series.t;
  knob_counts : (string, int) Hashtbl.t;
  mutable observations : int;
  mutable cache_hits : int;
  mutable best : (float * O.assignment list) option;
}

let create ?(capacity = 4096) () =
  {
    mutex = Mutex.create ();
    scores =
      Telemetry.Series.create ~capacity ~label:"score" ~interval:1. ();
    best_curve =
      Telemetry.Series.create ~capacity ~label:"best_score" ~interval:1. ();
    knob_counts = Hashtbl.create 16;
    observations = 0;
    cache_hits = 0;
    best = None;
  }

(* One histogram bucket per knob the candidate touches, keyed by the
   assignment's kind and target vertex. *)
let knob_key = function
  | O.Set_throughput (id, _) -> Printf.sprintf "throughput:%d" id
  | O.Set_queue_capacity (id, _) -> Printf.sprintf "queue_capacity:%d" id
  | O.Set_split (id, _) -> Printf.sprintf "split:%d" id
  | O.Set_partition (id, _) -> Printf.sprintf "partition:%d" id
  | O.Set_accel (id, _) -> Printf.sprintf "accel:%d" id
  | O.Set_ingress_rate _ -> "ingress_rate"

let observer t (obs : O.observation) =
  Mutex.protect t.mutex (fun () ->
      t.observations <- t.observations + 1;
      if obs.cache_hit then t.cache_hits <- t.cache_hits + 1;
      let seq = float_of_int obs.sequence in
      Telemetry.Series.add t.scores ~time:seq ~value:obs.score;
      let improved =
        match t.best with None -> true | Some (s, _) -> obs.score < s
      in
      if improved then t.best <- Some (obs.score, obs.candidate);
      (match t.best with
      | Some (s, _) -> Telemetry.Series.add t.best_curve ~time:seq ~value:s
      | None -> ());
      List.iter
        (fun a ->
          let key = knob_key a in
          let n = Option.value (Hashtbl.find_opt t.knob_counts key) ~default:0 in
          Hashtbl.replace t.knob_counts key (n + 1))
        obs.candidate)

let observations t = Mutex.protect t.mutex (fun () -> t.observations)
let cache_hits t = Mutex.protect t.mutex (fun () -> t.cache_hits)
let best t = Mutex.protect t.mutex (fun () -> t.best)

let knob_histogram t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.knob_counts []
      |> List.sort compare)

let to_json t =
  Mutex.protect t.mutex (fun () ->
      let best =
        match t.best with
        | None -> J.Null
        | Some (score, assignment) ->
          J.Obj
            [
              ("score", J.Num score);
              ( "assignment",
                J.Arr
                  (List.map
                     (fun a -> J.Str (Fmt.str "%a" O.pp_assignment a))
                     assignment) );
            ]
      in
      let histogram =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.knob_counts []
        |> List.sort compare
        |> List.map (fun (k, v) -> (k, J.Num (float_of_int v)))
      in
      J.versioned ~kind:"search_log"
        [
          ("evaluations", J.Num (float_of_int t.observations));
          ("cache_hits", J.Num (float_of_int t.cache_hits));
          ("best", best);
          ("best_curve", Telemetry.Series.to_json t.best_curve);
          ("scores", Telemetry.Series.to_json t.scores);
          ("knob_histogram", J.Obj histogram);
        ])

let to_string t = J.to_string (to_json t)
