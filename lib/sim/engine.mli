(** The discrete-event simulation core: a virtual clock plus an event
    queue of closures. Components schedule callbacks at absolute times;
    [run] drains the queue in time order. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds; 0 before the first event. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Raises [Invalid_argument] when [at] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** Convenience for [schedule ~at:(now t +. delay)]; [delay >= 0]. *)

val run :
  ?until:float -> ?observer:(float -> unit) -> ?profile:Profile.t -> t -> unit
(** Processes events in order until the queue empties or virtual time
    would exceed [until] (remaining events stay queued, and the clock is
    left at [until]). [observer], when given, is called with each event's
    time just before it executes — in pop order, so a well-behaved queue
    feeds it non-decreasing times ({!Invariants.observe_event_time}).
    [profile], when given, charges queue operations (and observer
    callbacks) to their {!Profile} phases; event thunks run in the
    enclosing phase. The default path (neither given) runs the exact
    pre-observer loop and allocates nothing per event. *)

val pending : t -> int

val executed : t -> int
(** Events executed so far (cumulative across [run] calls; cleared by
    {!reset}) — the numerator of the events/sec headline bench. *)

val queue_resizes : t -> int
(** Calendar rebuilds in this engine's queue since {!create} (not
    cleared by {!reset}) — a diagnostic for the resize hysteresis; a
    steady-state workload should settle after a handful. *)

val reset : t -> unit
(** Back to a fresh engine — clock 0, nothing pending, counter 0 —
    while keeping the event queue's arrays for reuse, so replicated
    runs and optimizer sweeps stop reallocating per run. *)

