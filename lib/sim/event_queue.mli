(** A calendar queue (Brown 1988) of timestamped events, stored
    struct-of-arrays (unboxed float times, int sequence numbers,
    payloads apart) with O(1) amortized push/pop on the near-uniform
    timestamp distributions the traffic generators produce.

    Ties in time are broken by insertion order — pop order is the exact
    lexicographic [(time, seq)] minimum, bit-identical to the binary
    heap this replaced (pinned by the differential property in
    lib/check) — so simulations are fully deterministic given a seed.

    Steady-state operations allocate nothing: slots are free-listed,
    bucket geometry only ever changes in deterministic O(n) rebuilds,
    and the [locate]/[located_time]/[take] triple exposes the earliest
    event without materializing a [(float * 'a) option]. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val resizes : 'a t -> int
(** Calendar rebuilds since [create] — a diagnostic for the resize
    hysteresis (a steady-state workload should see almost none). *)

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on a NaN time. *)

val locate : 'a t -> horizon:float -> bool
(** [locate t ~horizon] finds (without removing) the earliest event and
    caches its position; [true] iff the queue is non-empty and that
    event's time is [<= horizon]. The allocation-free half of
    {!pop_if_before}; read the time with {!located_time}, remove with
    {!take}. *)

val located_time : 'a t -> float
(** Time of the event found by the last successful {!locate}. Only
    meaningful immediately after [locate] returned [true]. *)

val take : 'a t -> 'a
(** Removes and returns the event found by the last successful
    {!locate}. Raises [Invalid_argument] if no located event is
    pending (locate failed, or the queue was touched since). *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

val pop_if_before : 'a t -> horizon:float -> (float * 'a) option
(** [pop_if_before t ~horizon] pops the earliest event only when its
    time is [<= horizon] — the engine's peek-then-pop fused into one
    queue operation. *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
(** Empty the queue, resetting the sequence counter but keeping every
    array (slots, buckets) for reuse — so replicated runs and optimizer
    sweeps stop reallocating queue storage per run. *)
