(** A binary min-heap of timestamped events, stored struct-of-arrays
    (unboxed float times, int sequence numbers, payloads apart) so the
    simulator's hot sift loops compare machine floats without chasing
    pointers, and vacated slots drop their payload references.

    Ties in time are broken by insertion order, so simulations are fully
    deterministic given a seed. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on a NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

val pop_if_before : 'a t -> horizon:float -> (float * 'a) option
(** [pop_if_before t ~horizon] pops the earliest event only when its
    time is [<= horizon] — the engine's peek-then-pop fused into one
    heap operation. *)

val peek_time : 'a t -> float option
