(** A binary min-heap of timestamped events.

    Ties in time are broken by insertion order, so simulations are fully
    deterministic given a seed. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on a NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

val peek_time : 'a t -> float option
