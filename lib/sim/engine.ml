(* The clock lives in a 1-slot float array rather than a mutable float
   field: without flambda a mutable float field of a mixed record is
   boxed on every store, and the clock is written once per event.
   [schedule]/[schedule_after] are inlinable wrappers feeding the
   queue's scratch cell, so the hot path never boxes a time. *)

type t = {
  queue : (unit -> unit) Event_queue.t;
  clock : float array;
  mutable executed : int;
}

let create () =
  { queue = Event_queue.create (); clock = Array.make 1 0.; executed = 0 }

let[@inline] now t = t.clock.(0)

let past_error () = invalid_arg "Engine.schedule: event in the past"
let delay_error () = invalid_arg "Engine.schedule_after: negative delay"

let[@inline] schedule t ~at thunk =
  if at < t.clock.(0) then past_error ();
  Event_queue.push t.queue ~time:at thunk

let[@inline] schedule_after t ~delay thunk =
  if delay < 0. then delay_error ();
  schedule t ~at:(t.clock.(0) +. delay) thunk

let run ?until ?observer ?profile t =
  let horizon = Option.value until ~default:infinity in
  let q = t.queue in
  (* Separate loops so the no-observer, no-profile path (the default)
     stays the exact hot loop: no per-event option match, no closure
     call — and via locate/take, no per-event allocation at all. The
     profiled variants bracket queue operations and observer callbacks
     with {!Profile} phases; event thunks execute in whatever phase was
     current ([phase_other] unless the thunk switches itself). *)
  (match (observer, profile) with
  | None, None ->
    let rec loop () =
      if Event_queue.locate q ~horizon then begin
        t.clock.(0) <- Event_queue.located_time q;
        t.executed <- t.executed + 1;
        let thunk = Event_queue.take q in
        thunk ();
        loop ()
      end
    in
    loop ()
  | Some observe, None ->
    let rec loop () =
      if Event_queue.locate q ~horizon then begin
        let time = Event_queue.located_time q in
        observe time;
        t.clock.(0) <- time;
        t.executed <- t.executed + 1;
        let thunk = Event_queue.take q in
        thunk ();
        loop ()
      end
    in
    loop ()
  | None, Some p ->
    let rec loop () =
      let prev = Profile.enter p Profile.phase_queue in
      if Event_queue.locate q ~horizon then begin
        t.clock.(0) <- Event_queue.located_time q;
        t.executed <- t.executed + 1;
        let thunk = Event_queue.take q in
        Profile.leave p prev;
        thunk ();
        loop ()
      end
      else Profile.leave p prev
    in
    loop ()
  | Some observe, Some p ->
    let rec loop () =
      let prev = Profile.enter p Profile.phase_queue in
      if Event_queue.locate q ~horizon then begin
        let time = Event_queue.located_time q in
        let pq = Profile.enter p Profile.phase_observer in
        observe time;
        Profile.leave p pq;
        t.clock.(0) <- time;
        t.executed <- t.executed + 1;
        let thunk = Event_queue.take q in
        Profile.leave p prev;
        thunk ();
        loop ()
      end
      else Profile.leave p prev
    in
    loop ());
  if horizon < infinity && t.clock.(0) < horizon then t.clock.(0) <- horizon

let pending t = Event_queue.size t.queue
let executed t = t.executed
let queue_resizes t = Event_queue.resizes t.queue

let reset t =
  Event_queue.clear t.queue;
  t.clock.(0) <- 0.;
  t.executed <- 0

