type t = { queue : (unit -> unit) Event_queue.t; mutable clock : float }

let create () = { queue = Event_queue.create (); clock = 0. }
let now t = t.clock

let schedule t ~at thunk =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  Event_queue.push t.queue ~time:at thunk

let schedule_after t ~delay thunk =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) thunk

let run ?until ?observer t =
  let horizon = Option.value until ~default:infinity in
  (* Two loops so the no-observer path (the default) stays exactly the
     pre-observer hot loop: no per-event option match, no closure call. *)
  (match observer with
  | None ->
    let rec loop () =
      match Event_queue.pop_if_before t.queue ~horizon with
      | Some (time, thunk) ->
        t.clock <- time;
        thunk ();
        loop ()
      | None -> ()
    in
    loop ()
  | Some observe ->
    let rec loop () =
      match Event_queue.pop_if_before t.queue ~horizon with
      | Some (time, thunk) ->
        observe time;
        t.clock <- time;
        thunk ();
        loop ()
      | None -> ()
    in
    loop ());
  if horizon < infinity && t.clock < horizon then t.clock <- horizon

let pending t = Event_queue.size t.queue
