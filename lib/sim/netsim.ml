module G = Lognic.Graph
module N = Lognic_numerics

type config = {
  seed : int;
  duration : float;
  warmup : float;
  service_dist : Ip_node.service_dist;
  arrival : Traffic_gen.arrival;
  sample_interval : float option;
  series_capacity : int;
  trace : Trace.config option;
  check_invariants : bool;
}

let default_config =
  {
    seed = 1;
    duration = 0.1;
    warmup = 0.01;
    service_dist = Ip_node.Exponential;
    arrival = Traffic_gen.Poisson;
    sample_interval = None;
    series_capacity = 4096;
    trace = None;
    check_invariants = false;
  }

module Run = struct
  type t = {
    graph : G.t;
    hw : Lognic.Params.hardware;
    mix : Lognic.Traffic.mix;
    config : config;
    faults : Faults.plan;
  }

  let make ?(config = default_config) ?(faults = Faults.empty) graph ~hw ~mix =
    { graph; hw; mix; config; faults }

  let single ?config ?faults graph ~hw ~traffic =
    make ?config ?faults graph ~hw ~mix:[ (traffic, 1.) ]

  let with_config t config = { t with config }
  let with_faults t faults = { t with faults }
  let with_mix t mix = { t with mix }
  let with_hw t hw = { t with hw }
  let with_seed t seed = { t with config = { t.config with seed } }
  let with_duration t duration = { t with config = { t.config with duration } }
end

type vertex_stats = {
  vid : G.vertex_id;
  vlabel : string;
  drops : int;
  queue_drops : int array;
  completions : int;
  utilization : float;
}

type medium_stats = {
  mlabel : string;
  m_utilization : float;
  m_busy : float;
  m_rejections : int;
}

type interval_stats = {
  i_start : float;
  i_stop : float;
  i_faults : string list;
  i_offered : int;
  i_delivered : int;
  i_dropped : int;
  i_throughput : float;
  i_latency : float;
}

type resilience = {
  recovery_time : float option;
  worst_throughput : float;
  worst_start : float;
}

type measurement = {
  summary : Telemetry.summary;
  vertex_stats : vertex_stats list;
  medium_stats : medium_stats list;
  drop_breakdown : (Telemetry.drop_site * int) list;
  series : Telemetry.Series.t list;
  interface_utilization : float;
  memory_utilization : float;
  generated : int;
  fault_intervals : interval_stats list;
  resilience : resilience option;
  trace : Trace.t option;
  invariants : Invariants.report option;
}

(* The per-packet latency ledger threaded through a packet's walk; at
   egress it becomes the completion's Telemetry.latency_terms. *)
type tally = {
  mutable t_queueing : float;
  mutable t_service : float;
  mutable t_wire : float;
  mutable t_overhead : float;
}

(* Probability that a packet's walk crosses each vertex/edge, from the
   delta-proportional routing; needed to scale per-packet quantities so
   aggregate loads match the model's W-fractions. *)
let reach_probabilities g =
  let p_vertex = Hashtbl.create 16 in
  let p_edge = Hashtbl.create 16 in
  let ingresses = G.ingress_vertices g in
  let ingress_share = 1. /. float_of_int (List.length ingresses) in
  List.iter (fun (v : G.vertex) -> Hashtbl.replace p_vertex v.id ingress_share) ingresses;
  let order =
    match G.topological_order g with
    | Some o -> o
    | None -> invalid_arg "Netsim: graph has a cycle"
  in
  List.iter
    (fun id ->
      let p = Option.value (Hashtbl.find_opt p_vertex id) ~default:0. in
      let outs = G.out_edges g id in
      let total = List.fold_left (fun acc (e : G.edge) -> acc +. e.delta) 0. outs in
      if total > 0. then
        List.iter
          (fun (e : G.edge) ->
            let pe = p *. e.delta /. total in
            Hashtbl.replace p_edge (e.src, e.dst) pe;
            let prev = Option.value (Hashtbl.find_opt p_vertex e.dst) ~default:0. in
            Hashtbl.replace p_vertex e.dst (prev +. pe))
          outs)
    order;
  (p_vertex, p_edge)

let rec remove_first x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_first x rest

(* Sub-interval grid for fault-time accounting: the fault-plan edges
   refined with a uniform duration/64 grid, so recovery after the last
   fault clears is observable at finer resolution than the plan's own
   boundaries. Only built when a plan is present. *)
let interval_boundaries ~duration fault_spans =
  let grid = List.init 64 (fun i -> float_of_int i *. duration /. 64.) in
  let edges = List.map (fun (a, _, _) -> a) fault_spans in
  Array.of_list (List.sort_uniq Float.compare (grid @ edges))

let execute (spec : Run.t) =
  let g = spec.Run.graph in
  let hw = spec.Run.hw in
  let config = spec.Run.config in
  let faults = spec.Run.faults in
  (match G.validate g with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Netsim.run: invalid graph: " ^ String.concat "; " errors));
  let have_faults = not (Faults.is_empty faults) in
  (* The checker is allocated only on request; every hook below matches
     on it first, so the disabled path costs one pointer compare per
     hook site (gated by bench/main.exe --invariant-overhead). *)
  let checker = if config.check_invariants then Some (Invariants.create ()) else None in
  let engine = Engine.create () in
  let rng = N.Rng.create ~seed:config.seed in
  let gen_rng = N.Rng.split rng in
  let route_rng = N.Rng.split rng in
  let telemetry = Telemetry.create ~warmup:config.warmup in
  let p_vertex, p_edge = reach_probabilities g in
  let prob_vertex id = Option.value (Hashtbl.find_opt p_vertex id) ~default:0. in
  let prob_edge e = Option.value (Hashtbl.find_opt p_edge e) ~default:0. in
  let interface =
    Medium.create engine ~label:"interface"
      ~bandwidth:hw.Lognic.Params.bw_interface ()
  in
  let memory =
    Medium.create engine ~label:"memory" ~bandwidth:hw.Lognic.Params.bw_memory ()
  in
  let links = Hashtbl.create 8 in
  List.iter
    (fun (e : G.edge) ->
      match e.bandwidth with
      | Some bw ->
        Hashtbl.replace links (e.src, e.dst)
          (Medium.create engine
             ~label:(Printf.sprintf "link-%d-%d" e.src e.dst)
             ~bandwidth:bw ())
      | None -> ())
    (G.edges g);
  let tracing = config.trace <> None in
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun (v : G.vertex) ->
      if v.service.throughput < infinity then begin
        let d = v.service.parallelism in
        let aggregate =
          v.service.partition *. v.service.accel *. v.service.throughput
        in
        let node =
          Ip_node.create ~track_lanes:tracing engine ~rng:(N.Rng.split rng)
            ~label:v.label ~engines:d
            ~rate_per_engine:(aggregate /. float_of_int d)
            ~queue_capacity:v.service.queue_capacity
            ~service_dist:config.service_dist
        in
        Hashtbl.replace nodes v.id node
      end)
    (G.vertices g);
  (* The fault rng is split only when a plan is present, after the
     per-node rngs and before the trace rng: an empty plan leaves every
     stream exactly where the pre-fault code put it (byte-identical
     runs), and a non-empty plan perturbs at most which packets the
     trace reservoir samples — never a measured quantity. *)
  let faults_rng = if have_faults then Some (N.Rng.split rng) else None in
  (* The trace rng is split last — after every stream the untraced run
     splits — and only when tracing is on, so enabling tracing perturbs
     no other stochastic stream and measurements stay bit-identical. *)
  let trace =
    Option.map
      (fun tc -> Trace.create ~config:tc ~rng:(N.Rng.split rng) ())
      config.trace
  in
  (* Media in deterministic report order: the two shared media first,
     then dedicated links in edge order. *)
  let media =
    (interface :: memory :: [])
    @ List.filter_map
        (fun (e : G.edge) -> Hashtbl.find_opt links (e.src, e.dst))
        (G.edges g)
  in
  (* ---- fault realization ------------------------------------------- *)
  let burst_p = ref 0. in
  let fault_spans =
    if have_faults then Faults.intervals ~duration:config.duration faults
    else []
  in
  let boundaries =
    if have_faults then interval_boundaries ~duration:config.duration fault_spans
    else [||]
  in
  let nbins = Array.length boundaries in
  let bin_offered = Array.make (max 1 nbins) 0 in
  let bin_delivered = Array.make (max 1 nbins) 0 in
  let bin_dropped = Array.make (max 1 nbins) 0 in
  let bin_bytes = Array.make (max 1 nbins) 0. in
  let bin_latency = Array.make (max 1 nbins) 0. in
  let bin_of t =
    let lo = ref 0 and hi = ref (nbins - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if boundaries.(mid) <= t then lo := mid else hi := mid - 1
    done;
    !lo
  in
  if have_faults then begin
    let node_by_label = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ node -> Hashtbl.replace node_by_label (Ip_node.label node) node)
      nodes;
    let node_of vertex =
      match Hashtbl.find_opt node_by_label vertex with
      | Some node -> node
      | None ->
        invalid_arg
          (Printf.sprintf
             "Netsim: fault targets unknown or infinite-throughput vertex %S"
             vertex)
    in
    let medium_of label =
      match List.find_opt (fun m -> Medium.label m = label) media with
      | Some m -> m
      | None ->
        invalid_arg (Printf.sprintf "Netsim: fault targets unknown medium %S" label)
    in
    (* Validate every target up front so a bad plan fails before the
       simulation starts, not at the event's fire time. *)
    List.iter
      (fun (ev : Faults.event) ->
        match ev.fault with
        | Faults.Engine_down { vertex; _ } | Faults.Queue_shrunk { vertex; _ } ->
          ignore (node_of vertex)
        | Faults.Medium_degraded { medium; _ } -> ignore (medium_of medium)
        | Faults.Drop_burst _ -> ())
      faults;
    (* Overlapping faults compose; each target keeps its active
       contributions in activation order and the effective value is
       recomputed from that list on every change, so apply/revert
       sequences are deterministic and leave no floating-point residue
       once all faults clear. *)
    let down = Hashtbl.create 4 in
    let factors = Hashtbl.create 4 in
    let caps = Hashtbl.create 4 in
    let bursts = ref [] in
    let active key table = Option.value (Hashtbl.find_opt table key) ~default:[] in
    let set_down vertex delta =
      let node = node_of vertex in
      let total = List.fold_left ( + ) 0 delta in
      Hashtbl.replace down vertex delta;
      Ip_node.set_offline node (min (Ip_node.engines node) total)
    in
    let set_factor medium fs =
      Hashtbl.replace factors medium fs;
      Medium.set_scale (medium_of medium) (List.fold_left ( *. ) 1. fs)
    in
    let set_cap vertex cs =
      Hashtbl.replace caps vertex cs;
      Ip_node.set_capacity_override (node_of vertex)
        (match cs with [] -> None | cs -> Some (List.fold_left min max_int cs))
    in
    let set_bursts ps =
      bursts := ps;
      burst_p := 1. -. List.fold_left (fun acc p -> acc *. (1. -. p)) 1. ps
    in
    let apply (ev : Faults.event) () =
      match ev.fault with
      | Faults.Engine_down { vertex; engines } ->
        set_down vertex (active vertex down @ [ engines ])
      | Faults.Medium_degraded { medium; factor } ->
        set_factor medium (active medium factors @ [ factor ])
      | Faults.Queue_shrunk { vertex; capacity } ->
        set_cap vertex (active vertex caps @ [ capacity ])
      | Faults.Drop_burst { probability } -> set_bursts (!bursts @ [ probability ])
    in
    let revert (ev : Faults.event) () =
      match ev.fault with
      | Faults.Engine_down { vertex; engines } ->
        set_down vertex (remove_first engines (active vertex down))
      | Faults.Medium_degraded { medium; factor } ->
        set_factor medium (remove_first factor (active medium factors))
      | Faults.Queue_shrunk { vertex; capacity } ->
        set_cap vertex (remove_first capacity (active vertex caps))
      | Faults.Drop_burst { probability } ->
        set_bursts (remove_first probability !bursts)
    in
    List.iter
      (fun (ev : Faults.event) ->
        if ev.start < config.duration then begin
          Engine.schedule engine ~at:ev.start (apply ev);
          if ev.stop < config.duration then
            Engine.schedule engine ~at:ev.stop (revert ev)
        end)
      faults
  end;
  (* ------------------------------------------------------------------ *)
  (* Per-vertex processing-work multiplier: size * inflow / p(v). *)
  let work_factor id =
    let p = prob_vertex id in
    if p <= 0. then 0. else Lognic.Throughput.vertex_inflow g id /. p
  in
  let choose_out_edge id =
    let outs = G.out_edges g id in
    let total = List.fold_left (fun acc (e : G.edge) -> acc +. e.delta) 0. outs in
    if total <= 0. then None
    else begin
      let target = N.Rng.float route_rng total in
      let rec pick acc = function
        | [] -> None
        | [ e ] -> Some e
        | (e : G.edge) :: rest ->
          let acc = acc +. e.delta in
          if target < acc then Some e else pick acc rest
      in
      pick 0. outs
    end
  in
  (* Media admission invariant: right after a successful transfer the
     backlog must still fit the buffer. Skipped on faulted runs: a
     bandwidth restore mid-backlog legitimately re-values the queued
     bytes at the healthy rate, which can exceed the byte limit the
     degraded admission enforced. *)
  let check_medium =
    match checker with
    | Some inv when not have_faults ->
      fun m ->
        Invariants.check_bound inv ~law:"medium-buffer"
          ~entity:(Medium.label m) ~time:(Engine.now engine)
          ~limit:(Medium.buffer m) ~actual:(Medium.backlog m)
          "admitted backlog must fit the rate-matching buffer"
    | Some _ | None -> fun _ -> ()
  in
  let record_drop tr (packet : Packet.t) site =
    (match checker with
    | Some inv ->
      Invariants.packet_dropped inv ~id:packet.id ~time:(Engine.now engine)
    | None -> ());
    (match tr with
    | Some r ->
      Trace.drop r
        ~site:(Telemetry.drop_site_name site)
        ~time:(Engine.now engine)
    | None -> ());
    if have_faults then begin
      let b = bin_of packet.born in
      bin_dropped.(b) <- bin_dropped.(b) + 1
    end;
    Telemetry.record_drop telemetry ~now:(Engine.now engine) ~born:packet.born
      ~site
  in
  let rec arrive id (packet : Packet.t) tally tr =
    let v = G.vertex g id in
    let work = packet.size *. work_factor id in
    let on_served () = depart id v packet tally tr in
    match Hashtbl.find_opt nodes id with
    | None -> on_served ()
    | Some node ->
      let timing ~queued ~service =
        tally.t_queueing <- tally.t_queueing +. queued;
        tally.t_service <- tally.t_service +. service
      in
      (* The span sink fires at service start, so the queue span is the
         interval ending now and the service span the one starting now. *)
      let span =
        match tr with
        | None -> None
        | Some r ->
          Some
            (fun ~lane ~queued ~service ->
              let start = Engine.now engine in
              Trace.add_span r ~entity:v.label ~lane ~phase:Trace.Queue
                ~start:(start -. queued) ~duration:queued;
              Trace.add_span r ~entity:v.label ~lane ~phase:Trace.Service
                ~start ~duration:service)
      in
      if Ip_node.submit node ?span ~timing ~work on_served then begin
        match checker with
        | Some inv ->
          (* Post-admission state bounds. [submit] may have run the
             whole downstream walk synchronously (zero-work fast path),
             but both bounds hold at every instant, so checking after
             it returns is still sound. *)
          let time = Engine.now engine in
          Invariants.check_bound inv ~law:"queue-capacity" ~entity:v.label
            ~time
            ~limit:(float_of_int v.service.queue_capacity)
            ~actual:(float_of_int (Ip_node.in_system node))
            "in-system requests must not exceed the queue capacity";
          Invariants.check_bound inv ~law:"engine-count" ~entity:v.label
            ~time
            ~limit:(float_of_int (Ip_node.engines node))
            ~actual:(float_of_int (Ip_node.busy_engines node))
            "busy engines must not exceed the configured engine count"
        | None -> ()
      end
      else
        record_drop tr packet
          (Telemetry.Node_queue { node = v.label; queue = 0 })
  and depart id (v : G.vertex) packet tally tr =
    if v.kind = G.Egress then begin
      (match checker with
      | Some inv ->
        let now = Engine.now engine in
        Invariants.packet_delivered inv ~id:packet.id ~time:now;
        (* Eq. 2 tiling: the four tallied components must account for
           this packet's entire end-to-end latency. Each hop adds its
           pieces from the same event times that advance the clock, so
           only float rounding separates the two sides. *)
        Invariants.check_close inv ~law:"latency-tiling"
          ~entity:(Printf.sprintf "packet-%d" packet.id) ~time:now ~tol:1e-9
          ~expected:(now -. packet.born)
          ~actual:
            (tally.t_queueing +. tally.t_service +. tally.t_wire
           +. tally.t_overhead)
          "queueing + service + wire + overhead must equal birth-to-egress time"
      | None -> ());
      (match tr with
      | Some r -> Trace.deliver r ~time:(Engine.now engine)
      | None -> ());
      if have_faults then begin
        let b = bin_of packet.born in
        bin_delivered.(b) <- bin_delivered.(b) + 1;
        bin_bytes.(b) <- bin_bytes.(b) +. packet.size;
        bin_latency.(b) <- bin_latency.(b) +. (Engine.now engine -. packet.born)
      end;
      Telemetry.record_completion telemetry ~now:(Engine.now engine)
        ~born:packet.born
        ~terms:
          {
            Telemetry.queueing = tally.t_queueing;
            service = tally.t_service;
            wire = tally.t_wire;
            overhead = tally.t_overhead;
          }
        ~size:packet.size ~klass:packet.klass ()
    end
    else
      match choose_out_edge id with
      | None ->
        (* Dead end without egress: validation rejects IPs like this, so
           only an ingress with zero-delta out-edges can reach here. *)
        ()
      | Some e ->
        let continue () = traverse e packet tally tr in
        if v.service.overhead > 0. then begin
          tally.t_overhead <- tally.t_overhead +. v.service.overhead;
          (match tr with
          | Some r ->
            Trace.add_span r ~entity:v.label ~lane:0 ~phase:Trace.Overhead
              ~start:(Engine.now engine) ~duration:v.service.overhead
          | None -> ());
          Engine.schedule_after engine ~delay:v.service.overhead continue
        end
        else continue ()
  and traverse (e : G.edge) packet tally tr =
    let pe = prob_edge (e.src, e.dst) in
    let scale x = if pe <= 0. then 0. else packet.size *. x /. pe in
    let timing ~queued ~wire =
      tally.t_queueing <- tally.t_queueing +. queued;
      tally.t_wire <- tally.t_wire +. wire
    in
    (* Medium spans are reported at admission time: the backlog wait is
       the interval starting now, the wire slice follows it. One sink
       closure serves all three media of the hop (the medium supplies
       its own label). *)
    let span =
      match tr with
      | None -> None
      | Some r ->
        Some
          (fun ~label ~queued ~wire ->
            let now = Engine.now engine in
            Trace.add_span r ~entity:label ~lane:0 ~phase:Trace.Queue
              ~start:now ~duration:queued;
            Trace.add_span r ~entity:label ~lane:0 ~phase:Trace.Wire
              ~start:(now +. queued) ~duration:wire)
    in
    let via_link () =
      match Hashtbl.find_opt links (e.src, e.dst) with
      | Some link ->
        if
          Medium.transfer ~timing ?span link ~bytes:(scale e.delta) (fun () ->
              arrive e.dst packet tally tr)
        then check_medium link
        else record_drop tr packet (Telemetry.Medium_buffer (Medium.label link))
      | None -> arrive e.dst packet tally tr
    in
    let via_memory () =
      if Medium.transfer ~timing ?span memory ~bytes:(scale e.beta) via_link
      then check_medium memory
      else record_drop tr packet (Telemetry.Medium_buffer "memory")
    in
    if
      Medium.transfer ~timing ?span interface ~bytes:(scale e.alpha) via_memory
    then check_medium interface
    else record_drop tr packet (Telemetry.Medium_buffer "interface")
  in
  let ingresses = G.ingress_vertices g in
  let ingress_ids = Array.of_list (List.map (fun (v : G.vertex) -> v.id) ingresses) in
  let on_packet packet =
    (match checker with
    | Some inv ->
      Invariants.packet_injected inv ~id:packet.Packet.id
        ~time:(Engine.now engine)
    | None -> ());
    Telemetry.record_arrival telemetry ~now:(Engine.now engine)
      ~size:packet.Packet.size;
    if have_faults then begin
      let b = bin_of packet.Packet.born in
      bin_offered.(b) <- bin_offered.(b) + 1
    end;
    let tr =
      match trace with
      | None -> None
      | Some t ->
        Trace.on_packet t ~packet:packet.Packet.id ~born:packet.born
          ~size:packet.size ~klass:packet.klass
    in
    (* An active drop burst sheds the packet at ingress. The draw comes
       from the dedicated fault rng, and only while a burst is active,
       so burst-free plans consume nothing from it. *)
    let shed =
      !burst_p > 0.
      &&
      match faults_rng with
      | Some frng -> N.Rng.float frng 1. < !burst_p
      | None -> false
    in
    if shed then record_drop tr packet Telemetry.Fault_burst
    else begin
      let entry =
        if Array.length ingress_ids = 1 then ingress_ids.(0)
        else ingress_ids.(N.Rng.int route_rng (Array.length ingress_ids))
      in
      let tally =
        { t_queueing = 0.; t_service = 0.; t_wire = 0.; t_overhead = 0. }
      in
      arrive entry packet tally tr
    end
  in
  (* Periodic state sampling into ring-buffer series (read-only probes:
     enabling sampling never changes simulation results). *)
  let series =
    match config.sample_interval with
    | None -> []
    | Some dt ->
      if dt <= 0. then invalid_arg "Netsim.run: sample_interval must be > 0";
      let mk label probe =
        ( Telemetry.Series.create ~capacity:config.series_capacity ~label
            ~interval:dt (),
          probe )
      in
      let probes =
        List.concat_map
          (fun (v : G.vertex) ->
            match Hashtbl.find_opt nodes v.id with
            | None -> []
            | Some node ->
              [
                mk
                  (Printf.sprintf "%s.depth" v.label)
                  (fun () -> float_of_int (Ip_node.in_system node));
                mk
                  (Printf.sprintf "%s.busy" v.label)
                  (fun () -> float_of_int (Ip_node.busy_engines node));
              ])
          (G.vertices g)
        @ List.map
            (fun m ->
              mk
                (Printf.sprintf "%s.backlog" (Medium.label m))
                (fun () -> Medium.backlog m))
            media
      in
      (* sample times are multiples of dt, computed multiplicatively so
         accumulated rounding never drops the final sample *)
      let time_of i = float_of_int i *. dt in
      let rec sample i =
        let at = time_of i in
        List.iter
          (fun (s, probe) -> Telemetry.Series.add s ~time:at ~value:(probe ()))
          probes;
        if time_of (i + 1) <= config.duration then
          Engine.schedule engine ~at:(time_of (i + 1)) (fun () -> sample (i + 1))
      in
      if dt <= config.duration then
        Engine.schedule engine ~at:dt (fun () -> sample 1);
      List.map fst probes
  in
  let gen =
    Traffic_gen.create engine ~rng:gen_rng ~arrival:config.arrival
      ~mix:spec.Run.mix ~on_packet
  in
  Traffic_gen.start gen ~until:config.duration;
  (match checker with
  | Some inv ->
    Engine.run ~until:config.duration
      ~observer:(Invariants.observe_event_time inv)
      engine
  | None -> Engine.run ~until:config.duration engine);
  let summary = Telemetry.summarize telemetry ~horizon:config.duration in
  let vertex_stats =
    List.filter_map
      (fun (v : G.vertex) ->
        match Hashtbl.find_opt nodes v.id with
        | None -> None
        | Some node ->
          Some
            {
              vid = v.id;
              vlabel = v.label;
              drops = Ip_node.drops node;
              queue_drops =
                Array.init (Ip_node.queue_count node)
                  (Ip_node.drops_of_queue node);
              completions = Ip_node.completions node;
              utilization = Ip_node.utilization node ~until:config.duration;
            })
      (G.vertices g)
  in
  let medium_stats =
    List.map
      (fun m ->
        {
          mlabel = Medium.label m;
          m_utilization = Medium.utilization m ~until:config.duration;
          m_busy = Medium.busy_within m ~until:config.duration;
          m_rejections = Medium.rejections m;
        })
      media
  in
  let fault_intervals =
    if not have_faults then []
    else
      let labels_at t =
        let rec find = function
          | (a, b, events) :: rest ->
            if t >= a && t < b then
              List.map (fun (ev : Faults.event) -> Faults.fault_label ev.fault) events
            else find rest
          | [] -> []
        in
        find fault_spans
      in
      List.init nbins (fun i ->
          let a = boundaries.(i) in
          let b =
            if i + 1 < nbins then boundaries.(i + 1) else config.duration
          in
          let len = b -. a in
          {
            i_start = a;
            i_stop = b;
            i_faults = labels_at a;
            i_offered = bin_offered.(i);
            i_delivered = bin_delivered.(i);
            i_dropped = bin_dropped.(i);
            i_throughput = (if len > 0. then bin_bytes.(i) /. len else 0.);
            i_latency =
              (if bin_delivered.(i) > 0 then
                 bin_latency.(i) /. float_of_int bin_delivered.(i)
               else 0.);
          })
  in
  let resilience =
    if not have_faults then None
    else begin
      let faulted = List.filter (fun r -> r.i_faults <> []) fault_intervals in
      match faulted with
      | [] -> None
      | _ ->
        let first_fault_start =
          List.fold_left (fun acc r -> Float.min acc r.i_start) infinity faulted
        in
        let last_fault_end =
          List.fold_left (fun acc r -> Float.max acc r.i_stop) 0. faulted
        in
        let healthy = List.filter (fun r -> r.i_faults = []) fault_intervals in
        (* Baseline: time-weighted throughput over healthy intervals
           before the first fault; when the plan faults from t = 0, any
           healthy interval has to stand in. *)
        let baseline_over rows =
          let time, bytes =
            List.fold_left
              (fun (t, by) r ->
                let len = r.i_stop -. r.i_start in
                (t +. len, by +. (r.i_throughput *. len)))
              (0., 0.) rows
          in
          if time > 0. then Some (bytes /. time) else None
        in
        let baseline =
          match
            baseline_over
              (List.filter (fun r -> r.i_stop <= first_fault_start) healthy)
          with
          | Some b -> Some b
          | None -> baseline_over healthy
        in
        let recovery_time =
          match baseline with
          | None -> None
          | Some base ->
            if last_fault_end >= config.duration then None
            else
              List.find_opt
                (fun r ->
                  r.i_start >= last_fault_end && r.i_throughput >= 0.9 *. base)
                fault_intervals
              |> Option.map (fun r -> r.i_start -. last_fault_end)
        in
        let worst =
          List.fold_left
            (fun (acc : interval_stats) r ->
              if r.i_throughput < acc.i_throughput then r else acc)
            (List.hd faulted) (List.tl faulted)
        in
        Some
          {
            recovery_time;
            worst_throughput = worst.i_throughput;
            worst_start = worst.i_start;
          }
    end
  in
  let invariants =
    match checker with
    | None -> None
    | Some inv ->
      let horizon = config.duration in
      (* End-of-run entity laws: horizon-clipped utilization and busy
         time for every node and medium. *)
      List.iter
        (fun (v : G.vertex) ->
          match Hashtbl.find_opt nodes v.id with
          | None -> ()
          | Some node ->
            let busy = Ip_node.busy_within node ~until:horizon in
            Invariants.check_bound inv ~law:"utilization" ~entity:v.label
              ~time:horizon ~limit:1.
              ~actual:(Ip_node.utilization node ~until:horizon)
              "node utilization must not exceed 1 at the horizon";
            Invariants.check_bound inv ~law:"busy-time" ~entity:v.label
              ~time:horizon
              ~limit:(float_of_int (Ip_node.engines node) *. horizon)
              ~actual:busy
              "engine-busy seconds must fit engines times the horizon";
            Invariants.check_nonneg inv ~law:"busy-time" ~entity:v.label
              ~time:horizon ~actual:busy
              "horizon-clipped busy time cannot be negative")
        (G.vertices g);
      List.iter
        (fun m ->
          let busy = Medium.busy_within m ~until:horizon in
          Invariants.check_bound inv ~law:"utilization"
            ~entity:(Medium.label m) ~time:horizon ~limit:1.
            ~actual:(Medium.utilization m ~until:horizon)
            "medium utilization must not exceed 1 at the horizon";
          Invariants.check_bound inv ~law:"busy-time" ~entity:(Medium.label m)
            ~time:horizon ~limit:horizon ~actual:busy
            "medium-busy seconds must fit the horizon";
          Invariants.check_nonneg inv ~law:"busy-time"
            ~entity:(Medium.label m) ~time:horizon ~actual:busy
            "horizon-clipped busy time cannot be negative")
        media;
      Invariants.check_conservation inv ~time:horizon
        ~generated:(Traffic_gen.generated gen);
      if have_faults then
        (* Interval accounting attributes every packet to its birth bin,
           so no bin can resolve more packets than were offered in it. *)
        Array.iteri
          (fun i offered ->
            Invariants.check_bound inv ~law:"interval-accounting"
              ~entity:(Printf.sprintf "interval-%d" i) ~time:horizon
              ~limit:(float_of_int offered)
              ~actual:(float_of_int (bin_delivered.(i) + bin_dropped.(i)))
              "a birth bin cannot resolve more packets than it offered")
          bin_offered;
      Invariants.check_summary inv ~horizon summary;
      Some (Invariants.report inv)
  in
  {
    summary;
    vertex_stats;
    medium_stats;
    drop_breakdown = summary.Telemetry.drop_breakdown;
    series;
    interface_utilization = Medium.utilization interface ~until:config.duration;
    memory_utilization = Medium.utilization memory ~until:config.duration;
    generated = Traffic_gen.generated gen;
    fault_intervals;
    resilience;
    trace;
    invariants;
  }

let run ?(config = default_config) g ~hw ~mix =
  execute (Run.make ~config g ~hw ~mix)

let run_single ?config g ~hw ~traffic = run ?config g ~hw ~mix:[ (traffic, 1.) ]

let interval_to_json r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("start", J.Num r.i_start);
      ("stop", J.Num r.i_stop);
      ("faults", J.Arr (List.map (fun l -> J.Str l) r.i_faults));
      ("offered", J.Num (float_of_int r.i_offered));
      ("delivered", J.Num (float_of_int r.i_delivered));
      ("dropped", J.Num (float_of_int r.i_dropped));
      ("throughput", J.Num r.i_throughput);
      ("latency", J.Num r.i_latency);
    ]

let resilience_to_json r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ( "recovery_time",
        match r.recovery_time with None -> J.Null | Some t -> J.Num t );
      ("worst_throughput", J.Num r.worst_throughput);
      ("worst_start", J.Num r.worst_start);
    ]

let measurement_to_json m =
  let module J = Telemetry.Json in
  J.versioned ~kind:"measurement"
    [
      ("summary", Telemetry.to_json m.summary);
      ( "vertices",
        J.Arr
          (List.map
             (fun v ->
               J.Obj
                 [
                   ("id", J.Num (float_of_int v.vid));
                   ("label", J.Str v.vlabel);
                   ("drops", J.Num (float_of_int v.drops));
                   ( "queue_drops",
                     J.Arr
                       (Array.to_list
                          (Array.map
                             (fun d -> J.Num (float_of_int d))
                             v.queue_drops)) );
                   ("completions", J.Num (float_of_int v.completions));
                   ("utilization", J.Num v.utilization);
                 ])
             m.vertex_stats) );
      ( "media",
        J.Arr
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("label", J.Str s.mlabel);
                   ("utilization", J.Num s.m_utilization);
                   ("busy", J.Num s.m_busy);
                   ("rejections", J.Num (float_of_int s.m_rejections));
                 ])
             m.medium_stats) );
      ("series", J.Arr (List.map Telemetry.Series.to_json m.series));
      ("generated", J.Num (float_of_int m.generated));
      ("fault_intervals", J.Arr (List.map interval_to_json m.fault_intervals));
      ( "resilience",
        match m.resilience with
        | None -> J.Null
        | Some r -> resilience_to_json r );
    ]

type entity_replicated = {
  entity : string;
  utilization_mean : float;
  drops_mean : float;
}

type resilience_replicated = {
  recovered_runs : int;
  recovery_mean : float;
  recovery_max : float;
  worst_throughput_mean : float;
  worst_throughput_min : float;
}

type replicated = {
  runs : int;
  throughput_mean : float;
  throughput_stddev : float;
  latency_mean : float;
  latency_stddev : float;
  loss_mean : float;
  entities : entity_replicated list;
  resilience : resilience_replicated option;
}

let replication_configs config runs =
  if runs < 2 then invalid_arg "Netsim.run_replicated: needs runs >= 2";
  List.init runs (fun i -> { config with seed = config.seed + i })

let replication_specs (spec : Run.t) runs =
  List.map
    (fun config -> Run.with_config spec config)
    (replication_configs spec.Run.config runs)

let replicated_stats summaries =
  let runs = List.length summaries in
  let stat f =
    Array.of_list (List.map f summaries)
  in
  let throughputs = stat (fun s -> s.Telemetry.throughput) in
  let latencies = stat (fun s -> s.Telemetry.mean_latency) in
  let losses = stat (fun s -> s.Telemetry.loss_rate) in
  let module St = Lognic_numerics.Stats in
  {
    runs;
    throughput_mean = St.mean throughputs;
    throughput_stddev = St.stddev throughputs;
    latency_mean = St.mean latencies;
    latency_stddev = St.stddev latencies;
    loss_mean = St.mean losses;
    entities = [];
    resilience = None;
  }

let replicated_of_summaries summaries =
  if List.length summaries < 2 then
    invalid_arg "Netsim.replicated_of_summaries: needs >= 2";
  replicated_stats summaries

let resilience_across measurements =
  let per_run =
    List.filter_map (fun (m : measurement) -> m.resilience) measurements
  in
  match per_run with
  | [] -> None
  | per_run ->
    let recoveries = List.filter_map (fun r -> r.recovery_time) per_run in
    let worsts = List.map (fun r -> r.worst_throughput) per_run in
    let n = float_of_int (List.length recoveries) in
    Some
      {
        recovered_runs = List.length recoveries;
        recovery_mean =
          (if recoveries = [] then 0.
           else List.fold_left ( +. ) 0. recoveries /. n);
        recovery_max = List.fold_left Float.max 0. recoveries;
        worst_throughput_mean =
          List.fold_left ( +. ) 0. worsts /. float_of_int (List.length worsts);
        worst_throughput_min = List.fold_left Float.min infinity worsts;
      }

let replicated_of_measurements measurements =
  if List.length measurements < 2 then
    invalid_arg "Netsim.replicated_of_measurements: needs >= 2";
  let runs = float_of_int (List.length measurements) in
  (* Per-entity across-run means, in the first run's (deterministic)
     entity order: every replication simulates the same graph, so the
     entity lists line up run to run. *)
  let entity_rows m =
    List.map (fun v -> (v.vlabel, v.utilization, float_of_int v.drops))
      m.vertex_stats
    @ List.map
        (fun s -> (s.mlabel, s.m_utilization, float_of_int s.m_rejections))
        m.medium_stats
  in
  let acc = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun (entity, util, drops) ->
          let u, d =
            Option.value (Hashtbl.find_opt acc entity) ~default:(0., 0.)
          in
          Hashtbl.replace acc entity (u +. util, d +. drops))
        (entity_rows m))
    measurements;
  let entities =
    List.map
      (fun (entity, _, _) ->
        let u, d = Hashtbl.find acc entity in
        { entity; utilization_mean = u /. runs; drops_mean = d /. runs })
      (entity_rows (List.hd measurements))
  in
  {
    (replicated_stats (List.map (fun m -> m.summary) measurements)) with
    entities;
    resilience = resilience_across measurements;
  }

let execute_replicated ?(runs = 5) spec =
  replicated_of_measurements (List.map execute (replication_specs spec runs))

let run_replicated ?(config = default_config) ?(runs = 5) g ~hw ~mix =
  execute_replicated ~runs (Run.make ~config g ~hw ~mix)
