module G = Lognic.Graph
module N = Lognic_numerics

type config = {
  seed : int;
  duration : float;
  warmup : float;
  service_dist : Ip_node.service_dist;
  arrival : Traffic_gen.arrival;
}

let default_config =
  {
    seed = 1;
    duration = 0.1;
    warmup = 0.01;
    service_dist = Ip_node.Exponential;
    arrival = Traffic_gen.Poisson;
  }

type vertex_stats = {
  vid : G.vertex_id;
  vlabel : string;
  drops : int;
  completions : int;
  utilization : float;
}

type measurement = {
  summary : Telemetry.summary;
  vertex_stats : vertex_stats list;
  interface_utilization : float;
  memory_utilization : float;
  generated : int;
}

(* Probability that a packet's walk crosses each vertex/edge, from the
   delta-proportional routing; needed to scale per-packet quantities so
   aggregate loads match the model's W-fractions. *)
let reach_probabilities g =
  let p_vertex = Hashtbl.create 16 in
  let p_edge = Hashtbl.create 16 in
  let ingresses = G.ingress_vertices g in
  let ingress_share = 1. /. float_of_int (List.length ingresses) in
  List.iter (fun (v : G.vertex) -> Hashtbl.replace p_vertex v.id ingress_share) ingresses;
  let order =
    match G.topological_order g with
    | Some o -> o
    | None -> invalid_arg "Netsim: graph has a cycle"
  in
  List.iter
    (fun id ->
      let p = Option.value (Hashtbl.find_opt p_vertex id) ~default:0. in
      let outs = G.out_edges g id in
      let total = List.fold_left (fun acc (e : G.edge) -> acc +. e.delta) 0. outs in
      if total > 0. then
        List.iter
          (fun (e : G.edge) ->
            let pe = p *. e.delta /. total in
            Hashtbl.replace p_edge (e.src, e.dst) pe;
            let prev = Option.value (Hashtbl.find_opt p_vertex e.dst) ~default:0. in
            Hashtbl.replace p_vertex e.dst (prev +. pe))
          outs)
    order;
  (p_vertex, p_edge)

let run ?(config = default_config) g ~hw ~mix =
  (match G.validate g with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Netsim.run: invalid graph: " ^ String.concat "; " errors));
  let engine = Engine.create () in
  let rng = N.Rng.create ~seed:config.seed in
  let gen_rng = N.Rng.split rng in
  let route_rng = N.Rng.split rng in
  let telemetry = Telemetry.create ~warmup:config.warmup in
  let p_vertex, p_edge = reach_probabilities g in
  let prob_vertex id = Option.value (Hashtbl.find_opt p_vertex id) ~default:0. in
  let prob_edge e = Option.value (Hashtbl.find_opt p_edge e) ~default:0. in
  let interface =
    Medium.create engine ~label:"interface"
      ~bandwidth:hw.Lognic.Params.bw_interface ()
  in
  let memory =
    Medium.create engine ~label:"memory" ~bandwidth:hw.Lognic.Params.bw_memory ()
  in
  let links = Hashtbl.create 8 in
  List.iter
    (fun (e : G.edge) ->
      match e.bandwidth with
      | Some bw ->
        Hashtbl.replace links (e.src, e.dst)
          (Medium.create engine
             ~label:(Printf.sprintf "link-%d-%d" e.src e.dst)
             ~bandwidth:bw ())
      | None -> ())
    (G.edges g);
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun (v : G.vertex) ->
      if v.service.throughput < infinity then begin
        let d = v.service.parallelism in
        let aggregate =
          v.service.partition *. v.service.accel *. v.service.throughput
        in
        let node =
          Ip_node.create engine ~rng:(N.Rng.split rng) ~label:v.label ~engines:d
            ~rate_per_engine:(aggregate /. float_of_int d)
            ~queue_capacity:v.service.queue_capacity
            ~service_dist:config.service_dist
        in
        Hashtbl.replace nodes v.id node
      end)
    (G.vertices g);
  (* Per-vertex processing-work multiplier: size * inflow / p(v). *)
  let work_factor id =
    let p = prob_vertex id in
    if p <= 0. then 0. else Lognic.Throughput.vertex_inflow g id /. p
  in
  let choose_out_edge id =
    let outs = G.out_edges g id in
    let total = List.fold_left (fun acc (e : G.edge) -> acc +. e.delta) 0. outs in
    if total <= 0. then None
    else begin
      let target = N.Rng.float route_rng total in
      let rec pick acc = function
        | [] -> None
        | [ e ] -> Some e
        | (e : G.edge) :: rest ->
          let acc = acc +. e.delta in
          if target < acc then Some e else pick acc rest
      in
      pick 0. outs
    end
  in
  let rec arrive id (packet : Packet.t) =
    let v = G.vertex g id in
    let work = packet.size *. work_factor id in
    let on_served () = depart id v packet in
    match Hashtbl.find_opt nodes id with
    | None -> on_served ()
    | Some node ->
      if not (Ip_node.submit node ~work on_served) then
        Telemetry.record_drop telemetry ~now:(Engine.now engine)
  and depart id (v : G.vertex) packet =
    if v.kind = G.Egress then
      Telemetry.record_completion telemetry ~now:(Engine.now engine)
        ~born:packet.born ~size:packet.size ~klass:packet.klass
    else
      match choose_out_edge id with
      | None ->
        (* Dead end without egress: validation rejects IPs like this, so
           only an ingress with zero-delta out-edges can reach here. *)
        ()
      | Some e ->
        let continue () = traverse e packet in
        if v.service.overhead > 0. then
          Engine.schedule_after engine ~delay:v.service.overhead continue
        else continue ()
  and traverse (e : G.edge) packet =
    let pe = prob_edge (e.src, e.dst) in
    let scale x = if pe <= 0. then 0. else packet.size *. x /. pe in
    let drop () = Telemetry.record_drop telemetry ~now:(Engine.now engine) in
    let via_link () =
      match Hashtbl.find_opt links (e.src, e.dst) with
      | Some link ->
        if
          not
            (Medium.transfer link ~bytes:(scale e.delta) (fun () ->
                 arrive e.dst packet))
        then drop ()
      | None -> arrive e.dst packet
    in
    let via_memory () =
      if not (Medium.transfer memory ~bytes:(scale e.beta) via_link) then drop ()
    in
    if not (Medium.transfer interface ~bytes:(scale e.alpha) via_memory) then
      drop ()
  in
  let ingresses = G.ingress_vertices g in
  let ingress_ids = Array.of_list (List.map (fun (v : G.vertex) -> v.id) ingresses) in
  let on_packet packet =
    Telemetry.record_arrival telemetry ~now:(Engine.now engine)
      ~size:packet.Packet.size;
    let entry =
      if Array.length ingress_ids = 1 then ingress_ids.(0)
      else ingress_ids.(N.Rng.int route_rng (Array.length ingress_ids))
    in
    arrive entry packet
  in
  let gen =
    Traffic_gen.create engine ~rng:gen_rng ~arrival:config.arrival ~mix
      ~on_packet
  in
  Traffic_gen.start gen ~until:config.duration;
  Engine.run ~until:config.duration engine;
  let summary = Telemetry.summarize telemetry ~horizon:config.duration in
  let vertex_stats =
    List.filter_map
      (fun (v : G.vertex) ->
        match Hashtbl.find_opt nodes v.id with
        | None -> None
        | Some node ->
          Some
            {
              vid = v.id;
              vlabel = v.label;
              drops = Ip_node.drops node;
              completions = Ip_node.completions node;
              utilization = Ip_node.utilization node ~until:config.duration;
            })
      (G.vertices g)
  in
  {
    summary;
    vertex_stats;
    interface_utilization = Medium.utilization interface ~until:config.duration;
    memory_utilization = Medium.utilization memory ~until:config.duration;
    generated = Traffic_gen.generated gen;
  }

let run_single ?config g ~hw ~traffic = run ?config g ~hw ~mix:[ (traffic, 1.) ]

type replicated = {
  runs : int;
  throughput_mean : float;
  throughput_stddev : float;
  latency_mean : float;
  latency_stddev : float;
  loss_mean : float;
}

let replication_configs config runs =
  if runs < 2 then invalid_arg "Netsim.run_replicated: needs runs >= 2";
  List.init runs (fun i -> { config with seed = config.seed + i })

let replicated_of_summaries summaries =
  let runs = List.length summaries in
  if runs < 2 then invalid_arg "Netsim.replicated_of_summaries: needs >= 2";
  let stat f =
    Array.of_list (List.map f summaries)
  in
  let throughputs = stat (fun s -> s.Telemetry.throughput) in
  let latencies = stat (fun s -> s.Telemetry.mean_latency) in
  let losses = stat (fun s -> s.Telemetry.loss_rate) in
  let module St = Lognic_numerics.Stats in
  {
    runs;
    throughput_mean = St.mean throughputs;
    throughput_stddev = St.stddev throughputs;
    latency_mean = St.mean latencies;
    latency_stddev = St.stddev latencies;
    loss_mean = St.mean losses;
  }

let run_replicated ?(config = default_config) ?(runs = 5) g ~hw ~mix =
  replicated_of_summaries
    (List.map
       (fun config -> (run ~config g ~hw ~mix).summary)
       (replication_configs config runs))
