module G = Lognic.Graph
module N = Lognic_numerics

type config = {
  seed : int;
  duration : float;
  warmup : float;
  service_dist : Ip_node.service_dist;
  arrival : Traffic_gen.arrival;
  sample_interval : float option;
  series_capacity : int;
  trace : Trace.config option;
  check_invariants : bool;
  metrics : Metrics.config option;
  tenants : Tenant.set option;
  flow_cache : Lognic.Flowcache.spec option;
}

let default_config =
  {
    seed = 1;
    duration = 0.1;
    warmup = 0.01;
    service_dist = Ip_node.Exponential;
    arrival = Traffic_gen.Poisson;
    sample_interval = None;
    series_capacity = 4096;
    trace = None;
    check_invariants = false;
    metrics = None;
    tenants = None;
    flow_cache = None;
  }

(* The builder is the supported way to assemble a config; the record
   stays public (and byte-compatible) for existing literal-update code,
   but new fields only ever grow the builder surface. Setters take the
   config last so they chain: [Config.(default |> with_seed 7 |> ...)]. *)
module Config = struct
  type t = config

  let default = default_config
  let with_seed seed c = { c with seed }
  let with_duration duration c = { c with duration }
  let with_warmup warmup c = { c with warmup }

  let with_horizon ?warmup duration c =
    let warmup = match warmup with Some w -> w | None -> duration /. 10. in
    { c with duration; warmup }

  let with_service_dist service_dist c = { c with service_dist }
  let with_arrival arrival c = { c with arrival }
  let with_sampling ?(capacity = default.series_capacity) interval c =
    { c with sample_interval = Some interval; series_capacity = capacity }
  let with_trace trace c = { c with trace = Some trace }
  let with_invariants check_invariants c = { c with check_invariants }
  let with_metrics metrics c = { c with metrics = Some metrics }
  let with_tenants tenants c = { c with tenants = Some tenants }
  let without_tenants c = { c with tenants = None }
  let with_flow_cache spec c = { c with flow_cache = Some spec }
  let without_flow_cache c = { c with flow_cache = None }
end

module Run = struct
  type t = {
    graph : G.t;
    hw : Lognic.Params.hardware;
    mix : Lognic.Traffic.mix;
    config : config;
    faults : Faults.plan;
  }

  let make ?(config = default_config) ?(faults = Faults.empty) graph ~hw ~mix =
    { graph; hw; mix; config; faults }

  let single ?config ?faults graph ~hw ~traffic =
    make ?config ?faults graph ~hw ~mix:[ (traffic, 1.) ]

  let with_config t config = { t with config }
  let with_faults t faults = { t with faults }
  let with_mix t mix = { t with mix }
  let with_hw t hw = { t with hw }
  let with_seed t seed = { t with config = { t.config with seed } }
  let with_duration t duration = { t with config = { t.config with duration } }

  let with_tenants t tenants =
    { t with config = { t.config with tenants = Some tenants } }

  let with_flow_cache t spec =
    { t with config = { t.config with flow_cache = Some spec } }
end

type vertex_stats = {
  vid : G.vertex_id;
  vlabel : string;
  drops : int;
  queue_drops : int array;
  completions : int;
  utilization : float;
}

type medium_stats = {
  mlabel : string;
  m_utilization : float;
  m_busy : float;
  m_rejections : int;
}

type interval_stats = {
  i_start : float;
  i_stop : float;
  i_faults : string list;
  i_offered : int;
  i_delivered : int;
  i_dropped : int;
  i_throughput : float;
  i_latency : float;
}

type resilience = {
  recovery_time : float option;
  worst_throughput : float;
  worst_start : float;
}

type measurement = {
  summary : Telemetry.summary;
  vertex_stats : vertex_stats list;
  medium_stats : medium_stats list;
  drop_breakdown : (Telemetry.drop_site * int) list;
  series : Telemetry.Series.t list;
  interface_utilization : float;
  memory_utilization : float;
  generated : int;
  fault_intervals : interval_stats list;
  resilience : resilience option;
  trace : Trace.t option;
  invariants : Invariants.report option;
  metrics : Metrics.t option;
  tenants : Tenant.stats option;
  flow_cache : Flow_cache.stats option;
}

(* An interned drop counter plus its rendered site name, resolved once
   at setup so the per-drop path neither hashes a site value nor
   formats a string. *)
type dropper = { dk : Telemetry.counter; d_name : string }

(* Dense per-edge runtime row: everything a packet hop reads, one array
   load away. [e_pe] is the edge's reach probability under the
   delta-proportional routing (scales per-packet bytes so aggregate
   medium loads match the model's W-fractions). *)
type edge_rt = {
  e_dst : G.vertex_id;
  e_delta : float;
  e_alpha : float;
  e_beta : float;
  e_pe : float;
  e_link : Medium.t option;
  e_link_drop : dropper;  (* meaningful only when [e_link] is [Some] *)
}

(* Dense per-vertex runtime row, indexed by the (dense) vertex id. *)
type vertex_rt = {
  v_label : string;
  v_is_egress : bool;
  v_work_factor : float;  (* size multiplier: inflow / p(v) *)
  v_overhead : float;
  v_cap_limit : float;
      (* in-system bound for the queue-capacity invariant: the
         configured capacity for single-queue nodes, and
         queues × capacity + engines under the tenanted multiqueue
         convention (waiting-only per-queue capacity) *)
  v_node : Ip_node.t option;
  v_drop : dropper;  (* meaningful only when [v_node] is [Some] *)
  v_out : int array;  (* edge_rt indices, in {!G.out_edges} order *)
  v_out_total : float;  (* sum of out-edge deltas, in the same order *)
}

(* A pooled in-flight packet: the latency ledger lives in the [fs]
   float array ({!Telemetry.flight_slots} layout, unboxed stores), and
   each continuation of the walk is a per-flight closure built once
   when the flight is first allocated. Finished flights chain through
   [fl_next] onto a free list ([fl_self] is the pre-built [Some] link,
   so releasing allocates nothing), and steady state recycles them:
   after warm-up the walk of a packet allocates no flight state at
   all. *)
type flight = {
  fs : float array;
  mutable fl_id : int;
  mutable fl_klass : int;
  mutable fl_tenant : int;  (* owning tenant id; 0 when untenanted *)
  mutable fl_flow : int;  (* flow id; meaningful only with a flow cache *)
  mutable fl_fclass : int;  (* hot/warm/cold (0..2); -1 = unclassified *)
  mutable fl_vertex : G.vertex_id;  (* vertex being visited *)
  mutable fl_edge : int;  (* edge_rt index being traversed *)
  mutable fl_tr : Trace.record option;
  mutable fl_next : flight option;  (* free-list link *)
  mutable fl_self : flight option;  (* [Some self], built once *)
  fl_tally : float array option;  (* [Some fs], built once *)
  fl_on_served : unit -> unit;
  fl_continue : unit -> unit;
  fl_via_memory : unit -> unit;
  fl_via_link : unit -> unit;
  fl_arrive : unit -> unit;
  mutable fl_span_node :
    (lane:int -> queued:float -> service:float -> unit) option;
  mutable fl_span_medium :
    (label:string -> queued:float -> wire:float -> unit) option;
  (* the built sinks, installed into the two active fields only for
     sampled packets — see the per-packet installation site *)
  mutable fl_span_node_on :
    (lane:int -> queued:float -> service:float -> unit) option;
  mutable fl_span_medium_on :
    (label:string -> queued:float -> wire:float -> unit) option;
}

(* Probability that a packet's walk crosses each vertex/edge, from the
   delta-proportional routing; needed to scale per-packet quantities so
   aggregate loads match the model's W-fractions. *)
let reach_probabilities g =
  let p_vertex = Hashtbl.create 16 in
  let p_edge = Hashtbl.create 16 in
  let ingresses = G.ingress_vertices g in
  let ingress_share = 1. /. float_of_int (List.length ingresses) in
  List.iter (fun (v : G.vertex) -> Hashtbl.replace p_vertex v.id ingress_share) ingresses;
  let order =
    match G.topological_order g with
    | Some o -> o
    | None -> invalid_arg "Netsim: graph has a cycle"
  in
  List.iter
    (fun id ->
      let p = Option.value (Hashtbl.find_opt p_vertex id) ~default:0. in
      let outs = G.out_edges g id in
      let total = List.fold_left (fun acc (e : G.edge) -> acc +. e.delta) 0. outs in
      if total > 0. then
        List.iter
          (fun (e : G.edge) ->
            let pe = p *. e.delta /. total in
            Hashtbl.replace p_edge (e.src, e.dst) pe;
            let prev = Option.value (Hashtbl.find_opt p_vertex e.dst) ~default:0. in
            Hashtbl.replace p_vertex e.dst (prev +. pe))
          outs)
    order;
  (p_vertex, p_edge)

let rec remove_first x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_first x rest

(* Sub-interval grid for fault-time accounting: the fault-plan edges
   refined with a uniform duration/64 grid, so recovery after the last
   fault clears is observable at finer resolution than the plan's own
   boundaries. Only built when a plan is present. *)
let interval_boundaries ~duration fault_spans =
  let grid = List.init 64 (fun i -> float_of_int i *. duration /. 64.) in
  let edges = List.map (fun (a, _, _) -> a) fault_spans in
  Array.of_list (List.sort_uniq Float.compare (grid @ edges))

let execute_with ?engine:reused (spec : Run.t) =
  let g = spec.Run.graph in
  let hw = spec.Run.hw in
  let config = spec.Run.config in
  let faults = spec.Run.faults in
  (match G.validate g with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Netsim.run: invalid graph: " ^ String.concat "; " errors));
  let have_faults = not (Faults.is_empty faults) in
  (* ---- tenants ------------------------------------------------------ *)
  let tenant_set = config.tenants in
  let ntenants =
    match tenant_set with None -> 0 | Some s -> Tenant.count s
  in
  (* A single tenant schedules exactly like an untenanted run — the
     hierarchical arbiter would be a one-group ring with one weight-1
     grant per packet — so tenanted node construction (and the tenant
     rng split below) switch on only at two tenants or more. That keeps
     single-tenant measurement JSON byte-identical to the untenanted
     baseline while still attributing every packet to the tenant. *)
  let tenanted_sched = ntenants >= 2 in
  let nclasses = max 1 (List.length spec.Run.mix) in
  (* queue-index stride for tenanted submission; 0 selects the
     untenanted queue-0 path (one int compare per arrival) *)
  let tenant_classes = if tenanted_sched then nclasses else 0 in
  (* The checker is allocated only on request; every hook below matches
     on it first, so the disabled path costs one pointer compare per
     hook site (gated by bench/main.exe --invariant-overhead). *)
  let checker = if config.check_invariants then Some (Invariants.create ()) else None in
  (* A reused engine is reset, which keeps its event-queue arrays warm:
     replicated runs stop paying queue (re)allocation per run, and the
     calendar queue pops in exact (time, seq) order regardless of its
     inherited bucket geometry, so reuse is result-identical. *)
  let engine =
    match reused with
    | Some e ->
      Engine.reset e;
      e
    | None -> Engine.create ()
  in
  let rng = N.Rng.create ~seed:config.seed in
  let gen_rng = N.Rng.split rng in
  let route_rng = N.Rng.split rng in
  let telemetry = Telemetry.create ~warmup:config.warmup in
  let p_vertex, p_edge = reach_probabilities g in
  let prob_vertex id = Option.value (Hashtbl.find_opt p_vertex id) ~default:0. in
  let prob_edge e = Option.value (Hashtbl.find_opt p_edge e) ~default:0. in
  let interface =
    Medium.create engine ~label:"interface"
      ~bandwidth:hw.Lognic.Params.bw_interface ()
  in
  let memory =
    Medium.create engine ~label:"memory" ~bandwidth:hw.Lognic.Params.bw_memory ()
  in
  let links = Hashtbl.create 8 in
  List.iter
    (fun (e : G.edge) ->
      match e.bandwidth with
      | Some bw ->
        Hashtbl.replace links (e.src, e.dst)
          (Medium.create engine
             ~label:(Printf.sprintf "link-%d-%d" e.src e.dst)
             ~bandwidth:bw ())
      | None -> ())
    (G.edges g);
  let tracing = config.trace <> None in
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun (v : G.vertex) ->
      if v.service.throughput < infinity then begin
        let d = v.service.parallelism in
        let aggregate =
          v.service.partition *. v.service.accel *. v.service.throughput
        in
        let node =
          match tenant_set with
          | Some tset when tenanted_sched ->
            (* One queue group per tenant/VF, one queue per traffic
               class within it — the SR-IOV two-stage arbiter. *)
            Ip_node.create_hierarchical ~track_lanes:tracing engine
              ~rng:(N.Rng.split rng) ~label:v.label ~engines:d
              ~rate_per_engine:(aggregate /. float_of_int d)
              ~entries_per_queue:v.service.queue_capacity
              ~group_weights:(Tenant.weights tset)
              ~class_weights:(Tenant.class_weight_rows tset ~classes:nclasses)
              ~service_dist:config.service_dist
          | _ ->
            Ip_node.create ~track_lanes:tracing engine ~rng:(N.Rng.split rng)
              ~label:v.label ~engines:d
              ~rate_per_engine:(aggregate /. float_of_int d)
              ~queue_capacity:v.service.queue_capacity
              ~service_dist:config.service_dist
        in
        Hashtbl.replace nodes v.id node
      end)
    (G.vertices g);
  (* The fault rng is split only when a plan is present, after the
     per-node rngs and before the trace rng: an empty plan leaves every
     stream exactly where the pre-fault code put it (byte-identical
     runs), and a non-empty plan perturbs at most which packets the
     trace reservoir samples — never a measured quantity. *)
  let faults_rng = if have_faults then Some (N.Rng.split rng) else None in
  (* The tenant rng follows the same discipline as the fault rng: split
     only when arrivals actually need a tenant draw (>= 2 tenants), so
     untenanted and single-tenant runs leave every stream exactly where
     the pre-tenant code put it. Split before the trace rng, which must
     stay last. *)
  let tenant_rng = if tenanted_sched then Some (N.Rng.split rng) else None in
  (* The accumulator exists whenever tenants are configured — a
     single-tenant run still reports per-tenant stats — and its pooled
     arrays make every record a plain store (nothing per-tenant on the
     hot path). *)
  let tenant_acc =
    match tenant_set with
    | None -> None
    | Some tset -> Some (Tenant.acc tset ~warmup:config.warmup)
  in
  let draw_tenant =
    match (tenant_rng, tenant_set) with
    | Some trng, Some tset ->
      (* bits draw + integer-lattice search: the whole per-arrival
         tenant decision allocates nothing *)
      fun () -> Tenant.index_of_bits tset (N.Rng.bits trng)
    | _ -> fun () -> 0
  in
  (* ---- flow cache --------------------------------------------------- *)
  (* The flow rng follows the fault/tenant discipline: split only when
     the flow cache is enabled, after the tenant rng and before the
     trace rng (which must stay last) — so flow-cache-off runs leave
     every stream exactly where the pre-flow-cache code put it
     (byte-identical measurements, gated by bench/main.exe
     --flowcache-overhead), and enabled runs draw flow ids from their
     own stream, bit-identical at any --jobs. *)
  let flow_state =
    Option.map
      (fun spec -> Flow_cache.create ~spec ~warmup:config.warmup)
      config.flow_cache
  in
  let flow_rng =
    match flow_state with Some _ -> Some (N.Rng.split rng) | None -> None
  in
  (* Role of each vertex under state-dependent routing: 1 = EMC,
     2 = megaflow, 0 = ordinary delta-proportional routing. Cache
     vertices are resolved by label and must offer exactly the
     hit/miss out-edge pair (first out-edge added = hit route). *)
  let fc_role =
    let roles = Array.make (G.vertex_count g) 0 in
    (match config.flow_cache with
    | None -> ()
    | Some spec ->
      let resolve role label =
        match
          List.find_opt
            (fun (v : G.vertex) -> v.label = label)
            (G.vertices g)
        with
        | None ->
          invalid_arg
            (Printf.sprintf "Netsim.run: flow cache needs a vertex %S" label)
        | Some v ->
          let outs = List.length (G.out_edges g v.id) in
          if outs <> 2 then
            invalid_arg
              (Printf.sprintf
                 "Netsim.run: flow-cache vertex %S needs exactly 2 out-edges \
                  (hit, miss), has %d"
                 label outs);
          roles.(v.id) <- role
      in
      resolve 1 spec.Lognic.Flowcache.emc_label;
      resolve 2 spec.Lognic.Flowcache.megaflow_label);
    roles
  in
  (* The trace rng is split last — after every stream the untraced run
     splits — and only when tracing is on, so enabling tracing perturbs
     no other stochastic stream and measurements stay bit-identical. *)
  let trace =
    Option.map
      (fun tc -> Trace.create ~config:tc ~rng:(N.Rng.split rng) ())
      config.trace
  in
  (* Media in deterministic report order: the two shared media first,
     then dedicated links in edge order. *)
  let media =
    (interface :: memory :: [])
    @ List.filter_map
        (fun (e : G.edge) -> Hashtbl.find_opt links (e.src, e.dst))
        (G.edges g)
  in
  (* ---- fault realization ------------------------------------------- *)
  let burst_p = ref 0. in
  let fault_spans =
    if have_faults then Faults.intervals ~duration:config.duration faults
    else []
  in
  let boundaries =
    if have_faults then interval_boundaries ~duration:config.duration fault_spans
    else [||]
  in
  let nbins = Array.length boundaries in
  let bin_offered = Array.make (max 1 nbins) 0 in
  let bin_delivered = Array.make (max 1 nbins) 0 in
  let bin_dropped = Array.make (max 1 nbins) 0 in
  let bin_bytes = Array.make (max 1 nbins) 0. in
  let bin_latency = Array.make (max 1 nbins) 0. in
  let bin_of t =
    let lo = ref 0 and hi = ref (nbins - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if boundaries.(mid) <= t then lo := mid else hi := mid - 1
    done;
    !lo
  in
  if have_faults then begin
    let node_by_label = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ node -> Hashtbl.replace node_by_label (Ip_node.label node) node)
      nodes;
    let node_of vertex =
      match Hashtbl.find_opt node_by_label vertex with
      | Some node -> node
      | None ->
        invalid_arg
          (Printf.sprintf
             "Netsim: fault targets unknown or infinite-throughput vertex %S"
             vertex)
    in
    let medium_of label =
      match List.find_opt (fun m -> Medium.label m = label) media with
      | Some m -> m
      | None ->
        invalid_arg (Printf.sprintf "Netsim: fault targets unknown medium %S" label)
    in
    (* Validate every target up front so a bad plan fails before the
       simulation starts, not at the event's fire time. *)
    List.iter
      (fun (ev : Faults.event) ->
        match ev.fault with
        | Faults.Engine_down { vertex; _ } | Faults.Queue_shrunk { vertex; _ } ->
          ignore (node_of vertex)
        | Faults.Medium_degraded { medium; _ } -> ignore (medium_of medium)
        | Faults.Drop_burst _ -> ())
      faults;
    (* Overlapping faults compose; each target keeps its active
       contributions in activation order and the effective value is
       recomputed from that list on every change, so apply/revert
       sequences are deterministic and leave no floating-point residue
       once all faults clear. *)
    let down = Hashtbl.create 4 in
    let factors = Hashtbl.create 4 in
    let caps = Hashtbl.create 4 in
    let bursts = ref [] in
    let active key table = Option.value (Hashtbl.find_opt table key) ~default:[] in
    let set_down vertex delta =
      let node = node_of vertex in
      let total = List.fold_left ( + ) 0 delta in
      Hashtbl.replace down vertex delta;
      Ip_node.set_offline node (min (Ip_node.engines node) total)
    in
    let set_factor medium fs =
      Hashtbl.replace factors medium fs;
      Medium.set_scale (medium_of medium) (List.fold_left ( *. ) 1. fs)
    in
    let set_cap vertex cs =
      Hashtbl.replace caps vertex cs;
      Ip_node.set_capacity_override (node_of vertex)
        (match cs with [] -> None | cs -> Some (List.fold_left min max_int cs))
    in
    let set_bursts ps =
      bursts := ps;
      burst_p := 1. -. List.fold_left (fun acc p -> acc *. (1. -. p)) 1. ps
    in
    let apply (ev : Faults.event) () =
      match ev.fault with
      | Faults.Engine_down { vertex; engines } ->
        set_down vertex (active vertex down @ [ engines ])
      | Faults.Medium_degraded { medium; factor } ->
        set_factor medium (active medium factors @ [ factor ])
      | Faults.Queue_shrunk { vertex; capacity } ->
        set_cap vertex (active vertex caps @ [ capacity ])
      | Faults.Drop_burst { probability } -> set_bursts (!bursts @ [ probability ])
    in
    let revert (ev : Faults.event) () =
      match ev.fault with
      | Faults.Engine_down { vertex; engines } ->
        set_down vertex (remove_first engines (active vertex down))
      | Faults.Medium_degraded { medium; factor } ->
        set_factor medium (remove_first factor (active medium factors))
      | Faults.Queue_shrunk { vertex; capacity } ->
        set_cap vertex (remove_first capacity (active vertex caps))
      | Faults.Drop_burst { probability } ->
        set_bursts (remove_first probability !bursts)
    in
    List.iter
      (fun (ev : Faults.event) ->
        if ev.start < config.duration then begin
          Engine.schedule engine ~at:ev.start (apply ev);
          if ev.stop < config.duration then
            Engine.schedule engine ~at:ev.stop (revert ev)
        end)
      faults
  end;
  (* ---- dense runtime tables ---------------------------------------- *)
  let dropper site =
    {
      dk = Telemetry.drop_counter telemetry site;
      d_name = Telemetry.drop_site_name site;
    }
  in
  let interface_drop = dropper (Telemetry.Medium_buffer "interface") in
  let memory_drop = dropper (Telemetry.Medium_buffer "memory") in
  let burst_drop = dropper Telemetry.Fault_burst in
  let edge_list = G.edges g in
  let edge_index = Hashtbl.create 16 in
  List.iteri
    (fun i (e : G.edge) -> Hashtbl.replace edge_index (e.src, e.dst) i)
    edge_list;
  let ert =
    Array.of_list
      (List.map
         (fun (e : G.edge) ->
           let link = Hashtbl.find_opt links (e.src, e.dst) in
           {
             e_dst = e.dst;
             e_delta = e.delta;
             e_alpha = e.alpha;
             e_beta = e.beta;
             e_pe = prob_edge (e.src, e.dst);
             e_link = link;
             e_link_drop =
               (match link with
               | Some l -> dropper (Telemetry.Medium_buffer (Medium.label l))
               | None -> interface_drop);
           })
         edge_list)
  in
  (* Per-vertex processing-work multiplier: size * inflow / p(v). *)
  let work_factor id =
    let p = prob_vertex id in
    if p <= 0. then 0. else Lognic.Throughput.vertex_inflow g id /. p
  in
  let vrt =
    Array.init (G.vertex_count g) (fun id ->
        let v = G.vertex g id in
        let outs = G.out_edges g id in
        {
          v_label = v.label;
          v_is_egress = v.kind = G.Egress;
          v_work_factor = work_factor id;
          v_overhead = v.service.overhead;
          v_cap_limit =
            (let cap = v.service.queue_capacity in
             if tenanted_sched && Hashtbl.mem nodes id then
               float_of_int
                 ((ntenants * nclasses * cap) + v.service.parallelism)
             else float_of_int cap);
          v_node = Hashtbl.find_opt nodes id;
          v_drop =
            (if Hashtbl.mem nodes id then
               dropper (Telemetry.Node_queue { node = v.label; queue = 0 })
             else interface_drop);
          v_out =
            Array.of_list
              (List.map
                 (fun (e : G.edge) -> Hashtbl.find edge_index (e.src, e.dst))
                 outs);
          v_out_total =
            List.fold_left (fun acc (e : G.edge) -> acc +. e.delta) 0. outs;
        })
  in
  (* Media admission invariant: right after a successful transfer the
     backlog must still fit the buffer. Skipped on faulted runs: a
     bandwidth restore mid-backlog legitimately re-values the queued
     bytes at the healthy rate, which can exceed the byte limit the
     degraded admission enforced. *)
  let check_medium =
    match checker with
    | Some inv when not have_faults ->
      fun m ->
        Invariants.check_bound inv ~law:"medium-buffer"
          ~entity:(Medium.label m) ~time:(Engine.now engine)
          ~limit:(Medium.buffer m) ~actual:(Medium.backlog m)
          "admitted backlog must fit the rate-matching buffer"
    | Some _ | None -> fun _ -> ()
  in
  (* ---- live metrics ------------------------------------------------ *)
  (* The metrics registry is built entirely from read-only probes over
     state the simulator already maintains, splits no rng stream, and
     its ticks are extra scheduled events — which shift absolute event
     sequence numbers but never the relative pop order of packet events
     (the same argument as the series sampler). Enabling metrics
     therefore never changes simulation results or measurement JSON
     (gated by bench/main.exe --metrics-overhead). Instruments register
     in deterministic order: the run entity, drop sites in interning
     order, nodes in graph order, then media in report order. *)
  let metrics, metrics_hist =
    match config.metrics with
    | None -> (None, None)
    | Some mc ->
      let m = Metrics.create mc in
      Metrics.register m ~entity:"run" ~name:"offered" Metrics.Counter
        (fun () -> float_of_int (Telemetry.offered telemetry));
      Metrics.register m ~entity:"run" ~name:"delivered" Metrics.Counter
        (fun () -> float_of_int (Telemetry.delivered telemetry));
      Metrics.register m ~entity:"run" ~name:"dropped" Metrics.Counter
        (fun () -> float_of_int (Telemetry.dropped telemetry));
      Metrics.register m ~entity:"run" ~name:"delivered_bytes" Metrics.Counter
        (fun () -> Telemetry.delivered_bytes telemetry);
      (* The latency histogram is the one new hot-path instrument; its
         observe is allocation-free and windowed like the summary. Each
         tick synthesizes latency_p50 / latency_p99 for SLO rules. *)
      let hist = Metrics.histogram m ~entity:"run" ~name:"latency" () in
      (* Warmup-windowed drops per site, one entity per interned drop
         counter (every site was interned during setup above). *)
      List.iter
        (fun c ->
          Metrics.register m
            ~entity:(Telemetry.drop_site_name (Telemetry.counter_site c))
            ~name:"drops" Metrics.Counter
            (fun () -> float_of_int (Telemetry.counter_hits c)))
        (Telemetry.counters telemetry);
      List.iter
        (fun (v : G.vertex) ->
          match Hashtbl.find_opt nodes v.id with
          | None -> ()
          | Some node ->
            let entity = v.label in
            Metrics.register m ~entity ~name:"completions" Metrics.Counter
              (fun () -> float_of_int (Ip_node.completions node));
            Metrics.register m ~entity ~name:"drops" Metrics.Counter
              (fun () -> float_of_int (Ip_node.drops node));
            Metrics.register m ~entity ~name:"queue_depth" Metrics.Gauge
              (fun () -> float_of_int (Ip_node.in_system node));
            Metrics.register m ~entity ~name:"busy_engines" Metrics.Gauge
              (fun () -> float_of_int (Ip_node.busy_engines node));
            let nameplate = float_of_int (Ip_node.engines node) in
            (* cumulative busy-engine seconds over the nameplate count:
               as a [Rate], delta/interval is the interval utilization *)
            Metrics.register m ~entity ~name:"utilization" Metrics.Rate
              (fun () ->
                Ip_node.busy_within node ~until:(Engine.now engine)
                /. nameplate))
        (G.vertices g);
      List.iter
        (fun md ->
          let entity = Medium.label md in
          Metrics.register m ~entity ~name:"transfers" Metrics.Counter
            (fun () -> float_of_int (Medium.transfers md));
          Metrics.register m ~entity ~name:"rejections" Metrics.Counter
            (fun () -> float_of_int (Medium.rejections md));
          Metrics.register m ~entity ~name:"backlog_bytes" Metrics.Gauge
            (fun () -> Medium.backlog md);
          Metrics.register m ~entity ~name:"utilization" Metrics.Rate
            (fun () -> Medium.busy_within md ~until:(Engine.now engine)))
        media;
      (* Live fairness gauges over the tenant population; registered
         after every per-entity instrument so untenanted runs keep
         their historical instrument order (and NDJSON fixtures). *)
      (match tenant_acc with
      | None -> ()
      | Some a ->
        let fairness () = Tenant.live_fairness a ~horizon:(Engine.now engine) in
        Metrics.register m ~entity:"tenants" ~name:"maxmin_share" Metrics.Gauge
          (fun () -> (fairness ()).Tenant.maxmin_ratio);
        Metrics.register m ~entity:"tenants" ~name:"jain" Metrics.Gauge
          (fun () -> (fairness ()).Tenant.jain);
        Metrics.register m ~entity:"tenants" ~name:"interference" Metrics.Gauge
          (fun () -> (fairness ()).Tenant.interference));
      (* Attach the optional self-profiler to every phase source; it
         reads only the host's wall clock, never the simulation. *)
      (match Metrics.profiler m with
      | Some _ as p ->
        Hashtbl.iter (fun _ node -> Ip_node.set_profile node p) nodes;
        List.iter (fun md -> Medium.set_profile md p) media
      | None -> ());
      (* Tick scheduler on the same multiplicative time grid as the
         series sampler, so rounding never drops the final snapshot. *)
      let dt = mc.Metrics.interval in
      let time_of i = float_of_int i *. dt in
      let rec tick i =
        ignore (Metrics.tick m ~now:(time_of i));
        if time_of (i + 1) <= config.duration then
          Engine.schedule engine ~at:(time_of (i + 1)) (fun () -> tick (i + 1))
      in
      if dt <= config.duration then
        Engine.schedule engine ~at:dt (fun () -> tick 1)
      else
        (* Mirror the series sampler: an interval beyond the horizon
           still produces one end-of-run snapshot. *)
        Engine.schedule engine ~at:config.duration (fun () ->
            ignore (Metrics.tick m ~now:config.duration));
      (Some m, Some hist)
  in
  (* ---- the packet walk --------------------------------------------- *)
  (* Scratch cells for the routing scan: unboxed accumulator and index,
     so choosing an out-edge allocates nothing beyond the rng draw. The
     scan never calls out, so the cells cannot be clobbered reentrantly. *)
  let route_acc = Array.make 1 0. in
  let route_i = Array.make 1 0 in
  let free_flights = ref None in
  let rec arrive_f fl =
    let vr = vrt.(fl.fl_vertex) in
    match vr.v_node with
    | None -> serve_f fl
    | Some node ->
      let work = fl.fs.(Telemetry.slot_size) *. vr.v_work_factor in
      if
        (if tenant_classes = 0 then
           Ip_node.submit node ?span:fl.fl_span_node ?tally:fl.fl_tally ~work
             fl.fl_on_served
         else
           Ip_node.submit_at node ?tally:fl.fl_tally ?span:fl.fl_span_node
             ~queue:((fl.fl_tenant * tenant_classes) + fl.fl_klass)
             ~work fl.fl_on_served)
      then begin
        match checker with
        | Some inv ->
          (* Post-admission state bounds. [submit] may have run the
             whole downstream walk synchronously (zero-work fast path),
             but both bounds hold at every instant, so checking after
             it returns is still sound. (The flight may already be
             recycled here — only the node is consulted.) *)
          let time = Engine.now engine in
          Invariants.check_bound inv ~law:"queue-capacity" ~entity:vr.v_label
            ~time ~limit:vr.v_cap_limit
            ~actual:(float_of_int (Ip_node.in_system node))
            "in-system requests must not exceed the queue capacity";
          Invariants.check_bound inv ~law:"engine-count" ~entity:vr.v_label
            ~time
            ~limit:(float_of_int (Ip_node.engines node))
            ~actual:(float_of_int (Ip_node.busy_engines node))
            "busy engines must not exceed the configured engine count"
        | None -> ()
      end
      else drop_flight fl vr.v_drop
  and serve_f fl =
    let vr = vrt.(fl.fl_vertex) in
    if vr.v_is_egress then begin
      (match checker with
      | Some inv ->
        let now = Engine.now engine in
        Invariants.packet_delivered inv ~id:fl.fl_id ~time:now;
        (* Eq. 2 tiling: the four tallied components must account for
           this packet's entire end-to-end latency. Each hop adds its
           pieces from the same event times that advance the clock, so
           only float rounding separates the two sides. *)
        Invariants.check_close inv ~law:"latency-tiling"
          ~entity:(Printf.sprintf "packet-%d" fl.fl_id) ~time:now ~tol:1e-9
          ~expected:(now -. fl.fs.(Telemetry.slot_born))
          ~actual:
            (fl.fs.(Telemetry.slot_queueing)
            +. fl.fs.(Telemetry.slot_service)
            +. fl.fs.(Telemetry.slot_wire)
            +. fl.fs.(Telemetry.slot_overhead))
          "queueing + service + wire + overhead must equal birth-to-egress time"
      | None -> ());
      (match fl.fl_tr with
      | Some r -> Trace.deliver r ~time:(Engine.now engine)
      | None -> ());
      if have_faults then begin
        let b = bin_of fl.fs.(Telemetry.slot_born) in
        bin_delivered.(b) <- bin_delivered.(b) + 1;
        bin_bytes.(b) <- bin_bytes.(b) +. fl.fs.(Telemetry.slot_size);
        bin_latency.(b) <-
          bin_latency.(b) +. (Engine.now engine -. fl.fs.(Telemetry.slot_born))
      end;
      fl.fs.(Telemetry.slot_now) <- Engine.now engine;
      (* Live-metrics latency histogram, windowed by birth like the
         summary; [observe] is allocation-free and reads nothing back,
         so the disabled path is one pointer compare. *)
      (match metrics_hist with
      | Some h ->
        (* slot_now was stamped with the engine clock just above;
           observe_span keeps the hot path allocation-free *)
        if fl.fs.(Telemetry.slot_born) >= config.warmup then
          Metrics.observe_span h fl.fs ~from_slot:Telemetry.slot_born
            ~to_slot:Telemetry.slot_now
      | None -> ());
      Telemetry.record_completion_fs telemetry ~fs:fl.fs ~klass:fl.fl_klass;
      (match tenant_acc with
      | Some a -> Tenant.record_completion a ~tenant:fl.fl_tenant ~fs:fl.fs
      | None -> ());
      (match flow_state with
      | Some st -> Flow_cache.record_completion st ~klass:fl.fl_fclass ~fs:fl.fs
      | None -> ());
      release_flight fl
    end
    else if vr.v_out_total <= 0. then
      (* Dead end without egress: validation rejects IPs like this, so
         only an ingress with zero-delta out-edges can reach here. *)
      release_flight fl
    else begin
      (match flow_state with
      | Some st when fc_role.(fl.fl_vertex) <> 0 ->
        (* State-dependent split: the route out of a cache vertex is
           decided by an actual lookup on this packet's flow, not by
           the static deltas (hit = first out-edge, miss = second).
           The route rng is not consumed here, so its stream stays
           aligned across runs that only differ in cache geometry. *)
        let now = Engine.now engine in
        let hit =
          if fc_role.(fl.fl_vertex) = 1 then begin
            let h = Flow_cache.emc_lookup st ~now ~flow:fl.fl_flow in
            if h then fl.fl_fclass <- 0;
            h
          end
          else begin
            let h = Flow_cache.mega_lookup st ~now ~flow:fl.fl_flow in
            fl.fl_fclass <- (if h then 1 else 2);
            h
          end
        in
        fl.fl_edge <- vr.v_out.(if hit then 0 else 1)
      | _ ->
        (* Delta-proportional out-edge choice, same draw and the same
           accumulation order as the historical list walk. No draw can
           fall off the end of the cumulative table, by two independent
           protections: [target < v_out_total] and the scan's running
           sum add the per-edge deltas in the same left-to-right order,
           so the final partial sum equals [v_out_total] bit-for-bit
           even for pathological vectors like [1e-300; 1e-300; 1.0];
           and the [route_i.(0) < n - 1] bound clamps the index
           regardless, so the last branch absorbs any residual
           probability mass. *)
        let target = N.Rng.float route_rng vr.v_out_total in
        let outs = vr.v_out in
        let n = Array.length outs in
        route_acc.(0) <- 0.;
        route_i.(0) <- 0;
        while
          route_i.(0) < n - 1
          && (let acc = route_acc.(0) +. ert.(outs.(route_i.(0))).e_delta in
              route_acc.(0) <- acc;
              target >= acc)
        do
          route_i.(0) <- route_i.(0) + 1
        done;
        fl.fl_edge <- outs.(route_i.(0)));
      if vr.v_overhead > 0. then begin
        fl.fs.(Telemetry.slot_overhead) <-
          fl.fs.(Telemetry.slot_overhead) +. vr.v_overhead;
        (match fl.fl_tr with
        | Some r ->
          Trace.add_span r ~entity:vr.v_label ~lane:0 ~phase:Trace.Overhead
            ~start:(Engine.now engine) ~duration:vr.v_overhead
        | None -> ());
        Engine.schedule_after engine ~delay:vr.v_overhead fl.fl_continue
      end
      else traverse_f fl
    end
  and traverse_f fl =
    let er = ert.(fl.fl_edge) in
    let bytes =
      if er.e_pe <= 0. then 0.
      else fl.fs.(Telemetry.slot_size) *. er.e_alpha /. er.e_pe
    in
    if
      Medium.transfer ?tally:fl.fl_tally ?span:fl.fl_span_medium interface
        ~bytes fl.fl_via_memory
    then check_medium interface
    else drop_flight fl interface_drop
  and via_memory_f fl =
    let er = ert.(fl.fl_edge) in
    let bytes =
      if er.e_pe <= 0. then 0.
      else fl.fs.(Telemetry.slot_size) *. er.e_beta /. er.e_pe
    in
    if
      Medium.transfer ?tally:fl.fl_tally ?span:fl.fl_span_medium memory ~bytes
        fl.fl_via_link
    then check_medium memory
    else drop_flight fl memory_drop
  and via_link_f fl =
    let er = ert.(fl.fl_edge) in
    match er.e_link with
    | Some link ->
      let bytes =
        if er.e_pe <= 0. then 0.
        else fl.fs.(Telemetry.slot_size) *. er.e_delta /. er.e_pe
      in
      if
        Medium.transfer ?tally:fl.fl_tally ?span:fl.fl_span_medium link ~bytes
          fl.fl_arrive
      then check_medium link
      else drop_flight fl er.e_link_drop
    | None -> arrive_dst_f fl
  and arrive_dst_f fl =
    fl.fl_vertex <- ert.(fl.fl_edge).e_dst;
    arrive_f fl
  and drop_flight fl d =
    (match checker with
    | Some inv ->
      Invariants.packet_dropped inv ~id:fl.fl_id ~time:(Engine.now engine)
    | None -> ());
    (match fl.fl_tr with
    | Some r -> Trace.drop r ~site:d.d_name ~time:(Engine.now engine)
    | None -> ());
    if have_faults then begin
      let b = bin_of fl.fs.(Telemetry.slot_born) in
      bin_dropped.(b) <- bin_dropped.(b) + 1
    end;
    Telemetry.record_drop_counted telemetry ~born:fl.fs.(Telemetry.slot_born)
      d.dk;
    (match tenant_acc with
    | Some a ->
      Tenant.record_drop a ~tenant:fl.fl_tenant
        ~born:fl.fs.(Telemetry.slot_born)
    | None -> ());
    release_flight fl
  and release_flight fl =
    fl.fl_tr <- None;
    fl.fl_next <- !free_flights;
    free_flights := fl.fl_self
  in
  let new_flight () =
    let fs = Array.make Telemetry.flight_slots 0. in
    let rec fl =
      {
        fs;
        fl_id = 0;
        fl_klass = 0;
        fl_tenant = 0;
        fl_flow = -1;
        fl_fclass = -1;
        fl_vertex = 0;
        fl_edge = 0;
        fl_tr = None;
        fl_next = None;
        fl_self = None;
        fl_tally = Some fs;
        fl_on_served = (fun () -> serve_f fl);
        fl_continue = (fun () -> traverse_f fl);
        fl_via_memory = (fun () -> via_memory_f fl);
        fl_via_link = (fun () -> via_link_f fl);
        fl_arrive = (fun () -> arrive_dst_f fl);
        fl_span_node = None;
        fl_span_medium = None;
        fl_span_node_on = None;
        fl_span_medium_on = None;
      }
    in
    fl.fl_self <- Some fl;
    if tracing then begin
      (* Tracing sinks are per-flight too, reading the flight's current
         trace record (None for unsampled packets). The node span fires
         at service start — while the flight is still parked at the
         serving vertex — so the queue span is the interval ending now
         and the service span the one starting now. Medium spans are
         reported at admission: backlog wait starts now, the wire slice
         follows it. *)
      fl.fl_span_node_on <-
        Some
          (fun ~lane ~queued ~service ->
            match fl.fl_tr with
            | None -> ()
            | Some r ->
              let start = Engine.now engine in
              let entity = vrt.(fl.fl_vertex).v_label in
              Trace.add_span r ~entity ~lane ~phase:Trace.Queue
                ~start:(start -. queued) ~duration:queued;
              Trace.add_span r ~entity ~lane ~phase:Trace.Service ~start
                ~duration:service);
      fl.fl_span_medium_on <-
        Some
          (fun ~label ~queued ~wire ->
            match fl.fl_tr with
            | None -> ()
            | Some r ->
              let now = Engine.now engine in
              Trace.add_span r ~entity:label ~lane:0 ~phase:Trace.Queue
                ~start:now ~duration:queued;
              Trace.add_span r ~entity:label ~lane:0 ~phase:Trace.Wire
                ~start:(now +. queued) ~duration:wire)
    end;
    fl
  in
  let acquire_flight () =
    match !free_flights with
    | Some fl ->
      free_flights := fl.fl_next;
      fl.fl_next <- None;
      fl
    | None -> new_flight ()
  in
  let ingresses = G.ingress_vertices g in
  let ingress_ids = Array.of_list (List.map (fun (v : G.vertex) -> v.id) ingresses) in
  let class_sizes =
    Array.of_list
      (List.map
         (fun ((c : Lognic.Traffic.t), _) -> c.Lognic.Traffic.packet_size)
         spec.Run.mix)
  in
  let next_id = ref 0 in
  let on_arrival klass =
    let now = Engine.now engine in
    let size = class_sizes.(klass) in
    let id = !next_id in
    next_id := id + 1;
    (match checker with
    | Some inv -> Invariants.packet_injected inv ~id ~time:now
    | None -> ());
    Telemetry.record_arrival telemetry ~now ~size;
    (* The tenant is drawn before the burst-shed check so even packets
       shed at ingress attribute their drop to an owner — per-tenant
       counts sum exactly to the aggregate telemetry accounts. *)
    let tid = draw_tenant () in
    (match tenant_acc with
    | Some a -> Tenant.record_offered a ~tenant:tid ~now ~size
    | None -> ());
    if have_faults then begin
      let b = bin_of now in
      bin_offered.(b) <- bin_offered.(b) + 1
    end;
    let tr =
      match trace with
      | None -> None
      | Some t -> Trace.on_packet t ~packet:id ~born:now ~size ~klass
    in
    (* An active drop burst sheds the packet at ingress. The draw comes
       from the dedicated fault rng, and only while a burst is active,
       so burst-free plans consume nothing from it. *)
    let shed =
      !burst_p > 0.
      &&
      match faults_rng with
      | Some frng -> N.Rng.float frng 1. < !burst_p
      | None -> false
    in
    if shed then begin
      (match checker with
      | Some inv -> Invariants.packet_dropped inv ~id ~time:now
      | None -> ());
      (match tr with
      | Some r -> Trace.drop r ~site:burst_drop.d_name ~time:now
      | None -> ());
      if have_faults then begin
        let b = bin_of now in
        bin_dropped.(b) <- bin_dropped.(b) + 1
      end;
      Telemetry.record_drop_counted telemetry ~born:now burst_drop.dk;
      (match tenant_acc with
      | Some a -> Tenant.record_drop a ~tenant:tid ~born:now
      | None -> ())
    end
    else begin
      let entry =
        if Array.length ingress_ids = 1 then ingress_ids.(0)
        else ingress_ids.(N.Rng.int route_rng (Array.length ingress_ids))
      in
      let fl = acquire_flight () in
      let fs = fl.fs in
      fs.(Telemetry.slot_queueing) <- 0.;
      fs.(Telemetry.slot_service) <- 0.;
      fs.(Telemetry.slot_wire) <- 0.;
      fs.(Telemetry.slot_overhead) <- 0.;
      fs.(Telemetry.slot_born) <- now;
      fs.(Telemetry.slot_size) <- size;
      fl.fl_id <- id;
      fl.fl_klass <- klass;
      fl.fl_tenant <- tid;
      (* The flow id comes from the dedicated flow rng — one bits draw
         through the Zipf alias table — and only for packets that enter
         the datapath, so burst-shed arrivals consume nothing from the
         stream. A packet that never reaches a cache vertex keeps
         class -1 (unclassified) and is skipped by the accumulator. *)
      (match flow_rng with
      | Some frng ->
        (match flow_state with
        | Some st ->
          fl.fl_flow <- Flow_cache.draw st ~bits:(N.Rng.bits frng);
          fl.fl_fclass <- -1
        | None -> ())
      | None -> ());
      fl.fl_vertex <- entry;
      fl.fl_tr <- tr;
      (* Install span sinks per packet: an unsampled flight carries
         [None], so the per-hop span calls in [Ip_node]/[Medium]
         short-circuit before boxing their float arguments — with a
         64-packet reservoir virtually every packet takes that path,
         which is what keeps the traced-run overhead inside its 5%
         budget. *)
      if tracing then begin
        match tr with
        | None ->
          fl.fl_span_node <- None;
          fl.fl_span_medium <- None
        | Some _ ->
          fl.fl_span_node <- fl.fl_span_node_on;
          fl.fl_span_medium <- fl.fl_span_medium_on
      end;
      arrive_f fl
    end
  in
  (* Periodic state sampling into ring-buffer series (read-only probes:
     enabling sampling never changes simulation results). *)
  let series =
    match config.sample_interval with
    | None -> []
    | Some dt ->
      if dt <= 0. then invalid_arg "Netsim.run: sample_interval must be > 0";
      let mk label probe =
        ( Telemetry.Series.create ~capacity:config.series_capacity ~label
            ~interval:dt (),
          probe )
      in
      let probes =
        List.concat_map
          (fun (v : G.vertex) ->
            match Hashtbl.find_opt nodes v.id with
            | None -> []
            | Some node ->
              [
                mk
                  (Printf.sprintf "%s.depth" v.label)
                  (fun () -> float_of_int (Ip_node.in_system node));
                mk
                  (Printf.sprintf "%s.busy" v.label)
                  (fun () -> float_of_int (Ip_node.busy_engines node));
              ])
          (G.vertices g)
        @ List.map
            (fun m ->
              mk
                (Printf.sprintf "%s.backlog" (Medium.label m))
                (fun () -> Medium.backlog m))
            media
      in
      (* sample times are multiples of dt, computed multiplicatively so
         accumulated rounding never drops the final sample *)
      let time_of i = float_of_int i *. dt in
      let rec sample i =
        let at = time_of i in
        List.iter
          (fun (s, probe) -> Telemetry.Series.add s ~time:at ~value:(probe ()))
          probes;
        if time_of (i + 1) <= config.duration then
          Engine.schedule engine ~at:(time_of (i + 1)) (fun () -> sample (i + 1))
      in
      if dt <= config.duration then
        Engine.schedule engine ~at:dt (fun () -> sample 1)
      else
        (* An interval beyond the horizon still owes the caller one
           final sample — an empty series would make report --csv emit
           a header-only file. Events scheduled at exactly the horizon
           fire, so the end-of-run state is observable. *)
        Engine.schedule engine ~at:config.duration (fun () ->
            List.iter
              (fun (s, probe) ->
                Telemetry.Series.add s ~time:config.duration
                  ~value:(probe ()))
              probes);
      List.map fst probes
  in
  let gen =
    Traffic_gen.create engine ~rng:gen_rng ~arrival:config.arrival
      ~mix:spec.Run.mix ~on_arrival
  in
  Traffic_gen.start gen ~until:config.duration;
  let profile =
    match metrics with Some m -> Metrics.profiler m | None -> None
  in
  (match checker with
  | Some inv ->
    Engine.run ~until:config.duration
      ~observer:(Invariants.observe_event_time inv)
      ?profile engine
  | None -> Engine.run ~until:config.duration ?profile engine);
  let summary = Telemetry.summarize telemetry ~horizon:config.duration in
  let vertex_stats =
    List.filter_map
      (fun (v : G.vertex) ->
        match Hashtbl.find_opt nodes v.id with
        | None -> None
        | Some node ->
          Some
            {
              vid = v.id;
              vlabel = v.label;
              drops = Ip_node.drops node;
              queue_drops =
                Array.init (Ip_node.queue_count node)
                  (Ip_node.drops_of_queue node);
              completions = Ip_node.completions node;
              utilization = Ip_node.utilization node ~until:config.duration;
            })
      (G.vertices g)
  in
  let medium_stats =
    List.map
      (fun m ->
        {
          mlabel = Medium.label m;
          m_utilization = Medium.utilization m ~until:config.duration;
          m_busy = Medium.busy_within m ~until:config.duration;
          m_rejections = Medium.rejections m;
        })
      media
  in
  let fault_intervals =
    if not have_faults then []
    else
      let labels_at t =
        let rec find = function
          | (a, b, events) :: rest ->
            if t >= a && t < b then
              List.map (fun (ev : Faults.event) -> Faults.fault_label ev.fault) events
            else find rest
          | [] -> []
        in
        find fault_spans
      in
      List.init nbins (fun i ->
          let a = boundaries.(i) in
          let b =
            if i + 1 < nbins then boundaries.(i + 1) else config.duration
          in
          let len = b -. a in
          {
            i_start = a;
            i_stop = b;
            i_faults = labels_at a;
            i_offered = bin_offered.(i);
            i_delivered = bin_delivered.(i);
            i_dropped = bin_dropped.(i);
            i_throughput = (if len > 0. then bin_bytes.(i) /. len else 0.);
            i_latency =
              (if bin_delivered.(i) > 0 then
                 bin_latency.(i) /. float_of_int bin_delivered.(i)
               else 0.);
          })
  in
  let resilience =
    if not have_faults then None
    else begin
      let faulted = List.filter (fun r -> r.i_faults <> []) fault_intervals in
      match faulted with
      | [] -> None
      | _ ->
        let first_fault_start =
          List.fold_left (fun acc r -> Float.min acc r.i_start) infinity faulted
        in
        let last_fault_end =
          List.fold_left (fun acc r -> Float.max acc r.i_stop) 0. faulted
        in
        let healthy = List.filter (fun r -> r.i_faults = []) fault_intervals in
        (* Baseline: time-weighted throughput over healthy intervals
           before the first fault; when the plan faults from t = 0, any
           healthy interval has to stand in. *)
        let baseline_over rows =
          let time, bytes =
            List.fold_left
              (fun (t, by) r ->
                let len = r.i_stop -. r.i_start in
                (t +. len, by +. (r.i_throughput *. len)))
              (0., 0.) rows
          in
          if time > 0. then Some (bytes /. time) else None
        in
        let baseline =
          match
            baseline_over
              (List.filter (fun r -> r.i_stop <= first_fault_start) healthy)
          with
          | Some b -> Some b
          | None -> baseline_over healthy
        in
        let recovery_time =
          match baseline with
          | None -> None
          | Some base ->
            if last_fault_end >= config.duration then None
            else
              List.find_opt
                (fun r ->
                  r.i_start >= last_fault_end && r.i_throughput >= 0.9 *. base)
                fault_intervals
              |> Option.map (fun r -> r.i_start -. last_fault_end)
        in
        let worst =
          List.fold_left
            (fun (acc : interval_stats) r ->
              if r.i_throughput < acc.i_throughput then r else acc)
            (List.hd faulted) (List.tl faulted)
        in
        Some
          {
            recovery_time;
            worst_throughput = worst.i_throughput;
            worst_start = worst.i_start;
          }
    end
  in
  let invariants =
    match checker with
    | None -> None
    | Some inv ->
      let horizon = config.duration in
      (* End-of-run entity laws: horizon-clipped utilization and busy
         time for every node and medium. *)
      List.iter
        (fun (v : G.vertex) ->
          match Hashtbl.find_opt nodes v.id with
          | None -> ()
          | Some node ->
            let busy = Ip_node.busy_within node ~until:horizon in
            Invariants.check_bound inv ~law:"utilization" ~entity:v.label
              ~time:horizon ~limit:1.
              ~actual:(Ip_node.utilization node ~until:horizon)
              "node utilization must not exceed 1 at the horizon";
            Invariants.check_bound inv ~law:"busy-time" ~entity:v.label
              ~time:horizon
              ~limit:(float_of_int (Ip_node.engines node) *. horizon)
              ~actual:busy
              "engine-busy seconds must fit engines times the horizon";
            Invariants.check_nonneg inv ~law:"busy-time" ~entity:v.label
              ~time:horizon ~actual:busy
              "horizon-clipped busy time cannot be negative")
        (G.vertices g);
      List.iter
        (fun m ->
          let busy = Medium.busy_within m ~until:horizon in
          Invariants.check_bound inv ~law:"utilization"
            ~entity:(Medium.label m) ~time:horizon ~limit:1.
            ~actual:(Medium.utilization m ~until:horizon)
            "medium utilization must not exceed 1 at the horizon";
          Invariants.check_bound inv ~law:"busy-time" ~entity:(Medium.label m)
            ~time:horizon ~limit:horizon ~actual:busy
            "medium-busy seconds must fit the horizon";
          Invariants.check_nonneg inv ~law:"busy-time"
            ~entity:(Medium.label m) ~time:horizon ~actual:busy
            "horizon-clipped busy time cannot be negative")
        media;
      Invariants.check_conservation inv ~time:horizon
        ~generated:(Traffic_gen.generated gen);
      if have_faults then
        (* Interval accounting attributes every packet to its birth bin,
           so no bin can resolve more packets than were offered in it. *)
        Array.iteri
          (fun i offered ->
            Invariants.check_bound inv ~law:"interval-accounting"
              ~entity:(Printf.sprintf "interval-%d" i) ~time:horizon
              ~limit:(float_of_int offered)
              ~actual:(float_of_int (bin_delivered.(i) + bin_dropped.(i)))
              "a birth bin cannot resolve more packets than it offered")
          bin_offered;
      Invariants.check_summary inv ~horizon summary;
      Some (Invariants.report inv)
  in
  {
    summary;
    vertex_stats;
    medium_stats;
    drop_breakdown = summary.Telemetry.drop_breakdown;
    series;
    interface_utilization = Medium.utilization interface ~until:config.duration;
    memory_utilization = Medium.utilization memory ~until:config.duration;
    generated = Traffic_gen.generated gen;
    fault_intervals;
    resilience;
    trace;
    invariants;
    metrics;
    tenants =
      Option.map
        (fun a -> Tenant.summarize a ~horizon:config.duration)
        tenant_acc;
    flow_cache =
      Option.map
        (fun st -> Flow_cache.summarize st ~horizon:config.duration)
        flow_state;
  }

let execute spec = execute_with spec

let run ?(config = default_config) g ~hw ~mix =
  execute (Run.make ~config g ~hw ~mix)

let run_single ?config g ~hw ~traffic = run ?config g ~hw ~mix:[ (traffic, 1.) ]

let interval_to_json r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("start", J.Num r.i_start);
      ("stop", J.Num r.i_stop);
      ("faults", J.Arr (List.map (fun l -> J.Str l) r.i_faults));
      ("offered", J.Num (float_of_int r.i_offered));
      ("delivered", J.Num (float_of_int r.i_delivered));
      ("dropped", J.Num (float_of_int r.i_dropped));
      ("throughput", J.Num r.i_throughput);
      ("latency", J.Num r.i_latency);
    ]

let resilience_to_json r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ( "recovery_time",
        match r.recovery_time with None -> J.Null | Some t -> J.Num t );
      ("worst_throughput", J.Num r.worst_throughput);
      ("worst_start", J.Num r.worst_start);
    ]

let measurement_to_json m =
  let module J = Telemetry.Json in
  J.versioned ~kind:"measurement"
    [
      ("summary", Telemetry.to_json m.summary);
      ( "vertices",
        J.Arr
          (List.map
             (fun v ->
               J.Obj
                 [
                   ("id", J.Num (float_of_int v.vid));
                   ("label", J.Str v.vlabel);
                   ("drops", J.Num (float_of_int v.drops));
                   ( "queue_drops",
                     J.Arr
                       (Array.to_list
                          (Array.map
                             (fun d -> J.Num (float_of_int d))
                             v.queue_drops)) );
                   ("completions", J.Num (float_of_int v.completions));
                   ("utilization", J.Num v.utilization);
                 ])
             m.vertex_stats) );
      ( "media",
        J.Arr
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("label", J.Str s.mlabel);
                   ("utilization", J.Num s.m_utilization);
                   ("busy", J.Num s.m_busy);
                   ("rejections", J.Num (float_of_int s.m_rejections));
                 ])
             m.medium_stats) );
      ("series", J.Arr (List.map Telemetry.Series.to_json m.series));
      ("generated", J.Num (float_of_int m.generated));
      ("fault_intervals", J.Arr (List.map interval_to_json m.fault_intervals));
      ( "resilience",
        match m.resilience with
        | None -> J.Null
        | Some r -> resilience_to_json r );
    ]

type entity_replicated = {
  entity : string;
  utilization_mean : float;
  drops_mean : float;
}

type resilience_replicated = {
  recovered_runs : int;
  recovery_mean : float;
  recovery_max : float;
  worst_throughput_mean : float;
  worst_throughput_min : float;
}

type replicated = {
  runs : int;
  throughput_mean : float;
  throughput_stddev : float;
  latency_mean : float;
  latency_stddev : float;
  loss_mean : float;
  entities : entity_replicated list;
  resilience : resilience_replicated option;
}

let replication_configs config runs =
  if runs < 2 then invalid_arg "Netsim.run_replicated: needs runs >= 2";
  List.init runs (fun i -> { config with seed = config.seed + i })

let replication_specs (spec : Run.t) runs =
  List.map
    (fun config -> Run.with_config spec config)
    (replication_configs spec.Run.config runs)

let replicated_stats summaries =
  let runs = List.length summaries in
  let stat f =
    Array.of_list (List.map f summaries)
  in
  let throughputs = stat (fun s -> s.Telemetry.throughput) in
  let latencies = stat (fun s -> s.Telemetry.mean_latency) in
  let losses = stat (fun s -> s.Telemetry.loss_rate) in
  let module St = Lognic_numerics.Stats in
  {
    runs;
    throughput_mean = St.mean throughputs;
    throughput_stddev = St.stddev throughputs;
    latency_mean = St.mean latencies;
    latency_stddev = St.stddev latencies;
    loss_mean = St.mean losses;
    entities = [];
    resilience = None;
  }

let replicated_of_summaries summaries =
  if List.length summaries < 2 then
    invalid_arg "Netsim.replicated_of_summaries: needs >= 2";
  replicated_stats summaries

let resilience_across measurements =
  let per_run =
    List.filter_map (fun (m : measurement) -> m.resilience) measurements
  in
  match per_run with
  | [] -> None
  | per_run ->
    let recoveries = List.filter_map (fun r -> r.recovery_time) per_run in
    let worsts = List.map (fun r -> r.worst_throughput) per_run in
    let n = float_of_int (List.length recoveries) in
    Some
      {
        recovered_runs = List.length recoveries;
        recovery_mean =
          (if recoveries = [] then 0.
           else List.fold_left ( +. ) 0. recoveries /. n);
        recovery_max = List.fold_left Float.max 0. recoveries;
        worst_throughput_mean =
          List.fold_left ( +. ) 0. worsts /. float_of_int (List.length worsts);
        worst_throughput_min = List.fold_left Float.min infinity worsts;
      }

let replicated_of_measurements measurements =
  if List.length measurements < 2 then
    invalid_arg "Netsim.replicated_of_measurements: needs >= 2";
  let runs = float_of_int (List.length measurements) in
  (* Per-entity across-run means, in the first run's (deterministic)
     entity order: every replication simulates the same graph, so the
     entity lists line up run to run. *)
  let entity_rows m =
    List.map (fun v -> (v.vlabel, v.utilization, float_of_int v.drops))
      m.vertex_stats
    @ List.map
        (fun s -> (s.mlabel, s.m_utilization, float_of_int s.m_rejections))
        m.medium_stats
  in
  let acc = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun (entity, util, drops) ->
          let u, d =
            Option.value (Hashtbl.find_opt acc entity) ~default:(0., 0.)
          in
          Hashtbl.replace acc entity (u +. util, d +. drops))
        (entity_rows m))
    measurements;
  let entities =
    List.map
      (fun (entity, _, _) ->
        let u, d = Hashtbl.find acc entity in
        { entity; utilization_mean = u /. runs; drops_mean = d /. runs })
      (entity_rows (List.hd measurements))
  in
  {
    (replicated_stats (List.map (fun m -> m.summary) measurements)) with
    entities;
    resilience = resilience_across measurements;
  }

let execute_replicated ?(runs = 5) spec =
  (* One engine serves every sequential replication: {!Engine.reset}
     clears it between runs while keeping the calendar queue's arrays
     warm, and reuse is result-identical (see {!execute_with}). *)
  let engine = Engine.create () in
  replicated_of_measurements
    (List.map (fun s -> execute_with ~engine s) (replication_specs spec runs))

let run_replicated ?(config = default_config) ?(runs = 5) g ~hw ~mix =
  execute_replicated ~runs (Run.make ~config g ~hw ~mix)
