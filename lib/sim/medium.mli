(** A bandwidth-arbitrated shared transfer resource — the SoC interface,
    the memory subsystem, or a dedicated IP-IP link.

    Transfers serialize FIFO at the medium's bandwidth: a request issued
    at [t] begins at [max t next_free] and occupies the medium for
    [bytes / bandwidth]. Zero-byte transfers complete immediately
    without touching the medium.

    The medium holds a bounded backlog ([buffer] bytes, matching the
    multi-megabyte rate-matching buffers §3.2 assumes); a transfer that
    would overflow it is rejected, which is how the simulated NIC sheds
    load when a shared interconnect is the bottleneck. *)

type t

val create : Engine.t -> label:string -> bandwidth:float -> ?buffer:float -> unit -> t
(** [buffer] defaults to 2 MiB. Raises [Invalid_argument] on a
    non-positive bandwidth or buffer. *)

val label : t -> string

val transfer : t -> bytes:float -> (unit -> unit) -> bool
(** [transfer medium ~bytes k] schedules [k] at the completion time and
    returns [true], or returns [false] (counting a rejection) when the
    pending backlog exceeds the buffer. Raises [Invalid_argument] on
    negative [bytes]. *)

val busy_time : t -> float
(** Cumulative seconds the medium has spent transferring. *)

val utilization : t -> until:float -> float
(** [busy_time / until]. *)

val rejections : t -> int
