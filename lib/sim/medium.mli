(** A bandwidth-arbitrated shared transfer resource — the SoC interface,
    the memory subsystem, or a dedicated IP-IP link.

    Transfers serialize FIFO at the medium's bandwidth: a request issued
    at [t] begins at [max t next_free] and occupies the medium for
    [bytes / bandwidth]. Zero-byte transfers complete immediately
    without touching the medium.

    The medium holds a bounded backlog ([buffer] bytes, matching the
    multi-megabyte rate-matching buffers §3.2 assumes); a transfer that
    would overflow it is rejected, which is how the simulated NIC sheds
    load when a shared interconnect is the bottleneck. *)

type t

val create : Engine.t -> label:string -> bandwidth:float -> ?buffer:float -> unit -> t
(** [buffer] defaults to 2 MiB. Raises [Invalid_argument] on a
    non-positive bandwidth or buffer. *)

val label : t -> string

val buffer : t -> float
(** The backlog limit in bytes, as configured at creation. Together
    with {!backlog} this states the admission invariant a healthy
    medium maintains: admitted-but-untransferred bytes never exceed
    the buffer ({!Invariants}). *)

val scale : t -> float
(** Current fault-injection bandwidth factor (1 when healthy). *)

val set_scale : t -> float -> unit
(** Degrade (or restore) the medium: subsequent transfers run at
    [factor · bandwidth] and the backlog limit converts at the degraded
    rate. In-flight transfers keep their admission-time schedule, like a
    link renegotiating speed between frames. Raises [Invalid_argument]
    unless [factor] is in (0, 1]. With [factor = 1] the medium is
    byte-identical to one that was never degraded. *)

val transfer :
  ?tally:float array ->
  ?span:(label:string -> queued:float -> wire:float -> unit) ->
  t ->
  bytes:float ->
  (unit -> unit) ->
  bool
(** [transfer medium ~bytes k] schedules [k] at the completion time and
    returns [true], or returns [false] (counting a rejection) when the
    pending backlog exceeds the buffer. [tally], when given, receives
    the transfer's backlog wait and transmission time (both zero for
    zero-byte transfers) accumulated ([+.]) into
    [tally.(Telemetry.slot_queueing)] / [tally.(Telemetry.slot_wire)] —
    the per-hop inputs to {!Telemetry.latency_terms}, recorded without
    boxing a float (callers keep one scratch array per in-flight
    packet; pass a pre-allocated [Some] to stay allocation-free).
    [span] is the tracing sink ({!Trace}): called right after the tally
    with the same quantities plus the medium's own label, so one sink
    closure serves every medium on a hop; when absent the transfer
    records nothing and costs nothing.
    Raises [Invalid_argument] on negative [bytes]. *)

val backlog : t -> float
(** Bytes admitted but not yet transferred, at the engine's current
    virtual time. *)

val busy_time : t -> float
(** Cumulative seconds of scheduled transfer time, including any tail
    extending past the simulation horizon. *)

val busy_within : t -> until:float -> float
(** {!busy_time} clipped to [\[0, until\]]. Exact whenever [until] is
    at or after the last admission time (in particular at the run
    horizon). *)

val utilization : t -> until:float -> float
(** [busy_within ~until / until]; never exceeds 1 at the horizon, even
    when admitted work extends past it. *)

val rejections : t -> int

val transfers : t -> int
(** Nonzero-byte transfers admitted so far (zero-byte transfers bypass
    the medium and are not counted). *)

val set_profile : t -> Profile.t option -> unit
(** Attach (or detach) a self-profiler: nonzero-byte admission is
    charged to {!Profile.phase_media}. [None] (the default) costs one
    pointer compare per transfer and never affects scheduling. *)
