type t = { id : int; size : float; klass : int; born : float }

let make ~id ~size ~klass ~born = { id; size; klass; born }
