(* Live streaming metrics: a typed registry of per-entity instruments
   sampled on a fixed sim-time interval, with delta-encoded NDJSON
   snapshots, an OpenMetrics exposition, and SLO watchdog rules with
   hysteresis.

   Determinism is the design constraint.  Every scalar instrument is a
   read-only probe over state the simulator already maintains (windowed
   telemetry accounts, node/medium accessors), so sampling can never
   change results; the only new hot-path instrument is the histogram,
   whose [observe] is a binary search plus an int bump and a float-array
   add — no allocation.  Snapshots carry only sim-time quantities;
   wall-clock and GC numbers from the optional {!Profile} ride in a
   separate [schema:"profile"] document because they are inherently
   nondeterministic. *)

module J = Telemetry.Json

type kind = Counter | Gauge | Rate

(* SLO watchdog rules: a tiny grammar, parsed once at setup. *)
module Slo = struct
  type comparison = Gt | Lt
  type condition = Threshold of comparison * float | Rising

  type rule = {
    r_entity : string;  (* "*" matches any entity *)
    r_metric : string;
    r_cond : condition;
    r_for : int;  (* consecutive breaching intervals to fire *)
  }

  let split_subject lhs =
    let lhs = String.trim lhs in
    match String.index_opt lhs '.' with
    | Some i ->
      ( String.sub lhs 0 i,
        String.sub lhs (i + 1) (String.length lhs - i - 1) )
    | None -> ("*", lhs)

  let positive_int s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None

  let parse text =
    let s = String.trim text in
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    if s = "" then err "empty SLO rule"
    else
      match String.index_opt s '^' with
      | Some i -> (
        let entity, metric = split_subject (String.sub s 0 i) in
        let n = String.sub s (i + 1) (String.length s - i - 1) in
        match positive_int n with
        | Some n when metric <> "" ->
          Ok { r_entity = entity; r_metric = metric; r_cond = Rising; r_for = n }
        | _ -> err "%S: expected [ENTITY.]METRIC^N with N >= 1" s)
      | None -> (
        let op =
          match (String.index_opt s '>', String.index_opt s '<') with
          | Some i, None -> Some (Gt, i)
          | None, Some i -> Some (Lt, i)
          | Some i, Some j -> Some ((if i < j then Gt else Lt), min i j)
          | None, None -> None
        in
        match op with
        | None ->
          err "%S: expected [ENTITY.]METRIC(>|<)VALUE[xN] or [ENTITY.]METRIC^N"
            s
        | Some (cmp, i) -> (
          let entity, metric = split_subject (String.sub s 0 i) in
          let rhs = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
          let value, reps =
            match String.rindex_opt rhs 'x' with
            | Some j -> (
              let v = String.sub rhs 0 j in
              let n = String.sub rhs (j + 1) (String.length rhs - j - 1) in
              match (float_of_string_opt v, positive_int n) with
              | Some v, Some n -> (Some v, n)
              | _ -> (float_of_string_opt rhs, 1))
            | None -> (float_of_string_opt rhs, 1)
          in
          match value with
          | Some v when metric <> "" && Float.is_finite v ->
            Ok
              {
                r_entity = entity;
                r_metric = metric;
                r_cond = Threshold (cmp, v);
                r_for = reps;
              }
          | _ -> err "%S: could not parse threshold value in %S" s rhs))

  let parse_exn text =
    match parse text with Ok r -> r | Error m -> invalid_arg ("Slo.parse: " ^ m)

  let to_string r =
    let subject =
      if r.r_entity = "*" then r.r_metric else r.r_entity ^ "." ^ r.r_metric
    in
    match r.r_cond with
    | Rising -> Printf.sprintf "%s^%d" subject r.r_for
    | Threshold (cmp, v) ->
      let op = match cmp with Gt -> ">" | Lt -> "<" in
      let reps = if r.r_for = 1 then "" else Printf.sprintf "x%d" r.r_for in
      Printf.sprintf "%s%s%s%s" subject op (J.float_repr v) reps

  let matches r ~entity ~metric =
    r.r_metric = metric && (r.r_entity = "*" || r.r_entity = entity)
end

(* Log-spaced latency bounds, 4 per decade from 100ns to 1s; a closing
   +inf bucket is appended by [histogram]. *)
let default_bounds =
  Array.init 29 (fun i -> 1e-7 *. (10. ** (float_of_int i /. 4.)))

type histogram = {
  h_entity : string;
  h_name : string;
  h_bounds : float array;  (* strictly increasing; last is [infinity] *)
  h_search : float array;
      (* [h_bounds] padded with [infinity] to exactly 32 entries when it
         fits, [[||]] otherwise: the hot-path [observe] runs a fixed
         five-step unrolled lower-bound search over it (no calls, no
         boxing), falling back to the recursive search for oversized
         custom bound sets *)
  h_counts : int array;  (* cumulative per bucket *)
  h_prev_counts : int array;  (* at the previous tick *)
  h_f : float array;  (* 0 = cumulative sum, 1 = sum at previous tick *)
  mutable h_total : int;
  mutable h_prev_total : int;
}

(* First bucket whose upper bound admits [v]; tail-recursive ints so the
   hot path allocates nothing. *)
let rec bucket_of bounds v lo hi =
  if lo >= hi then lo
  else
    let mid = (lo + hi) / 2 in
    if v <= Array.unsafe_get bounds mid then bucket_of bounds v lo mid
    else bucket_of bounds v (mid + 1) hi

(* The whole search lives in one function body: without flambda, every
   non-inlined call with a float argument boxes it (and a recursive
   search re-boxes at each level), so the hot path must not let [v]
   cross a call boundary. Over the 32-entry padded array the lower
   bound is five unrolled compares; the +inf padding keeps the answer
   inside the real bounds for every non-NaN [v] (NaN compares false
   throughout and lands in bucket 0). *)
let[@inline] observe h v =
  let i =
    if Array.length h.h_search = 32 then begin
      let b = h.h_search in
      let i = if v > Array.unsafe_get b 15 then 16 else 0 in
      let i = if v > Array.unsafe_get b (i + 7) then i + 8 else i in
      let i = if v > Array.unsafe_get b (i + 3) then i + 4 else i in
      let i = if v > Array.unsafe_get b (i + 1) then i + 2 else i in
      if v > Array.unsafe_get b i then i + 1 else i
    end
    else bucket_of h.h_bounds v 0 (Array.length h.h_counts - 1)
  in
  Array.unsafe_set h.h_counts i (Array.unsafe_get h.h_counts i + 1);
  h.h_total <- h.h_total + 1;
  h.h_f.(0) <- h.h_f.(0) +. v

(* Same update, but the observed value is [fs.(to_slot) -. fs.(from_slot)]
   computed inside the call: only pointers and ints cross the boundary,
   so the simulator's per-delivery hook allocates nothing even though
   this function is too large for the non-flambda inliner. The body
   mirrors [observe] rather than calling it — a same-module call would
   re-box the float. *)
let observe_span h fs ~from_slot ~to_slot =
  let v = Array.unsafe_get fs to_slot -. Array.unsafe_get fs from_slot in
  let i =
    if Array.length h.h_search = 32 then begin
      let b = h.h_search in
      let i = if v > Array.unsafe_get b 15 then 16 else 0 in
      let i = if v > Array.unsafe_get b (i + 7) then i + 8 else i in
      let i = if v > Array.unsafe_get b (i + 3) then i + 4 else i in
      let i = if v > Array.unsafe_get b (i + 1) then i + 2 else i in
      if v > Array.unsafe_get b i then i + 1 else i
    end
    else bucket_of h.h_bounds v 0 (Array.length h.h_counts - 1)
  in
  Array.unsafe_set h.h_counts i (Array.unsafe_get h.h_counts i + 1);
  h.h_total <- h.h_total + 1;
  h.h_f.(0) <- h.h_f.(0) +. v

(* Upper bound of the bucket holding the [q]-quantile of a (delta)
   histogram; the +inf bucket reports the largest finite bound. *)
let quantile bounds counts total q =
  if total = 0 then 0.
  else begin
    let target = int_of_float (Float.ceil (q *. float_of_int total)) in
    let target = if target < 1 then 1 else target in
    let last = Array.length bounds - 1 in
    let rec go i acc =
      let acc = acc + counts.(i) in
      if acc >= target || i = last then
        if i = last then bounds.(last - 1) else bounds.(i)
      else go (i + 1) acc
    in
    go 0 0
  end

type metric = {
  m_entity : string;
  m_name : string;
  m_kind : kind;
  m_probe : unit -> float;
  mutable m_prev : float;  (* probe value at the previous tick *)
  mutable m_rate : float;  (* last computed per-interval rate *)
}

type item = Metric of metric | Hist of histogram

type sample =
  | Counter_s of { total : float; delta : float }
  | Gauge_s of { value : float }
  | Rate_s of { value : float; total : float }
  | Hist_s of { count : int; sum : float; p50 : float; p99 : float }

type entity_snapshot = { e_name : string; e_samples : (string * sample) list }

type alert_event = {
  ev_rule : string;
  ev_entity : string;
  ev_firing : bool;  (* [true] = fired this interval, [false] = resolved *)
  ev_value : float;
}

type snapshot = {
  s_seq : int;
  s_time : float;
  s_interval : float;
  s_entities : entity_snapshot list;
  s_alerts : alert_event list;
}

type alert = {
  a_rule : Slo.rule;
  a_entity : string;
  mutable a_active : bool;
  mutable a_first_fired : float;
  mutable a_last_fired : float;
  mutable a_breaches : int;  (* intervals in breach, fired or not *)
  mutable a_worst : float;
  mutable a_streak : int;
  mutable a_clear_streak : int;
  mutable a_prev : float;  (* previous evaluated value, for Rising *)
  mutable a_has_prev : bool;
}

type config = {
  interval : float;
  slo : Slo.rule list;
  profile : bool;
  on_snapshot : (snapshot -> unit) option;
}

let default_config =
  { interval = 1e-3; slo = []; profile = false; on_snapshot = None }

type t = {
  cfg : config;
  mutable items : item list;  (* registration order *)
  states : (int * string, alert) Hashtbl.t;  (* (rule index, entity) *)
  mutable alert_order : alert list;  (* newest first *)
  mutable seq : int;
  mutable last_time : float;
  profiler : Profile.t option;
}

let create cfg =
  if cfg.interval <= 0. then invalid_arg "Metrics.create: interval must be > 0";
  {
    cfg;
    items = [];
    states = Hashtbl.create 16;
    alert_order = [];
    seq = 0;
    last_time = 0.;
    profiler = (if cfg.profile then Some (Profile.create ()) else None);
  }

let config t = t.cfg
let profiler t = t.profiler
let snapshots t = t.seq

let register t ~entity ~name kind probe =
  let m =
    {
      m_entity = entity;
      m_name = name;
      m_kind = kind;
      m_probe = probe;
      m_prev = probe ();
      m_rate = 0.;
    }
  in
  t.items <- t.items @ [ Metric m ]

let histogram t ~entity ~name ?(bounds = default_bounds) () =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics.histogram: empty bounds";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done;
  let h_bounds = Array.append bounds [| infinity |] in
  let h_search =
    if n + 1 <= 32 then begin
      let s = Array.make 32 infinity in
      Array.blit h_bounds 0 s 0 (n + 1);
      s
    end
    else [||]
  in
  let h =
    {
      h_entity = entity;
      h_name = name;
      h_bounds;
      h_search;
      h_counts = Array.make (n + 1) 0;
      h_prev_counts = Array.make (n + 1) 0;
      h_f = Array.make 2 0.;
      h_total = 0;
      h_prev_total = 0;
    }
  in
  t.items <- t.items @ [ Hist h ];
  h

(* ------------------------------------------------------------------ *)
(* Ticks: sample every instrument, evaluate the watchdogs, snapshot.  *)

let alert_state t ri rule entity =
  let key = (ri, entity) in
  match Hashtbl.find_opt t.states key with
  | Some st -> st
  | None ->
    let st =
      {
        a_rule = rule;
        a_entity = entity;
        a_active = false;
        a_first_fired = -1.;
        a_last_fired = -1.;
        a_breaches = 0;
        a_worst = Float.nan;
        a_streak = 0;
        a_clear_streak = 0;
        a_prev = 0.;
        a_has_prev = false;
      }
    in
    Hashtbl.add t.states key st;
    t.alert_order <- st :: t.alert_order;
    st

let evaluate_rules t ~now ~events (entity, metric, value) =
  List.iteri
    (fun ri (rule : Slo.rule) ->
      if Slo.matches rule ~entity ~metric then begin
        let st = alert_state t ri rule entity in
        let breach =
          match rule.r_cond with
          | Slo.Threshold (Slo.Gt, x) -> value > x
          | Slo.Threshold (Slo.Lt, x) -> value < x
          | Slo.Rising -> st.a_has_prev && value > st.a_prev
        in
        st.a_prev <- value;
        st.a_has_prev <- true;
        if breach then begin
          st.a_streak <- st.a_streak + 1;
          st.a_clear_streak <- 0;
          st.a_breaches <- st.a_breaches + 1;
          let worse =
            Float.is_nan st.a_worst
            ||
            match rule.r_cond with
            | Slo.Threshold (Slo.Lt, _) -> value < st.a_worst
            | _ -> value > st.a_worst
          in
          if worse then st.a_worst <- value;
          if (not st.a_active) && st.a_streak >= rule.r_for then begin
            st.a_active <- true;
            if st.a_first_fired < 0. then st.a_first_fired <- now;
            events :=
              {
                ev_rule = Slo.to_string rule;
                ev_entity = entity;
                ev_firing = true;
                ev_value = value;
              }
              :: !events
          end;
          if st.a_active then st.a_last_fired <- now
        end
        else begin
          st.a_streak <- 0;
          st.a_clear_streak <- st.a_clear_streak + 1;
          if st.a_active && st.a_clear_streak >= rule.r_for then begin
            st.a_active <- false;
            events :=
              {
                ev_rule = Slo.to_string rule;
                ev_entity = entity;
                ev_firing = false;
                ev_value = value;
              }
              :: !events
          end
        end
      end)
    t.cfg.slo

let tick t ~now =
  let dt =
    let d = now -. t.last_time in
    if d > 0. then d else t.cfg.interval
  in
  t.seq <- t.seq + 1;
  t.last_time <- now;
  (match t.profiler with
  | Some p -> ignore (Profile.tick p ~time:now)
  | None -> ());
  let events = ref [] in
  (* Entities in first-registration order, each with its samples in
     registration order; SLO rules see every evaluated value in the
     same deterministic order. *)
  let entities = ref [] in
  let push entity name sample =
    match List.assoc_opt entity !entities with
    | Some samples ->
      samples := (name, sample) :: !samples
    | None -> entities := !entities @ [ (entity, ref [ (name, sample) ]) ]
  in
  List.iter
    (fun item ->
      match item with
      | Metric m ->
        let cur = m.m_probe () in
        let delta = cur -. m.m_prev in
        m.m_prev <- cur;
        (match m.m_kind with
        | Counter ->
          push m.m_entity m.m_name (Counter_s { total = cur; delta });
          evaluate_rules t ~now ~events (m.m_entity, m.m_name, delta)
        | Gauge ->
          push m.m_entity m.m_name (Gauge_s { value = cur });
          evaluate_rules t ~now ~events (m.m_entity, m.m_name, cur)
        | Rate ->
          let rate = delta /. dt in
          m.m_rate <- rate;
          push m.m_entity m.m_name (Rate_s { value = rate; total = cur });
          evaluate_rules t ~now ~events (m.m_entity, m.m_name, rate))
      | Hist h ->
        let n = Array.length h.h_counts in
        let dcounts = Array.make n 0 in
        for i = 0 to n - 1 do
          dcounts.(i) <- h.h_counts.(i) - h.h_prev_counts.(i)
        done;
        let dtotal = h.h_total - h.h_prev_total in
        let dsum = h.h_f.(0) -. h.h_f.(1) in
        Array.blit h.h_counts 0 h.h_prev_counts 0 n;
        h.h_prev_total <- h.h_total;
        h.h_f.(1) <- h.h_f.(0);
        let p50 = quantile h.h_bounds dcounts dtotal 0.5 in
        let p99 = quantile h.h_bounds dcounts dtotal 0.99 in
        push h.h_entity h.h_name (Hist_s { count = dtotal; sum = dsum; p50; p99 });
        evaluate_rules t ~now ~events (h.h_entity, h.h_name ^ "_p50", p50);
        evaluate_rules t ~now ~events (h.h_entity, h.h_name ^ "_p99", p99))
    t.items;
  let snap =
    {
      s_seq = t.seq;
      s_time = now;
      s_interval = dt;
      s_entities =
        List.map
          (fun (e, samples) ->
            { e_name = e; e_samples = List.rev !samples })
          !entities;
      s_alerts = List.rev !events;
    }
  in
  (match t.cfg.on_snapshot with Some f -> f snap | None -> ());
  snap

let alerts t = List.rev t.alert_order

(* ------------------------------------------------------------------ *)
(* Exports.                                                           *)

let sample_to_json (name, s) =
  let fields =
    match s with
    | Counter_s { total; delta } ->
      [
        ("kind", J.Str "counter"); ("delta", J.Num delta); ("total", J.Num total);
      ]
    | Gauge_s { value } -> [ ("kind", J.Str "gauge"); ("value", J.Num value) ]
    | Rate_s { value; total } ->
      [ ("kind", J.Str "rate"); ("value", J.Num value); ("total", J.Num total) ]
    | Hist_s { count; sum; p50; p99 } ->
      [
        ("kind", J.Str "histogram");
        ("count", J.Num (float_of_int count));
        ("sum", J.Num sum);
        ("p50", J.Num p50);
        ("p99", J.Num p99);
      ]
  in
  J.Obj (("name", J.Str name) :: fields)

let alert_event_to_json ev =
  J.Obj
    [
      ("rule", J.Str ev.ev_rule);
      ("entity", J.Str ev.ev_entity);
      ("state", J.Str (if ev.ev_firing then "firing" else "resolved"));
      ("value", J.Num ev.ev_value);
    ]

let snapshot_to_json s =
  J.versioned ~kind:"metrics"
    [
      ("seq", J.Num (float_of_int s.s_seq));
      ("time", J.Num s.s_time);
      ("interval", J.Num s.s_interval);
      ( "entities",
        J.Arr
          (List.map
             (fun e ->
               J.Obj
                 [
                   ("entity", J.Str e.e_name);
                   ("metrics", J.Arr (List.map sample_to_json e.e_samples));
                 ])
             s.s_entities) );
      ("alerts", J.Arr (List.map alert_event_to_json s.s_alerts));
    ]

(* Streaming twin of [snapshot_to_json]: writes the same document
   straight into a buffer without building the tree, so a per-tick
   NDJSON sink costs string appends instead of list/Obj allocation plus
   a render pass.  Byte-for-byte equality with
   [J.to_string (snapshot_to_json s)] is enforced by a test. *)
let snapshot_to_buffer buf s =
  let str = J.write_string buf in
  let num = J.write_num buf in
  let raw = Buffer.add_string buf in
  raw {|{"schema":"metrics","schema_version":|};
  num (float_of_int (Schema.version_of_exn "metrics"));
  raw {|,"seq":|};
  num (float_of_int s.s_seq);
  raw {|,"time":|};
  num s.s_time;
  raw {|,"interval":|};
  num s.s_interval;
  raw {|,"entities":[|};
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      raw {|{"entity":|};
      str e.e_name;
      raw {|,"metrics":[|};
      List.iteri
        (fun j (name, sample) ->
          if j > 0 then Buffer.add_char buf ',';
          raw {|{"name":|};
          str name;
          (match sample with
          | Counter_s { total; delta } ->
            raw {|,"kind":"counter","delta":|};
            num delta;
            raw {|,"total":|};
            num total
          | Gauge_s { value } ->
            raw {|,"kind":"gauge","value":|};
            num value
          | Rate_s { value; total } ->
            raw {|,"kind":"rate","value":|};
            num value;
            raw {|,"total":|};
            num total
          | Hist_s { count; sum; p50; p99 } ->
            raw {|,"kind":"histogram","count":|};
            num (float_of_int count);
            raw {|,"sum":|};
            num sum;
            raw {|,"p50":|};
            num p50;
            raw {|,"p99":|};
            num p99);
          Buffer.add_char buf '}')
        e.e_samples;
      raw "]}")
    s.s_entities;
  raw {|],"alerts":[|};
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      raw {|{"rule":|};
      str ev.ev_rule;
      raw {|,"entity":|};
      str ev.ev_entity;
      raw {|,"state":|};
      str (if ev.ev_firing then "firing" else "resolved");
      raw {|,"value":|};
      num ev.ev_value;
      Buffer.add_char buf '}')
    s.s_alerts;
  raw "]}"

let snapshot_to_string s =
  let buf = Buffer.create 4096 in
  snapshot_to_buffer buf s;
  Buffer.contents buf

let alert_to_json a =
  J.Obj
    [
      ("rule", J.Str (Slo.to_string a.a_rule));
      ("entity", J.Str a.a_entity);
      ("active", J.Bool a.a_active);
      ("first_fired", J.Num a.a_first_fired);
      ("last_fired", J.Num a.a_last_fired);
      ("breached_intervals", J.Num (float_of_int a.a_breaches));
      ("worst", J.Num a.a_worst);
    ]

let alerts_to_json t =
  J.versioned ~kind:"alerts"
    [ ("alerts", J.Arr (List.map alert_to_json (alerts t))) ]

let profile_to_json t = Option.map Profile.to_json t.profiler

(* OpenMetrics text exposition: cumulative values at call time, one
   family per metric name with entities as labels. *)

let om_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let om_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else J.float_repr v

let to_openmetrics t =
  let buf = Buffer.create 1024 in
  let families = ref [] in
  List.iter
    (fun item ->
      let name =
        match item with Metric m -> m.m_name | Hist h -> h.h_name
      in
      if not (List.mem name !families) then families := !families @ [ name ])
    t.items;
  List.iter
    (fun name ->
      let members =
        List.filter
          (fun item ->
            (match item with Metric m -> m.m_name | Hist h -> h.h_name) = name)
          t.items
      in
      let om_name = "lognic_" ^ name in
      let om_type =
        match members with
        | Metric { m_kind = Counter; _ } :: _ -> "counter"
        | Metric _ :: _ -> "gauge"
        | Hist _ :: _ -> "histogram"
        | [] -> "gauge"
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" om_name om_type);
      List.iter
        (fun item ->
          match item with
          | Metric m ->
            let label = Printf.sprintf "{entity=\"%s\"}" (om_escape m.m_entity) in
            let sample_name, value =
              match m.m_kind with
              | Counter -> (om_name ^ "_total", m.m_probe ())
              | Gauge -> (om_name, m.m_probe ())
              | Rate -> (om_name, m.m_rate)
            in
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" sample_name label (om_num value))
          | Hist h ->
            let entity = om_escape h.h_entity in
            let acc = ref 0 in
            Array.iteri
              (fun i bound ->
                acc := !acc + h.h_counts.(i);
                let le =
                  if Float.is_integer bound || bound = infinity then
                    if bound = infinity then "+Inf" else om_num bound
                  else J.float_repr bound
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{entity=\"%s\",le=\"%s\"} %d\n"
                     om_name entity le !acc))
              h.h_bounds;
            Buffer.add_string buf
              (Printf.sprintf "%s_sum{entity=\"%s\"} %s\n" om_name entity
                 (om_num h.h_f.(0)));
            Buffer.add_string buf
              (Printf.sprintf "%s_count{entity=\"%s\"} %d\n" om_name entity
                 h.h_total))
        members)
    !families;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
