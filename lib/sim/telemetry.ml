(* Growable float buffer (stdlib Dynarray only arrives in OCaml 5.2). *)
module Buf = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 1024 0.; len = 0 }

  let grow t =
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger

  (* inlinable so the per-delivery latency sample is never boxed *)
  let[@inline] add t x =
    if t.len = Array.length t.data then grow t;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let to_array t = Array.sub t.data 0 t.len
end

(* Minimal JSON tree + printer + parser. The repo deliberately carries
   no JSON dependency; traces must still round-trip, so both directions
   live here and are property-tested against each other. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let float_repr x =
    (* Integral values dominate exported documents (counters, totals,
       sample counts); print them without the sprintf round-trip. The
       guard keeps the bytes identical to what %.15g would emit: below
       1e15 the %g fixed notation is exactly the digits, and 0 is
       excluded so "-0" survives. *)
    if Float.is_integer x && Float.abs x < 1e15 && x <> 0. then
      string_of_int (int_of_float x)
    else
      (* shortest decimal that parses back exactly *)
      let s = Printf.sprintf "%.15g" x in
      if float_of_string s = x then s else Printf.sprintf "%.17g" x

  let write_string buf s =
    (* almost every exported string (labels, metric names, schema kinds)
       needs no escaping; copy those in one add_string *)
    let n = String.length s in
    let rec clean i =
      i >= n
      ||
      match String.unsafe_get s i with
      | '"' | '\\' -> false
      | c when Char.code c < 0x20 -> false
      | _ -> clean (i + 1)
    in
    Buffer.add_char buf '"';
    if clean 0 then Buffer.add_string buf s
    else
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | '\r' -> Buffer.add_string buf "\\r"
          | '\t' -> Buffer.add_string buf "\\t"
          | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
    Buffer.add_char buf '"'

  let write_num buf x =
    if not (Float.is_finite x) then Buffer.add_string buf "null"
    else if Float.is_integer x && Float.abs x < 1e15 then
      if x = 0. then
        (* sprintf keeps the "-0" spelling the fast path would lose *)
        Buffer.add_string buf (Printf.sprintf "%.0f" x)
      else Buffer.add_string buf (string_of_int (int_of_float x))
    else Buffer.add_string buf (float_repr x)

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> write_num buf x
    | Str s -> write_string buf s
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    write buf v;
    Buffer.contents buf

  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let utf8_of_code buf code =
      (* enough for the BMP; the writer never emits surrogate pairs *)
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec scan () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code ->
              pos := !pos + 4;
              utf8_of_code buf code
            | None -> fail "bad \\u escape")
          | _ -> fail "bad escape");
          scan ()
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          scan ()
      in
      scan ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let number_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && number_char s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some x -> x
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((key, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  (* Every exporter in the repo stamps its top-level object through
     here, so "which schema am I parsing" is answerable from the
     document alone. The version comes from the {!Schema} registry:
     an unregistered kind raises, which keeps the table complete. *)
  let schema_version = 1

  let versioned ~kind fields =
    Obj
      (("schema", Str kind)
      :: ("schema_version", Num (float_of_int (Schema.version_of_exn kind)))
      :: fields)
end

(* Ring-buffer time series: bounded memory however long the run, the
   newest [capacity] samples win. *)
module Series = struct
  type t = {
    label : string;
    interval : float;
    capacity : int;
    times : float array;
    values : float array;
    mutable len : int;
    mutable next : int;  (* ring write position *)
  }

  let create ?(capacity = 4096) ~label ~interval () =
    if capacity < 1 then invalid_arg "Series.create: capacity must be >= 1";
    if interval <= 0. then invalid_arg "Series.create: interval must be > 0";
    {
      label;
      interval;
      capacity;
      times = Array.make capacity 0.;
      values = Array.make capacity 0.;
      len = 0;
      next = 0;
    }

  let label t = t.label
  let interval t = t.interval
  let capacity t = t.capacity
  let length t = t.len

  let add t ~time ~value =
    t.times.(t.next) <- time;
    t.values.(t.next) <- value;
    t.next <- (t.next + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1

  let to_array t =
    Array.init t.len (fun i ->
        let idx = (t.next - t.len + i + (2 * t.capacity)) mod t.capacity in
        (t.times.(idx), t.values.(idx)))

  let to_json t =
    Json.Obj
      [
        ("label", Json.Str t.label);
        ("interval", Json.Num t.interval);
        ( "samples",
          Json.Arr
            (Array.to_list
               (Array.map
                  (fun (time, v) -> Json.Arr [ Json.Num time; Json.Num v ])
                  (to_array t))) );
      ]

  let to_csv t =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "time,%s\n" t.label);
    Array.iter
      (fun (time, v) ->
        Buffer.add_string buf (Json.float_repr time);
        Buffer.add_char buf ',';
        Buffer.add_string buf (Json.float_repr v);
        Buffer.add_char buf '\n')
      (to_array t);
    Buffer.contents buf
end

type drop_site =
  | Node_queue of { node : string; queue : int }
  | Medium_buffer of string
  | Fault_burst

let drop_site_name = function
  | Node_queue { node; queue } -> Printf.sprintf "node:%s/q%d" node queue
  | Medium_buffer label -> Printf.sprintf "medium:%s" label
  | Fault_burst -> "fault:burst"

let pp_drop_site ppf site = Format.pp_print_string ppf (drop_site_name site)

type latency_terms = {
  queueing : float;
  service : float;
  wire : float;
  overhead : float;
}

let zero_terms = { queueing = 0.; service = 0.; wire = 0.; overhead = 0. }

let terms_total { queueing; service; wire; overhead } =
  queueing +. service +. wire +. overhead

(* Layout of the per-flight float scratch array shared by the zero-
   allocation accounting path ([record_completion_fs]): the four Eq. 2
   latency terms accumulated along the walk, then birth time, size, and
   the completion time — all unboxed float-array slots, so the sim hot
   path updates them without boxing a single float. *)
let slot_queueing = 0
let slot_service = 1
let slot_wire = 2
let slot_overhead = 3
let slot_born = 4
let slot_size = 5
let slot_now = 6
let flight_slots = 7

(* An interned per-site drop counter: the sim resolves the site to a
   counter once at setup and bumps an int per drop, instead of hashing
   a polymorphic [drop_site] key on every shed packet. *)
type counter = { c_site : drop_site; mutable c_hits : int }

type t = {
  warmup : float;
  mutable offered : int;
  mutable dropped : int;
  mutable delivered : int;
  fsums : float array;
      (* unboxed accumulators: 0 delivered_bytes, then the four
         latency-term sums (queueing/service/wire/overhead) *)
  latencies : Buf.t;
  mutable class_counts : int array;  (* dense by class index *)
  mutable class_sums : float array;
  classes : (int, int * float) Hashtbl.t;  (* negative-class fallback *)
  site_drops : (drop_site, int) Hashtbl.t;
  mutable counters : counter list;
}

let create ~warmup =
  {
    warmup;
    offered = 0;
    dropped = 0;
    delivered = 0;
    fsums = Array.make 5 0.;
    latencies = Buf.create ();
    class_counts = Array.make 8 0;
    class_sums = Array.make 8 0.;
    classes = Hashtbl.create 8;
    site_drops = Hashtbl.create 8;
    counters = [];
  }

let[@inline] record_arrival t ~now ~size =
  ignore size;
  if now >= t.warmup then t.offered <- t.offered + 1

(* Read-only probes over the windowed accumulators, for the live
   metrics layer ({!Metrics}): cumulative values at call time. *)
let offered t = t.offered
let delivered t = t.delivered
let dropped t = t.dropped
let delivered_bytes t = t.fsums.(0)
let counters t = List.rev t.counters  (* interning order *)
let counter_site c = c.c_site
let counter_hits c = c.c_hits

let drop_counter t site =
  match List.find_opt (fun c -> c.c_site = site) t.counters with
  | Some c -> c
  | None ->
    let c = { c_site = site; c_hits = 0 } in
    t.counters <- c :: t.counters;
    c

let[@inline] record_drop_counted t ~born c =
  (* Gate on birth time: arrivals are recorded at generation (now =
     born), so a drop must be attributed to the same window as its
     offered-packet record or loss_rate can exceed 1. *)
  if born >= t.warmup then begin
    t.dropped <- t.dropped + 1;
    c.c_hits <- c.c_hits + 1
  end

let record_drop t ~now ~born ~site =
  ignore now;
  if born >= t.warmup then begin
    t.dropped <- t.dropped + 1;
    let count = Option.value (Hashtbl.find_opt t.site_drops site) ~default:0 in
    Hashtbl.replace t.site_drops site (count + 1)
  end

let grow_classes t klass =
  let n = Array.length t.class_counts in
  let bigger = max (klass + 1) (2 * n) in
  let counts = Array.make bigger 0 in
  let sums = Array.make bigger 0. in
  Array.blit t.class_counts 0 counts 0 n;
  Array.blit t.class_sums 0 sums 0 n;
  t.class_counts <- counts;
  t.class_sums <- sums

let[@inline] bump_class t klass latency =
  if klass >= Array.length t.class_counts then grow_classes t klass;
  t.class_counts.(klass) <- t.class_counts.(klass) + 1;
  t.class_sums.(klass) <- t.class_sums.(klass) +. latency

(* The allocation-free completion record: every float comes in through
   the caller's scratch array and lands in unboxed accumulators. *)
let record_completion_fs t ~fs ~klass =
  let born = fs.(slot_born) in
  if born >= t.warmup then begin
    t.delivered <- t.delivered + 1;
    t.fsums.(0) <- t.fsums.(0) +. fs.(slot_size);
    let latency = fs.(slot_now) -. born in
    Buf.add t.latencies latency;
    t.fsums.(1) <- t.fsums.(1) +. fs.(slot_queueing);
    t.fsums.(2) <- t.fsums.(2) +. fs.(slot_service);
    t.fsums.(3) <- t.fsums.(3) +. fs.(slot_wire);
    t.fsums.(4) <- t.fsums.(4) +. fs.(slot_overhead);
    if klass >= 0 then bump_class t klass latency
    else
      let count, sum =
        Option.value (Hashtbl.find_opt t.classes klass) ~default:(0, 0.)
      in
      Hashtbl.replace t.classes klass (count + 1, sum +. latency)
  end

let record_completion t ~now ~born ?(terms = zero_terms) ~size ~klass () =
  (* Attribute the packet to the measurement window by its birth time so
     arrival accounting and completion accounting agree. *)
  if born >= t.warmup then begin
    t.delivered <- t.delivered + 1;
    t.fsums.(0) <- t.fsums.(0) +. size;
    let latency = now -. born in
    Buf.add t.latencies latency;
    t.fsums.(1) <- t.fsums.(1) +. terms.queueing;
    t.fsums.(2) <- t.fsums.(2) +. terms.service;
    t.fsums.(3) <- t.fsums.(3) +. terms.wire;
    t.fsums.(4) <- t.fsums.(4) +. terms.overhead;
    if klass >= 0 then bump_class t klass latency
    else
      let count, sum =
        Option.value (Hashtbl.find_opt t.classes klass) ~default:(0, 0.)
      in
      Hashtbl.replace t.classes klass (count + 1, sum +. latency)
  end

type summary = {
  window : float;
  offered_packets : int;
  delivered_packets : int;
  dropped_packets : int;
  delivered_bytes : float;
  throughput : float;
  packet_rate : float;
  mean_latency : float;
  p50_latency : float;
  p99_latency : float;
  max_latency : float;
  loss_rate : float;
  per_class : (int * int * float) list;
  drop_breakdown : (drop_site * int) list;
  latency_terms : latency_terms;
}

let summarize t ~horizon =
  let window = Float.max 0. (horizon -. t.warmup) in
  let latencies = Buf.to_array t.latencies in
  (* one sort feeds every order statistic (p50/p99/max) *)
  let sorted =
    if Array.length latencies = 0 then None
    else Some (Lognic_numerics.Stats.Sorted.of_array latencies)
  in
  let stat f = match sorted with None -> 0. | Some s -> f s in
  let per_class =
    let dense = ref [] in
    Array.iteri
      (fun klass count ->
        if count > 0 then
          dense :=
            (klass, count, t.class_sums.(klass) /. float_of_int count)
            :: !dense)
      t.class_counts;
    Hashtbl.fold
      (fun klass (count, sum) acc ->
        (klass, count, if count = 0 then 0. else sum /. float_of_int count) :: acc)
      t.classes !dense
    |> List.sort compare
  in
  let drop_breakdown =
    (* merge interned counters with any hash-recorded drops *)
    let merged = Hashtbl.copy t.site_drops in
    List.iter
      (fun c ->
        if c.c_hits > 0 then
          let count =
            Option.value (Hashtbl.find_opt merged c.c_site) ~default:0
          in
          Hashtbl.replace merged c.c_site (count + c.c_hits))
      t.counters;
    Hashtbl.fold (fun site count acc -> (site, count) :: acc) merged []
    |> List.sort (fun (sa, ca) (sb, cb) ->
           match compare cb ca with 0 -> compare sa sb | c -> c)
  in
  let latency_terms =
    if t.delivered = 0 then zero_terms
    else
      let d = float_of_int t.delivered in
      {
        queueing = t.fsums.(1) /. d;
        service = t.fsums.(2) /. d;
        wire = t.fsums.(3) /. d;
        overhead = t.fsums.(4) /. d;
      }
  in
  {
    window;
    offered_packets = t.offered;
    delivered_packets = t.delivered;
    dropped_packets = t.dropped;
    delivered_bytes = t.fsums.(0);
    throughput = (if window > 0. then t.fsums.(0) /. window else 0.);
    packet_rate =
      (if window > 0. then float_of_int t.delivered /. window else 0.);
    mean_latency =
      (if Array.length latencies = 0 then 0.
       else Lognic_numerics.Stats.mean latencies);
    p50_latency = stat (fun s -> Lognic_numerics.Stats.Sorted.percentile s 50.);
    p99_latency = stat (fun s -> Lognic_numerics.Stats.Sorted.percentile s 99.);
    max_latency = stat Lognic_numerics.Stats.Sorted.maximum;
    loss_rate =
      (if t.offered = 0 then 0.
       else float_of_int t.dropped /. float_of_int t.offered);
    per_class;
    drop_breakdown;
    latency_terms;
  }

let terms_to_json terms =
  Json.Obj
    [
      ("queueing", Json.Num terms.queueing);
      ("service", Json.Num terms.service);
      ("wire", Json.Num terms.wire);
      ("overhead", Json.Num terms.overhead);
    ]

let to_json s =
  Json.Obj
    [
      ("window", Json.Num s.window);
      ("offered_packets", Json.Num (float_of_int s.offered_packets));
      ("delivered_packets", Json.Num (float_of_int s.delivered_packets));
      ("dropped_packets", Json.Num (float_of_int s.dropped_packets));
      ("delivered_bytes", Json.Num s.delivered_bytes);
      ("throughput", Json.Num s.throughput);
      ("packet_rate", Json.Num s.packet_rate);
      ("mean_latency", Json.Num s.mean_latency);
      ("p50_latency", Json.Num s.p50_latency);
      ("p99_latency", Json.Num s.p99_latency);
      ("max_latency", Json.Num s.max_latency);
      ("loss_rate", Json.Num s.loss_rate);
      ( "per_class",
        Json.Arr
          (List.map
             (fun (klass, count, mean) ->
               Json.Obj
                 [
                   ("class", Json.Num (float_of_int klass));
                   ("delivered", Json.Num (float_of_int count));
                   ("mean_latency", Json.Num mean);
                 ])
             s.per_class) );
      ( "drop_breakdown",
        Json.Arr
          (List.map
             (fun (site, count) ->
               Json.Obj
                 [
                   ("site", Json.Str (drop_site_name site));
                   ("drops", Json.Num (float_of_int count));
                 ])
             s.drop_breakdown) );
      ("latency_terms", terms_to_json s.latency_terms);
    ]
