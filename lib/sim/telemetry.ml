(* Growable float buffer (stdlib Dynarray only arrives in OCaml 5.2). *)
module Buf = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 1024 0.; len = 0 }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let to_array t = Array.sub t.data 0 t.len
end

type t = {
  warmup : float;
  mutable offered : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable delivered_bytes : float;
  latencies : Buf.t;
  classes : (int, int * float) Hashtbl.t;
      (* class -> (count, latency sum) *)
}

let create ~warmup =
  {
    warmup;
    offered = 0;
    dropped = 0;
    delivered = 0;
    delivered_bytes = 0.;
    latencies = Buf.create ();
    classes = Hashtbl.create 8;
  }

let record_arrival t ~now ~size =
  ignore size;
  if now >= t.warmup then t.offered <- t.offered + 1

let record_drop t ~now = if now >= t.warmup then t.dropped <- t.dropped + 1

let record_completion t ~now ~born ~size ~klass =
  (* Attribute the packet to the measurement window by its birth time so
     arrival accounting and completion accounting agree. *)
  if born >= t.warmup then begin
    t.delivered <- t.delivered + 1;
    t.delivered_bytes <- t.delivered_bytes +. size;
    Buf.add t.latencies (now -. born);
    let count, sum =
      Option.value (Hashtbl.find_opt t.classes klass) ~default:(0, 0.)
    in
    Hashtbl.replace t.classes klass (count + 1, sum +. (now -. born))
  end

type summary = {
  window : float;
  offered_packets : int;
  delivered_packets : int;
  dropped_packets : int;
  delivered_bytes : float;
  throughput : float;
  packet_rate : float;
  mean_latency : float;
  p50_latency : float;
  p99_latency : float;
  max_latency : float;
  loss_rate : float;
  per_class : (int * int * float) list;
}

let summarize t ~horizon =
  let window = Float.max 0. (horizon -. t.warmup) in
  let latencies = Buf.to_array t.latencies in
  let stat f = if Array.length latencies = 0 then 0. else f latencies in
  let per_class =
    Hashtbl.fold
      (fun klass (count, sum) acc ->
        (klass, count, if count = 0 then 0. else sum /. float_of_int count) :: acc)
      t.classes []
    |> List.sort compare
  in
  {
    window;
    offered_packets = t.offered;
    delivered_packets = t.delivered;
    dropped_packets = t.dropped;
    delivered_bytes = t.delivered_bytes;
    throughput = (if window > 0. then t.delivered_bytes /. window else 0.);
    packet_rate =
      (if window > 0. then float_of_int t.delivered /. window else 0.);
    mean_latency = stat Lognic_numerics.Stats.mean;
    p50_latency = stat (fun l -> Lognic_numerics.Stats.percentile l 50.);
    p99_latency = stat (fun l -> Lognic_numerics.Stats.percentile l 99.);
    max_latency = stat Lognic_numerics.Stats.maximum;
    loss_rate =
      (if t.offered = 0 then 0.
       else float_of_int t.dropped /. float_of_int t.offered);
    per_class;
  }
