(** Per-packet flow identity and the two-level flow cache behind the
    simulator's state-dependent routing.

    When a run is configured with a {!Lognic.Flowcache.spec}
    ({!Netsim.Config.with_flow_cache}), every arriving packet draws a
    flow id from a Zipf-distributed population and the route out of the
    EMC and megaflow vertices is decided by an {e actual} cache lookup —
    EMC hit → the hit edge (class {e hot}); EMC miss → megaflow lookup,
    a hit promotes the flow into the EMC (class {e warm}); a megaflow
    miss takes the slow path and installs the flow in both tables
    (class {e cold}). The static δ fractions on those edges are
    ignored; everywhere else routing is unchanged.

    {b Determinism & scale.} The flow draw is a Walker alias lookup on
    a single {!Lognic_numerics.Rng.bits} draw from a dedicated flow
    rng (split after the tenant rng, before the trace rng, only when
    the flow cache is enabled — so flow-cache-off runs are byte
    identical to builds without this module, and enabled runs are bit
    identical at any [--jobs]). Both caches are fixed-capacity
    int-array LRUs (doubly linked recency list, chained hash buckets,
    lazy TTL expiry): the steady-state hot loop allocates nothing per
    flow or per packet, so million-flow populations cost setup memory
    only (gated by [bench/main.exe --flowcache-overhead]). *)

val classes : int
(** 3 — hot (EMC hit), warm (megaflow hit), cold (slow path). *)

type t
(** Runtime state: the Zipf sampler, both LRU tables, and the
    per-class accumulator. *)

val create : spec:Lognic.Flowcache.spec -> warmup:float -> t
(** Build the sampler and tables. Setup cost is O(flows + entries)
    memory and time; nothing further is allocated while running. *)

val draw : t -> bits:int -> int
(** Map a 30-bit draw ([0, 2^30)) to a flow id with popularity
    Zipf(spec.zipf) — one multiply, two loads, one compare;
    probabilities exact to flows·2⁻³⁰. *)

val emc_lookup : t -> now:float -> flow:int -> bool
(** Probe the EMC; a hit refreshes recency (and the TTL stamp). Counted
    toward the measured hit ratio when [now] is past warmup. *)

val mega_lookup : t -> now:float -> flow:int -> bool
(** Probe the megaflow table (call only on an EMC miss). A hit promotes
    the flow into the EMC; a miss installs it in both tables — the
    slow-path classification's rule insertion. *)

val record_completion : t -> klass:int -> fs:float array -> unit
(** Attribute a delivered packet to its class ([0..2]; negative =
    unclassified, ignored). [fs] is the flight's
    {!Telemetry.flight_slots} scratch array at egress; windowed by the
    packet's birth time, mirroring {!Telemetry}. *)

(** {2 Summaries} *)

type class_row = {
  c_name : string;  (** ["hot"], ["warm"] or ["cold"] *)
  c_share : float;  (** fraction of classified delivered packets *)
  c_count : int;
  c_throughput : float;  (** delivered bytes/s within the window *)
  c_mean_latency : float;  (** 0 when nothing was delivered *)
  c_p99_latency : float;
      (** log₂-bucket upper-bound estimate, clamped to the observed
          maximum *)
  c_max_latency : float;
}

type stats = {
  fc_window : float;  (** measured seconds (horizon − warmup) *)
  fc_flows : int;
  fc_zipf : float;
  fc_emc_entries : int;
  fc_megaflow_entries : int;
  fc_emc_lookups : int;  (** post-warmup EMC probes *)
  fc_emc_hits : int;
  fc_mega_lookups : int;  (** post-warmup megaflow probes (EMC misses) *)
  fc_mega_hits : int;
  fc_emc_hit_ratio : float;
  fc_mega_hit_ratio : float;  (** conditional, among EMC misses *)
  fc_overall_hit_ratio : float;  (** 1 − slow-path share *)
  fc_classes : class_row array;  (** hot, warm, cold — in that order *)
}

val summarize : t -> horizon:float -> stats

val stats_to_json : stats -> Telemetry.Json.t
(** Plain object — embedded by [Explain.flowcache_to_json] under the
    versioned ["flowcache"] schema. *)
