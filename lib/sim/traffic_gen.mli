(** Open-loop traffic generation over a {!Lognic.Traffic.mix}.

    Packets per second of class [i] is [rate_i / size_i]; the aggregate
    stream is either Poisson (the paper's data-center arrival
    assumption) or evenly paced (an ablation), with the class of each
    packet drawn proportionally to its packet rate. *)

type arrival =
  | Poisson  (** exponential inter-arrival times *)
  | Paced  (** deterministic inter-arrival at the aggregate rate *)
  | Bursty of { burstiness : float; mean_on : float }
      (** ON/OFF-modulated Poisson (§2.4's "burst degree"): during
          exponentially-distributed ON phases of mean [mean_on] seconds
          the instantaneous rate is [burstiness] × the aggregate rate;
          OFF phases are sized so the long-run mean rate is preserved
          (expected OFF length = [mean_on × (burstiness − 1)]).
          [burstiness] must be > 1. *)

type t

val create :
  Engine.t ->
  rng:Lognic_numerics.Rng.t ->
  arrival:arrival ->
  mix:Lognic.Traffic.mix ->
  on_arrival:(int -> unit) ->
  t
(** [on_arrival klass] fires once per generated packet with the drawn
    class index (position in [mix]). The callback derives everything
    else itself — birth time is the engine's current time, size is the
    class's packet size, ids are dense in arrival order — so the
    generator never materializes a packet record ({!Packet.t} remains
    available for callers that want one). *)

val start : t -> until:float -> unit
(** Schedules the arrival process from the current time up to (not
    including) [until]. *)

val generated : t -> int
