type kind = Int | Float | Quantity | Str

type field = { f_name : string; f_kind : kind; f_optional : bool }

let field ?(optional = false) name kind =
  { f_name = name; f_kind = kind; f_optional = optional }

type grammar = { g_flag : string; g_fields : field array }

let grammar ~flag fields =
  if fields = [] then invalid_arg "Spec.grammar: no fields";
  let seen_optional = ref false in
  List.iter
    (fun f ->
      if f.f_optional then seen_optional := true
      else if !seen_optional then
        invalid_arg
          (Printf.sprintf
             "Spec.grammar (--%s): required field %s follows an optional one"
             flag f.f_name))
    fields;
  { g_flag = flag; g_fields = Array.of_list fields }

let flag g = g.g_flag

let usage g =
  let buf = Buffer.create 32 in
  let opened = ref 0 in
  Array.iteri
    (fun i f ->
      if f.f_optional then begin
        Buffer.add_char buf '[';
        incr opened
      end;
      if i > 0 then Buffer.add_char buf ':';
      Buffer.add_string buf f.f_name)
    g.g_fields;
  for _ = 1 to !opened do
    Buffer.add_char buf ']'
  done;
  Buffer.contents buf

type value = I of int | F of float | S of string

let error ~flag ~src msg = Printf.sprintf "--%s %S: %s" flag src msg

let field_error g ~src f msg =
  error ~flag:g.g_flag ~src
    (Printf.sprintf "%s: %s; expected %s" f.f_name msg (usage g))

let shape_error g ~src msg =
  error ~flag:g.g_flag ~src (Printf.sprintf "%s; expected %s" msg (usage g))

let required_count g =
  Array.fold_left
    (fun n f -> if f.f_optional then n else n + 1)
    0 g.g_fields

let parse_field ?quantity g ~src f raw =
  match f.f_kind with
  | Int -> (
    match int_of_string_opt raw with
    | Some v -> Ok (I v)
    | None -> Error (field_error g ~src f (Printf.sprintf "not an integer: %S" raw)))
  | Float -> (
    match float_of_string_opt raw with
    | Some v -> Ok (F v)
    | None -> Error (field_error g ~src f (Printf.sprintf "not a number: %S" raw)))
  | Quantity -> (
    let parsed =
      match quantity with
      | Some parse -> parse raw
      | None -> (
        match float_of_string_opt raw with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "not a number: %S" raw))
    in
    match parsed with
    | Ok v -> Ok (F v)
    | Error e -> Error (field_error g ~src f e))
  | Str ->
    if raw = "" then Error (field_error g ~src f "empty")
    else Ok (S raw)

let parse ?quantity g src =
  let parts = String.split_on_char ':' src in
  let given = List.length parts in
  let total = Array.length g.g_fields in
  let needed = required_count g in
  if given < needed then
    Error
      (shape_error g ~src
         (Printf.sprintf "%d field%s given, at least %d required" given
            (if given = 1 then "" else "s")
            needed))
  else if given > total then
    Error
      (shape_error g ~src
         (Printf.sprintf "%d fields given, at most %d accepted" given total))
  else
    let rec go i acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | raw :: rest -> (
        match parse_field ?quantity g ~src g.g_fields.(i) raw with
        | Ok v -> go (i + 1) (v :: acc) rest
        | Error _ as e -> e)
    in
    go 0 [] parts

let parse_all ?quantity g srcs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | src :: rest -> (
      match parse ?quantity g src with
      | Ok v -> go (v :: acc) rest
      | Error _ as e -> e)
  in
  go [] srcs

let render g values =
  let n = Array.length values in
  if n < required_count g || n > Array.length g.g_fields then
    invalid_arg
      (Printf.sprintf "Spec.render (--%s): %d values for %s" g.g_flag n
         (usage g));
  let part i v =
    let f = g.g_fields.(i) in
    match (f.f_kind, v) with
    | Int, I x -> string_of_int x
    | (Float | Quantity), F x -> Telemetry.Json.float_repr x
    | (Float | Quantity), I x -> string_of_int x
    | Str, S s ->
      if s = "" || String.contains s ':' then
        invalid_arg
          (Printf.sprintf "Spec.render (--%s): %s cannot hold %S" g.g_flag
             f.f_name s)
      else s
    | _ ->
      invalid_arg
        (Printf.sprintf "Spec.render (--%s): kind mismatch at %s" g.g_flag
           f.f_name)
  in
  String.concat ":" (List.mapi part (Array.to_list values))

let kind_mismatch i =
  invalid_arg (Printf.sprintf "Spec: kind mismatch at field %d" i)

let get_int values i =
  match values.(i) with I v -> v | _ -> kind_mismatch i

let get_float values i =
  match values.(i) with F v -> v | I v -> float_of_int v | _ -> kind_mismatch i

let get_str values i =
  match values.(i) with S s -> s | _ -> kind_mismatch i

let find_int values i = if i < Array.length values then Some (get_int values i) else None
let find_float values i =
  if i < Array.length values then Some (get_float values i) else None
let find_str values i =
  if i < Array.length values then Some (get_str values i) else None
