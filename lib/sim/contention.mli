(** The multi-resource contention report behind [lognic contention].

    Runs the joint multi-class model with the interference layer
    ({!Lognic.Extensions.mixed_traffic} via {!Explain.run_mix}) against
    one multi-class simulation, and reports:

    - per-class model-vs-sim residuals (throughput and latency), each
      class's contention slowdown, its per-resource pressure and byte
      ceilings, and its model p99 on the union queues;
    - per-entity residual rows ranked by simulated utilization (the
      same join as [lognic explain]);
    - a ranked interference report: victim←aggressor pairs ordered by
      their slowdown contribution M_ij · pressure_j.

    The JSON is versioned ([schema = "contention"]) like the [explain]
    and [faults] reports. *)

type class_info = {
  slowdown : float;  (** ≥ 1; 1 without a contention spec *)
  pressure : (string * float) list;
      (** this class's own rate·demand/capacity per resource *)
  resource_caps : (string * float) list;
      (** this class's byte/s ceiling per demanded resource *)
  model_p99 : float option;
      (** joint-tail p99 seconds ({!Lognic.Extensions.mixed_tail}) *)
}

type interference_edge = {
  victim : int;  (** class index in mix order *)
  aggressor : int;
  contribution : float;  (** M_victim,aggressor · pressure_aggressor *)
}

type report = {
  base : Explain.mix_report;  (** the model-vs-sim join *)
  per_class : class_info list;  (** mix order, same length as classes *)
  ranked : interference_edge list;  (** highest contribution first *)
}

val run :
  ?config:Netsim.config ->
  ?queue_model:Lognic.Latency.queue_model ->
  ?contention:Lognic.Extensions.contention ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  mix:Lognic.Traffic.mix ->
  report
(** Without [?contention] the report still joins model and simulation
    per class and entity (all slowdowns 1, empty interference ranking)
    — and runs the {e identical} simulation a plain {!Netsim.run} with
    the same config would, a property the bench gate asserts. Raises
    [Invalid_argument] like {!Explain.run_mix}, plus the contention
    validation of {!Lognic.Extensions.mixed_traffic}. *)

val to_json : report -> Telemetry.Json.t
(** Versioned [kind:"contention"]: aggregate model/sim blocks, the
    per-class rows (explain fields + slowdown/pressure/resource_caps/
    model_p99), the ranked [interference] array, and the [entities]
    ranking. *)

val to_string : report -> string
val pp : Format.formatter -> report -> unit
val to_text : report -> string
