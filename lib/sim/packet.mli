(** Packets flowing through the simulated SmartNIC. *)

type t = {
  id : int;
  size : float;  (** wire size in bytes *)
  klass : int;  (** traffic-class index (position in the mix) *)
  born : float;  (** ingress arrival time, seconds *)
}

val make : id:int -> size:float -> klass:int -> born:float -> t
