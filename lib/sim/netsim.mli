(** The bridge from a LogNIC execution graph to a runnable packet-level
    simulation — our stand-in for the paper's hardware testbeds (see
    DESIGN.md, substitutions).

    The simulator instantiates exactly the entities the model abstracts:
    one {!Ip_node} per finite-throughput vertex ([D] engines sharing
    γ·A·P, an N-entry bounded queue, drops when full), one shared
    {!Medium} each for the SoC interface and the memory subsystem, one
    private medium per dedicated-bandwidth edge, and fixed per-vertex
    computation-transfer overheads. Packets are routed at fan-out
    vertices with probabilities proportional to the out-edge δ, and the
    per-packet work/transfer quantities are scaled so that aggregate
    loads match the model's W-fractions: a packet crossing edge [e]
    (probability [p_e]) moves [size·α_e/p_e] bytes over the interface,
    [size·β_e/p_e] through memory, and costs its destination
    [size·Σδ_in/p_v] bytes of processing. *)

type config = {
  seed : int;
  duration : float;  (** simulated seconds (default 0.1) *)
  warmup : float;  (** discarded prefix (default 10% of duration) *)
  service_dist : Ip_node.service_dist;  (** default [Exponential] *)
  arrival : Traffic_gen.arrival;  (** default [Poisson] *)
}

val default_config : config

type vertex_stats = {
  vid : Lognic.Graph.vertex_id;
  vlabel : string;
  drops : int;
  completions : int;
  utilization : float;
}

type measurement = {
  summary : Telemetry.summary;
  vertex_stats : vertex_stats list;
  interface_utilization : float;
  memory_utilization : float;
  generated : int;  (** packets offered over the whole run *)
}

val run :
  ?config:config ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  mix:Lognic.Traffic.mix ->
  measurement
(** Raises [Invalid_argument] if the graph fails validation. *)

val run_single :
  ?config:config ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  traffic:Lognic.Traffic.t ->
  measurement
(** Single-class convenience wrapper. *)

type replicated = {
  runs : int;
  throughput_mean : float;
  throughput_stddev : float;
  latency_mean : float;
  latency_stddev : float;
  loss_mean : float;
}

val run_replicated :
  ?config:config ->
  ?runs:int ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  mix:Lognic.Traffic.mix ->
  replicated
(** [runs] (default 5) independent replications with derived seeds
    (config.seed + i); reports across-run means and sample standard
    deviations so measurements carry an uncertainty estimate. *)

val replication_configs : config -> int -> config list
(** The per-replication configs [run_replicated] uses (seeds
    [config.seed + i] for [i < runs]), exposed so alternative execution
    strategies ({!Parallel.run_replicated}) derive identical seeds.
    Raises [Invalid_argument] when [runs < 2]. *)

val replicated_of_summaries : Telemetry.summary list -> replicated
(** The fold from per-run summaries to {!replicated} statistics, shared
    with {!Parallel.run_replicated} so both paths are bit-identical.
    Raises [Invalid_argument] on fewer than two summaries. *)
