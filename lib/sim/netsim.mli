(** The bridge from a LogNIC execution graph to a runnable packet-level
    simulation — our stand-in for the paper's hardware testbeds (see
    DESIGN.md, substitutions).

    The simulator instantiates exactly the entities the model abstracts:
    one {!Ip_node} per finite-throughput vertex ([D] engines sharing
    γ·A·P, an N-entry bounded queue, drops when full), one shared
    {!Medium} each for the SoC interface and the memory subsystem, one
    private medium per dedicated-bandwidth edge, and fixed per-vertex
    computation-transfer overheads. Packets are routed at fan-out
    vertices with probabilities proportional to the out-edge δ, and the
    per-packet work/transfer quantities are scaled so that aggregate
    loads match the model's W-fractions: a packet crossing edge [e]
    (probability [p_e]) moves [size·α_e/p_e] bytes over the interface,
    [size·β_e/p_e] through memory, and costs its destination
    [size·Σδ_in/p_v] bytes of processing.

    Every run is fully observable: drops are attributed to the queue or
    medium buffer that shed them, each delivered packet's latency is
    decomposed into queueing / service / wire / overhead components
    (the Eq. 2 terms), and [sample_interval] turns on periodic
    queue-depth / in-flight / backlog traces ({!Telemetry.Series}).

    {b Entry points.} {!Run.t} is the single run spec — graph, hardware,
    traffic mix, config, and fault plan in one record — executed by
    {!execute} / {!execute_replicated}. The historical entry points
    ({!run}, {!run_single}, {!run_replicated}) remain as thin wrappers
    over an empty-fault spec and produce byte-identical measurements;
    prefer the spec API in new code, it is where future knobs land. *)

type config = {
  seed : int;
  duration : float;  (** simulated seconds (default 0.1) *)
  warmup : float;  (** discarded prefix (default 10% of duration) *)
  service_dist : Ip_node.service_dist;  (** default [Exponential] *)
  arrival : Traffic_gen.arrival;  (** default [Poisson] *)
  sample_interval : float option;
      (** when [Some dt], sample every entity's state each [dt] seconds
          into {!measurement.series} (default [None]; sampling is
          read-only and never changes simulation results) *)
  series_capacity : int;
      (** ring capacity per series (default 4096; oldest samples are
          overwritten) *)
  trace : Trace.config option;
      (** when [Some], record per-packet lifecycle spans for a
          reservoir-sampled subset of packets into
          {!measurement.trace} (default [None]). The trace rng is split
          from the run seed after every other stream, so enabling
          tracing never changes any measured quantity. *)
  check_invariants : bool;
      (** when [true], validate the run's conservation laws
          ({!Invariants}) at every hook point — packet fates, queue and
          buffer bounds, event-time monotonicity, entity utilization,
          summary self-consistency — and attach the structured report
          as {!measurement.invariants} (default [false]). Checking is
          read-only: it never changes a measured quantity, and the
          disabled path adds no work to the simulator hot loop
          (enforced by [bench/main.exe --invariant-overhead]). *)
  metrics : Metrics.config option;
      (** when [Some], sample a live metrics registry every
          [interval] sim-seconds, evaluate its SLO rules, and attach
          the instance as {!measurement.metrics} (default [None]).
          Every instrument is a read-only probe (plus an
          allocation-free latency histogram) and no rng stream is
          split, so enabling metrics never changes simulation results
          or measurement JSON (enforced by
          [bench/main.exe --metrics-overhead]). *)
  tenants : Tenant.set option;
      (** when [Some], run multi-tenant: every arrival is attributed to
          a tenant drawn by the set's offered-traffic shares, per-VF
          telemetry accumulates into {!measurement.tenants}, and — at
          two tenants or more — every finite-throughput vertex swaps
          its queue for the SR-IOV two-stage arbiter
          ({!Ip_node.create_hierarchical}: one queue group per tenant,
          one queue per traffic class, packet-granular WRR across
          groups by tenant weight). A {e single}-tenant set keeps the
          untenanted scheduler and rng streams, so its measurement JSON
          is byte-identical to [tenants = None] (enforced by
          [bench/main.exe --tenant-overhead]); with [>= 2] tenants the
          tenant rng is split after the fault rng and before the trace
          rng. Default [None]. *)
  flow_cache : Lognic.Flowcache.spec option;
      (** when [Some], run with state-dependent splits: every arriving
          packet draws a flow id from the spec's Zipf population (a
          dedicated flow rng, split after the tenant rng and before the
          trace rng), and the route out of the vertices labelled
          [spec.emc_label] / [spec.megaflow_label] is decided by an
          actual {!Flow_cache} lookup — hit takes the {e first}
          out-edge, miss the second; the static δs on those edges are
          ignored. Per-class (hot/warm/cold) telemetry accumulates into
          {!measurement.flow_cache}. Disabled runs are byte-identical
          to builds without the feature (enforced by
          [bench/main.exe --flowcache-overhead]). Both cache vertices
          must exist with exactly two out-edges, or the run raises
          [Invalid_argument]. Default [None]. *)
}

val default_config : config

(** The supported way to assemble a {!config}: start from
    {!Config.default} and chain setters, e.g.
    [Config.(default |> with_horizon 0.5 |> with_seed 7)]. The record
    stays public for existing literal-update code, but new knobs land
    here. Setters take the config {e last} so they pipeline. *)
module Config : sig
  type t = config

  val default : t
  (** = {!default_config}. *)

  val with_seed : int -> t -> t
  val with_duration : float -> t -> t
  val with_warmup : float -> t -> t

  val with_horizon : ?warmup:float -> float -> t -> t
  (** [with_horizon d] sets [duration = d] and [warmup] to the
      conventional 10% of it (override with [?warmup]) — the common
      way a run's time axis is configured. *)

  val with_service_dist : Ip_node.service_dist -> t -> t
  val with_arrival : Traffic_gen.arrival -> t -> t

  val with_sampling : ?capacity:int -> float -> t -> t
  (** Enable periodic series sampling at the given interval;
      [capacity] overrides [series_capacity] (default keeps it). *)

  val with_trace : Trace.config -> t -> t
  val with_invariants : bool -> t -> t
  val with_metrics : Metrics.config -> t -> t
  val with_tenants : Tenant.set -> t -> t
  val without_tenants : t -> t
  val with_flow_cache : Lognic.Flowcache.spec -> t -> t
  val without_flow_cache : t -> t
end

(** The unified run specification: everything one simulation needs, as
    one value. Build with {!Run.make}/{!Run.single}, refine with the
    [with_*] setters (each returns an updated copy), execute with
    {!execute}. *)
module Run : sig
  type t = {
    graph : Lognic.Graph.t;
    hw : Lognic.Params.hardware;
    mix : Lognic.Traffic.mix;
    config : config;
    faults : Faults.plan;
  }

  val make :
    ?config:config ->
    ?faults:Faults.plan ->
    Lognic.Graph.t ->
    hw:Lognic.Params.hardware ->
    mix:Lognic.Traffic.mix ->
    t
  (** [config] defaults to {!default_config}, [faults] to
      {!Faults.empty}. *)

  val single :
    ?config:config ->
    ?faults:Faults.plan ->
    Lognic.Graph.t ->
    hw:Lognic.Params.hardware ->
    traffic:Lognic.Traffic.t ->
    t
  (** Single-class convenience: [mix = [(traffic, 1.)]]. *)

  val with_config : t -> config -> t
  val with_faults : t -> Faults.plan -> t
  val with_mix : t -> Lognic.Traffic.mix -> t
  val with_hw : t -> Lognic.Params.hardware -> t
  val with_seed : t -> int -> t
  val with_duration : t -> float -> t
  val with_tenants : t -> Tenant.set -> t
  val with_flow_cache : t -> Lognic.Flowcache.spec -> t
end

type vertex_stats = {
  vid : Lognic.Graph.vertex_id;
  vlabel : string;
  drops : int;  (** whole-run drops at this node (not warmup-windowed) *)
  queue_drops : int array;  (** same, split by queue index *)
  completions : int;
  utilization : float;  (** horizon-clipped; never exceeds 1 *)
}

type medium_stats = {
  mlabel : string;  (** "interface", "memory", or "link-SRC-DST" *)
  m_utilization : float;  (** horizon-clipped; never exceeds 1 *)
  m_busy : float;  (** busy seconds within the horizon *)
  m_rejections : int;  (** whole-run buffer rejections *)
}

(** Per-sub-interval accounting of a faulted run: the run horizon cut at
    every fault boundary and refined with a uniform duration/64 grid.
    Packets are attributed to the sub-interval of their {e birth} time,
    whole-run (not warmup-windowed) — the point is to see the timeline,
    including the transient. *)
type interval_stats = {
  i_start : float;
  i_stop : float;
  i_faults : string list;
      (** active {!Faults.fault_label}s; [[]] on healthy stretches *)
  i_offered : int;
  i_delivered : int;
  i_dropped : int;
  i_throughput : float;  (** delivered bytes / sub-interval length *)
  i_latency : float;
      (** mean delivered latency (0 when nothing was delivered) *)
}

(** Per-run recovery summary, derived from {!measurement.fault_intervals}. *)
type resilience = {
  recovery_time : float option;
      (** seconds from the last fault clearing until the first
          sub-interval whose throughput regains ≥ 90% of the healthy
          baseline (the time-weighted throughput of pre-fault healthy
          sub-intervals); [None] when faults extend to the horizon, the
          run never recovers, or no healthy baseline exists *)
  worst_throughput : float;  (** lowest faulted sub-interval throughput *)
  worst_start : float;  (** where that sub-interval starts *)
}

type measurement = {
  summary : Telemetry.summary;
  vertex_stats : vertex_stats list;
  medium_stats : medium_stats list;
      (** interface, memory, then dedicated links in edge order *)
  drop_breakdown : (Telemetry.drop_site * int) list;
      (** = [summary.drop_breakdown]: warmup-windowed drops per site,
          summing to [summary.dropped_packets] *)
  series : Telemetry.Series.t list;
      (** sampled time series (empty unless [sample_interval] is set):
          ["LABEL.depth"] / ["LABEL.busy"] per node, ["LABEL.backlog"]
          per medium *)
  interface_utilization : float;
  memory_utilization : float;
  generated : int;  (** packets offered over the whole run *)
  fault_intervals : interval_stats list;
      (** chronological, tiling [\[0, duration)]; empty for an empty
          fault plan *)
  resilience : resilience option;
      (** present iff the plan had at least one fault active before the
          horizon *)
  trace : Trace.t option;
      (** the packet-span reservoir, present iff [config.trace] was set;
          export with {!Trace.to_chrome_json}. Deliberately absent from
          {!measurement_to_json} so measurement JSON is byte-identical
          with tracing on or off. *)
  invariants : Invariants.report option;
      (** the conservation-law report, present iff
          [config.check_invariants] was set; export with
          {!Invariants.report_to_json}. Like [trace], deliberately
          absent from {!measurement_to_json} so measurement JSON is
          byte-identical with checking on or off. *)
  metrics : Metrics.t option;
      (** the live metrics instance after its final tick, present iff
          [config.metrics] was set; query {!Metrics.alerts}, export
          with {!Metrics.to_openmetrics} / {!Metrics.alerts_to_json} /
          {!Metrics.profile_to_json} (snapshots stream through
          [config.metrics.on_snapshot] during the run). Like [trace],
          deliberately absent from {!measurement_to_json} so
          measurement JSON is byte-identical with metrics on or off. *)
  tenants : Tenant.stats option;
      (** per-tenant attribution and fairness indices, present iff
          [config.tenants] was set; export with
          {!Explain.tenants_to_json} (or embed via
          {!Tenant.stats_to_json}). Per-tenant offered / delivered /
          dropped counts sum exactly to the aggregate
          warmup-windowed telemetry. Like [trace], deliberately absent
          from {!measurement_to_json}. *)
  flow_cache : Flow_cache.stats option;
      (** measured hit ratios and per-class (hot/warm/cold) latency
          rows, present iff [config.flow_cache] was set; export with
          [Explain.flowcache_to_json] (or embed via
          {!Flow_cache.stats_to_json}). Like [trace], deliberately
          absent from {!measurement_to_json}. *)
}

val execute_with : ?engine:Engine.t -> Run.t -> measurement
(** {!execute} with an optional caller-owned engine. The engine is
    {!Engine.reset} before use, which keeps its event-queue storage
    warm across runs — sequential sweeps ({!execute_replicated}, the
    optimizer's inner loops) stop paying queue (re)allocation per run.
    Reuse is result-identical: the reset restarts the tie-break
    sequence and the calendar queue pops in exact (time, seq) order
    whatever bucket geometry it inherited. Do {e not} share one engine
    across concurrently-executing runs ({!Parallel.map} hands each
    worker its own spec precisely so it can keep [?engine] unset). *)

val execute : Run.t -> measurement
(** Run one simulation from a spec. Raises [Invalid_argument] if the
    graph fails validation or a fault event targets an entity the
    realized simulation does not have (unknown vertex label,
    infinite-throughput vertex, unknown medium label).

    {b Determinism.} With [faults = Faults.empty] the measurement is
    byte-identical to the pre-fault-era {!run} (no fault rng is split,
    no per-packet accounting is added — enforced by the bench gate).
    With any plan, results are bit-identical at every [--jobs]: the
    fault rng is its own stream, split after the per-node rngs and
    before the tenant and trace rngs, and is drawn only while a
    [Drop_burst] is active — so a non-empty plan can perturb at most
    which packets the optional trace reservoir samples, never a
    measured quantity. The rng split order is: generator, router,
    per-node (graph order), fault (iff a plan), tenant (iff >= 2
    tenants), flow (iff a flow cache), trace (iff tracing) — each
    optional stream splits only when its feature is on, so switching a
    feature off restores the exact streams of a run that never had
    it. *)

val run :
  ?config:config ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  mix:Lognic.Traffic.mix ->
  measurement
(** Pre-spec entry point, kept for compatibility: exactly
    [execute (Run.make ~config g ~hw ~mix)] (empty fault plan). Prefer
    {!Run.make} + {!execute} in new code. *)

val run_single :
  ?config:config ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  traffic:Lognic.Traffic.t ->
  measurement
(** Single-class convenience wrapper over {!run}; prefer {!Run.single} +
    {!execute} in new code. *)

val resilience_to_json : resilience -> Telemetry.Json.t

val measurement_to_json : measurement -> Telemetry.Json.t
(** The full measurement — summary, per-entity stats, drop sites,
    series, fault intervals — as one versioned JSON object
    ([schema = "measurement"], see {!Telemetry.Json.versioned}; what
    [lognic report --trace] writes). *)

type entity_replicated = {
  entity : string;  (** vertex label or medium label *)
  utilization_mean : float;
  drops_mean : float;  (** node drops / medium rejections per run *)
}

(** Across-run resilience statistics (faulted replications only). *)
type resilience_replicated = {
  recovered_runs : int;  (** runs whose [recovery_time] was [Some] *)
  recovery_mean : float;  (** mean over recovered runs (0 when none) *)
  recovery_max : float;
  worst_throughput_mean : float;
  worst_throughput_min : float;
}

type replicated = {
  runs : int;
  throughput_mean : float;
  throughput_stddev : float;
  latency_mean : float;
  latency_stddev : float;
  loss_mean : float;
  entities : entity_replicated list;
      (** per-entity across-run means (vertices first, then media);
          empty when folded from bare summaries *)
  resilience : resilience_replicated option;
      (** across-run recovery-time / worst-interval statistics; [None]
          for fault-free replications or bare summaries *)
}

val execute_replicated : ?runs:int -> Run.t -> replicated
(** [runs] (default 5) independent replications of the spec with derived
    seeds ([config.seed + i]); reports across-run means and sample
    standard deviations, per-entity means, and (for faulted specs)
    recovery statistics. Raises [Invalid_argument] when [runs < 2]. *)

val run_replicated :
  ?config:config ->
  ?runs:int ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  mix:Lognic.Traffic.mix ->
  replicated
(** Pre-spec entry point, kept for compatibility: exactly
    [execute_replicated ~runs (Run.make ~config g ~hw ~mix)]. *)

val replication_configs : config -> int -> config list
(** The per-replication configs (seeds [config.seed + i] for
    [i < runs]), exposed so alternative execution strategies
    ({!Parallel.run_replicated}) derive identical seeds. Raises
    [Invalid_argument] when [runs < 2]. *)

val replication_specs : Run.t -> int -> Run.t list
(** {!replication_configs} lifted to specs: the same spec with each
    derived config. Raises [Invalid_argument] when [runs < 2]. *)

val replicated_of_measurements : measurement list -> replicated
(** The fold from per-run measurements to {!replicated} statistics,
    shared with {!Parallel.run_replicated} so both paths are
    bit-identical. Raises [Invalid_argument] on fewer than two
    measurements. *)

val replicated_of_summaries : Telemetry.summary list -> replicated
(** Like {!replicated_of_measurements} when only summaries are at hand;
    [entities] comes back empty and [resilience] is [None]. Raises
    [Invalid_argument] on fewer than two summaries. *)
