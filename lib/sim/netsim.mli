(** The bridge from a LogNIC execution graph to a runnable packet-level
    simulation — our stand-in for the paper's hardware testbeds (see
    DESIGN.md, substitutions).

    The simulator instantiates exactly the entities the model abstracts:
    one {!Ip_node} per finite-throughput vertex ([D] engines sharing
    γ·A·P, an N-entry bounded queue, drops when full), one shared
    {!Medium} each for the SoC interface and the memory subsystem, one
    private medium per dedicated-bandwidth edge, and fixed per-vertex
    computation-transfer overheads. Packets are routed at fan-out
    vertices with probabilities proportional to the out-edge δ, and the
    per-packet work/transfer quantities are scaled so that aggregate
    loads match the model's W-fractions: a packet crossing edge [e]
    (probability [p_e]) moves [size·α_e/p_e] bytes over the interface,
    [size·β_e/p_e] through memory, and costs its destination
    [size·Σδ_in/p_v] bytes of processing.

    Every run is fully observable: drops are attributed to the queue or
    medium buffer that shed them, each delivered packet's latency is
    decomposed into queueing / service / wire / overhead components
    (the Eq. 2 terms), and [sample_interval] turns on periodic
    queue-depth / in-flight / backlog traces ({!Telemetry.Series}). *)

type config = {
  seed : int;
  duration : float;  (** simulated seconds (default 0.1) *)
  warmup : float;  (** discarded prefix (default 10% of duration) *)
  service_dist : Ip_node.service_dist;  (** default [Exponential] *)
  arrival : Traffic_gen.arrival;  (** default [Poisson] *)
  sample_interval : float option;
      (** when [Some dt], sample every entity's state each [dt] seconds
          into {!measurement.series} (default [None]; sampling is
          read-only and never changes simulation results) *)
  series_capacity : int;
      (** ring capacity per series (default 4096; oldest samples are
          overwritten) *)
  trace : Trace.config option;
      (** when [Some], record per-packet lifecycle spans for a
          reservoir-sampled subset of packets into
          {!measurement.trace} (default [None]). The trace rng is split
          from the run seed after every other stream, so enabling
          tracing never changes any measured quantity. *)
}

val default_config : config

type vertex_stats = {
  vid : Lognic.Graph.vertex_id;
  vlabel : string;
  drops : int;  (** whole-run drops at this node (not warmup-windowed) *)
  queue_drops : int array;  (** same, split by queue index *)
  completions : int;
  utilization : float;  (** horizon-clipped; never exceeds 1 *)
}

type medium_stats = {
  mlabel : string;  (** "interface", "memory", or "link-SRC-DST" *)
  m_utilization : float;  (** horizon-clipped; never exceeds 1 *)
  m_busy : float;  (** busy seconds within the horizon *)
  m_rejections : int;  (** whole-run buffer rejections *)
}

type measurement = {
  summary : Telemetry.summary;
  vertex_stats : vertex_stats list;
  medium_stats : medium_stats list;
      (** interface, memory, then dedicated links in edge order *)
  drop_breakdown : (Telemetry.drop_site * int) list;
      (** = [summary.drop_breakdown]: warmup-windowed drops per site,
          summing to [summary.dropped_packets] *)
  series : Telemetry.Series.t list;
      (** sampled time series (empty unless [sample_interval] is set):
          ["LABEL.depth"] / ["LABEL.busy"] per node, ["LABEL.backlog"]
          per medium *)
  interface_utilization : float;
  memory_utilization : float;
  generated : int;  (** packets offered over the whole run *)
  trace : Trace.t option;
      (** the packet-span reservoir, present iff [config.trace] was set;
          export with {!Trace.to_chrome_json}. Deliberately absent from
          {!measurement_to_json} so measurement JSON is byte-identical
          with tracing on or off. *)
}

val run :
  ?config:config ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  mix:Lognic.Traffic.mix ->
  measurement
(** Raises [Invalid_argument] if the graph fails validation. *)

val run_single :
  ?config:config ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  traffic:Lognic.Traffic.t ->
  measurement
(** Single-class convenience wrapper. *)

val measurement_to_json : measurement -> Telemetry.Json.t
(** The full measurement — summary, per-entity stats, drop sites,
    series — as one JSON object (what [lognic report --trace] writes). *)

type entity_replicated = {
  entity : string;  (** vertex label or medium label *)
  utilization_mean : float;
  drops_mean : float;  (** node drops / medium rejections per run *)
}

type replicated = {
  runs : int;
  throughput_mean : float;
  throughput_stddev : float;
  latency_mean : float;
  latency_stddev : float;
  loss_mean : float;
  entities : entity_replicated list;
      (** per-entity across-run means (vertices first, then media);
          empty when folded from bare summaries *)
}

val run_replicated :
  ?config:config ->
  ?runs:int ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  mix:Lognic.Traffic.mix ->
  replicated
(** [runs] (default 5) independent replications with derived seeds
    (config.seed + i); reports across-run means and sample standard
    deviations so measurements carry an uncertainty estimate, plus
    per-entity mean utilization and drops. *)

val replication_configs : config -> int -> config list
(** The per-replication configs [run_replicated] uses (seeds
    [config.seed + i] for [i < runs]), exposed so alternative execution
    strategies ({!Parallel.run_replicated}) derive identical seeds.
    Raises [Invalid_argument] when [runs < 2]. *)

val replicated_of_measurements : measurement list -> replicated
(** The fold from per-run measurements to {!replicated} statistics,
    shared with {!Parallel.run_replicated} so both paths are
    bit-identical. Raises [Invalid_argument] on fewer than two
    measurements. *)

val replicated_of_summaries : Telemetry.summary list -> replicated
(** Like {!replicated_of_measurements} when only summaries are at hand;
    [entities] comes back empty. Raises [Invalid_argument] on fewer
    than two summaries. *)
