module J = Telemetry.Json

type class_info = {
  slowdown : float;
  pressure : (string * float) list;
  resource_caps : (string * float) list;
  model_p99 : float option;
}

type interference_edge = {
  victim : int;
  aggressor : int;
  contribution : float;
}

type report = {
  base : Explain.mix_report;
  per_class : class_info list;
  ranked : interference_edge list;
}

let run ?config ?queue_model ?contention g ~hw ~mix =
  let base = Explain.run_mix ?config ?queue_model ?contention g ~hw ~mix in
  let n = List.length base.Explain.class_rows in
  let contended =
    match base.Explain.mix_model.Lognic.Extensions.contention with
    | Some cs -> cs
    | None ->
      List.init n (fun _ ->
          {
            Lognic.Extensions.slowdown = 1.;
            pressure = [];
            resource_caps = [];
          })
  in
  (* Joint tail analysis: the p99 each class should see on the union
     queues, the contention-aware analogue of Tail.evaluate. *)
  let p99s =
    match
      Lognic.Extensions.mixed_tail ?model:queue_model ?contention ~hw
        ~graph_for:(fun _ -> g)
        mix
    with
    | tails ->
      List.map (fun (_, t) -> Some (Lognic.Tail.overall t).Lognic.Tail.p99) tails
    | exception Invalid_argument _ -> List.init n (fun _ -> None)
  in
  let per_class =
    List.map2
      (fun (c : Lognic.Extensions.class_contention) model_p99 ->
        {
          slowdown = c.slowdown;
          pressure = c.pressure;
          resource_caps = c.resource_caps;
          model_p99;
        })
      contended p99s
  in
  (* Rank victim<-aggressor pairs by their slowdown contribution
     M_ij · pressure_j; only pairs that actually interfere appear. *)
  let ranked =
    match contention with
    | None -> []
    | Some (spec : Lognic.Extensions.contention) ->
      let total_pressure =
        Array.of_list
          (List.map
             (fun (c : Lognic.Extensions.class_contention) ->
               List.fold_left (fun acc (_, p) -> acc +. p) 0. c.pressure)
             contended)
      in
      let edges = ref [] in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            let contribution = spec.interference.(i).(j) *. total_pressure.(j) in
            if contribution > 0. then
              edges :=
                { victim = i; aggressor = j; contribution } :: !edges
          end
        done
      done;
      List.stable_sort
        (fun a b -> Float.compare b.contribution a.contribution)
        (List.rev !edges)
  in
  { base; per_class; ranked }

let opt_float = function None -> J.Null | Some x -> J.Num x

let to_json t =
  let b = t.base in
  let assoc_json l = J.Obj (List.map (fun (k, v) -> (k, J.Num v)) l) in
  let class_json i (row : Explain.class_row) (info : class_info) =
    match Explain.class_row_to_json i row with
    | J.Obj fields ->
      J.Obj
        (fields
        @ [
            ("slowdown", J.Num info.slowdown);
            ("pressure", assoc_json info.pressure);
            ("resource_caps", assoc_json info.resource_caps);
            ("model_p99", opt_float info.model_p99);
          ])
    | other -> other
  in
  J.versioned ~kind:"contention"
    [
      ( "model",
        J.Obj
          [
            ("throughput", J.Num b.Explain.mix_model_throughput);
            ("latency", J.Num b.Explain.mix_model_latency);
            ("bottleneck", J.Str b.Explain.mix_model_bottleneck);
          ] );
      ( "sim",
        J.Obj
          [
            ("throughput", J.Num b.Explain.mix_sim_throughput);
            ("latency", J.Num b.Explain.mix_sim_latency);
            ("bottleneck", J.Str b.Explain.mix_sim_bottleneck);
          ] );
      ("agree", J.Bool b.Explain.mix_agree);
      ("throughput_error", J.Num b.Explain.mix_throughput_error);
      ("latency_error", J.Num b.Explain.mix_latency_error);
      ( "classes",
        J.Arr
          (List.mapi
             (fun i (row, info) -> class_json i row info)
             (List.combine b.Explain.class_rows t.per_class)) );
      ( "interference",
        J.Arr
          (List.map
             (fun e ->
               J.Obj
                 [
                   ("victim", J.Num (float_of_int e.victim));
                   ("aggressor", J.Num (float_of_int e.aggressor));
                   ("contribution", J.Num e.contribution);
                 ])
             t.ranked) );
      ( "entities",
        J.Arr
          (List.mapi (fun i r -> Explain.row_to_json (i + 1) r) b.Explain.mix_rows)
      );
    ]

let to_string t = J.to_string (to_json t)

let pp ppf t =
  Explain.pp_mix ppf t.base;
  Format.fprintf ppf "  %-5s %9s %11s@\n" "class" "slowdown" "model-p99";
  List.iteri
    (fun i info ->
      let opt = function None -> "-" | Some x -> Printf.sprintf "%.4g" x in
      Format.fprintf ppf "  %-5d %9.4f %11s@\n" i info.slowdown
        (opt info.model_p99);
      List.iter
        (fun (name, p) ->
          Format.fprintf ppf "        pressure %-12s %9.4f@\n" name p)
        info.pressure)
    t.per_class;
  if t.ranked <> [] then begin
    Format.fprintf ppf "  interference (ranked):@\n";
    List.iter
      (fun e ->
        Format.fprintf ppf "    class %d <- class %d : +%.4f slowdown@\n"
          e.victim e.aggressor e.contribution)
      t.ranked
  end

let to_text t = Format.asprintf "%a" pp t
