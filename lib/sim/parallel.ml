module P = Lognic_numerics.Parallel

let map = P.map
let sweep = P.sweep

let execute_replicated ?jobs ?(runs = 5) spec =
  Netsim.replicated_of_measurements
    (map ?jobs Netsim.execute (Netsim.replication_specs spec runs))

let run_replicated ?jobs ?(config = Netsim.default_config) ?(runs = 5) g ~hw
    ~mix =
  execute_replicated ?jobs ~runs (Netsim.Run.make ~config g ~hw ~mix)
