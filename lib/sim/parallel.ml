module P = Lognic_numerics.Parallel

let map = P.map
let sweep = P.sweep

let run_replicated ?jobs ?(config = Netsim.default_config) ?(runs = 5) g ~hw
    ~mix =
  Netsim.replicated_of_measurements
    (map ?jobs
       (fun config -> Netsim.run ~config g ~hw ~mix)
       (Netsim.replication_configs config runs))
