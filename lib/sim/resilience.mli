(** The model-vs-simulation join for faulted runs — what [lognic faults]
    prints. The analytic side is {!Lognic.Degraded.evaluate} over the
    plan's constant-fault intervals ({!Faults.modifiers}); the simulated
    side is one {!Netsim.execute} of the same plan, its fine
    sub-interval accounting ({!Netsim.measurement.fault_intervals})
    aggregated back onto the model's intervals (the sub-interval grid
    refines the plan boundaries, so the aggregation is exact). Joining
    conventions — relative errors, ranked worst row — follow
    {!Explain}. *)

type row = {
  r_start : float;
  r_stop : float;
  r_faults : string list;  (** active {!Faults.fault_label}s *)
  r_degraded : bool;
  model_throughput : float;  (** the interval's model carried rate *)
  sim_throughput : float;  (** delivered bytes / interval seconds *)
  throughput_error : float;  (** {!Explain.relative_error} *)
  model_latency : float;
  sim_latency : float;
  latency_error : float;  (** 1 when the model predicts [infinity] *)
  sim_offered : int;
  sim_delivered : int;
  sim_dropped : int;
  slo_ok : bool;  (** the {e model}'s SLO verdict for the interval *)
}

type report = {
  plan : Faults.plan;
  duration : float;
  rows : row list;  (** chronological, one per model fault interval *)
  model : Lognic.Degraded.report;
  measurement : Netsim.measurement;  (** the joined simulation run *)
  sim_degraded_throughput : float;  (** time-weighted, mirrors the model's *)
  sim_availability : float;
      (** fraction of the horizon whose simulated throughput holds ≥ the
          SLO fraction of the sim's best interval rate *)
  resilience : Netsim.resilience option;  (** the joined run's recovery *)
  across_runs : Netsim.resilience_replicated option;
      (** present when [runs ≥ 2] was requested *)
}

val run :
  ?config:Netsim.config ->
  ?queue_model:Lognic.Latency.queue_model ->
  ?slo:Lognic.Degraded.slo ->
  ?runs:int ->
  ?jobs:int ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  traffic:Lognic.Traffic.t ->
  plan:Faults.plan ->
  report
(** Evaluate both sides and join per interval. [runs] (default 1): when
    ≥ 2, additionally replicates the faulted spec with derived seeds
    (over [jobs] domains) for {!report.across_runs}. An empty plan is
    legal — the report degenerates to one healthy interval joining the
    nominal model against the whole run. Raises [Invalid_argument] on an
    invalid graph or a plan targeting unknown entities. *)

val to_json : report -> Telemetry.Json.t
(** Versioned ([schema = "faults"]); embeds the plan, per-interval rows,
    both sides' composites, and recovery statistics. *)

val to_string : report -> string

val pp : Format.formatter -> report -> unit
(** Chronological per-interval table with the worst-joining row
    flagged. *)

val to_text : report -> string
