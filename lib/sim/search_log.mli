(** Optimizer search telemetry: a thread-safe fold of
    {!Lognic.Optimizer.observation} events into a convergence log.

    Hook {!observer} into {!Lognic.Optimizer.optimize} (or [pareto])
    via its [?observer] argument and the log accumulates, bounded by
    the ring capacity of {!Telemetry.Series}:

    - every candidate's objective score, indexed by its evaluation
      sequence number ([scores]);
    - the best-so-far curve ([best_curve]) — how quickly the search
      converged;
    - a per-knob histogram of how many candidate evaluations touched
      each knob;
    - evaluation / memo-hit totals and the best assignment seen.

    All entry points lock an internal mutex, so one log can serve a
    parallel ([~jobs]) grid search; under parallel evaluation the
    best-so-far fold runs in arrival order, which may differ from
    sequence order, but the final best is order-independent.
    [lognic optimize --search-log PATH] writes {!to_json} to a file. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 4096) bounds each underlying series; once full,
    the newest samples win. *)

val observer : t -> Lognic.Optimizer.observation -> unit
(** The callback to pass as [~observer:(Search_log.observer log)]. *)

val observations : t -> int
(** Candidates recorded (= optimizer evaluations while hooked). *)

val cache_hits : t -> int

val best : t -> (float * Lognic.Optimizer.assignment list) option
(** Lowest score seen and its candidate ([None] before any event). *)

val knob_histogram : t -> (string * int) list
(** [(knob key, evaluations touching it)], sorted by key; keys look
    like ["throughput:3"], ["split:1"], ["ingress_rate"]. *)

val to_json : t -> Telemetry.Json.t
val to_string : t -> string
