(** One grammar engine for the CLI's colon-separated mini-specs.

    Every repeatable flag that packs a record into one argument —
    [--resource NAME:CAPACITY], [--class-demand CLASS:RESOURCE:VALUE],
    [--interference VICTIM:AGGRESSOR:M], the four fault-plan flags,
    [--queue NAME:LO:HI], [--tenant NAME:WEIGHT[:SHARE[:SLO]]] — parses
    through a declared {!grammar} here instead of an ad-hoc
    [String.split_on_char] match. Declaring the grammar buys three
    things: a uniform quoted-source error message
    ([--flag "SRC": FIELD NAME: reason; expected USAGE]), a derived
    usage string for docs, and {!render} as the inverse of {!parse} so
    every grammar is round-trip testable.

    The module is deliberately independent of the DSL: fields that
    accept unit-suffixed quantities ([25Gbps], [4KiB]) take the parser
    as the [?quantity] argument, which the CLI supplies from
    [Lognic_dsl.Quantity]. Without it, [Quantity] fields accept plain
    floats. *)

type kind =
  | Int  (** [int_of_string] syntax *)
  | Float  (** plain float syntax *)
  | Quantity  (** float with optional unit suffix (see [?quantity]) *)
  | Str  (** any non-empty text without [':'] *)

type field

val field : ?optional:bool -> string -> kind -> field
(** A named field, e.g. [field "CAPACITY" Quantity]. [optional]
    (default [false]) marks a trailing field that may be omitted;
    optional fields must come after every required one. *)

type grammar

val grammar : flag:string -> field list -> grammar
(** [grammar ~flag fields] declares the spec accepted by [--flag].
    Raises [Invalid_argument] on an empty field list or a required
    field following an optional one. *)

val flag : grammar -> string

val usage : grammar -> string
(** ["NAME:WEIGHT[:SHARE[:SLO]]"] — the docv-style shape string. *)

type value = I of int | F of float | S of string

val parse :
  ?quantity:(string -> (float, string) result) ->
  grammar ->
  string ->
  (value array, string) result
(** Parse one spec instance. The result array is as long as the number
    of fields present (every required field, plus any prefix of the
    optional ones). Errors are uniformly
    ["--FLAG \"SRC\": FIELD: reason; expected USAGE"]. *)

val parse_all :
  ?quantity:(string -> (float, string) result) ->
  grammar ->
  string list ->
  (value array list, string) result
(** {!parse} over a repeated flag, stopping at the first error. *)

val render : grammar -> value array -> string
(** The colon form that {!parse} maps back to the same values — the
    round-trip inverse (integers render without a decimal point,
    floats through {!Telemetry.Json.float_repr}). Raises
    [Invalid_argument] when the array cannot have come from this
    grammar (too few/many values, or a kind mismatch). *)

val error : flag:string -> src:string -> string -> string
(** The shared error formatter, exposed so non-colon grammars that ride
    the same flags surface (e.g. [--slo]'s rule language) report in the
    identical quoted-source shape. *)

(** Typed accessors; all raise [Invalid_argument] on a kind mismatch
    (a programming error — [parse] already enforced kinds). *)

val get_int : value array -> int -> int
val get_float : value array -> int -> float
(** Also accepts an [I] value (an integer literal in a float field). *)

val get_str : value array -> int -> string

val find_int : value array -> int -> int option
(** [None] when the (optional) field at that index was omitted. *)

val find_float : value array -> int -> float option
val find_str : value array -> int -> string option
