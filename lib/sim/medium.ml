type t = {
  engine : Engine.t;
  label : string;
  bandwidth : float;
  buffer : float;
  mutable scale : float;
      (* fault-injection bandwidth factor; 1. outside degraded intervals *)
  f : float array;  (* unboxed hot state: 0 = next_free, 1 = busy *)
  mutable rejections : int;
  mutable transfers : int;  (* nonzero-byte transfers admitted *)
  mutable prof : Profile.t option;
      (* self-profiler hook ({!Metrics}); [None] costs one pointer
         compare per nonzero transfer *)
}

let create engine ~label ~bandwidth ?(buffer = 2. *. 1024. *. 1024.) () =
  if bandwidth <= 0. then invalid_arg "Medium.create: bandwidth must be > 0";
  if buffer <= 0. then invalid_arg "Medium.create: buffer must be > 0";
  {
    engine;
    label;
    bandwidth;
    buffer;
    scale = 1.;
    f = Array.make 2 0.;
    rejections = 0;
    transfers = 0;
    prof = None;
  }

let label t = t.label
let buffer t = t.buffer

(* The guard keeps the healthy path byte-identical to the pre-fault
   code: [b *. 1.] is [b] for every finite positive float, but skipping
   the multiply avoids betting bit-reproducibility on that identity. *)
let effective_bandwidth t =
  if t.scale = 1. then t.bandwidth else t.bandwidth *. t.scale

let scale t = t.scale

let set_scale t factor =
  if (not (Float.is_finite factor)) || factor <= 0. || factor > 1. then
    invalid_arg "Medium.set_scale: factor must be in (0, 1]";
  t.scale <- factor

(* Nonzero-byte admission: arbitration, backlog check, scheduling. *)
let[@inline] transfer_admit ?tally ?span t ~bytes k =
  let now = Engine.now t.engine in
  let bw = effective_bandwidth t in
  let next_free = t.f.(0) in
  (* [Float.max] spelled out twice below: the stdlib function is a
     call whose float arguments box on every transfer; neither
     operand is ever NaN here, so the specialization is exact *)
  let wait = next_free -. now in
  let backlog_bytes = (if wait > 0. then wait else 0.) *. bw in
  if backlog_bytes +. bytes > t.buffer then begin
    t.rejections <- t.rejections + 1;
    false
  end
  else begin
    let start = if next_free > now then next_free else now in
    let duration = bytes /. bw in
    t.f.(0) <- start +. duration;
    t.f.(1) <- t.f.(1) +. duration;
    t.transfers <- t.transfers + 1;
    (match tally with
    | Some a ->
      a.(Telemetry.slot_queueing) <-
        a.(Telemetry.slot_queueing) +. (start -. now);
      a.(Telemetry.slot_wire) <- a.(Telemetry.slot_wire) +. duration
    | None -> ());
    (match span with
    | Some f -> f ~label:t.label ~queued:(start -. now) ~wire:duration
    | None -> ());
    Engine.schedule t.engine ~at:(start +. duration) k;
    true
  end

(* [tally], when given, receives the backlog wait and transmission time
   as [+.] accumulations into the {!Telemetry} flight-slot layout —
   unboxed float-array stores, replacing the old per-call [?timing]
   closure whose float arguments boxed on every hop. *)
let[@inline] transfer ?tally ?span t ~bytes k =
  if bytes < 0. then invalid_arg "Medium.transfer: negative bytes";
  if bytes = 0. then begin
    (match tally with
    | Some a ->
      a.(Telemetry.slot_queueing) <- a.(Telemetry.slot_queueing) +. 0.;
      a.(Telemetry.slot_wire) <- a.(Telemetry.slot_wire) +. 0.
    | None -> ());
    (match span with Some f -> f ~label:t.label ~queued:0. ~wire:0. | None -> ());
    k ();
    true
  end
  else begin
    match t.prof with
    | None -> transfer_admit ?tally ?span t ~bytes k
    | Some p ->
      let prev = Profile.enter p Profile.phase_media in
      let admitted = transfer_admit ?tally ?span t ~bytes k in
      Profile.leave p prev;
      admitted
  end

let backlog t =
  Float.max 0. (t.f.(0) -. Engine.now t.engine) *. effective_bandwidth t

let busy_time t = t.f.(1)

(* Transfers admitted while backlogged run back to back, so everything
   scheduled past [until] is the single contiguous run ending at
   [next_free]: clipping it out of the schedule-time total is exact
   whenever [until] is at or after the last admission (the horizon
   always is). Without the clip, work extending past the simulation
   horizon counts fully and utilization can exceed 1 near saturation. *)
let busy_within t ~until =
  Float.max 0. (t.f.(1) -. Float.max 0. (t.f.(0) -. until))

let utilization t ~until = if until <= 0. then 0. else busy_within t ~until /. until
let rejections t = t.rejections
let transfers t = t.transfers
let set_profile t p = t.prof <- p
