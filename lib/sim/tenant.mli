(** Multi-tenant SR-IOV virtualization for the simulator.

    Production SmartNICs are shared devices: SR-IOV designs in the OS4C
    mould expose hundreds of virtual functions (VFs) behind a two-stage
    weighted-round-robin transmit scheduler, and each VF's traffic must
    be scheduled, accounted and isolation-checked separately. This
    module supplies the tenant model for {!Netsim}: a {!spec} per
    tenant (scheduler weight, offered-traffic share, optional p99
    SLO), the canonicalized {!set} a run is configured with, and the
    pooled per-tenant accumulator ({!acc}) that attributes every
    completion, drop and latency term to the owning tenant.

    {b Determinism & scale.} A [set] is canonical — specs sorted by
    tenant name, duplicate names rejected, shares normalized — so two
    permutations of the same tenant list configure byte-identical
    runs. The accumulator is struct-of-arrays over dense tenant ids
    (plus one flat log₂-bucket latency histogram), sized once at setup:
    recording through it allocates nothing, so runs with thousands of
    tenants add zero per-tenant words to the steady-state hot loop
    (gated by [bench/main.exe --tenant-overhead]). *)

type spec = {
  name : string;  (** VF / tenant label; unique within a set *)
  weight : int;  (** WRR scheduler weight, >= 1 *)
  share : float;
      (** relative share of offered traffic attributed to this tenant
          (> 0; normalized across the set) *)
  slo_p99 : float option;  (** p99 latency budget, seconds *)
  class_weights : int array;
      (** per-traffic-class WRR weights within this tenant's queue
          group (stage 2 of the arbiter); [[||]] (the default) means
          equal weight for every class *)
}

val spec :
  ?weight:int ->
  ?share:float ->
  ?slo_p99:float ->
  ?class_weights:int array ->
  string ->
  spec
(** [weight] defaults to 1, [share] to 1, [class_weights] to [[||]].
    Raises [Invalid_argument] on an empty name, [weight < 1], a
    non-positive [share], a non-positive SLO, or a class weight < 1. *)

type set
(** A canonicalized tenant population (sorted by name, names unique). *)

val set : spec list -> set
(** Canonicalize a tenant list. Raises [Invalid_argument] on an empty
    list or a duplicate name. *)

val uniform : ?prefix:string -> int -> set
(** [uniform n] is [n] equal-weight, equal-share tenants named
    [PREFIX0000..] ([prefix] defaults to ["vf"]) — the scale-test
    population. Raises [Invalid_argument] when [n < 1]. *)

val count : set -> int

val specs : set -> spec array
(** The canonical (name-sorted) specs; a fresh copy. *)

val weights : set -> int array
(** Scheduler weights in canonical order; a fresh copy. *)

val shares : set -> float array
(** Normalized offered-traffic shares in canonical order (sums to 1). *)

val class_weight_rows : set -> classes:int -> int array array
(** One stage-2 WRR row per tenant (canonical order), each padded with
    weight 1 out to [classes] entries — the [class_weights] argument of
    {!Ip_node.create_hierarchical}. Raises [Invalid_argument] when
    [classes < 1]. *)

val index_of : set -> float -> int
(** [index_of set u] maps [u ∈ \[0, 1)] to a tenant id by binary search
    over the cumulative share distribution — the per-arrival tenant
    draw. Allocation-free. *)

val index_of_bits : set -> int -> int
(** [index_of_bits set u] maps a 30-bit draw ([u ∈ \[0, 2^30)], from
    {!Lognic_numerics.Rng.bits}) to a tenant id through a Walker alias
    table: one multiply, two loads, one compare — O(1) with no
    data-dependent branch chain, where a binary search pays log₂ n
    mispredicted branches per draw. The simulator's per-arrival path;
    allocation-free, per-tenant probabilities exact to n·2^-30. *)

(** {2 Per-tenant attribution}

    The accumulator mirrors {!Telemetry}'s warmup windowing exactly —
    arrivals by their own time, drops and completions by the packet's
    {e birth} time — so per-tenant accounts sum to the aggregate
    telemetry counts with no seam. *)

type acc

val acc : set -> warmup:float -> acc

val record_offered : acc -> tenant:int -> now:float -> size:float -> unit
val record_drop : acc -> tenant:int -> born:float -> unit

val record_completion : acc -> tenant:int -> fs:float array -> unit
(** [fs] is the flight's {!Telemetry.flight_slots} scratch array at
    egress (birth, size, completion time and the four Eq. 2 terms). *)

(** {2 Log₂ latency histogram}

    The flat 64-bucket log₂ histogram behind [r_p99_latency], shared
    with the per-class accumulator in [Flow_cache]: bucket [k] holds
    latencies in [2^(k−40), 2^(k−39)) seconds — good to a factor of 2
    at the tail for one store per completion. *)

val hist_buckets : int
(** 64. *)

val bucket_of : float -> int
(** Bucket index for a latency, clamped to [0, hist_buckets). *)

val p99_of_hist : int array -> int -> int -> float -> float
(** [p99_of_hist hist row delivered lat_max] scans row [row] of a flat
    [rows × hist_buckets] histogram to the smallest bucket whose
    cumulative count reaches ⌈0.99·delivered⌉ and returns that bucket's
    upper bound clamped to [lat_max] (0 when nothing was delivered). *)

(** {2 Summaries} *)

type row = {
  r_name : string;
  r_weight : int;
  r_share : float;  (** configured normalized share *)
  r_offered : int;
  r_delivered : int;
  r_dropped : int;
  r_delivered_bytes : float;
  r_offered_rate : float;  (** offered bytes/s within the window *)
  r_throughput : float;  (** delivered bytes/s within the window *)
  r_mean_latency : float;  (** 0 when nothing was delivered *)
  r_p99_latency : float;
      (** log₂-bucket upper-bound estimate, clamped to the observed
          maximum *)
  r_max_latency : float;
  r_terms : Telemetry.latency_terms;
      (** per-delivered-packet mean decomposition *)
  r_slo_p99 : float option;
  r_slo_ok : bool option;
      (** [Some (p99 <= slo)] when an SLO is declared and at least one
          packet was delivered *)
}

(** Fairness / isolation indices over the tenant population. *)
type fairness = {
  maxmin_ratio : float;
      (** min over {e constrained} tenants (offered > fair share) of
          attained / weighted-max-min-fair throughput; 1 when every
          constrained tenant receives at least its fair share, and 1
          when nobody is constrained *)
  jain : float;
      (** Jain's fairness index over weight-normalized delivered rates
          of active tenants ((Σx)²/(n·Σx²)); 1 = allocation exactly
          proportional to weights. Demand-limited tenants lower the
          index by construction — read it together with
          [maxmin_ratio]. *)
  interference : float;
      (** noisy-neighbor index: worst / best mean latency across active
          tenants; 1 = perfect isolation, grows as heavy tenants
          inflate their neighbours' latencies *)
}

type stats = {
  t_window : float;  (** measured seconds (horizon − warmup) *)
  rows : row array;  (** canonical (name-sorted) order *)
  t_fairness : fairness;
}

val summarize : acc -> horizon:float -> stats

val live_fairness : acc -> horizon:float -> fairness
(** The fairness indices alone, computed straight off the accumulator
    arrays — the cheap mid-run snapshot behind the {!Metrics} gauges
    (no per-tenant rows are built). *)

val stats_to_json : stats -> Telemetry.Json.t
(** Plain object ([window], [tenants], [fairness]) — embedded by
    {!Explain.tenants_to_json} under the versioned ["tenants"]
    schema. *)
