module G = Lognic.Graph
module D = Lognic.Degraded
module J = Telemetry.Json

type row = {
  r_start : float;
  r_stop : float;
  r_faults : string list;
  r_degraded : bool;
  model_throughput : float;
  sim_throughput : float;
  throughput_error : float;
  model_latency : float;
  sim_latency : float;
  latency_error : float;
  sim_offered : int;
  sim_delivered : int;
  sim_dropped : int;
  slo_ok : bool;
}

type report = {
  plan : Faults.plan;
  duration : float;
  rows : row list;
  model : D.report;
  measurement : Netsim.measurement;
  sim_degraded_throughput : float;
  sim_availability : float;
  resilience : Netsim.resilience option;
  across_runs : Netsim.resilience_replicated option;
}

(* Aggregate the run's fine sub-intervals into one model interval:
   the sub-interval grid refines the fault-plan boundaries, so each
   sub-interval lies entirely inside exactly one model interval. *)
let aggregate subs =
  let time, bytes, lat, offered, delivered, dropped =
    List.fold_left
      (fun (t, by, lat, o, de, dr) (s : Netsim.interval_stats) ->
        let len = s.i_stop -. s.i_start in
        ( t +. len,
          by +. (s.i_throughput *. len),
          lat +. (s.i_latency *. float_of_int s.i_delivered),
          o + s.i_offered,
          de + s.i_delivered,
          dr + s.i_dropped ))
      (0., 0., 0., 0, 0, 0) subs
  in
  let throughput = if time > 0. then bytes /. time else 0. in
  let latency = if delivered > 0 then lat /. float_of_int delivered else 0. in
  (throughput, latency, offered, delivered, dropped)

let run ?config ?queue_model ?slo ?(runs = 1) ?jobs g ~hw ~traffic ~plan =
  let config = Option.value config ~default:Netsim.default_config in
  let duration = config.Netsim.duration in
  let intervals = Faults.modifiers ~duration plan in
  let model = D.evaluate ?queue_model ?slo g ~hw ~traffic ~intervals in
  let spec = Netsim.Run.single ~config ~faults:plan g ~hw ~traffic in
  let m = Netsim.execute spec in
  let rows =
    List.map2
      (fun (ir : D.interval_report) (_, _, events) ->
        let subs =
          List.filter
            (fun (s : Netsim.interval_stats) ->
              s.i_start >= ir.d_start && s.i_stop <= ir.d_stop)
            m.Netsim.fault_intervals
        in
        let sim_throughput, sim_latency, sim_offered, sim_delivered, sim_dropped
            =
          if subs = [] then
            (* empty plan: no sub-interval accounting ran; the single
               healthy interval is the whole run *)
            ( m.Netsim.summary.Telemetry.throughput,
              m.Netsim.summary.Telemetry.mean_latency,
              m.Netsim.summary.Telemetry.offered_packets,
              m.Netsim.summary.Telemetry.delivered_packets,
              m.Netsim.summary.Telemetry.dropped_packets )
          else aggregate subs
        in
        {
          r_start = ir.d_start;
          r_stop = ir.d_stop;
          r_faults =
            List.map
              (fun (ev : Faults.event) -> Faults.fault_label ev.fault)
              events;
          r_degraded = ir.degraded;
          model_throughput = ir.carried;
          sim_throughput;
          throughput_error =
            Explain.relative_error ~model:ir.carried ~sim:sim_throughput;
          model_latency = ir.latency;
          sim_latency;
          latency_error =
            (if Float.is_finite ir.latency then
               Explain.relative_error ~model:ir.latency ~sim:sim_latency
             else 1.);
          sim_offered;
          sim_delivered;
          sim_dropped;
          slo_ok = ir.slo_ok;
        })
      model.D.intervals
      (Faults.intervals ~duration plan)
  in
  let horizon =
    List.fold_left (fun acc r -> acc +. (r.r_stop -. r.r_start)) 0. rows
  in
  let sim_degraded_throughput =
    if horizon > 0. then
      List.fold_left
        (fun acc r -> acc +. (r.sim_throughput *. (r.r_stop -. r.r_start)))
        0. rows
      /. horizon
    else 0.
  in
  (* Sim-side availability mirrors the model's SLO figure: the fraction
     of the horizon whose simulated throughput holds ≥ the SLO fraction
     of the sim's own healthy baseline (the best interval's rate). *)
  let slo_v = Option.value slo ~default:D.default_slo in
  let sim_baseline =
    List.fold_left (fun acc r -> Float.max acc r.sim_throughput) 0. rows
  in
  let sim_availability =
    if horizon > 0. then
      List.fold_left
        (fun acc r ->
          if
            r.sim_throughput
            >= slo_v.D.min_throughput_fraction *. sim_baseline
          then acc +. (r.r_stop -. r.r_start)
          else acc)
        0. rows
      /. horizon
    else 1.
  in
  let across_runs =
    if runs >= 2 then
      (Parallel.execute_replicated ?jobs ~runs spec).Netsim.resilience
    else None
  in
  {
    plan;
    duration;
    rows;
    model;
    measurement = m;
    sim_degraded_throughput;
    sim_availability;
    resilience = m.Netsim.resilience;
    across_runs;
  }

let row_to_json r =
  J.Obj
    [
      ("start", J.Num r.r_start);
      ("stop", J.Num r.r_stop);
      ("faults", J.Arr (List.map (fun l -> J.Str l) r.r_faults));
      ("degraded", J.Bool r.r_degraded);
      ("model_throughput", J.Num r.model_throughput);
      ("sim_throughput", J.Num r.sim_throughput);
      ("throughput_error", J.Num r.throughput_error);
      ("model_latency", J.Num r.model_latency);
      ("sim_latency", J.Num r.sim_latency);
      ("latency_error", J.Num r.latency_error);
      ("offered", J.Num (float_of_int r.sim_offered));
      ("delivered", J.Num (float_of_int r.sim_delivered));
      ("dropped", J.Num (float_of_int r.sim_dropped));
      ("slo_ok", J.Bool r.slo_ok);
    ]

let to_json t =
  J.versioned ~kind:"faults"
    [
      ("plan", Faults.to_json t.plan);
      ("duration", J.Num t.duration);
      ( "model",
        J.Obj
          [
            ("nominal_throughput", J.Num t.model.D.nominal_throughput);
            ("nominal_latency", J.Num t.model.D.nominal_latency);
            ("degraded_throughput", J.Num t.model.D.degraded_throughput);
            ("degraded_latency", J.Num t.model.D.degraded_latency);
            ("availability", J.Num t.model.D.availability);
          ] );
      ( "sim",
        J.Obj
          [
            ("degraded_throughput", J.Num t.sim_degraded_throughput);
            ("availability", J.Num t.sim_availability);
          ] );
      ("intervals", J.Arr (List.map row_to_json t.rows));
      ( "resilience",
        match t.resilience with
        | None -> J.Null
        | Some r -> Netsim.resilience_to_json r );
      ( "across_runs",
        match t.across_runs with
        | None -> J.Null
        | Some r ->
          J.Obj
            [
              ("recovered_runs", J.Num (float_of_int r.Netsim.recovered_runs));
              ("recovery_mean", J.Num r.Netsim.recovery_mean);
              ("recovery_max", J.Num r.Netsim.recovery_max);
              ( "worst_throughput_mean",
                J.Num r.Netsim.worst_throughput_mean );
              ("worst_throughput_min", J.Num r.Netsim.worst_throughput_min);
            ] );
    ]

let to_string t = J.to_string (to_json t)

let pp ppf t =
  let pct x = 100. *. x in
  Format.fprintf ppf "faults: model vs simulation under %a@\n" Faults.pp t.plan;
  Format.fprintf ppf
    "  degraded throughput  model %.4g B/s   sim %.4g B/s   (nominal %.4g)@\n"
    t.model.D.degraded_throughput t.sim_degraded_throughput
    t.model.D.nominal_throughput;
  Format.fprintf ppf "  availability         model %.1f%%   sim %.1f%%@\n"
    (pct t.model.D.availability)
    (pct t.sim_availability);
  (match t.resilience with
  | Some { Netsim.recovery_time = Some rt; _ } ->
    Format.fprintf ppf "  recovery             %.4g s after last fault@\n" rt
  | Some { Netsim.recovery_time = None; _ } ->
    Format.fprintf ppf "  recovery             not observed within the run@\n"
  | None -> ());
  (match t.across_runs with
  | Some r ->
    Format.fprintf ppf
      "  across runs          %d recovered (mean %.4g s, max %.4g s), worst \
       interval %.4g B/s@\n"
      r.Netsim.recovered_runs r.Netsim.recovery_mean r.Netsim.recovery_max
      r.Netsim.worst_throughput_min
  | None -> ());
  Format.fprintf ppf "  %-22s %-10s %12s %12s %7s %7s %5s@\n" "interval(s)"
    "state" "model-tput" "sim-tput" "t-err" "l-err" "slo";
  (* ranked like explain: most-degraded (largest throughput error)
     interval states first would hide chronology; keep chronological
     but flag the worst row *)
  let worst =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some (w : row) when w.throughput_error >= r.throughput_error -> acc
        | _ -> Some r)
      None t.rows
  in
  List.iter
    (fun r ->
      Format.fprintf ppf "  [%8.4f, %8.4f) %-10s %12.4g %12.4g %6.1f%% %6.1f%% %5s%s@\n"
        r.r_start r.r_stop
        (if r.r_degraded then "faulted" else "healthy")
        r.model_throughput r.sim_throughput
        (pct r.throughput_error) (pct r.latency_error)
        (if r.slo_ok then "ok" else "VIOL")
        (match worst with
        | Some w when w == r && List.length t.rows > 1 -> "  <- worst join"
        | _ -> ""))
    t.rows

let to_text t = Format.asprintf "%a" pp t
