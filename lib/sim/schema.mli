(** The central table of [(schema, version)] stamps for every JSON
    document the repo emits. {!Telemetry.Json.versioned} — the shared
    header every exporter goes through — looks its [kind] up here, so
    an unregistered stamp cannot be emitted, and a consumer can check
    any document against one authoritative list. *)

val table : (string * int) list
(** Every known document kind with its current version. *)

val version_of : string -> int option

val version_of_exn : string -> int
(** Raises [Invalid_argument] on a kind missing from {!table}. *)

val kinds : string list
(** The registered kind names, in table order. *)
