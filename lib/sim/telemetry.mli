(** Measurement collection for simulation runs. Samples recorded before
    the warmup cutoff are discarded so steady-state statistics are not
    polluted by the empty-system transient; every event is attributed to
    the measurement window by the {e birth} time of its packet, so the
    offered / delivered / dropped accounts always agree.

    Beyond the aggregate summary, this module is the simulator's
    observability layer (§3.2's promise that the model points at the
    {e specific} entity that binds): drops carry their site, delivered
    packets carry a per-component latency decomposition that mirrors the
    Eq. 2 terms, periodic state samples land in bounded ring-buffer
    {!Series}, and everything exports as JSON ({!to_json}, {!Json}) or
    CSV ({!Series.to_csv}). *)

(** A dependency-free JSON tree with a printer and a parser, so exported
    traces can be round-trip tested without adding a JSON library. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact one-line JSON. Non-finite numbers print as [null];
      integral values print without a decimal point; other floats use
      the shortest representation that parses back exactly. *)

  val of_string : string -> (t, string) result
  (** Inverse of {!to_string} (accepts any standard JSON text). *)

  val member : string -> t -> t option
  (** [member key (Obj kvs)] is the value bound to [key]; [None] on
      missing keys or non-objects. *)

  val float_repr : float -> string
  (** Shortest decimal string that [float_of_string] maps back to the
      same float. *)

  val write_string : Buffer.t -> string -> unit
  (** Append one JSON string literal (quotes and escaping included) —
      the exact bytes {!to_string} emits for [Str]. For streaming
      serializers that bypass the {!t} tree. *)

  val write_num : Buffer.t -> float -> unit
  (** Append one JSON number — the exact bytes {!to_string} emits for
      [Num] (non-finite values become [null]). *)

  val schema_version : int
  (** Version stamped by {!versioned} into every JSON document the repo
      emits. Bump when any exported schema changes shape. *)

  val versioned : kind:string -> (string * t) list -> t
  (** [versioned ~kind fields] is [Obj fields] prefixed with
      ["schema": kind] and ["schema_version": v] where [v] comes from
      the {!Schema} registry — the shared header used by every
      exporter ([measurement], [explain], [search_log], trace
      metadata, faults report, metrics stream). Raises
      [Invalid_argument] when [kind] is not registered in
      {!Schema.table}. *)
end

(** Bounded ring-buffer time series: appends are O(1), memory is fixed,
    and once full the newest [capacity] samples win. Used for the
    periodic queue-depth / in-flight / backlog traces. *)
module Series : sig
  type t

  val create : ?capacity:int -> label:string -> interval:float -> unit -> t
  (** [capacity] defaults to 4096 samples. Raises [Invalid_argument] on
      a non-positive capacity or interval. *)

  val label : t -> string
  val interval : t -> float
  val capacity : t -> int

  val length : t -> int
  (** Samples currently retained (≤ capacity). *)

  val add : t -> time:float -> value:float -> unit
  val to_array : t -> (float * float) array
  (** Retained [(time, value)] samples in chronological order. *)

  val to_json : t -> Json.t
  val to_csv : t -> string
  (** Two-column CSV ([time,<label>] header). *)
end

type drop_site =
  | Node_queue of { node : string; queue : int }
      (** a full bounded queue at an IP node *)
  | Medium_buffer of string
      (** a medium's rate-matching buffer overflowed (by label:
          "interface", "memory", or "link-SRC-DST") *)
  | Fault_burst
      (** shed at ingress by an active [Faults.Drop_burst] event *)

val drop_site_name : drop_site -> string
(** Stable textual key ("node:LABEL/qI" / "medium:LABEL"), also used in
    the JSON export. *)

val pp_drop_site : Format.formatter -> drop_site -> unit

(** Per-packet latency decomposition, seconds. Summed over every hop of
    a packet's walk, the four components account for its entire
    end-to-end latency, mirroring the model's Eq. 2 terms: [wire] ↔ the
    α/BW_INTF + β/BW_MEM transfer terms, [service] ↔ the s·δ/(γ·A·P)
    processing term, [overhead] ↔ o_v, and [queueing] ↔ the Eq. 12
    waiting time the latency model adds on top. *)
type latency_terms = {
  queueing : float;  (** waiting in IP queues and medium backlogs *)
  service : float;  (** execution-engine service time *)
  wire : float;  (** transfer (transmission) time across media *)
  overhead : float;  (** fixed per-vertex computation-transfer overheads *)
}

val zero_terms : latency_terms

val terms_total : latency_terms -> float
(** Sum of the four components. *)

type t

val create : warmup:float -> t

val record_arrival : t -> now:float -> size:float -> unit
(** Every offered packet (admitted or not). *)

val record_drop : t -> now:float -> born:float -> site:drop_site -> unit
(** A packet lost at [site]. Windowed by [born] (not the drop time), so
    a packet generated before the warmup cutoff but dropped inside the
    window is excluded — exactly like its arrival record — keeping
    [loss_rate <= 1]. *)

(** {2 Allocation-free accounting}

    The simulator's hot path records through these instead of the
    generic entry points above: drop sites are interned to counters at
    setup, and completions read every float out of a caller-owned
    scratch array (layout below), so steady state never boxes a float
    or hashes a variant. Results are identical to the generic path. *)

type counter
(** An interned per-site drop counter; its hits merge into
    {!summary.drop_breakdown} exactly like {!record_drop} calls. *)

val drop_counter : t -> drop_site -> counter
(** Intern a site (idempotent: same site, same counter). *)

val record_drop_counted : t -> born:float -> counter -> unit
(** Same accounting and warmup window as {!record_drop}. *)

(** {2 Read-only probes}

    Cumulative windowed accounts at call time, consumed by the live
    metrics layer ({!Metrics}). Reading them never changes results. *)

val offered : t -> int
val delivered : t -> int
val dropped : t -> int
val delivered_bytes : t -> float

val counters : t -> counter list
(** Every interned drop counter, in interning order. *)

val counter_site : counter -> drop_site
val counter_hits : counter -> int

(** Slot indices into the per-flight scratch array consumed by
    {!record_completion_fs} (and filled along the packet walk): the
    four Eq. 2 latency terms, then birth time, packet size, and
    completion time. [flight_slots] is the required array length. *)

val slot_queueing : int

val slot_service : int
val slot_wire : int
val slot_overhead : int
val slot_born : int
val slot_size : int
val slot_now : int
val flight_slots : int

val record_completion_fs : t -> fs:float array -> klass:int -> unit
(** [record_completion ~now:fs.(slot_now) ~born:fs.(slot_born) ...]
    without boxing any float. [fs] must be {!flight_slots} long. *)

val record_completion :
  t ->
  now:float ->
  born:float ->
  ?terms:latency_terms ->
  size:float ->
  klass:int ->
  unit ->
  unit
(** [terms] (default {!zero_terms}) is the packet's accumulated
    latency decomposition. *)

type summary = {
  window : float;  (** measured seconds (horizon − warmup) *)
  offered_packets : int;
  delivered_packets : int;
  dropped_packets : int;
  delivered_bytes : float;
  throughput : float;  (** delivered bytes / window, bytes/s *)
  packet_rate : float;  (** delivered packets / window *)
  mean_latency : float;  (** seconds; 0 when nothing completed *)
  p50_latency : float;
  p99_latency : float;
  max_latency : float;
  loss_rate : float;  (** dropped / offered within the window *)
  per_class : (int * int * float) list;
      (** class, delivered packets, mean latency *)
  drop_breakdown : (drop_site * int) list;
      (** windowed drops per site, largest first; the counts sum to
          [dropped_packets] *)
  latency_terms : latency_terms;
      (** per-delivered-packet mean decomposition; the components sum
          to [mean_latency] (up to float rounding) *)
}

val summarize : t -> horizon:float -> summary

val terms_to_json : latency_terms -> Json.t

val to_json : summary -> Json.t
(** The full summary as a JSON object (consumed by
    [lognic report --trace]). *)
