(** Measurement collection for simulation runs. Samples recorded before
    the warmup cutoff are discarded so steady-state statistics are not
    polluted by the empty-system transient. *)

type t

val create : warmup:float -> t

val record_arrival : t -> now:float -> size:float -> unit
(** Every offered packet (admitted or not). *)

val record_drop : t -> now:float -> unit

val record_completion : t -> now:float -> born:float -> size:float -> klass:int -> unit

type summary = {
  window : float;  (** measured seconds (horizon − warmup) *)
  offered_packets : int;
  delivered_packets : int;
  dropped_packets : int;
  delivered_bytes : float;
  throughput : float;  (** delivered bytes / window, bytes/s *)
  packet_rate : float;  (** delivered packets / window *)
  mean_latency : float;  (** seconds; 0 when nothing completed *)
  p50_latency : float;
  p99_latency : float;
  max_latency : float;
  loss_rate : float;  (** dropped / offered within the window *)
  per_class : (int * int * float) list;
      (** class, delivered packets, mean latency *)
}

val summarize : t -> horizon:float -> summary
