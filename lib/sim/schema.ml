(* The single registry of every JSON document schema the repo emits.

   Each exporter stamps its top-level object through
   {!Telemetry.Json.versioned}, which consults this table — so "which
   schemas exist, at which version" is answerable from one place, and
   an exporter cannot invent an unregistered stamp (the lookup raises).
   Adding a document kind means adding a row here first. *)

let table =
  [
    ("measurement", 1);  (* Netsim.measurement_to_json *)
    ("explain", 1);  (* Explain.to_json / mix_to_json *)
    ("search_log", 1);  (* Search_log.to_json *)
    ("trace_events", 1);  (* Trace.to_chrome_json (rides in otherData) *)
    ("contention", 1);  (* Contention.to_json *)
    ("faults", 1);  (* Resilience.to_json *)
    ("check", 1);  (* lognic check --json *)
    ("metrics", 1);  (* Metrics snapshot NDJSON lines *)
    ("alerts", 1);  (* Metrics.alerts_to_json *)
    ("profile", 1);  (* Metrics.profile_to_json *)
    ("engine_bench", 1);  (* bench/main.exe --events-per-sec --json *)
    ("tenants", 1);  (* Explain.tenants_to_json (lognic tenants --json) *)
    ("flowcache", 1);  (* Explain.flowcache_to_json (lognic flowcache --json) *)
  ]

let version_of kind = List.assoc_opt kind table

let version_of_exn kind =
  match version_of kind with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf
         "Schema.version_of_exn: unregistered document kind %S (add it to \
          Lognic_sim.Schema.table)"
         kind)

let kinds = List.map fst table
