(** Parallel simulation driver (OCaml 5 domains).

    {!Netsim.run} is the repo's slow path — exactly the packet-level
    simulator the paper's pitch is measured against — and replicated
    runs, figure sweeps, and optimizer grids execute many mutually
    independent simulations. This module fans them out over the domain
    pool of {!Lognic_numerics.Parallel}.

    {b Determinism guarantee}: every simulation derives its randomness
    from an explicit per-run seed and touches no shared mutable state,
    so all entry points return results {e bit-identical} to their
    sequential counterparts at every [jobs] count — parallelism changes
    wall-clock time only. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving, exception-propagating parallel [List.map]; see
    {!Lognic_numerics.Parallel.map}. [jobs] defaults to the global
    default (set via [--jobs] in the CLI and bench). *)

val sweep : ?jobs:int -> f:('a -> 'b) -> 'a list -> ('a * 'b) list
(** [sweep ~f points] evaluates a parameter grid, returning
    [(point, result)] pairs in grid order. *)

val execute_replicated : ?jobs:int -> ?runs:int -> Netsim.Run.t -> Netsim.replicated
(** Drop-in parallel {!Netsim.execute_replicated}: identical derived
    seeds ([config.seed + i], via {!Netsim.replication_specs}) and the
    identical measurement fold ({!Netsim.replicated_of_measurements},
    including the per-entity stats and across-run resilience), hence
    bit-identical results for the same spec at any [jobs] — fault plans
    included. Raises [Invalid_argument] when [runs < 2]. *)

val run_replicated :
  ?jobs:int ->
  ?config:Netsim.config ->
  ?runs:int ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  mix:Lognic.Traffic.mix ->
  Netsim.replicated
(** Pre-spec entry point, kept for compatibility: exactly
    [execute_replicated ~runs (Netsim.Run.make ~config g ~hw ~mix)]
    (empty fault plan). Prefer {!execute_replicated} in new code. *)
