type fault =
  | Engine_down of { vertex : string; engines : int }
  | Medium_degraded of { medium : string; factor : float }
  | Queue_shrunk of { vertex : string; capacity : int }
  | Drop_burst of { probability : float }

type event = { start : float; stop : float; fault : fault }
type plan = event list

let empty = []
let is_empty plan = plan = []

let check_window ~start ~stop =
  if not (Float.is_finite start && Float.is_finite stop) then
    invalid_arg "Faults: event window must be finite";
  if start < 0. then invalid_arg "Faults: event start must be >= 0";
  if stop <= start then invalid_arg "Faults: event stop must be > start"

let engine_down ~vertex ~engines ~start ~stop =
  check_window ~start ~stop;
  if engines < 1 then invalid_arg "Faults.engine_down: engines must be >= 1";
  { start; stop; fault = Engine_down { vertex; engines } }

let medium_degraded ~medium ~factor ~start ~stop =
  check_window ~start ~stop;
  if (not (Float.is_finite factor)) || factor <= 0. || factor > 1. then
    invalid_arg "Faults.medium_degraded: factor must be in (0, 1]";
  { start; stop; fault = Medium_degraded { medium; factor } }

let queue_shrunk ~vertex ~capacity ~start ~stop =
  check_window ~start ~stop;
  if capacity < 1 then invalid_arg "Faults.queue_shrunk: capacity must be >= 1";
  { start; stop; fault = Queue_shrunk { vertex; capacity } }

let drop_burst ~probability ~start ~stop =
  check_window ~start ~stop;
  if (not (Float.is_finite probability)) || probability < 0. || probability > 1.
  then invalid_arg "Faults.drop_burst: probability must be in [0, 1]";
  { start; stop; fault = Drop_burst { probability } }

let fault_label = function
  | Engine_down { vertex; _ } -> "engine_down:" ^ vertex
  | Medium_degraded { medium; _ } -> "degrade:" ^ medium
  | Queue_shrunk { vertex; _ } -> "queue_shrink:" ^ vertex
  | Drop_burst _ -> "drop_burst"

let event_to_json ev =
  let module J = Telemetry.Json in
  let param =
    match ev.fault with
    | Engine_down { engines; _ } -> ("engines", J.Num (float_of_int engines))
    | Medium_degraded { factor; _ } -> ("factor", J.Num factor)
    | Queue_shrunk { capacity; _ } -> ("capacity", J.Num (float_of_int capacity))
    | Drop_burst { probability } -> ("probability", J.Num probability)
  in
  J.Obj
    [
      ("fault", J.Str (fault_label ev.fault));
      ("start", J.Num ev.start);
      ("stop", J.Num ev.stop);
      param;
    ]

let to_json plan =
  Telemetry.Json.Arr (List.map event_to_json plan)

let intervals ~duration plan =
  if not (Float.is_finite duration && duration > 0.) then
    invalid_arg "Faults.intervals: duration must be positive and finite";
  let boundaries =
    List.concat_map
      (fun ev ->
        List.filter (fun t -> t > 0. && t < duration) [ ev.start; ev.stop ])
      plan
    |> List.sort_uniq Float.compare
  in
  let edges = (0. :: boundaries) @ [ duration ] in
  let rec pair = function
    | a :: (b :: _ as rest) ->
      (* an event covers the whole interval iff it covers its start
         (boundaries include every event edge, so partial overlap is
         impossible) *)
      let active =
        List.filter (fun ev -> ev.start <= a && ev.stop > a) plan
      in
      (a, b, active) :: pair rest
    | _ -> []
  in
  pair edges

let modifier_of_events events =
  List.fold_left
    (fun (m : Lognic.Degraded.modifier) ev ->
      match ev.fault with
      | Engine_down { vertex; engines } ->
        { m with engines_down = m.engines_down @ [ (vertex, engines) ] }
      | Medium_degraded { medium; factor } ->
        { m with media_factors = m.media_factors @ [ (medium, factor) ] }
      | Queue_shrunk { vertex; capacity } ->
        { m with queue_caps = m.queue_caps @ [ (vertex, capacity) ] }
      | Drop_burst { probability } ->
        {
          m with
          ingress_drop = 1. -. ((1. -. m.ingress_drop) *. (1. -. probability));
        })
    Lognic.Degraded.no_modifier events

let modifiers ~duration plan =
  List.map
    (fun (a, b, events) -> (a, b, modifier_of_events events))
    (intervals ~duration plan)

let pp ppf plan =
  if is_empty plan then Fmt.pf ppf "no faults"
  else
    Fmt.pf ppf "@[<v>%a@]"
      (Fmt.list ~sep:Fmt.cut (fun ppf ev ->
           Fmt.pf ppf "[%g, %g) %s" ev.start ev.stop (fault_label ev.fault)))
      plan
