(** Wall-clock self-profiler for the engine hot loop.

    Components bracket work with {!enter}/{!leave} around a fixed set
    of phases (queue operations, node service, media arbitration,
    observer callbacks, other).  Accounting is {e self time}: entering
    a nested phase stops the parent's clock, so the phase totals
    partition the profiled wall-clock span.  {!tick} closes an interval
    and records per-phase and GC/allocation deltas.

    Profiling measures the host, not the model: its numbers are
    nondeterministic and are exported as a separate [schema:"profile"]
    document, never mixed into the deterministic metrics stream. *)

type t

(** {2 Phases} *)

val phase_queue : int
(** Event-queue operations (locate / pop) in {!Engine.run}. *)

val phase_node : int
(** {!Ip_node} dispatch and service completion. *)

val phase_media : int
(** {!Medium} transfer admission and arbitration. *)

val phase_observer : int
(** Engine observer callbacks (invariant checker). *)

val phase_other : int
(** Everything outside the bracketed phases (event thunks' own work,
    setup, metrics ticks). The initial phase. *)

val phase_count : int

val phase_names : string array
(** Stable display/export name per phase index. *)

(** {2 Accounting} *)

val create : unit -> t
(** Starts the clock in {!phase_other}. *)

val enter : t -> int -> int
(** [enter t phase] charges the span since the last switch to the
    running phase, switches to [phase], and returns the previous phase
    for the matching {!leave}. *)

val leave : t -> int -> unit
(** [leave t prev] charges the running phase and restores [prev]. *)

type row = {
  r_time : float;  (** sim time at the end of the interval *)
  r_wall : float;  (** wall seconds spanned by the interval *)
  r_phases : float array;  (** self seconds per phase this interval *)
  r_enters : int array;  (** phase entries this interval *)
  r_minor_words : float;
  r_promoted_words : float;
  r_major_words : float;
  r_collections : int;  (** minor + major collections this interval *)
}

val tick : t -> time:float -> row
(** Close the current interval at sim time [time]: record per-phase
    self-time and GC deltas since the previous tick (or {!create}). *)

(** {2 Reports} *)

val rows : t -> row list
(** Recorded intervals, chronological. *)

val self_seconds : t -> int -> float
(** Cumulative self seconds of a phase. *)

val enter_count : t -> int -> int
val elapsed : t -> float
(** Wall seconds since {!create}. *)

val row_to_json : row -> Telemetry.Json.t

val to_json : t -> Telemetry.Json.t
(** [schema:"profile"] document: phase totals plus the interval rows. *)

val pp : Format.formatter -> t -> unit
