(** The model-vs-simulation "explain" engine behind [lognic explain].

    One call runs the analytic model ({!Lognic.Estimate}) and the
    packet-level simulator ({!Netsim}) on the {e same} graph, hardware
    and traffic, joins the two per entity (every finite-throughput
    vertex, the shared interface and memory media, each dedicated
    link), and attributes the prediction residual: analytic utilization
    vs simulated busy fraction, the model's queueing term (converted to
    an expected queue depth via Little's law) vs the simulator's
    sampled queue depths, plus drops/rejections per entity.

    The report ranks entities by simulated utilization; the top entity
    is the simulator's answer to "what binds?", compared against the
    analytic roofline's binding term ({!Lognic.Throughput.bound}). On a
    well-calibrated graph the two agree — [agree = false] is itself a
    diagnostic (the queueing abstraction or routing scaling is off for
    some entity, visible in that entity's residual). *)

type entity_row = {
  name : string;  (** vertex label, "interface", "memory", "link-S-D" *)
  model_utilization : float;  (** attained rate / entity roofline cap *)
  sim_utilization : float;  (** horizon-clipped busy fraction *)
  residual : float;  (** sim − min(model, 1) *)
  model_queueing : float option;  (** Q_i seconds (vertices only) *)
  model_queue_depth : float option;
      (** Little's-law expected packets in system (vertices only) *)
  sim_queue_depth : float option;
      (** mean of the sampled depth/backlog series, when sampled *)
  model_drop_probability : float option;  (** M/M/1/N blocking (vertices) *)
  drops : int;  (** node drops / medium rejections over the whole run *)
}

type report = {
  model : Lognic.Estimate.report;
  measurement : Netsim.measurement;
  rows : entity_row list;  (** ranked, highest simulated utilization first *)
  model_bottleneck : string;
  sim_bottleneck : string;  (** [rows]' top entity, or "none" *)
  agree : bool;
  model_throughput : float;  (** attained bytes/s *)
  sim_throughput : float;
  throughput_error : float;  (** relative, in [0, 1] *)
  model_latency : float;  (** mean seconds *)
  sim_latency : float;
  latency_error : float;
}

val bound_name : Lognic.Graph.t -> Lognic.Throughput.bound -> string
(** The entity name a throughput bound pins ("offered-load" for
    {!Lognic.Throughput.Offered_load}), matching {!entity_row.name}. *)

val relative_error : model:float -> sim:float -> float
(** |model − sim| / max(|model|, |sim|), 0 when both are 0 — the join
    convention shared with {!Resilience}. *)

val run :
  ?config:Netsim.config ->
  ?queue_model:Lognic.Latency.queue_model ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  traffic:Lognic.Traffic.t ->
  report
(** Runs both sides and joins them. When [config] leaves
    [sample_interval] unset, it defaults to [duration/256] so the
    queue-depth comparison has data. Raises [Invalid_argument] if the
    graph fails validation. *)

val to_json : report -> Telemetry.Json.t
val to_string : report -> string
(** Compact JSON, [to_json] printed. *)

val pp : Format.formatter -> report -> unit
(** The human-readable ranked table. *)

val to_text : report -> string

(** {2 Traffic mixes} *)

type class_row = {
  c_traffic : Lognic.Traffic.t;
  c_weight : float;  (** normalized mix weight *)
  c_model_throughput : float;  (** this class's carried bytes/s *)
  c_sim_throughput : float;  (** delivered bytes over the window *)
  c_throughput_error : float;
  c_model_latency : float;
  c_sim_latency : float option;
      (** [None] when the simulator delivered no packets of the class *)
  c_latency_error : float option;
  c_model_bottleneck : string;
      (** the class's binding entity, {!bound_name} convention (may be
          ["resource:NAME"] under contention) *)
}

type mix_report = {
  mix_model : Lognic.Extensions.mixed_report;
  mix_measurement : Netsim.measurement;
  class_rows : class_row list;  (** mix order *)
  mix_rows : entity_row list;
      (** joint per-entity residuals — model utilization is the summed
          carried rate over the entity's (traffic-independent) cap *)
  mix_model_bottleneck : string;
      (** bound of the class with the tightest joint capacity *)
  mix_sim_bottleneck : string;
  mix_agree : bool;
  mix_model_throughput : float;  (** Σ per-class carried bytes/s *)
  mix_sim_throughput : float;
  mix_throughput_error : float;
  mix_model_latency : float;
  mix_sim_latency : float;
  mix_latency_error : float;
}

val run_mix :
  ?config:Netsim.config ->
  ?queue_model:Lognic.Latency.queue_model ->
  ?contention:Lognic.Extensions.contention ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  mix:Lognic.Traffic.mix ->
  mix_report
(** {!run} generalized to a traffic mix: the joint multi-class model
    ({!Lognic.Estimate.run_mix}) against one multi-class simulation,
    joined per class (residual rows) and per entity. Defaults
    [sample_interval] like {!run}. *)

val row_to_json : int -> entity_row -> Telemetry.Json.t
(** One entity row at the given rank — shared with {!Contention}. *)

val class_row_to_json : int -> class_row -> Telemetry.Json.t
(** One class row at the given index — shared with {!Contention}. *)

val mix_to_json : mix_report -> Telemetry.Json.t
(** Versioned [kind:"explain"] JSON with a [classes] array next to the
    [entities] ranking — field-compatible with {!to_json} plus the
    per-class rows. *)

val mix_to_string : mix_report -> string
val pp_mix : Format.formatter -> mix_report -> unit
val mix_to_text : mix_report -> string

(** {2 Multi-tenant runs}

    One tenanted simulation joined against the weighted multi-class
    analytic decomposition ({!Lognic_queueing.Wmmcn}) — what
    [lognic tenants] prints. *)

type tenant_row = {
  tn_name : string;
  tn_weight : int;
  tn_share : float;  (** configured normalized offered-traffic share *)
  tn_model_throughput : float;
      (** carried bytes/s the analytic decomposition predicts for this
          tenant ([share × attained] when undifferentiated) *)
  tn_sim_throughput : float;
  tn_throughput_error : float;
  tn_model_latency : float;
      (** aggregate model latency with the bottleneck vertex's wait
          replaced by this tenant's weighted-M/M/c/N wait (equal to the
          aggregate when undifferentiated) *)
  tn_sim_latency : float option;
      (** [None] when the simulator delivered none of this tenant's
          packets *)
  tn_latency_error : float option;
  tn_model_blocking : float option;
      (** this tenant's M/M/c/N blocking probability; [None] when the
          bottleneck is not an IP vertex *)
  tn_slo_p99 : float option;
  tn_slo_ok : bool option;  (** the simulator's verdict ({!Tenant.row}) *)
}

type tenant_report = {
  tr_stats : Tenant.stats;  (** the simulator's per-tenant attribution *)
  tr_measurement : Netsim.measurement;
  tr_rows : tenant_row list;  (** canonical (name-sorted) tenant order *)
  tr_model_bottleneck : string;
  tr_differentiated : bool;
      (** [true] iff the bottleneck is an IP vertex, where the shared
          engine pool admits the per-tenant weighted-M/M/c/N
          decomposition; other bounds serve tenants indistinguishably *)
  tr_model_throughput : float;
  tr_sim_throughput : float;
  tr_throughput_error : float;
  tr_model_latency : float;
  tr_sim_latency : float;
  tr_latency_error : float;
  tr_fairness : Tenant.fairness;
}

val run_tenants :
  ?config:Netsim.config ->
  ?queue_model:Lognic.Latency.queue_model ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  traffic:Lognic.Traffic.t ->
  tenants:Tenant.set ->
  tenant_report
(** Run one simulation with [config.tenants = Some tenants] (any
    [tenants] already in [config] is replaced) and join the per-VF
    attribution against the analytic per-tenant decomposition at the
    model's bottleneck. *)

val tenants_to_json : tenant_report -> Telemetry.Json.t
(** Versioned [kind:"tenants"] JSON: the model/sim aggregate join, one
    row per tenant, and the full simulator detail
    ({!Tenant.stats_to_json}) under [sim_detail]. *)

val tenants_to_string : tenant_report -> string
val pp_tenants : Format.formatter -> tenant_report -> unit
val tenants_to_text : tenant_report -> string

(** {2 Flow cache}

    The joined model/sim report for the state-dependent (feedback)
    split scenario: {!Lognic.Flowcache.evaluate}'s fixed point on the
    model side against a simulation whose per-packet routing at the
    cache vertices comes from actual EMC/megaflow lookups
    ({!Flow_cache}). *)

type flowcache_class_row = {
  fr_name : string;  (** ["hot"], ["warm"] or ["cold"] *)
  fr_model_share : float;
  fr_sim_share : float;
  fr_model_mean : float;
  fr_sim_mean : float option;
      (** [None] when the simulator delivered no packets of this class *)
  fr_mean_error : float option;
  fr_model_p99 : float;
  fr_sim_p99 : float option;
      (** log₂-bucket estimate — good to a factor of 2 *)
}

type flowcache_report = {
  fc_model : Lognic.Flowcache.result;
  fc_stats : Flow_cache.stats;  (** the simulator's per-class attribution *)
  fc_measurement : Netsim.measurement;
  fc_bottleneck : string;
  fc_model_throughput : float;
  fc_sim_throughput : float;
  fc_throughput_error : float;
  fc_model_latency : float;
  fc_sim_latency : float;
  fc_latency_error : float;
  fc_emc_hit_error : float;
      (** |model − sim| hit-ratio difference (absolute: the ratios live
          in [0, 1], where a relative error at a near-zero miss share
          would mislead) *)
  fc_mega_hit_error : float;
  fc_overall_hit_error : float;
  fc_rows : flowcache_class_row list;  (** hot, warm, cold *)
}

val run_flowcache :
  ?config:Netsim.config ->
  ?queue_model:Lognic.Latency.queue_model ->
  Lognic.Flowcache.spec ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  traffic:Lognic.Traffic.t ->
  flowcache_report
(** Solve the model's fixed point, then run one simulation of the
    {e converged} graph with [config.flow_cache = Some spec] (any spec
    already in [config] is replaced; the converged δs keep the sim's
    reach-probability byte scaling consistent with the model), and join
    the two: hit ratios, aggregate throughput/latency, and per-class
    rows. Raises like {!Lognic.Flowcache.evaluate} and {!Netsim.execute}. *)

val flowcache_to_json : flowcache_report -> Telemetry.Json.t
(** Versioned [kind:"flowcache"] JSON: model and sim hit ratios with
    absolute differences, the aggregate join, one row per class, and
    the full simulator detail ({!Flow_cache.stats_to_json}) under
    [sim_detail]. *)

val flowcache_to_string : flowcache_report -> string
val pp_flowcache : Format.formatter -> flowcache_report -> unit
val flowcache_to_text : flowcache_report -> string
