(** The model-vs-simulation "explain" engine behind [lognic explain].

    One call runs the analytic model ({!Lognic.Estimate}) and the
    packet-level simulator ({!Netsim}) on the {e same} graph, hardware
    and traffic, joins the two per entity (every finite-throughput
    vertex, the shared interface and memory media, each dedicated
    link), and attributes the prediction residual: analytic utilization
    vs simulated busy fraction, the model's queueing term (converted to
    an expected queue depth via Little's law) vs the simulator's
    sampled queue depths, plus drops/rejections per entity.

    The report ranks entities by simulated utilization; the top entity
    is the simulator's answer to "what binds?", compared against the
    analytic roofline's binding term ({!Lognic.Throughput.bound}). On a
    well-calibrated graph the two agree — [agree = false] is itself a
    diagnostic (the queueing abstraction or routing scaling is off for
    some entity, visible in that entity's residual). *)

type entity_row = {
  name : string;  (** vertex label, "interface", "memory", "link-S-D" *)
  model_utilization : float;  (** attained rate / entity roofline cap *)
  sim_utilization : float;  (** horizon-clipped busy fraction *)
  residual : float;  (** sim − min(model, 1) *)
  model_queueing : float option;  (** Q_i seconds (vertices only) *)
  model_queue_depth : float option;
      (** Little's-law expected packets in system (vertices only) *)
  sim_queue_depth : float option;
      (** mean of the sampled depth/backlog series, when sampled *)
  model_drop_probability : float option;  (** M/M/1/N blocking (vertices) *)
  drops : int;  (** node drops / medium rejections over the whole run *)
}

type report = {
  model : Lognic.Estimate.report;
  measurement : Netsim.measurement;
  rows : entity_row list;  (** ranked, highest simulated utilization first *)
  model_bottleneck : string;
  sim_bottleneck : string;  (** [rows]' top entity, or "none" *)
  agree : bool;
  model_throughput : float;  (** attained bytes/s *)
  sim_throughput : float;
  throughput_error : float;  (** relative, in [0, 1] *)
  model_latency : float;  (** mean seconds *)
  sim_latency : float;
  latency_error : float;
}

val bound_name : Lognic.Graph.t -> Lognic.Throughput.bound -> string
(** The entity name a throughput bound pins ("offered-load" for
    {!Lognic.Throughput.Offered_load}), matching {!entity_row.name}. *)

val relative_error : model:float -> sim:float -> float
(** |model − sim| / max(|model|, |sim|), 0 when both are 0 — the join
    convention shared with {!Resilience}. *)

val run :
  ?config:Netsim.config ->
  ?queue_model:Lognic.Latency.queue_model ->
  Lognic.Graph.t ->
  hw:Lognic.Params.hardware ->
  traffic:Lognic.Traffic.t ->
  report
(** Runs both sides and joins them. When [config] leaves
    [sample_interval] unset, it defaults to [duration/256] so the
    queue-depth comparison has data. Raises [Invalid_argument] if the
    graph fails validation. *)

val to_json : report -> Telemetry.Json.t
val to_string : report -> string
(** Compact JSON, [to_json] printed. *)

val pp : Format.formatter -> report -> unit
(** The human-readable ranked table. *)

val to_text : report -> string
