(* Wall-clock self-profiler for the simulation engine.

   The engine and the entities it drives bracket their work with
   {!enter}/{!leave} around a small fixed set of phases.  Accounting is
   *self time*: entering a nested phase stops the parent's clock, so
   each wall-clock second lands in exactly one phase and the phase
   totals sum to the profiled span.  A switch is two [Unix.gettimeofday]
   calls worth of float arithmetic on preallocated arrays — no
   allocation per event — and the instance is threaded as an [option]
   so the disabled path stays a single pointer compare.

   Wall-clock and GC numbers are inherently nondeterministic, which is
   why they live here and never inside the deterministic metrics NDJSON
   stream: {!Metrics} exports them as a separate [schema:"profile"]
   document. *)

module J = Telemetry.Json

let phase_queue = 0
let phase_node = 1
let phase_media = 2
let phase_observer = 3
let phase_other = 4
let phase_count = 5

let phase_names =
  [| "queue_ops"; "node_service"; "media_arbitration"; "observer"; "other" |]

type row = {
  r_time : float;
  r_wall : float;
  r_phases : float array;
  r_enters : int array;
  r_minor_words : float;
  r_promoted_words : float;
  r_major_words : float;
  r_collections : int;
}

type t = {
  acc : float array;  (* cumulative self seconds per phase *)
  enters : int array;  (* cumulative enter count per phase *)
  mutable current : int;  (* phase whose clock is running *)
  mutable last : float;  (* wall time of the last phase switch *)
  started : float;  (* wall time at [create] *)
  (* Baselines for interval deltas, updated by [tick]. *)
  prev_acc : float array;
  prev_enters : int array;
  mutable prev_wall : float;
  mutable prev_minor : float;
  mutable prev_promoted : float;
  mutable prev_major : float;
  mutable prev_collections : int;
  mutable rows : row list;  (* newest first *)
}

let gc_collections (s : Gc.stat) =
  s.Gc.minor_collections + s.Gc.major_collections

let create () =
  let wall = Unix.gettimeofday () in
  let stat = Gc.quick_stat () in
  {
    acc = Array.make phase_count 0.;
    enters = Array.make phase_count 0;
    current = phase_other;
    last = wall;
    started = wall;
    prev_acc = Array.make phase_count 0.;
    prev_enters = Array.make phase_count 0;
    prev_wall = wall;
    prev_minor = stat.Gc.minor_words;
    prev_promoted = stat.Gc.promoted_words;
    prev_major = stat.Gc.major_words;
    prev_collections = gc_collections stat;
    rows = [];
  }

(* Charge the span since the last switch to the running phase. *)
let[@inline] settle t =
  let wall = Unix.gettimeofday () in
  t.acc.(t.current) <- t.acc.(t.current) +. (wall -. t.last);
  t.last <- wall

let[@inline] enter t phase =
  let prev = t.current in
  settle t;
  t.current <- phase;
  t.enters.(phase) <- t.enters.(phase) + 1;
  prev

let[@inline] leave t prev =
  settle t;
  t.current <- prev

let tick t ~time =
  settle t;
  let stat = Gc.quick_stat () in
  let wall = t.last in
  let collections = gc_collections stat in
  let row =
    {
      r_time = time;
      r_wall = wall -. t.prev_wall;
      r_phases = Array.init phase_count (fun i -> t.acc.(i) -. t.prev_acc.(i));
      r_enters =
        Array.init phase_count (fun i -> t.enters.(i) - t.prev_enters.(i));
      r_minor_words = stat.Gc.minor_words -. t.prev_minor;
      r_promoted_words = stat.Gc.promoted_words -. t.prev_promoted;
      r_major_words = stat.Gc.major_words -. t.prev_major;
      r_collections = collections - t.prev_collections;
    }
  in
  Array.blit t.acc 0 t.prev_acc 0 phase_count;
  Array.blit t.enters 0 t.prev_enters 0 phase_count;
  t.prev_wall <- wall;
  t.prev_minor <- stat.Gc.minor_words;
  t.prev_promoted <- stat.Gc.promoted_words;
  t.prev_major <- stat.Gc.major_words;
  t.prev_collections <- collections;
  t.rows <- row :: t.rows;
  row

let rows t = List.rev t.rows
let self_seconds t phase = t.acc.(phase)
let enter_count t phase = t.enters.(phase)
let elapsed t = Unix.gettimeofday () -. t.started

let phases_obj values =
  J.Obj
    (Array.to_list (Array.mapi (fun i name -> (name, values i)) phase_names))

let row_to_json r =
  J.Obj
    [
      ("time", J.Num r.r_time);
      ("wall_seconds", J.Num r.r_wall);
      ("phases", phases_obj (fun i -> J.Num r.r_phases.(i)));
      ("enters", phases_obj (fun i -> J.Num (float_of_int r.r_enters.(i))));
      ( "gc",
        J.Obj
          [
            ("minor_words", J.Num r.r_minor_words);
            ("promoted_words", J.Num r.r_promoted_words);
            ("major_words", J.Num r.r_major_words);
            ("collections", J.Num (float_of_int r.r_collections));
          ] );
    ]

let to_json t =
  J.versioned ~kind:"profile"
    [
      ("wall_seconds", J.Num (elapsed t));
      ("totals", phases_obj (fun i -> J.Num t.acc.(i)));
      ( "total_enters",
        phases_obj (fun i -> J.Num (float_of_int t.enters.(i))) );
      ("intervals", J.Arr (List.rev_map row_to_json t.rows |> List.rev));
    ]

let pp ppf t =
  Fmt.pf ppf "@[<v>profile (%.3fs wall):@," (elapsed t);
  Array.iteri
    (fun i name ->
      Fmt.pf ppf "  %-18s %8.4fs  (%d enters)@," name t.acc.(i) t.enters.(i))
    phase_names;
  Fmt.pf ppf "@]"
