(* Calendar queue (Brown 1988), struct-of-arrays, with an exact
   insertion-order tie-break.

   Events live in parallel slot arrays — unboxed float times, int
   sequence numbers, payloads apart — threaded into per-bucket singly
   linked chains through [nexts]; vacated slots form a free list
   through the same array, so steady-state push/take never allocates.

   The bucket of an event is [floor (time * inv_width) land mask].  The
   scan cursor is the {e virtual} bucket number [vb_cur] (an int, never
   an accumulated float): each slot stores its own virtual bucket
   [vbs.(slot)], computed at insert with the same arithmetic, and the
   locate scan accepts a slot only when [vbs.(slot) <= vb_cur].
   Because [t -> floor (t * inv_width)] is (weakly) monotone even under
   float rounding — including the saturating clamp for astronomically
   large products — an accepted slot can never be beaten by a slot in a
   later virtual bucket, so the scan returns the exact global
   [(time, seq)] minimum: pop order is bit-identical to the binary heap
   this replaced (pinned by the differential property in lib/check).

   When a full round of buckets yields nothing (events far sparser than
   the bucket width), a direct search over all chains finds the minimum
   and teleports the cursor to its slice — O(n), amortized away by the
   resize policy keeping bucket count within a small factor of the
   population.  The grow (len > 2*buckets) and shrink (len < buckets/4)
   thresholds are a factor 8 apart so a population hovering near one
   boundary cannot make alternating pushes and takes rebuild the
   calendar back and forth; a drift watch additionally rebuilds at the
   same bucket count when chain scans average long over a full window
   of operations, re-deriving the width when the timestamp distribution
   has moved under a stable population.  Rebuilds only affect geometry,
   never pop order, so both policies are free to favour throughput.

   The float scratch cell [fs.(0)] carries the time into
   [push_prepared] so the inlinable [push] wrapper never boxes it; all
   per-operation mutable state is int fields, so steady-state
   operations allocate nothing. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable vbs : int array;
  mutable payloads : 'a array;
  mutable nexts : int array;  (* bucket chain links / free-list links *)
  mutable filler : 'a array;  (* 1 element once non-empty: slot clearing *)
  mutable free_head : int;
  mutable buckets : int array;  (* head slot per bucket, -1 when empty *)
  mutable mask : int;  (* bucket count - 1; bucket count is a power of 2 *)
  mutable width : float;
  mutable inv_width : float;
  fs : float array;  (* scratch: 0 = incoming push time, 1 = horizon *)
  mutable vb_cur : int;  (* scan cursor: current virtual bucket *)
  mutable len : int;
  mutable next_seq : int;
  mutable resizes : int;  (* diagnostic: calendar rebuilds since create *)
  mutable scratch : int array;  (* pooled resize workspace, grow-only *)
  (* drift watch: locates and chain-scan steps since the last rebuild
     (or window reset); when chains average long over a full window the
     width no longer fits the live distribution *)
  mutable loc_ops : int;
  mutable loc_steps : int;
  (* located-slot cache, valid between a successful [locate] and the
     next mutation *)
  mutable loc_slot : int;
  mutable loc_prev : int;
  mutable loc_bucket : int;
}

let initial_buckets = 16

(* Virtual bucket numbers saturate here: beyond ~2e18 the float product
   has long lost integer precision and [int_of_float] would overflow at
   2^62.  Saturation keeps the map monotone, which is all correctness
   needs — the direct-search fallback handles anything parked there. *)
let clamp_vb = 2_000_000_000_000_000_000

(* Inlined into push/resize so the time stays in a float register —
   as a call, the float argument would box on every push. *)
let[@inline] vb_of_time t time =
  let fl = Float.floor (time *. t.inv_width) in
  if fl >= 2.0e18 then clamp_vb
  else if fl <= -2.0e18 then -clamp_vb
  else int_of_float fl

let create () =
  {
    times = [||];
    seqs = [||];
    vbs = [||];
    payloads = [||];
    nexts = [||];
    filler = [||];
    free_head = -1;
    buckets = Array.make initial_buckets (-1);
    mask = initial_buckets - 1;
    width = 1.;
    inv_width = 1.;
    fs = Array.make 2 0.;
    vb_cur = 0;
    len = 0;
    next_seq = 0;
    resizes = 0;
    scratch = [||];
    loc_ops = 0;
    loc_steps = 0;
    loc_slot = -1;
    loc_prev = -1;
    loc_bucket = -1;
  }

let is_empty t = t.len = 0
let size t = t.len
let resizes t = t.resizes

let grow_slots t payload =
  let cap = Array.length t.times in
  let bigger = max 16 (2 * cap) in
  let times = Array.make bigger 0. in
  let seqs = Array.make bigger 0 in
  let vbs = Array.make bigger 0 in
  let payloads = Array.make bigger payload in
  let nexts = Array.make bigger (-1) in
  Array.blit t.times 0 times 0 cap;
  Array.blit t.seqs 0 seqs 0 cap;
  Array.blit t.vbs 0 vbs 0 cap;
  Array.blit t.payloads 0 payloads 0 cap;
  Array.blit t.nexts 0 nexts 0 cap;
  (* chain the fresh slots into the free list *)
  for i = cap to bigger - 2 do
    nexts.(i) <- i + 1
  done;
  nexts.(bigger - 1) <- t.free_head;
  t.free_head <- cap;
  t.times <- times;
  t.seqs <- seqs;
  t.vbs <- vbs;
  t.payloads <- payloads;
  t.nexts <- nexts;
  if Array.length t.filler = 0 then t.filler <- [| payload |]

(* Rebuild the calendar with [nb] buckets, re-deriving the bucket
   width from the current population (1.5x the median inter-event gap
   — see below).  The rebuild is deterministic (width depends only on
   queue contents) and only affects geometry — pop order is a pure
   function of (time, seq) regardless. *)
let resize t nb =
  t.resizes <- t.resizes + 1;
  t.loc_ops <- 0;
  t.loc_steps <- 0;
  (* collect live slots into the pooled scratch (chain order is
     irrelevant to results); grow-only, so repeat resizes stop paying
     for the workspace *)
  if Array.length t.scratch < t.len then
    t.scratch <- Array.make (max 16 (2 * t.len)) 0;
  let live = t.scratch in
  let k = ref 0 in
  let old_buckets = t.buckets in
  for b = 0 to t.mask do
    let s = ref old_buckets.(b) in
    while !s >= 0 do
      live.(!k) <- !s;
      incr k;
      s := t.nexts.(!s)
    done
  done;
  (* free list survives untouched: freed slots are not in any chain *)
  let arg_mn = ref live.(0) in
  for i = 1 to t.len - 1 do
    let tm = t.times.(live.(i)) in
    if
      tm < t.times.(!arg_mn)
      || (tm = t.times.(!arg_mn) && t.seqs.(live.(i)) < t.seqs.(!arg_mn))
    then arg_mn := live.(i)
  done;
  (* Gap-based width: sort the live times and take 1.5x the median
     inter-event gap.  A typical population is a cluster of near-term
     completions plus a long tail of far-future timers (duration end,
     idle wakeups); sizing from the raw range lets the tail stretch
     the width until the whole cluster lands in one or two buckets —
     on the reference workload the range estimate this replaces froze
     ~14x too wide and locate scanned ~9 chain slots per event instead
     of ~3.  The median ignores the tail entirely; 1.5x measured best
     on that workload (narrower trades chain scans for empty-bucket
     hops, wider the reverse).  Rebuilds are rare, so the O(n log n)
     sorts and the temporary arrays are off the steady-state path. *)
  let n = t.len in
  let ts = Array.make n 0. in
  for i = 0 to n - 1 do
    ts.(i) <- t.times.(live.(i))
  done;
  Lognic_numerics.Stats.sort_floats ts;
  let range = ts.(n - 1) -. ts.(0) in
  let w =
    if n >= 2 && range > 0. && Float.is_finite range then begin
      (* median gap: reuse ts as the gap array *)
      for i = 0 to n - 2 do
        ts.(i) <- ts.(i + 1) -. ts.(i)
      done;
      let gaps = Array.sub ts 0 (n - 1) in
      Lognic_numerics.Stats.sort_floats gaps;
      let med = gaps.((n - 1) / 2) in
      let cand =
        if med > 0. then 1.5 *. med
        else begin
          (* fall back to the filtered mean when ties dominate *)
          let crude = range /. float_of_int (n - 1) in
          let sum = ref 0. and cnt = ref 0 in
          Array.iter (fun g -> if g <= 2. *. crude then begin sum := !sum +. g; incr cnt end) gaps;
          if !cnt > 0 && !sum > 0. then 2. *. !sum /. float_of_int !cnt else crude
        end
      in
      if cand > 0. && Float.is_finite cand then cand else t.width
    end
    else t.width
  in
  t.width <- w;
  t.inv_width <- 1. /. w;
  t.buckets <- Array.make nb (-1);
  t.mask <- nb - 1;
  for i = 0 to t.len - 1 do
    let s = live.(i) in
    let vb = vb_of_time t t.times.(s) in
    t.vbs.(s) <- vb;
    let b = vb land t.mask in
    t.nexts.(s) <- t.buckets.(b);
    t.buckets.(b) <- s
  done;
  t.vb_cur <- t.vbs.(!arg_mn);
  t.loc_slot <- -1

let push_prepared t payload =
  let time = t.fs.(0) in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.free_head < 0 then grow_slots t payload;
  let slot = t.free_head in
  t.free_head <- t.nexts.(slot);
  t.times.(slot) <- time;
  t.seqs.(slot) <- seq;
  t.payloads.(slot) <- payload;
  let vb = vb_of_time t time in
  t.vbs.(slot) <- vb;
  let b = vb land t.mask in
  t.nexts.(slot) <- t.buckets.(b);
  t.buckets.(b) <- slot;
  (* keep the cursor invariant: no queued event sits before [vb_cur] *)
  if t.len = 0 || vb < t.vb_cur then t.vb_cur <- vb;
  t.len <- t.len + 1;
  t.loc_slot <- -1;
  if t.len > 2 * (t.mask + 1) then resize t (2 * (t.mask + 1))

let[@inline] push t ~time payload =
  (* [x <> x] is the NaN test without the [Float.is_nan] call (whose
     float argument would box on every push) *)
  if time <> time then invalid_arg "Event_queue.push: NaN time";
  t.fs.(0) <- time;
  push_prepared t payload

(* Exact global (time, seq) minimum over every chain — the fallback
   when events are far sparser than the bucket width, and the resize
   seed for the cursor. *)
let direct_search t =
  let best = ref (-1) and best_prev = ref (-1) and best_bucket = ref (-1) in
  for b = 0 to t.mask do
    let prev = ref (-1) in
    let s = ref t.buckets.(b) in
    while !s >= 0 do
      (if
         !best < 0
         || t.times.(!s) < t.times.(!best)
         || (t.times.(!s) = t.times.(!best) && t.seqs.(!s) < t.seqs.(!best))
       then begin
         best := !s;
         best_prev := !prev;
         best_bucket := b
       end);
      prev := !s;
      s := t.nexts.(!s)
    done
  done;
  t.loc_slot <- !best;
  t.loc_prev <- !best_prev;
  t.loc_bucket <- !best_bucket;
  t.vb_cur <- t.vbs.(!best)

(* Scan the chain starting at [s], recording in [loc_slot]/[loc_prev]
   the best (time, seq)-minimal slot whose virtual bucket is at or
   before the cursor. Top-level recursion over int arguments: the
   per-event locate path must not allocate, and local [ref] cells or
   closures would (no flambda). *)
let rec scan_chain t s prev =
  if s >= 0 then begin
    t.loc_steps <- t.loc_steps + 1;
    (if t.vbs.(s) <= t.vb_cur then
       let best = t.loc_slot in
       if
         best < 0
         || t.times.(s) < t.times.(best)
         || (t.times.(s) = t.times.(best) && t.seqs.(s) < t.seqs.(best))
       then begin
         t.loc_slot <- s;
         t.loc_prev <- prev
       end);
    scan_chain t t.nexts.(s) s
  end

(* The cursor walk of [locate]; the horizon rides in [fs.(1)] so the
   loop carries only int state across calls. *)
let rec locate_loop t scanned =
  let horizon = t.fs.(1) in
  if scanned > t.mask then begin
    (* a whole round of buckets held nothing current *)
    direct_search t;
    t.times.(t.loc_slot) <= horizon
  end
  else begin
    let fvb = float_of_int t.vb_cur in
    (* early out once the slice start passed the horizon; the one-
       width slack absorbs rounding, valid while the product is
       integer-exact *)
    if Float.abs fvb < 4.0e15 && (fvb -. 1.) *. t.width > horizon then false
    else begin
      let b = t.vb_cur land t.mask in
      t.loc_slot <- -1;
      t.loc_prev <- -1;
      scan_chain t t.buckets.(b) (-1);
      if t.loc_slot >= 0 then
        if t.times.(t.loc_slot) > horizon then begin
          t.loc_slot <- -1;
          false
        end
        else begin
          t.loc_bucket <- b;
          true
        end
      else begin
        t.vb_cur <- t.vb_cur + 1;
        locate_loop t (scanned + 1)
      end
    end
  end

(* Find (without removing) the earliest event; [true] iff it exists and
   its time is <= horizon, leaving its position cached for [take].
   Advancing the cursor past empty slices is persistent, so a run of
   empty buckets is paid for once. The wrapper is inlinable so the
   horizon reaches the loop through the scratch cell, never as a boxed
   call argument. *)
let[@inline] locate t ~horizon =
  if t.len = 0 then false
  else begin
    t.loc_ops <- t.loc_ops + 1;
    t.fs.(1) <- horizon;
    locate_loop t 0
  end

let[@inline] located_time t = t.times.(t.loc_slot)

let take t =
  let slot = t.loc_slot in
  if slot < 0 then invalid_arg "Event_queue.take: no located event";
  (if t.loc_prev >= 0 then t.nexts.(t.loc_prev) <- t.nexts.(slot)
   else t.buckets.(t.loc_bucket) <- t.nexts.(slot));
  let payload = t.payloads.(slot) in
  t.payloads.(slot) <- t.filler.(0);
  t.nexts.(slot) <- t.free_head;
  t.free_head <- slot;
  t.len <- t.len - 1;
  t.loc_slot <- -1;
  let nb = t.mask + 1 in
  if nb > initial_buckets && t.len > 0 && t.len < (nb / 4) - 2 then
    resize t (nb / 2)
  else if t.loc_ops >= 1024 && t.loc_ops >= t.len then
    (* full window elapsed: rebuild (same bucket count) to re-derive
       the width when chains averaged > 3 slots per locate, else just
       restart the window.  Requiring a window of at least [len] ops
       caps rebuild work at O(1) amortized even when long chains are
       inherent (e.g. massed identical timestamps that no width can
       split). *)
    if t.loc_steps > 3 * t.loc_ops && t.len > 4 then resize t nb
    else begin
      t.loc_ops <- 0;
      t.loc_steps <- 0
    end;
  payload

let pop t =
  if locate t ~horizon:infinity then begin
    let time = located_time t in
    Some (time, take t)
  end
  else None

let pop_if_before t ~horizon =
  if locate t ~horizon then begin
    let time = located_time t in
    Some (time, take t)
  end
  else None

let peek_time t = if locate t ~horizon:infinity then Some (located_time t) else None

let clear t =
  t.len <- 0;
  t.loc_ops <- 0;
  t.loc_steps <- 0;
  t.next_seq <- 0;
  t.vb_cur <- 0;
  t.loc_slot <- -1;
  Array.fill t.buckets 0 (t.mask + 1) (-1);
  let cap = Array.length t.times in
  if cap > 0 then begin
    let fill = t.filler.(0) in
    for i = 0 to cap - 2 do
      t.nexts.(i) <- i + 1;
      t.payloads.(i) <- fill
    done;
    t.nexts.(cap - 1) <- -1;
    t.payloads.(cap - 1) <- fill;
    t.free_head <- 0
  end
