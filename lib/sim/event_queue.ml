type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let size t = t.len

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let capacity = Array.length t.heap in
  if t.len = capacity then begin
    let dummy = { time = 0.; seq = 0; payload = t.heap.(0).payload } in
    let bigger = Array.make (max 16 (2 * capacity)) dummy in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && earlier t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.len && earlier t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.len = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry
  else grow t;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time
