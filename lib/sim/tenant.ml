type spec = {
  name : string;
  weight : int;
  share : float;
  slo_p99 : float option;
  class_weights : int array;
}

let spec ?(weight = 1) ?(share = 1.) ?slo_p99 ?(class_weights = [||]) name =
  if name = "" then invalid_arg "Tenant.spec: empty name";
  if weight < 1 then invalid_arg "Tenant.spec: weight must be >= 1";
  if share <= 0. || not (Float.is_finite share) then
    invalid_arg "Tenant.spec: share must be finite and > 0";
  (match slo_p99 with
  | Some s when s <= 0. -> invalid_arg "Tenant.spec: slo must be > 0"
  | _ -> ());
  if Array.exists (fun w -> w < 1) class_weights then
    invalid_arg "Tenant.spec: class weights must be >= 1";
  { name; weight; share; slo_p99; class_weights = Array.copy class_weights }

type set = {
  t_specs : spec array;  (* canonical: sorted by name, names unique *)
  t_cumulative : float array;  (* normalized cumulative shares, last = 1 *)
  t_cum_bits : int array;
      (* the same edges scaled to the 30-bit integer lattice, last =
         2^30 — lets the per-arrival draw stay on [Rng.bits], which
         (unlike [Rng.float]) allocates nothing *)
  t_prob : int array;
      (* Walker alias table: bucket [j] accepts itself when the low
         draw bits fall under [t_prob.(j)] (threshold on [0, 2^30]) *)
  t_alias : int array;  (* ... and redirects to [t_alias.(j)] otherwise *)
}

let bits_range = 1 lsl 30

let set specs =
  if specs = [] then invalid_arg "Tenant.set: no tenants";
  let arr = Array.of_list specs in
  Array.sort (fun a b -> String.compare a.name b.name) arr;
  Array.iteri
    (fun i s ->
      if i > 0 && String.equal arr.(i - 1).name s.name then
        invalid_arg
          (Printf.sprintf "Tenant.set: duplicate tenant name %S" s.name))
    arr;
  let total = Array.fold_left (fun acc s -> acc +. s.share) 0. arr in
  let cumulative = Array.make (Array.length arr) 0. in
  let running = ref 0. in
  Array.iteri
    (fun i s ->
      running := !running +. (s.share /. total);
      cumulative.(i) <- !running)
    arr;
  (* Pin the last edge so a draw of 1 − ε can never fall off the end of
     the distribution whatever the rounding of the partial sums. *)
  cumulative.(Array.length arr - 1) <- 1.;
  let cum_bits =
    Array.map (fun c -> int_of_float (c *. float_of_int bits_range)) cumulative
  in
  cum_bits.(Array.length arr - 1) <- bits_range;
  (* Walker alias table over the lattice masses. A binary search over
     the cumulative edges costs log₂ n data-dependent branches per
     draw, and on random input every one is a coin-flip the branch
     predictor loses — ~4× the arithmetic cost at n = 16. The alias
     table replaces that with one multiply, two loads and a single
     compare. Construction is the classic two-stack split of buckets
     below/above the mean, in exact integer arithmetic (masses scaled
     by [n] so the mean is exactly [bits_range], and the leftovers
     land on it exactly). *)
  let n = Array.length arr in
  let prob = Array.make n bits_range in
  let alias = Array.init n (fun i -> i) in
  let w =
    Array.init n (fun i ->
        n * (cum_bits.(i) - if i = 0 then 0 else cum_bits.(i - 1)))
  in
  let small = ref [] and large = ref [] in
  for i = n - 1 downto 0 do
    if w.(i) < bits_range then small := i :: !small else large := i :: !large
  done;
  let rec pair small large =
    match (small, large) with
    | l :: small, g :: large ->
        prob.(l) <- w.(l);
        alias.(l) <- g;
        w.(g) <- w.(g) - (bits_range - w.(l));
        if w.(g) < bits_range then pair (g :: small) large
        else pair small (g :: large)
    | rest, [] | [], rest -> List.iter (fun i -> prob.(i) <- bits_range) rest
  in
  pair !small !large;
  {
    t_specs = arr;
    t_cumulative = cumulative;
    t_cum_bits = cum_bits;
    t_prob = prob;
    t_alias = alias;
  }

let uniform ?(prefix = "vf") n =
  if n < 1 then invalid_arg "Tenant.uniform: need at least one tenant";
  set (List.init n (fun i -> spec (Printf.sprintf "%s%04d" prefix i)))

let count t = Array.length t.t_specs
let specs t = Array.copy t.t_specs
let weights t = Array.map (fun s -> s.weight) t.t_specs

let shares t =
  let total = Array.fold_left (fun acc s -> acc +. s.share) 0. t.t_specs in
  Array.map (fun s -> s.share /. total) t.t_specs

(* Per-tenant class-WRR rows, padded to a uniform [classes] width for
   {!Ip_node.create_hierarchical}: a tenant declaring fewer classes (or
   none) gets weight 1 for the remainder. *)
let class_weight_rows t ~classes =
  if classes < 1 then invalid_arg "Tenant.class_weight_rows: classes < 1";
  Array.map
    (fun s ->
      Array.init classes (fun c ->
          if c < Array.length s.class_weights then s.class_weights.(c) else 1))
    t.t_specs

(* Binary search for the first cumulative edge strictly above [u]; the
   loop touches only ints and float-array loads, so the per-arrival
   tenant draw allocates nothing. *)
let index_of t u =
  let c = t.t_cumulative in
  let lo = ref 0 and hi = ref (Array.length c - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if c.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  !lo

(* The simulator's per-arrival path: O(1) alias-table lookup on a
   [Rng.bits] draw. [u * n] splits the 30-bit draw into a bucket index
   (high bits) and an acceptance threshold (low bits) — one shared
   draw, with per-tenant probabilities accurate to n·2^-30. *)
let[@inline] index_of_bits t u =
  let m = u * Array.length t.t_specs in
  let j = m lsr 30 in
  if m land (bits_range - 1) < t.t_prob.(j) then j else t.t_alias.(j)

(* ---- per-tenant attribution ----------------------------------------- *)

(* 64 log₂ latency buckets per tenant in one flat int array: bucket
   [k] holds latencies in [2^(k−40), 2^(k−39)) seconds, covering
   sub-picosecond to ~2-week latencies. Good to a factor of 2 at the
   tail, which is what an SLO verdict and a noisy-neighbor ranking
   need, at a cost of one store per completion. *)
let hist_buckets = 64

let[@inline] bucket_of lat =
  if lat <= 0. then 0
  else begin
    let b = int_of_float (Float.floor (Float.log2 lat)) + 40 in
    if b < 0 then 0 else if b > hist_buckets - 1 then hist_buckets - 1 else b
  end

let bucket_upper b = Float.pow 2. (float_of_int (b - 39))

type acc = {
  a_set : set;
  warmup : float;
  offered : int array;
  delivered : int array;
  dropped : int array;
  offered_bytes : float array;
  delivered_bytes : float array;
  lat_sum : float array;
  lat_max : float array;
  q_sum : float array;
  s_sum : float array;
  w_sum : float array;
  o_sum : float array;
  hist : int array;  (* count tenants × hist_buckets *)
}

let acc set ~warmup =
  let n = count set in
  {
    a_set = set;
    warmup;
    offered = Array.make n 0;
    delivered = Array.make n 0;
    dropped = Array.make n 0;
    offered_bytes = Array.make n 0.;
    delivered_bytes = Array.make n 0.;
    lat_sum = Array.make n 0.;
    lat_max = Array.make n 0.;
    q_sum = Array.make n 0.;
    s_sum = Array.make n 0.;
    w_sum = Array.make n 0.;
    o_sum = Array.make n 0.;
    hist = Array.make (n * hist_buckets) 0;
  }

(* The three records mirror Telemetry's warmup windowing exactly —
   arrivals by their own time, drops and completions by birth time —
   so per-tenant counts sum to the aggregate telemetry accounts. *)

let[@inline] record_offered a ~tenant ~now ~size =
  if now >= a.warmup then begin
    a.offered.(tenant) <- a.offered.(tenant) + 1;
    a.offered_bytes.(tenant) <- a.offered_bytes.(tenant) +. size
  end

let[@inline] record_drop a ~tenant ~born =
  if born >= a.warmup then a.dropped.(tenant) <- a.dropped.(tenant) + 1

let[@inline] record_completion a ~tenant ~fs =
  let born = fs.(Telemetry.slot_born) in
  if born >= a.warmup then begin
    let lat = fs.(Telemetry.slot_now) -. born in
    a.delivered.(tenant) <- a.delivered.(tenant) + 1;
    a.delivered_bytes.(tenant) <-
      a.delivered_bytes.(tenant) +. fs.(Telemetry.slot_size);
    a.lat_sum.(tenant) <- a.lat_sum.(tenant) +. lat;
    if lat > a.lat_max.(tenant) then a.lat_max.(tenant) <- lat;
    a.q_sum.(tenant) <- a.q_sum.(tenant) +. fs.(Telemetry.slot_queueing);
    a.s_sum.(tenant) <- a.s_sum.(tenant) +. fs.(Telemetry.slot_service);
    a.w_sum.(tenant) <- a.w_sum.(tenant) +. fs.(Telemetry.slot_wire);
    a.o_sum.(tenant) <- a.o_sum.(tenant) +. fs.(Telemetry.slot_overhead);
    let b = (tenant * hist_buckets) + bucket_of lat in
    a.hist.(b) <- a.hist.(b) + 1
  end

(* ---- summaries ------------------------------------------------------- *)

type row = {
  r_name : string;
  r_weight : int;
  r_share : float;
  r_offered : int;
  r_delivered : int;
  r_dropped : int;
  r_delivered_bytes : float;
  r_offered_rate : float;
  r_throughput : float;
  r_mean_latency : float;
  r_p99_latency : float;
  r_max_latency : float;
  r_terms : Telemetry.latency_terms;
  r_slo_p99 : float option;
  r_slo_ok : bool option;
}

type fairness = {
  maxmin_ratio : float;
  jain : float;
  interference : float;
}

type stats = {
  t_window : float;
  rows : row array;
  t_fairness : fairness;
}

let p99_of_hist hist tenant delivered lat_max =
  if delivered = 0 then 0.
  else begin
    let target =
      (* the smallest k with cumulative count >= ceil(0.99 n) *)
      let n = float_of_int delivered in
      int_of_float (Float.ceil (0.99 *. n))
    in
    let base = tenant * hist_buckets in
    let rec scan b acc =
      if b >= hist_buckets then lat_max
      else
        let acc = acc + hist.(base + b) in
        if acc >= target then Float.min (bucket_upper b) lat_max
        else scan (b + 1) acc
    in
    scan 0 0
  end

let fairness_of set ~window offered_bytes delivered_bytes lat_sum delivered =
  let n = Array.length delivered in
  if window <= 0. then { maxmin_ratio = 1.; jain = 1.; interference = 1. }
  else begin
    let attained = Array.map (fun b -> b /. window) delivered_bytes in
    let demanded = Array.map (fun b -> b /. window) offered_bytes in
    let total_attained = Array.fold_left ( +. ) 0. attained in
    let w = Array.map (fun s -> float_of_int s.weight) set.t_specs in
    (* Weighted max-min reference allocation of the carried capacity
       across the offered demands; a constrained tenant (demand above
       its fair share) falling short of that share is an isolation
       failure. *)
    let maxmin_ratio =
      if total_attained <= 0. then 1.
      else begin
        let fair =
          Lognic_queueing.Wmmcn.weighted_shares ~capacity:total_attained
            ~weights:w ~demands:demanded
        in
        let worst = ref 1. in
        for i = 0 to n - 1 do
          if demanded.(i) > fair.(i) && fair.(i) > 0. then begin
            let ratio = attained.(i) /. fair.(i) in
            if ratio < !worst then worst := ratio
          end
        done;
        !worst
      end
    in
    let jain =
      let sum = ref 0. and sumsq = ref 0. and active = ref 0 in
      for i = 0 to n - 1 do
        if demanded.(i) > 0. then begin
          let x = attained.(i) /. w.(i) in
          sum := !sum +. x;
          sumsq := !sumsq +. (x *. x);
          incr active
        end
      done;
      if !active = 0 || !sumsq <= 0. then 1.
      else !sum *. !sum /. (float_of_int !active *. !sumsq)
    in
    let interference =
      let best = ref infinity and worst = ref 0. in
      for i = 0 to n - 1 do
        if delivered.(i) > 0 then begin
          let mean = lat_sum.(i) /. float_of_int delivered.(i) in
          if mean < !best then best := mean;
          if mean > !worst then worst := mean
        end
      done;
      if !best = infinity || !best <= 0. then 1. else !worst /. !best
    in
    { maxmin_ratio; jain; interference }
  end

(* Rows-free fairness snapshot for live metrics gauges: reads the
   pooled accumulator arrays directly, no per-tenant row records. *)
let live_fairness a ~horizon =
  let window = Float.max 0. (horizon -. a.warmup) in
  fairness_of a.a_set ~window a.offered_bytes a.delivered_bytes a.lat_sum
    a.delivered

let summarize a ~horizon =
  let window = Float.max 0. (horizon -. a.warmup) in
  let set = a.a_set in
  let shares = shares set in
  let rows =
    Array.mapi
      (fun i s ->
        let delivered = a.delivered.(i) in
        let dn = float_of_int (max 1 delivered) in
        let mean sum = if delivered = 0 then 0. else sum /. dn in
        let p99 = p99_of_hist a.hist i delivered a.lat_max.(i) in
        {
          r_name = s.name;
          r_weight = s.weight;
          r_share = shares.(i);
          r_offered = a.offered.(i);
          r_delivered = delivered;
          r_dropped = a.dropped.(i);
          r_delivered_bytes = a.delivered_bytes.(i);
          r_offered_rate =
            (if window > 0. then a.offered_bytes.(i) /. window else 0.);
          r_throughput =
            (if window > 0. then a.delivered_bytes.(i) /. window else 0.);
          r_mean_latency = mean a.lat_sum.(i);
          r_p99_latency = p99;
          r_max_latency = a.lat_max.(i);
          r_terms =
            {
              Telemetry.queueing = mean a.q_sum.(i);
              service = mean a.s_sum.(i);
              wire = mean a.w_sum.(i);
              overhead = mean a.o_sum.(i);
            };
          r_slo_p99 = s.slo_p99;
          r_slo_ok =
            (match s.slo_p99 with
            | Some slo when delivered > 0 -> Some (p99 <= slo)
            | _ -> None);
        })
      set.t_specs
  in
  {
    t_window = window;
    rows;
    t_fairness =
      fairness_of set ~window a.offered_bytes a.delivered_bytes a.lat_sum
        a.delivered;
  }

let row_to_json r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("name", J.Str r.r_name);
      ("weight", J.Num (float_of_int r.r_weight));
      ("share", J.Num r.r_share);
      ("offered", J.Num (float_of_int r.r_offered));
      ("delivered", J.Num (float_of_int r.r_delivered));
      ("dropped", J.Num (float_of_int r.r_dropped));
      ("delivered_bytes", J.Num r.r_delivered_bytes);
      ("offered_rate", J.Num r.r_offered_rate);
      ("throughput", J.Num r.r_throughput);
      ("mean_latency", J.Num r.r_mean_latency);
      ("p99_latency", J.Num r.r_p99_latency);
      ("max_latency", J.Num r.r_max_latency);
      ("latency_terms", Telemetry.terms_to_json r.r_terms);
      ( "slo_p99",
        match r.r_slo_p99 with None -> J.Null | Some s -> J.Num s );
      ( "slo_ok",
        match r.r_slo_ok with None -> J.Null | Some ok -> J.Bool ok );
    ]

let stats_to_json t =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("window", J.Num t.t_window);
      ("tenants", J.Arr (Array.to_list (Array.map row_to_json t.rows)));
      ( "fairness",
        J.Obj
          [
            ("maxmin_ratio", J.Num t.t_fairness.maxmin_ratio);
            ("jain", J.Num t.t_fairness.jain);
            ("interference", J.Num t.t_fairness.interference);
          ] );
    ]
