(** A simulated IP block (§3.2, Figure 2-b): [m] bounded input queues, a
    work-conserving (weighted) round-robin dispatcher, and [engines]
    parallel execution engines sharing the block's aggregate rate.

    With one queue, capacity counts requests {e in the system} (queued +
    in service), so the node behaves as M/M/n/N under Poisson arrivals
    and [Exponential] service — the queueing model LogNIC assumes after
    merging an IP's queues into one {e virtual shared queue} (§3.6).
    Multiple queues let experiments probe what that merge abstracts
    away: per-class isolation and head-of-line blocking under a
    weighted-round-robin scheduler (see {!Lognic_apps.Hol_study}). *)

type service_dist =
  | Deterministic  (** service takes exactly [work / engine_rate] *)
  | Exponential  (** exponentially distributed with that mean *)

type t

val create :
  ?track_lanes:bool ->
  Engine.t ->
  rng:Lognic_numerics.Rng.t ->
  label:string ->
  engines:int ->
  rate_per_engine:float ->
  queue_capacity:int ->
  service_dist:service_dist ->
  t
(** A single-queue node ([queues = 1]). Raises [Invalid_argument] on
    non-positive engine count / rate / capacity. [rate_per_engine] may
    be [infinity] for a transparent node. [track_lanes] (default
    [false]) maintains per-engine occupancy so {!submit}'s [span]
    callback reports a stable engine index; off, the node allocates no
    lane state and [span] always reports lane 0. Lane bookkeeping never
    affects scheduling. *)

val create_multiqueue :
  ?track_lanes:bool ->
  Engine.t ->
  rng:Lognic_numerics.Rng.t ->
  label:string ->
  engines:int ->
  rate_per_engine:float ->
  entries_per_queue:int ->
  weights:int array ->
  service_dist:service_dist ->
  t
(** [weights] gives both the queue count (its length, ≥ 1) and each
    queue's WRR share: a freed engine serves queues in a round-robin
    pattern where queue [i] appears [weights.(i)] times per cycle,
    skipping empty queues (work conserving). Each queue holds at most
    [entries_per_queue] waiting requests (in-service requests are not
    charged to any queue). Raises [Invalid_argument] on an empty or
    non-positive weight array. *)

val create_hierarchical :
  ?track_lanes:bool ->
  Engine.t ->
  rng:Lognic_numerics.Rng.t ->
  label:string ->
  engines:int ->
  rate_per_engine:float ->
  entries_per_queue:int ->
  group_weights:int array ->
  class_weights:int array array ->
  service_dist:service_dist ->
  t
(** The SR-IOV two-stage arbiter (OS4C-style): one queue {e group} per
    tenant/VF and one queue per traffic class within each group — queue
    [g·classes + c] is group [g]'s class-[c] queue, where [classes] is
    the (uniform) row length of [class_weights]. Stage 1 is
    packet-granular weighted round robin over the groups that currently
    have queued work: the serving group keeps the grant for up to
    [group_weights.(g)] requests per visit, then the grant rotates
    (groups activate at the end of the current round, deactivate the
    moment they drain). Stage 2 picks within the granted group by an
    expanded-pattern class WRR over [class_weights.(g)], skipping empty
    class queues. Both stages are O(1) per grant with state sized once
    at construction, so thousands of groups dispatch without scaling
    cost or allocation.

    Capacity follows the multiqueue convention: each of the
    [groups·classes] queues holds at most [entries_per_queue] waiting
    requests. Raises [Invalid_argument] on empty/ragged weight arrays
    or any weight < 1. *)

val label : t -> string

val engines : t -> int
(** Configured engine count (the nameplate D, regardless of faults). *)

val queue_count : t -> int

val submit :
  ?queue:int ->
  ?tally:float array ->
  ?span:(lane:int -> queued:float -> service:float -> unit) ->
  t ->
  work:float ->
  (unit -> unit) ->
  bool
(** [submit node ~work k] enqueues a request needing [work] bytes of
    processing into [queue] (default 0); [k] fires at service
    completion. Returns [false] (and counts a drop) when that queue is
    full. [tally], when given, receives the request's time-in-queue and
    drawn service duration at service start, accumulated ([+.]) into
    [tally.(Telemetry.slot_queueing)] /
    [tally.(Telemetry.slot_service)] — the per-hop inputs to
    {!Telemetry.latency_terms}, recorded without boxing a float
    (callers keep one scratch array per in-flight packet; pass a
    pre-allocated [Some] to stay allocation-free). [span] is the
    tracing sink ({!Trace}): called once at service start with the same
    quantities plus the serving engine's lane index (see
    [track_lanes]); when absent, the request records nothing and costs
    nothing.

    Zero-work requests (and any request on an infinite-rate node) take
    a fast path {e only while their queue is empty}: they complete
    immediately without consuming an engine. When the queue is
    non-empty they are routed through it like any other request —
    preserving FIFO order (no overtaking) and subject to the capacity
    check. Raises [Invalid_argument] on a bad queue index or negative
    work. *)

val submit_at :
  ?tally:float array ->
  ?span:(lane:int -> queued:float -> service:float -> unit) ->
  t ->
  queue:int ->
  work:float ->
  (unit -> unit) ->
  bool
(** {!submit} with the queue index as a required argument — the hot-path
    entry for multiqueue/hierarchical callers, which avoids boxing the
    index in an option at every call. *)

val in_system : t -> int
val queue_length : t -> int -> int

val busy_engines : t -> int
(** Engines currently serving a request. *)

val offline : t -> int
(** Engines currently held down by fault injection (0 when healthy). *)

val set_offline : t -> int -> unit
(** Fail (or recover) engines: the dispatcher serves with at most
    [engines − n] engines from now on. Failure is graceful — services
    already running complete normally, so [busy_engines] can transiently
    exceed the reduced count — and recovery immediately re-dispatches
    once per freed engine. {!utilization} keeps its nameplate
    denominator ([engines]), so a half-failed node saturates at 0.5.
    Raises [Invalid_argument] outside [\[0, engines\]]. With [n = 0] the
    node is byte-identical to one that never saw a fault. *)

val capacity_override : t -> int option

val set_capacity_override : t -> int option -> unit
(** Temporarily shrink the queue capacity: admission checks use
    [min capacity override] while set. Already-queued requests are kept
    even when they exceed the shrunken bound (the fault drains them
    through service, it does not discard them). Raises
    [Invalid_argument] on a capacity < 1. *)

val drops : t -> int
val drops_of_queue : t -> int -> int
val completions : t -> int

val busy_time : t -> float
(** Aggregate scheduled engine-busy seconds, including any service time
    extending past the simulation horizon. *)

val busy_within : t -> until:float -> float
(** {!busy_time} with each in-flight service clipped to
    [\[0, until\]] — exact at the run horizon. *)

val utilization : t -> until:float -> float
(** Mean fraction of engines busy over [\[0, until\]]; never exceeds 1
    at the horizon, even for an overloaded node. *)

val set_profile : t -> Profile.t option -> unit
(** Attach (or detach) a self-profiler: dispatch and completion
    bookkeeping is charged to {!Profile.phase_node}. [None] (the
    default) costs one pointer compare per entry and never affects
    scheduling. *)
